#!/usr/bin/env bash
# Markdown link check for docs/*.md and README.md (CI docs job).
#
# Extracts every inline [text](target) link and verifies that relative
# targets exist in the repository. External links (http/https/mailto),
# pure in-page anchors (#...) and targets that resolve outside the repo
# (e.g. the GitHub-relative CI badge ../../actions/...) are skipped.
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)
fail=0

check_file() {
  local md="$1"
  local dir
  dir=$(dirname "$md")
  # Inline links: capture the (...) target of [...](...) pairs. A file
  # without links is fine (grep exits 1 on no match).
  { grep -oE '\[[^]]*\]\([^)]+\)' "$md" || true; } |
    sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/' |
    while IFS= read -r target; do
      case "$target" in
        http://*|https://*|mailto:*) continue ;;
        '#'*) continue ;;  # in-page anchor
      esac
      local path="${target%%#*}"  # strip a trailing anchor
      [ -z "$path" ] && continue
      local resolved
      resolved=$(realpath -m "$dir/$path")
      case "$resolved" in
        "$repo_root"/*) ;;
        *) continue ;;  # escapes the repo (GitHub-relative badge etc.)
      esac
      if [ ! -e "$resolved" ]; then
        echo "BROKEN: $md -> $target"
        echo 1 > "$tmp_fail"
      fi
    done
}

tmp_fail=$(mktemp)
trap 'rm -f "$tmp_fail"' EXIT

for md in README.md docs/*.md; do
  [ -e "$md" ] || continue
  check_file "$md"
done

if [ -s "$tmp_fail" ]; then
  echo "link check FAILED"
  exit 1
fi
echo "link check OK"
