#!/usr/bin/env bash
# Markdown link check for the documentation pages (CI docs job): README.md
# plus every *.md under docs/, recursively.
#
# Extracts every inline [text](target) link and every reference-style
# definition ([label]: target) and verifies that
#   * relative targets exist in the repository, and
#   * anchor fragments (in-page "#section" links and "file.md#section"
#     links) match a heading in the target markdown file — a missing
#     anchor FAILS the check, it is never silently skipped.
# External links (http/https/mailto) and targets that resolve outside the
# repo (e.g. the GitHub-relative CI badge ../../actions/...) are skipped.
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)

# GitHub-style anchor slugs of a markdown file's headings, one per line:
# lowercase, markdown links unwrapped, punctuation stripped (keeping
# alphanumerics, hyphens, underscores), spaces to hyphens; duplicate
# headings get -1, -2, ... suffixes exactly as GitHub assigns them.
anchors_of() {
  grep -E '^#{1,6} ' "$1" |
    sed -E 's/^#{1,6} +//' |
    sed -E 's/\[([^]]*)\]\([^)]*\)/\1/g' |
    tr '[:upper:]' '[:lower:]' |
    sed -E 's/[^a-z0-9 _-]//g; s/ /-/g' |
    awk '{ n = seen[$0]++; if (n) print $0 "-" n; else print $0 }'
}

check_anchor() {
  local md="$1" target="$2" anchor_file="$3" frag="$4"
  frag=$(printf '%s' "$frag" | tr '[:upper:]' '[:lower:]')
  if ! anchors_of "$anchor_file" | grep -qxF "$frag"; then
    echo "BROKEN ANCHOR: $md -> $target (no heading '#$frag' in $anchor_file)"
    echo 1 > "$tmp_fail"
  fi
}

check_file() {
  local md="$1"
  local dir
  dir=$(dirname "$md")
  # Inline links ([text](target)) and reference-style definitions
  # ("[label]: target" at line start). A file without links is fine
  # (grep exits 1 on no match).
  {
    { grep -oE '\[[^]]*\]\([^)]+\)' "$md" || true; } |
      sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/'
    { grep -oE '^\[[^]]+\]:[[:space:]]+[^[:space:]]+' "$md" || true; } |
      sed -E 's/^\[[^]]+\]:[[:space:]]+//'
  } |
    while IFS= read -r target; do
      case "$target" in
        http://*|https://*|mailto:*) continue ;;
      esac
      local path="${target%%#*}"
      local frag=""
      case "$target" in
        *'#'*) frag="${target#*#}" ;;
      esac
      if [ -z "$path" ]; then
        # Pure in-page anchor: the heading must exist in this file.
        [ -n "$frag" ] && check_anchor "$md" "$target" "$md" "$frag"
        continue
      fi
      local resolved
      resolved=$(realpath -m "$dir/$path")
      case "$resolved" in
        "$repo_root"/*) ;;
        *) continue ;;  # escapes the repo (GitHub-relative badge etc.)
      esac
      if [ ! -e "$resolved" ]; then
        echo "BROKEN: $md -> $target"
        echo 1 > "$tmp_fail"
        continue
      fi
      # Cross-file anchor: only meaningful into another markdown file.
      if [ -n "$frag" ]; then
        case "$resolved" in
          *.md) check_anchor "$md" "$target" "$resolved" "$frag" ;;
        esac
      fi
    done
}

tmp_fail=$(mktemp)
trap 'rm -f "$tmp_fail"' EXIT

while IFS= read -r md; do
  check_file "$md"
done < <(printf 'README.md\n'; find docs -name '*.md' | sort)

if [ -s "$tmp_fail" ]; then
  echo "link check FAILED"
  exit 1
fi
echo "link check OK"
