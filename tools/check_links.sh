#!/usr/bin/env bash
# Markdown link check for the documentation pages (CI docs job): README.md
# plus every *.md under docs/, recursively.
#
# Extracts every inline [text](target) link and every reference-style
# definition ([label]: target) and verifies that relative targets exist in
# the repository. External links (http/https/mailto), pure in-page anchors
# (#...) and targets that resolve outside the repo (e.g. the
# GitHub-relative CI badge ../../actions/...) are skipped.
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)
fail=0

check_file() {
  local md="$1"
  local dir
  dir=$(dirname "$md")
  # Inline links ([text](target)) and reference-style definitions
  # ("[label]: target" at line start). A file without links is fine
  # (grep exits 1 on no match).
  {
    { grep -oE '\[[^]]*\]\([^)]+\)' "$md" || true; } |
      sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/'
    { grep -oE '^\[[^]]+\]:[[:space:]]+[^[:space:]]+' "$md" || true; } |
      sed -E 's/^\[[^]]+\]:[[:space:]]+//'
  } |
    while IFS= read -r target; do
      case "$target" in
        http://*|https://*|mailto:*) continue ;;
        '#'*) continue ;;  # in-page anchor
      esac
      local path="${target%%#*}"  # strip a trailing anchor
      [ -z "$path" ] && continue
      local resolved
      resolved=$(realpath -m "$dir/$path")
      case "$resolved" in
        "$repo_root"/*) ;;
        *) continue ;;  # escapes the repo (GitHub-relative badge etc.)
      esac
      if [ ! -e "$resolved" ]; then
        echo "BROKEN: $md -> $target"
        echo 1 > "$tmp_fail"
      fi
    done
}

tmp_fail=$(mktemp)
trap 'rm -f "$tmp_fail"' EXIT

while IFS= read -r md; do
  check_file "$md"
done < <(printf 'README.md\n'; find docs -name '*.md' | sort)

if [ -s "$tmp_fail" ]; then
  echo "link check FAILED"
  exit 1
fi
echo "link check OK"
