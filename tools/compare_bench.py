#!/usr/bin/env python3
"""Merge bench JSONL emissions into BENCH.json and gate against a baseline.

The benches append one {"bench": ..., "metrics": {...}} line each to the
file named by MAPCQ_BENCH_JSON (see bench::json_reporter). This tool merges
those lines into one BENCH.json artifact and, when --baseline is given,
fails (exit 1) if any gated metric regresses beyond its tolerance.

Baseline format (bench/baseline.json):
    {
      "tolerance_pct": 20,              # default tolerance
      "benches": {
        "<bench>": {
          "<metric>": {"value": <ref>, "direction": "lower"|"higher",
                       "tolerance_pct": <override, optional>,
                       "tolerance_abs": <additive slack, optional>},
          ...
        }
      }
    }

"lower" means lower is better (wall-clock, evaluator runs): the check
fails when current > ref * (1 + tol) + abs. "higher" means higher is
better (hit rates, taus, ok-flags): fails when
current < ref * (1 - tol) - abs. Only metrics listed in the baseline are
gated; everything else in BENCH.json is informational.

Deterministic counters gate at tolerance 0. Latency percentiles (the
trace_replay p99 gate) are the one sanctioned timing gate: they carry a
generous tolerance_pct plus a tolerance_abs floor, because a relative
tolerance alone flaps when the reference value is a few milliseconds and
the CI runner hiccups. Other timing metrics stay out of the baseline.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", help="JSONL file the benches appended to")
    parser.add_argument("--out", default="BENCH.json", help="merged artifact path")
    parser.add_argument("--baseline", help="baseline to gate against (optional)")
    args = parser.parse_args()

    benches: dict[str, dict[str, float]] = {}
    with open(args.jsonl) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            benches.setdefault(obj["bench"], {}).update(obj["metrics"])

    with open(args.out, "w") as f:
        json.dump({"benches": benches}, f, indent=2, sort_keys=True)
        f.write("\n")
    total = sum(len(m) for m in benches.values())
    print(f"wrote {args.out}: {total} metrics from {len(benches)} benches")

    if not args.baseline:
        return 0

    with open(args.baseline) as f:
        base = json.load(f)
    default_tol = base.get("tolerance_pct", 20)
    failures = []
    for bench, metrics in sorted(base["benches"].items()):
        for name, spec in sorted(metrics.items()):
            current = benches.get(bench, {}).get(name)
            if current is None:
                failures.append(f"{bench}.{name}: missing from {args.out}")
                print(f"  [MISSING] {bench}.{name}")
                continue
            ref = spec["value"]
            tol = spec.get("tolerance_pct", default_tol) / 100.0
            abs_tol = spec.get("tolerance_abs", 0.0)
            direction = spec.get("direction", "lower")
            if direction == "lower":
                limit = ref * (1.0 + tol) + abs_tol
                ok = current <= limit
            else:
                limit = ref * (1.0 - tol) - abs_tol
                ok = current >= limit
            marker = "ok" if ok else "REGRESSION"
            slack = f", abs {abs_tol:g}" if abs_tol else ""
            print(
                f"  [{marker}] {bench}.{name}: {current:g} vs baseline {ref:g}"
                f" ({direction} is better, tol {tol * 100:g}%{slack})"
            )
            if not ok:
                failures.append(
                    f"{bench}.{name}: {current:g} beyond limit {limit:g}"
                    f" (baseline {ref:g}, {direction} is better)"
                )

    if failures:
        print("bench regression check FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("bench regression check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
