#!/usr/bin/env bash
# Runs the CI bench suite (the eight acceptance benches plus the filtered
# scalar-vs-SoA characterizer head-to-head), merges their JSON
# metric emissions into one BENCH.json artifact, and — when BENCH_BASELINE
# is set — fails on any gated regression (see tools/compare_bench.py).
#
#   BUILD_DIR        build tree holding bench/ binaries   (default: build)
#   BENCH_OUT        merged artifact path                 (default: BENCH.json)
#   BENCH_BASELINE   baseline to gate against             (default: none)
#   MAPCQ_TRACE      trace replayed by trace_replay       (default: the
#                    checked-in bench/traces/smoke.trace)
#   MAPCQ_GENERATIONS / MAPCQ_POPULATION / MAPCQ_THREADS  scale, as usual
#
# Every bench is also a pass/fail check in its own right: a non-zero exit
# from any of them fails the suite before the comparison runs.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir=${BUILD_DIR:-build}
out=${BENCH_OUT:-BENCH.json}
baseline=${BENCH_BASELINE:-}
export MAPCQ_TRACE=${MAPCQ_TRACE:-bench/traces/smoke.trace}

jsonl=$(mktemp)
trap 'rm -f "$jsonl"' EXIT

benches=(eval_engine serving_reuse island_scaling service_throughput surrogate_refresh trace_replay shard_restore colocation)
for b in "${benches[@]}"; do
  echo "=== bench: $b ==="
  MAPCQ_BENCH_JSON=$jsonl "$build_dir/bench/$b"
  echo
done

# Scalar-vs-SoA characterizer head-to-head (informational ns/sublayer);
# filtered so only the two batch_characterize benchmarks run.
echo "=== bench: micro_primitives (batch characterizer) ==="
MAPCQ_BENCH_JSON=$jsonl "$build_dir/bench/micro_primitives" --benchmark_filter='batch_characterize'
echo

args=("$jsonl" --out "$out")
if [ -n "$baseline" ]; then
  args+=(--baseline "$baseline")
fi
python3 tools/compare_bench.py "${args[@]}"
