// Deployment workflow on the serving front-end: submit a search
// asynchronously, ship the resulting mapping report (validated front +
// picks), then reload it (as a runtime daemon on the MPSoC would) and
// re-evaluate the shipped pick to confirm the artifact reproduces the
// searched performance bit-for-bit. A second, synchronous request against
// the same warm session shows the memo cache persisting across runs.
//
// Build & run:
//   ./build/examples/search_and_ship [--config file.json]
//                                    [--set dotted.key=value ...]
//                                    [--dump-config]
//                                    [--clients N]
//                                    [--capture-trace out.trace]
//                                    [--snapshot-dir dir]
// The deployment is driven by one serving::service_config JSON document
// (docs/SERVING.md has the reference); e.g. "--set ga.island.islands=2"
// shards the population into an island-model search — same serving API,
// same shippable artifact. --clients N adds a multi-client demo: N
// concurrent submitters hammer the warm service with duplicate-heavy
// traffic and the request scheduler coalesces them. --capture-trace
// installs a trace tap and writes every submit() of the run as a
// mapcq-trace-v1 file replayable with bench/trace_replay. --snapshot-dir
// turns on durable sessions: the run spills its warm sessions there on
// exit, and a later run pointed at the same directory boots warm — the
// search is served from the restored memo cache at ~zero evaluator runs.

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "perf/calibration.h"
#include "serving/mapping_service.h"
#include "serving/request_trace.h"
#include "serving/service_config.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace mapcq;

  // Example preset: a quick interactive budget; a --config file replaces
  // it wholesale (files start from the library defaults, 200 x 60).
  serving::service_config cfg;
  cfg.ga.generations = 30;
  cfg.ga.population = 30;

  bool dump_config = false;
  std::size_t clients = 0;
  std::string trace_path;
  std::string snapshot_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    try {
      if (arg == "--config" && i + 1 < argc) {
        cfg = serving::load_config(argv[++i]);
      } else if (arg == "--set" && i + 1 < argc) {
        serving::apply_override(cfg, argv[++i]);
      } else if (arg == "--dump-config") {
        dump_config = true;
      } else if (arg == "--clients" && i + 1 < argc) {
        clients = std::stoul(argv[++i]);
      } else if (arg == "--capture-trace" && i + 1 < argc) {
        trace_path = argv[++i];
      } else if (arg == "--snapshot-dir" && i + 1 < argc) {
        snapshot_dir = argv[++i];
      } else {
        std::cerr << "usage: search_and_ship [--config file.json] [--set dotted.key=value ...] "
                     "[--dump-config] [--clients N] [--capture-trace out.trace] "
                     "[--snapshot-dir dir]\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "search_and_ship: " << e.what() << "\n";
      return 2;
    }
  }
  if (!snapshot_dir.empty()) {
    std::filesystem::create_directories(snapshot_dir);  // the service never creates it
    cfg.service.snapshot.directory = snapshot_dir;
    cfg.service.snapshot.spill_on_evict = true;
  }
  if (dump_config) {
    std::cout << serving::dump_config(cfg);
    return 0;
  }

  const nn::network vis = nn::build_visformer();
  const nn::network vgg = nn::build_vgg19();
  const soc::platform xavier = perf::calibrated_xavier(vis, vgg).plat;

  // 1. Search: async submission against the serving front-end, booted from
  // the effective config. With --capture-trace every submit() of this run
  // (the search below and the multi-client traffic) lands in the tap.
  serving::mapping_service service{cfg.service};
  service.register_network(vis);
  service.register_platform(xavier);
  std::shared_ptr<serving::trace_log> trace;
  if (!trace_path.empty()) {
    trace = std::make_shared<serving::trace_log>();
    service.capture_trace(trace);
  }

  serving::mapping_request req;
  req.network = vis.name;
  req.orientation = serving::objective_orientation::energy;
  req.ga = cfg.ga;
  req.eval.contention = cfg.scenario;
  auto pending = service.submit(req);
  std::cout << "request submitted (" << (cfg.ga.island.islands ? cfg.ga.island.islands : 1)
            << " island(s)); waiting for the mapping report...\n";
  const serving::mapping_report report = pending.get();
  if (!snapshot_dir.empty()) {
    // A previous run against the same directory left a snapshot; this boot
    // warm-started from it and the search above ran on a hot memo cache.
    std::cout << util::format(
        "snapshot dir %s: %zu session(s) restored, search ran %zu evaluator run(s)%s\n",
        snapshot_dir.c_str(), service.sessions_restored(),
        report.search_cache.misses + report.validation_cache.misses,
        service.sessions_restored() > 0 ? " (warm boot)" : " (cold boot)");
  }
  const core::evaluation& winner = report.best();
  std::cout << "searched: " << winner.config.describe(xavier) << "\n";
  std::cout << util::format("searched metrics: %.2f mJ / %.2f ms / %.2f%%\n",
                            winner.avg_energy_mj, winner.avg_latency_ms, winner.accuracy_pct);

  // 2. Ship: persist the report summary (front configurations + scalars).
  const std::string path = "/tmp/mapcq_shipped_report.txt";
  core::save_report_summary(path, report.summary());
  std::cout << "\nreport summary (" << report.front.size() << " front entries) written to " << path
            << ":\n";
  std::cout << core::to_text(report.summary()).substr(0, 260) << "...\n";

  // 3. Runtime side: reload the report, pick the shipped energy-oriented
  // configuration and re-evaluate it through a memoizing engine, the way a
  // serving daemon would answer repeated cost queries.
  const core::report_summary shipped = core::load_report_summary(path);
  const core::summary_entry& pick = shipped.entries.at(shipped.ours_energy_index);
  std::cout << "\nreloaded pick '" << pick.label << "' from " << shipped.network << " on "
            << shipped.platform << "\n";
  const core::evaluator runtime_eval{vis, xavier, {}};
  core::evaluation_engine runtime_engine{runtime_eval};
  const core::evaluation replay = runtime_engine.evaluate(pick.config);
  const core::evaluation replay_again = runtime_engine.evaluate(pick.config);
  const auto cache = runtime_engine.stats();
  std::cout << util::format("replayed metrics: %.2f mJ / %.2f ms / %.2f%%\n", replay.avg_energy_mj,
                            replay.avg_latency_ms, replay.accuracy_pct);
  std::cout << util::format(
      "runtime engine: %zu evaluator run(s), %zu cache hit(s) for 2 queries "
      "(hit served bit-identically: %s)\n",
      cache.misses, cache.hits, replay_again.objective == replay.objective ? "yes" : "NO");

  // 4. Warm-session rerun: the same request again is served mostly from the
  // session memo cache (and never retrains the surrogate).
  const serving::mapping_report rerun = service.map(req);
  std::cout << util::format(
      "\nwarm rerun: %zu evaluator runs vs %zu cold (surrogate retrained: %s)\n",
      rerun.search_cache.misses + rerun.validation_cache.misses,
      report.search_cache.misses + report.validation_cache.misses,
      rerun.trained_surrogate ? "yes (BUG)" : "no");

  // 5. Multi-client mode: `clients` threads submit duplicate-heavy traffic
  // concurrently. The request scheduler coalesces identical requests onto
  // one execution each (and the warm session serves those from cache), so
  // executions stay ~= distinct requests however many clients pile on.
  if (clients > 0) {
    const std::size_t per_client = 3;
    const serving::scheduler_stats before = service.scheduler();
    std::vector<std::shared_future<serving::mapping_report>> futures(clients * per_client);
    {
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (std::size_t c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
          for (std::size_t i = 0; i < per_client; ++i) {
            serving::mapping_request dup = req;  // identical across clients
            dup.ga.seed = req.ga.seed + i;       // i > 0: per-round variants
            futures[c * per_client + i] = service.submit(dup);
          }
        });
      for (std::thread& t : threads) t.join();
    }
    for (auto& f : futures) (void)f.get();
    const serving::scheduler_stats stats = service.scheduler();
    std::cout << util::format(
        "\nmulti-client: %zu clients x %zu submits -> %zu executions, %zu coalesced "
        "(plus warm-session cache under the executions)\n",
        clients, per_client, stats.completed - before.completed,
        stats.coalesced - before.coalesced);
  }

  // 6. Persist the captured traffic for offline replay (bench/trace_replay
  // re-runs it against a candidate build and reports p50/p95/p99).
  if (trace) {
    core::save_trace(trace_path, trace->snapshot());
    std::cout << "\ncaptured " << trace->size() << " submit(s) to " << trace_path << "\n";
  }

  // 7. Durable shutdown: spill every warm session so the next run pointed
  // at the same --snapshot-dir boots warm instead of re-searching.
  if (!snapshot_dir.empty()) {
    const std::size_t spilled = service.spill_sessions();
    std::cout << util::format("\nspilled %zu warm session(s) to %s for the next boot\n", spilled,
                              snapshot_dir.c_str());
  }

  const bool identical = replay.avg_energy_mj == winner.avg_energy_mj &&
                         replay.avg_latency_ms == winner.avg_latency_ms &&
                         replay.accuracy_pct == winner.accuracy_pct &&
                         replay.avg_energy_mj == pick.avg_energy_mj;
  std::cout << (identical ? "shipped artifact reproduces the search exactly.\n"
                          : "WARNING: replay diverged from the searched metrics!\n");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
