// Deployment workflow on the serving front-end: submit a search
// asynchronously, ship the resulting mapping report (validated front +
// picks), then reload it (as a runtime daemon on the MPSoC would) and
// re-evaluate the shipped pick to confirm the artifact reproduces the
// searched performance bit-for-bit. A second, synchronous request against
// the same warm session shows the memo cache persisting across runs.
//
// Build & run:
//   ./build/examples/search_and_ship [generations] [population] [islands] [clients]
// `islands` > 1 shards the population into an island-model search
// (ga_options::island) — same serving API, same shippable artifact.
// `clients` > 0 adds a multi-client demo: that many concurrent submitters
// hammer the warm service with duplicate-heavy traffic and the request
// scheduler coalesces them (see docs/SERVING.md).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "perf/calibration.h"
#include "serving/mapping_service.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace mapcq;
  const std::size_t generations = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30;
  const std::size_t population = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30;
  const std::size_t islands = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 1;
  const std::size_t clients = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 0;

  const nn::network vis = nn::build_visformer();
  const nn::network vgg = nn::build_vgg19();
  const soc::platform xavier = perf::calibrated_xavier(vis, vgg).plat;

  // 1. Search: async submission against the serving front-end.
  serving::mapping_service service;
  service.register_network(vis);
  service.register_platform(xavier);

  serving::mapping_request req;
  req.network = vis.name;
  req.orientation = serving::objective_orientation::energy;
  req.ga.generations = generations;
  req.ga.population = population;
  req.ga.island.islands = islands;
  auto pending = service.submit(req);
  std::cout << "request submitted (" << islands
            << " island(s)); waiting for the mapping report...\n";
  const serving::mapping_report report = pending.get();
  const core::evaluation& winner = report.best();
  std::cout << "searched: " << winner.config.describe(xavier) << "\n";
  std::cout << util::format("searched metrics: %.2f mJ / %.2f ms / %.2f%%\n",
                            winner.avg_energy_mj, winner.avg_latency_ms, winner.accuracy_pct);

  // 2. Ship: persist the report summary (front configurations + scalars).
  const std::string path = "/tmp/mapcq_shipped_report.txt";
  core::save_report_summary(path, report.summary());
  std::cout << "\nreport summary (" << report.front.size() << " front entries) written to " << path
            << ":\n";
  std::cout << core::to_text(report.summary()).substr(0, 260) << "...\n";

  // 3. Runtime side: reload the report, pick the shipped energy-oriented
  // configuration and re-evaluate it through a memoizing engine, the way a
  // serving daemon would answer repeated cost queries.
  const core::report_summary shipped = core::load_report_summary(path);
  const core::summary_entry& pick = shipped.entries.at(shipped.ours_energy_index);
  std::cout << "\nreloaded pick '" << pick.label << "' from " << shipped.network << " on "
            << shipped.platform << "\n";
  const core::evaluator runtime_eval{vis, xavier, {}};
  core::evaluation_engine runtime_engine{runtime_eval};
  const core::evaluation replay = runtime_engine.evaluate(pick.config);
  const core::evaluation replay_again = runtime_engine.evaluate(pick.config);
  const auto cache = runtime_engine.stats();
  std::cout << util::format("replayed metrics: %.2f mJ / %.2f ms / %.2f%%\n", replay.avg_energy_mj,
                            replay.avg_latency_ms, replay.accuracy_pct);
  std::cout << util::format(
      "runtime engine: %zu evaluator run(s), %zu cache hit(s) for 2 queries "
      "(hit served bit-identically: %s)\n",
      cache.misses, cache.hits, replay_again.objective == replay.objective ? "yes" : "NO");

  // 4. Warm-session rerun: the same request again is served mostly from the
  // session memo cache (and never retrains the surrogate).
  const serving::mapping_report rerun = service.map(req);
  std::cout << util::format(
      "\nwarm rerun: %zu evaluator runs vs %zu cold (surrogate retrained: %s)\n",
      rerun.search_cache.misses + rerun.validation_cache.misses,
      report.search_cache.misses + report.validation_cache.misses,
      rerun.trained_surrogate ? "yes (BUG)" : "no");

  // 5. Multi-client mode: `clients` threads submit duplicate-heavy traffic
  // concurrently. The request scheduler coalesces identical requests onto
  // one execution each (and the warm session serves those from cache), so
  // executions stay ~= distinct requests however many clients pile on.
  if (clients > 0) {
    const std::size_t per_client = 3;
    const serving::scheduler_stats before = service.scheduler();
    std::vector<std::shared_future<serving::mapping_report>> futures(clients * per_client);
    {
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (std::size_t c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
          for (std::size_t i = 0; i < per_client; ++i) {
            serving::mapping_request dup = req;  // identical across clients
            dup.ga.seed = req.ga.seed + i;       // i > 0: per-round variants
            futures[c * per_client + i] = service.submit(dup);
          }
        });
      for (std::thread& t : threads) t.join();
    }
    for (auto& f : futures) (void)f.get();
    const serving::scheduler_stats stats = service.scheduler();
    std::cout << util::format(
        "\nmulti-client: %zu clients x %zu submits -> %zu executions, %zu coalesced "
        "(plus warm-session cache under the executions)\n",
        clients, per_client, stats.completed - before.completed,
        stats.coalesced - before.coalesced);
  }

  const bool identical = replay.avg_energy_mj == winner.avg_energy_mj &&
                         replay.avg_latency_ms == winner.avg_latency_ms &&
                         replay.accuracy_pct == winner.accuracy_pct &&
                         replay.avg_energy_mj == pick.avg_energy_mj;
  std::cout << (identical ? "shipped artifact reproduces the search exactly.\n"
                          : "WARNING: replay diverged from the searched metrics!\n");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
