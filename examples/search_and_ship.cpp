// Deployment workflow: search once on the workstation, persist the winning
// configuration, then reload it (as a runtime daemon on the MPSoC would)
// and re-evaluate to confirm the shipped artifact reproduces the searched
// performance bit-for-bit.

#include <cstdio>
#include <iostream>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/optimizer.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "perf/calibration.h"
#include "util/strings.h"

int main() {
  using namespace mapcq;
  const nn::network vis = nn::build_visformer();
  const nn::network vgg = nn::build_vgg19();
  const soc::platform xavier = perf::calibrated_xavier(vis, vgg).plat;

  // 1. Search (small budget for the demo).
  core::optimizer_options opt;
  opt.ga.generations = 30;
  opt.ga.population = 30;
  core::optimizer mapper{vis, xavier, opt};
  const auto res = mapper.run();
  const core::evaluation& winner = res.ours_energy();
  std::cout << "searched: " << winner.config.describe(xavier) << "\n";
  std::cout << util::format("searched metrics: %.2f mJ / %.2f ms / %.2f%%\n",
                            winner.avg_energy_mj, winner.avg_latency_ms, winner.accuracy_pct);

  // 2. Ship: persist the configuration.
  const std::string path = "/tmp/mapcq_shipped_config.txt";
  core::save_configuration(path, winner.config);
  std::cout << "\nconfiguration written to " << path << ":\n";
  std::cout << core::to_text(winner.config).substr(0, 220) << "...\n";

  // 3. Runtime side: reload and re-evaluate through a memoizing engine, the
  // way a serving daemon would answer repeated cost queries for the shipped
  // configuration. The second query is a pure cache hit.
  const core::configuration loaded = core::load_configuration(path);
  const core::evaluator runtime_eval{vis, xavier, {}};
  core::evaluation_engine runtime_engine{runtime_eval};
  const core::evaluation replay = runtime_engine.evaluate(loaded);
  const core::evaluation replay_again = runtime_engine.evaluate(loaded);
  const auto cache = runtime_engine.stats();
  std::cout << util::format("\nreplayed metrics: %.2f mJ / %.2f ms / %.2f%%\n",
                            replay.avg_energy_mj, replay.avg_latency_ms, replay.accuracy_pct);
  std::cout << util::format(
      "runtime engine: %zu evaluator run(s), %zu cache hit(s) for 2 queries "
      "(hit served bit-identically: %s)\n",
      cache.misses, cache.hits,
      replay_again.objective == replay.objective ? "yes" : "NO");

  const bool identical = replay.avg_energy_mj == winner.avg_energy_mj &&
                         replay.avg_latency_ms == winner.avg_latency_ms &&
                         replay.accuracy_pct == winner.accuracy_pct;
  std::cout << (identical ? "shipped artifact reproduces the search exactly.\n"
                          : "WARNING: replay diverged from the searched metrics!\n");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
