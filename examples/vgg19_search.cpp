// VGG19 scenario (paper §VI-D): the over-parameterized CNN case where
// dynamic width-partitioned mapping shines -- most samples exit early and
// the multi-exit model beats the static baseline's accuracy.
//
// Usage: ./build/examples/vgg19_search [generations] [population]

#include <cstdlib>
#include <iostream>

#include "core/baselines.h"
#include "nn/flops.h"
#include "nn/models.h"
#include "perf/calibration.h"
#include "serving/mapping_service.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mapcq;
  const std::size_t generations = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const std::size_t population = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 40;

  const nn::network visformer = nn::build_visformer();
  const nn::network vgg = nn::build_vgg19();
  const soc::platform xavier = perf::calibrated_xavier(visformer, vgg).plat;

  std::cout << "VGG19 on CIFAR-100 — workload composition (top layers by FLOPs):\n";
  std::cout << nn::cost_table(vgg, 8) << "\n";

  const auto gpu = core::single_cu_baseline(vgg, xavier, 0);
  const auto dla = core::single_cu_baseline(vgg, xavier, 1);
  std::cout << util::format("GPU-only: %.2f mJ / %.2f ms | DLA-only: %.2f mJ / %.2f ms\n\n",
                            gpu.energy_mj, gpu.latency_ms, dla.energy_mj, dla.latency_ms);

  serving::mapping_service service;
  service.register_network(vgg);
  service.register_platform(xavier);
  serving::mapping_request req;
  req.network = vgg.name;
  req.orientation = serving::objective_orientation::energy;
  req.ga.generations = generations;
  req.ga.population = population;
  const serving::mapping_report res = service.map(req);
  const core::evaluation& best = res.best();

  std::cout << "energy-oriented dynamic mapping found by the search:\n";
  std::cout << "  " << best.config.describe(xavier) << "\n\n";

  util::table t({"stage", "CU", "exit acc (%)", "T_Si (ms)", "E_Si (mJ)", "exit share (%)"});
  for (std::size_t i = 0; i < best.stage_latency_ms.size(); ++i) {
    const auto& cu = xavier.unit(best.config.mapping[i]);
    t.add_row({util::format("S%zu", i + 1), cu.name, util::table::num(best.stage_accuracy_pct[i]),
               util::table::num(best.stage_latency_ms[i]),
               util::table::num(best.stage_energy_mj[i]),
               util::table::num(100.0 * best.exit_fractions[i], 1)});
  }
  std::cout << t.str() << "\n";

  const double early = 100.0 * (1.0 - best.exit_fractions.back());
  std::cout << util::format(
      "top-1 %.2f%% (static VGG19: %.2f%%) | avg %.2f mJ, %.2f ms | %.0f%% exit early\n",
      best.accuracy_pct, vgg.base_accuracy, best.avg_energy_mj, best.avg_latency_ms, early);
  std::cout << util::format(
      "energy gain vs GPU-only: %.2fx | speedup vs DLA-only: %.2fx (paper: 4.62x / 4.44x)\n",
      gpu.energy_mj / best.avg_energy_mj, dla.latency_ms / res.ours_latency().avg_latency_ms);
  return 0;
}
