// Mapping onto a user-defined MPSoC: the framework is not tied to the
// Xavier. This example describes a hypothetical automotive SoC (a big GPU,
// one NPU-like accelerator and a DSP-like unit), maps the small CNN onto
// it, and prints how the mapping decisions shift with the platform.

#include <iostream>

#include "core/baselines.h"
#include "core/optimizer.h"
#include "nn/models.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

mapcq::soc::platform build_automotive_soc() {
  using namespace mapcq::soc;
  platform p;
  p.name = "hypothetical automotive SoC";

  compute_unit gpu;
  gpu.name = "bigGPU";
  gpu.kind = cu_kind::gpu;
  gpu.peak_gflops = 20000.0;
  gpu.mem_bandwidth_gbps = 200.0;
  gpu.launch_overhead_ms = 0.01;
  gpu.efficiency_spatial = 0.01;
  gpu.efficiency_matmul = 0.015;
  gpu.occupancy_floor = 0.3;
  gpu.occupancy_exponent = 0.8;
  gpu.static_power_w = 2.5;
  gpu.dynamic_power_w = 45.0;
  gpu.gated_idle_w = 0.4;
  gpu.dvfs = dvfs_table{{300.0, 600.0, 900.0, 1200.0, 1500.0}};

  compute_unit npu;
  npu.name = "NPU";
  npu.kind = cu_kind::dla;
  npu.peak_gflops = 8000.0;
  npu.mem_bandwidth_gbps = 50.0;
  npu.launch_overhead_ms = 0.04;
  npu.efficiency_spatial = 0.012;
  npu.efficiency_matmul = 0.003;  // attention-hostile, like a DLA
  npu.occupancy_floor = 0.75;
  npu.occupancy_exponent = 1.0;
  npu.static_power_w = 0.3;
  npu.dynamic_power_w = 2.5;
  npu.gated_idle_w = 0.05;
  npu.dvfs = dvfs_table{{200.0, 400.0, 800.0, 1000.0}};

  compute_unit dsp;
  dsp.name = "DSP";
  dsp.kind = cu_kind::cpu;
  dsp.peak_gflops = 400.0;
  dsp.mem_bandwidth_gbps = 30.0;
  dsp.launch_overhead_ms = 0.005;
  dsp.efficiency_spatial = 0.2;
  dsp.efficiency_matmul = 0.25;
  dsp.occupancy_floor = 0.6;
  dsp.occupancy_exponent = 1.0;
  dsp.static_power_w = 0.5;
  dsp.dynamic_power_w = 4.0;
  dsp.gated_idle_w = 0.1;
  dsp.dvfs = dvfs_table{{400.0, 800.0, 1200.0}};

  p.units = {gpu, npu, dsp};
  p.shared_memory_bytes = 64.0 * 1024 * 1024;
  p.validate();
  return p;
}

}  // namespace

int main() {
  using namespace mapcq;
  const soc::platform soc = build_automotive_soc();
  const nn::network net = nn::build_simple_cnn();

  std::cout << "platform: " << soc.name << " with " << soc.size() << " CUs\n";
  util::table units({"CU", "peak GFLOPS", "bandwidth (GB/s)", "P_dyn (W)", "DVFS levels"});
  for (std::size_t u = 0; u < soc.size(); ++u) {
    const auto& cu = soc.unit(u);
    units.add_row({cu.name, util::table::num(cu.peak_gflops, 0),
                   util::table::num(cu.mem_bandwidth_gbps, 0),
                   util::table::num(cu.dynamic_power_w, 1), std::to_string(cu.dvfs.levels())});
  }
  std::cout << units.str() << "\n";

  util::table t({"deployment", "energy (mJ)", "latency (ms)", "top-1 (%)"});
  for (std::size_t u = 0; u < soc.size(); ++u) {
    const auto b = core::single_cu_baseline(net, soc, u);
    t.add_row({b.name, util::table::num(b.energy_mj), util::table::num(b.latency_ms),
               util::table::num(b.accuracy_pct)});
  }

  core::optimizer_options opt;
  opt.ga.generations = 40;
  opt.ga.population = 30;
  core::optimizer mapper{net, soc, opt};
  const auto res = mapper.run();
  const auto& ours = res.ours_energy();
  t.add_row({"Map-and-Conquer", util::table::num(ours.avg_energy_mj),
             util::table::num(ours.avg_latency_ms), util::table::num(ours.accuracy_pct)});
  std::cout << t.str() << "\n";
  std::cout << "chosen mapping: " << ours.config.describe(soc) << "\n";
  return 0;
}
