// DVFS exploration (the theta axis of the search space): sweep the GPU and
// DLA frequency tables for whole-network Visformer inference and print the
// latency/energy trade-off curve that eq. 10 produces. The energy-optimal
// operating point is usually *not* the lowest frequency: static power makes
// very slow runs expensive again.

#include <iostream>

#include "nn/models.h"
#include "perf/calibration.h"
#include "perf/single_cu.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace mapcq;
  const nn::network vis = nn::build_visformer();
  const nn::network vgg = nn::build_vgg19();
  const soc::platform xavier = perf::calibrated_xavier(vis, vgg).plat;

  for (const std::size_t unit_idx : {std::size_t{0}, std::size_t{1}}) {
    const auto& cu = xavier.unit(unit_idx);
    std::cout << "=== Visformer on " << cu.name << " across DVFS levels ===\n";
    util::table t({"level", "freq (MHz)", "theta", "latency (ms)", "energy (mJ)", "power (W)"});
    double best_energy = 1e300;
    std::size_t best_level = 0;
    for (std::size_t l = 0; l < cu.dvfs.levels(); ++l) {
      const auto run = perf::single_cu_run(vis, cu, l);
      if (run.energy_mj < best_energy) {
        best_energy = run.energy_mj;
        best_level = l;
      }
      t.add_row({std::to_string(l), util::table::num(cu.dvfs.frequency_mhz(l), 0),
                 util::table::num(cu.theta(l), 3), util::table::num(run.latency_ms),
                 util::table::num(run.energy_mj),
                 util::table::num(run.energy_mj / run.latency_ms)});
    }
    std::cout << t.str();
    std::cout << util::format("energy-optimal level: %zu (%.0f MHz) at %.2f mJ\n\n", best_level,
                              cu.dvfs.frequency_mhz(best_level), best_energy);
  }
  std::cout << "the GA searches this axis jointly with partitioning and mapping\n"
               "(paper: |theta| = 50 combinations folded into the §V-A estimate).\n";
  return 0;
}
