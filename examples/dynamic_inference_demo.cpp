// Anatomy of one dynamic inference: transform a Visformer with a hand-made
// configuration, show the concurrent schedule as a Gantt chart (stalls on
// inter-stage feature transfers, paper Fig. 3), and sweep the runtime
// controller threshold to show the accuracy/cost trade-off a deployment
// would tune (paper §III-B delegates this to runtime controllers [17]).

#include <iostream>

#include "core/dynamic_transform.h"
#include "core/evaluator.h"
#include "data/exit_simulator.h"
#include "nn/models.h"
#include "perf/calibration.h"
#include "perf/trace.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace mapcq;
  const nn::network vis = nn::build_visformer();
  const nn::network vgg = nn::build_vgg19();
  const soc::platform xavier = perf::calibrated_xavier(vis, vgg).plat;

  // Hand-made configuration: fat DLA stage 1, medium DLA stage 2, GPU
  // cleanup stage -- the shape the energy-oriented search converges to.
  const auto groups = nn::make_partition_groups(vis);
  core::configuration cfg;
  cfg.partition.assign(groups.size(), {0.5, 0.25, 0.25});
  cfg.forward.assign(groups.size(), {true, true, false});
  cfg.mapping = {1, 2, 0};  // S1->DLA0, S2->DLA1, S3->GPU
  cfg.dvfs = {xavier.unit(0).dvfs.max_level(), xavier.unit(1).dvfs.max_level(),
              xavier.unit(2).dvfs.max_level()};

  std::vector<std::int64_t> widths;
  for (const auto& g : groups) widths.push_back(g.width);
  const nn::ranked_network ranking{vis, widths};
  const auto dyn = core::transform(vis, groups, ranking, cfg, xavier);

  std::cout << "configuration: " << cfg.describe(xavier) << "\n";
  std::cout << util::format("stored fmaps for reuse: %s (budget %s)\n\n",
                            util::human_bytes(dyn.stored_fmap_bytes).c_str(),
                            util::human_bytes(xavier.shared_memory_bytes).c_str());

  const auto exec = perf::simulate(xavier, dyn.plan);
  std::cout << "concurrent schedule (worst case, all three stages instantiated):\n";
  std::cout << perf::render_gantt(exec, dyn.plan, xavier, 72) << "\n";

  const core::evaluator ev{vis, xavier, {}};
  const auto e = ev.evaluate(cfg);

  util::table stages({"stage", "exit acc (%)", "T_Si (ms)", "E_Si (mJ)", "ideal exit share"});
  for (std::size_t i = 0; i < e.stage_latency_ms.size(); ++i)
    stages.add_row({util::format("S%zu", i + 1), util::table::num(e.stage_accuracy_pct[i]),
                    util::table::num(e.stage_latency_ms[i]),
                    util::table::num(e.stage_energy_mj[i]),
                    util::table::num(100.0 * e.exit_fractions[i], 1) + "%"});
  std::cout << stages.str() << "\n";

  std::cout << "runtime-controller threshold sweep (noise 0.05):\n";
  util::table sweep({"threshold", "accuracy (%)", "avg latency (ms)", "avg energy (mJ)"});
  for (const double th : {-0.1, 0.0, 0.1, 0.2}) {
    data::controller_params cp;
    cp.threshold = th;
    const auto out = data::simulate_threshold(e.stage_accuracy_pct, 10000, cp);
    // Exit-weighted costs under this controller.
    double lat = 0.0;
    double en = 0.0;
    double run_lat = 0.0;
    double run_en = 0.0;
    for (std::size_t m = 0; m < out.exit_fractions.size(); ++m) {
      run_lat = std::max(run_lat, e.stage_latency_ms[m]);
      run_en += e.stage_energy_mj[m];
      lat += out.exit_fractions[m] * run_lat;
      en += out.exit_fractions[m] * run_en;
    }
    sweep.add_row({util::table::num(th, 2), util::table::num(out.dynamic_accuracy_pct),
                   util::table::num(lat), util::table::num(en)});
  }
  std::cout << sweep.str();
  std::cout << "\nhigher thresholds push samples to deeper stages: accuracy recovers\n"
               "toward the ideal mapping at the cost of latency and energy.\n";
  return 0;
}
