// Quickstart: map a Visformer onto a (calibrated) Jetson AGX Xavier model
// through the serving front-end, compare the single-CU baselines against a
// searched dynamic mapping, and print the winning configuration.
//
// Build & run:  ./build/examples/quickstart [--config file.json]
//                                           [--set dotted.key=value ...]
//                                           [--dump-config]
// The whole deployment is driven by one serving::service_config JSON
// document (docs/SERVING.md has the reference): --config boots from a
// file, --set applies individual overrides on top ("--set
// ga.generations=60"), and --dump-config prints the effective config with
// every default filled in, then exits.

#include <iostream>
#include <string_view>

#include "core/baselines.h"
#include "nn/models.h"
#include "perf/calibration.h"
#include "serving/mapping_service.h"
#include "serving/service_config.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mapcq;

  // Example preset: a quick interactive budget; a --config file replaces
  // it wholesale (files start from the library defaults, 200 x 60).
  serving::service_config cfg;
  cfg.ga.generations = 40;
  cfg.ga.population = 30;

  bool dump_config = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    try {
      if (arg == "--config" && i + 1 < argc) {
        cfg = serving::load_config(argv[++i]);
      } else if (arg == "--set" && i + 1 < argc) {
        serving::apply_override(cfg, argv[++i]);
      } else if (arg == "--dump-config") {
        dump_config = true;
      } else {
        std::cerr << "usage: quickstart [--config file.json] [--set dotted.key=value ...] "
                     "[--dump-config]\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "quickstart: " << e.what() << "\n";
      return 2;
    }
  }
  if (dump_config) {
    std::cout << serving::dump_config(cfg);
    return 0;
  }

  // 1. Networks (CIFAR-100 variants used in the paper).
  const nn::network visformer = nn::build_visformer();
  const nn::network vgg = nn::build_vgg19();
  std::cout << "Visformer: " << util::human_flops(visformer.total_flops()) << ", "
            << util::format("%.1fM params\n", visformer.total_params() / 1e6);

  // 2. Platform, calibrated against the paper's measured baselines.
  const perf::calibrated_platform cal = perf::calibrated_xavier(visformer, vgg);
  const soc::platform& xavier = cal.plat;

  // 3. Baselines: whole network on a single CU.
  util::table t({"deployment", "latency (ms)", "energy (mJ)", "top-1 (%)"});
  const auto gpu = core::single_cu_baseline(visformer, xavier, xavier.first_of(soc::cu_kind::gpu));
  const auto dla = core::single_cu_baseline(visformer, xavier, xavier.first_of(soc::cu_kind::dla));
  t.add_row({gpu.name, util::table::num(gpu.latency_ms), util::table::num(gpu.energy_mj),
             util::table::num(gpu.accuracy_pct)});
  t.add_row({dla.name, util::table::num(dla.latency_ms), util::table::num(dla.energy_mj),
             util::table::num(dla.accuracy_pct)});

  // 4. Map-and-Conquer search through the serving front-end, booted from
  // the effective config: register the network/platform once, then issue a
  // structured request. Repeated requests against the same session reuse
  // its memo cache and surrogate.
  serving::mapping_service service{cfg.service};
  service.register_network(visformer);
  service.register_platform(xavier);

  serving::mapping_request req;
  req.network = visformer.name;
  req.ga = cfg.ga;
  req.eval.contention = cfg.scenario;
  const serving::mapping_report result = service.map(req);

  const core::evaluation& ours_e = result.ours_energy();
  const core::evaluation& ours_l = result.ours_latency();
  t.add_row({"Ours-L (latency-oriented)", util::table::num(ours_l.avg_latency_ms),
             util::table::num(ours_l.avg_energy_mj), util::table::num(ours_l.accuracy_pct)});
  t.add_row({"Ours-E (energy-oriented)", util::table::num(ours_e.avg_latency_ms),
             util::table::num(ours_e.avg_energy_mj), util::table::num(ours_e.accuracy_pct)});
  std::cout << t.str();

  std::cout << "\nOurs-E mapping: " << ours_e.config.describe(xavier) << "\n";
  std::cout << util::format(
      "searched %zu configurations; %zu on the Pareto front; surrogate MAPE %.1f%% (latency)\n",
      result.search.total_evaluations, result.front.size(),
      result.surrogate_fidelity ? result.surrogate_fidelity->latency_mape : 0.0);
  std::cout << util::format(
      "search cache: %.1f%% of %zu lookups served without an evaluator run "
      "(%zu hits, %zu in-batch dups, %zu distinct evaluations)\n",
      100.0 * result.search_cache.hit_rate(), result.search_cache.lookups(),
      result.search_cache.hits, result.search_cache.dedup, result.search_cache.misses);
  std::cout << util::format(
      "validation: %zu picks, %zu served from the session cache\n",
      result.validation_cache.lookups(),
      result.validation_cache.hits + result.validation_cache.dedup);
  std::cout << util::format("energy gain vs GPU-only: %.2fx | speedup vs DLA-only: %.2fx\n",
                            gpu.energy_mj / ours_e.avg_energy_mj,
                            dla.latency_ms / ours_l.avg_latency_ms);
  return 0;
}
