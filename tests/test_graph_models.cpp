#include "nn/graph.h"
#include "nn/models.h"

#include <gtest/gtest.h>

#include "nn/flops.h"
#include "nn/partition_groups.h"

namespace {

using namespace mapcq::nn;

TEST(graph, validate_rejects_shape_break) {
  network net;
  net.name = "bad";
  net.input = {3, 32, 32};
  net.classes = 10;
  net.layers.push_back(make_conv2d("c1", {3, 32, 32}, 8, 3, 1, 1));
  net.layers.push_back(make_conv2d("c2", {16, 32, 32}, 8, 3, 1, 1));  // wrong in-ch
  net.layers.push_back(make_classifier("fc", 8, 10));
  EXPECT_THROW(net.validate(), std::logic_error);
}

TEST(graph, validate_requires_classifier_tail) {
  network net;
  net.name = "no-head";
  net.input = {3, 32, 32};
  net.classes = 10;
  net.layers.push_back(make_conv2d("c1", {3, 32, 32}, 8, 3, 1, 1));
  EXPECT_THROW(net.validate(), std::logic_error);
}

TEST(graph, validate_rejects_empty) {
  network net;
  net.name = "empty";
  net.classes = 10;
  net.input = {3, 32, 32};
  EXPECT_THROW(net.validate(), std::logic_error);
}

TEST(visformer, builds_and_validates) {
  const network net = build_visformer();
  EXPECT_EQ(net.classes, 100);
  EXPECT_GT(net.depth(), 30u);
  EXPECT_EQ(net.layers.back().kind, layer_kind::classifier);
}

TEST(visformer, flops_in_expected_band) {
  const network net = build_visformer();
  EXPECT_GT(net.total_flops(), 0.3e9);
  EXPECT_LT(net.total_flops(), 1.5e9);
}

TEST(visformer, feature_dim_matches_last_stage) {
  EXPECT_EQ(build_visformer().feature_dim(), 384);
}

TEST(visformer, has_attention_layers) {
  const network net = build_visformer();
  int attn = 0;
  for (const auto& l : net.layers)
    if (l.kind == layer_kind::attention) ++attn;
  EXPECT_EQ(attn, 8);  // 4 blocks x 2 transformer stages
}

TEST(vgg19, builds_and_validates) {
  const network net = build_vgg19();
  EXPECT_EQ(net.classes, 100);
  int convs = 0;
  for (const auto& l : net.layers)
    if (l.kind == layer_kind::conv2d) ++convs;
  EXPECT_EQ(convs, 16);  // configuration E
}

TEST(vgg19, flops_exceed_visformer) {
  EXPECT_GT(build_vgg19().total_flops(), build_visformer().total_flops());
}

TEST(vgg19, params_dominated_by_convs) {
  const network net = build_vgg19();
  EXPECT_GT(net.total_params(), 10e6);
  EXPECT_DOUBLE_EQ(net.total_weight_bytes(), net.total_params() * fp16_bytes);
}

TEST(simple_cnn, small_and_valid) {
  const network net = build_simple_cnn();
  EXPECT_EQ(net.classes, 10);
  EXPECT_LT(net.total_flops(), 0.2e9);
}

TEST(graph, peak_activation_positive) {
  EXPECT_GT(build_visformer().peak_activation_bytes(), 0.0);
}

TEST(graph, partitionable_layers_excludes_tail) {
  const network net = build_simple_cnn();
  const auto idx = net.partitionable_layers();
  EXPECT_FALSE(idx.empty());
  // global pool and classifier are not partitionable
  EXPECT_LT(idx.back(), net.depth() - 2);
}

TEST(partition_groups, lead_layers_are_width_defining) {
  const network net = build_visformer();
  const auto groups = make_partition_groups(net);
  EXPECT_GT(groups.size(), 10u);
  for (const auto& g : groups) {
    const layer_kind k = net.layers[g.lead].kind;
    EXPECT_TRUE(k == layer_kind::conv2d || k == layer_kind::patch_embed ||
                k == layer_kind::linear || k == layer_kind::attention || k == layer_kind::mlp);
    EXPECT_GT(g.width, 0);
    EXPECT_FALSE(g.members.empty());
    EXPECT_EQ(g.members.front(), g.lead);
  }
}

TEST(partition_groups, members_cover_all_partitionable_layers_once) {
  const network net = build_vgg19();
  const auto groups = make_partition_groups(net);
  std::vector<bool> seen(net.depth(), false);
  for (const auto& g : groups)
    for (const std::size_t m : g.members) {
      EXPECT_FALSE(seen[m]) << "layer in two groups";
      seen[m] = true;
    }
  for (std::size_t j = 0; j < net.depth(); ++j)
    EXPECT_EQ(seen[j], net.layers[j].partitionable) << "layer " << j;
}

TEST(partition_groups, group_output_bytes_scale_with_fraction) {
  const network net = build_simple_cnn();
  const auto groups = make_partition_groups(net);
  const auto& g = groups.front();
  EXPECT_NEAR(g.output_bytes(net, 0.5), 0.5 * g.output_bytes(net, 1.0), 1e-9);
}

TEST(partition_groups, vgg_group_count_matches_width_layers) {
  const network net = build_vgg19();
  // 16 convs + 2 hidden FCs = 18 width-defining layers.
  EXPECT_EQ(make_partition_groups(net).size(), 18u);
}

TEST(flops_analysis, shares_sum_to_one) {
  const network net = build_visformer();
  double total_share = 0.0;
  for (const auto& c : analyze(net)) total_share += c.share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(flops_analysis, cost_table_renders) {
  const network net = build_simple_cnn();
  const std::string t = cost_table(net, 5);
  EXPECT_NE(t.find("conv"), std::string::npos);
}

}  // namespace
