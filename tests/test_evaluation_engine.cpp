// Memoizing evaluation-engine tests: hash/equality identity, bit-identical
// cached results, in-batch dedup, cross-thread in-flight dedup, async batch
// futures, concurrent batch determinism, capacity eviction and GA
// cache-stat accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/evolutionary.h"
#include "nn/models.h"
#include "soc/platform.h"
#include "util/hashing.h"

namespace {

using namespace mapcq;
using core::configuration;
using core::engine_options;
using core::evaluation;
using core::evaluation_engine;
using core::evaluator;
using core::search_space;

struct engine_fixture : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  search_space space{net, plat};
  evaluator eval{net, plat, {}};

  std::vector<configuration> random_configs(std::size_t n, std::uint64_t seed = 3) const {
    util::rng gen{seed};
    std::vector<configuration> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(space.decode(space.random(gen)));
    return out;
  }
};

// Exact, field-by-field equality of two evaluations.
void expect_identical(const evaluation& a, const evaluation& b) {
  EXPECT_TRUE(a.config == b.config);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.reject_reason, b.reject_reason);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.avg_latency_ms, b.avg_latency_ms);
  EXPECT_EQ(a.avg_energy_mj, b.avg_energy_mj);
  EXPECT_EQ(a.worst_latency_ms, b.worst_latency_ms);
  EXPECT_EQ(a.worst_energy_mj, b.worst_energy_mj);
  EXPECT_EQ(a.accuracy_pct, b.accuracy_pct);
  EXPECT_EQ(a.last_stage_accuracy_pct, b.last_stage_accuracy_pct);
  EXPECT_EQ(a.fmap_reuse_pct, b.fmap_reuse_pct);
  EXPECT_EQ(a.stored_fmap_bytes, b.stored_fmap_bytes);
  EXPECT_EQ(a.fmap_traffic_bytes, b.fmap_traffic_bytes);
  EXPECT_EQ(a.stage_latency_ms, b.stage_latency_ms);
  EXPECT_EQ(a.stage_energy_mj, b.stage_energy_mj);
  EXPECT_EQ(a.stage_accuracy_pct, b.stage_accuracy_pct);
  EXPECT_EQ(a.exit_fractions, b.exit_fractions);
}

TEST_F(engine_fixture, configuration_hash_tracks_equality) {
  const auto configs = random_configs(8);
  for (const auto& a : configs) {
    configuration copy = a;
    EXPECT_TRUE(copy == a);
    EXPECT_EQ(copy.hash(), a.hash());
  }
  // Any single-field change must break equality (hash almost surely too).
  configuration c = configs.front();
  configuration d = c;
  d.partition[0][0] += 1e-9;
  d.partition[0][1] -= 1e-9;
  EXPECT_FALSE(d == c);
  configuration f = c;
  if (f.stages() > 1) {
    f.forward[0][0] = !f.forward[0][0];
    EXPECT_FALSE(f == c);
    EXPECT_NE(f.hash(), c.hash());
  }
  configuration m = c;
  std::swap(m.mapping[0], m.mapping[m.mapping.size() - 1]);
  EXPECT_FALSE(m == c);
  EXPECT_NE(m.hash(), c.hash());
}

TEST_F(engine_fixture, cached_result_is_bit_identical) {
  evaluation_engine engine{eval};
  const configuration c = random_configs(1).front();
  const evaluation direct = eval.evaluate(c);
  const evaluation first = engine.evaluate(c);   // miss
  const evaluation second = engine.evaluate(c);  // hit
  expect_identical(first, direct);
  expect_identical(second, direct);
  const auto s = engine.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(engine.size(), 1u);
}

TEST_F(engine_fixture, batch_collapses_duplicates_onto_one_run) {
  evaluation_engine engine{eval};
  const configuration c = random_configs(1).front();
  const std::vector<configuration> batch(10, c);
  const auto results = engine.evaluate_batch(batch);
  ASSERT_EQ(results.size(), 10u);
  for (const auto& r : results) expect_identical(r, results.front());
  const auto s = engine.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.dedup, 9u);
  EXPECT_EQ(s.hits, 0u);
  // A second pass over the same batch is all hits.
  (void)engine.evaluate_batch(batch);
  EXPECT_EQ(engine.stats().hits, 10u);
}

TEST_F(engine_fixture, concurrent_batch_matches_serial_and_is_deterministic) {
  const auto configs = random_configs(64);
  engine_options serial_opt;
  serial_opt.threads = 1;
  engine_options parallel_opt;
  parallel_opt.threads = 8;

  evaluation_engine serial{eval, serial_opt};
  evaluation_engine parallel{eval, parallel_opt};
  const auto a = serial.evaluate_batch(configs);
  const auto b = parallel.evaluate_batch(configs);
  const auto c = parallel.evaluate_batch(configs);  // warm pass
  ASSERT_EQ(a.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(b[i], a[i]);
    expect_identical(c[i], a[i]);
  }
  EXPECT_EQ(parallel.stats().hits, configs.size());
}

TEST_F(engine_fixture, capacity_bound_evicts_oldest_entries) {
  engine_options opt;
  opt.shards = 1;
  opt.capacity = 4;
  evaluation_engine engine{eval, opt};
  const auto configs = random_configs(10);
  for (const auto& c : configs) (void)engine.evaluate(c);
  EXPECT_LE(engine.size(), 4u);
  EXPECT_EQ(engine.stats().evictions, 6u);
  EXPECT_EQ(engine.stats().misses, 10u);

  // The most recent entry survived; the first was evicted and re-misses,
  // but still returns the exact same result.
  const evaluation direct = eval.evaluate(configs.front());
  (void)engine.evaluate(configs.back());
  EXPECT_EQ(engine.stats().hits, 1u);
  const evaluation refetched = engine.evaluate(configs.front());
  expect_identical(refetched, direct);
  EXPECT_EQ(engine.stats().misses, 11u);
}

TEST_F(engine_fixture, lru_eviction_retains_hot_keys_under_pressure) {
  engine_options opt;
  opt.shards = 1;
  opt.capacity = 4;
  opt.eviction = core::eviction_policy::lru;
  evaluation_engine engine{eval, opt};
  const auto configs = random_configs(6);

  for (std::size_t i = 0; i < 4; ++i) (void)engine.evaluate(configs[i]);  // fill
  (void)engine.evaluate(configs[0]);  // hit: configs[0] becomes hottest
  (void)engine.evaluate(configs[4]);  // evicts configs[1], the coldest
  (void)engine.evaluate(configs[0]);  // still cached
  (void)engine.evaluate(configs[5]);  // evicts configs[2]
  (void)engine.evaluate(configs[0]);  // still cached

  const auto lru = engine.stats();
  EXPECT_EQ(lru.misses, 6u);  // each distinct config ran exactly once
  EXPECT_EQ(lru.hits, 3u);
  EXPECT_EQ(lru.evictions, 2u);

  // The same access pattern under FIFO evicts the hot key: insertion order
  // ignores the hits, so configs[0] is the first victim.
  engine_options fifo_opt = opt;
  fifo_opt.eviction = core::eviction_policy::fifo;
  evaluation_engine fifo{eval, fifo_opt};
  for (std::size_t i = 0; i < 4; ++i) (void)fifo.evaluate(configs[i]);  // fill
  (void)fifo.evaluate(configs[0]);  // hit, but does not refresh
  (void)fifo.evaluate(configs[4]);  // evicts configs[0]
  const evaluation remiss = fifo.evaluate(configs[0]);  // miss again
  EXPECT_EQ(fifo.stats().misses, 6u);
  EXPECT_EQ(fifo.stats().hits, 1u);
  expect_identical(remiss, eval.evaluate(configs[0]));
}

TEST_F(engine_fixture, capacity_bound_holds_with_many_shards) {
  // capacity < shards must not inflate the bound via the per-shard floor.
  engine_options opt;
  opt.shards = 16;
  opt.capacity = 4;
  evaluation_engine engine{eval, opt};
  for (const auto& c : random_configs(12)) (void)engine.evaluate(c);
  EXPECT_LE(engine.size(), 4u);
  EXPECT_GE(engine.stats().evictions, 8u);
}

TEST_F(engine_fixture, clear_drops_entries_but_keeps_counters) {
  evaluation_engine engine{eval};
  const auto configs = random_configs(5);
  (void)engine.evaluate_batch(configs);
  EXPECT_EQ(engine.size(), 5u);
  engine.clear();
  EXPECT_EQ(engine.size(), 0u);
  EXPECT_EQ(engine.stats().misses, 5u);
  (void)engine.evaluate(configs.front());
  EXPECT_EQ(engine.stats().misses, 6u);
}

TEST_F(engine_fixture, pass_through_mode_never_caches) {
  engine_options opt;
  opt.memoize = false;
  evaluation_engine engine{eval, opt};
  const configuration c = random_configs(1).front();
  const evaluation a = engine.evaluate(c);
  const evaluation b = engine.evaluate(c);
  expect_identical(a, b);
  EXPECT_EQ(engine.stats().misses, 2u);
  EXPECT_EQ(engine.stats().hits, 0u);
  EXPECT_EQ(engine.size(), 0u);
}

TEST_F(engine_fixture, ga_reports_cache_stats_and_matches_bypass_run) {
  core::ga_options ga;
  ga.generations = 6;
  ga.population = 12;
  ga.threads = 4;
  ga.seed = 5;

  engine_options memo_opt;
  memo_opt.threads = ga.threads;
  engine_options bypass_opt = memo_opt;
  bypass_opt.memoize = false;

  evaluation_engine memo{eval, memo_opt};
  evaluation_engine bypass{eval, bypass_opt};
  const auto with_cache = core::evolve(space, memo, ga);
  const auto without_cache = core::evolve(space, bypass, ga);

  // Elites survive generations unchanged, so the cache must fire...
  EXPECT_GT(with_cache.cache.hits, 0u);
  EXPECT_GT(with_cache.cache.hit_rate(), 0.0);
  // ...and every candidate is accounted exactly once.
  EXPECT_EQ(with_cache.cache.lookups(), with_cache.total_evaluations);
  EXPECT_LT(with_cache.cache.misses, with_cache.total_evaluations);
  std::size_t history_hits = 0;
  std::size_t history_misses = 0;
  std::size_t history_dedup = 0;
  for (const auto& h : with_cache.history) {
    history_hits += h.cache_hits;
    history_misses += h.cache_misses;
    history_dedup += h.cache_dedup;
  }
  EXPECT_EQ(history_hits, with_cache.cache.hits);
  EXPECT_EQ(history_misses, with_cache.cache.misses);
  EXPECT_EQ(history_dedup, with_cache.cache.dedup);

  // Memoization must not change the search trajectory at all.
  EXPECT_EQ(with_cache.archive.size(), without_cache.archive.size());
  EXPECT_EQ(with_cache.best_index, without_cache.best_index);
  expect_identical(with_cache.best(), without_cache.best());
  ASSERT_EQ(with_cache.history.size(), without_cache.history.size());
  for (std::size_t g = 0; g < with_cache.history.size(); ++g) {
    EXPECT_EQ(with_cache.history[g].best_objective, without_cache.history[g].best_objective);
    EXPECT_EQ(with_cache.history[g].feasible, without_cache.history[g].feasible);
  }
  // Pass-through runs the evaluator for every single candidate.
  EXPECT_EQ(without_cache.cache.misses, without_cache.total_evaluations);
}

TEST_F(engine_fixture, racing_threads_on_one_candidate_run_the_evaluator_once) {
  // Cross-thread in-flight dedup: however many threads race the same
  // configuration, exactly one evaluator run happens — every other caller
  // is a cache hit or joins the in-flight slot. This must hold for any
  // interleaving, so the accounting below is exact, not probabilistic.
  evaluation_engine engine{eval};
  const configuration c = random_configs(1).front();
  const evaluation direct = eval.evaluate(c);

  constexpr std::size_t n_threads = 4;
  std::atomic<bool> go{false};
  std::vector<evaluation> results(n_threads);
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      results[t] = engine.evaluate(c);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  for (const auto& r : results) expect_identical(r, direct);
  const auto s = engine.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits + s.inflight, n_threads - 1);
  EXPECT_EQ(s.lookups(), n_threads);
  EXPECT_EQ(engine.size(), 1u);
}

TEST_F(engine_fixture, async_batch_matches_sync_batch_bit_for_bit) {
  const auto configs = random_configs(24);
  engine_options opt;
  opt.threads = 4;
  evaluation_engine sync_engine{eval, opt};
  evaluation_engine async_engine{eval, opt};

  const auto expected = sync_engine.evaluate_batch(configs);
  std::future<std::vector<evaluation>> fut = async_engine.evaluate_batch_async(configs);
  const auto got = fut.get();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) expect_identical(got[i], expected[i]);
  // Same accounting as the sync path: counters are final at submit time.
  EXPECT_EQ(async_engine.stats().misses, sync_engine.stats().misses);
  EXPECT_EQ(async_engine.stats().dedup, sync_engine.stats().dedup);
}

TEST_F(engine_fixture, overlapping_async_batches_share_in_flight_runs) {
  // Submit the same population twice before resolving either future. The
  // first submit claims every distinct candidate; the second, planned
  // synchronously afterwards, must find each one cached or in flight —
  // never re-running one. Exact for any pool interleaving.
  const auto configs = random_configs(16, 11);
  engine_options opt;
  opt.threads = 2;
  evaluation_engine engine{eval, opt};

  std::future<std::vector<evaluation>> a = engine.evaluate_batch_async(configs);
  std::future<std::vector<evaluation>> b = engine.evaluate_batch_async(configs);
  const auto ra = a.get();
  const auto rb = b.get();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) expect_identical(ra[i], rb[i]);

  const auto s = engine.stats();
  EXPECT_EQ(s.misses, configs.size());  // each distinct candidate ran once
  EXPECT_EQ(s.hits + s.inflight, configs.size());  // second batch joined or hit
  EXPECT_EQ(s.lookups(), 2 * configs.size());
}

TEST_F(engine_fixture, async_batch_without_pool_is_immediately_ready) {
  evaluation_engine engine{eval};  // threads = 1: inline evaluation
  const auto configs = random_configs(6, 23);
  std::future<std::vector<evaluation>> fut = engine.evaluate_batch_async(configs);
  ASSERT_TRUE(fut.valid());
  const auto out = fut.get();
  ASSERT_EQ(out.size(), configs.size());
  for (std::size_t i = 0; i < out.size(); ++i) expect_identical(out[i], eval.evaluate(configs[i]));
  EXPECT_EQ(engine.stats().misses, configs.size());
}

TEST_F(engine_fixture, dropping_an_async_future_still_populates_the_cache) {
  engine_options opt;
  opt.threads = 2;
  evaluation_engine engine{eval, opt};
  const auto configs = random_configs(8, 31);
  { auto dropped = engine.evaluate_batch_async(configs); }  // never get()
  // The enqueued runs complete regardless; a sync pass is then all-cached.
  const auto out = engine.evaluate_batch(configs);
  ASSERT_EQ(out.size(), configs.size());
  const auto s = engine.stats();
  EXPECT_EQ(s.misses, configs.size());
  EXPECT_EQ(s.hits + s.inflight, configs.size());
}

TEST(hashing, combine_is_order_and_length_sensitive) {
  std::size_t a = 0;
  util::hash_combine_range(a, std::vector<double>{1.0, 2.0});
  std::size_t b = 0;
  util::hash_combine_range(b, std::vector<double>{2.0, 1.0});
  EXPECT_NE(a, b);

  std::size_t c = 0;
  util::hash_combine_range(c, std::vector<double>{1.0, 2.0});
  EXPECT_EQ(a, c);

  // -0.0 and +0.0 compare equal, so they must hash equal.
  EXPECT_EQ(util::hash_double(-0.0), util::hash_double(0.0));
}

}  // namespace
