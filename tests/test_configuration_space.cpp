// Configuration (Pi) validation, fmap-reuse metric, search space bounds,
// genome decode, and the paper's §V-A complexity estimate.

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/search_space.h"
#include "nn/models.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using core::configuration;
using core::genome;
using core::search_space;

configuration valid_config(const soc::platform& plat, std::size_t groups) {
  const std::size_t m = plat.size();
  configuration c;
  c.partition.assign(groups, std::vector<double>(m, 1.0 / static_cast<double>(m)));
  c.forward.assign(groups, std::vector<bool>(m, true));
  c.mapping.resize(m);
  for (std::size_t i = 0; i < m; ++i) c.mapping[i] = i;
  c.dvfs.assign(m, 0);
  return c;
}

TEST(configuration, valid_passes) {
  const auto plat = soc::agx_xavier();
  EXPECT_NO_THROW(valid_config(plat, 4).validate(plat));
}

TEST(configuration, rejects_partition_not_summing_to_one) {
  const auto plat = soc::agx_xavier();
  auto c = valid_config(plat, 4);
  c.partition[2][0] = 0.9;
  EXPECT_THROW(c.validate(plat), std::logic_error);
}

TEST(configuration, rejects_zero_stage_one) {
  const auto plat = soc::agx_xavier();
  auto c = valid_config(plat, 2);
  c.partition[0] = {0.0, 0.5, 0.5};
  EXPECT_THROW(c.validate(plat), std::logic_error);
}

TEST(configuration, rejects_duplicate_mapping) {
  const auto plat = soc::agx_xavier();
  auto c = valid_config(plat, 2);
  c.mapping = {0, 0, 1};
  EXPECT_THROW(c.validate(plat), std::logic_error);
}

TEST(configuration, rejects_dvfs_out_of_range) {
  const auto plat = soc::agx_xavier();
  auto c = valid_config(plat, 2);
  c.dvfs[0] = 999;
  EXPECT_THROW(c.validate(plat), std::logic_error);
}

TEST(configuration, rejects_ragged_rows) {
  const auto plat = soc::agx_xavier();
  auto c = valid_config(plat, 2);
  c.forward[1].pop_back();
  EXPECT_THROW(c.validate(plat), std::logic_error);
}

TEST(configuration, fmap_reuse_counts_settable_bits) {
  const auto plat = soc::agx_xavier();
  auto c = valid_config(plat, 2);  // all bits set, 2 groups x 2 settable stages
  EXPECT_DOUBLE_EQ(c.fmap_reuse_ratio(), 1.0);
  c.forward[0][0] = false;
  EXPECT_DOUBLE_EQ(c.fmap_reuse_ratio(), 0.75);
}

TEST(configuration, fmap_reuse_skips_empty_slices) {
  const auto plat = soc::agx_xavier();
  auto c = valid_config(plat, 1);
  c.partition[0] = {0.5, 0.0, 0.5};  // stage 2 owns nothing
  c.forward[0] = {true, true, false};
  // Only stage 1's bit counts (stage 2 has nothing to forward).
  EXPECT_DOUBLE_EQ(c.fmap_reuse_ratio(), 1.0);
}

TEST(configuration, describe_mentions_units) {
  const auto plat = soc::agx_xavier();
  const auto c = valid_config(plat, 2);
  const std::string d = c.describe(plat);
  EXPECT_NE(d.find("GPU"), std::string::npos);
  EXPECT_NE(d.find("reuse"), std::string::npos);
}

TEST(search_space, dimensions_match_network) {
  const auto net = nn::build_visformer();
  const auto plat = soc::agx_xavier();
  const search_space space{net, plat};
  EXPECT_EQ(space.stages(), 3u);
  EXPECT_EQ(space.ratio_levels(), 8);
  EXPECT_GT(space.groups(), 10u);
}

TEST(search_space, paper_per_layer_estimate) {
  // §V-A: 8^3 * 3! * 50 ~ 1.5e5 for one Visformer layer.
  const auto net = nn::build_visformer();
  const auto plat = soc::agx_xavier();
  const search_space space{net, plat};
  EXPECT_NEAR(space.paper_per_layer_estimate(50.0), 8.0 * 8.0 * 8.0 * 6.0 * 50.0, 1e-6);
  EXPECT_NEAR(space.paper_per_layer_estimate(50.0), 1.536e5, 1e2);
}

TEST(search_space, total_complexity_is_astronomical) {
  const auto net = nn::build_visformer();
  const auto plat = soc::agx_xavier();
  const search_space space{net, plat};
  EXPECT_GT(space.log10_total(), 20.0);  // far beyond exhaustive search
  EXPECT_GT(space.log10_per_group(), 2.0);
}

TEST(search_space, random_genomes_always_in_bounds) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  const search_space space{net, plat};
  util::rng gen{77};
  for (int i = 0; i < 200; ++i) {
    const genome g = space.random(gen);
    EXPECT_TRUE(space.in_bounds(g));
  }
}

TEST(search_space, decode_produces_valid_configuration) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  const search_space space{net, plat};
  util::rng gen{78};
  for (int i = 0; i < 100; ++i) {
    const configuration c = space.decode(space.random(gen));
    EXPECT_NO_THROW(c.validate(plat));
  }
}

TEST(search_space, static_seed_decodes_to_equal_split_full_reuse) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  const search_space space{net, plat};
  const configuration c = space.decode(space.static_seed());
  for (const auto& row : c.partition)
    for (const double p : row) EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.fmap_reuse_ratio(), 1.0);
  for (std::size_t u = 0; u < plat.size(); ++u)
    EXPECT_EQ(c.dvfs[u], plat.unit(u).dvfs.max_level());
}

TEST(search_space, decode_rejects_out_of_bounds) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  const search_space space{net, plat};
  util::rng gen{79};
  genome g = space.random(gen);
  g.ratio_levels[0][0] = 99;
  EXPECT_THROW((void)space.decode(g), std::invalid_argument);
  g = space.random(gen);
  g.mapping = {0, 0, 1};
  EXPECT_THROW((void)space.decode(g), std::invalid_argument);
}

TEST(search_space, rejects_degenerate_setups) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  EXPECT_THROW((search_space{net, plat, 1}), std::invalid_argument);
  soc::platform single;
  single.name = "one";
  single.units = {plat.unit(0)};
  EXPECT_THROW((search_space{net, single}), std::invalid_argument);
}

}  // namespace
