// Cross-module integration tests: four-CU mapping (M=4 with the CPU
// cluster), constraint-regime sweeps, alternative architectures through the
// whole optimizer, and end-to-end determinism.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.h"
#include "core/evolutionary.h"
#include "core/optimizer.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;

core::ga_options tiny(std::uint64_t seed) {
  core::ga_options opt;
  opt.generations = 5;
  opt.population = 12;
  opt.threads = 4;
  opt.seed = seed;
  return opt;
}

TEST(integration, four_unit_platform_maps_four_stages) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier_with_cpu();
  const core::search_space space{net, plat};
  EXPECT_EQ(space.stages(), 4u);
  const core::evaluator ev{net, plat, {}};
  const auto res = core::evolve(space, ev, tiny(3));
  ASSERT_FALSE(res.archive.empty());
  const auto& best = res.best();
  EXPECT_EQ(best.config.stages(), 4u);
  EXPECT_EQ(best.stage_latency_ms.size(), 4u);
}

TEST(integration, static_config_on_four_units_splits_quarters) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier_with_cpu();
  const auto cfg = core::make_static_configuration(net, plat);
  for (const auto& row : cfg.partition)
    for (const double p : row) EXPECT_NEAR(p, 0.25, 1e-12);
  EXPECT_NO_THROW(cfg.validate(plat));
}

TEST(integration, reuse_regimes_monotone_in_constraint) {
  // Tighter reuse caps can only shrink the feasible set; best achievable
  // accuracy must be non-increasing as the cap tightens.
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  const core::search_space space{net, plat};
  double prev_best_acc = 1e9;
  for (const double cap : {1.0, 0.75, 0.5}) {
    core::evaluator_options eopt;
    eopt.limits.fmap_reuse_cap = cap;
    const core::evaluator ev{net, plat, eopt};
    const auto res = core::evolve(space, ev, tiny(11));
    double best_acc = 0.0;
    for (const auto& e : res.archive) best_acc = std::max(best_acc, e.accuracy_pct);
    EXPECT_LE(best_acc, prev_best_acc + 0.5);  // small GA noise tolerated
    prev_best_acc = best_acc;
  }
}

TEST(integration, mobilenet_through_full_optimizer) {
  const auto net = nn::build_mobilenet_cifar();
  const auto plat = soc::agx_xavier();
  core::optimizer_options opt;
  opt.ga = tiny(13);
  opt.use_surrogate = false;  // keep the test fast
  core::optimizer mapper{net, plat, opt};
  const auto res = mapper.run();
  EXPECT_FALSE(res.validated.empty());
  EXPECT_GT(res.ours_energy().accuracy_pct, 50.0);
}

TEST(integration, plain20_pipeline_vs_width_partition) {
  const auto net = nn::build_plain20();
  const auto plat = soc::agx_xavier();
  const auto pipe = core::pipeline_baseline(net, plat);
  const auto stat = core::static_mapping_baseline(net, plat);
  // Both must produce sane numbers; the width partition exploits
  // concurrency for single-input latency while the pipeline does not.
  EXPECT_GT(pipe.latency_ms, 0.0);
  EXPECT_GT(stat.avg_latency_ms, 0.0);
  EXPECT_LT(stat.avg_latency_ms, pipe.latency_ms);
}

TEST(integration, searched_config_roundtrips_through_serialization) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  const core::search_space space{net, plat};
  const core::evaluator ev{net, plat, {}};
  const auto res = core::evolve(space, ev, tiny(17));
  const auto& cfg = res.best().config;
  const auto back = core::configuration_from_text(core::to_text(cfg));
  const auto replay = ev.evaluate(back);
  EXPECT_DOUBLE_EQ(replay.objective, res.best().objective);
  EXPECT_DOUBLE_EQ(replay.avg_energy_mj, res.best().avg_energy_mj);
}

TEST(integration, thermal_constraint_shrinks_archive) {
  const auto net = nn::build_vgg19();
  const auto plat = soc::agx_xavier();
  const core::search_space space{net, plat};

  core::evaluator_options free_opt;
  const core::evaluator free_ev{net, plat, free_opt};
  const auto free_res = core::evolve(space, free_ev, tiny(19));

  core::evaluator_options hot_opt;
  soc::thermal_model weak;
  weak.r_thermal_c_per_w = 6.0;  // weak heatsink: ~8.7 W sustained budget
  hot_opt.thermal = weak;
  const core::evaluator hot_ev{net, plat, hot_opt};
  const auto hot_res = core::evolve(space, hot_ev, tiny(19));

  // Every surviving candidate respects the power budget.
  for (const auto& e : hot_res.archive)
    EXPECT_LE(e.avg_energy_mj / e.avg_latency_ms, weak.max_sustained_power_w() + 1e-6);
  EXPECT_LE(hot_res.archive.size(), free_res.archive.size());
}

TEST(integration, gpu_only_dominates_latency_dla_only_dominates_energy) {
  // The premise of the whole paper, across every architecture we ship.
  const auto plat = soc::agx_xavier();
  for (const auto& net : {nn::build_visformer(), nn::build_vgg19(), nn::build_simple_cnn(),
                          nn::build_mobilenet_cifar(), nn::build_plain20()}) {
    const auto gpu = core::single_cu_baseline(net, plat, 0);
    const auto dla = core::single_cu_baseline(net, plat, 1);
    EXPECT_LT(gpu.latency_ms, dla.latency_ms) << net.name;
    EXPECT_LT(dla.energy_mj, gpu.energy_mj) << net.name;
  }
}

}  // namespace
