// Objective (eq. 16) and Pareto-front tests.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/objective.h"
#include "core/pareto.h"
#include "util/rng.h"

namespace {

using namespace mapcq;
using core::dominates;
using core::pareto_front;

data::exit_outcome make_exits(std::vector<std::size_t> counts, std::size_t pop) {
  data::exit_outcome e;
  e.correct_counts = std::move(counts);
  e.exit_fractions.assign(e.correct_counts.size(), 0.0);
  e.population = pop;
  return e;
}

TEST(objective, hand_computed_value) {
  // Acc_base = 90, Acc_SM = 85, T = (2, 4), E_cum = (10, 30),
  // N = (600, 200) of 1000.
  const std::vector<double> t = {2.0, 4.0};
  const std::vector<double> e = {10.0, 30.0};
  const std::vector<double> a = {70.0, 85.0};
  const auto exits = make_exits({600, 200}, 1000);
  core::objective_inputs in;
  in.base_accuracy_pct = 90.0;
  in.stage_latency_ms = t;
  in.cumulative_energy_mj = e;
  in.stage_accuracy_pct = a;
  in.exits = &exits;
  const double t_term = 2.0 * 0.6 + 4.0 * 0.2;
  const double e_term = 10.0 * 0.6 + 30.0 * 0.2;
  EXPECT_NEAR(core::objective_value(in), (90.0 / 85.0) * t_term * e_term, 1e-12);
}

TEST(objective, lower_latency_lower_objective) {
  const std::vector<double> e = {10.0, 30.0};
  const std::vector<double> a = {70.0, 85.0};
  const auto exits = make_exits({600, 200}, 1000);
  core::objective_inputs in;
  in.base_accuracy_pct = 90.0;
  in.cumulative_energy_mj = e;
  in.stage_accuracy_pct = a;
  in.exits = &exits;
  const std::vector<double> fast = {1.0, 2.0};
  const std::vector<double> slow = {2.0, 4.0};
  in.stage_latency_ms = fast;
  const double obj_fast = core::objective_value(in);
  in.stage_latency_ms = slow;
  const double obj_slow = core::objective_value(in);
  EXPECT_LT(obj_fast, obj_slow);
}

TEST(objective, zero_last_accuracy_is_infeasible) {
  const std::vector<double> t = {1.0};
  const std::vector<double> e = {1.0};
  const std::vector<double> a = {0.0};
  const auto exits = make_exits({0}, 100);
  core::objective_inputs in;
  in.base_accuracy_pct = 90.0;
  in.stage_latency_ms = t;
  in.cumulative_energy_mj = e;
  in.stage_accuracy_pct = a;
  in.exits = &exits;
  EXPECT_TRUE(std::isinf(core::objective_value(in)));
}

TEST(objective, nothing_correct_is_infeasible) {
  const std::vector<double> t = {1.0, 1.0};
  const std::vector<double> e = {1.0, 2.0};
  const std::vector<double> a = {10.0, 20.0};
  const auto exits = make_exits({0, 0}, 100);
  core::objective_inputs in;
  in.base_accuracy_pct = 90.0;
  in.stage_latency_ms = t;
  in.cumulative_energy_mj = e;
  in.stage_accuracy_pct = a;
  in.exits = &exits;
  EXPECT_TRUE(std::isinf(core::objective_value(in)));
}

TEST(objective, rejects_mismatched_spans) {
  const std::vector<double> t = {1.0};
  const std::vector<double> e = {1.0, 2.0};
  const std::vector<double> a = {50.0};
  const auto exits = make_exits({10}, 100);
  core::objective_inputs in;
  in.base_accuracy_pct = 90.0;
  in.stage_latency_ms = t;
  in.cumulative_energy_mj = e;
  in.stage_accuracy_pct = a;
  in.exits = &exits;
  EXPECT_THROW((void)core::objective_value(in), std::invalid_argument);
  in.exits = nullptr;
  EXPECT_THROW((void)core::objective_value(in), std::invalid_argument);
}

TEST(pareto, dominates_cases) {
  EXPECT_TRUE(dominates(std::vector<double>{1.0, 2.0}, std::vector<double>{2.0, 2.0}));
  EXPECT_TRUE(dominates(std::vector<double>{1.0, 1.0}, std::vector<double>{2.0, 2.0}));
  EXPECT_FALSE(dominates(std::vector<double>{1.0, 3.0}, std::vector<double>{2.0, 2.0}));
  EXPECT_FALSE(dominates(std::vector<double>{2.0, 2.0}, std::vector<double>{2.0, 2.0}));
  EXPECT_THROW((void)dominates(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(pareto, simple_front) {
  const std::vector<std::vector<double>> pts = {
      {1.0, 5.0}, {2.0, 3.0}, {4.0, 1.0}, {3.0, 4.0}, {5.0, 5.0}};
  const auto front = pareto_front(pts);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(pareto, identical_points_all_on_front) {
  const std::vector<std::vector<double>> pts = {{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(pareto_front(pts).size(), 3u);
}

TEST(pareto, single_point) {
  EXPECT_EQ(pareto_front({{3.0, 4.0}}).size(), 1u);
}

TEST(pareto, empty_input_empty_front) {
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(hypervolume, matches_hand_computed_rectangles) {
  // One box: [1,2] x [1,2] relative to ref (2,2).
  EXPECT_DOUBLE_EQ(core::hypervolume({{1.0, 1.0}}, {2.0, 2.0}), 1.0);
  // Two overlapping boxes: 3 + 3 - 1 (see the union of (1,3) and (3,1)).
  EXPECT_DOUBLE_EQ(core::hypervolume({{1.0, 3.0}, {3.0, 1.0}}, {4.0, 4.0}), 5.0);
  // A dominated point adds nothing.
  EXPECT_DOUBLE_EQ(core::hypervolume({{1.0, 3.0}, {3.0, 1.0}, {3.0, 3.0}}, {4.0, 4.0}), 5.0);
  // 3-D unit cube corner.
  EXPECT_DOUBLE_EQ(core::hypervolume({{0.0, 0.0, 0.0}}, {1.0, 1.0, 1.0}), 1.0);
  // Two disjoint 3-D boxes: 1x1x2 and 1x1x1 stacked along distinct axes.
  EXPECT_DOUBLE_EQ(
      core::hypervolume({{0.0, 2.0, 1.0}, {2.0, 0.0, 2.0}}, {3.0, 3.0, 3.0}), 6.0 + 3.0 - 1.0);
}

TEST(hypervolume, points_outside_the_reference_contribute_nothing) {
  EXPECT_DOUBLE_EQ(core::hypervolume({{2.0, 2.0}}, {2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(core::hypervolume({{5.0, 0.0}}, {2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(core::hypervolume({}, {2.0, 2.0}), 0.0);
}

TEST(hypervolume, rejects_bad_shapes) {
  EXPECT_THROW((void)core::hypervolume({{1.0, 2.0}}, {}), std::invalid_argument);
  EXPECT_THROW((void)core::hypervolume({{1.0, 2.0, 3.0}}, {4.0, 4.0}), std::invalid_argument);
}

TEST(hypervolume, monotone_under_added_points_and_front_sufficient) {
  util::rng gen{7};
  std::vector<std::vector<double>> pts;
  const std::vector<double> ref = {1.0, 1.0, 1.0};
  double prev = 0.0;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({gen.uniform(), gen.uniform(), gen.uniform()});
    const double hv = core::hypervolume(pts, ref);
    EXPECT_GE(hv, prev - 1e-12);  // adding a point never shrinks the measure
    prev = hv;
  }
  // The dominated region is fully described by the non-dominated subset.
  std::vector<std::vector<double>> front_pts;
  for (const std::size_t i : pareto_front(pts)) front_pts.push_back(pts[i]);
  EXPECT_NEAR(core::hypervolume(front_pts, ref), prev, 1e-12);
}

// Property: every front member is pairwise non-dominated; every non-member
// is dominated by someone.
class pareto_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(pareto_property, front_definition_holds) {
  util::rng gen{GetParam()};
  std::vector<std::vector<double>> pts(60);
  for (auto& p : pts) p = {gen.uniform(0, 10), gen.uniform(0, 10), gen.uniform(0, 10)};
  const auto front = pareto_front(pts);
  ASSERT_FALSE(front.empty());

  std::vector<bool> on_front(pts.size(), false);
  for (const std::size_t i : front) on_front[i] = true;

  for (const std::size_t i : front) {
    for (const std::size_t j : front) {
      if (i != j) {
        EXPECT_FALSE(dominates(pts[j], pts[i]));
      }
    }
  }

  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (on_front[i]) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < pts.size() && !dominated; ++j)
      if (j != i && dominates(pts[j], pts[i])) dominated = true;
    EXPECT_TRUE(dominated) << "non-front point " << i << " undominated";
  }
}

INSTANTIATE_TEST_SUITE_P(seeds, pareto_property, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
