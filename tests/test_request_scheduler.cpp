// Scheduler-layer tests, driven by a stub executor so every edge case is
// deterministic: WRR queue rotation/weights/eligibility, admission
// rejection and blocking backpressure at max_queued, coalescing of
// identical requests onto one execution, queued-deadline expiry, fairness
// under a single-session flood, priority lanes, per-session in-flight caps,
// shutdown semantics and stats reconciliation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serving/request_scheduler.h"
#include "util/wrr_queue.h"

namespace {

using namespace mapcq;
using serving::admission_error;
using serving::admission_policy;
using serving::mapping_report;
using serving::mapping_request;
using serving::request_scheduler;
using serving::scheduler_options;
using serving::scheduler_stats;

// ---------------------------------------------------------------------------
// util::wrr_queue

std::vector<int> drain_all(util::wrr_queue<int>& q) {
  std::vector<int> order;
  while (auto v = q.pop()) order.push_back(*v);
  return order;
}

TEST(wrr_queue, round_robin_interleaves_lanes) {
  util::wrr_queue<int> q;
  q.push("a", 1);
  q.push("a", 2);
  q.push("a", 3);
  q.push("b", 10);
  q.push("b", 20);
  q.push("c", 100);
  EXPECT_EQ(q.size(), 6u);
  EXPECT_EQ(q.lane_size("a"), 3u);
  EXPECT_EQ(drain_all(q), (std::vector<int>{1, 10, 100, 2, 20, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(wrr_queue, weights_grant_consecutive_pops) {
  util::wrr_queue<int> q;
  q.set_weight("a", 2);
  q.push("a", 1);
  q.push("a", 2);
  q.push("a", 3);
  q.push("b", 10);
  q.push("b", 20);
  // a's weight 2 => two a's per visit; b keeps weight 1.
  EXPECT_EQ(drain_all(q), (std::vector<int>{1, 2, 10, 3, 20}));
}

TEST(wrr_queue, pop_skips_ineligible_lanes) {
  util::wrr_queue<int> q;
  q.push("a", 1);
  q.push("b", 10);
  q.push("a", 2);
  const auto not_a = [](const std::string& key) { return key != "a"; };
  EXPECT_EQ(q.pop(not_a), std::optional<int>{10});
  // Only ineligible work left: pop declines but the items stay queued.
  EXPECT_EQ(q.pop(not_a), std::nullopt);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), std::optional<int>{1});
  EXPECT_EQ(q.pop(), std::optional<int>{2});
}

TEST(wrr_queue, late_lane_joins_the_rotation) {
  util::wrr_queue<int> q;
  q.push("a", 1);
  q.push("a", 2);
  EXPECT_EQ(q.pop(), std::optional<int>{1});
  q.push("b", 10);  // arrives mid-rotation; served within one round
  EXPECT_EQ(q.pop(), std::optional<int>{2});
  EXPECT_EQ(q.pop(), std::optional<int>{10});
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(wrr_queue, drain_visits_every_item) {
  util::wrr_queue<int> q;
  q.push("a", 1);
  q.push("b", 2);
  q.push("b", 3);
  int sum = 0;
  q.drain([&](const std::string&, int& v) { sum += v; });
  EXPECT_EQ(sum, 6);
  EXPECT_TRUE(q.empty());
  q.push("c", 9);  // reusable after a drain
  EXPECT_EQ(q.pop(), std::optional<int>{9});
}

// ---------------------------------------------------------------------------
// request_scheduler, with a gated stub executor

/// Stub executor: blocks every execution on a shared gate until release(),
/// records execution order by request network name, and stamps the
/// execution ordinal into the report's session_key.
struct gated_executor {
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::mutex mu;
  std::vector<std::string> order;
  std::atomic<int> entered{0};

  request_scheduler::executor fn() {
    return [this](const mapping_request& req) {
      entered.fetch_add(1);
      open.wait();
      mapping_report rep;
      rep.network = req.network;
      const std::lock_guard<std::mutex> lock{mu};
      order.push_back(req.network);
      rep.session_key = std::to_string(order.size());
      return rep;
    };
  }

  void release() { gate.set_value(); }
  /// Spins until `n` executions entered the gate (they hold a worker).
  void await_entered(int n) {
    while (entered.load() < n) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};

mapping_request named(const std::string& net, int priority = 0,
                      std::chrono::milliseconds deadline = {}) {
  mapping_request req;
  req.network = net;
  req.priority = priority;
  req.deadline = deadline;
  return req;
}

TEST(request_scheduler, coalesces_identical_requests_onto_one_execution) {
  gated_executor exec;
  request_scheduler sched{{}, 1, exec.fn()};

  auto a = sched.submit("s1", "fp-x", named("x"));
  exec.await_entered(1);  // x is executing (held at the gate)
  auto b = sched.submit("s1", "fp-x", named("x"));
  auto c = sched.submit("s1", "fp-x", named("x"));
  auto d = sched.submit("s1", "fp-y", named("y"));  // distinct: queued
  exec.release();

  // All three x-futures resolve to the same execution (same ordinal).
  EXPECT_EQ(a.get().session_key, b.get().session_key);
  EXPECT_EQ(a.get().session_key, c.get().session_key);
  EXPECT_NE(a.get().session_key, d.get().session_key);

  sched.wait_idle();
  const scheduler_stats s = sched.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.coalesced, 2u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(exec.order.size(), 2u);
}

TEST(request_scheduler, coalescing_disabled_runs_every_submit) {
  gated_executor exec;
  scheduler_options opt;
  opt.coalesce = false;
  request_scheduler sched{opt, 1, exec.fn()};
  auto a = sched.submit("s1", "fp-x", named("x"));
  exec.await_entered(1);
  auto b = sched.submit("s1", "fp-x", named("x"));
  exec.release();
  (void)a.get();
  (void)b.get();
  const scheduler_stats s = sched.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.coalesced, 0u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(request_scheduler, rejects_at_max_queued_under_reject_policy) {
  gated_executor exec;
  scheduler_options opt;
  opt.max_queued = 1;
  opt.policy = admission_policy::reject;
  request_scheduler sched{opt, 1, exec.fn()};

  auto a = sched.submit("s1", "fp-a", named("a"));
  exec.await_entered(1);                             // a executing, queue empty
  auto b = sched.submit("s2", "fp-b", named("b"));   // queued (1/1)
  auto c = sched.submit("s3", "fp-c", named("c"));   // over the bound
  try {
    (void)c.get();
    FAIL() << "expected admission_error";
  } catch (const admission_error& e) {
    EXPECT_EQ(e.why(), admission_error::reason::queue_full);
  }
  // An identical duplicate of the queued request still coalesces — joins
  // add no work, so they are never rejected.
  auto b2 = sched.submit("s2", "fp-b", named("b"));
  exec.release();
  EXPECT_EQ(b.get().session_key, b2.get().session_key);
  (void)a.get();

  sched.wait_idle();
  const scheduler_stats s = sched.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.coalesced, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(request_scheduler, block_policy_backpressures_until_space_frees) {
  gated_executor exec;
  scheduler_options opt;
  opt.max_queued = 1;
  opt.policy = admission_policy::block;
  request_scheduler sched{opt, 1, exec.fn()};

  auto a = sched.submit("s1", "fp-a", named("a"));
  exec.await_entered(1);
  auto b = sched.submit("s2", "fp-b", named("b"));  // fills the queue

  std::promise<std::shared_future<mapping_report>> admitted;
  std::thread submitter{[&] {
    admitted.set_value(sched.submit("s3", "fp-c", named("c")));  // blocks
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(sched.stats().admitted, 2u);  // c is still being backpressured

  exec.release();  // a finishes, b dispatches, space frees, c admitted
  auto c = admitted.get_future().get();
  submitter.join();
  (void)a.get();
  (void)b.get();
  EXPECT_EQ(c.get().network, "c");

  sched.wait_idle();
  const scheduler_stats s = sched.stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.completed, 3u);
}

TEST(request_scheduler, expired_deadline_drops_queued_work) {
  gated_executor exec;
  request_scheduler sched{{}, 1, exec.fn()};

  auto a = sched.submit("s1", "fp-a", named("a"));
  exec.await_entered(1);
  auto doomed = sched.submit("s2", "fp-d", named("d", 0, std::chrono::milliseconds{5}));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));  // out-waits the deadline
  exec.release();

  (void)a.get();
  try {
    (void)doomed.get();
    FAIL() << "expected admission_error";
  } catch (const admission_error& e) {
    EXPECT_EQ(e.why(), admission_error::reason::deadline_expired);
  }
  sched.wait_idle();
  const scheduler_stats s = sched.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(exec.order.size(), 1u);  // the expired request never executed
  EXPECT_EQ(s.admitted, s.completed + s.failed + s.expired);
}

TEST(request_scheduler, wrr_prevents_single_session_starvation) {
  gated_executor exec;
  request_scheduler sched{{}, 1, exec.fn()};

  std::vector<std::shared_future<mapping_report>> futures;
  futures.push_back(sched.submit("blocker", "", named("g")));
  exec.await_entered(1);  // occupy the single worker so everything queues

  // A flood of 6 distinct requests on one session, then 2 polite ones.
  for (int i = 0; i < 6; ++i)
    futures.push_back(sched.submit("flood", "", named("f" + std::to_string(i))));
  for (int i = 0; i < 2; ++i)
    futures.push_back(sched.submit("polite", "", named("p" + std::to_string(i))));
  exec.release();
  for (auto& f : futures) (void)f.get();

  // Single worker => execution order == dispatch order. Round-robin must
  // interleave the polite session instead of appending it after the flood.
  const std::vector<std::string> expected{"g", "f0", "p0", "f1", "p1", "f2", "f3", "f4", "f5"};
  EXPECT_EQ(exec.order, expected);
}

TEST(request_scheduler, session_weights_bias_the_rotation) {
  gated_executor exec;
  scheduler_options opt;
  opt.weights["heavy"] = 2;
  request_scheduler sched{opt, 1, exec.fn()};

  std::vector<std::shared_future<mapping_report>> futures;
  futures.push_back(sched.submit("blocker", "", named("g")));
  exec.await_entered(1);
  for (int i = 0; i < 4; ++i)
    futures.push_back(sched.submit("heavy", "", named("h" + std::to_string(i))));
  for (int i = 0; i < 2; ++i)
    futures.push_back(sched.submit("light", "", named("l" + std::to_string(i))));
  exec.release();
  for (auto& f : futures) (void)f.get();

  const std::vector<std::string> expected{"g", "h0", "h1", "l0", "h2", "h3", "l1"};
  EXPECT_EQ(exec.order, expected);
}

TEST(request_scheduler, priority_lanes_dispatch_before_lower_ones) {
  gated_executor exec;
  request_scheduler sched{{}, 1, exec.fn()};

  std::vector<std::shared_future<mapping_report>> futures;
  futures.push_back(sched.submit("blocker", "", named("g")));
  exec.await_entered(1);
  futures.push_back(sched.submit("s1", "", named("low0", 0)));
  futures.push_back(sched.submit("s1", "", named("low1", 0)));
  futures.push_back(sched.submit("s2", "", named("urgent", 5)));
  exec.release();
  for (auto& f : futures) (void)f.get();

  const std::vector<std::string> expected{"g", "urgent", "low0", "low1"};
  EXPECT_EQ(exec.order, expected);
}

TEST(request_scheduler, per_session_inflight_cap_lets_others_overtake) {
  gated_executor exec;
  scheduler_options opt;
  opt.max_inflight_per_session = 1;
  request_scheduler sched{opt, 2, exec.fn()};

  // s1's first request occupies its only in-flight slot; its second must
  // wait even though a worker is free — s2's request overtakes it.
  auto a = sched.submit("s1", "", named("a"));
  exec.await_entered(1);
  auto b = sched.submit("s1", "", named("b"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(exec.entered.load(), 1);  // b held back by the cap
  auto c = sched.submit("s2", "", named("c"));
  exec.await_entered(2);  // c overtook b on the free worker
  EXPECT_EQ(sched.stats().queued, 1u);
  exec.release();
  (void)a.get();
  (void)b.get();
  (void)c.get();
  sched.wait_idle();
  EXPECT_EQ(sched.stats().completed, 3u);
}

TEST(request_scheduler, shutdown_fails_queued_requests_and_finishes_running_ones) {
  gated_executor exec;
  std::shared_future<mapping_report> running;
  std::shared_future<mapping_report> queued;
  std::thread releaser;
  {
    request_scheduler sched{{}, 1, exec.fn()};
    running = sched.submit("s1", "", named("a"));
    exec.await_entered(1);
    queued = sched.submit("s2", "", named("b"));
    // Release the gate concurrently with destruction: the destructor joins
    // the worker, which is still executing `a`.
    releaser = std::thread{[&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      exec.release();
    }};
  }  // ~request_scheduler
  releaser.join();
  EXPECT_EQ(running.get().network, "a");  // in-flight work completed
  try {
    (void)queued.get();
    FAIL() << "expected admission_error";
  } catch (const admission_error& e) {
    EXPECT_EQ(e.why(), admission_error::reason::shutdown);
  }
}

TEST(request_scheduler, executor_exceptions_count_as_failed) {
  request_scheduler sched{{}, 1, [](const mapping_request& req) -> mapping_report {
                            if (req.network == "boom") throw std::runtime_error("boom");
                            return {};
                          }};
  auto ok = sched.submit("s1", "", named("fine"));
  auto bad = sched.submit("s1", "", named("boom"));
  (void)ok.get();
  EXPECT_THROW((void)bad.get(), std::runtime_error);
  sched.wait_idle();
  const scheduler_stats s = sched.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.admitted, s.completed + s.failed + s.expired);
  EXPECT_EQ(s.submitted, s.admitted + s.coalesced + s.rejected);
}

TEST(request_scheduler, reports_carry_a_self_inclusive_stats_snapshot) {
  gated_executor exec;
  request_scheduler sched{{}, 1, exec.fn()};
  auto a = sched.submit("s1", "", named("a"));
  exec.release();
  const mapping_report rep = a.get();
  ASSERT_TRUE(rep.scheduler.has_value());
  EXPECT_EQ(rep.scheduler->completed, 1u);  // the snapshot counts its own report
  EXPECT_EQ(rep.scheduler->admitted, 1u);
}

}  // namespace
