// Accuracy model and exit simulator tests.

#include <gtest/gtest.h>

#include "data/accuracy_model.h"
#include "data/exit_simulator.h"
#include "nn/models.h"

namespace {

using namespace mapcq::data;

accuracy_params vis_params() {
  return accuracy_params::from(mapcq::nn::build_visformer());
}

TEST(accuracy_model, full_coverage_reaches_ceiling) {
  const auto p = vis_params();
  EXPECT_NEAR(stage_accuracy_pct(p, 1.0), p.base_pct + p.bonus_pct, 1e-9);
}

TEST(accuracy_model, zero_coverage_zero_accuracy) {
  EXPECT_DOUBLE_EQ(stage_accuracy_pct(vis_params(), 0.0), 0.0);
}

TEST(accuracy_model, monotone_in_coverage) {
  const auto p = vis_params();
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double a = stage_accuracy_pct(p, q);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(accuracy_model, clamps_out_of_range_coverage) {
  const auto p = vis_params();
  EXPECT_DOUBLE_EQ(stage_accuracy_pct(p, 1.5), stage_accuracy_pct(p, 1.0));
  EXPECT_DOUBLE_EQ(stage_accuracy_pct(p, -0.3), 0.0);
}

TEST(accuracy_model, rejects_bad_base) {
  accuracy_params p;
  p.base_pct = 120.0;
  EXPECT_THROW((void)stage_accuracy_pct(p, 0.5), std::invalid_argument);
}

TEST(accuracy_model, vgg_bonus_lifts_above_base) {
  const auto p = accuracy_params::from(mapcq::nn::build_vgg19());
  // The paper's VGG19 rows exceed the static baseline thanks to deep
  // supervision (Table II: 84.8 vs 80.55).
  EXPECT_GT(stage_accuracy_pct(p, 1.0), p.base_pct + 3.0);
}

TEST(accuracy_model, early_exit_discount_orders_stages) {
  auto p = vis_params();
  p.early_exit_discount = 0.3;
  const std::vector<double> q = {0.8, 0.8, 0.8};
  const auto acc = stage_accuracies_pct(p, q);
  ASSERT_EQ(acc.size(), 3u);
  EXPECT_LT(acc[0], acc[1]);
  EXPECT_LT(acc[1], acc[2]);
  // Final stage pays no discount.
  EXPECT_NEAR(acc[2], stage_accuracy_pct(p, 0.8), 1e-9);
  // First stage pays the full discount.
  EXPECT_NEAR(acc[0], stage_accuracy_pct(p, 0.8) * 0.7, 1e-9);
}

TEST(accuracy_model, single_stage_undiscounted) {
  auto p = vis_params();
  p.early_exit_discount = 0.5;
  const auto acc = stage_accuracies_pct(p, std::vector<double>{0.9});
  EXPECT_NEAR(acc[0], stage_accuracy_pct(p, 0.9), 1e-9);
}

TEST(accuracy_model, rejects_bad_discount) {
  auto p = vis_params();
  p.early_exit_discount = 1.0;
  EXPECT_THROW((void)stage_accuracies_pct(p, std::vector<double>{0.5, 0.6}),
               std::invalid_argument);
}

TEST(exit_ideal, fractions_sum_to_one) {
  const std::vector<double> acc = {60.0, 75.0, 88.0};
  const auto out = simulate_ideal(acc, 10000);
  double s = 0.0;
  for (const double f : out.exit_fractions) s += f;
  EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(exit_ideal, counts_match_accuracy_increments) {
  const std::vector<double> acc = {60.0, 75.0, 88.0};
  const auto out = simulate_ideal(acc, 10000);
  EXPECT_EQ(out.correct_counts[0], 6000u);  // N_1
  EXPECT_EQ(out.correct_counts[1], 1500u);  // N_2: newly correct
  EXPECT_EQ(out.correct_counts[2], 1300u);  // N_3
  EXPECT_NEAR(out.dynamic_accuracy_pct, 88.0, 1e-9);
}

TEST(exit_ideal, last_stage_absorbs_never_correct) {
  const std::vector<double> acc = {50.0, 70.0};
  const auto out = simulate_ideal(acc, 1000);
  // 50% exit at stage 1 (first correct); everyone else runs both stages.
  EXPECT_NEAR(out.exit_fractions[0], 0.5, 1e-9);
  EXPECT_NEAR(out.exit_fractions[1], 0.5, 1e-9);
}

TEST(exit_ideal, non_monotone_accuracy_uses_running_max) {
  // A weaker later stage adds no newly-correct samples (nested model).
  const std::vector<double> acc = {80.0, 60.0};
  const auto out = simulate_ideal(acc, 1000);
  EXPECT_EQ(out.correct_counts[0], 800u);
  EXPECT_EQ(out.correct_counts[1], 0u);
  EXPECT_NEAR(out.dynamic_accuracy_pct, 80.0, 1e-9);
}

TEST(exit_ideal, single_stage_everything_exits_there) {
  const auto out = simulate_ideal(std::vector<double>{77.0}, 500);
  EXPECT_NEAR(out.exit_fractions[0], 1.0, 1e-9);
  EXPECT_EQ(out.correct_counts[0], 385u);
}

TEST(exit_ideal, rejects_bad_inputs) {
  EXPECT_THROW((void)simulate_ideal(std::vector<double>{}, 100), std::invalid_argument);
  EXPECT_THROW((void)simulate_ideal(std::vector<double>{100.0}, 100), std::invalid_argument);
  EXPECT_THROW((void)simulate_ideal(std::vector<double>{-2.0}, 100), std::invalid_argument);
  EXPECT_THROW((void)simulate_ideal(std::vector<double>{50.0}, 0), std::invalid_argument);
}

TEST(exit_threshold, zero_noise_zero_threshold_behaves_like_greedy) {
  const std::vector<double> acc = {60.0, 88.0};
  controller_params cp;
  cp.confidence_noise = 0.0;
  cp.threshold = 0.0;
  const auto out = simulate_threshold(acc, 10000, cp);
  // With an exact margin the controller exits exactly the correct samples.
  EXPECT_NEAR(out.exit_fractions[0], 0.6, 0.01);
  EXPECT_NEAR(out.dynamic_accuracy_pct, 88.0, 0.5);
}

TEST(exit_threshold, noise_causes_wrong_exits) {
  const std::vector<double> acc = {60.0, 88.0};
  controller_params noisy;
  noisy.confidence_noise = 0.2;
  const auto out = simulate_threshold(acc, 10000, noisy);
  // Some samples exit early while wrong: dynamic accuracy degrades below
  // the ideal 88%.
  EXPECT_LT(out.dynamic_accuracy_pct, 87.0);
}

TEST(exit_threshold, higher_threshold_pushes_samples_deeper) {
  const std::vector<double> acc = {60.0, 88.0};
  controller_params lo;
  lo.threshold = 0.0;
  controller_params hi;
  hi.threshold = 0.3;
  const auto out_lo = simulate_threshold(acc, 5000, lo);
  const auto out_hi = simulate_threshold(acc, 5000, hi);
  EXPECT_GT(out_hi.exit_fractions[1], out_lo.exit_fractions[1]);
}

TEST(exit_threshold, fractions_sum_to_one) {
  const std::vector<double> acc = {55.0, 70.0, 85.0};
  const auto out = simulate_threshold(acc, 3000, controller_params{});
  double s = 0.0;
  for (const double f : out.exit_fractions) s += f;
  EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(exit_threshold, rejects_negative_noise) {
  controller_params cp;
  cp.confidence_noise = -0.1;
  EXPECT_THROW((void)simulate_threshold(std::vector<double>{50.0}, 100, cp),
               std::invalid_argument);
}

// Property sweep: for any accuracy ladder the ideal simulation is
// consistent (fractions sum to 1, counts <= population, accuracy equals the
// running max).
class ideal_property : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(ideal_property, invariants_hold) {
  const auto& acc = GetParam();
  const auto out = simulate_ideal(acc, 4000);
  double fsum = 0.0;
  std::size_t csum = 0;
  for (const double f : out.exit_fractions) {
    EXPECT_GE(f, -1e-12);
    fsum += f;
  }
  for (const std::size_t c : out.correct_counts) csum += c;
  EXPECT_NEAR(fsum, 1.0, 1e-9);
  EXPECT_LE(csum, 4000u);
  double best = 0.0;
  for (const double a : acc) best = std::max(best, a);
  EXPECT_NEAR(out.dynamic_accuracy_pct, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ladders, ideal_property,
                         ::testing::Values(std::vector<double>{10.0},
                                           std::vector<double>{0.0, 0.0, 0.0},
                                           std::vector<double>{30.0, 60.0, 90.0},
                                           std::vector<double>{90.0, 60.0, 30.0},
                                           std::vector<double>{50.0, 50.0, 50.0, 50.0},
                                           std::vector<double>{5.0, 99.0}));

}  // namespace
