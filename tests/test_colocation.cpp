// Co-location / contention-scenario tests: the soc::contention_context
// model (validation, platform derating, scenario keys, the reservation
// ledger), the evaluator's scenario axes (DVFS caps, reserved-CU /
// shared-memory / thermal rejections), the serving plumbing (fingerprints,
// session keys, the report scenario note) and serving::placement_group.
//
// The load-bearing invariant checked here at %.17g text equality: an IDLE
// contention context (no residents, no DVFS cap, no thermal budget) is
// bit-identical to the legacy contention-free path — whatever the derate
// coefficients say. Runs under ASan/UBSan (scenario-matrix job) and TSan
// (concurrent placement_group traffic).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.h"
#include "core/search_space.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "serving/mapping_service.h"
#include "serving/placement_group.h"
#include "soc/contention.h"
#include "soc/platform.h"
#include "soc/thermal.h"
#include "util/rng.h"

namespace {

using namespace mapcq;

soc::resident_load make_resident(std::string name, double ic_gbps, double dram_gbps,
                                 double power_w = 0.0, double mem_bytes = 0.0,
                                 std::vector<std::size_t> units = {}) {
  soc::resident_load r;
  r.name = std::move(name);
  r.interconnect_gbps = ic_gbps;
  r.dram_gbps = dram_gbps;
  r.power_w = power_w;
  r.shared_memory_bytes = mem_bytes;
  r.reserved_units = std::move(units);
  return r;
}

// ---------------------------------------------------------------------------
// Context model: validation, idleness, platform derating, scenario keys.
// ---------------------------------------------------------------------------

TEST(contention_context, idleness_ignores_coefficients) {
  soc::contention_context ctx;
  EXPECT_TRUE(ctx.idle());
  ctx.interconnect_alpha = 99.0;  // coefficients alone change nothing
  ctx.dram_energy_beta = 7.0;
  EXPECT_TRUE(ctx.idle());
  ctx.dvfs_cap = {0};
  EXPECT_FALSE(ctx.idle());
  ctx.dvfs_cap.clear();
  ctx.thermal = soc::thermal_model{};
  EXPECT_FALSE(ctx.idle());
  ctx.thermal.reset();
  ctx.residents.push_back(make_resident("a", 1.0, 1.0));
  EXPECT_FALSE(ctx.idle());
}

TEST(contention_context, validation_rejects_bad_loads) {
  soc::resident_load bad = make_resident("", 1.0, 1.0);
  EXPECT_THROW(bad.validate(), std::invalid_argument);  // empty name
  bad = make_resident("a", -1.0, 0.0);
  EXPECT_THROW(bad.validate(), std::invalid_argument);  // negative traffic
  bad = make_resident("a", std::nan(""), 0.0);
  EXPECT_THROW(bad.validate(), std::invalid_argument);  // non-finite

  soc::contention_context ctx;
  ctx.residents = {make_resident("a", 1.0, 1.0), make_resident("a", 2.0, 2.0)};
  EXPECT_THROW(ctx.validate(), std::invalid_argument);  // duplicate name
  ctx.residents = {make_resident("a", 1.0, 1.0)};
  ctx.dram_alpha = -0.1;
  EXPECT_THROW(ctx.validate(), std::invalid_argument);  // negative coefficient
}

TEST(contention_context, validation_against_platform) {
  const soc::platform plat = soc::agx_xavier();
  soc::contention_context ctx;
  ctx.residents = {make_resident("a", 1.0, 1.0, 0.0, 0.0, {plat.size()})};
  EXPECT_THROW(ctx.validate(plat), std::invalid_argument);  // unit out of range

  ctx.residents = {make_resident("a", 1.0, 1.0, 0.0, 0.0, {0}),
                   make_resident("b", 1.0, 1.0, 0.0, 0.0, {0})};
  EXPECT_THROW(ctx.validate(plat), std::invalid_argument);  // double-reserved CU

  ctx.residents.clear();
  ctx.dvfs_cap.assign(plat.size() + 1, 0);
  EXPECT_THROW(ctx.validate(plat), std::invalid_argument);  // longer than platform
  ctx.dvfs_cap = {plat.unit(0).dvfs.levels()};
  EXPECT_THROW(ctx.validate(plat), std::invalid_argument);  // cap not a valid level

  ctx.dvfs_cap = {0, 1};  // prefix cap is fine
  ctx.residents = {make_resident("a", 1.0, 1.0, 0.0, 0.0, {1, 2})};
  EXPECT_NO_THROW(ctx.validate(plat));
}

TEST(apply_contention, idle_context_returns_untouched_copy) {
  const soc::platform plat = soc::agx_xavier();
  soc::contention_context ctx;
  ctx.interconnect_alpha = 123.0;  // must not matter without residents
  const soc::platform out = soc::apply_contention(plat, ctx);
  EXPECT_EQ(out.xfer.bandwidth_gbps, plat.xfer.bandwidth_gbps);
  EXPECT_EQ(out.xfer.base_latency_ms, plat.xfer.base_latency_ms);
  EXPECT_EQ(out.xfer.energy_pj_per_byte, plat.xfer.energy_pj_per_byte);
  for (std::size_t u = 0; u < plat.size(); ++u)
    EXPECT_EQ(out.unit(u).mem_bandwidth_gbps, plat.unit(u).mem_bandwidth_gbps);
}

TEST(apply_contention, degradation_is_monotone_in_residents) {
  const soc::platform plat = soc::agx_xavier();
  soc::contention_context ctx;
  double prev_bw = plat.xfer.bandwidth_gbps;
  double prev_lat = plat.xfer.base_latency_ms;
  double prev_epb = plat.xfer.energy_pj_per_byte;
  double prev_mem = plat.unit(0).mem_bandwidth_gbps;
  for (int n = 1; n <= 4; ++n) {
    ctx.residents.push_back(make_resident("r" + std::to_string(n), 2.0, 3.0));
    const soc::platform out = soc::apply_contention(plat, ctx);
    EXPECT_LT(out.xfer.bandwidth_gbps, prev_bw);
    EXPECT_GT(out.xfer.base_latency_ms, prev_lat);
    EXPECT_GT(out.xfer.energy_pj_per_byte, prev_epb);
    EXPECT_LT(out.unit(0).mem_bandwidth_gbps, prev_mem);
    prev_bw = out.xfer.bandwidth_gbps;
    prev_lat = out.xfer.base_latency_ms;
    prev_epb = out.xfer.energy_pj_per_byte;
    prev_mem = out.unit(0).mem_bandwidth_gbps;
  }
}

TEST(scenario_key, idle_is_idle_and_keys_are_order_sensitive) {
  soc::contention_context ctx;
  ctx.interconnect_alpha = 42.0;
  EXPECT_EQ(soc::scenario_key(ctx), "idle");

  soc::contention_context a;
  a.residents = {make_resident("x", 1.0, 2.0), make_resident("y", 3.0, 4.0)};
  soc::contention_context b = a;
  std::swap(b.residents[0], b.residents[1]);
  EXPECT_EQ(soc::scenario_key(a), soc::scenario_key(a));  // deterministic
  // Resident order fixes the FP summation order, so it is part of identity.
  EXPECT_NE(soc::scenario_key(a), soc::scenario_key(b));

  soc::contention_context capped;
  capped.dvfs_cap = {0, 1};
  EXPECT_NE(soc::scenario_key(capped), "idle");
}

TEST(resident_ledger, reserve_release_owner_semantics) {
  soc::resident_ledger ledger{3};
  ledger.reserve(make_resident("a", 0.0, 0.0, 0.0, 0.0, {0}));
  ledger.reserve(make_resident("b", 0.0, 0.0, 0.0, 0.0, {2}));
  EXPECT_TRUE(ledger.reserved(0));
  EXPECT_FALSE(ledger.reserved(1));
  EXPECT_TRUE(ledger.reserved(2));
  EXPECT_FALSE(ledger.reserved(99));  // out of range: free, not UB
  ASSERT_NE(ledger.owner(2), nullptr);
  EXPECT_EQ(*ledger.owner(2), "b");
  EXPECT_EQ(ledger.owner(1), nullptr);
  EXPECT_EQ(ledger.residents().size(), 2u);

  EXPECT_THROW(ledger.reserve(make_resident("a", 0.0, 0.0, 0.0, 0.0, {1})),
               std::invalid_argument);  // duplicate name
  EXPECT_THROW(ledger.release("zzz"), std::invalid_argument);

  ledger.release("a");
  EXPECT_FALSE(ledger.reserved(0));
  EXPECT_EQ(ledger.residents().size(), 1u);
  ledger.reserve(make_resident("c", 0.0, 0.0, 0.0, 0.0, {0, 1}));
  EXPECT_TRUE(ledger.reserved(1));
}

TEST(resident_ledger, reserve_is_all_or_nothing) {
  soc::resident_ledger ledger{3};
  ledger.reserve(make_resident("a", 0.0, 0.0, 0.0, 0.0, {1}));
  // Unit 0 is free but unit 1 clashes: nothing may be claimed.
  EXPECT_THROW(ledger.reserve(make_resident("b", 0.0, 0.0, 0.0, 0.0, {0, 1})),
               std::invalid_argument);
  EXPECT_FALSE(ledger.reserved(0));
  ASSERT_NE(ledger.owner(1), nullptr);
  EXPECT_EQ(*ledger.owner(1), "a");
  // Out-of-range member: rejected before any mutation.
  EXPECT_THROW(ledger.reserve(make_resident("c", 0.0, 0.0, 0.0, 0.0, {2, 7})),
               std::invalid_argument);
  EXPECT_FALSE(ledger.reserved(2));
}

// ---------------------------------------------------------------------------
// Evaluator: idle bit-identity, monotone degradation, scenario rejections.
// ---------------------------------------------------------------------------

std::string eval_text(const core::evaluation& e) {
  std::ostringstream os;
  core::write_evaluation(os, e);
  return os.str();
}

struct colocation_evaluator : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  core::search_space space{net, plat};

  std::vector<core::configuration> random_configs(std::size_t n, std::uint64_t seed) const {
    util::rng gen{seed};
    std::vector<core::configuration> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(space.decode(space.random(gen)));
    return out;
  }
};

TEST_F(colocation_evaluator, idle_context_is_bit_identical_to_legacy_path) {
  const core::evaluator legacy{net, plat, {}};
  core::evaluator_options opt;
  opt.contention.interconnect_alpha = 999.0;  // idle: coefficients are inert
  opt.contention.dram_energy_beta = 999.0;
  const core::evaluator idle{net, plat, opt};
  for (const core::configuration& c : random_configs(24, 31)) {
    const core::evaluation a = legacy.evaluate(c);
    const core::evaluation b = idle.evaluate(c);
    EXPECT_EQ(eval_text(a), eval_text(b));  // %.17g round-trip equality
    EXPECT_EQ(a.objective, b.objective);
  }
}

TEST_F(colocation_evaluator, degradation_is_monotone_in_resident_count) {
  // Traffic-only residents (no reservations, memory or thermal terms), so
  // nothing is rejected and latency/energy must rise monotonically.
  std::vector<core::evaluator> evals;
  for (const std::size_t n : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    core::evaluator_options opt;
    for (std::size_t i = 0; i < n; ++i)
      opt.contention.residents.push_back(make_resident("r" + std::to_string(i), 3.0, 4.0));
    evals.emplace_back(net, plat, opt);
  }
  std::size_t strictly_worse = 0;
  for (const core::configuration& c : random_configs(12, 7)) {
    const core::evaluation idle = evals[0].evaluate(c);
    const core::evaluation two = evals[1].evaluate(c);
    const core::evaluation four = evals[2].evaluate(c);
    if (!idle.feasible) continue;
    ASSERT_TRUE(two.feasible);
    ASSERT_TRUE(four.feasible);
    EXPECT_GE(two.avg_latency_ms, idle.avg_latency_ms);
    EXPECT_GE(four.avg_latency_ms, two.avg_latency_ms);
    EXPECT_GE(two.avg_energy_mj, idle.avg_energy_mj);
    EXPECT_GE(four.avg_energy_mj, two.avg_energy_mj);
    if (four.avg_latency_ms > idle.avg_latency_ms) ++strictly_worse;
  }
  EXPECT_GT(strictly_worse, 0u);  // contention is not a no-op
}

TEST_F(colocation_evaluator, dvfs_caps_never_speed_up_a_mapping) {
  core::evaluator_options capped_opt;
  capped_opt.contention.dvfs_cap.assign(plat.size(), 0);  // floor every CU
  const core::evaluator uncapped{net, plat, {}};
  const core::evaluator capped{net, plat, capped_opt};
  std::size_t strictly_slower = 0;
  for (const core::configuration& c : random_configs(12, 13)) {
    const core::evaluation a = uncapped.evaluate(c);
    const core::evaluation b = capped.evaluate(c);
    if (!a.feasible || !b.feasible) continue;
    EXPECT_GE(b.avg_latency_ms, a.avg_latency_ms);
    if (b.avg_latency_ms > a.avg_latency_ms) ++strictly_slower;
  }
  EXPECT_GT(strictly_slower, 0u);
}

TEST_F(colocation_evaluator, reserved_units_reject_mappings) {
  core::evaluator_options opt;
  opt.contention.residents.push_back(
      make_resident("hog", 0.0, 0.0, 0.0, 0.0, {0, 1, 2}));  // owns every CU
  const core::evaluator eval{net, plat, opt};
  for (const core::configuration& c : random_configs(6, 17)) {
    const core::evaluation e = eval.evaluate(c);
    EXPECT_FALSE(e.feasible);
    EXPECT_NE(e.reject_reason.find("reserved"), std::string::npos) << e.reject_reason;
  }
}

TEST_F(colocation_evaluator, resident_memory_shrinks_the_fmap_budget) {
  const core::evaluator idle{net, plat, {}};
  core::evaluator_options opt;
  opt.contention.residents.push_back(
      make_resident("parker", 0.0, 0.0, 0.0, plat.shared_memory_bytes));
  const core::evaluator squeezed{net, plat, opt};
  std::size_t exercised = 0;
  for (const core::configuration& c : random_configs(32, 19)) {
    const core::evaluation a = idle.evaluate(c);
    if (!a.feasible || a.stored_fmap_bytes <= 0.0) continue;
    const core::evaluation b = squeezed.evaluate(c);
    EXPECT_FALSE(b.feasible);
    EXPECT_NE(b.reject_reason.find("co-residents"), std::string::npos) << b.reject_reason;
    ++exercised;
  }
  EXPECT_GT(exercised, 0u);
}

TEST_F(colocation_evaluator, shared_thermal_budget_rejects_unsustainable_mappings) {
  soc::thermal_model tight;
  tight.throttle_c = tight.ambient_c + 1e-3;  // essentially no headroom
  core::evaluator_options opt;
  opt.contention.thermal = tight;
  const core::evaluator eval{net, plat, opt};
  for (const core::configuration& c : random_configs(6, 23)) {
    const core::evaluation e = eval.evaluate(c);
    EXPECT_FALSE(e.feasible);
    EXPECT_NE(e.reject_reason.find("throttle"), std::string::npos) << e.reject_reason;
  }
}

TEST_F(colocation_evaluator, resident_power_tightens_the_thermal_budget) {
  // Find a mapping sustainable under a generous budget alone, then add a
  // resident drawing exactly the remaining headroom: it must now reject.
  soc::thermal_model roomy;
  roomy.throttle_c = roomy.ambient_c + 60.0;
  core::evaluator_options alone_opt;
  alone_opt.contention.thermal = roomy;
  const core::evaluator alone{net, plat, alone_opt};
  std::size_t exercised = 0;
  for (const core::configuration& c : random_configs(12, 29)) {
    const core::evaluation a = alone.evaluate(c);
    if (!a.feasible || !(a.avg_latency_ms > 0.0)) continue;
    const double mapping_w = a.avg_energy_mj / a.avg_latency_ms;
    core::evaluator_options crowded_opt;
    crowded_opt.contention.thermal = roomy;
    crowded_opt.contention.residents.push_back(
        make_resident("heater", 0.0, 0.0, roomy.max_sustained_power_w() - mapping_w + 0.5));
    const core::evaluation b = core::evaluator{net, plat, crowded_opt}.evaluate(c);
    EXPECT_FALSE(b.feasible);
    EXPECT_NE(b.reject_reason.find("co-residents"), std::string::npos) << b.reject_reason;
    ++exercised;
    if (exercised >= 3) break;  // the construction is per-config; a few suffice
  }
  EXPECT_GT(exercised, 0u);
}

TEST_F(colocation_evaluator, constructor_validates_the_scenario) {
  core::evaluator_options opt;
  opt.contention.residents.push_back(make_resident("a", 1.0, 1.0, 0.0, 0.0, {99}));
  EXPECT_THROW((core::evaluator{net, plat, opt}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Serialization + serving: the scenario note and scenario-aware identity.
// ---------------------------------------------------------------------------

core::report_summary one_entry_summary() {
  core::report_summary s;
  s.network = "n";
  s.platform = "p";
  const nn::network net = nn::build_simple_cnn();
  const soc::platform plat = soc::agx_xavier();
  const core::search_space space{net, plat};
  util::rng gen{2};
  core::summary_entry entry;
  entry.label = "front-0+ours-L+ours-E";
  entry.config = space.decode(space.random(gen));
  s.entries.push_back(std::move(entry));
  return s;
}

TEST(scenario_note_roundtrip, fields_survive_to_text_and_back) {
  core::report_summary s = one_entry_summary();
  core::scenario_note note;
  note.residents = 3;
  note.reserved_units = 2;
  note.dvfs_capped_units = 1;
  note.resident_interconnect_gbps = 4.25;
  note.resident_dram_gbps = 6.5;
  note.resident_power_w = 7.75;
  note.ambient_c = 25.0;
  note.throttle_c = 85.0;
  s.scenario = note;
  const core::report_summary back = core::report_summary_from_text(core::to_text(s));
  ASSERT_TRUE(back.scenario.has_value());
  EXPECT_EQ(back.scenario->residents, 3u);
  EXPECT_EQ(back.scenario->reserved_units, 2u);
  EXPECT_EQ(back.scenario->dvfs_capped_units, 1u);
  EXPECT_EQ(back.scenario->resident_interconnect_gbps, 4.25);
  EXPECT_EQ(back.scenario->resident_dram_gbps, 6.5);
  EXPECT_EQ(back.scenario->resident_power_w, 7.75);
  EXPECT_EQ(back.scenario->ambient_c, 25.0);
  EXPECT_EQ(back.scenario->throttle_c, 85.0);
}

TEST(scenario_note_roundtrip, legacy_documents_have_no_scenario) {
  const core::report_summary s = one_entry_summary();
  const std::string text = core::to_text(s);
  EXPECT_EQ(text.find("scenario"), std::string::npos);  // idle adds no row
  const core::report_summary back = core::report_summary_from_text(text);
  EXPECT_FALSE(back.scenario.has_value());
}

serving::mapping_request tiny_request(const std::string& network) {
  serving::mapping_request req;
  req.network = network;
  req.use_surrogate = false;
  req.ga.generations = 2;
  req.ga.population = 6;
  req.ga.threads = 1;
  return req;
}

TEST(colocation_serving, fingerprints_gate_on_idleness) {
  serving::mapping_request legacy = tiny_request("net");
  serving::mapping_request idle = legacy;
  idle.eval.contention.interconnect_alpha = 5.0;  // still idle
  // Back-compat contract: idle scenarios add nothing to the fingerprint.
  EXPECT_EQ(serving::request_fingerprint(legacy), serving::request_fingerprint(idle));

  serving::mapping_request loaded = legacy;
  loaded.eval.contention.residents.push_back(make_resident("r", 1.0, 1.0));
  EXPECT_NE(serving::request_fingerprint(legacy), serving::request_fingerprint(loaded));

  serving::mapping_request capped = legacy;
  capped.eval.contention.dvfs_cap = {0};
  EXPECT_NE(serving::request_fingerprint(legacy), serving::request_fingerprint(capped));
}

struct colocation_service : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();

  serving::mapping_service make_service() const {
    serving::service_options opt;
    opt.engine.threads = 1;
    opt.workers = 1;
    return serving::mapping_service{opt};
  }
};

TEST_F(colocation_service, scenarios_key_their_own_sessions) {
  serving::mapping_service service = make_service();
  service.register_network(net);
  service.register_platform(plat);

  const serving::mapping_report a = service.map(tiny_request(net.name));
  EXPECT_EQ(service.session_count(), 1u);
  EXPECT_FALSE(a.scenario.has_value());  // idle: note absent, text unchanged

  serving::mapping_request loaded = tiny_request(net.name);
  loaded.eval.contention.residents.push_back(make_resident("r", 2.0, 3.0, 1.5, 0.0, {1}));
  loaded.eval.contention.dvfs_cap = {0};
  const serving::mapping_report b = service.map(loaded);
  EXPECT_EQ(service.session_count(), 2u);  // distinct scenario, distinct session
  EXPECT_NE(a.session_key, b.session_key);

  ASSERT_TRUE(b.scenario.has_value());
  EXPECT_EQ(b.scenario->residents, 1u);
  EXPECT_EQ(b.scenario->reserved_units, 1u);
  EXPECT_EQ(b.scenario->dvfs_capped_units, 1u);
  EXPECT_EQ(b.scenario->resident_interconnect_gbps, 2.0);
  EXPECT_EQ(b.scenario->resident_dram_gbps, 3.0);
  EXPECT_EQ(b.scenario->resident_power_w, 1.5);

  // The note survives the shipped-report round trip.
  const core::report_summary back = core::report_summary_from_text(core::to_text(b.summary()));
  ASSERT_TRUE(back.scenario.has_value());
  EXPECT_EQ(back.scenario->residents, 1u);

  // An idle rerun still lands in the original session (cache intact).
  (void)service.map(tiny_request(net.name));
  EXPECT_EQ(service.session_count(), 2u);
}

// ---------------------------------------------------------------------------
// placement_group: membership, per-member scenarios, concurrent traffic.
// ---------------------------------------------------------------------------

TEST_F(colocation_service, placement_group_membership_and_scenarios) {
  serving::mapping_service service = make_service();
  service.register_network(net);
  service.register_platform(plat);
  serving::placement_group group{service, plat};

  group.join(make_resident("a", 1.0, 1.0, 0.5, 0.0, {1}));
  group.join(make_resident("b", 2.0, 2.0, 0.5, 0.0, {2}));
  EXPECT_THROW(group.join(make_resident("a", 0.0, 0.0)), std::invalid_argument);
  EXPECT_THROW(group.join(make_resident("c", 0.0, 0.0, 0.0, 0.0, {1})),
               std::invalid_argument);  // unit 1 already owned
  EXPECT_EQ(group.members().size(), 2u);
  EXPECT_FALSE(group.unit_reserved(0));
  EXPECT_TRUE(group.unit_reserved(1));
  EXPECT_TRUE(group.unit_reserved(2));

  // Each member contends with every *other* member, never itself.
  const soc::contention_context for_a = group.scenario_for("a");
  ASSERT_EQ(for_a.residents.size(), 1u);
  EXPECT_EQ(for_a.residents[0].name, "b");
  EXPECT_THROW((void)group.scenario_for("zzz"), std::invalid_argument);

  const serving::mapping_request req = group.request_for("a", tiny_request(net.name));
  EXPECT_EQ(req.platform, plat.name);
  ASSERT_EQ(req.eval.contention.residents.size(), 1u);
  EXPECT_EQ(req.eval.contention.residents[0].name, "b");

  const serving::mapping_report rep = group.map("a", tiny_request(net.name));
  ASSERT_TRUE(rep.scenario.has_value());
  EXPECT_EQ(rep.scenario->residents, 1u);
  // Member a's own stages must avoid b's reserved CU 2.
  for (const core::evaluation& e : rep.front) EXPECT_TRUE(e.feasible);

  group.leave("b");
  EXPECT_FALSE(group.unit_reserved(2));
  EXPECT_THROW(group.leave("b"), std::invalid_argument);
  // Sole member with no base scenario: idle context, legacy-identical path.
  EXPECT_TRUE(group.scenario_for("a").idle());
}

TEST_F(colocation_service, placement_group_base_scenario_is_shared) {
  soc::contention_context base;
  base.residents.push_back(make_resident("external-dnn", 1.0, 1.0, 0.0, 0.0, {0}));
  base.dvfs_cap = {0, 0, 0};
  serving::mapping_service service = make_service();
  serving::placement_group group{service, plat, base};
  group.join(make_resident("a", 0.0, 0.0));
  // Base residents contend with members but are not members themselves.
  const soc::contention_context ctx = group.scenario_for("a");
  ASSERT_EQ(ctx.residents.size(), 1u);
  EXPECT_EQ(ctx.residents[0].name, "external-dnn");
  EXPECT_EQ(ctx.dvfs_cap, base.dvfs_cap);
  EXPECT_THROW(group.leave("external-dnn"), std::invalid_argument);
  EXPECT_THROW(group.join(make_resident("clash", 0.0, 0.0, 0.0, 0.0, {0})),
               std::invalid_argument);

  soc::contention_context bad;
  bad.residents.push_back(make_resident("x", 1.0, 1.0, 0.0, 0.0, {99}));
  EXPECT_THROW((serving::placement_group{service, plat, bad}), std::invalid_argument);
}

TEST_F(colocation_service, placement_group_serves_concurrent_members) {
  // TSan coverage: two members join and submit concurrently against one
  // service; the ledger and scheduler must stay coherent.
  serving::mapping_service service = make_service();
  service.register_network(net);
  service.register_platform(plat);
  serving::placement_group group{service, plat};
  group.join(make_resident("a", 1.0, 1.0, 0.0, 0.0, {1}));
  group.join(make_resident("b", 1.0, 1.0, 0.0, 0.0, {2}));

  std::vector<std::shared_future<serving::mapping_report>> futures(4);
  {
    std::vector<std::thread> threads;
    threads.reserve(2);
    for (int t = 0; t < 2; ++t)
      threads.emplace_back([&, t] {
        const std::string member = t == 0 ? "a" : "b";
        for (int i = 0; i < 2; ++i) {
          serving::mapping_request req = tiny_request(net.name);
          req.ga.seed = 100 + static_cast<std::uint64_t>(i);
          futures[static_cast<std::size_t>(t * 2 + i)] = group.submit(member, std::move(req));
        }
      });
    for (std::thread& th : threads) th.join();
  }
  for (auto& f : futures) {
    const serving::mapping_report rep = f.get();
    ASSERT_TRUE(rep.scenario.has_value());
    EXPECT_EQ(rep.scenario->residents, 1u);
    EXPECT_EQ(rep.scenario->reserved_units, 1u);  // the *other* member's CU
  }
  // Two members x two seeds, each scenario keyed apart: four sessions max,
  // two distinct scenario lanes at least.
  EXPECT_GE(service.session_count(), 2u);
}

}  // namespace
