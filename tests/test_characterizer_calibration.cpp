// Characterizer (eqs. 13-14 + idle accounting) and calibration tests.

#include <gtest/gtest.h>

#include "nn/models.h"
#include "perf/calibration.h"
#include "perf/characterizer.h"
#include "perf/single_cu.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;

TEST(characterizer, avg_weighting_math) {
  perf::dynamic_profile p;
  p.latency_upto = {2.0, 5.0, 9.0};
  p.energy_upto = {10.0, 30.0, 70.0};
  const std::vector<double> fr = {0.5, 0.3, 0.2};
  EXPECT_NEAR(p.avg_latency_ms(fr), 0.5 * 2 + 0.3 * 5 + 0.2 * 9, 1e-12);
  EXPECT_NEAR(p.avg_energy_mj(fr), 0.5 * 10 + 0.3 * 30 + 0.2 * 70, 1e-12);
  EXPECT_DOUBLE_EQ(p.worst_latency_ms(), 9.0);
  EXPECT_DOUBLE_EQ(p.worst_energy_mj(), 70.0);
}

TEST(characterizer, rejects_bad_fractions) {
  perf::dynamic_profile p;
  p.latency_upto = {1.0, 2.0};
  p.energy_upto = {1.0, 2.0};
  EXPECT_THROW((void)p.avg_latency_ms(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW((void)p.avg_latency_ms(std::vector<double>{0.7, 0.7}), std::invalid_argument);
  EXPECT_THROW((void)p.avg_latency_ms(std::vector<double>{1.2, -0.2}), std::invalid_argument);
}

TEST(characterizer, system_idle_adds_energy) {
  // Two-stage plan on Xavier; system accounting must cost more than the
  // paper's pure eq. 14 accounting.
  const auto vis = nn::build_visformer();
  const auto vgg = nn::build_vgg19();
  const auto cal = perf::calibrated_xavier(vis, vgg);

  perf::stage_plan plan;
  plan.steps.assign(2, std::vector<perf::stage_step>(1));
  for (auto& st : plan.steps) {
    st[0].cost.kind = nn::layer_kind::conv2d;
    st[0].cost.flops = 1e8;
    st[0].cost.width_frac = 1.0;
  }
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {cal.plat.unit(0).dvfs.max_level(), cal.plat.unit(1).dvfs.max_level(),
                     cal.plat.unit(2).dvfs.max_level()};
  const auto res = perf::simulate(cal.plat, plan);
  const auto plain = perf::characterize(res);
  const auto system = perf::characterize_system(res, plan, cal.plat);
  for (std::size_t m = 0; m < plain.stages(); ++m) {
    EXPECT_GT(system.energy_upto[m], plain.energy_upto[m]);
    EXPECT_DOUBLE_EQ(system.latency_upto[m], plain.latency_upto[m]);
  }
}

TEST(single_cu, run_is_positive_and_level_sensitive) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  const auto& gpu = plat.unit(0);
  const auto fast = perf::single_cu_run(net, gpu, gpu.dvfs.max_level());
  const auto slow = perf::single_cu_run(net, gpu, 0);
  EXPECT_GT(fast.latency_ms, 0.0);
  EXPECT_GT(fast.energy_mj, 0.0);
  EXPECT_GT(slow.latency_ms, fast.latency_ms);
}

TEST(calibration, xavier_hits_all_four_anchors) {
  const auto vis = nn::build_visformer();
  const auto vgg = nn::build_vgg19();
  const auto cal = perf::calibrated_xavier(vis, vgg);
  ASSERT_EQ(cal.reports.size(), 3u);
  for (const auto& rep : cal.reports) {
    for (const double e : rep.latency_error) EXPECT_LT(std::abs(e), 1e-3) << rep.unit;
    for (const double e : rep.energy_error) EXPECT_LT(std::abs(e), 1e-3) << rep.unit;
  }
}

TEST(calibration, calibrated_baselines_match_paper) {
  const auto vis = nn::build_visformer();
  const auto vgg = nn::build_vgg19();
  const auto cal = perf::calibrated_xavier(vis, vgg);
  const auto& gpu = cal.plat.unit(0);
  const auto& dla = cal.plat.unit(1);

  const auto vis_gpu = perf::single_cu_run(vis, gpu, gpu.dvfs.max_level());
  EXPECT_NEAR(vis_gpu.latency_ms, 15.01, 0.05);
  const auto vis_dla = perf::single_cu_run(vis, dla, dla.dvfs.max_level());
  EXPECT_NEAR(vis_dla.latency_ms, 69.22, 0.2);
  const auto vgg_gpu = perf::single_cu_run(vgg, gpu, gpu.dvfs.max_level());
  EXPECT_NEAR(vgg_gpu.latency_ms, 25.23, 0.1);
  const auto vgg_dla = perf::single_cu_run(vgg, dla, dla.dvfs.max_level());
  EXPECT_NEAR(vgg_dla.latency_ms, 114.41, 0.3);
}

TEST(calibration, gpu_fast_and_hungry_dla_slow_and_frugal) {
  const auto vis = nn::build_visformer();
  const auto vgg = nn::build_vgg19();
  const auto cal = perf::calibrated_xavier(vis, vgg);
  const auto& gpu = cal.plat.unit(0);
  const auto& dla = cal.plat.unit(1);
  const auto g = perf::single_cu_run(vis, gpu, gpu.dvfs.max_level());
  const auto d = perf::single_cu_run(vis, dla, dla.dvfs.max_level());
  EXPECT_LT(g.latency_ms, d.latency_ms);   // GPU faster
  EXPECT_GT(g.energy_mj, d.energy_mj);     // DLA frugal
}

TEST(calibration, dlas_identical_after_calibration) {
  const auto vis = nn::build_visformer();
  const auto vgg = nn::build_vgg19();
  const auto cal = perf::calibrated_xavier(vis, vgg);
  const auto& dla0 = cal.plat.unit(1);
  const auto& dla1 = cal.plat.unit(2);
  EXPECT_DOUBLE_EQ(dla0.efficiency_spatial, dla1.efficiency_spatial);
  EXPECT_DOUBLE_EQ(dla0.activity_matmul, dla1.activity_matmul);
}

TEST(calibration, rejects_bad_anchors) {
  auto plat = soc::agx_xavier();
  const auto net = nn::build_simple_cnn();
  const perf::reference_point bad_null[] = {{nullptr, 1.0, 1.0, soc::op_class::spatial}};
  EXPECT_THROW((void)perf::calibrate_unit(plat.units[0], bad_null), std::invalid_argument);
  const perf::reference_point bad_zero[] = {{&net, 0.0, 1.0, soc::op_class::spatial}};
  EXPECT_THROW((void)perf::calibrate_unit(plat.units[0], bad_zero), std::invalid_argument);
  EXPECT_THROW((void)perf::calibrate_unit(plat.units[0], std::span<const perf::reference_point>{}),
               std::invalid_argument);
}

TEST(calibration, unreachable_latency_throws) {
  auto plat = soc::agx_xavier();
  const auto net = nn::build_vgg19();
  // Absurdly fast target: even efficiency 1.0 cannot reach it.
  const perf::reference_point anchors[] = {{&net, 1e-6, 100.0, soc::op_class::spatial}};
  EXPECT_THROW((void)perf::calibrate_unit(plat.units[0], anchors), std::runtime_error);
}

TEST(calibration, dvfs_scaling_preserved_after_calibration) {
  const auto vis = nn::build_visformer();
  const auto vgg = nn::build_vgg19();
  const auto cal = perf::calibrated_xavier(vis, vgg);
  const auto& gpu = cal.plat.unit(0);
  const auto fast = perf::single_cu_run(vis, gpu, gpu.dvfs.max_level());
  const auto slow = perf::single_cu_run(vis, gpu, 0);
  // Compute-dominated: latency should grow roughly like 1/theta.
  EXPECT_GT(slow.latency_ms / fast.latency_ms, 2.0);
  // Energy at low DVFS: lower power but longer time.
  EXPECT_GT(slow.energy_mj, 0.0);
}

}  // namespace
