// Compute-unit, DVFS, platform, shared-memory and interconnect tests.

#include <gtest/gtest.h>

#include "soc/compute_unit.h"
#include "soc/dvfs.h"
#include "soc/interconnect.h"
#include "soc/memory.h"
#include "soc/platform.h"

namespace {

using namespace mapcq::soc;

TEST(dvfs, xavier_tables_ascend) {
  for (const auto& tbl : {xavier_gpu_dvfs(), xavier_dla_dvfs(), xavier_cpu_dvfs()}) {
    ASSERT_GT(tbl.levels(), 4u);
    double prev = 0.0;
    for (std::size_t l = 0; l < tbl.levels(); ++l) {
      EXPECT_GT(tbl.frequency_mhz(l), prev);
      prev = tbl.frequency_mhz(l);
    }
  }
}

TEST(dvfs, scale_is_fraction_of_max) {
  const dvfs_table t = xavier_gpu_dvfs();
  EXPECT_DOUBLE_EQ(t.scale(t.max_level()), 1.0);
  EXPECT_GT(t.scale(0), 0.0);
  EXPECT_LT(t.scale(0), 1.0);
}

TEST(dvfs, nearest_level) {
  const dvfs_table t{{100.0, 200.0, 400.0}};
  EXPECT_EQ(t.nearest_level(90.0), 0u);
  EXPECT_EQ(t.nearest_level(290.0), 1u);
  EXPECT_EQ(t.nearest_level(1000.0), 2u);
}

TEST(dvfs, rejects_bad_tables) {
  EXPECT_THROW((dvfs_table{std::vector<double>{}}), std::invalid_argument);
  EXPECT_THROW((dvfs_table{std::vector<double>{200.0, 100.0}}), std::invalid_argument);
  EXPECT_THROW((void)xavier_gpu_dvfs().frequency_mhz(99), std::out_of_range);
}

TEST(compute_unit, classify_op_classes) {
  using K = mapcq::nn::layer_kind;
  EXPECT_EQ(classify(K::conv2d), op_class::spatial);
  EXPECT_EQ(classify(K::pool), op_class::spatial);
  EXPECT_EQ(classify(K::norm), op_class::spatial);
  EXPECT_EQ(classify(K::attention), op_class::matmul);
  EXPECT_EQ(classify(K::mlp), op_class::matmul);
  EXPECT_EQ(classify(K::classifier), op_class::matmul);
}

TEST(compute_unit, occupancy_properties) {
  const platform p = agx_xavier();
  const compute_unit& gpu = p.unit(p.first_of(cu_kind::gpu));
  EXPECT_DOUBLE_EQ(gpu.occupancy(0.0), 0.0);
  EXPECT_NEAR(gpu.occupancy(1.0), 1.0, 1e-12);
  EXPECT_GT(gpu.occupancy(0.5), gpu.occupancy_floor);
  EXPECT_LT(gpu.occupancy(0.5), 1.0);
  EXPECT_LT(gpu.occupancy(0.25), gpu.occupancy(0.75));
}

TEST(compute_unit, sustained_gflops_scale_with_theta) {
  const platform p = agx_xavier();
  const compute_unit& gpu = p.unit(0);
  const double hi = gpu.sustained_gflops(mapcq::nn::layer_kind::conv2d, 1.0, gpu.dvfs.max_level());
  const double lo = gpu.sustained_gflops(mapcq::nn::layer_kind::conv2d, 1.0, 0);
  EXPECT_NEAR(lo / hi, gpu.dvfs.scale(0), 1e-12);
}

TEST(compute_unit, power_linear_in_theta) {
  const platform p = agx_xavier();
  const compute_unit& gpu = p.unit(0);
  using K = mapcq::nn::layer_kind;
  const std::size_t max = gpu.dvfs.max_level();
  const double p_hi = gpu.power_w(K::conv2d, max);
  const double p_lo = gpu.power_w(K::conv2d, 0);
  // P = alpha + beta*act*theta (paper eq. 10).
  EXPECT_NEAR(p_hi - p_lo,
              gpu.dynamic_power_w * gpu.activity_spatial * (1.0 - gpu.dvfs.scale(0)), 1e-9);
  EXPECT_GT(p_lo, gpu.static_power_w);
}

TEST(compute_unit, validate_catches_bad_params) {
  platform p = agx_xavier();
  compute_unit u = p.unit(0);
  u.efficiency_matmul = 0.0;
  EXPECT_THROW(u.validate(), std::logic_error);
  u = p.unit(0);
  u.activity_spatial = 1.5;
  EXPECT_THROW(u.validate(), std::logic_error);
  u = p.unit(0);
  u.peak_gflops = -1.0;
  EXPECT_THROW(u.validate(), std::logic_error);
}

TEST(platform, xavier_composition) {
  const platform p = agx_xavier();
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.unit(0).kind, cu_kind::gpu);
  EXPECT_EQ(p.unit(1).kind, cu_kind::dla);
  EXPECT_EQ(p.unit(2).kind, cu_kind::dla);
  EXPECT_GT(p.shared_memory_bytes, 0.0);
}

TEST(platform, with_cpu_variant) {
  const platform p = agx_xavier_with_cpu();
  EXPECT_EQ(p.size(), 4u);
  EXPECT_NO_THROW((void)p.first_of(cu_kind::cpu));
}

TEST(platform, first_of_throws_when_absent) {
  const platform p = agx_xavier();
  EXPECT_THROW((void)p.first_of(cu_kind::cpu), std::out_of_range);
}

TEST(platform, dvfs_configurations_product) {
  const platform p = agx_xavier();
  const double expect = static_cast<double>(p.unit(0).dvfs.levels()) *
                        static_cast<double>(p.unit(1).dvfs.levels()) *
                        static_cast<double>(p.unit(2).dvfs.levels());
  EXPECT_DOUBLE_EQ(p.dvfs_configurations(), expect);
}

TEST(platform, unit_out_of_range_throws) {
  const platform p = agx_xavier();
  EXPECT_THROW((void)p.unit(17), std::out_of_range);
}

TEST(shared_memory, reserve_release_cycle) {
  shared_memory m{1000.0};
  EXPECT_TRUE(m.fits(1000.0));
  m.reserve(600.0);
  EXPECT_DOUBLE_EQ(m.used_bytes(), 600.0);
  EXPECT_FALSE(m.fits(500.0));
  EXPECT_THROW(m.reserve(500.0), std::runtime_error);
  m.release(200.0);
  EXPECT_DOUBLE_EQ(m.free_bytes(), 600.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.used_bytes(), 0.0);
}

TEST(shared_memory, rejects_bad_values) {
  EXPECT_THROW(shared_memory{0.0}, std::invalid_argument);
  shared_memory m{10.0};
  EXPECT_THROW(m.reserve(-1.0), std::invalid_argument);
}

TEST(shared_memory, release_clamps_at_zero) {
  shared_memory m{10.0};
  m.reserve(5.0);
  m.release(100.0);
  EXPECT_DOUBLE_EQ(m.used_bytes(), 0.0);
}

TEST(interconnect, transfer_has_base_latency) {
  const interconnect x;
  EXPECT_DOUBLE_EQ(x.transfer_ms(0.0), x.base_latency_ms);
  EXPECT_GT(x.transfer_ms(1e6), x.transfer_ms(1e3));
}

TEST(interconnect, bandwidth_term_correct) {
  interconnect x;
  x.bandwidth_gbps = 10.0;
  x.base_latency_ms = 0.0;
  // 10 GB/s == 1e7 bytes per ms.
  EXPECT_NEAR(x.transfer_ms(1e7), 1.0, 1e-9);
}

TEST(interconnect, negative_bytes_treated_as_zero) {
  const interconnect x;
  EXPECT_DOUBLE_EQ(x.transfer_ms(-5.0), x.base_latency_ms);
  EXPECT_DOUBLE_EQ(x.transfer_mj(-5.0), 0.0);
}

TEST(interconnect, transfer_energy_scales) {
  const interconnect x;
  EXPECT_NEAR(x.transfer_mj(1e6), x.energy_pj_per_byte * 1e6 * 1e-9, 1e-12);
}

}  // namespace
