#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace {

using namespace mapcq::util;

TEST(stats, mean_basic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(stats, mean_empty_is_zero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(stats, stddev_known_value) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
}

TEST(stats, stddev_single_sample_zero) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(stats, percentile_median) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 50.0), 3.0);
}

TEST(stats, percentile_interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(stats, percentile_bounds) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 100.0), 3.0);
}

TEST(stats, percentile_rejects_bad_input) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(stats, min_max) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
  EXPECT_THROW((void)min_of(std::vector<double>{}), std::invalid_argument);
}

TEST(stats, rmse_zero_for_perfect) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(stats, rmse_known) {
  EXPECT_DOUBLE_EQ(rmse(std::vector<double>{0.0, 0.0}, std::vector<double>{3.0, 4.0}),
                   std::sqrt(12.5));
}

TEST(stats, rmse_rejects_mismatch) {
  EXPECT_THROW((void)rmse(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)rmse(std::vector<double>{}, std::vector<double>{}), std::invalid_argument);
}

TEST(stats, mape_known) {
  // |10-8|/8 = 25%, |20-25|/25 = 20% -> mean 22.5%
  EXPECT_NEAR(mape(std::vector<double>{10.0, 20.0}, std::vector<double>{8.0, 25.0}), 22.5, 1e-9);
}

TEST(stats, mape_rejects_zero_truth) {
  EXPECT_THROW((void)mape(std::vector<double>{1.0}, std::vector<double>{0.0}),
               std::invalid_argument);
}

TEST(stats, r_squared_perfect_fit) {
  const std::vector<double> t = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r_squared(t, t), 1.0);
}

TEST(stats, r_squared_mean_predictor_is_zero) {
  const std::vector<double> truth = {1.0, 2.0, 3.0};
  const std::vector<double> pred = {2.0, 2.0, 2.0};
  EXPECT_NEAR(r_squared(pred, truth), 0.0, 1e-12);
}

TEST(stats, pearson_perfect_correlation) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(stats, pearson_anticorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(stats, pearson_zero_variance_is_zero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(stats, running_stats_tracks_extremes) {
  running_stats rs;
  EXPECT_EQ(rs.count(), 0u);
  rs.add(3.0);
  rs.add(-1.0);
  rs.add(10.0);
  EXPECT_EQ(rs.count(), 3u);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 10.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 12.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
}

}  // namespace
