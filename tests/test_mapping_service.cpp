// Serving front-end tests: session registry keying, warm-cache reuse with
// bit-identical reports, cross-phase cache continuity, one-shot surrogate
// training, async submission, concurrency (shared session vs isolated
// sessions) and report-summary round-trips.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/serialization.h"
#include "nn/models.h"
#include "serving/mapping_service.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using serving::mapping_report;
using serving::mapping_request;
using serving::mapping_service;
using serving::service_options;

service_options small_service() {
  service_options opt;
  opt.engine.threads = 2;
  return opt;
}

mapping_request tiny_request(const std::string& network, std::uint64_t ga_seed = 1) {
  mapping_request req;
  req.network = network;
  req.use_surrogate = false;  // analytic by default: fast and cache-transparent
  req.ga.generations = 6;
  req.ga.population = 12;
  req.ga.seed = ga_seed;
  return req;
}

void expect_same_front(const mapping_report& a, const mapping_report& b) {
  ASSERT_EQ(a.front.size(), b.front.size());
  EXPECT_EQ(a.ours_latency_index, b.ours_latency_index);
  EXPECT_EQ(a.ours_energy_index, b.ours_energy_index);
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_TRUE(a.front[i].config == b.front[i].config);
    EXPECT_EQ(a.front[i].objective, b.front[i].objective);
    EXPECT_EQ(a.front[i].avg_latency_ms, b.front[i].avg_latency_ms);
    EXPECT_EQ(a.front[i].avg_energy_mj, b.front[i].avg_energy_mj);
    EXPECT_EQ(a.front[i].accuracy_pct, b.front[i].accuracy_pct);
  }
}

struct service_fixture : ::testing::Test {
  nn::network cnn = nn::build_simple_cnn();
  nn::network mobile = nn::build_mobilenet_cifar();
  soc::platform plat = soc::agx_xavier();
  mapping_service service{small_service()};

  service_fixture() {
    service.register_network(cnn);
    service.register_network(mobile);
    service.register_platform(plat);
  }
};

TEST_F(service_fixture, warm_session_reuses_cache_and_is_bit_identical) {
  const mapping_request req = tiny_request(cnn.name);
  const mapping_report cold = service.map(req);
  const mapping_report warm = service.map(req);

  EXPECT_EQ(service.session_count(), 1u);
  EXPECT_EQ(warm.session_key, cold.session_key);
  // Every candidate of the warm rerun was evaluated by the cold run.
  EXPECT_GT(cold.search_cache.misses, 0u);
  EXPECT_EQ(warm.search_cache.misses, 0u);
  EXPECT_EQ(warm.validation_cache.misses, 0u);
  expect_same_front(cold, warm);
  ASSERT_EQ(cold.search.history.size(), warm.search.history.size());
  for (std::size_t g = 0; g < cold.search.history.size(); ++g)
    EXPECT_EQ(cold.search.history[g].best_objective, warm.search.history[g].best_objective);
}

TEST_F(service_fixture, analytic_search_validates_as_cross_phase_hits) {
  const mapping_report rep = service.map(tiny_request(cnn.name));
  EXPECT_EQ(rep.validation_cache.misses, 0u);
  EXPECT_EQ(rep.validation_cache.hits + rep.validation_cache.dedup, rep.front.size());
  EXPECT_FALSE(rep.surrogate_fidelity.has_value());
}

TEST_F(service_fixture, surrogate_trains_once_per_session) {
  mapping_request req = tiny_request(cnn.name);
  req.use_surrogate = true;
  req.bench.samples = 600;
  req.gbt.n_trees = 30;

  const mapping_report first = service.map(req);
  const mapping_report second = service.map(req);
  EXPECT_EQ(service.session_count(), 1u);  // same key as an analytic request would use
  EXPECT_TRUE(first.trained_surrogate);
  EXPECT_FALSE(second.trained_surrogate);
  ASSERT_TRUE(first.surrogate_fidelity.has_value());
  ASSERT_TRUE(second.surrogate_fidelity.has_value());
  EXPECT_EQ(first.surrogate_fidelity->latency_mape, second.surrogate_fidelity->latency_mape);
  EXPECT_EQ(second.search_cache.misses, 0u);  // warm surrogate engine
  expect_same_front(first, second);

  // A session's predictor is immutable: different training knobs are an error.
  mapping_request clashing = req;
  clashing.gbt.n_trees = 31;
  EXPECT_THROW((void)service.map(clashing), std::invalid_argument);
}

TEST_F(service_fixture, submit_serves_async_and_propagates_errors) {
  std::shared_future<mapping_report> pending = service.submit(tiny_request(cnn.name));
  const mapping_report rep = pending.get();
  EXPECT_FALSE(rep.front.empty());
  // The submit() path rides through the scheduler and says so.
  ASSERT_TRUE(rep.scheduler.has_value());
  EXPECT_GE(rep.scheduler->completed, 1u);

  // Unknown networks are admitted (the lane is computed leniently) and fail
  // inside the worker, surfacing at get() like any execution error.
  std::shared_future<mapping_report> bogus = service.submit(tiny_request("no-such-network"));
  EXPECT_THROW((void)bogus.get(), std::invalid_argument);
  EXPECT_GE(service.scheduler().failed, 1u);

  // A direct map() bypasses the scheduler and carries no snapshot.
  EXPECT_FALSE(service.map(tiny_request(cnn.name)).scheduler.has_value());
}

TEST_F(service_fixture, rejects_unregistered_platform_and_foreign_predictor) {
  mapping_request req = tiny_request(cnn.name);
  req.platform = "no-such-platform";
  EXPECT_THROW((void)service.map(req), std::invalid_argument);
}

TEST_F(service_fixture, concurrent_requests_on_one_session_share_the_cache) {
  // Baseline: one cold run on its own service/session.
  mapping_service solo{small_service()};
  solo.register_network(cnn);
  solo.register_platform(plat);
  const mapping_request req = tiny_request(cnn.name);
  const mapping_report single = solo.map(req);
  const std::size_t solo_misses = solo.session_for(req)->analytic_cache_stats().misses;
  ASSERT_GT(solo_misses, 0u);

  // Two COLD requests race on one fresh session, with service-level
  // coalescing disabled so both actually execute. Thanks to the engine's
  // cross-thread in-flight dedup, a candidate the first thread is already
  // evaluating is joined — never re-run — so the combined evaluator-run
  // count across both racing requests is *exactly* one cold run's worth,
  // for any interleaving.
  service_options racing_opt = small_service();
  racing_opt.scheduler.coalesce = false;
  mapping_service racing{racing_opt};
  racing.register_network(cnn);
  racing.register_platform(plat);
  std::shared_future<mapping_report> a = racing.submit(req);
  std::shared_future<mapping_report> b = racing.submit(req);
  const mapping_report ra = a.get();
  const mapping_report rb = b.get();
  EXPECT_EQ(racing.session_count(), 1u);
  EXPECT_EQ(racing.scheduler().coalesced, 0u);
  EXPECT_EQ(racing.scheduler().completed, 2u);
  const std::size_t shared_misses = racing.session_for(req)->analytic_cache_stats().misses;
  EXPECT_EQ(shared_misses, solo_misses);
  // Purity: both threads land on the identical result regardless of races.
  expect_same_front(ra, rb);
  expect_same_front(ra, single);
}

TEST_F(service_fixture, coalesced_submits_share_one_execution) {
  // Default scheduler: an identical submit joins a queued/in-flight
  // request. The assertions below hold for any interleaving (even if the
  // first request finished before the duplicates arrived).
  const mapping_request req = tiny_request(cnn.name);
  std::shared_future<mapping_report> a = service.submit(req);
  std::shared_future<mapping_report> b = service.submit(req);
  std::shared_future<mapping_report> c = service.submit(req);
  const mapping_report ra = a.get();
  const mapping_report rb = b.get();
  const mapping_report rc = c.get();
  const serving::scheduler_stats stats = service.scheduler();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted + stats.coalesced, 3u);
  EXPECT_EQ(stats.completed, stats.admitted);
  // However the race went, every future saw the same validated front.
  expect_same_front(ra, rb);
  expect_same_front(ra, rc);
  ASSERT_TRUE(ra.scheduler.has_value());
}

TEST_F(service_fixture, island_requests_flow_through_the_service) {
  mapping_request req = tiny_request(cnn.name);
  req.ga.population = 16;
  req.ga.island.islands = 2;
  req.ga.island.migration_interval = 2;
  const mapping_report cold = service.map(req);
  EXPECT_EQ(cold.search.islands, 2u);
  EXPECT_FALSE(cold.front.empty());
  // Island searches are deterministic, so the warm rerun replays from cache.
  const mapping_report warm = service.map(req);
  EXPECT_EQ(warm.search_cache.misses, 0u);
  expect_same_front(cold, warm);
  // Island knobs are per-request (like the rest of ga_options): both runs
  // were served by one session.
  EXPECT_EQ(service.session_count(), 1u);
}

TEST(service_lifetime, lru_cap_bounds_the_session_registry) {
  service_options opt;
  opt.engine.threads = 2;
  opt.max_sessions = 1;
  mapping_service service{opt};
  const nn::network cnn = nn::build_simple_cnn();
  const nn::network mobile = nn::build_mobilenet_cifar();
  service.register_network(cnn);
  service.register_network(mobile);
  service.register_platform(soc::agx_xavier());

  (void)service.map(tiny_request(cnn.name));
  EXPECT_EQ(service.session_count(), 1u);
  EXPECT_EQ(service.sessions_evicted(), 0u);

  // A second tuple evicts the least-recently-used session.
  (void)service.map(tiny_request(mobile.name));
  EXPECT_EQ(service.session_count(), 1u);
  EXPECT_EQ(service.sessions_evicted(), 1u);

  // The evicted tuple comes back cold (fresh session, fresh cache).
  const mapping_report again = service.map(tiny_request(cnn.name));
  EXPECT_GT(again.search_cache.misses, 0u);
  EXPECT_EQ(service.sessions_evicted(), 2u);
}

TEST(service_lifetime, idle_sessions_expire_after_the_ttl) {
  service_options opt;
  opt.engine.threads = 2;
  opt.session_ttl = std::chrono::milliseconds{250};
  mapping_service service{opt};
  const nn::network cnn = nn::build_simple_cnn();
  service.register_network(cnn);
  service.register_platform(soc::agx_xavier());

  const mapping_request req = tiny_request(cnn.name);
  const mapping_report cold = service.map(req);
  EXPECT_GT(cold.search_cache.misses, 0u);

  // Within the TTL the session is warm...
  const mapping_report warm = service.map(req);
  EXPECT_EQ(warm.search_cache.misses, 0u);

  // ...and after sitting idle past it, the tuple is served cold again.
  std::this_thread::sleep_for(std::chrono::milliseconds{600});
  const mapping_report expired = service.map(req);
  EXPECT_GT(expired.search_cache.misses, 0u);
  EXPECT_GE(service.sessions_evicted(), 1u);
  expect_same_front(cold, expired);  // determinism survives the round trip
}

TEST_F(service_fixture, reregistering_a_network_forks_a_fresh_session) {
  const mapping_request req = tiny_request(cnn.name);
  const mapping_report before = service.map(req);

  // Replace the registered network under the same name: subsequent requests
  // must not be served from the stale session's warm cache.
  nn::network tweaked = cnn;
  tweaked.base_accuracy += 1.0;
  service.register_network(tweaked);
  const mapping_report after = service.map(req);
  EXPECT_NE(after.session_key, before.session_key);
  EXPECT_EQ(service.session_count(), 2u);
  EXPECT_GT(after.search_cache.misses, 0u);  // cold session, not the old cache
}

TEST_F(service_fixture, different_networks_get_isolated_sessions) {
  const mapping_request cnn_req = tiny_request(cnn.name);
  const mapping_request mobile_req = tiny_request(mobile.name);
  const auto cnn_session = service.session_for(cnn_req);
  const auto mobile_session = service.session_for(mobile_req);
  EXPECT_EQ(service.session_count(), 2u);
  EXPECT_NE(cnn_session->key(), mobile_session->key());

  (void)service.map(cnn_req);
  // Traffic for one network never lands in the other's shards.
  EXPECT_EQ(mobile_session->analytic_cache_stats().lookups(), 0u);
  const core::engine_stats cnn_after = cnn_session->analytic_cache_stats();
  EXPECT_GT(cnn_after.lookups(), 0u);

  (void)service.map(mobile_req);
  const core::engine_stats cnn_unchanged = cnn_session->analytic_cache_stats();
  EXPECT_EQ(cnn_unchanged.lookups(), cnn_after.lookups());
  EXPECT_EQ(cnn_unchanged.misses, cnn_after.misses);
  EXPECT_GT(mobile_session->analytic_cache_stats().lookups(), 0u);
}

TEST_F(service_fixture, report_summary_roundtrips_through_text) {
  const mapping_report rep = service.map(tiny_request(cnn.name));
  const core::report_summary summary = rep.summary();
  ASSERT_EQ(summary.entries.size(), rep.front.size());
  EXPECT_EQ(summary.ours_latency_index, rep.ours_latency_index);
  EXPECT_EQ(summary.ours_energy_index, rep.ours_energy_index);

  const std::string text = core::to_text(summary);
  const core::report_summary back = core::report_summary_from_text(text);
  EXPECT_EQ(back.network, summary.network);
  EXPECT_EQ(back.platform, summary.platform);
  EXPECT_EQ(back.ours_latency_index, summary.ours_latency_index);
  EXPECT_EQ(back.ours_energy_index, summary.ours_energy_index);
  ASSERT_EQ(back.entries.size(), summary.entries.size());
  for (std::size_t i = 0; i < back.entries.size(); ++i) {
    const core::summary_entry& x = back.entries[i];
    const core::summary_entry& y = summary.entries[i];
    EXPECT_EQ(x.label, y.label);
    EXPECT_TRUE(x.config == y.config);
    EXPECT_EQ(x.feasible, y.feasible);
    EXPECT_EQ(x.objective, y.objective);
    EXPECT_EQ(x.avg_latency_ms, y.avg_latency_ms);
    EXPECT_EQ(x.avg_energy_mj, y.avg_energy_mj);
    EXPECT_EQ(x.accuracy_pct, y.accuracy_pct);
    EXPECT_EQ(x.fmap_reuse_pct, y.fmap_reuse_pct);
  }

  EXPECT_THROW((void)core::report_summary_from_text("garbage"), std::runtime_error);

  // The optional scheduler-counter line round-trips too (submit() reports
  // carry it; the plain map() report above had none).
  EXPECT_FALSE(summary.scheduler.has_value());
  core::report_summary with_sched = summary;
  with_sched.scheduler = core::scheduler_note{7, 4, 2, 1, 1, 3, 0};
  const core::report_summary back2 = core::report_summary_from_text(core::to_text(with_sched));
  ASSERT_TRUE(back2.scheduler.has_value());
  EXPECT_EQ(back2.scheduler->submitted, 7u);
  EXPECT_EQ(back2.scheduler->admitted, 4u);
  EXPECT_EQ(back2.scheduler->coalesced, 2u);
  EXPECT_EQ(back2.scheduler->rejected, 1u);
  EXPECT_EQ(back2.scheduler->expired, 1u);
  EXPECT_EQ(back2.scheduler->completed, 3u);
  EXPECT_EQ(back2.scheduler->failed, 0u);
}

TEST_F(service_fixture, orientation_selects_the_best_pick) {
  mapping_request req = tiny_request(cnn.name);
  req.orientation = serving::objective_orientation::energy;
  const mapping_report energy = service.map(req);
  EXPECT_EQ(energy.best().avg_energy_mj, energy.ours_energy().avg_energy_mj);

  req.orientation = serving::objective_orientation::latency;
  const mapping_report latency = service.map(req);
  EXPECT_EQ(latency.best().avg_latency_ms, latency.ours_latency().avg_latency_ms);

  req.orientation = serving::objective_orientation::balanced;
  const mapping_report balanced = service.map(req);
  for (const auto& e : balanced.front)
    EXPECT_LE(balanced.best().objective, e.objective);
}

}  // namespace
