// Durable session snapshot tests: mapcq-snapshot-v1 round-trips, typed
// parse failures on corrupt/truncated input, spill-on-evict + warm-start
// restore through mapping_service (bit-identical reports at zero evaluator
// runs), GBT adoption without retraining, and snapshot/refresh epoch
// consistency.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "nn/models.h"
#include "serving/mapping_service.h"
#include "serving/session_snapshot.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using serving::mapping_report;
using serving::mapping_request;
using serving::mapping_service;
using serving::service_options;
using serving::session_snapshot;
using serving::snapshot_error;

/// Fresh empty directory under /tmp, unique per test, removed on teardown.
class snapshot_dir {
 public:
  explicit snapshot_dir(const std::string& name)
      : path_("/tmp/mapcq_snap_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~snapshot_dir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

service_options persistent_service(const std::string& dir) {
  service_options opt;
  opt.engine.threads = 2;
  opt.snapshot.directory = dir;
  opt.snapshot.spill_on_evict = true;
  return opt;
}

mapping_request tiny_request(const std::string& network, bool use_surrogate = false,
                             std::uint64_t seed = 1) {
  mapping_request req;
  req.network = network;
  req.use_surrogate = use_surrogate;
  req.ga.generations = 4;
  req.ga.population = 12;
  req.ga.seed = seed;
  req.bench.samples = 250;
  req.gbt.n_trees = 24;
  return req;
}

void expect_identical_fronts(const mapping_report& a, const mapping_report& b) {
  ASSERT_EQ(a.front.size(), b.front.size());
  EXPECT_EQ(a.ours_latency_index, b.ours_latency_index);
  EXPECT_EQ(a.ours_energy_index, b.ours_energy_index);
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_TRUE(a.front[i].config == b.front[i].config);
    EXPECT_EQ(a.front[i].objective, b.front[i].objective);
    EXPECT_EQ(a.front[i].avg_latency_ms, b.front[i].avg_latency_ms);
    EXPECT_EQ(a.front[i].avg_energy_mj, b.front[i].avg_energy_mj);
    EXPECT_EQ(a.front[i].accuracy_pct, b.front[i].accuracy_pct);
  }
}

struct snapshot_fixture : ::testing::Test {
  nn::network cnn = nn::build_simple_cnn();
  nn::network mobile = nn::build_mobilenet_cifar();
  soc::platform plat = soc::agx_xavier();

  void register_all(mapping_service& service) {
    service.register_network(cnn);
    service.register_network(mobile);
    service.register_platform(plat);
  }
};

// --- text format ------------------------------------------------------------

TEST_F(snapshot_fixture, snapshot_text_round_trips_exactly) {
  snapshot_dir dir{"round_trip"};
  mapping_service service{persistent_service(dir.path())};
  register_all(service);
  (void)service.map(tiny_request(cnn.name, /*use_surrogate=*/true));
  (void)service.map(tiny_request(cnn.name, /*use_surrogate=*/false, 2));

  const auto session = service.session_for(tiny_request(cnn.name));
  const session_snapshot snap = session->snapshot();
  EXPECT_EQ(snap.session_key, session->key());
  EXPECT_FALSE(snap.analytic_entries.empty());
  ASSERT_TRUE(snap.surrogate.has_value());
  EXPECT_FALSE(snap.surrogate->entries.empty());
  EXPECT_FALSE(snap.surrogate->latency.trees.empty());

  // Serialize -> parse -> serialize is a fixed point: byte-identical text.
  const std::string text = serving::to_text(snap);
  const session_snapshot reparsed = serving::snapshot_from_text(text);
  EXPECT_EQ(serving::to_text(reparsed), text);
  EXPECT_EQ(reparsed.session_key, snap.session_key);
  EXPECT_EQ(reparsed.analytic_entries.size(), snap.analytic_entries.size());
  ASSERT_TRUE(reparsed.surrogate.has_value());
  EXPECT_EQ(reparsed.surrogate->entries.size(), snap.surrogate->entries.size());
  EXPECT_EQ(reparsed.surrogate->latency.trees.size(), snap.surrogate->latency.trees.size());
  EXPECT_EQ(reparsed.surrogate->fidelity.latency_rmse, snap.surrogate->fidelity.latency_rmse);
}

TEST_F(snapshot_fixture, corrupt_and_truncated_snapshots_throw_typed_errors) {
  snapshot_dir dir{"corrupt"};
  mapping_service service{persistent_service(dir.path())};
  register_all(service);
  (void)service.map(tiny_request(cnn.name));
  const auto session = service.session_for(tiny_request(cnn.name));
  const std::string text = serving::to_text(session->snapshot());

  // Wrong header / not a snapshot at all.
  EXPECT_THROW((void)serving::snapshot_from_text(""), snapshot_error);
  EXPECT_THROW((void)serving::snapshot_from_text("mapcq-snapshot-v999\n"), snapshot_error);
  EXPECT_THROW((void)serving::snapshot_from_text("garbage\nlines\n"), snapshot_error);

  // Truncation at any prefix must throw, never crash or return junk.
  for (const double frac : {0.1, 0.5, 0.9}) {
    const std::string cut = text.substr(0, static_cast<std::size_t>(text.size() * frac));
    EXPECT_THROW((void)serving::snapshot_from_text(cut), snapshot_error) << "fraction " << frac;
  }

  // Field-level corruption: replace a numeric token with text.
  std::string corrupt = text;
  const std::size_t pos = corrupt.find("objective ");
  ASSERT_NE(pos, std::string::npos);
  corrupt.replace(pos, 10, "objective not-a-num-");
  EXPECT_THROW((void)serving::snapshot_from_text(corrupt), snapshot_error);

  // File wrappers: missing file is a typed error too.
  EXPECT_THROW((void)serving::load_snapshot(dir.path() + "/nope.snapshot"), snapshot_error);
}

TEST_F(snapshot_fixture, restore_refuses_key_mismatch_and_non_fresh_sessions) {
  snapshot_dir dir{"refuse"};
  mapping_service service{persistent_service(dir.path())};
  register_all(service);
  (void)service.map(tiny_request(cnn.name));
  (void)service.map(tiny_request(mobile.name));

  const auto cnn_session = service.session_for(tiny_request(cnn.name));
  const auto mobile_session = service.session_for(tiny_request(mobile.name));
  const session_snapshot snap = cnn_session->snapshot();

  // Key mismatch: a snapshot must not warm a session with different knobs.
  EXPECT_THROW(mobile_session->restore(snap), snapshot_error);
  // Non-fresh: the cnn session already served traffic.
  EXPECT_THROW(cnn_session->restore(snap), std::logic_error);
}

// --- spill / warm-start through the service ---------------------------------

TEST_F(snapshot_fixture, restarted_service_serves_warm_bit_identical_reports) {
  snapshot_dir dir{"restart"};
  const mapping_request analytic = tiny_request(cnn.name);
  const mapping_request surrogate = tiny_request(cnn.name, /*use_surrogate=*/true);

  mapping_report cold_analytic, cold_surrogate;
  {
    mapping_service service{persistent_service(dir.path())};
    register_all(service);
    cold_analytic = service.map(analytic);
    cold_surrogate = service.map(surrogate);
    EXPECT_GT(cold_analytic.search_cache.misses, 0u);
    EXPECT_TRUE(cold_surrogate.trained_surrogate);
    EXPECT_EQ(service.spill_sessions(), 1u);
    EXPECT_EQ(service.sessions_spilled(), 1u);
    EXPECT_EQ(service.spill_failures(), 0u);
  }  // service destroyed: the "process restart"

  mapping_service revived{persistent_service(dir.path())};
  register_all(revived);
  const mapping_report warm_analytic = revived.map(analytic);
  EXPECT_EQ(revived.sessions_restored(), 1u);
  EXPECT_EQ(revived.restore_failures(), 0u);
  // Every candidate the warm search visits was evaluated before the
  // restart: zero evaluator runs, bit-identical report.
  EXPECT_EQ(warm_analytic.search_cache.misses, 0u);
  EXPECT_EQ(warm_analytic.validation_cache.misses, 0u);
  expect_identical_fronts(cold_analytic, warm_analytic);

  // The surrogate survived too: no retraining, same fidelity, warm cache.
  const mapping_report warm_surrogate = revived.map(surrogate);
  EXPECT_FALSE(warm_surrogate.trained_surrogate);
  EXPECT_EQ(warm_surrogate.search_cache.misses, 0u);
  ASSERT_TRUE(warm_surrogate.surrogate_fidelity.has_value());
  ASSERT_TRUE(cold_surrogate.surrogate_fidelity.has_value());
  EXPECT_EQ(warm_surrogate.surrogate_fidelity->latency_rmse,
            cold_surrogate.surrogate_fidelity->latency_rmse);
  EXPECT_EQ(warm_surrogate.surrogate_fidelity->energy_rmse,
            cold_surrogate.surrogate_fidelity->energy_rmse);
  expect_identical_fronts(cold_surrogate, warm_surrogate);
}

TEST_F(snapshot_fixture, lru_eviction_spills_and_a_later_request_warm_starts) {
  snapshot_dir dir{"evict"};
  service_options opt = persistent_service(dir.path());
  opt.max_sessions = 1;  // the second session evicts the first
  mapping_service service{opt};
  register_all(service);

  const mapping_request req = tiny_request(cnn.name);
  const mapping_report cold = service.map(req);
  (void)service.map(tiny_request(mobile.name));  // evicts + spills the cnn session
  EXPECT_EQ(service.sessions_evicted(), 1u);
  EXPECT_EQ(service.sessions_spilled(), 1u);

  const mapping_report warm = service.map(req);  // rebuilds from the spill
  EXPECT_EQ(service.sessions_restored(), 1u);
  EXPECT_EQ(warm.search_cache.misses, 0u);
  expect_identical_fronts(cold, warm);
}

TEST_F(snapshot_fixture, corrupt_spill_file_falls_back_to_a_cold_session) {
  snapshot_dir dir{"fallback"};
  const mapping_request req = tiny_request(cnn.name);
  {
    mapping_service service{persistent_service(dir.path())};
    register_all(service);
    (void)service.map(req);
    (void)service.spill_sessions();
  }
  // Vandalize the one snapshot file.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    std::ofstream out{entry.path()};
    out << "mapcq-snapshot-v1\ntruncated";
  }

  mapping_service revived{persistent_service(dir.path())};
  register_all(revived);
  const mapping_report cold = revived.map(req);  // restore fails, serves cold
  EXPECT_EQ(revived.sessions_restored(), 0u);
  EXPECT_EQ(revived.restore_failures(), 1u);
  EXPECT_GT(cold.search_cache.misses, 0u);  // really cold, not half-warm
}

// --- refresh interaction ----------------------------------------------------

TEST_F(snapshot_fixture, snapshot_captures_consistent_predictor_epoch_and_reservoir) {
  snapshot_dir dir{"refresh"};
  service_options opt = persistent_service(dir.path());
  opt.engine.threads = 1;
  opt.refresh.enabled = true;
  opt.refresh.synchronous = true;
  opt.refresh.min_new_samples = 1;
  opt.refresh.promotion_margin = 2.0;  // impossible: epoch stays 0
  mapping_service service{opt};
  register_all(service);

  mapping_request surrogate = tiny_request(cnn.name, /*use_surrogate=*/true);
  surrogate.bench.noise_stddev = 0.6;
  (void)service.map(surrogate);                                      // trains + arms pipeline
  const auto analytic = service.map(tiny_request(cnn.name, false, 2));  // feeds the log
  ASSERT_TRUE(analytic.refresh.has_value());
  EXPECT_GT(analytic.refresh->logged, 0u);

  const auto session = service.session_for(tiny_request(cnn.name));
  const session_snapshot snap = session->snapshot();
  ASSERT_TRUE(snap.surrogate.has_value());
  ASSERT_TRUE(snap.refresh.has_value());
  // No promotion happened, so the captured pair must be (epoch 0 model,
  // epoch 0 entries); the reservoir carries what the log observed.
  EXPECT_EQ(snap.surrogate->predictor_epoch, 0u);
  EXPECT_GT(snap.refresh->log_seen, 0u);
  EXPECT_EQ(snap.refresh->log_rows.size(), analytic.refresh->logged);
  EXPECT_FALSE(snap.refresh->base_train.size() == 0);

  // Round-trip the refresh state through text too.
  const session_snapshot reparsed = serving::snapshot_from_text(serving::to_text(snap));
  ASSERT_TRUE(reparsed.refresh.has_value());
  EXPECT_EQ(reparsed.refresh->log_seen, snap.refresh->log_seen);
  EXPECT_EQ(reparsed.refresh->log_rows.size(), snap.refresh->log_rows.size());

  // A restored session keeps refreshing: spill, revive, drive an attempt.
  (void)service.spill_sessions();
  mapping_service revived{opt};
  register_all(revived);
  const auto warm = revived.map(tiny_request(cnn.name, false, 3));
  EXPECT_EQ(revived.sessions_restored(), 1u);
  ASSERT_TRUE(warm.refresh.has_value());
  EXPECT_GE(warm.refresh->attempts, 1u);
}

}  // namespace
