// Property/fuzz layer for every line-oriented parser in the tree:
// mapcq-config-v1, mapcq-report-v1, mapcq-trace-v1, mapcq-eval-v1,
// mapcq-snapshot-v1, util::json, and the serving config on top of it.
//
// The property: feeding a parser any corruption of a valid document —
// random truncation, byte mutation, line reordering — must either succeed
// (some corruptions are still valid documents) or raise that parser's
// *documented* error type. Anything else escaping (a different exception, a
// crash, an ASan report) fails the suite. Mutations are deterministic
// (seeded util::rng), ≥ 1000 per format.

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/serialization.h"
#include "nn/models.h"
#include "serving/service_config.h"
#include "serving/session.h"
#include "serving/session_snapshot.h"
#include "soc/contention.h"
#include "soc/platform.h"
#include "soc/thermal.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace mapcq;

constexpr std::size_t kMutationsPerFormat = 1200;

// --- mutation operators -------------------------------------------------------

std::string truncate(const std::string& text, util::rng& gen) {
  if (text.empty()) return text;
  const auto cut = static_cast<std::size_t>(
      gen.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
  return text.substr(0, cut);
}

std::string mutate_bytes(const std::string& text, util::rng& gen) {
  if (text.empty()) return text;
  std::string out = text;
  const auto n = static_cast<std::size_t>(gen.uniform_int(1, 4));
  for (std::size_t i = 0; i < n; ++i) {
    const auto pos = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
    out[pos] = static_cast<char>(gen.uniform_int(0, 255));
  }
  return out;
}

std::string reorder_lines(const std::string& text, util::rng& gen) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  gen.shuffle(lines);
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// One parser under fuzz: a corpus of valid documents and a parse callback
/// that swallows exactly the documented error type(s) and lets everything
/// else escape to gtest/ASan.
struct fuzz_target {
  const char* name;
  std::vector<std::string> corpus;
  std::function<void(const std::string&)> parse;
};

void fuzz(const fuzz_target& target) {
  ASSERT_FALSE(target.corpus.empty()) << target.name;
  // Sanity: the unmutated corpus must parse (the "valid" in valid corpus).
  for (const std::string& doc : target.corpus)
    ASSERT_NO_THROW(target.parse(doc)) << target.name << ": corpus document does not parse";

  util::rng gen{0xF722D00DULL};
  std::size_t survived = 0;
  for (std::size_t i = 0; i < kMutationsPerFormat; ++i) {
    const std::string& doc = target.corpus[i % target.corpus.size()];
    std::string mutated;
    switch (gen.uniform_int(0, 2)) {
      case 0: mutated = truncate(doc, gen); break;
      case 1: mutated = mutate_bytes(doc, gen); break;
      default: mutated = reorder_lines(doc, gen); break;
    }
    SCOPED_TRACE(std::string(target.name) + " mutation #" + std::to_string(i));
    target.parse(mutated);  // throws anything non-typed -> test failure
    ++survived;
  }
  EXPECT_EQ(survived, kMutationsPerFormat);
}

// --- corpora ------------------------------------------------------------------

struct fuzz_fixture : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  core::search_space space{net, plat};
  core::evaluator eval{net, plat, {}};

  std::vector<core::configuration> sample_configs(std::size_t n) {
    util::rng gen{42};
    std::vector<core::configuration> configs;
    configs.push_back(space.decode(space.static_seed()));
    while (configs.size() < n) configs.push_back(space.decode(space.random(gen)));
    return configs;
  }
};

TEST_F(fuzz_fixture, configuration_text_never_fails_untyped) {
  fuzz_target target;
  target.name = "mapcq-config-v1";
  for (const auto& c : sample_configs(4)) target.corpus.push_back(core::to_text(c));
  target.parse = [](const std::string& text) {
    try {
      (void)core::configuration_from_text(text);
    } catch (const std::runtime_error&) {
      // documented typed failure
    }
  };
  fuzz(target);
}

TEST_F(fuzz_fixture, report_summary_text_never_fails_untyped) {
  core::report_summary summary;
  summary.network = net.name;
  summary.platform = plat.name;
  const std::vector<core::configuration> configs = sample_configs(3);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const core::evaluation e = eval.evaluate(configs[i]);
    core::summary_entry entry;
    entry.label = "front-" + std::to_string(i) + (i == 0 ? "+ours-L" : "");
    entry.config = e.config;
    entry.feasible = e.feasible;
    entry.objective = e.objective;
    entry.avg_latency_ms = e.avg_latency_ms;
    entry.avg_energy_mj = e.avg_energy_mj;
    entry.accuracy_pct = e.accuracy_pct;
    entry.fmap_reuse_pct = e.fmap_reuse_pct;
    summary.entries.push_back(std::move(entry));
  }
  // A second corpus document exercises the optional scheduler/refresh/
  // scenario lines, scheduler carrying the fused-dispatch counters (9-field
  // row) and scenario the co-location note.
  core::report_summary with_notes = summary;
  with_notes.scheduler = core::scheduler_note{9, 6, 2, 1, 0, 5, 1, 3, 2};
  with_notes.refresh = core::refresh_note{100, 80, 3, 1, 2, 1, 0.93, 0.88};
  with_notes.scenario = core::scenario_note{2, 1, 3, 4.5, 6.25, 1.5, 25.0, 85.0};

  // A third document carries the pre-fusion 7-field scheduler row (a legacy
  // artifact): rewrite the 9-field line back down to the old arity.
  std::string legacy = core::to_text(with_notes);
  const std::string row9 = "scheduler 9 6 2 1 0 5 1 3 2";
  const std::size_t at = legacy.find(row9);
  ASSERT_NE(at, std::string::npos);
  legacy.replace(at, row9.size(), "scheduler 9 6 2 1 0 5 1");

  fuzz_target target;
  target.name = "mapcq-report-v1";
  target.corpus = {core::to_text(summary), core::to_text(with_notes), legacy};
  target.parse = [](const std::string& text) {
    try {
      (void)core::report_summary_from_text(text);
    } catch (const std::runtime_error&) {
    }
  };
  fuzz(target);
}

TEST_F(fuzz_fixture, trace_text_never_fails_untyped) {
  std::vector<core::trace_record> trace;
  for (std::uint64_t i = 0; i < 6; ++i) {
    core::trace_record r;
    r.arrival_us = 1000 * i;
    r.priority = static_cast<int>(i % 3) - 1;
    r.deadline_ms = i % 2 ? 250 : 0;
    r.lane = "net=visformer|plat=xavier|lane-" + std::to_string(i % 2);
    r.fingerprint = "ga=4,12|seed=" + std::to_string(i);
    trace.push_back(std::move(r));
  }
  fuzz_target target;
  target.name = "mapcq-trace-v1";
  target.corpus = {core::to_text(trace)};
  target.parse = [](const std::string& text) {
    try {
      (void)core::trace_from_text(text);
    } catch (const std::runtime_error&) {
    }
  };
  fuzz(target);
}

TEST_F(fuzz_fixture, evaluation_block_never_fails_untyped) {
  fuzz_target target;
  target.name = "mapcq-eval-v1";
  for (const auto& c : sample_configs(3)) {
    std::ostringstream os;
    core::write_evaluation(os, eval.evaluate(c));
    target.corpus.push_back(os.str());
  }
  target.parse = [](const std::string& text) {
    std::istringstream is{text};
    try {
      (void)core::read_evaluation(is);
    } catch (const std::runtime_error&) {
    }
  };
  fuzz(target);
}

TEST_F(fuzz_fixture, session_snapshot_text_never_fails_untyped) {
  // A real warm session: analytic cache entries plus a (tiny) trained
  // surrogate, so the corpus covers every snapshot section.
  serving::mapping_session session{
      "fuzz-session", std::make_shared<const nn::network>(net),
      std::make_shared<const soc::platform>(plat), core::evaluator_options{}, 8, 0xC0FFEE,
      core::engine_options{}};
  (void)session.analytic_engine().evaluate_batch(sample_configs(5));
  surrogate::benchmark_options bench;
  bench.samples = 120;
  surrogate::gbt_params gbt;
  gbt.n_trees = 4;
  (void)session.surrogate_engine(bench, gbt);

  fuzz_target target;
  target.name = "mapcq-snapshot-v1";
  target.corpus = {serving::to_text(session.snapshot())};
  target.parse = [](const std::string& text) {
    try {
      (void)serving::snapshot_from_text(text);
    } catch (const serving::snapshot_error&) {
      // the one documented failure type — a bare runtime_error escapes
    }
  };
  fuzz(target);
}

TEST_F(fuzz_fixture, json_parse_never_fails_untyped) {
  fuzz_target target;
  target.name = "util-json";
  target.corpus = {
      serving::dump_config(serving::service_config{}),
      serving::dump_config(serving::service_config{}, 0),
      R"({"a":[1,2.5,-3e4,"séq",true,false,null],"b":{"nested":[[]]},"c":""})",
  };
  target.parse = [](const std::string& text) {
    try {
      (void)util::json::parse(text);
    } catch (const util::json::parse_error&) {
    }
  };
  fuzz(target);
}

TEST_F(fuzz_fixture, service_config_parse_never_fails_untyped) {
  serving::service_config tweaked;
  tweaked.ga.island.islands = 2;
  tweaked.ga.portfolio.islands = {
      core::island_assignment{core::island_algorithm::ga, core::island_orientation::balanced},
      core::island_assignment{core::island_algorithm::sa, core::island_orientation::latency}};
  tweaked.ga.portfolio.prefilter.enabled = true;
  // A config with a fully populated co-location scenario block (residents,
  // caps, thermal), so the scenario bindings sit under the same fuzz.
  serving::service_config colocated;
  soc::resident_load neighbor;
  neighbor.name = "neighbor-dnn";
  neighbor.interconnect_gbps = 2.5;
  neighbor.dram_gbps = 3.5;
  neighbor.power_w = 1.25;
  neighbor.shared_memory_bytes = 1 << 20;
  neighbor.reserved_units = {1};
  colocated.scenario.residents.push_back(neighbor);
  colocated.scenario.dvfs_cap = {3, 2, 3};
  colocated.scenario.thermal = soc::thermal_model{};
  fuzz_target target;
  target.name = "service-config";
  target.corpus = {serving::dump_config(serving::service_config{}), serving::dump_config(tweaked),
                   serving::dump_config(colocated)};
  target.parse = [](const std::string& text) {
    try {
      (void)serving::parse_config(text);
    } catch (const serving::config_error&) {
      // parse_config wraps util::json parse errors into config_error too
    }
  };
  fuzz(target);
}

}  // namespace
