// Features, dataset generation, regression trees, GBT ensemble and the
// deployed hardware predictor.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/models.h"
#include "perf/latency_model.h"
#include "soc/platform.h"
#include "surrogate/dataset.h"
#include "surrogate/decision_tree.h"
#include "surrogate/features.h"
#include "surrogate/gbt.h"
#include "surrogate/predictor.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace mapcq;
using namespace mapcq::surrogate;

TEST(features, layout_and_names) {
  EXPECT_EQ(feature_names().size(), feature_count);
  const auto plat = soc::agx_xavier();
  perf::sublayer_cost c;
  c.kind = nn::layer_kind::attention;
  c.flops = 1e6;
  c.width_frac = 0.5;
  const auto f = featurize(c, plat.unit(0), 0, 2);
  EXPECT_NEAR(f[0], std::log1p(1e6), 1e-12);
  EXPECT_DOUBLE_EQ(f[4], 0.5);
  EXPECT_DOUBLE_EQ(f[6], 1.0);  // matmul class
  EXPECT_DOUBLE_EQ(f[7], 1.0);  // gpu one-hot
  EXPECT_DOUBLE_EQ(f[8], 0.0);
  EXPECT_DOUBLE_EQ(f[15], 2.0);  // concurrency
}

TEST(dataset, generation_is_deterministic) {
  const auto vis = nn::build_visformer();
  const auto plat = soc::agx_xavier();
  benchmark_options opt;
  opt.samples = 200;
  const auto a = generate_benchmark({&vis}, plat, opt);
  const auto b = generate_benchmark({&vis}, plat, opt);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.latency_ms, b.latency_ms);
}

TEST(dataset, different_seed_differs) {
  const auto vis = nn::build_visformer();
  const auto plat = soc::agx_xavier();
  benchmark_options opt;
  opt.samples = 100;
  const auto a = generate_benchmark({&vis}, plat, opt);
  opt.seed = 999;
  const auto b = generate_benchmark({&vis}, plat, opt);
  EXPECT_NE(a.latency_ms, b.latency_ms);
}

TEST(dataset, labels_positive) {
  const auto vgg = nn::build_vgg19();
  const auto plat = soc::agx_xavier();
  benchmark_options opt;
  opt.samples = 500;
  const auto ds = generate_benchmark({&vgg}, plat, opt);
  for (const double v : ds.latency_ms) EXPECT_GT(v, 0.0);
  for (const double v : ds.energy_mj) EXPECT_GT(v, 0.0);
}

TEST(dataset, split_is_disjoint_and_proportional) {
  const auto vis = nn::build_visformer();
  const auto plat = soc::agx_xavier();
  benchmark_options opt;
  opt.samples = 1000;
  const auto ds = generate_benchmark({&vis}, plat, opt);
  const auto parts = split(ds, 0.8, 1);
  EXPECT_EQ(parts.train.size() + parts.test.size(), 1000u);
  EXPECT_NEAR(static_cast<double>(parts.train.size()), 800.0, 1.0);
  EXPECT_THROW((void)split(ds, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)split(ds, 1.0, 1), std::invalid_argument);
}

TEST(dataset, rejects_empty_networks) {
  const auto plat = soc::agx_xavier();
  EXPECT_THROW((void)generate_benchmark({}, plat), std::invalid_argument);
  EXPECT_THROW((void)generate_benchmark({nullptr}, plat), std::invalid_argument);
}

std::vector<std::vector<double>> grid_rows(std::size_t n, util::rng& gen) {
  std::vector<std::vector<double>> x(n);
  for (auto& r : x) r = {gen.uniform(0, 10), gen.uniform(0, 10)};
  return x;
}

TEST(decision_tree, fits_a_step_function) {
  util::rng gen{5};
  const auto x = grid_rows(500, gen);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) y[i] = x[i][0] > 5.0 ? 10.0 : -10.0;
  std::vector<std::size_t> rows(500);
  for (std::size_t i = 0; i < 500; ++i) rows[i] = i;
  const regression_tree t{x, y, rows, tree_params{}};
  EXPECT_NEAR(t.predict(std::vector<double>{7.0, 3.0}), 10.0, 0.5);
  EXPECT_NEAR(t.predict(std::vector<double>{2.0, 3.0}), -10.0, 0.5);
}

TEST(decision_tree, respects_depth_limit) {
  util::rng gen{6};
  const auto x = grid_rows(400, gen);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) y[i] = x[i][0] * x[i][1];
  std::vector<std::size_t> rows(400);
  for (std::size_t i = 0; i < 400; ++i) rows[i] = i;
  tree_params p;
  p.max_depth = 2;
  const regression_tree t{x, y, rows, p};
  EXPECT_LE(t.depth(), 2);
  EXPECT_LE(t.node_count(), 7u);
}

TEST(decision_tree, constant_target_single_leaf) {
  util::rng gen{7};
  const auto x = grid_rows(100, gen);
  const std::vector<double> y(100, 3.0);
  std::vector<std::size_t> rows(100);
  for (std::size_t i = 0; i < 100; ++i) rows[i] = i;
  const regression_tree t{x, y, rows, tree_params{}};
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(decision_tree, feature_gain_identifies_informative_feature) {
  util::rng gen{8};
  const auto x = grid_rows(600, gen);
  std::vector<double> y(600);
  for (std::size_t i = 0; i < 600; ++i) y[i] = 5.0 * x[i][1];  // only feature 1 matters
  std::vector<std::size_t> rows(600);
  for (std::size_t i = 0; i < 600; ++i) rows[i] = i;
  const regression_tree t{x, y, rows, tree_params{}};
  std::vector<double> gain(2, 0.0);
  t.add_feature_gain(gain);
  EXPECT_GT(gain[1], 10.0 * gain[0]);
}

TEST(decision_tree, rejects_bad_input) {
  const std::vector<std::vector<double>> x = {{1.0}};
  const std::vector<double> y = {1.0, 2.0};
  const std::vector<std::size_t> rows = {0};
  EXPECT_THROW((regression_tree{x, y, rows, tree_params{}}), std::invalid_argument);
}

TEST(gbt, fits_smooth_function_well) {
  util::rng gen{9};
  const auto x = grid_rows(1500, gen);
  std::vector<double> y(1500);
  for (std::size_t i = 0; i < 1500; ++i)
    y[i] = 2.0 + x[i][0] * 1.5 + std::sin(x[i][1]) * 3.0 + 20.0;
  gbt_params p;
  p.log_target = false;
  const gbt_regressor model{x, y, p};
  std::vector<double> pred(1500);
  for (std::size_t i = 0; i < 1500; ++i) pred[i] = model.predict(x[i]);
  EXPECT_GT(util::r_squared(pred, y), 0.97);
}

TEST(gbt, log_target_keeps_predictions_positive) {
  util::rng gen{10};
  const auto x = grid_rows(500, gen);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) y[i] = 1e-3 + x[i][0] * x[i][0];
  const gbt_regressor model{x, y, gbt_params{}};
  for (int i = 0; i < 50; ++i) {
    const double v = model.predict(std::vector<double>{gen.uniform(0, 10), gen.uniform(0, 10)});
    EXPECT_GT(v, 0.0);
  }
}

TEST(gbt, deterministic) {
  util::rng gen{11};
  const auto x = grid_rows(300, gen);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) y[i] = x[i][0] + 1.0;
  gbt_params p;
  p.log_target = false;
  const gbt_regressor a{x, y, p};
  const gbt_regressor b{x, y, p};
  const std::vector<double> probe = {3.3, 4.4};
  EXPECT_DOUBLE_EQ(a.predict(probe), b.predict(probe));
}

TEST(gbt, feature_importance_normalized) {
  util::rng gen{12};
  const auto x = grid_rows(400, gen);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) y[i] = x[i][0] * 2.0 + 1.0;
  gbt_params p;
  p.log_target = false;
  const gbt_regressor model{x, y, p};
  const auto imp = model.feature_importance(2);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
  EXPECT_GT(imp[0], imp[1]);
}

TEST(gbt, rejects_bad_input) {
  const std::vector<std::vector<double>> x = {{1.0}, {2.0}};
  EXPECT_THROW((gbt_regressor{x, std::vector<double>{1.0}, gbt_params{}}),
               std::invalid_argument);
  EXPECT_THROW((gbt_regressor{x, std::vector<double>{1.0, -1.0}, gbt_params{}}),
               std::invalid_argument);  // log target needs positive y
  gbt_params p;
  p.n_trees = 0;
  EXPECT_THROW((gbt_regressor{x, std::vector<double>{1.0, 2.0}, p}), std::invalid_argument);
}

TEST(predictor, fidelity_on_heldout_is_good) {
  const auto vis = nn::build_visformer();
  const auto vgg = nn::build_vgg19();
  const auto plat = soc::agx_xavier();
  benchmark_options opt;
  opt.samples = 3000;
  const auto ds = generate_benchmark({&vis, &vgg}, plat, opt);
  const auto parts = split(ds, 0.8, 3);
  const hw_predictor pred{parts.train};
  const auto fid = pred.evaluate(parts.test);
  EXPECT_LT(fid.latency_mape, 15.0);
  EXPECT_LT(fid.energy_mape, 15.0);
  EXPECT_GT(fid.latency_r2, 0.9);
  EXPECT_GT(fid.energy_r2, 0.9);
}

TEST(predictor, empty_cost_predicts_zero) {
  const auto vis = nn::build_visformer();
  const auto plat = soc::agx_xavier();
  benchmark_options opt;
  opt.samples = 200;
  const auto ds = generate_benchmark({&vis}, plat, opt);
  const hw_predictor pred{ds};
  EXPECT_DOUBLE_EQ(pred.latency_ms({}, plat.unit(0), 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(pred.energy_mj({}, plat.unit(0), 0, 1), 0.0);
}

TEST(predictor, rejects_empty_training) {
  EXPECT_THROW((hw_predictor{dataset{}}), std::invalid_argument);
}

}  // namespace
