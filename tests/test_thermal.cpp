#include "soc/thermal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace {

using mapcq::soc::thermal_model;

TEST(thermal, steady_state_linear_in_power) {
  const thermal_model t;
  EXPECT_DOUBLE_EQ(t.steady_state_c(0.0), t.ambient_c);
  EXPECT_DOUBLE_EQ(t.steady_state_c(10.0), t.ambient_c + 10.0 * t.r_thermal_c_per_w);
}

TEST(thermal, max_sustained_power_consistent) {
  const thermal_model t;
  const double p_max = t.max_sustained_power_w();
  EXPECT_NEAR(t.steady_state_c(p_max), t.throttle_c, 1e-9);
  EXPECT_FALSE(t.throttles(p_max - 0.01));
  EXPECT_TRUE(t.throttles(p_max + 0.01));
}

TEST(thermal, transient_approaches_steady_state) {
  const thermal_model t;
  const double p = 15.0;
  const double target = t.steady_state_c(p);
  double temp = t.ambient_c;
  double prev = temp;
  for (int i = 0; i < 10; ++i) {
    temp = t.temperature_after(temp, p, 5.0);
    EXPECT_GE(temp, prev - 1e-12);  // monotone rise toward target
    EXPECT_LE(temp, target + 1e-9);
    prev = temp;
  }
  EXPECT_NEAR(t.temperature_after(t.ambient_c, p, 1000.0), target, 1e-6);
}

TEST(thermal, zero_dt_keeps_temperature) {
  const thermal_model t;
  EXPECT_DOUBLE_EQ(t.temperature_after(55.0, 10.0, 0.0), 55.0);
}

TEST(thermal, cooling_when_power_drops) {
  const thermal_model t;
  const double cooled = t.temperature_after(80.0, 0.0, 30.0);
  EXPECT_LT(cooled, 80.0);
  EXPECT_GT(cooled, t.ambient_c);
}

TEST(thermal, seconds_to_throttle) {
  const thermal_model t;
  EXPECT_TRUE(std::isinf(t.seconds_to_throttle(1.0)));
  const double p_hot = t.max_sustained_power_w() * 2.0;
  const double secs = t.seconds_to_throttle(p_hot);
  EXPECT_GT(secs, 0.0);
  EXPECT_FALSE(std::isinf(secs));
  // Verify by stepping: temperature at that time equals the trip point.
  EXPECT_NEAR(t.temperature_after(t.ambient_c, p_hot, secs), t.throttle_c, 1e-6);
}

TEST(thermal, hotter_power_throttles_sooner) {
  const thermal_model t;
  const double base = t.max_sustained_power_w();
  EXPECT_GT(t.seconds_to_throttle(base * 1.5), t.seconds_to_throttle(base * 3.0));
}

TEST(thermal, rejects_bad_inputs) {
  const thermal_model t;
  EXPECT_THROW((void)t.steady_state_c(-1.0), std::invalid_argument);
  EXPECT_THROW((void)t.temperature_after(40.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)t.temperature_after(40.0, 1.0, -1.0), std::invalid_argument);
  thermal_model bad;
  bad.throttle_c = bad.ambient_c - 1.0;
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = thermal_model{};
  bad.tau_s = 0.0;
  EXPECT_THROW(bad.validate(), std::logic_error);
}

TEST(thermal, validation_is_unified_across_entry_points) {
  // steady_state_c and temperature_after share one power check: the same
  // inputs must throw (or not) through either entry point.
  const thermal_model t;
  const double bad_powers[] = {-0.5, std::nan(""), std::numeric_limits<double>::infinity()};
  for (const double p : bad_powers) {
    EXPECT_THROW((void)t.steady_state_c(p), std::invalid_argument);
    EXPECT_THROW((void)t.temperature_after(40.0, p, 1.0), std::invalid_argument);
  }
  EXPECT_THROW((void)t.temperature_after(40.0, 1.0, std::nan("")), std::invalid_argument);
  EXPECT_THROW((void)t.temperature_after(std::nan(""), 1.0, 1.0), std::invalid_argument);
  // Zero power is a valid boundary everywhere, not an error.
  EXPECT_NO_THROW((void)t.steady_state_c(0.0));
  EXPECT_NO_THROW((void)t.temperature_after(40.0, 0.0, 0.0));
}

TEST(thermal, throttle_boundary_from_both_sides) {
  const thermal_model t;
  const double p_max = t.max_sustained_power_w();
  // Exactly at the trip point steady state *equals* the throttle
  // temperature, which does not throttle (strict comparison); the FP
  // round-trip is not exact, so probe from both sides with a margin.
  EXPECT_FALSE(t.throttles(p_max * (1.0 - 1e-9)));
  EXPECT_TRUE(t.throttles(p_max * (1.0 + 1e-9)));
  EXPECT_TRUE(std::isinf(t.seconds_to_throttle(p_max * (1.0 - 1e-9))));
  EXPECT_FALSE(std::isinf(t.seconds_to_throttle(p_max * (1.0 + 1e-6))));
}

}  // namespace
