// Tests for the extension modules: depthwise conv / extra architectures,
// the depth-pipeline baseline, configuration serialization and the thermal
// constraint in the evaluator.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/baselines.h"
#include "core/evaluator.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "nn/partition_groups.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;

TEST(depthwise, geometry_and_cost) {
  const nn::layer l = nn::make_depthwise_conv2d("dw", {64, 16, 16}, 3, 1, 1);
  EXPECT_EQ(l.output(), (nn::tensor_shape{64, 16, 16}));
  EXPECT_EQ(l.width(), 64);
  // 2 * K^2 * C * H * W -- no cross-channel term.
  EXPECT_DOUBLE_EQ(l.flops(), 2.0 * 9 * 64 * 16 * 16);
  // Much cheaper than a dense conv of the same shape.
  const nn::layer dense = nn::make_conv2d("c", {64, 16, 16}, 64, 3, 1, 1);
  EXPECT_LT(l.flops() * 32, dense.flops());
}

TEST(depthwise, slice_cost_follows_min_fraction) {
  const nn::layer l = nn::make_depthwise_conv2d("dw", {64, 16, 16}, 3, 1, 1);
  EXPECT_DOUBLE_EQ(l.flops(1.0, 0.5), 0.5 * l.flops());
  // Channel i needs channel i: missing input channels cap the work.
  EXPECT_DOUBLE_EQ(l.flops(0.25, 0.5), 0.25 * l.flops());
}

TEST(depthwise, stride_downsamples) {
  const nn::layer l = nn::make_depthwise_conv2d("dw", {32, 16, 16}, 3, 2, 1);
  EXPECT_EQ(l.output(), (nn::tensor_shape{32, 8, 8}));
}

TEST(mobilenet, builds_and_groups) {
  const nn::network net = nn::build_mobilenet_cifar();
  EXPECT_EQ(net.classes, 100);
  int dw = 0;
  for (const auto& l : net.layers)
    if (l.kind == nn::layer_kind::depthwise_conv2d) ++dw;
  EXPECT_EQ(dw, 7);
  // Depthwise layers lead their own partition groups.
  const auto groups = nn::make_partition_groups(net);
  EXPECT_EQ(groups.size(), 15u);  // stem + 7x(dw + pw)
}

TEST(plain20, builds_with_twenty_weight_layers) {
  const nn::network net = nn::build_plain20();
  int convs = 0;
  for (const auto& l : net.layers)
    if (l.kind == nn::layer_kind::conv2d) ++convs;
  EXPECT_EQ(convs, 19);  // + classifier = 20 weight layers
}

TEST(extra_models, evaluate_end_to_end) {
  const auto plat = soc::agx_xavier();
  for (const auto& net : {nn::build_mobilenet_cifar(), nn::build_plain20()}) {
    const core::evaluator ev{net, plat, {}};
    const auto e = ev.evaluate(core::make_static_configuration(net, plat));
    EXPECT_TRUE(e.feasible) << net.name << ": " << e.reject_reason;
    EXPECT_GT(e.accuracy_pct, net.base_accuracy - 1.0) << net.name;
  }
}

TEST(pipeline_baseline, segments_cover_network) {
  const auto net = nn::build_vgg19();
  const auto plat = soc::agx_xavier();
  const auto res = core::pipeline_baseline(net, plat);
  EXPECT_EQ(res.cut_points.size(), plat.size());
  EXPECT_EQ(res.cut_points.front(), 0u);
  for (std::size_t i = 1; i < res.cut_points.size(); ++i)
    EXPECT_GT(res.cut_points[i], res.cut_points[i - 1]);
  EXPECT_LT(res.cut_points.back(), net.depth());
}

TEST(pipeline_baseline, latency_energy_positive_and_accuracy_unchanged) {
  const auto net = nn::build_vgg19();
  const auto plat = soc::agx_xavier();
  const auto res = core::pipeline_baseline(net, plat);
  EXPECT_GT(res.latency_ms, 0.0);
  EXPECT_GT(res.energy_mj, 0.0);
  EXPECT_DOUBLE_EQ(res.accuracy_pct, net.base_accuracy);
}

TEST(pipeline_baseline, throughput_beats_single_input_rate) {
  const auto net = nn::build_vgg19();
  const auto plat = soc::agx_xavier();
  const auto res = core::pipeline_baseline(net, plat);
  // Pipelining overlaps segments: steady-state rate >= 1/latency.
  EXPECT_GE(res.throughput_ips, 1000.0 / res.latency_ms - 1e-9);
}

TEST(serialization, roundtrip_preserves_configuration) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  core::configuration c = core::make_static_configuration(net, plat);
  c.partition[2] = {0.5, 0.25, 0.25};
  c.forward[1] = {true, false, false};
  c.mapping = {2, 0, 1};
  c.dvfs = {3, 1, 4};

  const auto back = core::configuration_from_text(core::to_text(c));
  EXPECT_EQ(back.partition, c.partition);
  EXPECT_EQ(back.forward, c.forward);
  EXPECT_EQ(back.mapping, c.mapping);
  EXPECT_EQ(back.dvfs, c.dvfs);
}

TEST(serialization, file_roundtrip) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  const auto c = core::make_static_configuration(net, plat);
  const std::string path = "/tmp/mapcq_cfg_test.txt";
  core::save_configuration(path, c);
  const auto back = core::load_configuration(path);
  EXPECT_EQ(back.partition, c.partition);
  std::remove(path.c_str());
}

TEST(serialization, rejects_malformed_input) {
  EXPECT_THROW((void)core::configuration_from_text(""), std::runtime_error);
  EXPECT_THROW((void)core::configuration_from_text("wrong-header\n"), std::runtime_error);
  EXPECT_THROW((void)core::configuration_from_text("mapcq-config-v1\ngroups 1\n"),
               std::runtime_error);
  EXPECT_THROW((void)core::load_configuration("/nonexistent/path.txt"), std::runtime_error);
  // Bad forward bit.
  const std::string bad =
      "mapcq-config-v1\ngroups 1\nstages 2\npartition\n0.5 0.5\nforward\n2 0\nmapping 0 1\ndvfs 0 "
      "0 0\n";
  EXPECT_THROW((void)core::configuration_from_text(bad), std::runtime_error);
}

TEST(thermal_constraint, rejects_hot_mappings) {
  const auto net = nn::build_vgg19();
  const auto plat = soc::agx_xavier();
  core::evaluator_options opt;
  soc::thermal_model tight;
  tight.r_thermal_c_per_w = 50.0;  // terrible heatsink: almost nothing sustains
  opt.thermal = tight;
  const core::evaluator hot{net, plat, opt};
  const auto e = hot.evaluate(core::make_static_configuration(net, plat));
  EXPECT_FALSE(e.feasible);
  EXPECT_NE(e.reject_reason.find("throttle"), std::string::npos);

  core::evaluator_options ok_opt;
  ok_opt.thermal = soc::thermal_model{};  // realistic Xavier heatsink
  const core::evaluator ok{net, plat, ok_opt};
  EXPECT_TRUE(ok.evaluate(core::make_static_configuration(net, plat)).feasible);
}

}  // namespace
