// Trace capture/replay tests: mapcq-trace-v1 serialization round-trips,
// the mapping_service trace tap records offered load (duplicates and all),
// scheduler pause/resume semantics, and the replay guarantee — a captured
// trace replayed synchronously yields coalescing/counter totals that are a
// pure function of the trace, bit-identical run over run.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/serialization.h"
#include "nn/models.h"
#include "serving/mapping_service.h"
#include "serving/request_trace.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using serving::mapping_request;
using serving::mapping_service;
using serving::scheduler_stats;

mapping_request tiny_request(const std::string& network, std::uint64_t ga_seed) {
  mapping_request req;
  req.network = network;
  req.use_surrogate = false;
  req.ga.generations = 2;
  req.ga.population = 8;
  req.ga.seed = ga_seed;
  return req;
}

// --- mapcq-trace-v1 serialization -------------------------------------------

TEST(trace_serialization, text_round_trip_preserves_every_field) {
  std::vector<core::trace_record> trace(3);
  trace[0] = {0, 2, 150, "lane with spaces", "fp|with=punct,and spaces"};
  trace[1] = {1234, 0, 0, "a", "b"};
  trace[2] = {999'999'999, -1, 7, "z", "same fp twice"};

  const std::string text = core::to_text(trace);
  const std::vector<core::trace_record> back = core::trace_from_text(text);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].arrival_us, trace[i].arrival_us);
    EXPECT_EQ(back[i].priority, trace[i].priority);
    EXPECT_EQ(back[i].deadline_ms, trace[i].deadline_ms);
    EXPECT_EQ(back[i].lane, trace[i].lane);
    EXPECT_EQ(back[i].fingerprint, trace[i].fingerprint);
  }
  // Fixed point: serialize -> parse -> serialize is byte-identical.
  EXPECT_EQ(core::to_text(back), text);
}

TEST(trace_serialization, rejects_foreign_and_truncated_input) {
  EXPECT_THROW((void)core::trace_from_text("not-a-trace\n"), std::runtime_error);
  const std::string text =
      core::to_text(std::vector<core::trace_record>{{0, 0, 0, "lane", "fp"}});
  EXPECT_THROW((void)core::trace_from_text(text.substr(0, text.size() / 2)),
               std::runtime_error);
  EXPECT_NO_THROW(
      (void)core::trace_from_text(core::to_text(std::vector<core::trace_record>{})));
}

TEST(trace_serialization, file_round_trip) {
  const std::vector<core::trace_record> trace{{5, 1, 0, "lane-0", "fp-0"},
                                              {10, 0, 30, "lane-1", "fp-1"}};
  const std::string path = "/tmp/mapcq_test_trace.trace";
  core::save_trace(path, trace);
  const std::vector<core::trace_record> back = core::load_trace(path);
  EXPECT_EQ(core::to_text(back), core::to_text(trace));
  std::remove(path.c_str());
}

// --- capture ----------------------------------------------------------------

struct capture_fixture : ::testing::Test {
  nn::network cnn = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  serving::service_options opt;
  capture_fixture() { opt.engine.threads = 2; }

  /// Runs duplicate-heavy traffic (3 distinct seeds, 3 submits each)
  /// through a tapped service and returns (trace, drained stats).
  std::pair<std::vector<core::trace_record>, scheduler_stats> capture() {
    mapping_service service{opt};
    service.register_network(cnn);
    service.register_platform(plat);
    auto log = std::make_shared<serving::trace_log>();
    service.capture_trace(log);

    std::vector<std::shared_future<serving::mapping_report>> futures;
    for (int round = 0; round < 3; ++round)
      for (std::uint64_t seed = 1; seed <= 3; ++seed)
        futures.push_back(service.submit(tiny_request(cnn.name, seed)));
    for (auto& f : futures) (void)f.get();
    return {log->snapshot(), service.scheduler()};
  }
};

TEST_F(capture_fixture, tap_records_offered_load_before_admission) {
  const auto [trace, stats] = capture();
  ASSERT_EQ(trace.size(), 9u);  // every submit, coalesced duplicates included
  EXPECT_EQ(stats.submitted, 9u);
  EXPECT_EQ(trace[0].arrival_us, 0u);  // first record anchors t = 0
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].arrival_us, trace[i - 1].arrival_us);
  for (const core::trace_record& r : trace) {
    EXPECT_FALSE(r.lane.empty());
    EXPECT_FALSE(r.fingerprint.empty());
  }
  // 3 distinct seeds -> 3 distinct fingerprints, one shared lane.
  std::vector<std::string> fps;
  for (const core::trace_record& r : trace) {
    EXPECT_EQ(r.lane, trace[0].lane);
    if (std::find(fps.begin(), fps.end(), r.fingerprint) == fps.end())
      fps.push_back(r.fingerprint);
  }
  EXPECT_EQ(fps.size(), 3u);
}

// --- pause / resume ---------------------------------------------------------

TEST_F(capture_fixture, paused_scheduler_admits_and_coalesces_but_never_dispatches) {
  mapping_service service{opt};
  service.register_network(cnn);
  service.register_platform(plat);
  service.pause_scheduler();

  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (int dup = 0; dup < 3; ++dup)
    futures.push_back(service.submit(tiny_request(cnn.name, 42)));
  // Admission and coalescing proceed while paused; execution does not.
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  scheduler_stats st = service.scheduler();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.admitted, 1u);
  EXPECT_EQ(st.coalesced, 2u);
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(futures[0].wait_for(std::chrono::seconds{0}), std::future_status::timeout);

  service.resume_scheduler();
  for (auto& f : futures) (void)f.get();
  st = service.scheduler();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.coalesced, 2u);
}

// --- replay -----------------------------------------------------------------

TEST_F(capture_fixture, synchronous_replay_reproduces_captured_totals_bit_identically) {
  const auto [trace, captured] = capture();

  // Replay on a *fresh* service, as a candidate build would.
  mapping_service replayed{opt};
  replayed.register_network(cnn);
  replayed.register_platform(plat);
  serving::replay_options ropt;
  ropt.synchronous = true;
  const serving::replay_result r =
      serving::replay_trace(replayed, trace, tiny_request(cnn.name, 7), {cnn.name}, ropt);

  // Totals are a pure function of the trace...
  EXPECT_EQ(r.requests, trace.size());
  EXPECT_EQ(r.distinct, 3u);
  EXPECT_EQ(r.stats.submitted, r.requests);
  EXPECT_EQ(r.stats.admitted, r.distinct);
  EXPECT_EQ(r.stats.coalesced, r.requests - r.distinct);
  EXPECT_EQ(r.stats.completed, r.distinct);
  EXPECT_EQ(r.stats.failed + r.stats.expired, 0u);
  // ...and match what the capture run itself coalesced.
  EXPECT_EQ(r.stats.submitted, captured.submitted);
  EXPECT_EQ(r.stats.admitted + r.stats.coalesced, captured.admitted + captured.coalesced);
  EXPECT_GE(r.p99_ms, r.p50_ms);
  EXPECT_GE(r.max_ms, r.p99_ms);
  EXPECT_GT(r.wall_ms, 0.0);

  // Bit-identical run over run: a second synchronous replay of the same
  // trace produces exactly the same counter delta.
  mapping_service again{opt};
  again.register_network(cnn);
  again.register_platform(plat);
  const serving::replay_result r2 =
      serving::replay_trace(again, trace, tiny_request(cnn.name, 7), {cnn.name}, ropt);
  EXPECT_EQ(r2.stats.submitted, r.stats.submitted);
  EXPECT_EQ(r2.stats.admitted, r.stats.admitted);
  EXPECT_EQ(r2.stats.coalesced, r.stats.coalesced);
  EXPECT_EQ(r2.stats.completed, r.stats.completed);
}

TEST_F(capture_fixture, replay_survives_serialization_and_caps_requests) {
  auto [trace, stats] = capture();
  (void)stats;
  // Through the text format, as the bench driver consumes it.
  trace = core::trace_from_text(core::to_text(trace));

  mapping_service service{opt};
  service.register_network(cnn);
  service.register_platform(plat);
  serving::replay_options ropt;
  ropt.synchronous = true;
  ropt.max_requests = 4;  // first round (3 distinct) + one duplicate
  const serving::replay_result r =
      serving::replay_trace(service, trace, tiny_request(cnn.name, 7), {cnn.name}, ropt);
  EXPECT_EQ(r.requests, 4u);
  EXPECT_EQ(r.distinct, 3u);
  EXPECT_EQ(r.stats.coalesced, 1u);
}

TEST_F(capture_fixture, multi_lane_traces_round_robin_over_networks) {
  nn::network mobile = nn::build_mobilenet_cifar();
  mapping_service service{opt};
  service.register_network(cnn);
  service.register_network(mobile);
  service.register_platform(plat);

  // Two captured lanes, two distinct fingerprints each.
  std::vector<core::trace_record> trace;
  for (std::uint64_t i = 0; i < 4; ++i)
    trace.push_back({i * 100, 0, 0, i % 2 ? "lane-b" : "lane-a", "fp-" + std::to_string(i)});

  serving::replay_options ropt;
  ropt.synchronous = true;
  const serving::replay_result r = serving::replay_trace(
      service, trace, tiny_request(cnn.name, 7), {cnn.name, mobile.name}, ropt);
  EXPECT_EQ(r.distinct, 4u);
  EXPECT_EQ(r.stats.completed, 4u);
  // Both networks actually served traffic: two sessions exist.
  EXPECT_EQ(service.session_count(), 2u);
}

TEST_F(capture_fixture, replay_rejects_degenerate_input) {
  mapping_service service{opt};
  service.register_network(cnn);
  service.register_platform(plat);
  const std::vector<core::trace_record> empty;
  const std::vector<core::trace_record> one{{0, 0, 0, "l", "f"}};
  EXPECT_THROW((void)serving::replay_trace(service, empty, tiny_request(cnn.name, 1), {cnn.name}),
               std::invalid_argument);
  EXPECT_THROW((void)serving::replay_trace(service, one, tiny_request(cnn.name, 1), {}),
               std::invalid_argument);
}

}  // namespace
