// Online surrogate-refresh tests: Kendall-tau machinery, reservoir
// training-log determinism, the promotion gate (rejected on worse held-out
// fidelity), epoch-tagged engine caches (no stale predictions, in-flight
// batches finish on the old model), and the serving integration
// (refresh_stats in reports, default-off back-compat, end-to-end
// promotion, refresh-note round-trip).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "serving/mapping_service.h"
#include "soc/platform.h"
#include "surrogate/dataset.h"
#include "surrogate/refresh.h"
#include "surrogate/trainer.h"
#include "util/stats.h"

namespace {

using namespace mapcq;

// ---- rank-fidelity machinery ----------------------------------------------

TEST(kendall_tau, perfect_reversed_and_uncorrelated) {
  const std::vector<double> truth = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> same = {10.0, 20.0, 30.0, 40.0, 50.0};
  const std::vector<double> reversed = {5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(util::kendall_tau(same, truth), 1.0);
  EXPECT_DOUBLE_EQ(util::kendall_tau(reversed, truth), -1.0);
  const std::vector<double> flat = {7.0, 7.0, 7.0, 7.0, 7.0};
  EXPECT_DOUBLE_EQ(util::kendall_tau(flat, truth), 0.0);  // all ties on one side
}

TEST(kendall_tau, ties_shrink_the_normalizer) {
  // One tied pair in pred: 9 of 10 pairs decided, all concordant.
  const std::vector<double> truth = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> pred = {1.0, 2.0, 2.0, 4.0, 5.0};
  const double tau = util::kendall_tau(pred, truth);
  EXPECT_GT(tau, 0.9);
  EXPECT_LT(tau, 1.0);
}

TEST(promotion_gate, rejects_worse_equal_and_margin_misses) {
  surrogate::rank_fidelity incumbent;
  incumbent.latency_tau = 0.8;
  incumbent.energy_tau = 0.8;
  surrogate::rank_fidelity worse = incumbent;
  worse.latency_tau = 0.5;
  EXPECT_FALSE(surrogate::should_promote(worse, incumbent, 0.0));
  EXPECT_FALSE(surrogate::should_promote(incumbent, incumbent, 0.0));  // equal: strict
  surrogate::rank_fidelity better = incumbent;
  better.latency_tau = 0.9;
  EXPECT_TRUE(surrogate::should_promote(better, incumbent, 0.0));
  EXPECT_FALSE(surrogate::should_promote(better, incumbent, 0.1));  // margin not met
}

// ---- training log ----------------------------------------------------------

surrogate::dataset sequential_rows(std::size_t n, double offset = 0.0) {
  surrogate::dataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = offset + static_cast<double>(i);
    ds.add_row({v, 2.0 * v}, 1.0 + v, 2.0 + v);
  }
  return ds;
}

TEST(training_log, fills_to_capacity_in_order) {
  surrogate::training_log log{8, 42};
  const auto rows = sequential_rows(5);
  for (std::size_t i = 0; i < rows.size(); ++i)
    log.add(rows.x[i], rows.latency_ms[i], rows.energy_mj[i]);
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.seen(), 5u);
  EXPECT_EQ(log.discarded(), 0u);
  EXPECT_EQ(log.rows().x, rows.x);
  EXPECT_EQ(log.rows().latency_ms, rows.latency_ms);
}

TEST(training_log, reservoir_is_bounded_and_deterministic_under_a_fixed_seed) {
  const std::size_t capacity = 16;
  const auto rows = sequential_rows(10 * capacity);
  surrogate::training_log a{capacity, 7};
  surrogate::training_log b{capacity, 7};
  surrogate::training_log c{capacity, 8};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    a.add(rows.x[i], rows.latency_ms[i], rows.energy_mj[i]);
    b.add(rows.x[i], rows.latency_ms[i], rows.energy_mj[i]);
    c.add(rows.x[i], rows.latency_ms[i], rows.energy_mj[i]);
  }
  EXPECT_EQ(a.size(), capacity);
  EXPECT_EQ(a.seen(), rows.size());
  EXPECT_EQ(a.discarded(), rows.size() - capacity);
  // Same (seed, arrival order) => identical retained sample.
  EXPECT_EQ(a.rows().x, b.rows().x);
  EXPECT_EQ(a.rows().latency_ms, b.rows().latency_ms);
  EXPECT_EQ(a.rows().energy_mj, b.rows().energy_mj);
  // A different seed retains a different sample (10x oversubscribed, so a
  // collision across all 16 slots is astronomically unlikely).
  EXPECT_NE(a.rows().x, c.rows().x);
  // The reservoir still holds a mix including late rows.
  double max_seen = 0.0;
  for (const auto& x : a.rows().x) max_seen = std::max(max_seen, x[0]);
  EXPECT_GT(max_seen, static_cast<double>(capacity));
}

// ---- refresh pipeline ------------------------------------------------------

struct pipeline_fixture : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();

  surrogate::gbt_params small_gbt() const {
    surrogate::gbt_params p;
    p.n_trees = 24;
    return p;
  }

  surrogate::dataset benchmark(std::size_t samples, double noise, std::uint64_t seed) const {
    surrogate::benchmark_options opt;
    opt.samples = samples;
    opt.noise_stddev = noise;
    opt.seed = seed;
    return surrogate::generate_benchmark({&net}, plat, opt);
  }
};

TEST_F(pipeline_fixture, no_improvement_candidate_is_rejected_and_incumbent_survives) {
  // Incumbent trained on plenty of clean data; the log only replays more of
  // the same distribution, so with a steep margin the candidate must lose.
  const auto base = benchmark(600, 0.02, 11);
  auto incumbent = std::make_shared<const surrogate::hw_predictor>(base, small_gbt());

  std::atomic<int> promoted{0};
  surrogate::refresh_options opt;
  opt.enabled = true;
  opt.synchronous = true;
  opt.min_new_samples = 200;
  opt.promotion_margin = 2.0;  // taus live in [-1,1]: a >2 gap is impossible
  surrogate::refresh_pipeline pipeline{
      opt, small_gbt(), base, incumbent,
      [&](std::shared_ptr<const surrogate::hw_predictor>) { ++promoted; }};

  pipeline.observe(benchmark(250, 0.02, 12));  // crosses min_new_samples: triggers
  const auto s = pipeline.stats();
  EXPECT_EQ(s.attempts, 1u);
  EXPECT_EQ(s.rejections, 1u);
  EXPECT_EQ(s.promotions, 0u);
  EXPECT_EQ(s.epoch, 0u);
  EXPECT_EQ(promoted.load(), 0);
  EXPECT_EQ(s.observed, 250u);
}

TEST_F(pipeline_fixture, drifted_ground_truth_promotes_a_strictly_better_candidate) {
  // Incumbent fitted to heavily corrupted labels; the logged ground truth
  // is clean, so the candidate's held-out rank fidelity must beat it.
  const auto noisy = benchmark(300, 0.8, 21);
  auto incumbent = std::make_shared<const surrogate::hw_predictor>(noisy, small_gbt());

  std::atomic<int> promoted{0};
  surrogate::refresh_options opt;
  opt.enabled = true;
  opt.synchronous = true;
  opt.min_new_samples = 400;
  opt.promotion_margin = 0.0;
  surrogate::refresh_pipeline pipeline{
      opt, small_gbt(), noisy, incumbent,
      [&](std::shared_ptr<const surrogate::hw_predictor> p) {
        EXPECT_NE(p.get(), incumbent.get());
        ++promoted;
      }};

  pipeline.observe(benchmark(500, 0.0, 22));  // clean ground truth
  const auto s = pipeline.stats();
  ASSERT_EQ(s.attempts, 1u);
  EXPECT_EQ(s.promotions, 1u);
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_EQ(promoted.load(), 1);
  EXPECT_GT(s.last_candidate_tau, s.last_incumbent_tau);
}

TEST_F(pipeline_fixture, trigger_gate_respects_min_new_samples) {
  const auto base = benchmark(300, 0.05, 31);
  auto incumbent = std::make_shared<const surrogate::hw_predictor>(base, small_gbt());
  surrogate::refresh_options opt;
  opt.enabled = true;
  opt.synchronous = true;
  opt.min_new_samples = 1000;
  surrogate::refresh_pipeline pipeline{opt, small_gbt(), base, incumbent, nullptr};
  pipeline.observe(benchmark(100, 0.0, 32));
  EXPECT_EQ(pipeline.stats().attempts, 0u);  // below the gate
  pipeline.observe(benchmark(950, 0.0, 33));
  EXPECT_EQ(pipeline.stats().attempts, 1u);  // 1050 >= 1000
  // refresh_now ignores the gate entirely.
  EXPECT_NO_THROW((void)pipeline.refresh_now());
  EXPECT_EQ(pipeline.stats().attempts, 2u);
}

// ---- epoch-tagged engine ---------------------------------------------------

struct epoch_fixture : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  core::search_space space{net, plat};
  // Two models that disagree: idle-power accounting changes every energy.
  core::evaluator eval_a{net, plat, {}};
  core::evaluator eval_b{net, plat, make_b_options()};

  static core::evaluator_options make_b_options() {
    core::evaluator_options opt;
    opt.count_idle_power = false;
    return opt;
  }

  std::vector<core::configuration> random_configs(std::size_t n, std::uint64_t seed = 3) const {
    util::rng gen{seed};
    std::vector<core::configuration> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(space.decode(space.random(gen)));
    return out;
  }
};

TEST_F(epoch_fixture, epoch_tagged_cache_serves_no_stale_predictions) {
  core::evaluation_engine engine{eval_a};
  const auto configs = random_configs(4);
  for (const auto& c : configs) (void)engine.evaluate(c);
  EXPECT_EQ(engine.epoch(), 0u);
  EXPECT_EQ(engine.size(), 4u);

  engine.advance_epoch(eval_b);
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.size(), 0u);  // stale entries purged eagerly
  EXPECT_EQ(engine.stats().invalidated, 4u);

  for (const auto& c : configs) {
    const core::evaluation cached = engine.evaluate(c);
    const core::evaluation direct = eval_b.evaluate(c);
    // Must be the new model's output, not a stale epoch-0 entry.
    EXPECT_EQ(cached.avg_energy_mj, direct.avg_energy_mj);
    EXPECT_EQ(cached.objective, direct.objective);
  }
  EXPECT_EQ(engine.stats().misses, 8u);  // all four re-ran under epoch 1

  // And the new epoch's entries are served normally.
  const auto s0 = engine.stats();
  (void)engine.evaluate(configs.front());
  EXPECT_EQ(engine.stats().hits, s0.hits + 1);
}

TEST_F(epoch_fixture, inflight_batch_completes_on_the_old_model_during_a_swap) {
  core::engine_options opt;
  opt.threads = 2;
  core::evaluation_engine engine{eval_a, opt};
  const auto configs = random_configs(24, 17);

  // Plan is synchronous at submit: whatever the race with the swap below,
  // this batch must finish on the evaluator it captured (eval_a).
  auto fut = engine.evaluate_batch_async(configs);
  engine.advance_epoch(eval_b);
  const auto results = fut.get();
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const core::evaluation direct = eval_a.evaluate(configs[i]);
    EXPECT_EQ(results[i].avg_energy_mj, direct.avg_energy_mj);
    EXPECT_EQ(results[i].objective, direct.objective);
  }
  // New work sees the new model.
  const core::evaluation fresh = engine.evaluate(configs.front());
  EXPECT_EQ(fresh.avg_energy_mj, eval_b.evaluate(configs.front()).avg_energy_mj);
}

TEST_F(epoch_fixture, ground_truth_tap_fires_once_per_evaluator_run) {
  core::evaluation_engine engine{eval_a};
  std::atomic<std::size_t> taps{0};
  engine.set_ground_truth_tap(
      [&](const core::configuration&, const core::evaluation&) { ++taps; });
  const auto configs = random_configs(5, 23);
  for (const auto& c : configs) (void)engine.evaluate(c);  // 5 misses
  for (const auto& c : configs) (void)engine.evaluate(c);  // 5 hits: no taps
  EXPECT_EQ(taps.load(), 5u);
  const std::vector<core::configuration> batch(4, configs.front());
  (void)engine.evaluate_batch(batch);  // hit + dedups: no taps
  EXPECT_EQ(taps.load(), 5u);
  engine.set_ground_truth_tap(nullptr);
  (void)engine.evaluate(random_configs(1, 99).front());  // miss, tap uninstalled
  EXPECT_EQ(taps.load(), 5u);
}

// ---- serving integration ---------------------------------------------------

struct serving_fixture : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();

  serving::mapping_request tiny_request(bool use_surrogate, std::uint64_t seed) const {
    serving::mapping_request req;
    req.network = net.name;
    req.use_surrogate = use_surrogate;
    req.ga.generations = 3;
    req.ga.population = 10;
    req.ga.seed = seed;
    req.bench.samples = 250;
    req.bench.noise_stddev = 0.6;  // a deliberately weak initial surrogate
    req.gbt.n_trees = 24;
    return req;
  }
};

TEST_F(serving_fixture, refresh_disabled_reports_no_stats_and_stays_warm_identical) {
  serving::service_options opt;
  opt.engine.threads = 1;
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  const auto cold = service.map(tiny_request(true, 5));
  EXPECT_FALSE(cold.refresh.has_value());
  const auto warm = service.map(tiny_request(true, 5));
  EXPECT_FALSE(warm.refresh.has_value());
  ASSERT_EQ(cold.front.size(), warm.front.size());
  for (std::size_t i = 0; i < cold.front.size(); ++i) {
    EXPECT_EQ(cold.front[i].objective, warm.front[i].objective);
    EXPECT_EQ(cold.front[i].avg_latency_ms, warm.front[i].avg_latency_ms);
    EXPECT_EQ(cold.front[i].avg_energy_mj, warm.front[i].avg_energy_mj);
  }
}

TEST_F(serving_fixture, analytic_traffic_feeds_the_log_and_reports_refresh_stats) {
  serving::service_options opt;
  opt.engine.threads = 1;
  opt.refresh.enabled = true;
  opt.refresh.synchronous = true;
  opt.refresh.min_new_samples = 1;  // every analytic request triggers an attempt
  opt.refresh.promotion_margin = 2.0;  // impossible: promotion always rejected
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  // First surrogate request trains the GBT and arms the pipeline; before
  // that there is nothing to refresh, so no stats yet.
  const auto trained = service.map(tiny_request(true, 5));
  ASSERT_TRUE(trained.refresh.has_value());
  EXPECT_TRUE(trained.trained_surrogate);

  // Analytic searches are pure ground truth: every cache miss flows into
  // the training log and (min_new_samples = 1) triggers gated attempts.
  const auto analytic = service.map(tiny_request(false, 6));
  ASSERT_TRUE(analytic.refresh.has_value());
  const auto& rs = *analytic.refresh;
  EXPECT_GT(rs.observed, 0u);
  EXPECT_GT(rs.logged, 0u);
  EXPECT_GE(rs.attempts, 1u);
  EXPECT_EQ(rs.promotions, 0u);  // the impossible margin rejected them all
  EXPECT_EQ(rs.rejections, rs.attempts);
  EXPECT_EQ(rs.epoch, 0u);
}

TEST_F(serving_fixture, drifted_session_promotes_and_keeps_serving) {
  serving::service_options opt;
  opt.engine.threads = 1;
  opt.refresh.enabled = true;
  opt.refresh.synchronous = true;
  opt.refresh.min_new_samples = 300;
  opt.refresh.promotion_margin = 0.0;
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  // Weak initial surrogate (tiny, very noisy benchmark)...
  (void)service.map(tiny_request(true, 5));
  // ...then analytic traffic generates clean ground truth until a refresh
  // promotes a better model.
  serving::mapping_report last;
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    last = service.map(tiny_request(false, seed));
    if (last.refresh->promotions > 0) break;
  }
  ASSERT_TRUE(last.refresh.has_value());
  ASSERT_GE(last.refresh->attempts, 1u);
  ASSERT_GE(last.refresh->promotions, 1u);
  EXPECT_GT(last.refresh->promoted_candidate_tau, last.refresh->promoted_incumbent_tau);
  EXPECT_EQ(last.refresh->epoch, last.refresh->promotions);

  // The session keeps serving surrogate requests on the promoted model:
  // the epoch swap invalidated the surrogate cache, so nothing stale leaks
  // and the warm request still produces a valid validated front.
  const auto after = service.map(tiny_request(true, 5));
  EXPECT_FALSE(after.trained_surrogate);
  ASSERT_FALSE(after.front.empty());
  EXPECT_TRUE(after.refresh.has_value());
}

TEST_F(serving_fixture, refresh_note_round_trips_through_report_summary) {
  serving::mapping_report rep;
  rep.network = "n";
  rep.platform = "p";
  surrogate::refresh_stats rs;
  rs.observed = 123;
  rs.logged = 45;
  rs.attempts = 6;
  rs.promotions = 2;
  rs.rejections = 4;
  rs.epoch = 2;
  rs.last_candidate_tau = 0.875;
  rs.last_incumbent_tau = 0.75;
  rep.refresh = rs;
  core::evaluation ev;
  ev.config.partition = {{1.0}};
  ev.config.forward = {{false}};
  ev.config.mapping = {0};
  ev.config.dvfs = {0};
  ev.objective = 1.5;
  rep.front.push_back(ev);

  const core::report_summary summary = rep.summary();
  ASSERT_TRUE(summary.refresh.has_value());
  const core::report_summary back = core::report_summary_from_text(core::to_text(summary));
  ASSERT_TRUE(back.refresh.has_value());
  EXPECT_EQ(back.refresh->observed, 123u);
  EXPECT_EQ(back.refresh->logged, 45u);
  EXPECT_EQ(back.refresh->attempts, 6u);
  EXPECT_EQ(back.refresh->promotions, 2u);
  EXPECT_EQ(back.refresh->rejections, 4u);
  EXPECT_EQ(back.refresh->epoch, 2u);
  EXPECT_DOUBLE_EQ(back.refresh->last_candidate_tau, 0.875);
  EXPECT_DOUBLE_EQ(back.refresh->last_incumbent_tau, 0.75);
}

}  // namespace
