// Tests for the table printer, CSV writer, string helpers and thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace mapcq::util;

TEST(table, renders_header_and_rows) {
  table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(table, rejects_row_width_mismatch) {
  table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(table, rejects_empty_header) {
  EXPECT_THROW(table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(table, section_row_spans) {
  table t({"a", "b"});
  t.add_section("Group 1");
  t.add_row({"x", "y"});
  EXPECT_NE(t.str().find("Group 1"), std::string::npos);
}

TEST(table, num_formats_decimals) {
  EXPECT_EQ(table::num(3.14159, 2), "3.14");
  EXPECT_EQ(table::num(2.0, 0), "2");
}

TEST(table, lines_have_equal_width) {
  table t({"col", "x"});
  t.add_row({"aaaa", "1"});
  t.add_section("sec");
  std::istringstream is(t.str());
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(csv, writes_rows_and_escapes) {
  const std::string path = "/tmp/mapcq_test.csv";
  {
    csv_writer w{path, {"a", "b"}};
    w.write_row(std::vector<std::string>{"x,y", "he said \"hi\""});
    w.write_row(std::vector<double>{1.5, 2.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in{path};
  std::string l1;
  std::string l2;
  std::string l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "\"x,y\",\"he said \"\"hi\"\"\"");
  EXPECT_EQ(l3, "1.5,2");
  std::remove(path.c_str());
}

TEST(csv, rejects_width_mismatch) {
  csv_writer w{"/tmp/mapcq_test2.csv", {"a", "b"}};
  EXPECT_THROW(w.write_row(std::vector<std::string>{"only"}), std::invalid_argument);
  std::remove("/tmp/mapcq_test2.csv");
}

TEST(strings, format_basic) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
}

TEST(strings, join_and_split_roundtrip) {
  const std::vector<std::string> parts = {"a", "", "c"};
  EXPECT_EQ(join(parts, ","), "a,,c");
  EXPECT_EQ(split("a,,c", ','), parts);
}

TEST(strings, trim_whitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(strings, starts_with) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("hello", "lo"));
  EXPECT_FALSE(starts_with("h", "hello"));
}

TEST(strings, human_bytes_units) {
  EXPECT_EQ(human_bytes(512.0), "512.00 B");
  EXPECT_EQ(human_bytes(2048.0), "2.00 KiB");
  EXPECT_EQ(human_bytes(3.0 * 1024 * 1024), "3.00 MiB");
}

TEST(strings, human_flops_units) {
  EXPECT_EQ(human_flops(500.0), "500.00 FLOPs");
  EXPECT_EQ(human_flops(2.5e9), "2.50 GFLOPs");
}

TEST(thread_pool, parallel_for_covers_all_indices) {
  thread_pool pool{4};
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(thread_pool, parallel_for_empty_is_noop) {
  thread_pool pool{2};
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(thread_pool, submit_and_wait_idle) {
  thread_pool pool{3};
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(thread_pool, rejects_empty_task) {
  thread_pool pool{1};
  EXPECT_THROW(pool.submit({}), std::invalid_argument);
}

TEST(thread_pool, size_is_at_least_one) {
  thread_pool pool{0};
  EXPECT_EQ(pool.size(), 1u);
}

TEST(thread_pool, parallel_for_more_work_than_threads) {
  thread_pool pool{2};
  std::atomic<int> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i % 7)); });
  int expect = 0;
  for (int i = 0; i < 1000; ++i) expect += i % 7;
  EXPECT_EQ(sum.load(), expect);
}

}  // namespace
