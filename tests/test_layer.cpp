#include "nn/layer.h"

#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace {

using namespace mapcq::nn;

TEST(tensor_shape, elements_and_bytes) {
  const tensor_shape s{3, 32, 32};
  EXPECT_EQ(s.elements(), 3 * 32 * 32);
  EXPECT_DOUBLE_EQ(s.bytes(), 3 * 32 * 32 * fp16_bytes);
  EXPECT_DOUBLE_EQ(s.bytes(0.5), 3 * 32 * 32 * fp16_bytes * 0.5);
}

TEST(tensor_shape, str_format) { EXPECT_EQ((tensor_shape{3, 32, 16}.str()), "3x32x16"); }

TEST(layer, conv_output_geometry) {
  const layer l = make_conv2d("c", {3, 32, 32}, 64, 3, 1, 1);
  EXPECT_EQ(l.output(), (tensor_shape{64, 32, 32}));
  EXPECT_EQ(l.width(), 64);
}

TEST(layer, conv_strided_output) {
  const layer l = make_conv2d("c", {8, 32, 32}, 16, 3, 2, 1);
  EXPECT_EQ(l.output(), (tensor_shape{16, 16, 16}));
}

TEST(layer, conv_flops_exact) {
  // 2 * Cin * Cout * K^2 * Hout * Wout
  const layer l = make_conv2d("c", {3, 32, 32}, 64, 3, 1, 1);
  EXPECT_DOUBLE_EQ(l.flops(), 2.0 * 3 * 64 * 9 * 32 * 32);
}

TEST(layer, conv_flops_scale_bilinearly_with_fractions) {
  const layer l = make_conv2d("c", {64, 16, 16}, 64, 3, 1, 1);
  EXPECT_NEAR(l.flops(0.5, 0.5), 0.25 * l.flops(), 1e-6);
  EXPECT_NEAR(l.flops(1.0, 0.25), 0.25 * l.flops(), 1e-6);
}

TEST(layer, conv_params_include_bias) {
  const layer l = make_conv2d("c", {8, 8, 8}, 16, 3, 1, 1);
  EXPECT_DOUBLE_EQ(l.params(), 8.0 * 16 * 9 + 16);
}

TEST(layer, conv_rejects_bad_geometry) {
  EXPECT_THROW((void)make_conv2d("c", {0, 32, 32}, 8, 3, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)make_conv2d("c", {3, 32, 32}, 0, 3, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)make_conv2d("c", {3, 2, 2}, 8, 5, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)make_conv2d("c", {3, 32, 32}, 8, 3, 1, -1), std::invalid_argument);
}

TEST(layer, linear_flops_and_shape) {
  const layer l = make_linear("fc", 512, 100);
  EXPECT_EQ(l.output(), (tensor_shape{100, 1, 1}));
  EXPECT_DOUBLE_EQ(l.flops(), 2.0 * 512 * 100);
}

TEST(layer, attention_width_is_heads) {
  const layer l = make_attention("attn", {192, 8, 8}, 6);
  EXPECT_EQ(l.width(), 6);
  EXPECT_EQ(l.head_dim, 32);
  EXPECT_EQ(l.output(), (tensor_shape{192, 8, 8}));
}

TEST(layer, attention_flops_formula) {
  const layer l = make_attention("attn", {192, 8, 8}, 6);
  const double d = 192;
  const double t = 64;
  const double dh = 32;
  const double h = 6;
  const double expected =
      3 * 2 * d * h * dh * t + 2 * t * t * dh * h + 2 * t * t * dh * h + 2 * h * dh * d * t;
  EXPECT_DOUBLE_EQ(l.flops(), expected);
}

TEST(layer, attention_head_fraction_scales) {
  const layer l = make_attention("attn", {384, 4, 4}, 12);
  // half the heads with full input -> strictly more than half the cost of
  // qkv is saved but the out-projection also halves; overall < full.
  EXPECT_LT(l.flops(1.0, 0.5), l.flops());
  EXPECT_GT(l.flops(1.0, 0.5), 0.25 * l.flops());
}

TEST(layer, attention_requires_divisible_heads) {
  EXPECT_THROW((void)make_attention("attn", {100, 8, 8}, 6), std::invalid_argument);
}

TEST(layer, mlp_flops) {
  const layer l = make_mlp("mlp", {192, 8, 8}, 768);
  EXPECT_DOUBLE_EQ(l.flops(), 2.0 * 192 * 768 * 64 + 2.0 * 768 * 192 * 64);
}

TEST(layer, norm_preserves_shape_and_is_cheap) {
  const layer l = make_norm("n", {64, 16, 16});
  EXPECT_EQ(l.output(), (tensor_shape{64, 16, 16}));
  EXPECT_LT(l.flops(), 1e6);
  EXPECT_EQ(l.width(), 64);
}

TEST(layer, pool_halves_spatial) {
  const layer l = make_pool("p", {64, 16, 16}, 2, 2);
  EXPECT_EQ(l.output(), (tensor_shape{64, 8, 8}));
  EXPECT_DOUBLE_EQ(l.params(), 0.0);
}

TEST(layer, pool_rejects_oversized_kernel) {
  EXPECT_THROW((void)make_pool("p", {8, 2, 2}, 4, 4), std::invalid_argument);
}

TEST(layer, patch_embed_divides_resolution) {
  const layer l = make_patch_embed("e", {32, 16, 16}, 96, 2);
  EXPECT_EQ(l.output(), (tensor_shape{96, 8, 8}));
  EXPECT_THROW((void)make_patch_embed("e", {32, 15, 15}, 96, 2), std::invalid_argument);
}

TEST(layer, global_pool_not_partitionable) {
  const layer l = make_global_pool("g", {384, 4, 4});
  EXPECT_FALSE(l.partitionable);
  EXPECT_EQ(l.output(), (tensor_shape{384, 1, 1}));
}

TEST(layer, classifier_shape_and_flops) {
  const layer l = make_classifier("fc", 384, 100);
  EXPECT_FALSE(l.partitionable);
  EXPECT_EQ(l.output(), (tensor_shape{100, 1, 1}));
  EXPECT_DOUBLE_EQ(l.flops(), 2.0 * 384 * 100);
}

TEST(layer, weight_bytes_fp16) {
  const layer l = make_linear("fc", 100, 10);
  EXPECT_DOUBLE_EQ(l.weight_bytes(), l.params() * fp16_bytes);
}

TEST(layer, arithmetic_intensity_positive_for_compute_layers) {
  const layer l = make_conv2d("c", {64, 16, 16}, 64, 3, 1, 1);
  EXPECT_GT(l.arithmetic_intensity(), 1.0);
}

TEST(layer, fraction_clamping) {
  const layer l = make_conv2d("c", {8, 8, 8}, 8, 3, 1, 1);
  EXPECT_DOUBLE_EQ(l.flops(2.0, 2.0), l.flops(1.0, 1.0));
  EXPECT_DOUBLE_EQ(l.flops(-1.0, 1.0), 0.0);
}

TEST(layer, kind_names) {
  EXPECT_STREQ(to_string(layer_kind::conv2d), "conv2d");
  EXPECT_STREQ(to_string(layer_kind::attention), "attention");
  EXPECT_STREQ(to_string(layer_kind::classifier), "classifier");
}

}  // namespace
