// Cross-cutting property sweeps over randomly sampled configurations:
// invariants that must hold for ANY point of the search space, not just the
// hand-picked cases of the unit tests.

#include <gtest/gtest.h>

#include "core/dynamic_transform.h"
#include "core/evaluator.h"
#include "core/search_space.h"
#include "nn/models.h"
#include "perf/characterizer.h"
#include "soc/platform.h"
#include "util/rng.h"

namespace {

using namespace mapcq;

struct property_env {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  core::search_space space{net, plat};
  core::evaluator eval{net, plat, {}};
  std::vector<nn::partition_group> groups = nn::make_partition_groups(net);
  nn::ranked_network ranking{net, widths(), 1};

  std::vector<std::int64_t> widths() const {
    std::vector<std::int64_t> w;
    for (const auto& g : groups) w.push_back(g.width);
    return w;
  }
};

property_env& env() {
  static property_env e;
  return e;
}

class random_config : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  core::configuration sample() {
    util::rng gen{GetParam()};
    return env().space.decode(env().space.random(gen));
  }
};

TEST_P(random_config, evaluation_metrics_are_sane) {
  const auto e = env().eval.evaluate(sample());
  EXPECT_GE(e.avg_latency_ms, 0.0);
  EXPECT_GE(e.avg_energy_mj, 0.0);
  EXPECT_LE(e.avg_latency_ms, e.worst_latency_ms + 1e-9);
  EXPECT_LE(e.avg_energy_mj, e.worst_energy_mj + 1e-9);
  EXPECT_GE(e.accuracy_pct, 0.0);
  EXPECT_LT(e.accuracy_pct, 100.0);
  EXPECT_GE(e.fmap_reuse_pct, 0.0);
  EXPECT_LE(e.fmap_reuse_pct, 100.0);
  double fsum = 0.0;
  for (const double f : e.exit_fractions) fsum += f;
  EXPECT_NEAR(fsum, 1.0, 1e-6);
}

TEST_P(random_config, transform_plan_is_valid_and_costs_bounded) {
  const auto cfg = sample();
  const auto dyn =
      core::transform(env().net, env().groups, env().ranking, cfg, env().plat);
  EXPECT_NO_THROW(dyn.plan.validate(env().plat.size()));
  // Per group, the partitioned flops never exceed the full layer's cost.
  for (std::size_t g = 0; g < env().groups.size(); ++g) {
    double split = 0.0;
    for (std::size_t i = 0; i < dyn.plan.stages(); ++i)
      split += dyn.plan.steps[i][g].cost.flops;
    double full = 0.0;
    for (const std::size_t m : env().groups[g].members) full += env().net.layers[m].flops();
    EXPECT_LE(split, full * 1.0001);
  }
  // Qualities and visibility fractions are proper fractions.
  for (const double q : dyn.stage_quality) {
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0 + 1e-9);
  }
  for (const double v : dyn.exit_visible_frac) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
  EXPECT_GE(dyn.stored_fmap_bytes, 0.0);
}

TEST_P(random_config, characterizer_cumulative_monotone) {
  const auto cfg = sample();
  const auto dyn =
      core::transform(env().net, env().groups, env().ranking, cfg, env().plat);
  const auto exec = perf::simulate(env().plat, dyn.plan);
  const auto prof = perf::characterize(exec);
  for (std::size_t m = 1; m < prof.stages(); ++m) {
    EXPECT_GE(prof.latency_upto[m], prof.latency_upto[m - 1] - 1e-12);
    EXPECT_GE(prof.energy_upto[m], prof.energy_upto[m - 1] - 1e-12);
  }
}

TEST_P(random_config, stage_one_never_stalls) {
  // Stage 1 depends on no other stage: its wait time must be zero.
  const auto cfg = sample();
  const auto dyn =
      core::transform(env().net, env().groups, env().ranking, cfg, env().plat);
  const auto exec = perf::simulate(env().plat, dyn.plan);
  EXPECT_NEAR(exec.stages[0].wait_ms, 0.0, 1e-12);
}

TEST_P(random_config, more_forwarding_never_hurts_final_quality) {
  // Setting every indicator bit weakly improves the last stage's coverage.
  auto cfg = sample();
  const auto base =
      core::transform(env().net, env().groups, env().ranking, cfg, env().plat);
  for (auto& row : cfg.forward)
    for (std::size_t i = 0; i + 1 < row.size(); ++i) row[i] = true;
  const auto full =
      core::transform(env().net, env().groups, env().ranking, cfg, env().plat);
  EXPECT_GE(full.stage_quality.back() + 1e-9, base.stage_quality.back());
}

INSTANTIATE_TEST_SUITE_P(seeds, random_config,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u, 707u, 808u));

}  // namespace
