// Concurrent executor tests: the eq. 8 recurrence, stalls (paper Fig. 3),
// transfer accounting, sequential-reference comparison, cost injection.

#include <gtest/gtest.h>

#include "perf/characterizer.h"
#include "perf/concurrent_executor.h"
#include "perf/trace.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using perf::stage_plan;
using perf::stage_step;

/// A platform with round numbers so expected times can be hand-computed:
/// every CU runs 1 GFLOP/ms at max level, no launch overhead, and the
/// interconnect costs exactly 1 ms per transfer.
soc::platform toy_platform(std::size_t units = 3) {
  soc::platform p;
  p.name = "toy";
  for (std::size_t i = 0; i < units; ++i) {
    soc::compute_unit u;
    u.name = "U" + std::to_string(i);
    u.kind = soc::cu_kind::gpu;
    u.peak_gflops = 1000.0;  // * efficiency 1.0 -> 1e9 flop/ms... see below
    u.mem_bandwidth_gbps = 1e9;  // memory never binds
    u.launch_overhead_ms = 0.0;
    u.efficiency_spatial = 1.0;
    u.efficiency_matmul = 1.0;
    u.occupancy_floor = 1.0;  // no occupancy derate
    u.occupancy_exponent = 1.0;
    u.static_power_w = 1.0;
    u.dynamic_power_w = 1.0;
    u.gated_idle_w = 0.0;
    u.activity_spatial = 1.0;
    u.activity_matmul = 1.0;
    u.dvfs = soc::dvfs_table{{1000.0}};
    p.units.push_back(u);
  }
  p.xfer.base_latency_ms = 1.0;
  p.xfer.bandwidth_gbps = 1e9;
  p.xfer.energy_pj_per_byte = 0.0;
  p.shared_memory_bytes = 1e9;
  return p;
}

/// flops value that takes `ms` milliseconds on the toy platform:
/// sustained = 1000 GFLOPS = 1e9 flop/ms.
double flops_for_ms(double ms) { return ms * 1e9; }

stage_step step_ms(double ms) {
  stage_step s;
  s.cost.kind = nn::layer_kind::conv2d;
  s.cost.flops = flops_for_ms(ms);
  s.cost.width_frac = 1.0;
  return s;
}

perf::model_options no_contention() {
  perf::model_options o;
  o.enable_contention = false;
  return o;
}

TEST(executor, independent_stages_run_concurrently) {
  const auto plat = toy_platform(2);
  stage_plan plan;
  plan.steps = {{step_ms(2.0), step_ms(3.0)}, {step_ms(4.0), step_ms(1.0)}};
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  const auto res = perf::simulate(plat, plan, no_contention());
  EXPECT_NEAR(res.stages[0].latency_ms, 5.0, 1e-9);
  EXPECT_NEAR(res.stages[1].latency_ms, 5.0, 1e-9);
  // eq. 13: overall latency is the max over stages.
  EXPECT_NEAR(res.latency_ms(), 5.0, 1e-9);
}

TEST(executor, dependency_stalls_consumer) {
  // Fig. 3 scenario: stage 2's second sublayer needs stage 1's first output
  // (2 ms) plus a 1 ms transfer, but its own first sublayer ends at 1 ms
  // -> it stalls 2 ms.
  const auto plat = toy_platform(2);
  stage_plan plan;
  plan.steps = {{step_ms(2.0), step_ms(3.0)}, {step_ms(1.0), step_ms(1.0)}};
  plan.steps[1][1].incoming.push_back({0, 0.0});  // transfer = base 1 ms
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  const auto res = perf::simulate(plat, plan, no_contention());
  // T^0_1 = 2; T^1_2 = tau(1) + max(T^0_2 = 1, T^0_1 + u = 3) = 4.
  EXPECT_NEAR(res.stages[1].latency_ms, 4.0, 1e-9);
  EXPECT_NEAR(res.timeline[1][1].wait_ms, 2.0, 1e-9);
  EXPECT_NEAR(res.stages[1].wait_ms, 2.0, 1e-9);
}

TEST(executor, no_dependency_no_stall) {
  const auto plat = toy_platform(2);
  stage_plan plan;
  plan.steps = {{step_ms(5.0), step_ms(1.0)}, {step_ms(1.0), step_ms(1.0)}};
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  const auto res = perf::simulate(plat, plan, no_contention());
  EXPECT_NEAR(res.stages[1].wait_ms, 0.0, 1e-9);
  EXPECT_NEAR(res.stages[1].latency_ms, 2.0, 1e-9);
}

TEST(executor, transfer_traffic_and_energy_counted) {
  auto plat = toy_platform(2);
  plat.xfer.energy_pj_per_byte = 10.0;
  stage_plan plan;
  plan.steps = {{step_ms(1.0), step_ms(1.0)}, {step_ms(1.0), step_ms(1.0)}};
  plan.steps[1][1].incoming.push_back({0, 1e6});
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  const auto res = perf::simulate(plat, plan, no_contention());
  EXPECT_DOUBLE_EQ(res.fmap_traffic_bytes, 1e6);
  EXPECT_NEAR(res.transfer_energy_mj, 1e6 * 10.0 * 1e-9, 1e-15);
}

TEST(executor, energy_is_busy_time_times_power) {
  const auto plat = toy_platform(2);
  stage_plan plan;
  plan.steps = {{step_ms(2.0), step_ms(3.0)}, {step_ms(1.0), step_ms(1.0)}};
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  const auto res = perf::simulate(plat, plan, no_contention());
  // Toy platform: P = 1 + 1 = 2 W at theta 1 -> E = 2 * busy.
  EXPECT_NEAR(res.stages[0].energy_mj, 2.0 * 5.0, 1e-9);
  EXPECT_NEAR(res.stages[1].energy_mj, 2.0 * 2.0, 1e-9);
  // eq. 14: energies add across instantiated stages.
  EXPECT_NEAR(res.energy_mj(1), 10.0, 1e-9);
  EXPECT_NEAR(res.energy_mj(2), 14.0, 1e-9);
}

TEST(executor, empty_steps_cost_nothing_but_propagate) {
  const auto plat = toy_platform(2);
  stage_plan plan;
  plan.steps = {{step_ms(2.0), step_ms(2.0), step_ms(2.0)},
                {stage_step{}, stage_step{}, step_ms(1.0)}};
  // Stage 2 only works at the last group, fed by stage 1's group-2 output.
  plan.steps[1][2].incoming.push_back({0, 0.0});
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  const auto res = perf::simulate(plat, plan, no_contention());
  // T_1 chain: 2,4,6. Stage 2: idle, idle, starts at max(0, 4+1)=5, ends 6.
  EXPECT_NEAR(res.stages[1].latency_ms, 6.0, 1e-9);
  EXPECT_NEAR(res.stages[1].busy_ms, 1.0, 1e-9);
}

TEST(executor, chained_transfers_accumulate) {
  const auto plat = toy_platform(3);
  stage_plan plan;
  plan.steps.assign(3, std::vector<stage_step>(2));
  for (auto& st : plan.steps)
    for (auto& s : st) s = step_ms(1.0);
  plan.steps[1][1].incoming.push_back({0, 0.0});
  plan.steps[2][1].incoming.push_back({0, 0.0});
  plan.steps[2][1].incoming.push_back({1, 0.0});
  plan.cu_of_stage = {0, 1, 2};
  plan.dvfs_level = {0, 0, 0};
  const auto res = perf::simulate(plat, plan, no_contention());
  // Stage 3 layer 2: max(own 1, s1: 1+1, s2: 1+1) = 2 -> +1 = 3.
  EXPECT_NEAR(res.stages[2].latency_ms, 3.0, 1e-9);
}

TEST(executor, costed_injection_matches_analytic) {
  const auto plat = toy_platform(2);
  stage_plan plan;
  plan.steps = {{step_ms(2.0), step_ms(3.0)}, {step_ms(4.0), step_ms(1.0)}};
  plan.steps[1][1].incoming.push_back({0, 0.0});
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  const auto analytic = perf::simulate(plat, plan, no_contention());

  perf::step_costs costs;
  costs.tau_ms = {{2.0, 3.0}, {4.0, 1.0}};
  costs.energy_mj = {{4.0, 6.0}, {8.0, 2.0}};
  const auto injected = perf::simulate_costed(plat, plan, costs);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(injected.stages[i].latency_ms, analytic.stages[i].latency_ms, 1e-9);
    EXPECT_NEAR(injected.stages[i].energy_mj, analytic.stages[i].energy_mj, 1e-9);
  }
}

TEST(executor, costed_rejects_shape_mismatch) {
  const auto plat = toy_platform(2);
  stage_plan plan;
  plan.steps = {{step_ms(1.0)}, {step_ms(1.0)}};
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  perf::step_costs costs;
  costs.tau_ms = {{1.0}};
  costs.energy_mj = {{1.0}};
  EXPECT_THROW((void)perf::simulate_costed(plat, plan, costs), std::logic_error);
}

TEST(executor, sequential_never_faster_than_concurrent) {
  const auto plat = toy_platform(3);
  stage_plan plan;
  plan.steps.assign(3, std::vector<stage_step>(4));
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) plan.steps[i][j] = step_ms(1.0 + double(i + j) * 0.5);
  plan.steps[1][2].incoming.push_back({0, 0.0});
  plan.steps[2][3].incoming.push_back({1, 0.0});
  plan.cu_of_stage = {0, 1, 2};
  plan.dvfs_level = {0, 0, 0};
  const auto conc = perf::simulate(plat, plan, no_contention());
  const auto seq = perf::simulate_sequential(plat, plan, no_contention());
  EXPECT_GE(seq.stages.back().latency_ms + 1e-9, conc.latency_ms());
}

TEST(executor, latency_upto_is_monotone) {
  const auto plat = toy_platform(3);
  stage_plan plan;
  plan.steps.assign(3, std::vector<stage_step>(2));
  for (auto& st : plan.steps)
    for (auto& s : st) s = step_ms(2.0);
  plan.cu_of_stage = {0, 1, 2};
  plan.dvfs_level = {0, 0, 0};
  const auto res = perf::simulate(plat, plan, no_contention());
  const auto prof = perf::characterize(res);
  for (std::size_t m = 1; m < prof.stages(); ++m) {
    EXPECT_GE(prof.latency_upto[m], prof.latency_upto[m - 1] - 1e-12);
    EXPECT_GE(prof.energy_upto[m], prof.energy_upto[m - 1] - 1e-12);
  }
}

TEST(executor, rejects_invalid_plan) {
  const auto plat = toy_platform(2);
  stage_plan plan;  // empty
  EXPECT_THROW((void)perf::simulate(plat, plan), std::logic_error);
}

TEST(trace, gantt_renders_rows) {
  const auto plat = toy_platform(2);
  stage_plan plan;
  plan.steps = {{step_ms(2.0), step_ms(3.0)}, {step_ms(1.0), step_ms(1.0)}};
  plan.steps[1][1].incoming.push_back({0, 0.0});
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  const auto res = perf::simulate(plat, plan, no_contention());
  const std::string g = perf::render_gantt(res, plan, plat, 40);
  EXPECT_NE(g.find("S1"), std::string::npos);
  EXPECT_NE(g.find("S2"), std::string::npos);
  EXPECT_NE(g.find('#'), std::string::npos);
}

}  // namespace
