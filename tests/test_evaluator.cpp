// Evaluation pipeline tests: metrics, constraints, surrogate path, static
// vs dynamic exits, idle accounting.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluator.h"
#include "nn/models.h"
#include "perf/calibration.h"
#include "surrogate/dataset.h"

namespace {

using namespace mapcq;
using core::configuration;
using core::evaluation;
using core::evaluator;
using core::evaluator_options;

struct evaluator_fixture : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();

  configuration cfg() const { return core::make_static_configuration(net, plat); }
};

TEST_F(evaluator_fixture, static_config_dynamic_exits_metrics_consistent) {
  const evaluator ev{net, plat, {}};
  const evaluation e = ev.evaluate(cfg());
  EXPECT_TRUE(e.feasible) << e.reject_reason;
  EXPECT_GT(e.avg_latency_ms, 0.0);
  EXPECT_GT(e.avg_energy_mj, 0.0);
  EXPECT_LE(e.avg_latency_ms, e.worst_latency_ms + 1e-9);
  EXPECT_LE(e.avg_energy_mj, e.worst_energy_mj + 1e-9);
  EXPECT_EQ(e.stage_latency_ms.size(), plat.size());
  EXPECT_NEAR(e.fmap_reuse_pct, 100.0, 1e-9);
  // Full reuse, full width: last stage reaches ceiling.
  EXPECT_NEAR(e.last_stage_accuracy_pct, net.base_accuracy + net.multi_exit_bonus, 0.01);
}

TEST_F(evaluator_fixture, static_exits_put_everyone_at_last_stage) {
  evaluator_options opt;
  opt.dynamic_exits = false;
  const evaluator ev{net, plat, opt};
  const evaluation e = ev.evaluate(cfg());
  EXPECT_NEAR(e.exit_fractions.back(), 1.0, 1e-12);
  for (std::size_t i = 0; i + 1 < e.exit_fractions.size(); ++i)
    EXPECT_DOUBLE_EQ(e.exit_fractions[i], 0.0);
  // Everyone pays the full pipeline.
  EXPECT_NEAR(e.avg_latency_ms, e.worst_latency_ms, 1e-9);
}

TEST_F(evaluator_fixture, dynamic_exits_cheaper_than_static) {
  const evaluator dyn{net, plat, {}};
  evaluator_options sopt;
  sopt.dynamic_exits = false;
  const evaluator stat{net, plat, sopt};
  const auto cd = cfg();
  EXPECT_LT(dyn.evaluate(cd).avg_energy_mj, stat.evaluate(cd).avg_energy_mj);
  EXPECT_LT(dyn.evaluate(cd).avg_latency_ms, stat.evaluate(cd).avg_latency_ms + 1e-9);
}

TEST_F(evaluator_fixture, reuse_cap_flags_infeasible) {
  evaluator_options opt;
  opt.limits.fmap_reuse_cap = 0.5;
  const evaluator ev{net, plat, opt};
  const evaluation e = ev.evaluate(cfg());  // static cfg has 100% reuse
  EXPECT_FALSE(e.feasible);
  EXPECT_NE(e.reject_reason.find("reuse"), std::string::npos);
}

TEST_F(evaluator_fixture, memory_budget_flags_infeasible) {
  soc::platform tiny = plat;
  tiny.shared_memory_bytes = 64.0;  // nothing fits
  const evaluator ev{net, tiny, {}};
  const evaluation e = ev.evaluate(core::make_static_configuration(net, tiny));
  EXPECT_FALSE(e.feasible);
  EXPECT_NE(e.reject_reason.find("shared memory"), std::string::npos);
}

TEST_F(evaluator_fixture, latency_target_flags_infeasible) {
  evaluator_options opt;
  opt.limits.latency_target_ms = 1e-6;
  const evaluator ev{net, plat, opt};
  EXPECT_FALSE(ev.evaluate(cfg()).feasible);
}

TEST_F(evaluator_fixture, energy_target_flags_infeasible) {
  evaluator_options opt;
  opt.limits.energy_target_mj = 1e-9;
  const evaluator ev{net, plat, opt};
  EXPECT_FALSE(ev.evaluate(cfg()).feasible);
}

TEST_F(evaluator_fixture, idle_accounting_increases_energy) {
  evaluator_options with;
  with.count_idle_power = true;
  evaluator_options without;
  without.count_idle_power = false;
  const evaluator a{net, plat, with};
  const evaluator b{net, plat, without};
  const auto c = cfg();
  EXPECT_GT(a.evaluate(c).avg_energy_mj, b.evaluate(c).avg_energy_mj);
  EXPECT_NEAR(a.evaluate(c).avg_latency_ms, b.evaluate(c).avg_latency_ms, 1e-9);
}

TEST_F(evaluator_fixture, evaluation_is_deterministic) {
  const evaluator ev{net, plat, {}};
  const auto c = cfg();
  const evaluation a = ev.evaluate(c);
  const evaluation b = ev.evaluate(c);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_DOUBLE_EQ(a.avg_energy_mj, b.avg_energy_mj);
  EXPECT_DOUBLE_EQ(a.accuracy_pct, b.accuracy_pct);
}

TEST_F(evaluator_fixture, surrogate_close_to_analytic) {
  const surrogate::dataset ds = surrogate::generate_benchmark({&net}, plat, {});
  const auto parts = surrogate::split(ds, 0.8, 9);
  const surrogate::hw_predictor pred{parts.train};

  evaluator_options opt;
  opt.predictor = &pred;
  const evaluator sur{net, plat, opt};
  const evaluator ana{net, plat, {}};
  const auto c = cfg();
  const evaluation es = sur.evaluate(c);
  const evaluation ea = ana.evaluate(c);
  EXPECT_NEAR(es.avg_latency_ms / ea.avg_latency_ms, 1.0, 0.25);
  EXPECT_NEAR(es.avg_energy_mj / ea.avg_energy_mj, 1.0, 0.25);
  // Accuracy path is independent of the cost source.
  EXPECT_DOUBLE_EQ(es.accuracy_pct, ea.accuracy_pct);
}

TEST_F(evaluator_fixture, reorder_ablation_reduces_early_accuracy) {
  evaluator_options ranked;
  evaluator_options unranked;
  unranked.reorder = false;
  const evaluator a{net, plat, ranked};
  const evaluator b{net, plat, unranked};
  const auto c = cfg();
  EXPECT_GT(a.evaluate(c).stage_accuracy_pct[0], b.evaluate(c).stage_accuracy_pct[0]);
}

TEST_F(evaluator_fixture, rejects_bad_options) {
  evaluator_options opt;
  opt.population = 0;
  EXPECT_THROW((evaluator{net, plat, opt}), std::invalid_argument);
  evaluator_options opt2;
  opt2.limits.fmap_reuse_cap = 1.5;
  EXPECT_THROW((evaluator{net, plat, opt2}), std::invalid_argument);
}

TEST(baselines, single_cu_matches_calibration_targets) {
  const auto vis = nn::build_visformer();
  const auto vgg = nn::build_vgg19();
  const auto cal = perf::calibrated_xavier(vis, vgg);
  const auto gpu = core::single_cu_baseline(vis, cal.plat, 0);
  EXPECT_NEAR(gpu.latency_ms, 15.01, 0.05);
  EXPECT_NEAR(gpu.energy_mj, 197.35, 1.0);
  EXPECT_DOUBLE_EQ(gpu.accuracy_pct, 88.09);
  const auto dla = core::single_cu_baseline(vis, cal.plat, 1);
  EXPECT_NEAR(dla.latency_ms, 69.22, 0.2);
  EXPECT_NEAR(dla.energy_mj, 53.71, 0.5);
}

TEST(baselines, static_mapping_between_extremes) {
  const auto vis = nn::build_visformer();
  const auto vgg = nn::build_vgg19();
  const auto cal = perf::calibrated_xavier(vis, vgg);
  const auto gpu = core::single_cu_baseline(vis, cal.plat, 0);
  const auto dla = core::single_cu_baseline(vis, cal.plat, 1);
  const auto stat = core::static_mapping_baseline(vis, cal.plat);
  EXPECT_TRUE(stat.feasible);
  // Fig. 1 shape: static partition is faster than DLA-only and cheaper
  // than GPU-only.
  EXPECT_LT(stat.avg_latency_ms, dla.latency_ms);
  EXPECT_LT(stat.avg_energy_mj, gpu.energy_mj);
}

}  // namespace
