// Search-strategy portfolio tests: golden bit-identity of the refactored
// K=1 GA against the pre-refactor implementation (tests/golden/k1_ga.txt,
// captured before core::evolve was split over search_strategy), SA
// determinism under its frozen schedule, heterogeneous island runs, and the
// surrogate pre-filter's exact counters.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/evolutionary.h"
#include "core/search_strategy.h"
#include "nn/models.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using core::evaluation;
using core::evaluator;
using core::evolve;
using core::ga_options;
using core::ga_result;
using core::island_algorithm;
using core::island_assignment;
using core::island_orientation;
using core::search_space;

ga_options tiny_ga(std::uint64_t seed = 1) {
  ga_options opt;
  opt.generations = 6;
  opt.population = 12;
  opt.threads = 4;
  opt.seed = seed;
  return opt;
}

struct portfolio_fixture : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  search_space space{net, plat};
  evaluator eval{net, plat, {}};
};

void expect_same_result(const ga_result& a, const ga_result& b) {
  ASSERT_EQ(a.archive.size(), b.archive.size());
  for (std::size_t i = 0; i < a.archive.size(); ++i) {
    EXPECT_EQ(a.archive[i].objective, b.archive[i].objective) << "archive[" << i << "]";
    EXPECT_EQ(a.archive[i].avg_latency_ms, b.archive[i].avg_latency_ms);
    EXPECT_EQ(a.archive[i].avg_energy_mj, b.archive[i].avg_energy_mj);
    EXPECT_EQ(a.archive[i].accuracy_pct, b.archive[i].accuracy_pct);
  }
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_EQ(a.pareto, b.pareto);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t g = 0; g < a.history.size(); ++g) {
    EXPECT_EQ(a.history[g].best_objective, b.history[g].best_objective) << "gen " << g;
    EXPECT_EQ(a.history[g].mean_objective, b.history[g].mean_objective) << "gen " << g;
    EXPECT_EQ(a.history[g].feasible, b.history[g].feasible) << "gen " << g;
  }
}

// --- golden bit-identity against the pre-refactor GA ------------------------

/// Formats exactly like the golden generator did (printf %.17g), so the
/// comparison is literal text equality — any drift in any double shows up
/// as a diff, not a tolerance question.
std::string golden_format(const std::vector<std::uint64_t>& seeds, const search_space& space,
                          const evaluator& eval) {
  std::string out = "mapcq-golden-k1-ga-v1\n";
  char buf[256];
  const auto put = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  for (const std::uint64_t seed : seeds) {
    const ga_result res = evolve(space, eval, tiny_ga(seed));
    put("seed = %llu\n", static_cast<unsigned long long>(seed));
    put("archive = %zu\n", res.archive.size());
    put("best_index = %zu\n", res.best_index);
    out += "pareto =";
    for (const std::size_t i : res.pareto) put(" %zu", i);
    out += "\n";
    put("history = %zu\n", res.history.size());
    for (const auto& h : res.history)
      put("h %.17g %.17g %zu\n", h.best_objective, h.mean_objective, h.feasible);
    for (const auto& e : res.archive)
      put("a %.17g %.17g %.17g %.17g\n", e.objective, e.avg_latency_ms, e.avg_energy_mj,
          e.accuracy_pct);
  }
  return out;
}

TEST_F(portfolio_fixture, k1_ga_bit_identical_to_pre_refactor_golden) {
  const char* src = std::getenv("MAPCQ_SOURCE_DIR");
  ASSERT_NE(src, nullptr) << "MAPCQ_SOURCE_DIR not set (run under ctest)";
  std::ifstream in{std::string(src) + "/tests/golden/k1_ga.txt"};
  ASSERT_TRUE(in) << "tests/golden/k1_ga.txt missing";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(golden_format({1, 2, 3, 4}, space, eval), buf.str())
      << "the refactored search_strategy GA diverged from the pre-refactor "
         "implementation";
}

// --- homogeneous portfolio == plain GA ---------------------------------------

TEST_F(portfolio_fixture, explicit_ga_assignments_are_bit_identical_to_empty_portfolio) {
  ga_options plain = tiny_ga(7);
  plain.island.islands = 2;
  ga_options assigned = plain;
  assigned.portfolio.islands = {island_assignment{}, island_assignment{}};
  expect_same_result(evolve(space, eval, plain), evolve(space, eval, assigned));
}

// --- simulated annealing ------------------------------------------------------

TEST_F(portfolio_fixture, sa_island_finds_feasible_configurations) {
  ga_options opt = tiny_ga(3);
  opt.generations = 8;
  opt.portfolio.islands = {island_assignment{island_algorithm::sa,
                                             island_orientation::balanced}};
  const ga_result res = evolve(space, eval, opt);
  EXPECT_FALSE(res.archive.empty());
  EXPECT_EQ(res.history.size(), 8u);
  for (const auto& e : res.archive) EXPECT_TRUE(e.feasible);
}

TEST_F(portfolio_fixture, sa_frozen_schedule_is_run_over_run_deterministic) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    ga_options opt = tiny_ga(seed);
    opt.portfolio.islands = {island_assignment{island_algorithm::sa,
                                               island_orientation::balanced}};
    expect_same_result(evolve(space, eval, opt), evolve(space, eval, opt));
  }
}

TEST_F(portfolio_fixture, heterogeneous_islands_with_orientations_run_and_polish) {
  ga_options opt = tiny_ga(5);
  opt.generations = 10;
  opt.population = 16;
  opt.island.islands = 2;
  opt.portfolio.islands = {
      island_assignment{island_algorithm::ga, island_orientation::balanced},
      island_assignment{island_algorithm::sa, island_orientation::latency},
  };
  const ga_result res = evolve(space, eval, opt);
  EXPECT_FALSE(res.archive.empty());
  EXPECT_EQ(res.islands, 2u);
  // Determinism holds for the mixed portfolio too.
  expect_same_result(res, evolve(space, eval, opt));
}

TEST_F(portfolio_fixture, sa_led_portfolio_polishes_through_a_fresh_ga_tail) {
  // Island 0 = SA forces the polish tail onto the dedicated merged-GA
  // stream (island_seed(seed, K)); the run must still complete and stay
  // deterministic.
  ga_options opt = tiny_ga(11);
  opt.generations = 10;
  opt.population = 16;
  opt.island.islands = 2;
  opt.portfolio.islands = {
      island_assignment{island_algorithm::sa, island_orientation::energy},
      island_assignment{island_algorithm::ga, island_orientation::balanced},
  };
  const ga_result res = evolve(space, eval, opt);
  EXPECT_FALSE(res.archive.empty());
  expect_same_result(res, evolve(space, eval, opt));
}

// --- surrogate pre-filtering --------------------------------------------------

/// Deterministic stand-in for the session GBT: scores a configuration by
/// the analytic evaluator (perfect fidelity), which keeps the counter
/// arithmetic exact without training anything.
class analytic_prefilter final : public core::candidate_prefilter {
 public:
  explicit analytic_prefilter(const evaluator& eval) : eval_(eval) {}
  [[nodiscard]] std::vector<evaluation> score(
      const std::vector<core::configuration>& configs) override {
    std::vector<evaluation> out;
    out.reserve(configs.size());
    for (const auto& c : configs) out.push_back(eval_.evaluate(c));
    ++batches_;
    return out;
  }
  std::size_t batches() const { return batches_; }

 private:
  const evaluator& eval_;
  std::size_t batches_ = 0;
};

TEST_F(portfolio_fixture, prefilter_counters_are_exact_and_reduce_evaluator_runs) {
  ga_options plain = tiny_ga(9);
  const ga_result full = evolve(space, eval, plain);

  ga_options filtered = plain;
  filtered.portfolio.prefilter.enabled = true;
  filtered.portfolio.prefilter.quantile = 0.5;
  filtered.portfolio.prefilter.warmup_generations = 2;
  analytic_prefilter scorer{eval};
  const ga_result res = evolve(space, eval, filtered, &scorer);

  // Warmup generations are unfiltered; each later generation advances
  // ceil(0.5 * 12) = 6 of its 12 candidates.
  std::size_t prefiltered = 0;
  std::size_t skipped = 0;
  for (std::size_t g = 0; g < res.history.size(); ++g) {
    if (g < 2) {
      EXPECT_EQ(res.history[g].prefiltered, 0u) << "gen " << g;
      EXPECT_EQ(res.history[g].prefilter_skipped, 0u) << "gen " << g;
    } else {
      EXPECT_EQ(res.history[g].prefiltered, 6u) << "gen " << g;
      EXPECT_EQ(res.history[g].prefilter_skipped, 6u) << "gen " << g;
    }
    prefiltered += res.history[g].prefiltered;
    skipped += res.history[g].prefilter_skipped;
  }
  EXPECT_EQ(res.prefiltered, prefiltered);
  EXPECT_EQ(res.prefilter_skipped, skipped);
  EXPECT_EQ(res.prefiltered, 4u * 6u);
  EXPECT_EQ(res.prefilter_skipped, 4u * 6u);
  EXPECT_EQ(scorer.batches(), 4u);  // one scoring batch per filtered generation

  // Strictly fewer analytic evaluator runs than the unfiltered search, and
  // every archived entry is ground truth (skipped candidates never enter).
  EXPECT_LT(res.cache.misses, full.cache.misses);
  for (const auto& e : res.archive) EXPECT_TRUE(e.feasible);

  // The unfiltered totals stay zero.
  EXPECT_EQ(full.prefiltered, 0u);
  EXPECT_EQ(full.prefilter_skipped, 0u);
}

TEST_F(portfolio_fixture, prefilter_keeps_at_least_one_candidate_and_is_deterministic) {
  ga_options opt = tiny_ga(13);
  opt.portfolio.prefilter.enabled = true;
  opt.portfolio.prefilter.quantile = 0.01;  // rounds up to one candidate
  opt.portfolio.prefilter.warmup_generations = 1;
  analytic_prefilter scorer{eval};
  const ga_result a = evolve(space, eval, opt, &scorer);
  for (std::size_t g = 1; g < a.history.size(); ++g)
    EXPECT_EQ(a.history[g].prefiltered, 1u) << "gen " << g;
  analytic_prefilter scorer2{eval};
  expect_same_result(a, evolve(space, eval, opt, &scorer2));
}

// --- option validation --------------------------------------------------------

TEST_F(portfolio_fixture, invalid_portfolio_options_throw) {
  ga_options opt = tiny_ga();
  opt.portfolio.islands = {island_assignment{}, island_assignment{}};  // K = 1
  EXPECT_THROW((void)evolve(space, eval, opt), std::invalid_argument);

  opt = tiny_ga();
  opt.portfolio.prefilter.enabled = true;  // no scorer
  EXPECT_THROW((void)evolve(space, eval, opt), std::invalid_argument);

  opt = tiny_ga();
  opt.portfolio.prefilter.enabled = true;
  opt.portfolio.prefilter.quantile = 1.5;
  analytic_prefilter scorer{eval};
  EXPECT_THROW((void)evolve(space, eval, opt, &scorer), std::invalid_argument);

  opt = tiny_ga();
  opt.portfolio.sa.cooling = 0.0;
  EXPECT_THROW((void)evolve(space, eval, opt), std::invalid_argument);

  opt = tiny_ga();
  opt.portfolio.sa.initial_temperature = 0.0;
  EXPECT_THROW((void)evolve(space, eval, opt), std::invalid_argument);
}

}  // namespace
