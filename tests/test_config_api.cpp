// Config-API tests: the util::json reader/writer, JSON round-trips for
// every options struct, typed validation errors that name the offending
// key path, dotted-key overrides, and the deployment guarantee behind the
// checked-in examples/configs/default.json — a service booted from that
// file produces a mapping_report bit-identical to one booted from
// default-constructed option structs (including the effective_config
// stamp).

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "nn/models.h"
#include "serving/mapping_service.h"
#include "serving/service_config.h"
#include "soc/contention.h"
#include "soc/platform.h"
#include "soc/thermal.h"
#include "util/json.h"

namespace {

using namespace mapcq;
namespace json = util::json;
using serving::config_error;
using serving::service_config;

// --- util::json -------------------------------------------------------------

TEST(json_value, parse_dump_round_trip_preserves_structure) {
  const std::string text =
      R"({"s": "a\n\"b\"", "n": -12.5, "i": 42, "b": true, "z": null, )"
      R"("arr": [1, 2, 3], "nested": {"k": [{"deep": false}]}})";
  const json::value v = json::parse(text);
  EXPECT_EQ(v.as_object().size(), 7u);
  EXPECT_EQ(v.find("s")->as_string(), "a\n\"b\"");
  EXPECT_EQ(v.find("n")->as_number(), -12.5);
  EXPECT_EQ(v.find("arr")->as_array().size(), 3u);
  // dump -> parse -> dump is a fixed point (insertion order preserved).
  const std::string once = json::dump(v);
  EXPECT_EQ(json::dump(json::parse(once)), once);
  // Pretty and compact dumps parse to the same value.
  EXPECT_TRUE(json::parse(json::dump(v, 2)) == v);
}

TEST(json_value, numbers_dump_shortest_round_trip_form) {
  EXPECT_EQ(json::dump(json::value{0.9}), "0.9");
  EXPECT_EQ(json::dump(json::value{0.1 + 0.2}), "0.30000000000000004");
  EXPECT_EQ(json::dump(json::value{42.0}), "42");
  EXPECT_EQ(json::dump(json::value{-7}), "-7");
}

TEST(json_value, parse_errors_carry_line_and_column) {
  try {
    (void)json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "duplicate key accepted";
  } catch (const json::parse_error& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
  EXPECT_THROW((void)json::parse("{\"a\": 1} trailing"), json::parse_error);
  EXPECT_THROW((void)json::parse("[1, 2,]"), json::parse_error);
  EXPECT_THROW((void)json::parse(""), json::parse_error);
}

TEST(json_value, string_escapes_round_trip) {
  const std::string text = R"("é€😀\t")";
  const json::value v = json::parse(text);
  EXPECT_EQ(v.as_string(), "\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80\t");
  EXPECT_TRUE(json::parse(json::dump(v)) == v);
}

// --- per-struct round-trips -------------------------------------------------

// Round-trip an options struct through dump -> parse -> from_json and
// compare via the canonical dump (operator== is not defined on the option
// structs; the dump covers every serialized field).
template <typename Opt>
void expect_round_trip(const Opt& opt) {
  const std::string text = json::dump(serving::to_json(opt), 2);
  Opt back;
  serving::from_json(json::parse(text), back);
  EXPECT_EQ(json::dump(serving::to_json(back), 2), text);
}

TEST(config_round_trip, every_options_struct_survives_json) {
  core::engine_options engine;
  engine.shards = 8;
  engine.capacity = 1234;
  engine.eviction = core::eviction_policy::lru;
  expect_round_trip(engine);

  core::ga_options ga;
  ga.generations = 17;
  ga.elite_fraction = 0.33;
  ga.selection = core::selection_mode::objective_only;
  ga.island.islands = 3;
  ga.seed = 0xdeadbeef;
  expect_round_trip(ga);

  serving::scheduler_options sched;
  sched.max_queued = 64;
  sched.policy = serving::admission_policy::reject;
  sched.coalesce = false;
  sched.weights = {{"tenant-a", 3}, {"tenant-b", 1}};
  expect_round_trip(sched);

  surrogate::refresh_options refresh;
  refresh.enabled = true;
  refresh.interval = std::chrono::milliseconds{1500};
  refresh.holdout_fraction = 0.4;
  expect_round_trip(refresh);

  serving::service_options service;
  service.workers = 5;
  service.session_ttl = std::chrono::milliseconds{90'000};
  service.engine.threads = 3;
  expect_round_trip(service);

  service_config cfg;
  cfg.ga.population = 24;
  cfg.service.scheduler.default_weight = 2;
  expect_round_trip(cfg);
}

TEST(config_round_trip, colocation_scenario_survives_json) {
  soc::contention_context scen;
  soc::resident_load r;
  r.name = "neighbor-dnn";
  r.interconnect_gbps = 2.5;
  r.dram_gbps = 3.25;
  r.power_w = 1.5;
  r.shared_memory_bytes = 4096;
  r.reserved_units = {1, 2};
  scen.residents.push_back(r);
  scen.dvfs_cap = {3, 0, 2};
  scen.thermal = soc::thermal_model{};
  scen.dram_energy_beta = 0.5;
  expect_round_trip(scen);

  // Through the whole service_config, and the parsed form is semantically
  // equal (same scenario key), not just textually stable.
  service_config cfg;
  cfg.scenario = scen;
  expect_round_trip(cfg);
  const service_config back = serving::parse_config(serving::dump_config(cfg));
  EXPECT_EQ(soc::scenario_key(back.scenario), soc::scenario_key(scen));
  ASSERT_TRUE(back.scenario.thermal.has_value());
  EXPECT_EQ(back.scenario.thermal->throttle_c, scen.thermal->throttle_c);

  // The default (idle) scenario stays idle across the round trip, so a
  // dumped-then-loaded config still takes the legacy evaluation path.
  const service_config defaults;
  EXPECT_TRUE(serving::parse_config(serving::dump_config(defaults)).scenario.idle());
}

TEST(config_round_trip, default_config_dump_is_stable) {
  // parse(dump(defaults)) == defaults, and the dump is deterministic.
  const service_config defaults;
  const std::string text = serving::dump_config(defaults);
  const service_config back = serving::parse_config(text);
  EXPECT_EQ(serving::dump_config(back), text);
  EXPECT_EQ(serving::dump_config(defaults), serving::dump_config(service_config{}));
}

// --- typed errors name the offending key path -------------------------------

void expect_config_error(const std::string& text, const std::string& path_substr) {
  try {
    (void)serving::parse_config(text);
    FAIL() << "accepted config with bad key near " << path_substr;
  } catch (const config_error& e) {
    EXPECT_NE(e.path().find(path_substr), std::string::npos)
        << "error path '" << e.path() << "' does not mention '" << path_substr << "'";
    EXPECT_NE(std::string(e.what()).find(path_substr), std::string::npos);
  }
}

TEST(config_errors, unknown_keys_are_rejected_by_path) {
  expect_config_error(R"({"typo_workers": 2})", "typo_workers");
  expect_config_error(R"({"engine": {"shard_count": 4}})", "engine.shard_count");
  expect_config_error(R"({"ga": {"island": {"migrantz": 1}}})", "ga.island.migrantz");
  expect_config_error(R"({"scheduler": {"policy": "drop"}})", "scheduler.policy");
}

TEST(config_errors, out_of_range_values_are_rejected_by_path) {
  expect_config_error(R"({"ga": {"elite_fraction": 1.5}})", "ga.elite_fraction");
  expect_config_error(R"({"ga": {"crossover_prob": -0.1}})", "ga.crossover_prob");
  expect_config_error(R"({"ga": {"population": 2}})", "ga.population");
  expect_config_error(R"({"workers": 0})", "workers");
  expect_config_error(R"({"engine": {"shards": 0}})", "engine.shards");
  expect_config_error(R"({"refresh": {"holdout_fraction": 0}})", "refresh.holdout_fraction");
  expect_config_error(R"({"scheduler": {"weights": {"lane": 0}}})", "scheduler.weights.lane");
  // Wrong types are config errors too, not bare json errors.
  expect_config_error(R"({"ga": {"generations": "many"}})", "ga.generations");
  expect_config_error(R"({"engine": "fast"})", "engine");
}

TEST(config_errors, islands_must_fit_the_population) {
  expect_config_error(R"({"ga": {"population": 8, "island": {"islands": 4}}})", "ga.island.islands");
}

TEST(config_errors, scenario_block_is_validated_by_path) {
  expect_config_error(R"({"scenario": {"residents": [{"name": ""}]}})",
                      "scenario.residents[0].name");
  expect_config_error(R"({"scenario": {"residents": [{"name": "a", "dram_gbps": -1}]}})",
                      "scenario.residents[0].dram_gbps");
  expect_config_error(
      R"({"scenario": {"residents": [{"name": "a"}, {"name": "a"}]}})", "scenario.residents");
  expect_config_error(R"({"scenario": {"interconnect_alpha": -0.5}})",
                      "scenario.interconnect_alpha");
  expect_config_error(R"({"scenario": {"thermal": {"throttle_c": 10, "ambient_c": 50}}})",
                      "scenario.thermal");
  expect_config_error(R"({"scenario": {"thermal": {"tau_z": 3}}})", "scenario.thermal.tau_z");
  expect_config_error(R"({"scenario": {"dvfs_cap": "high"}})", "scenario.dvfs_cap");
}

TEST(config_errors, load_config_names_the_missing_file) {
  try {
    (void)serving::load_config("/nonexistent/mapcq.json");
    FAIL() << "opened a nonexistent file";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/mapcq.json"), std::string::npos);
  }
}

// --- dotted-key overrides ---------------------------------------------------

TEST(config_override, dotted_keys_reach_nested_fields) {
  service_config cfg;
  serving::apply_override(cfg, "ga.generations=55");
  serving::apply_override(cfg, "ga.island.islands=2");
  serving::apply_override(cfg, "engine.eviction=lru");
  serving::apply_override(cfg, "scheduler.coalesce=false");
  EXPECT_EQ(cfg.ga.generations, 55u);
  EXPECT_EQ(cfg.ga.island.islands, 2u);
  EXPECT_EQ(cfg.service.engine.eviction, core::eviction_policy::lru);
  EXPECT_FALSE(cfg.service.scheduler.coalesce);
}

TEST(config_override, bad_overrides_throw_typed_errors) {
  service_config cfg;
  EXPECT_THROW(serving::apply_override(cfg, "ga.generations"), config_error);   // no '='
  EXPECT_THROW(serving::apply_override(cfg, "ga.nope=1"), config_error);        // unknown key
  EXPECT_THROW(serving::apply_override(cfg, "ga.population=2"), config_error);  // out of range
  EXPECT_THROW(serving::apply_override(cfg, "workers.x=1"), config_error);      // scalar cursor
  // A failed override leaves the config untouched.
  EXPECT_EQ(serving::dump_config(cfg), serving::dump_config(service_config{}));
}

// --- the checked-in default config ------------------------------------------

TEST(default_config_file, boots_a_service_bit_identical_to_defaults) {
  const char* src = std::getenv("MAPCQ_SOURCE_DIR");
  ASSERT_NE(src, nullptr) << "MAPCQ_SOURCE_DIR not set (run under ctest)";
  const service_config from_file =
      serving::load_config(std::string(src) + "/examples/configs/default.json");

  // The checked-in file IS the library defaults, byte for byte once dumped.
  EXPECT_EQ(serving::dump_config(from_file), serving::dump_config(service_config{}));

  const nn::network net = nn::build_simple_cnn();
  const soc::platform plat = soc::agx_xavier();
  const auto boot_and_map = [&](const service_config& cfg) {
    serving::mapping_service service{cfg.service};
    service.register_network(net);
    service.register_platform(plat);
    serving::mapping_request req;
    req.network = net.name;
    req.use_surrogate = false;
    req.ga = cfg.ga;
    req.ga.generations = 4;  // same tiny budget on both sides
    req.ga.population = 12;
    return service.map(req);
  };
  const serving::mapping_report a = boot_and_map(from_file);
  const serving::mapping_report b = boot_and_map(service_config{});

  ASSERT_FALSE(a.effective_config.empty());
  EXPECT_EQ(a.effective_config, b.effective_config);
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].objective, b.front[i].objective);
    EXPECT_EQ(a.front[i].avg_latency_ms, b.front[i].avg_latency_ms);
    EXPECT_EQ(a.front[i].avg_energy_mj, b.front[i].avg_energy_mj);
  }
  EXPECT_EQ(a.ours_energy_index, b.ours_energy_index);
  EXPECT_EQ(a.ours_latency_index, b.ours_latency_index);
}

TEST(default_config_file, effective_config_stamp_parses_back) {
  const nn::network net = nn::build_simple_cnn();
  const soc::platform plat = soc::agx_xavier();
  serving::service_options opt;
  opt.workers = 3;
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);
  serving::mapping_request req;
  req.network = net.name;
  req.use_surrogate = false;
  req.ga.generations = 2;
  req.ga.population = 8;
  const serving::mapping_report rep = service.map(req);

  const service_config stamped = serving::parse_config(rep.effective_config);
  EXPECT_EQ(stamped.service.workers, 3u);
  EXPECT_EQ(stamped.ga.generations, 2u);
  // The stamp records the *effective* engine sizing (0 = auto resolved).
  EXPECT_GE(stamped.service.engine.threads, 1u);
}

}  // namespace
