// Static -> dynamic transformation tests (paper eqs. 1-7, Fig. 2).

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/dynamic_transform.h"
#include "nn/models.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using core::configuration;

struct transform_fixture : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  std::vector<nn::partition_group> groups = nn::make_partition_groups(net);
  nn::ranked_network ranking{net, widths(), 1};

  std::vector<std::int64_t> widths() const {
    std::vector<std::int64_t> w;
    for (const auto& g : groups) w.push_back(g.width);
    return w;
  }

  configuration static_cfg() const { return core::make_static_configuration(net, plat); }
};

TEST_F(transform_fixture, plan_has_exit_step_per_stage) {
  const auto dyn = core::transform(net, groups, ranking, static_cfg(), plat);
  EXPECT_EQ(dyn.plan.stages(), plat.size());
  EXPECT_EQ(dyn.plan.groups(), groups.size() + 1);  // + exit head
  // Every stage's exit step carries classifier work.
  for (std::size_t i = 0; i < dyn.plan.stages(); ++i) {
    const auto& exit_step = dyn.plan.steps[i].back();
    EXPECT_EQ(exit_step.cost.kind, nn::layer_kind::classifier);
    EXPECT_GT(exit_step.cost.flops, 0.0);
  }
}

TEST_F(transform_fixture, static_config_gives_full_final_quality) {
  const auto dyn = core::transform(net, groups, ranking, static_cfg(), plat);
  ASSERT_EQ(dyn.stage_quality.size(), 3u);
  EXPECT_NEAR(dyn.stage_quality.back(), 1.0, 1e-9);   // last stage sees all
  EXPECT_LT(dyn.stage_quality[0], dyn.stage_quality[2]);
  EXPECT_NEAR(dyn.exit_visible_frac.back(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(dyn.fmap_reuse_ratio, 1.0);
}

TEST_F(transform_fixture, transfers_only_from_earlier_stages) {
  const auto dyn = core::transform(net, groups, ranking, static_cfg(), plat);
  for (std::size_t i = 0; i < dyn.plan.stages(); ++i)
    for (const auto& step : dyn.plan.steps[i])
      for (const auto& t : step.incoming) EXPECT_LT(t.from_stage, i);
  // Stage 1 receives nothing.
  for (const auto& step : dyn.plan.steps[0]) EXPECT_TRUE(step.incoming.empty());
}

TEST_F(transform_fixture, no_forwarding_means_no_transfers_and_less_quality) {
  configuration c = static_cfg();
  for (auto& row : c.forward) row.assign(row.size(), false);
  const auto dyn = core::transform(net, groups, ranking, c, plat);
  EXPECT_DOUBLE_EQ(dyn.plan.fmap_traffic_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(dyn.stored_fmap_bytes, 0.0);
  EXPECT_DOUBLE_EQ(dyn.fmap_reuse_ratio, 0.0);
  const auto full = core::transform(net, groups, ranking, static_cfg(), plat);
  EXPECT_LT(dyn.stage_quality.back(), full.stage_quality.back());
}

TEST_F(transform_fixture, zero_width_stage_has_empty_body_steps) {
  configuration c = static_cfg();
  for (auto& row : c.partition) row = {0.5, 0.0, 0.5};
  const auto dyn = core::transform(net, groups, ranking, c, plat);
  for (std::size_t g = 0; g < groups.size(); ++g)
    EXPECT_TRUE(dyn.plan.steps[1][g].cost.empty());
}

TEST_F(transform_fixture, stored_bytes_accumulate_forwarded_slices) {
  const auto dyn = core::transform(net, groups, ranking, static_cfg(), plat);
  double expect = 0.0;
  for (const auto& g : groups) expect += 2.0 * g.output_bytes(net, 1.0 / 3.0);
  EXPECT_NEAR(dyn.stored_fmap_bytes, expect, 1e-6);
}

TEST_F(transform_fixture, flops_split_across_stages_bounded_by_full) {
  const auto dyn = core::transform(net, groups, ranking, static_cfg(), plat);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    double split_flops = 0.0;
    for (std::size_t i = 0; i < dyn.plan.stages(); ++i)
      split_flops += dyn.plan.steps[i][g].cost.flops;
    double full = 0.0;
    for (const std::size_t m : groups[g].members) full += net.layers[m].flops();
    // Partitioned total never exceeds the unpartitioned layer cost.
    EXPECT_LE(split_flops, full * (1.0 + 1e-9));
    EXPECT_GT(split_flops, 0.0);
  }
}

TEST_F(transform_fixture, reuse_increases_later_stage_input_cost) {
  configuration all = static_cfg();
  configuration none = static_cfg();
  for (auto& row : none.forward) row.assign(row.size(), false);
  const auto dyn_all = core::transform(net, groups, ranking, all, plat);
  const auto dyn_none = core::transform(net, groups, ranking, none, plat);
  // With reuse, stage 3 consumes more input features -> more flops.
  double flops_all = 0.0;
  double flops_none = 0.0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    flops_all += dyn_all.plan.steps[2][g].cost.flops;
    flops_none += dyn_none.plan.steps[2][g].cost.flops;
  }
  EXPECT_GT(flops_all, flops_none);
}

TEST_F(transform_fixture, reorder_flag_changes_quality) {
  configuration c = static_cfg();
  // Make stage shares unequal so ranking matters.
  for (auto& row : c.partition) row = {0.5, 0.25, 0.25};
  for (auto& row : c.forward) row.assign(row.size(), false);
  const auto ranked = core::transform(net, groups, ranking, c, plat, true);
  const auto unranked = core::transform(net, groups, ranking, c, plat, false);
  // Stage 1 holds the top-ranked half: reordering must help it.
  EXPECT_GT(ranked.stage_quality[0], unranked.stage_quality[0]);
}

TEST_F(transform_fixture, rejects_mismatched_inputs) {
  const auto c = static_cfg();
  const std::vector<nn::partition_group> wrong(groups.begin(), groups.end() - 1);
  EXPECT_THROW((void)core::transform(net, wrong, ranking, c, plat), std::invalid_argument);
}

TEST_F(transform_fixture, exit_head_receives_final_group_transfers) {
  const auto dyn = core::transform(net, groups, ranking, static_cfg(), plat);
  // Stage 3's exit head pulls the final-group slices of stages 1 and 2.
  const auto& exit_step = dyn.plan.steps[2].back();
  EXPECT_EQ(exit_step.incoming.size(), 2u);
}

}  // namespace
