#include "nn/channel_ranking.h"

#include <gtest/gtest.h>

#include "nn/models.h"

namespace {

using namespace mapcq::nn;

TEST(importance_profile, coverage_bounds) {
  const importance_profile p{64, 1.0, 7};
  EXPECT_DOUBLE_EQ(p.coverage_ranked(0.0), 0.0);
  EXPECT_NEAR(p.coverage_ranked(1.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.coverage_unranked(0.0), 0.0);
  EXPECT_NEAR(p.coverage_unranked(1.0), 1.0, 1e-12);
}

TEST(importance_profile, ranked_coverage_concave_and_above_linear) {
  const importance_profile p{128, 1.2, 11};
  double prev = 0.0;
  double prev_gain = 1e9;
  for (double f = 0.1; f <= 1.0; f += 0.1) {
    const double c = p.coverage_ranked(f);
    EXPECT_GT(c, prev);                  // monotone
    EXPECT_GE(c + 1e-12, f * 0.999);     // above the diagonal
    const double gain = c - prev;
    EXPECT_LE(gain, prev_gain + 1e-9);   // diminishing returns
    prev = c;
    prev_gain = gain;
  }
}

TEST(importance_profile, unranked_coverage_roughly_linear) {
  const importance_profile p{4096, 1.0, 13};
  for (double f = 0.2; f < 1.0; f += 0.2)
    EXPECT_NEAR(p.coverage_unranked(f), f, 0.08);
}

TEST(importance_profile, higher_skew_more_concentrated) {
  const importance_profile lo{256, 0.3, 17};
  const importance_profile hi{256, 2.0, 17};
  EXPECT_GT(hi.coverage_ranked(0.25), lo.coverage_ranked(0.25));
}

TEST(importance_profile, deterministic_in_seed) {
  const importance_profile a{64, 1.0, 23};
  const importance_profile b{64, 1.0, 23};
  EXPECT_EQ(a.ranked_scores(), b.ranked_scores());
}

TEST(importance_profile, scores_descend_and_sum_to_one) {
  const importance_profile p{100, 1.5, 29};
  double sum = 0.0;
  double prev = 1e9;
  for (const double s : p.ranked_scores()) {
    EXPECT_LE(s, prev);
    prev = s;
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(importance_profile, rejects_bad_args) {
  EXPECT_THROW((importance_profile{0, 1.0, 1}), std::invalid_argument);
  EXPECT_THROW((importance_profile{8, -1.0, 1}), std::invalid_argument);
}

TEST(visible_importance, full_visibility_is_one) {
  const importance_profile p{64, 1.0, 31};
  const std::vector<double> fracs = {0.4, 0.3, 0.3};
  const std::vector<bool> fwd = {true, true, false};
  EXPECT_NEAR(visible_importance(p, fracs, fwd, 2), 1.0, 1e-9);
}

TEST(visible_importance, own_slice_only_for_stage_one) {
  const importance_profile p{64, 1.0, 37};
  const std::vector<double> fracs = {0.5, 0.5, 0.0};
  const std::vector<bool> fwd = {false, false, false};
  EXPECT_NEAR(visible_importance(p, fracs, fwd, 0), p.coverage_ranked(0.5), 1e-12);
}

TEST(visible_importance, earlier_slices_worth_more) {
  // Stage 1 owns the top-ranked slice; with equal fractions its share
  // exceeds stage 2's own share.
  const importance_profile p{64, 1.5, 41};
  const std::vector<double> fracs = {0.5, 0.5};
  const std::vector<bool> fwd = {false, false};
  const double s1 = visible_importance(p, fracs, fwd, 0);
  const double s2 = visible_importance(p, fracs, fwd, 1);
  EXPECT_GT(s1, s2);
  EXPECT_NEAR(s1 + s2, 1.0, 1e-9);
}

TEST(visible_importance, forwarding_increases_share) {
  const importance_profile p{64, 1.0, 43};
  const std::vector<double> fracs = {0.4, 0.3, 0.3};
  const std::vector<bool> none = {false, false, false};
  const std::vector<bool> some = {true, false, false};
  EXPECT_GT(visible_importance(p, fracs, some, 2), visible_importance(p, fracs, none, 2));
}

TEST(visible_importance, unranked_mode_lower_for_stage_one) {
  const importance_profile p{256, 1.5, 47};
  const std::vector<double> fracs = {0.3, 0.7};
  const std::vector<bool> fwd = {false};
  EXPECT_GT(visible_importance(p, fracs, fwd, 0, true),
            visible_importance(p, fracs, fwd, 0, false));
}

TEST(visible_importance, rejects_bad_stage) {
  const importance_profile p{8, 1.0, 53};
  const std::vector<double> fracs = {1.0};
  const std::vector<bool> fwd = {};
  EXPECT_THROW((void)visible_importance(p, fracs, fwd, 1), std::invalid_argument);
}

TEST(ranked_network, profiles_match_group_widths) {
  const network net = build_simple_cnn();
  const std::vector<std::int64_t> widths = {32, 32, 64, 64, 128, 128};
  const ranked_network rn{net, widths};
  ASSERT_EQ(rn.groups(), widths.size());
  for (std::size_t g = 0; g < widths.size(); ++g)
    EXPECT_EQ(rn.profile(g).width(), widths[g]);
  EXPECT_THROW((void)rn.profile(99), std::out_of_range);
}

TEST(ranked_network, deterministic_across_builds) {
  const network net = build_simple_cnn();
  const std::vector<std::int64_t> widths = {32, 64};
  const ranked_network a{net, widths, 5};
  const ranked_network b{net, widths, 5};
  EXPECT_EQ(a.profile(0).ranked_scores(), b.profile(0).ranked_scores());
}

// Property sweep: coverage stays within [0,1] and monotone for many
// (width, skew) combinations.
class coverage_property : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(coverage_property, monotone_within_unit_interval) {
  const auto [width, skew] = GetParam();
  const importance_profile p{width, skew, 61};
  double prev = -1e-12;
  for (double f = 0.0; f <= 1.0; f += 0.05) {
    const double c = p.coverage_ranked(f);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(widths_and_skews, coverage_property,
                         ::testing::Combine(::testing::Values(2, 6, 64, 512),
                                            ::testing::Values(0.0, 0.5, 1.0, 2.5)));

}  // namespace
