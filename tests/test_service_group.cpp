// service_group tests: deterministic consistent-hash routing, session
// affinity (one session -> one shard, warm reuse), registration replay
// across reshards, reshard-with-restore landing every session on exactly
// one shard with bit-identical warm reports, and group stats aggregation
// with carry-over semantics.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "nn/models.h"
#include "serving/service_group.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using serving::group_options;
using serving::group_stats;
using serving::mapping_report;
using serving::mapping_request;
using serving::service_group;
using serving::service_options;

class group_dir {
 public:
  explicit group_dir(const std::string& name) : path_("/tmp/mapcq_group_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~group_dir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

service_options sharded_service(const std::string& dir) {
  service_options opt;
  opt.engine.threads = 2;
  opt.workers = 1;
  opt.snapshot.directory = dir;
  opt.snapshot.spill_on_evict = true;
  return opt;
}

mapping_request tiny_request(const std::string& network, std::uint64_t ranking_seed = 0) {
  mapping_request req;
  req.network = network;
  req.use_surrogate = false;
  req.ga.generations = 4;
  req.ga.population = 12;
  req.ranking_seed = ranking_seed;  // distinct seeds -> distinct sessions
  return req;
}

void expect_identical_fronts(const mapping_report& a, const mapping_report& b) {
  ASSERT_EQ(a.front.size(), b.front.size());
  EXPECT_EQ(a.ours_latency_index, b.ours_latency_index);
  EXPECT_EQ(a.ours_energy_index, b.ours_energy_index);
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_TRUE(a.front[i].config == b.front[i].config);
    EXPECT_EQ(a.front[i].objective, b.front[i].objective);
    EXPECT_EQ(a.front[i].avg_latency_ms, b.front[i].avg_latency_ms);
    EXPECT_EQ(a.front[i].avg_energy_mj, b.front[i].avg_energy_mj);
  }
}

struct group_fixture : ::testing::Test {
  nn::network cnn = nn::build_simple_cnn();
  nn::network mobile = nn::build_mobilenet_cifar();
  soc::platform plat = soc::agx_xavier();

  void register_all(service_group& group) {
    group.register_network(cnn);
    group.register_network(mobile);
    group.register_platform(plat);
  }
};

TEST_F(group_fixture, constructor_rejects_degenerate_topologies) {
  EXPECT_THROW(service_group(group_options{0, 32}), std::invalid_argument);
  EXPECT_THROW(service_group(group_options{2, 0}), std::invalid_argument);
  service_group ok{group_options{1, 1}};
  EXPECT_EQ(ok.shard_count(), 1u);
}

TEST_F(group_fixture, routing_is_deterministic_and_session_sticky) {
  group_dir dir{"routing"};
  service_group a{group_options{3, 32}, sharded_service(dir.path())};
  service_group b{group_options{3, 32}, sharded_service(dir.path())};
  register_all(a);
  register_all(b);

  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const mapping_request req = tiny_request(cnn.name, seed);
    const std::size_t shard = a.shard_index_for(req);
    EXPECT_LT(shard, 3u);
    // Same ring in any process/instance: both groups agree.
    EXPECT_EQ(shard, b.shard_index_for(req));
    // Stable across repeated calls.
    EXPECT_EQ(shard, a.shard_index_for(req));
  }
}

TEST_F(group_fixture, one_session_lands_on_one_shard_and_reuses_its_cache) {
  group_dir dir{"sticky"};
  service_group group{group_options{3, 32}, sharded_service(dir.path())};
  register_all(group);

  const mapping_request req = tiny_request(cnn.name);
  const mapping_report cold = group.map(req);
  const mapping_report warm = group.map(req);
  EXPECT_GT(cold.search_cache.misses, 0u);
  EXPECT_EQ(warm.search_cache.misses, 0u);  // same shard, same session, warm
  expect_identical_fronts(cold, warm);

  // Exactly one shard holds a session; the routed index agrees with it.
  const std::size_t routed = group.shard_index_for(req);
  for (std::size_t i = 0; i < group.shard_count(); ++i)
    EXPECT_EQ(group.shard(i).session_count(), i == routed ? 1u : 0u);
}

TEST_F(group_fixture, submit_routes_like_map_and_aggregates_scheduler_stats) {
  group_dir dir{"submit"};
  service_group group{group_options{2, 32}, sharded_service(dir.path())};
  register_all(group);

  auto f1 = group.submit(tiny_request(cnn.name, 1));
  auto f2 = group.submit(tiny_request(mobile.name, 2));
  (void)f1.get();
  (void)f2.get();

  const group_stats stats = group.stats();
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_EQ(stats.scheduler.submitted, 2u);
  EXPECT_EQ(stats.scheduler.completed, 2u);
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_GT(stats.engines.misses, 0u);
  EXPECT_GT(stats.engines.cache_bytes, 0u);
}

TEST_F(group_fixture, reshard_requires_a_snapshot_directory) {
  service_group group{group_options{2, 32}};  // no directory configured
  EXPECT_THROW(group.reshard(3), std::logic_error);
  EXPECT_THROW(group.reshard(0), std::invalid_argument);
}

TEST_F(group_fixture, reshard_restores_every_session_on_exactly_one_shard) {
  group_dir dir{"reshard"};
  service_group group{group_options{2, 32}, sharded_service(dir.path())};
  register_all(group);

  // Several distinct sessions spread over the 2-shard ring.
  std::vector<mapping_request> reqs;
  std::vector<mapping_report> cold;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    reqs.push_back(tiny_request(seed % 2 == 0 ? cnn.name : mobile.name, seed));
    cold.push_back(group.map(reqs.back()));
  }

  group.reshard(3);
  EXPECT_EQ(group.shard_count(), 3u);
  EXPECT_EQ(group.stats().reshards, 1u);
  // The new topology starts empty; sessions restore lazily on first touch.
  EXPECT_EQ(group.stats().sessions, 0u);

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const mapping_report warm = group.map(reqs[i]);
    // Warm start from the spilled snapshot: zero evaluator runs and a
    // bit-identical report, even though the shard (and possibly shard
    // count routing) changed.
    EXPECT_EQ(warm.search_cache.misses, 0u) << "request " << i;
    EXPECT_EQ(warm.validation_cache.misses, 0u) << "request " << i;
    expect_identical_fronts(cold[i], warm);
    EXPECT_EQ(warm.session_key, cold[i].session_key);
    // The report's config stamp must not leak the topology change.
    EXPECT_EQ(warm.effective_config, cold[i].effective_config);
  }

  // Every session lives on exactly the shard the new ring routes it to.
  const group_stats after = group.stats();
  EXPECT_EQ(after.sessions, reqs.size());
  EXPECT_EQ(after.sessions_restored, reqs.size());
  EXPECT_EQ(after.restore_failures, 0u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const std::size_t routed = group.shard_index_for(reqs[i]);
    std::size_t holders = 0;
    for (std::size_t s = 0; s < group.shard_count(); ++s) {
      for (const std::string& key : group.shard(s).session_keys()) {
        if (key == cold[i].session_key) {
          ++holders;
          EXPECT_EQ(s, routed) << "session restored on a shard the ring does not route to";
        }
      }
    }
    EXPECT_EQ(holders, 1u) << "session " << i << " held by " << holders << " shards";
  }

  // Monotonic counters from the retired generation carried over.
  EXPECT_GE(after.sessions_spilled, reqs.size());
  EXPECT_EQ(after.spill_failures, 0u);
}

TEST_F(group_fixture, reshard_down_also_restores_warm) {
  group_dir dir{"reshard_down"};
  service_group group{group_options{3, 32}, sharded_service(dir.path())};
  register_all(group);

  const mapping_request req = tiny_request(cnn.name, 7);
  const mapping_report cold = group.map(req);
  group.reshard(1);
  const mapping_report warm = group.map(req);
  EXPECT_EQ(warm.search_cache.misses, 0u);
  expect_identical_fronts(cold, warm);
  EXPECT_EQ(group.shard_index_for(req), 0u);  // only one shard left
}

TEST_F(group_fixture, registration_replay_preserves_generations_across_reshard) {
  group_dir dir{"generations"};
  service_group group{group_options{2, 32}, sharded_service(dir.path())};
  register_all(group);
  // Re-register the cnn (generation bump) and serve against the new one:
  // the session key embeds generation 2.
  group.register_network(cnn);
  const mapping_request req = tiny_request(cnn.name);
  const mapping_report cold = group.map(req);

  group.reshard(3);
  const mapping_report warm = group.map(req);
  // Replay reproduced the bumped generation, so the key (and snapshot
  // file) still match and the session restores warm.
  EXPECT_EQ(warm.session_key, cold.session_key);
  EXPECT_EQ(warm.search_cache.misses, 0u);
  expect_identical_fronts(cold, warm);
}

}  // namespace
