// GA engine and end-to-end optimizer tests (kept small: tiny populations).

#include <gtest/gtest.h>

#include "core/evolutionary.h"
#include "core/optimizer.h"
#include "core/pareto.h"
#include "nn/models.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using core::evaluator;
using core::evolve;
using core::ga_options;
using core::ga_result;
using core::search_space;

ga_options tiny_ga(std::uint64_t seed = 1) {
  ga_options opt;
  opt.generations = 6;
  opt.population = 12;
  opt.threads = 4;
  opt.seed = seed;
  return opt;
}

struct ga_fixture : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  search_space space{net, plat};
  evaluator eval{net, plat, {}};
};

TEST_F(ga_fixture, produces_feasible_archive) {
  const ga_result res = evolve(space, eval, tiny_ga());
  EXPECT_FALSE(res.archive.empty());
  EXPECT_EQ(res.total_evaluations, 6u * 12u);
  EXPECT_EQ(res.history.size(), 6u);
  for (const auto& e : res.archive) EXPECT_TRUE(e.feasible);
}

TEST_F(ga_fixture, best_has_minimal_objective) {
  const ga_result res = evolve(space, eval, tiny_ga());
  for (const auto& e : res.archive) EXPECT_LE(res.best().objective, e.objective);
}

TEST_F(ga_fixture, pareto_members_are_nondominated) {
  const ga_result res = evolve(space, eval, tiny_ga());
  ASSERT_FALSE(res.pareto.empty());
  for (const std::size_t i : res.pareto) {
    const auto& a = res.archive[i];
    for (const std::size_t j : res.pareto) {
      if (i == j) continue;
      const auto& b = res.archive[j];
      const std::vector<double> pa = {a.avg_latency_ms, a.avg_energy_mj, -a.accuracy_pct};
      const std::vector<double> pb = {b.avg_latency_ms, b.avg_energy_mj, -b.accuracy_pct};
      EXPECT_FALSE(core::dominates(pb, pa));
    }
  }
}

TEST_F(ga_fixture, deterministic_for_same_seed) {
  const ga_result a = evolve(space, eval, tiny_ga(5));
  const ga_result b = evolve(space, eval, tiny_ga(5));
  ASSERT_EQ(a.archive.size(), b.archive.size());
  EXPECT_DOUBLE_EQ(a.best().objective, b.best().objective);
}

TEST_F(ga_fixture, objective_improves_over_generations) {
  ga_options opt = tiny_ga(7);
  opt.generations = 12;
  const ga_result res = evolve(space, eval, opt);
  const double first = res.history.front().best_objective;
  const double last = res.history.back().best_objective;
  EXPECT_LE(last, first + 1e-12);
}

TEST_F(ga_fixture, objective_only_mode_runs) {
  ga_options opt = tiny_ga(9);
  opt.selection = core::selection_mode::objective_only;
  const ga_result res = evolve(space, eval, opt);
  EXPECT_FALSE(res.archive.empty());
}

TEST_F(ga_fixture, static_seed_keeps_high_accuracy_corner) {
  const ga_result res = evolve(space, eval, tiny_ga(11));
  double best_acc = 0.0;
  for (const auto& e : res.archive) best_acc = std::max(best_acc, e.accuracy_pct);
  // The seeded static configuration guarantees a near-ceiling entry.
  EXPECT_GT(best_acc, net.base_accuracy - 1.0);
}

TEST_F(ga_fixture, rejects_bad_options) {
  ga_options opt = tiny_ga();
  opt.population = 2;
  EXPECT_THROW((void)evolve(space, eval, opt), std::invalid_argument);
  opt = tiny_ga();
  opt.elite_fraction = 1.5;
  EXPECT_THROW((void)evolve(space, eval, opt), std::invalid_argument);
}

TEST_F(ga_fixture, constrained_run_respects_reuse_cap) {
  core::evaluator_options eopt;
  eopt.limits.fmap_reuse_cap = 0.5;
  const evaluator capped{net, plat, eopt};
  const ga_result res = evolve(space, capped, tiny_ga(13));
  for (const auto& e : res.archive) EXPECT_LE(e.fmap_reuse_pct, 50.0 + 1e-6);
}

// --- island model ----------------------------------------------------------

void expect_same_result(const ga_result& a, const ga_result& b) {
  ASSERT_EQ(a.archive.size(), b.archive.size());
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_EQ(a.pareto, b.pareto);
  for (std::size_t i = 0; i < a.archive.size(); ++i) {
    EXPECT_TRUE(a.archive[i].config == b.archive[i].config);
    EXPECT_EQ(a.archive[i].objective, b.archive[i].objective);
  }
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t g = 0; g < a.history.size(); ++g) {
    EXPECT_EQ(a.history[g].best_objective, b.history[g].best_objective);
    EXPECT_EQ(a.history[g].mean_objective, b.history[g].mean_objective);
    EXPECT_EQ(a.history[g].feasible, b.history[g].feasible);
  }
}

TEST_F(ga_fixture, one_island_is_the_classic_ga) {
  // islands = 1 must take the exact same deterministic path as a default
  // run: same archive, same trajectory, same Pareto front. (The K = 1
  // bit-identity against the pre-island implementation is additionally
  // checked by bench/island_scaling's warm-rerun property.)
  ga_options explicit_one = tiny_ga(5);
  explicit_one.island.islands = 1;
  explicit_one.island.migration_interval = 3;  // irrelevant at K = 1
  const ga_result a = evolve(space, eval, tiny_ga(5));
  const ga_result b = evolve(space, eval, explicit_one);
  EXPECT_EQ(a.islands, 1u);
  expect_same_result(a, b);
}

TEST_F(ga_fixture, island_run_is_reproducible_and_well_formed) {
  ga_options opt = tiny_ga(21);
  opt.population = 16;  // 4 islands x 4 members
  opt.island.islands = 4;
  opt.island.migration_interval = 2;
  opt.island.migrants = 1;

  const ga_result a = evolve(space, eval, opt);
  const ga_result b = evolve(space, eval, opt);
  EXPECT_EQ(a.islands, 4u);
  expect_same_result(a, b);

  EXPECT_EQ(a.total_evaluations, opt.generations * opt.population);
  EXPECT_EQ(a.history.size(), opt.generations);
  EXPECT_EQ(a.cache.lookups(), a.total_evaluations);
  for (const auto& e : a.archive) EXPECT_TRUE(e.feasible);
  for (const std::size_t i : a.pareto) EXPECT_LT(i, a.archive.size());
  for (const auto& e : a.archive) EXPECT_LE(a.best().objective, e.objective);
}

TEST_F(ga_fixture, islands_share_one_engine_cache) {
  // A warm engine replays an identical island search purely from cache.
  ga_options opt = tiny_ga(33);
  opt.population = 16;
  opt.island.islands = 2;
  opt.island.migration_interval = 2;

  core::engine_options eopt;
  eopt.threads = 4;
  core::evaluation_engine engine{eval, eopt};
  const ga_result cold = evolve(space, engine, opt);
  EXPECT_GT(cold.cache.misses, 0u);
  const ga_result warm = evolve(space, engine, opt);
  expect_same_result(cold, warm);
  EXPECT_EQ(warm.cache.misses, 0u);
}

TEST_F(ga_fixture, rejects_island_counts_that_starve_islands) {
  ga_options opt = tiny_ga();
  opt.population = 12;
  opt.island.islands = 4;  // 3 members per island: too small to breed
  EXPECT_THROW((void)evolve(space, eval, opt), std::invalid_argument);
}

TEST(optimizer, end_to_end_small_run) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  core::optimizer_options opt;
  opt.ga = tiny_ga(17);
  opt.bench.samples = 800;
  opt.gbt.n_trees = 40;
  core::optimizer mapper{net, plat, opt};
  const auto res = mapper.run();

  EXPECT_FALSE(res.validated.empty());
  EXPECT_TRUE(res.surrogate_fidelity.has_value());
  EXPECT_LT(res.surrogate_fidelity->latency_mape, 25.0);
  EXPECT_LT(res.ours_latency_index, res.validated.size());
  EXPECT_LT(res.ours_energy_index, res.validated.size());
  // The energy pick never costs more energy than the latency pick.
  EXPECT_LE(res.ours_energy().avg_energy_mj, res.ours_latency().avg_energy_mj + 1e-9);
  // Slack rule: picks stay near the best validated accuracy.
  double best_acc = 0.0;
  for (const auto& e : res.validated) best_acc = std::max(best_acc, e.accuracy_pct);
  EXPECT_GE(res.ours_energy().accuracy_pct, best_acc - opt.ours_e_accuracy_slack - 1e-9);
}

TEST(optimizer, analytic_mode_skips_surrogate) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  core::optimizer_options opt;
  opt.ga = tiny_ga(19);
  opt.use_surrogate = false;
  core::optimizer mapper{net, plat, opt};
  const auto res = mapper.run();
  EXPECT_FALSE(res.surrogate_fidelity.has_value());
  EXPECT_FALSE(res.validated.empty());
}

// Legacy knob the serving registry refuses: a caller-trained predictor
// plugged straight into eval.predictor must still drive the search (the
// shim falls back to the pre-serving per-phase flow).
TEST(optimizer, honors_caller_supplied_predictor) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  const std::vector<const nn::network*> nets = {&net};
  surrogate::benchmark_options bopt;
  bopt.samples = 600;
  const auto parts = surrogate::split(surrogate::generate_benchmark(nets, plat, bopt), 0.8, 1);
  surrogate::gbt_params gopt;
  gopt.n_trees = 20;
  const surrogate::hw_predictor predictor{parts.train, gopt};

  core::optimizer_options opt;
  opt.ga = tiny_ga(29);
  opt.use_surrogate = false;  // search on the *caller's* predictor instead
  opt.eval.predictor = &predictor;
  core::optimizer mapper{net, plat, opt};
  const auto res = mapper.run();
  EXPECT_FALSE(res.validated.empty());
  EXPECT_FALSE(res.surrogate_fidelity.has_value());
  EXPECT_LT(res.ours_energy_index, res.validated.size());
}

// Regression for the search/validation cache split: the shim routes both
// phases through one serving session, so an analytic search's Pareto picks
// -- all evaluated during the search itself -- must validate as pure
// cross-phase cache hits, not as a fresh engine's misses.
TEST(optimizer, analytic_run_reports_cross_phase_cache_continuity) {
  const auto net = nn::build_simple_cnn();
  const auto plat = soc::agx_xavier();
  core::optimizer_options opt;
  opt.ga = tiny_ga(23);
  opt.use_surrogate = false;
  core::optimizer mapper{net, plat, opt};
  const auto res = mapper.run();

  EXPECT_GT(res.validation_cache.hits, 0u);
  EXPECT_EQ(res.validation_cache.misses, 0u);
  EXPECT_EQ(res.validation_cache.hits + res.validation_cache.dedup, res.validated.size());

  // The session also persists across run() calls: a rerun at the same seed
  // revisits only cached candidates and reproduces the result exactly.
  const auto rerun = mapper.run();
  EXPECT_EQ(rerun.search.cache.misses, 0u);
  EXPECT_EQ(rerun.validated.size(), res.validated.size());
  EXPECT_EQ(rerun.ours_energy().objective, res.ours_energy().objective);
}

}  // namespace
