// Latency/energy roofline model, stage-plan structure and characterization
// edge-case tests.

#include <gtest/gtest.h>

#include <stdexcept>

#include "perf/characterizer.h"
#include "perf/energy_model.h"
#include "perf/latency_model.h"
#include "perf/work.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;
using perf::model_options;
using perf::sublayer_cost;

sublayer_cost compute_bound_cost() {
  sublayer_cost c;
  c.kind = nn::layer_kind::conv2d;
  c.flops = 1e9;
  c.weight_bytes = 1e3;
  c.in_bytes = 1e3;
  c.out_bytes = 1e3;
  c.width_frac = 1.0;
  return c;
}

sublayer_cost memory_bound_cost() {
  sublayer_cost c;
  c.kind = nn::layer_kind::norm;
  c.flops = 1e3;
  c.weight_bytes = 0.0;
  c.in_bytes = 5e7;
  c.out_bytes = 5e7;
  c.width_frac = 1.0;
  return c;
}

TEST(latency_model, empty_cost_is_free) {
  const auto plat = soc::agx_xavier();
  EXPECT_DOUBLE_EQ(perf::sublayer_latency_ms({}, plat.unit(0), 0), 0.0);
}

TEST(latency_model, compute_bound_matches_roofline) {
  const auto plat = soc::agx_xavier();
  const auto& gpu = plat.unit(0);
  const auto c = compute_bound_cost();
  const std::size_t max = gpu.dvfs.max_level();
  const double expected =
      gpu.launch_overhead_ms + c.flops / (gpu.sustained_gflops(c.kind, 1.0, max) * 1e6);
  EXPECT_NEAR(perf::sublayer_latency_ms(c, gpu, max), expected, 1e-9);
}

TEST(latency_model, memory_bound_matches_bandwidth) {
  const auto plat = soc::agx_xavier();
  const auto& gpu = plat.unit(0);
  const auto c = memory_bound_cost();
  const std::size_t max = gpu.dvfs.max_level();
  const double expected = gpu.launch_overhead_ms + c.moved_bytes() / (gpu.mem_bandwidth_gbps * 1e6);
  EXPECT_NEAR(perf::sublayer_latency_ms(c, gpu, max), expected, 1e-9);
}

TEST(latency_model, lower_dvfs_slower_compute) {
  const auto plat = soc::agx_xavier();
  const auto& gpu = plat.unit(0);
  const auto c = compute_bound_cost();
  EXPECT_GT(perf::sublayer_latency_ms(c, gpu, 0),
            perf::sublayer_latency_ms(c, gpu, gpu.dvfs.max_level()));
}

TEST(latency_model, contention_slows_memory_bound) {
  const auto plat = soc::agx_xavier();
  const auto& gpu = plat.unit(0);
  const auto c = memory_bound_cost();
  const std::size_t max = gpu.dvfs.max_level();
  const double alone = perf::sublayer_latency_ms(c, gpu, max, 1);
  const double shared = perf::sublayer_latency_ms(c, gpu, max, 3);
  EXPECT_GT(shared, alone);
  model_options off;
  off.enable_contention = false;
  EXPECT_DOUBLE_EQ(perf::sublayer_latency_ms(c, gpu, max, 3, off), alone);
}

TEST(latency_model, narrow_slice_pays_occupancy) {
  const auto plat = soc::agx_xavier();
  const auto& gpu = plat.unit(0);
  auto full = compute_bound_cost();
  auto half = full;
  half.flops *= 0.5;
  half.width_frac = 0.5;
  const std::size_t max = gpu.dvfs.max_level();
  // Half the work at lower occupancy: more than half the full latency.
  EXPECT_GT(perf::sublayer_latency_ms(half, gpu, max),
            0.5 * perf::sublayer_latency_ms(full, gpu, max));
}

TEST(energy_model, energy_is_latency_times_power) {
  const auto plat = soc::agx_xavier();
  const auto& dla = plat.unit(1);
  const auto c = compute_bound_cost();
  const std::size_t max = dla.dvfs.max_level();
  const double tau = perf::sublayer_latency_ms(c, dla, max);
  EXPECT_NEAR(perf::sublayer_energy_mj(c, dla, max), tau * dla.power_w(c.kind, max), 1e-9);
}

TEST(energy_model, empty_cost_free) {
  const auto plat = soc::agx_xavier();
  EXPECT_DOUBLE_EQ(perf::sublayer_energy_mj({}, plat.unit(0), 0), 0.0);
}

TEST(energy_model, energy_for_latency_helper) {
  const auto plat = soc::agx_xavier();
  const auto& gpu = plat.unit(0);
  const std::size_t max = gpu.dvfs.max_level();
  EXPECT_NEAR(perf::energy_for_latency_mj(2.0, nn::layer_kind::conv2d, gpu, max),
              2.0 * gpu.power_w(nn::layer_kind::conv2d, max), 1e-12);
  EXPECT_DOUBLE_EQ(perf::energy_for_latency_mj(0.0, nn::layer_kind::conv2d, gpu, max), 0.0);
}

TEST(energy_model, dla_more_efficient_than_gpu_per_joule) {
  const auto plat = soc::agx_xavier();
  const auto c = compute_bound_cost();
  const double e_gpu =
      perf::sublayer_energy_mj(c, plat.unit(0), plat.unit(0).dvfs.max_level());
  const double e_dla =
      perf::sublayer_energy_mj(c, plat.unit(1), plat.unit(1).dvfs.max_level());
  EXPECT_LT(e_dla, e_gpu);  // the whole premise of the paper
}

TEST(stage_plan, validate_accepts_wellformed) {
  perf::stage_plan plan;
  plan.steps.assign(2, std::vector<perf::stage_step>(3));
  plan.steps[1][1].incoming.push_back({0, 100.0});
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0, 0};
  EXPECT_NO_THROW(plan.validate(3));
}

TEST(stage_plan, validate_rejects_duplicate_cu) {
  perf::stage_plan plan;
  plan.steps.assign(2, std::vector<perf::stage_step>(1));
  plan.cu_of_stage = {1, 1};
  plan.dvfs_level = {0, 0, 0};
  EXPECT_THROW(plan.validate(3), std::logic_error);
}

TEST(stage_plan, validate_rejects_forward_reference) {
  perf::stage_plan plan;
  plan.steps.assign(2, std::vector<perf::stage_step>(1));
  plan.steps[0][0].incoming.push_back({1, 10.0});  // from a LATER stage
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0, 0};
  EXPECT_THROW(plan.validate(3), std::logic_error);
}

TEST(stage_plan, validate_rejects_ragged_grid) {
  perf::stage_plan plan;
  plan.steps.resize(2);
  plan.steps[0].resize(3);
  plan.steps[1].resize(2);
  plan.cu_of_stage = {0, 1};
  plan.dvfs_level = {0, 0};
  EXPECT_THROW(plan.validate(2), std::logic_error);
}

TEST(stage_plan, traffic_sums_incoming) {
  perf::stage_plan plan;
  plan.steps.assign(3, std::vector<perf::stage_step>(2));
  plan.steps[1][0].incoming.push_back({0, 100.0});
  plan.steps[2][1].incoming.push_back({0, 50.0});
  plan.steps[2][1].incoming.push_back({1, 25.0});
  EXPECT_DOUBLE_EQ(plan.fmap_traffic_bytes(), 175.0);
}

TEST(characterize_system, rejects_plan_result_stage_mismatch) {
  const auto plat = soc::agx_xavier();
  perf::execution_result result;
  result.stages.resize(1);
  perf::stage_plan plan;
  plan.steps.assign(2, std::vector<perf::stage_step>(1));
  plan.cu_of_stage = {0, 1};  // two stages vs one timed stage
  plan.dvfs_level.assign(plat.size(), 0);
  EXPECT_THROW((void)perf::characterize_system(result, plan, plat), std::invalid_argument);
}

TEST(characterize_system, empty_platform_and_result_yield_empty_profile) {
  const soc::platform plat{};  // zero units
  const perf::dynamic_profile p =
      perf::characterize_system(perf::execution_result{}, perf::stage_plan{}, plat);
  EXPECT_EQ(p.stages(), 0u);
  EXPECT_THROW((void)p.worst_latency_ms(), std::logic_error);
  EXPECT_THROW((void)p.worst_energy_mj(), std::logic_error);
  // No stage can absorb probability mass, so no fraction vector sums to 1.
  EXPECT_THROW((void)p.avg_latency_ms({}), std::invalid_argument);
}

TEST(characterize_system, all_idle_units_charge_the_full_window) {
  // One stage that spent its whole window stalled (busy 0): its host CU and
  // every unmapped CU all idle for the full window.
  const auto plat = soc::agx_xavier();
  perf::execution_result result;
  result.stages.resize(1);
  result.stages[0].latency_ms = 2.0;
  result.stages[0].energy_mj = 5.0;
  result.stages[0].busy_ms = 0.0;
  perf::stage_plan plan;
  plan.steps.assign(1, std::vector<perf::stage_step>(1));
  plan.cu_of_stage = {0};
  plan.dvfs_level.assign(plat.size(), 0);

  double idle_w = 0.0;
  for (std::size_t u = 0; u < plat.size(); ++u) idle_w += plat.unit(u).idle_power_w();
  const perf::dynamic_profile p = perf::characterize_system(result, plan, plat);
  ASSERT_EQ(p.stages(), 1u);
  EXPECT_DOUBLE_EQ(p.latency_upto[0], 2.0);
  EXPECT_DOUBLE_EQ(p.energy_upto[0], 5.0 + idle_w * 2.0);
}

TEST(dynamic_profile, exit_fraction_tolerance_accepts_the_boundary) {
  perf::dynamic_profile p;
  p.latency_upto = {1.0, 2.0};
  p.energy_upto = {3.0, 4.0};
  // Exactly at the negative boundary (x < -tol rejects, equality passes);
  // the pair sums to 1 up to one ulp.
  const double tol = perf::exit_fraction_tolerance;
  const std::vector<double> at_boundary = {-tol, 1.0 + tol};
  EXPECT_NO_THROW((void)p.avg_latency_ms(at_boundary));
  EXPECT_NO_THROW((void)p.avg_energy_mj(at_boundary));
  // Sum off by half the tolerance: inside the slack on both sides.
  EXPECT_NO_THROW((void)p.avg_latency_ms(std::vector<double>{0.5, 0.5 + tol / 2}));
  EXPECT_NO_THROW((void)p.avg_latency_ms(std::vector<double>{0.5, 0.5 - tol / 2}));
}

TEST(dynamic_profile, exit_fraction_tolerance_rejects_beyond_the_boundary) {
  perf::dynamic_profile p;
  p.latency_upto = {1.0, 2.0};
  p.energy_upto = {3.0, 4.0};
  const double tol = perf::exit_fraction_tolerance;
  // Twice the tolerance past each edge: negative fraction, sum high, sum low.
  EXPECT_THROW((void)p.avg_latency_ms(std::vector<double>{-2 * tol, 1.0 + 2 * tol}),
               std::invalid_argument);
  EXPECT_THROW((void)p.avg_latency_ms(std::vector<double>{0.5, 0.5 + 2 * tol}),
               std::invalid_argument);
  EXPECT_THROW((void)p.avg_energy_mj(std::vector<double>{0.5, 0.5 - 2 * tol}),
               std::invalid_argument);
  // Count mismatch is rejected regardless of the sum.
  EXPECT_THROW((void)p.avg_latency_ms(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(sublayer_cost, empty_detection) {
  perf::sublayer_cost c;
  EXPECT_TRUE(c.empty());
  c.flops = 1.0;
  EXPECT_FALSE(c.empty());
}

}  // namespace
