#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace {

using mapcq::util::rng;

TEST(rng, same_seed_same_stream) {
  rng a{42};
  rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(rng, different_seeds_differ) {
  rng a{1};
  rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(rng, uniform_in_unit_interval) {
  rng g{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(rng, uniform_range_respected) {
  rng g{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = g.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(rng, uniform_mean_close_to_half) {
  rng g{11};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(rng, uniform_int_inclusive_bounds) {
  rng g{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = g.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(rng, uniform_int_single_value) {
  rng g{3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(g.uniform_int(9, 9), 9);
}

TEST(rng, normal_moments) {
  rng g{13};
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(rng, normal_scaled) {
  rng g{17};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += g.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(rng, lognormal_positive) {
  rng g{19};
  for (int i = 0; i < 1000; ++i) EXPECT_GT(g.lognormal(0.0, 1.5), 0.0);
}

TEST(rng, bernoulli_probability) {
  rng g{23};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (g.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(rng, bernoulli_degenerate) {
  rng g{29};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(g.bernoulli(0.0));
    EXPECT_TRUE(g.bernoulli(1.0));
  }
}

TEST(rng, weighted_index_respects_weights) {
  rng g{31};
  std::vector<double> w = {0.0, 1.0, 3.0};
  int c1 = 0;
  int c2 = 0;
  for (int i = 0; i < 40000; ++i) {
    const auto idx = g.weighted_index(w);
    ASSERT_NE(idx, 0u);  // zero weight never drawn
    if (idx == 1) ++c1;
    if (idx == 2) ++c2;
  }
  EXPECT_NEAR(static_cast<double>(c2) / (c1 + c2), 0.75, 0.02);
}

TEST(rng, weighted_index_rejects_bad_weights) {
  rng g{37};
  EXPECT_THROW((void)g.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)g.weighted_index({1.0, -0.5}), std::invalid_argument);
}

TEST(rng, shuffle_is_permutation) {
  rng g{41};
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto s = v;
  g.shuffle(s);
  auto sorted = s;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(rng, shuffle_changes_order) {
  rng g{43};
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[i] = i;
  auto s = v;
  g.shuffle(s);
  EXPECT_NE(s, v);
}

TEST(rng, split_streams_independent) {
  rng parent{47};
  rng a = parent.split(1);
  rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(rng, split_deterministic) {
  rng p1{51};
  rng p2{51};
  rng a = p1.split(9);
  rng b = p2.split(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
