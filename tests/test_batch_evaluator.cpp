// Differential harness pinning the SoA batch evaluator and cross-request
// batch fusion against the scalar/serial reference paths:
//   * perf::batch_characterizer == simulate()+characterize[_system]() cell
//     by cell at exact double equality, across seeded random plans x
//     platforms x batch shapes (including 0-plan, 1-plan, 0-group,
//     all-empty and max-stage degenerate cases);
//   * core::evaluator::evaluate_batch == evaluate() field-exact, across
//     seeded networks x platforms x batch shapes;
//   * the engine's chunked SoA dispatch is bit-identical to the scalar
//     ablation (engine_options::soa_batch = false) with identical cache
//     counters;
//   * fused scheduler dispatch produces the same reports as serial dispatch
//     (summaries compared with the scheduler note stripped) with exact
//     fused / fused_batches counter accounting and full reconciliation;
//   * util::wrr_queue::pop_from and the 7-or-9-token scheduler-note
//     round-trip that carries the new counters.
// Runs under ASan/UBSan and the TSan job (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "perf/batch_characterizer.h"
#include "perf/characterizer.h"
#include "perf/concurrent_executor.h"
#include "serving/mapping_service.h"
#include "serving/request_scheduler.h"
#include "soc/platform.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/wrr_queue.h"

namespace {

using namespace mapcq;

// ---------------------------------------------------------------------------
// Random stage plans: the property-case generator of the plan-level sweep.
// Shapes cover the degenerate corners on purpose: empty cells, single
// groups, transfer-free plans and plans using every unit of the platform.
// ---------------------------------------------------------------------------

perf::stage_plan random_plan(util::rng& gen, const soc::platform& plat, std::size_t stages,
                            std::size_t groups) {
  perf::stage_plan plan;
  std::vector<std::size_t> units(plat.size());
  for (std::size_t u = 0; u < units.size(); ++u) units[u] = u;
  gen.shuffle(units);
  plan.cu_of_stage.assign(units.begin(), units.begin() + static_cast<std::ptrdiff_t>(stages));
  plan.dvfs_level.resize(plat.size());
  for (std::size_t u = 0; u < plat.size(); ++u)
    plan.dvfs_level[u] = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(plat.unit(u).dvfs.levels()) - 1));
  plan.steps.assign(stages, std::vector<perf::stage_step>(groups));
  for (std::size_t i = 0; i < stages; ++i) {
    for (std::size_t j = 0; j < groups; ++j) {
      perf::stage_step& step = plan.steps[i][j];
      if (gen.uniform() < 0.25) continue;  // empty cell: stage owns nothing here
      step.cost.kind = gen.uniform() < 0.5 ? nn::layer_kind::conv2d : nn::layer_kind::linear;
      step.cost.flops = gen.uniform(1e4, 5e8);
      step.cost.weight_bytes = gen.uniform(0.0, 4e6);
      step.cost.in_bytes = gen.uniform(0.0, 2e6);
      step.cost.out_bytes = gen.uniform(0.0, 2e6);
      step.cost.width_frac = gen.uniform(0.05, 1.0);
      // Cross-stage transfers into this cell (the u_{k->i} terms of eq. 8).
      if (j > 0) {
        for (std::size_t k = 0; k < i; ++k)
          if (gen.uniform() < 0.4)
            step.incoming.push_back({k, gen.uniform(1e3, 1e6)});
      }
    }
  }
  return plan;
}

void expect_exec_identical(const perf::execution_result& a, const perf::execution_result& b) {
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].latency_ms, b.stages[i].latency_ms);
    EXPECT_EQ(a.stages[i].energy_mj, b.stages[i].energy_mj);
    EXPECT_EQ(a.stages[i].busy_ms, b.stages[i].busy_ms);
    EXPECT_EQ(a.stages[i].wait_ms, b.stages[i].wait_ms);
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    ASSERT_EQ(a.timeline[i].size(), b.timeline[i].size());
    for (std::size_t j = 0; j < a.timeline[i].size(); ++j) {
      EXPECT_EQ(a.timeline[i][j].start_ms, b.timeline[i][j].start_ms);
      EXPECT_EQ(a.timeline[i][j].end_ms, b.timeline[i][j].end_ms);
      EXPECT_EQ(a.timeline[i][j].wait_ms, b.timeline[i][j].wait_ms);
      EXPECT_EQ(a.timeline[i][j].busy_ms, b.timeline[i][j].busy_ms);
    }
  }
  EXPECT_EQ(a.fmap_traffic_bytes, b.fmap_traffic_bytes);
  EXPECT_EQ(a.transfer_energy_mj, b.transfer_energy_mj);
  EXPECT_EQ(a.latency_ms(), b.latency_ms());
  EXPECT_EQ(a.energy_mj(), b.energy_mj());
}

void expect_profile_identical(const perf::dynamic_profile& a, const perf::dynamic_profile& b) {
  ASSERT_EQ(a.latency_upto.size(), b.latency_upto.size());
  for (std::size_t m = 0; m < a.latency_upto.size(); ++m) {
    EXPECT_EQ(a.latency_upto[m], b.latency_upto[m]);
    EXPECT_EQ(a.energy_upto[m], b.energy_upto[m]);
  }
}

/// Runs one batch of plans through the scalar reference and the SoA path
/// under the same options and demands exact equality everywhere.
void expect_batch_matches_scalar(const soc::platform& plat,
                                 const std::vector<perf::stage_plan>& plans,
                                 const perf::model_options& opt, bool count_idle_power) {
  std::vector<const perf::stage_plan*> ptrs;
  ptrs.reserve(plans.size());
  for (const perf::stage_plan& p : plans) ptrs.push_back(&p);

  perf::batch_characterizer characterizer{plat, opt};
  std::vector<perf::batch_profile> got(plans.size());
  characterizer.run(ptrs, count_idle_power, got);

  for (std::size_t p = 0; p < plans.size(); ++p) {
    const perf::execution_result exec = perf::simulate(plat, plans[p], opt);
    const perf::dynamic_profile profile = count_idle_power
                                              ? perf::characterize_system(exec, plans[p], plat)
                                              : perf::characterize(exec);
    expect_exec_identical(got[p].exec, exec);
    expect_profile_identical(got[p].profile, profile);
  }
}

TEST(batch_characterizer, property_sweep_is_bit_identical_to_scalar) {
  // >= 200 property cases: 2 platforms x 2 contention modes x 2 idle-power
  // modes x 2 seeds x batches of 13 random plans = 208 plan comparisons,
  // each checked cell-exactly.
  const soc::platform plats[] = {soc::agx_xavier(), soc::agx_xavier_with_cpu()};
  std::size_t cases = 0;
  for (const soc::platform& plat : plats) {
    for (const bool contention : {false, true}) {
      for (const bool idle : {false, true}) {
        for (const std::uint64_t seed : {11u, 97u}) {
          util::rng gen{seed};
          std::vector<perf::stage_plan> plans;
          for (std::size_t n = 0; n < 13; ++n) {
            const auto stages = static_cast<std::size_t>(
                gen.uniform_int(1, static_cast<std::int64_t>(plat.size())));
            const auto groups = static_cast<std::size_t>(gen.uniform_int(1, 5));
            plans.push_back(random_plan(gen, plat, stages, groups));
          }
          perf::model_options opt;
          opt.enable_contention = contention;
          expect_batch_matches_scalar(plat, plans, opt, idle);
          cases += plans.size();
        }
      }
    }
  }
  EXPECT_GE(cases, 200u);
}

TEST(batch_characterizer, degenerate_shapes_match_scalar) {
  const soc::platform plat = soc::agx_xavier();
  util::rng gen{5};

  // Empty batch: a no-op, not an error.
  perf::batch_characterizer characterizer{plat, {}};
  characterizer.run({}, true, {});

  // Single-plan batch.
  expect_batch_matches_scalar(plat, {random_plan(gen, plat, 1, 1)}, {}, true);

  // Zero-group plan: invalid on the scalar path (stage_plan::validate),
  // and the batch path must reject it identically rather than read past
  // an empty grid.
  perf::stage_plan hollow;
  hollow.steps.assign(2, std::vector<perf::stage_step>{});
  hollow.cu_of_stage = {0, 1};
  hollow.dvfs_level.assign(plat.size(), 0);
  EXPECT_THROW((void)perf::simulate(plat, hollow, {}), std::logic_error);
  perf::batch_characterizer hollow_runner{plat, {}};
  std::vector<perf::batch_profile> hollow_out(1);
  const perf::stage_plan* hollow_ptr[] = {&hollow};
  EXPECT_THROW(hollow_runner.run(hollow_ptr, false, hollow_out), std::logic_error);

  // All-empty cells (every stage idle) and max-stage plans, mixed into one
  // batch with a normal plan so arena offsets cross plan boundaries.
  perf::stage_plan idle_plan = random_plan(gen, plat, plat.size(), 3);
  for (auto& row : idle_plan.steps)
    for (perf::stage_step& s : row) s = perf::stage_step{};
  std::vector<perf::stage_plan> mixed;
  mixed.push_back(idle_plan);
  mixed.push_back(random_plan(gen, plat, plat.size(), 4));  // every unit mapped
  mixed.push_back(random_plan(gen, plat, 1, 1));
  expect_batch_matches_scalar(plat, mixed, {}, true);
}

TEST(batch_characterizer, rejects_invalid_plans_and_sizes) {
  const soc::platform plat = soc::agx_xavier();
  util::rng gen{7};
  const perf::stage_plan good = random_plan(gen, plat, 2, 2);
  perf::stage_plan bad = good;
  bad.cu_of_stage[1] = bad.cu_of_stage[0];  // duplicate CU: simulate() rejects it

  perf::batch_characterizer characterizer{plat, {}};
  std::vector<perf::batch_profile> out(2);
  const perf::stage_plan* both[] = {&good, &bad};
  EXPECT_THROW(characterizer.run(both, false, out), std::logic_error);

  std::vector<perf::batch_profile> short_out(1);
  const perf::stage_plan* two[] = {&good, &good};
  EXPECT_THROW(characterizer.run(two, false, short_out), std::logic_error);
  EXPECT_THROW(characterizer.run({}, false, short_out), std::logic_error);
}

TEST(batch_characterizer, arena_rejects_over_take) {
  perf::batch_arena arena;
  arena.reset(4, 1);
  const std::span<double> a = arena.take(4);
  ASSERT_EQ(a.size(), 4u);
  for (const double v : a) EXPECT_EQ(v, 0.0);
  EXPECT_THROW((void)arena.take(1), std::logic_error);
  const std::span<unsigned char> f = arena.take_flags(1);
  EXPECT_EQ(f[0], 0);
  EXPECT_THROW((void)arena.take_flags(1), std::logic_error);
}

TEST(batch_characterizer, reports_simd_toggle) {
  // Value depends on the build configuration; both must be callable.
  (void)perf::simd_enabled();
}

// ---------------------------------------------------------------------------
// Evaluator level: evaluate_batch == evaluate, field-exact.
// ---------------------------------------------------------------------------

void expect_eval_identical(const core::evaluation& a, const core::evaluation& b) {
  EXPECT_TRUE(a.config == b.config);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.reject_reason, b.reject_reason);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.avg_latency_ms, b.avg_latency_ms);
  EXPECT_EQ(a.avg_energy_mj, b.avg_energy_mj);
  EXPECT_EQ(a.worst_latency_ms, b.worst_latency_ms);
  EXPECT_EQ(a.worst_energy_mj, b.worst_energy_mj);
  EXPECT_EQ(a.accuracy_pct, b.accuracy_pct);
  EXPECT_EQ(a.last_stage_accuracy_pct, b.last_stage_accuracy_pct);
  EXPECT_EQ(a.fmap_reuse_pct, b.fmap_reuse_pct);
  EXPECT_EQ(a.stored_fmap_bytes, b.stored_fmap_bytes);
  EXPECT_EQ(a.fmap_traffic_bytes, b.fmap_traffic_bytes);
  EXPECT_EQ(a.stage_latency_ms, b.stage_latency_ms);
  EXPECT_EQ(a.stage_energy_mj, b.stage_energy_mj);
  EXPECT_EQ(a.stage_accuracy_pct, b.stage_accuracy_pct);
  EXPECT_EQ(a.exit_fractions, b.exit_fractions);
}

/// The %.17g text check on top of field equality: a serialized evaluation
/// must round-trip byte-identically between the two paths, which is the
/// contract session snapshots depend on.
std::string eval_text(const core::evaluation& e) {
  std::ostringstream os;
  core::write_evaluation(os, e);
  return os.str();
}

TEST(batch_evaluator, evaluate_batch_matches_scalar_across_networks) {
  const nn::network nets[] = {nn::build_simple_cnn(), nn::build_mobilenet_cifar()};
  const soc::platform plats[] = {soc::agx_xavier(), soc::agx_xavier_with_cpu()};
  for (const nn::network& net : nets) {
    for (const soc::platform& plat : plats) {
      for (const bool idle : {false, true}) {
        core::evaluator_options opt;
        opt.count_idle_power = idle;
        const core::evaluator eval{net, plat, opt};
        const core::search_space space{net, plat};
        util::rng gen{net.name.size() + plat.size() + (idle ? 1u : 0u)};
        // 37 spans three internal SoA chunks (chunk-boundary coverage).
        for (const std::size_t batch :
             {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{37}}) {
          std::vector<core::configuration> configs;
          for (std::size_t i = 0; i < batch; ++i)
            configs.push_back(space.decode(space.random(gen)));
          std::vector<const core::configuration*> ptrs;
          for (const core::configuration& c : configs) ptrs.push_back(&c);
          const std::vector<core::evaluation> got = eval.evaluate_batch(ptrs);
          ASSERT_EQ(got.size(), batch);
          for (std::size_t i = 0; i < batch; ++i) {
            const core::evaluation want = eval.evaluate(configs[i]);
            expect_eval_identical(got[i], want);
            EXPECT_EQ(eval_text(got[i]), eval_text(want));
          }
        }
      }
    }
  }
}

TEST(batch_evaluator, evaluate_batch_matches_scalar_under_fixed_contention) {
  // The SoA path must stay bit-identical under any *fixed* contention
  // state, not just the idle one: co-resident traffic (derated platform),
  // a reserved CU (rejections + idle-power exclusion) and DVFS caps all
  // flow through both paths identically.
  const nn::network net = nn::build_simple_cnn();
  const soc::platform plat = soc::agx_xavier();
  core::evaluator_options opt;
  soc::resident_load neighbor;
  neighbor.name = "neighbor";
  neighbor.interconnect_gbps = 3.0;
  neighbor.dram_gbps = 4.0;
  neighbor.power_w = 1.0;
  neighbor.reserved_units = {1};
  opt.contention.residents.push_back(neighbor);
  opt.contention.dvfs_cap.assign(plat.size(), 1);
  const core::evaluator eval{net, plat, opt};
  const core::search_space space{net, plat};
  util::rng gen{41};
  std::vector<core::configuration> configs;
  for (std::size_t i = 0; i < 37; ++i) configs.push_back(space.decode(space.random(gen)));
  std::vector<const core::configuration*> ptrs;
  for (const core::configuration& c : configs) ptrs.push_back(&c);
  const std::vector<core::evaluation> got = eval.evaluate_batch(ptrs);
  ASSERT_EQ(got.size(), configs.size());
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const core::evaluation want = eval.evaluate(configs[i]);
    expect_eval_identical(got[i], want);
    EXPECT_EQ(eval_text(got[i]), eval_text(want));
    if (!got[i].feasible) ++rejected;
  }
  EXPECT_GT(rejected, 0u);  // the reserved CU actually bites in this sweep
}

TEST(batch_characterizer, contention_context_threads_through_the_soa_path) {
  // characterize_system with a non-idle context excludes reserved CUs from
  // the gated-idle power accounting; the batch path must agree cell by cell.
  const soc::platform plat = soc::agx_xavier();
  soc::contention_context ctx;
  soc::resident_load owner;
  owner.name = "owner";
  owner.reserved_units = {2};
  ctx.residents.push_back(owner);
  util::rng gen{59};
  std::vector<perf::stage_plan> plans;
  for (std::size_t n = 0; n < 8; ++n)
    plans.push_back(random_plan(gen, plat, 1 + n % plat.size(), 1 + n % 4));
  std::vector<const perf::stage_plan*> ptrs;
  for (const perf::stage_plan& p : plans) ptrs.push_back(&p);
  perf::batch_characterizer characterizer{plat, {}, &ctx};
  std::vector<perf::batch_profile> got(plans.size());
  characterizer.run(ptrs, true, got);
  for (std::size_t p = 0; p < plans.size(); ++p) {
    const perf::execution_result exec = perf::simulate(plat, plans[p], {});
    const perf::dynamic_profile want = perf::characterize_system(exec, plans[p], plat, &ctx);
    expect_exec_identical(got[p].exec, exec);
    expect_profile_identical(got[p].profile, want);
  }
}

// ---------------------------------------------------------------------------
// Engine level: chunked SoA dispatch vs the scalar ablation.
// ---------------------------------------------------------------------------

struct engine_pair : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();
  core::search_space space{net, plat};
  core::evaluator eval{net, plat, {}};

  std::vector<core::configuration> random_configs(std::size_t n, std::uint64_t seed) const {
    util::rng gen{seed};
    std::vector<core::configuration> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(space.decode(space.random(gen)));
    return out;
  }
};

TEST_F(engine_pair, soa_dispatch_is_bit_identical_to_scalar_with_same_counters) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    core::engine_options soa;
    soa.threads = threads;
    soa.soa_batch = true;
    core::engine_options scalar = soa;
    scalar.soa_batch = false;

    core::evaluation_engine a{eval, soa};
    core::evaluation_engine b{eval, scalar};

    std::vector<core::configuration> batch = random_configs(17, 23 + threads);
    batch.push_back(batch.front());  // in-batch duplicate exercises dedup
    batch.push_back(batch[3]);
    const std::vector<core::evaluation> ra = a.evaluate_batch(batch);
    const std::vector<core::evaluation> rb = b.evaluate_batch(batch);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) expect_eval_identical(ra[i], rb[i]);

    // Hit/miss/dedup accounting must not depend on the dispatch shape.
    EXPECT_EQ(a.stats().hits, b.stats().hits);
    EXPECT_EQ(a.stats().misses, b.stats().misses);
    EXPECT_EQ(a.stats().dedup, b.stats().dedup);

    // A warm rerun through the other entry points stays identical too.
    const std::vector<core::evaluation> warm = a.evaluate_batch(batch);
    for (std::size_t i = 0; i < warm.size(); ++i) expect_eval_identical(warm[i], ra[i]);
    expect_eval_identical(a.evaluate(batch.front()), rb.front());
  }
}

TEST_F(engine_pair, async_soa_batches_match_sync) {
  core::engine_options opt;
  opt.threads = 2;
  core::evaluation_engine sync_engine{eval, opt};
  core::evaluation_engine async_engine{eval, opt};
  const std::vector<core::configuration> batch = random_configs(9, 91);
  const std::vector<core::evaluation> want = sync_engine.evaluate_batch(batch);
  std::vector<core::evaluation> got = async_engine.evaluate_batch_async(batch).get();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) expect_eval_identical(got[i], want[i]);
}

TEST(thread_pool_pinning, pinned_pool_runs_work) {
  util::thread_pool pool{util::pool_options{3, true}};
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> hits{0};
  pool.parallel_for(64, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 64);
}

TEST_F(engine_pair, pinned_engine_is_bit_identical) {
  core::engine_options pinned;
  pinned.threads = 2;
  pinned.pin_threads = true;
  core::evaluation_engine a{eval, pinned};
  core::evaluation_engine b{eval};
  const std::vector<core::configuration> batch = random_configs(6, 7);
  const std::vector<core::evaluation> ra = a.evaluate_batch(batch);
  const std::vector<core::evaluation> rb = b.evaluate_batch(batch);
  for (std::size_t i = 0; i < ra.size(); ++i) expect_eval_identical(ra[i], rb[i]);
}

// ---------------------------------------------------------------------------
// wrr_queue::pop_from — the fusion drain primitive.
// ---------------------------------------------------------------------------

TEST(wrr_pop_from, drains_one_lane_without_touching_others) {
  util::wrr_queue<int> q;
  EXPECT_FALSE(q.pop_from("missing").has_value());
  q.push("a", 1);
  q.push("a", 2);
  q.push("b", 10);
  EXPECT_EQ(q.pop_from("a").value(), 1);
  EXPECT_EQ(q.pop_from("a").value(), 2);
  EXPECT_FALSE(q.pop_from("a").has_value());
  EXPECT_EQ(q.size(), 1u);
  // The ring stays consistent after the direct drain: normal rotation and
  // re-push of the drained key keep working.
  EXPECT_EQ(q.pop().value(), 10);
  q.push("a", 3);
  q.push("c", 30);
  EXPECT_EQ(q.pop_from("c").value(), 30);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Scheduler level: fused dispatch with a stub executor.
// ---------------------------------------------------------------------------

serving::mapping_report stub_report(const serving::mapping_request& req) {
  serving::mapping_report rep;
  rep.network = req.network;
  return rep;
}

TEST(scheduler_fusion, fuses_same_lane_requests_with_exact_counters) {
  serving::scheduler_options opt;
  opt.max_fused = 0;  // unbounded
  opt.coalesce = false;
  std::atomic<std::size_t> fused_calls{0};
  std::atomic<std::size_t> largest_group{0};
  serving::request_scheduler sched{
      opt, 1, [](const serving::mapping_request& r) { return stub_report(r); },
      [&](std::span<const serving::mapping_request> rs) {
        fused_calls.fetch_add(1);
        std::size_t seen = largest_group.load();
        while (rs.size() > seen && !largest_group.compare_exchange_weak(seen, rs.size())) {
        }
        std::vector<serving::fused_outcome> out(rs.size());
        for (std::size_t i = 0; i < rs.size(); ++i) out[i].report = stub_report(rs[i]);
        return out;
      }};

  sched.pause();
  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (int i = 0; i < 5; ++i) {
    serving::mapping_request req;
    req.network = "net-" + std::to_string(i);  // distinct: no coalescing either way
    futures.push_back(sched.submit("lane", std::to_string(i), std::move(req)));
  }
  sched.resume();
  sched.wait_idle();

  for (auto& f : futures) (void)f.get();
  const serving::scheduler_stats stats = sched.stats();
  // One worker, one lane, dispatch resumed atomically: one fused batch of 5.
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.fused, 4u);
  EXPECT_EQ(stats.fused_batches, 1u);
  EXPECT_EQ(fused_calls.load(), 1u);
  EXPECT_EQ(largest_group.load(), 5u);
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed + stats.expired + stats.queued +
                                stats.inflight);
}

TEST(scheduler_fusion, max_fused_bounds_the_group) {
  serving::scheduler_options opt;
  opt.max_fused = 2;
  opt.coalesce = false;
  serving::request_scheduler sched{
      opt, 1, [](const serving::mapping_request& r) { return stub_report(r); },
      [](std::span<const serving::mapping_request> rs) {
        std::vector<serving::fused_outcome> out(rs.size());
        for (std::size_t i = 0; i < rs.size(); ++i) out[i].report = stub_report(rs[i]);
        return out;
      }};
  sched.pause();
  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(sched.submit("lane", std::to_string(i), serving::mapping_request{}));
  sched.resume();
  sched.wait_idle();
  for (auto& f : futures) (void)f.get();
  const serving::scheduler_stats stats = sched.stats();
  // Groups of at most 2: two batches, each with one follower.
  EXPECT_EQ(stats.fused, 2u);
  EXPECT_EQ(stats.fused_batches, 2u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(scheduler_fusion, default_options_never_fuse) {
  serving::scheduler_options opt;  // max_fused = 1
  opt.coalesce = false;
  serving::request_scheduler sched{
      opt, 1, [](const serving::mapping_request& r) { return stub_report(r); }};
  sched.pause();
  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(sched.submit("lane", std::to_string(i), serving::mapping_request{}));
  sched.resume();
  sched.wait_idle();
  for (auto& f : futures) (void)f.get();
  EXPECT_EQ(sched.stats().fused, 0u);
  EXPECT_EQ(sched.stats().fused_batches, 0u);
  EXPECT_EQ(sched.stats().completed, 3u);
}

TEST(scheduler_fusion, fused_group_without_executor_falls_back_per_member) {
  serving::scheduler_options opt;
  opt.max_fused = 0;
  opt.coalesce = false;
  std::atomic<std::size_t> runs{0};
  serving::request_scheduler sched{opt, 1, [&](const serving::mapping_request& r) {
                                     runs.fetch_add(1);
                                     return stub_report(r);
                                   }};
  sched.pause();
  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(sched.submit("lane", std::to_string(i), serving::mapping_request{}));
  sched.resume();
  sched.wait_idle();
  for (auto& f : futures) (void)f.get();
  // Still one dispatch group (counted as fused), executed per member.
  EXPECT_EQ(runs.load(), 3u);
  EXPECT_EQ(sched.stats().fused, 2u);
  EXPECT_EQ(sched.stats().fused_batches, 1u);
}

TEST(scheduler_fusion, wrong_sized_fused_return_fails_the_whole_group) {
  serving::scheduler_options opt;
  opt.max_fused = 0;
  opt.coalesce = false;
  serving::request_scheduler sched{
      opt, 1, [](const serving::mapping_request& r) { return stub_report(r); },
      [](std::span<const serving::mapping_request>) {
        return std::vector<serving::fused_outcome>{};  // wrong size on purpose
      }};
  sched.pause();
  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(sched.submit("lane", std::to_string(i), serving::mapping_request{}));
  sched.resume();
  sched.wait_idle();
  for (auto& f : futures) EXPECT_THROW((void)f.get(), std::runtime_error);
  EXPECT_EQ(sched.stats().failed, 3u);
  EXPECT_EQ(sched.stats().fused, 2u);
}

TEST(scheduler_fusion, per_member_errors_are_isolated) {
  serving::scheduler_options opt;
  opt.max_fused = 0;
  opt.coalesce = false;
  serving::request_scheduler sched{
      opt, 1, [](const serving::mapping_request& r) { return stub_report(r); },
      [](std::span<const serving::mapping_request> rs) {
        std::vector<serving::fused_outcome> out(rs.size());
        for (std::size_t i = 0; i < rs.size(); ++i) {
          if (rs[i].network == "doomed")
            out[i].error = std::make_exception_ptr(std::runtime_error("doomed"));
          else
            out[i].report = stub_report(rs[i]);
        }
        return out;
      }};
  sched.pause();
  serving::mapping_request good;
  good.network = "good";
  serving::mapping_request bad;
  bad.network = "doomed";
  auto f_good = sched.submit("lane", "g", good);
  auto f_bad = sched.submit("lane", "b", bad);
  sched.resume();
  sched.wait_idle();
  EXPECT_EQ(f_good.get().network, "good");
  EXPECT_THROW((void)f_bad.get(), std::runtime_error);
  const serving::scheduler_stats stats = sched.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.fused, 1u);
  EXPECT_EQ(stats.fused_batches, 1u);
}

TEST(scheduler_fusion, respects_per_session_inflight_cap) {
  serving::scheduler_options opt;
  opt.max_fused = 0;
  opt.max_inflight_per_session = 2;
  opt.coalesce = false;
  std::atomic<std::size_t> largest_group{0};
  serving::request_scheduler sched{
      opt, 1, [](const serving::mapping_request& r) { return stub_report(r); },
      [&](std::span<const serving::mapping_request> rs) {
        std::size_t seen = largest_group.load();
        while (rs.size() > seen && !largest_group.compare_exchange_weak(seen, rs.size())) {
        }
        std::vector<serving::fused_outcome> out(rs.size());
        for (std::size_t i = 0; i < rs.size(); ++i) out[i].report = stub_report(rs[i]);
        return out;
      }};
  sched.pause();
  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (int i = 0; i < 5; ++i)
    futures.push_back(sched.submit("lane", std::to_string(i), serving::mapping_request{}));
  sched.resume();
  sched.wait_idle();
  for (auto& f : futures) (void)f.get();
  // The whole group goes in flight at once, so it can never exceed the cap.
  EXPECT_LE(largest_group.load(), 2u);
  EXPECT_EQ(sched.stats().completed, 5u);
}

// ---------------------------------------------------------------------------
// Service level: fused dispatch == serial dispatch, report for report.
// ---------------------------------------------------------------------------

serving::mapping_request service_request(const std::string& network, std::uint64_t ga_seed) {
  serving::mapping_request req;
  req.network = network;
  req.use_surrogate = false;
  req.ga.generations = 3;
  req.ga.population = 8;
  req.ga.threads = 1;
  req.ga.seed = ga_seed;
  return req;
}

/// Summary text with the scheduler note stripped: everything about the
/// report except the stamped counters (which legitimately differ between
/// fused and serial dispatch) and the engine cache deltas (not part of the
/// summary at all).
std::string summary_without_scheduler(const serving::mapping_report& rep) {
  core::report_summary s = rep.summary();
  s.scheduler.reset();
  return core::to_text(s);
}

struct fused_service : ::testing::Test {
  nn::network net = nn::build_simple_cnn();
  soc::platform plat = soc::agx_xavier();

  serving::service_options options(std::size_t max_fused) const {
    serving::service_options opt;
    opt.engine.threads = 1;
    opt.workers = 1;
    opt.scheduler.max_fused = max_fused;
    return opt;
  }
};

TEST_F(fused_service, fused_reports_match_serial_with_exact_counters) {
  constexpr std::size_t kRequests = 3;

  serving::mapping_service serial{options(1)};
  serial.register_network(net);
  serial.register_platform(plat);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < kRequests; ++i)
    want.push_back(summary_without_scheduler(serial.map(service_request(net.name, 100 + i))));

  serving::mapping_service fused{options(0)};
  fused.register_network(net);
  fused.register_platform(plat);
  fused.pause_scheduler();
  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (std::size_t i = 0; i < kRequests; ++i)
    futures.push_back(fused.submit(service_request(net.name, 100 + i)));
  fused.resume_scheduler();

  for (std::size_t i = 0; i < kRequests; ++i)
    EXPECT_EQ(summary_without_scheduler(futures[i].get()), want[i]);

  const serving::scheduler_stats stats = fused.scheduler();
  EXPECT_EQ(stats.admitted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.fused, kRequests - 1);
  EXPECT_EQ(stats.fused_batches, 1u);
  EXPECT_LE(stats.fused_batches, stats.fused);
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed + stats.expired + stats.queued +
                                stats.inflight);

  // The stamped note propagates into the summary line of every report.
  const core::report_summary s = futures.back().get().summary();
  ASSERT_TRUE(s.scheduler.has_value());
  EXPECT_EQ(s.scheduler->fused, kRequests - 1);
  EXPECT_EQ(s.scheduler->fused_batches, 1u);
}

TEST_F(fused_service, doomed_member_fails_alone) {
  serving::mapping_service service{options(0)};
  service.register_network(net);
  service.register_platform(plat);
  service.pause_scheduler();
  auto ok = service.submit(service_request(net.name, 1));
  // Same session lane (the lane ignores GA knobs), but map() rejects the
  // prefilter + surrogate combination — the fused sibling must not care.
  serving::mapping_request bad = service_request(net.name, 2);
  bad.use_surrogate = true;
  bad.ga.portfolio.prefilter.enabled = true;
  auto doomed = service.submit(bad);
  service.resume_scheduler();

  EXPECT_FALSE(ok.get().front.empty());
  EXPECT_THROW((void)doomed.get(), std::invalid_argument);
  const serving::scheduler_stats stats = service.scheduler();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.fused, 1u);
}

// ---------------------------------------------------------------------------
// Serialization: the 9-field scheduler row and its 7-field legacy form.
// ---------------------------------------------------------------------------

/// A minimal-but-valid summary: report_summary_from_text rejects empty
/// entry lists (pick indices would be out of range), so every round-trip
/// carries one real configuration.
core::report_summary one_entry_summary() {
  core::report_summary s;
  s.network = "n";
  s.platform = "p";
  const nn::network net = nn::build_simple_cnn();
  const soc::platform plat = soc::agx_xavier();
  const core::search_space space{net, plat};
  util::rng gen{2};
  core::summary_entry entry;
  entry.label = "front-0+ours-L+ours-E";
  entry.config = space.decode(space.random(gen));
  s.entries.push_back(std::move(entry));
  return s;
}

TEST(scheduler_note_roundtrip, fused_counters_survive_to_text_and_back) {
  core::report_summary s = one_entry_summary();
  core::scheduler_note note;
  note.submitted = 9;
  note.admitted = 6;
  note.coalesced = 2;
  note.rejected = 1;
  note.expired = 0;
  note.completed = 5;
  note.failed = 1;
  note.fused = 3;
  note.fused_batches = 2;
  s.scheduler = note;
  const core::report_summary back = core::report_summary_from_text(core::to_text(s));
  ASSERT_TRUE(back.scheduler.has_value());
  EXPECT_EQ(back.scheduler->fused, 3u);
  EXPECT_EQ(back.scheduler->fused_batches, 2u);
  EXPECT_EQ(back.scheduler->submitted, 9u);
  EXPECT_EQ(back.scheduler->failed, 1u);
}

TEST(scheduler_note_roundtrip, legacy_seven_field_row_parses_with_zero_fused) {
  core::report_summary s = one_entry_summary();
  s.scheduler = core::scheduler_note{9, 6, 2, 1, 0, 5, 1, 3, 2};
  std::string text = core::to_text(s);
  // Rewrite the scheduler row to the pre-fusion 7-value arity.
  const std::string nine = "scheduler 9 6 2 1 0 5 1 3 2";
  const std::string seven = "scheduler 9 6 2 1 0 5 1";
  const std::size_t pos = text.find(nine);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, nine.size(), seven);
  const core::report_summary back = core::report_summary_from_text(text);
  ASSERT_TRUE(back.scheduler.has_value());
  EXPECT_EQ(back.scheduler->completed, 5u);
  EXPECT_EQ(back.scheduler->fused, 0u);
  EXPECT_EQ(back.scheduler->fused_batches, 0u);
}

}  // namespace
