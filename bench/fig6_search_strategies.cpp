// Reproduces Fig. 6: the search under three feature-map reuse regimes
// (no constraint / <=75% / <=50%) for Visformer on the Xavier. For each
// regime it prints a latency-deciled summary of the explored Pareto set
// (the paper's scatter), dumps the full front to CSV, and checks the
// highlighted factors: ~2.1x energy vs GPU-only at <=30 ms latency and
// ~1.7x latency vs DLA-only (then 1.6x/1.5x and 1.6x/1.4x), plus the ~6%
// accuracy drop under the 50% cap.

#include <algorithm>
#include <filesystem>
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  const bench::scale s = bench::scale::from_env();

  const auto gpu = core::single_cu_baseline(tb.visformer, tb.xavier, 0);
  const auto dla = core::single_cu_baseline(tb.visformer, tb.xavier, 1);

  std::cout << "=== Fig. 6: search strategies under fmap-reuse constraints (Visformer) ===\n";
  std::cout << util::format("baselines: GPU %.2f mJ / %.2f ms; DLA %.2f mJ / %.2f ms\n\n",
                            gpu.energy_mj, gpu.latency_ms, dla.energy_mj, dla.latency_ms);

  struct regime {
    const char* name;
    double cap;
    double paper_energy_x;   // vs GPU-only
    double paper_latency_x;  // vs DLA-only
  };
  const regime regimes[] = {{"no constraint", 1.00, 2.1, 1.7},
                            {"<=75% reuse", 0.75, 1.6, 1.5},
                            {"<=50% reuse", 0.50, 1.6, 1.4}};

  std::filesystem::create_directories("bench_out");
  double best_acc_unconstrained = 0.0;
  double best_acc_50 = 0.0;

  for (std::size_t r = 0; r < 3; ++r) {
    const auto res = bench::run_search(tb.visformer, tb.xavier, regimes[r].cap, s, 100 + r);
    std::cout << util::format("--- %s: %zu evaluations, %zu on the Pareto front ---\n",
                              regimes[r].name, res.search.total_evaluations,
                              res.front.size());
    std::cout << util::format(
        "    evaluation engine: %zu evaluator runs, %.1f%% cache-served "
        "(%zu hits, %zu dups)\n",
        res.search.cache.misses, 100.0 * res.search.cache.hit_rate(), res.search.cache.hits,
        res.search.cache.dedup);

    // CSV dump of the validated front (the paper's scatter data).
    const std::string csv_path =
        util::format("bench_out/fig6_%zu_front.csv", r);
    util::csv_writer csv{csv_path, {"latency_ms", "energy_mj", "accuracy_pct", "reuse_pct"}};
    for (const auto& e : res.front)
      csv.write_row(std::vector<double>{e.avg_latency_ms, e.avg_energy_mj, e.accuracy_pct,
                                        e.fmap_reuse_pct});

    // Deciled summary: min-energy point per latency bucket.
    auto front = res.front;
    std::sort(front.begin(), front.end(), [](const auto& a, const auto& b) {
      return a.avg_latency_ms < b.avg_latency_ms;
    });
    util::table t({"lat bucket (ms)", "min energy (mJ)", "acc of that point (%)", "reuse (%)"});
    const std::size_t buckets = std::min<std::size_t>(8, front.size());
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::size_t lo = b * front.size() / buckets;
      const std::size_t hi = (b + 1) * front.size() / buckets;
      const core::evaluation* best = nullptr;
      for (std::size_t i = lo; i < hi; ++i)
        if (best == nullptr || front[i].avg_energy_mj < best->avg_energy_mj) best = &front[i];
      if (best == nullptr) continue;
      t.add_row({util::format("%.1f-%.1f", front[lo].avg_latency_ms,
                              front[hi - 1].avg_latency_ms),
                 bench::fmt(best->avg_energy_mj), bench::fmt(best->accuracy_pct),
                 bench::fmt(best->fmap_reuse_pct, 1)});
    }
    std::cout << t.str();

    // Highlighted factors (<= 0.5% accuracy drop rule).
    const auto e_pick =
        bench::pick_constrained(res.front, gpu.accuracy_pct, 0.5, 30.0, true);
    const auto l_pick = bench::pick_constrained(res.front, gpu.accuracy_pct, 0.5,
                                                1e9, false);
    if (e_pick)
      std::cout << util::format(
          "energy gain vs GPU-only at <=30 ms, <=0.5%% acc drop: %.2fx (paper ~%.1fx)\n",
          gpu.energy_mj / e_pick->avg_energy_mj, regimes[r].paper_energy_x);
    else
      std::cout << "no configuration met the <=30 ms / <=0.5% accuracy highlight rule\n";
    if (l_pick)
      std::cout << util::format(
          "latency speedup vs DLA-only at <=0.5%% acc drop: %.2fx (paper ~%.1fx)\n",
          dla.latency_ms / l_pick->avg_latency_ms, regimes[r].paper_latency_x);

    double best_acc = 0.0;
    for (const auto& e : res.front) best_acc = std::max(best_acc, e.accuracy_pct);
    std::cout << util::format("best accuracy in this regime: %.2f%% (front CSV: %s)\n\n",
                              best_acc, csv_path.c_str());
    if (r == 0) best_acc_unconstrained = best_acc;
    if (r == 2) best_acc_50 = best_acc;
  }

  std::cout << util::format(
      "accuracy drop from hard reuse constraints (50%% cap): %.2f points "
      "(paper observes ~6%% on explored configs; Table II picks drop ~4)\n",
      best_acc_unconstrained - best_acc_50);
  return 0;
}
