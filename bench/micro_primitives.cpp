// google-benchmark micro-benchmarks of the framework's primitives: the
// costs behind one GA evaluation (transform, simulate, accuracy, surrogate
// predict) and the search itself. These bound the wall-clock of the
// paper-scale 12k-evaluation search.

#include <benchmark/benchmark.h>

#include "core/baselines.h"
#include "core/evaluator.h"
#include "core/evolutionary.h"
#include "core/search_space.h"
#include "nn/models.h"
#include "perf/calibration.h"
#include "surrogate/dataset.h"
#include "surrogate/predictor.h"

namespace {

using namespace mapcq;

struct fixture {
  nn::network net = nn::build_visformer();
  nn::network vgg = nn::build_vgg19();
  soc::platform plat = perf::calibrated_xavier(net, vgg).plat;
  std::vector<nn::partition_group> groups = nn::make_partition_groups(net);
  nn::ranked_network ranking{net, widths(), 1};
  core::configuration cfg = core::make_static_configuration(net, plat);

  std::vector<std::int64_t> widths() const {
    std::vector<std::int64_t> w;
    for (const auto& g : groups) w.push_back(g.width);
    return w;
  }
};

fixture& fx() {
  static fixture f;
  return f;
}

void bm_dynamic_transform(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::transform(f.net, f.groups, f.ranking, f.cfg, f.plat));
}
BENCHMARK(bm_dynamic_transform);

void bm_concurrent_simulate(benchmark::State& state) {
  auto& f = fx();
  const auto dyn = core::transform(f.net, f.groups, f.ranking, f.cfg, f.plat);
  for (auto _ : state) benchmark::DoNotOptimize(perf::simulate(f.plat, dyn.plan));
}
BENCHMARK(bm_concurrent_simulate);

void bm_full_evaluation_analytic(benchmark::State& state) {
  auto& f = fx();
  const core::evaluator ev{f.net, f.plat, {}};
  for (auto _ : state) benchmark::DoNotOptimize(ev.evaluate(f.cfg));
}
BENCHMARK(bm_full_evaluation_analytic);

void bm_full_evaluation_surrogate(benchmark::State& state) {
  auto& f = fx();
  static const surrogate::dataset ds = surrogate::generate_benchmark({&f.net}, f.plat, {});
  static const surrogate::hw_predictor pred{ds};
  core::evaluator_options opt;
  opt.predictor = &pred;
  const core::evaluator ev{f.net, f.plat, opt};
  for (auto _ : state) benchmark::DoNotOptimize(ev.evaluate(f.cfg));
}
BENCHMARK(bm_full_evaluation_surrogate);

void bm_surrogate_train(benchmark::State& state) {
  auto& f = fx();
  surrogate::benchmark_options bopt;
  bopt.samples = static_cast<std::size_t>(state.range(0));
  const auto ds = surrogate::generate_benchmark({&f.net}, f.plat, bopt);
  surrogate::gbt_params params;
  params.n_trees = 60;
  for (auto _ : state) benchmark::DoNotOptimize(surrogate::hw_predictor{ds, params});
}
BENCHMARK(bm_surrogate_train)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void bm_ga_generation(benchmark::State& state) {
  auto& f = fx();
  const core::search_space space{f.net, f.plat};
  const core::evaluator ev{f.net, f.plat, {}};
  core::ga_options ga;
  ga.generations = 1;
  ga.population = static_cast<std::size_t>(state.range(0));
  ga.threads = 12;
  for (auto _ : state) benchmark::DoNotOptimize(core::evolve(space, ev, ga));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_ga_generation)->Arg(60)->Unit(benchmark::kMillisecond);

void bm_exit_simulation(benchmark::State& state) {
  const std::vector<double> acc = {58.0, 74.0, 88.0};
  for (auto _ : state)
    benchmark::DoNotOptimize(data::simulate_ideal(acc, 10000));
}
BENCHMARK(bm_exit_simulation);

void bm_importance_profile(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::importance_profile{512, 1.5, 7});
}
BENCHMARK(bm_importance_profile);

}  // namespace

BENCHMARK_MAIN();
