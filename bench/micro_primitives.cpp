// google-benchmark micro-benchmarks of the framework's primitives: the
// costs behind one GA evaluation (transform, simulate, accuracy, surrogate
// predict) and the search itself. These bound the wall-clock of the
// paper-scale 12k-evaluation search. A custom main() additionally times the
// scalar vs SoA batch-characterizer paths head to head and emits
// ns/sublayer into BENCH.json (informational, not gated).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/evaluator.h"
#include "core/evolutionary.h"
#include "core/search_space.h"
#include "nn/models.h"
#include "perf/batch_characterizer.h"
#include "perf/calibration.h"
#include "surrogate/dataset.h"
#include "surrogate/predictor.h"

namespace {

using namespace mapcq;

struct fixture {
  nn::network net = nn::build_visformer();
  nn::network vgg = nn::build_vgg19();
  soc::platform plat = perf::calibrated_xavier(net, vgg).plat;
  std::vector<nn::partition_group> groups = nn::make_partition_groups(net);
  nn::ranked_network ranking{net, widths(), 1};
  core::configuration cfg = core::make_static_configuration(net, plat);

  std::vector<std::int64_t> widths() const {
    std::vector<std::int64_t> w;
    for (const auto& g : groups) w.push_back(g.width);
    return w;
  }
};

fixture& fx() {
  static fixture f;
  return f;
}

void bm_dynamic_transform(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::transform(f.net, f.groups, f.ranking, f.cfg, f.plat));
}
BENCHMARK(bm_dynamic_transform);

void bm_concurrent_simulate(benchmark::State& state) {
  auto& f = fx();
  const auto dyn = core::transform(f.net, f.groups, f.ranking, f.cfg, f.plat);
  for (auto _ : state) benchmark::DoNotOptimize(perf::simulate(f.plat, dyn.plan));
}
BENCHMARK(bm_concurrent_simulate);

void bm_full_evaluation_analytic(benchmark::State& state) {
  auto& f = fx();
  const core::evaluator ev{f.net, f.plat, {}};
  for (auto _ : state) benchmark::DoNotOptimize(ev.evaluate(f.cfg));
}
BENCHMARK(bm_full_evaluation_analytic);

void bm_full_evaluation_surrogate(benchmark::State& state) {
  auto& f = fx();
  static const surrogate::dataset ds = surrogate::generate_benchmark({&f.net}, f.plat, {});
  static const surrogate::hw_predictor pred{ds};
  core::evaluator_options opt;
  opt.predictor = &pred;
  const core::evaluator ev{f.net, f.plat, opt};
  for (auto _ : state) benchmark::DoNotOptimize(ev.evaluate(f.cfg));
}
BENCHMARK(bm_full_evaluation_surrogate);

void bm_surrogate_train(benchmark::State& state) {
  auto& f = fx();
  surrogate::benchmark_options bopt;
  bopt.samples = static_cast<std::size_t>(state.range(0));
  const auto ds = surrogate::generate_benchmark({&f.net}, f.plat, bopt);
  surrogate::gbt_params params;
  params.n_trees = 60;
  for (auto _ : state) benchmark::DoNotOptimize(surrogate::hw_predictor{ds, params});
}
BENCHMARK(bm_surrogate_train)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void bm_ga_generation(benchmark::State& state) {
  auto& f = fx();
  const core::search_space space{f.net, f.plat};
  const core::evaluator ev{f.net, f.plat, {}};
  core::ga_options ga;
  ga.generations = 1;
  ga.population = static_cast<std::size_t>(state.range(0));
  ga.threads = 12;
  for (auto _ : state) benchmark::DoNotOptimize(core::evolve(space, ev, ga));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_ga_generation)->Arg(60)->Unit(benchmark::kMillisecond);

void bm_exit_simulation(benchmark::State& state) {
  const std::vector<double> acc = {58.0, 74.0, 88.0};
  for (auto _ : state)
    benchmark::DoNotOptimize(data::simulate_ideal(acc, 10000));
}
BENCHMARK(bm_exit_simulation);

void bm_importance_profile(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::importance_profile{512, 1.5, 7});
}
BENCHMARK(bm_importance_profile);

// --- scalar vs SoA batch characterization --------------------------------

/// A batch of resolved stage plans from random configurations (the shape
/// `evaluator::evaluate_batch` feeds the SoA characterizer).
struct plan_batch {
  std::vector<core::dynamic_network> dyns;
  std::vector<const perf::stage_plan*> plans;
  std::size_t cells = 0;  ///< total (stage, group) sublayer cells

  explicit plan_batch(std::size_t n) {
    auto& f = fx();
    const core::search_space space{f.net, f.plat};
    util::rng gen{17};
    dyns.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      dyns.push_back(core::transform(f.net, f.groups, f.ranking,
                                     space.decode(space.random(gen)), f.plat));
    for (const core::dynamic_network& d : dyns) {
      plans.push_back(&d.plan);
      cells += d.plan.stages() * d.plan.groups();
    }
  }
};

plan_batch& shared_batch() {
  static plan_batch b{32};
  return b;
}

void bm_batch_characterize_scalar(benchmark::State& state) {
  auto& f = fx();
  const plan_batch& b = shared_batch();
  for (auto _ : state) {
    for (const perf::stage_plan* p : b.plans) {
      const perf::execution_result exec = perf::simulate(f.plat, *p);
      benchmark::DoNotOptimize(perf::characterize_system(exec, *p, f.plat));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * b.cells));
}
BENCHMARK(bm_batch_characterize_scalar);

void bm_batch_characterize_soa(benchmark::State& state) {
  auto& f = fx();
  const plan_batch& b = shared_batch();
  perf::batch_characterizer characterizer{f.plat, {}};
  std::vector<perf::batch_profile> out(b.plans.size());
  for (auto _ : state) {
    characterizer.run(b.plans, true, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * b.cells));
}
BENCHMARK(bm_batch_characterize_soa);

/// Head-to-head ns/sublayer for BENCH.json (informational; the gbench
/// counters above give the same numbers interactively).
void emit_soa_ns_per_sublayer() {
  auto& f = fx();
  const plan_batch& b = shared_batch();
  constexpr int kReps = 50;

  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kReps; ++r)
    for (const perf::stage_plan* p : b.plans) {
      const perf::execution_result exec = perf::simulate(f.plat, *p);
      benchmark::DoNotOptimize(perf::characterize_system(exec, *p, f.plat));
    }
  const double scalar_ns = std::chrono::duration<double, std::nano>(
                               std::chrono::steady_clock::now() - t0)
                               .count() /
                           static_cast<double>(kReps * b.cells);

  perf::batch_characterizer characterizer{f.plat, {}};
  std::vector<perf::batch_profile> out(b.plans.size());
  const auto t1 = std::chrono::steady_clock::now();
  for (int r = 0; r < kReps; ++r) characterizer.run(b.plans, true, out);
  const double soa_ns = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - t1)
                            .count() /
                        static_cast<double>(kReps * b.cells);

  std::printf("\nbatch characterization: scalar %.1f ns/sublayer, SoA %.1f ns/sublayer (%.2fx)\n",
              scalar_ns, soa_ns, scalar_ns / soa_ns);
  bench::json_reporter json{"micro_primitives"};
  json.metric("scalar_ns_per_sublayer", scalar_ns);
  json.metric("soa_ns_per_sublayer", soa_ns);
  json.metric("soa_cell_speedup", scalar_ns / soa_ns);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_soa_ns_per_sublayer();
  return 0;
}
