// Surrogate-refresh acceptance check (the refresh pipeline's bench): a
// long-lived serving session whose initial GBT was trained on a weak,
// noisy benchmark accumulates clean analytic ground truth from its own
// traffic; the refresh pipeline must
//   (a) DRIFT: retrain and promote a candidate whose held-out Kendall tau
//       strictly improves on the incumbent's — and keep serving afterwards;
//   (b) NO-DRIFT: never promote through the gate when the margin is not
//       genuinely cleared (a strong incumbent plus a steep margin must
//       yield rejections only);
//   (c) OFF: with refresh disabled (the default), a warm map() rerun stays
//       bit-identical to the cold run — the pipeline is invisible until
//       opted into.
//
// Exits non-zero on any failed check. Deterministic: engine threads are
// pinned to 1 and the pipeline runs synchronously, so log arrival order,
// reservoir contents and every tau are pure functions of the seeds. Scale
// via MAPCQ_GENERATIONS / MAPCQ_POPULATION.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "nn/models.h"
#include "soc/platform.h"

namespace {

using namespace mapcq;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoul(v, nullptr, 10) : fallback;
}

bool check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  return ok;
}

struct refresh_scale {
  std::size_t generations = env_or("MAPCQ_GENERATIONS", 4);
  std::size_t population = env_or("MAPCQ_POPULATION", 12);
};

serving::mapping_request make_request(const nn::network& net, bool use_surrogate,
                                      std::uint64_t seed, const refresh_scale& s) {
  serving::mapping_request req;
  req.network = net.name;
  req.use_surrogate = use_surrogate;
  req.ga.generations = s.generations;
  req.ga.population = s.population;
  req.ga.seed = seed;
  req.gbt.n_trees = 40;
  return req;
}

serving::service_options base_options() {
  serving::service_options opt;
  opt.engine.threads = 1;  // deterministic log arrival order
  return opt;
}

bool drift_scenario(const nn::network& net, const soc::platform& plat, const refresh_scale& s,
                    bench::json_reporter& json) {
  std::cout << "--- drift: weak incumbent vs clean ground-truth traffic ---\n";
  serving::service_options opt = base_options();
  opt.refresh.enabled = true;
  opt.refresh.synchronous = true;
  opt.refresh.min_new_samples = 300;
  opt.refresh.promotion_margin = 0.0;
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  // Deliberately weak initial surrogate: a tiny benchmark with heavy
  // measurement noise stands in for a model the workload has drifted away
  // from.
  auto train_req = make_request(net, true, 5, s);
  train_req.bench.samples = 250;
  train_req.bench.noise_stddev = 0.6;
  (void)service.map(train_req);

  // Analytic traffic = pure ground truth; every miss feeds the log until
  // the pipeline promotes.
  serving::mapping_report last;
  std::size_t requests = 0;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    auto analytic = train_req;
    analytic.use_surrogate = false;
    analytic.ga.seed = seed;
    last = service.map(analytic);
    ++requests;
    if (last.refresh && last.refresh->promotions > 0) break;
  }

  bool ok = check(last.refresh.has_value(), "refresh stats present in the report");
  if (!last.refresh) return false;
  const auto& rs = *last.refresh;
  ok &= check(rs.attempts >= 1, "at least one retrain attempt ran");
  ok &= check(rs.promotions >= 1,
              util::format("a candidate was promoted (after %zu analytic requests)", requests));
  ok &= check(rs.promoted_candidate_tau > rs.promoted_incumbent_tau,
              util::format("held-out Kendall tau strictly improved at promotion (%.4f > %.4f)",
                           rs.promoted_candidate_tau, rs.promoted_incumbent_tau));
  ok &= check(rs.epoch == rs.promotions, "predictor epoch tracks promotions");

  // The promoted model keeps serving: the warm surrogate request still
  // validates a front (its memo cache was epoch-invalidated, not corrupted).
  const auto after = service.map(train_req);
  ok &= check(!after.front.empty() && !after.trained_surrogate,
              "session serves surrogate requests on the promoted model");

  util::table t({"observed rows", "logged", "attempts", "promotions", "tau incumbent",
                 "tau candidate"});
  t.add_row({std::to_string(rs.observed), std::to_string(rs.logged),
             std::to_string(rs.attempts), std::to_string(rs.promotions),
             util::format("%.4f", rs.promoted_incumbent_tau),
             util::format("%.4f", rs.promoted_candidate_tau)});
  std::cout << t.str() << "\n";

  json.metric("drift_incumbent_tau", rs.promoted_incumbent_tau);
  json.metric("drift_candidate_tau", rs.promoted_candidate_tau);
  json.metric("drift_promotions", static_cast<double>(rs.promotions));
  json.metric("drift_attempts", static_cast<double>(rs.attempts));
  json.metric("drift_ok", ok ? 1.0 : 0.0);
  return ok;
}

bool no_drift_scenario(const nn::network& net, const soc::platform& plat,
                       const refresh_scale& s, bench::json_reporter& json) {
  std::cout << "--- no drift: strong incumbent, steep gate ---\n";
  serving::service_options opt = base_options();
  opt.refresh.enabled = true;
  opt.refresh.synchronous = true;
  opt.refresh.min_new_samples = 300;
  // Taus live in [-1, 1]; with a healthy incumbent a +0.15 held-out gain
  // is not available from replaying the same distribution, so the gate
  // must reject every candidate.
  opt.refresh.promotion_margin = 0.15;
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  auto train_req = make_request(net, true, 5, s);
  train_req.bench.samples = 2500;
  train_req.bench.noise_stddev = 0.02;
  (void)service.map(train_req);

  serving::mapping_report last;
  for (std::uint64_t seed = 200; seed < 206; ++seed) {
    auto analytic = train_req;
    analytic.use_surrogate = false;
    analytic.ga.seed = seed;
    last = service.map(analytic);
  }

  bool ok = check(last.refresh.has_value(), "refresh stats present in the report");
  if (!last.refresh) return false;
  const auto& rs = *last.refresh;
  ok &= check(rs.attempts >= 1, "retrain attempts ran");
  ok &= check(rs.promotions == 0,
              util::format("no promotion through the gate (%zu attempts, all rejected)",
                           rs.attempts));
  ok &= check(rs.rejections == rs.attempts, "every attempt counted as a rejection");
  ok &= check(rs.epoch == 0, "predictor generation unchanged");
  std::cout << "\n";

  json.metric("nodrift_attempts", static_cast<double>(rs.attempts));
  json.metric("nodrift_promotions", static_cast<double>(rs.promotions));
  json.metric("nodrift_ok", ok ? 1.0 : 0.0);
  return ok;
}

bool disabled_scenario(const nn::network& net, const soc::platform& plat,
                       const refresh_scale& s, bench::json_reporter& json) {
  std::cout << "--- refresh disabled (default): warm rerun bit-identical ---\n";
  serving::mapping_service service{base_options()};  // refresh.enabled = false
  service.register_network(net);
  service.register_platform(plat);

  auto req = make_request(net, true, 5, s);
  req.bench.samples = 400;
  const auto cold = service.map(req);
  const auto warm = service.map(req);

  bool identical = cold.front.size() == warm.front.size() &&
                   cold.ours_latency_index == warm.ours_latency_index &&
                   cold.ours_energy_index == warm.ours_energy_index;
  if (identical) {
    for (std::size_t i = 0; i < cold.front.size(); ++i) {
      const auto& a = cold.front[i];
      const auto& b = warm.front[i];
      identical = identical && a.config == b.config && a.objective == b.objective &&
                  a.avg_latency_ms == b.avg_latency_ms && a.avg_energy_mj == b.avg_energy_mj &&
                  a.accuracy_pct == b.accuracy_pct;
    }
  }
  const std::size_t warm_runs = warm.search_cache.misses + warm.validation_cache.misses;
  bool ok = check(!cold.refresh && !warm.refresh, "no refresh stats surface when disabled");
  ok &= check(identical, "warm map() report bit-identical to cold");
  ok &= check(warm_runs == 0, "warm map() cost zero evaluator runs");
  std::cout << "\n";

  json.metric("disabled_warm_identical", identical ? 1.0 : 0.0);
  json.metric("disabled_warm_runs", static_cast<double>(warm_runs));
  json.metric("disabled_ok", ok ? 1.0 : 0.0);
  return ok;
}

}  // namespace

int main() {
  const refresh_scale s;
  const nn::network net = nn::build_simple_cnn();
  const soc::platform plat = soc::agx_xavier();

  std::cout << "=== surrogate refresh: online GBT retraining from ground-truth traffic ===\n";
  std::cout << util::format("GA scale: %zu generations x %zu population, 1 engine thread\n\n",
                            s.generations, s.population);

  const auto t0 = std::chrono::steady_clock::now();
  bench::json_reporter json{"surrogate_refresh"};
  bool ok = drift_scenario(net, plat, s, json);
  ok &= no_drift_scenario(net, plat, s, json);
  ok &= disabled_scenario(net, plat, s, json);
  json.metric("wall_s",
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());

  std::cout << (ok ? "overall: OK\n" : "overall: FAILED\n");
  return ok ? 0 : 1;
}
