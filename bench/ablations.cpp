// Ablation benches for the design choices called out in DESIGN.md:
//   1. channel reordering (§V-D) on/off,
//   2. concurrent (eq. 8) vs sequential execution of the same partition,
//   3. ideal input mapping (paper assumption) vs a noisy threshold
//      controller,
//   4. hybrid NSGA selection vs the literal eq. 16 ranking,
//   5. DRAM-contention modelling on/off,
//   6. board-level idle-energy accounting on/off.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/evolutionary.h"
#include "data/exit_simulator.h"
#include "perf/concurrent_executor.h"

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  bench::scale s = bench::scale::from_env();
  // Ablations compare trends; half-scale searches are enough.
  s.generations = std::max<std::size_t>(10, s.generations / 4);

  const nn::network& net = tb.visformer;
  const soc::platform& plat = tb.xavier;
  const auto static_cfg = core::make_static_configuration(net, plat);

  std::cout << "=== Ablations ===\n\n";

  {  // 1. channel reordering
    core::evaluator_options on;
    core::evaluator_options off;
    off.reorder = false;
    const core::evaluator ev_on{net, plat, on};
    const core::evaluator ev_off{net, plat, off};
    const auto a = ev_on.evaluate(static_cfg);
    const auto b = ev_off.evaluate(static_cfg);
    util::table t({"channel reordering", "stage-1 acc (%)", "avg energy (mJ)", "avg lat (ms)"});
    t.add_row({"ranked (paper §V-D)", bench::fmt(a.stage_accuracy_pct[0]),
               bench::fmt(a.avg_energy_mj), bench::fmt(a.avg_latency_ms)});
    t.add_row({"unranked (ablation)", bench::fmt(b.stage_accuracy_pct[0]),
               bench::fmt(b.avg_energy_mj), bench::fmt(b.avg_latency_ms)});
    std::cout << t.str();
    std::cout << "-> ranking channels lets more samples exit early, cutting avg cost.\n\n";
  }

  {  // 2. concurrent vs sequential execution
    const core::evaluator ev{net, plat, {}};
    const auto groups = nn::make_partition_groups(net);
    std::vector<std::int64_t> w;
    for (const auto& g : groups) w.push_back(g.width);
    const nn::ranked_network rank{net, w};
    const auto dyn = core::transform(net, groups, rank, static_cfg, plat);
    const auto conc = perf::simulate(plat, dyn.plan);
    const auto seq = perf::simulate_sequential(plat, dyn.plan);
    util::table t({"execution model", "makespan (ms)", "total stall (ms)"});
    double stall_c = 0.0;
    for (const auto& st : conc.stages) stall_c += st.wait_ms;
    t.add_row({"concurrent (eq. 8)", bench::fmt(conc.latency_ms()), bench::fmt(stall_c)});
    t.add_row({"sequential", bench::fmt(seq.stages.back().latency_ms), "-"});
    std::cout << t.str();
    std::cout << util::format("-> concurrency hides %.1f%% of the sequential makespan.\n\n",
                              100.0 * (1.0 - conc.latency_ms() / seq.stages.back().latency_ms));
  }

  {  // 3. ideal vs threshold exit controller
    const core::evaluator ev{net, plat, {}};
    const auto e = ev.evaluate(static_cfg);
    util::table t({"exit controller", "dynamic acc (%)", "early-exit share (%)"});
    const auto ideal = data::simulate_ideal(e.stage_accuracy_pct, 10000);
    t.add_row({"ideal (paper §III-B)", bench::fmt(ideal.dynamic_accuracy_pct),
               bench::fmt(100.0 * (1.0 - ideal.exit_fractions.back()), 1)});
    for (const double noise : {0.02, 0.05, 0.10}) {
      data::controller_params cp;
      cp.confidence_noise = noise;
      const auto out = data::simulate_threshold(e.stage_accuracy_pct, 10000, cp);
      t.add_row({util::format("threshold, noise %.2f", noise),
                 bench::fmt(out.dynamic_accuracy_pct),
                 bench::fmt(100.0 * (1.0 - out.exit_fractions.back()), 1)});
    }
    std::cout << t.str();
    std::cout << "-> controller noise trades accuracy for (mostly unchanged) exit volume.\n\n";
  }

  {  // 4. GA selection mode
    const core::search_space space{net, plat};
    const core::evaluator ev{net, plat, {}};
    util::table t({"selection", "best acc on front (%)", "min energy on front (mJ)",
                   "front size"});
    for (const auto mode : {core::selection_mode::hybrid_nsga,
                            core::selection_mode::objective_only}) {
      core::ga_options ga;
      ga.generations = s.generations;
      ga.population = s.population;
      ga.threads = s.threads;
      ga.selection = mode;
      const auto res = core::evolve(space, ev, ga);
      double best_acc = 0.0;
      double min_e = 1e300;
      for (const std::size_t i : res.pareto) {
        best_acc = std::max(best_acc, res.archive[i].accuracy_pct);
        min_e = std::min(min_e, res.archive[i].avg_energy_mj);
      }
      t.add_row({mode == core::selection_mode::hybrid_nsga ? "hybrid NSGA (default)"
                                                           : "eq. 16 only (paper-literal)",
                 bench::fmt(best_acc), bench::fmt(min_e), std::to_string(res.pareto.size())});
    }
    std::cout << t.str();
    std::cout << "-> literal eq. 16 ranking explores a much thinner front; the hybrid\n"
                 "   selection keeps the corners and the spread (DESIGN.md §5).\n\n";
  }

  {  // 5. DRAM contention modelling (VGG19: large fmaps, memory pressure)
    const auto vgg_cfg = core::make_static_configuration(tb.vgg19, plat);
    core::evaluator_options on;
    core::evaluator_options off;
    off.model.enable_contention = false;
    const core::evaluator ev_on{tb.vgg19, plat, on};
    const core::evaluator ev_off{tb.vgg19, plat, off};
    util::table t({"DRAM contention (VGG19)", "avg lat (ms)", "worst lat (ms)"});
    const auto a = ev_on.evaluate(vgg_cfg);
    const auto b = ev_off.evaluate(vgg_cfg);
    t.add_row({"modelled (default)", bench::fmt(a.avg_latency_ms), bench::fmt(a.worst_latency_ms)});
    t.add_row({"ignored", bench::fmt(b.avg_latency_ms), bench::fmt(b.worst_latency_ms)});
    std::cout << t.str();
    std::cout << "-> CIFAR-scale layers on the calibrated Xavier are compute-bound, so\n"
                 "   DRAM contention barely moves the needle -- consistent with the\n"
                 "   paper treating concurrent stages as independent (eq. 8).\n\n";
  }

  {  // 6. idle-energy accounting
    core::evaluator_options on;
    core::evaluator_options off;
    off.count_idle_power = false;
    const core::evaluator ev_on{net, plat, on};
    const core::evaluator ev_off{net, plat, off};
    util::table t({"energy accounting", "avg energy (mJ)"});
    t.add_row({"board-level (idle counted)", bench::fmt(ev_on.evaluate(static_cfg).avg_energy_mj)});
    t.add_row({"paper eq. 14 only", bench::fmt(ev_off.evaluate(static_cfg).avg_energy_mj)});
    std::cout << t.str();
  }
  return 0;
}
