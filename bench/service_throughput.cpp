// Service-throughput acceptance check for serving::request_scheduler: N
// concurrent clients hammer one mapping_service through submit() and the
// scheduler must (a) coalesce duplicate-heavy load so evaluator executions
// stay ~= the number of *distinct* requests, (b) keep per-session completion
// bounded under an adversarial single-session flood (no starvation), and
// (c) bound the queue with typed rejections under the reject policy — with
// `scheduler_stats` counters reconciling exactly in every scenario:
//     submitted == admitted + coalesced + rejected
//     admitted  == completed + failed + expired        (once drained)
//
// Exits non-zero on any failed check. Scale via MAPCQ_GENERATIONS /
// MAPCQ_POPULATION / MAPCQ_THREADS (defaults are sized for a CI smoke run).
//
// Completion ordinals need no clocks: every submit()-report carries a
// scheduler_stats snapshot stamped at completion, so `scheduler->completed`
// is the report's exact 1-based completion position.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "serving/mapping_service.h"
#include "serving/request_trace.h"
#include "soc/platform.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace mapcq;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoul(v, nullptr, 10) : fallback;
}

struct scale {
  std::size_t generations = env_or("MAPCQ_GENERATIONS", 4);
  std::size_t population = env_or("MAPCQ_POPULATION", 12);
  std::size_t threads = env_or("MAPCQ_THREADS", 2);
};

serving::mapping_request make_request(const nn::network& net, std::uint64_t seed, const scale& s,
                                      double reuse_cap = 1.0) {
  serving::mapping_request req;
  req.network = net.name;
  req.use_surrogate = false;
  req.ga.generations = s.generations;
  req.ga.population = s.population;
  req.ga.seed = seed;
  req.eval.limits.fmap_reuse_cap = reuse_cap;
  return req;
}

bool check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  return ok;
}

bool counters_reconcile(const serving::scheduler_stats& s) {
  return s.submitted == s.admitted + s.coalesced + s.rejected &&
         s.admitted == s.completed + s.failed + s.expired && s.queued == 0 && s.inflight == 0;
}

/// Scenario (a): C clients burst-submit a duplicate-heavy mix — `distinct`
/// unique requests, each submitted `dup` times — while a slow "blocker"
/// request pins the single dispatch worker. The whole burst therefore
/// queues, every duplicate lands inside its representative's coalescing
/// window, and the executions == distinct assertion is deterministic
/// (without the blocker, a fast machine can finish a request before its
/// duplicates are even submitted, which is correct but unassertable).
bool duplicate_heavy(const nn::network& net, const soc::platform& plat, const scale& s,
                     bench::json_reporter& json) {
  std::cout << "--- duplicate-heavy burst (coalescing) ---\n";
  const std::size_t distinct = 6;
  const std::size_t dup = 4;

  serving::service_options opt;
  opt.engine.threads = s.threads;
  opt.workers = 1;
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  // The blocker's GA budget (a cold search of >= 10x16) dwarfs the
  // microseconds the burst below takes to submit.
  scale blocker_scale = s;
  blocker_scale.generations = std::max<std::size_t>(10, s.generations);
  blocker_scale.population = std::max<std::size_t>(16, s.population);
  auto blocker = service.submit(make_request(net, 99, blocker_scale));

  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (std::size_t round = 0; round < dup; ++round)
    for (std::size_t i = 0; i < distinct; ++i)
      futures.push_back(service.submit(make_request(net, 100 + i, s)));
  std::vector<serving::mapping_report> reports;
  reports.reserve(futures.size());
  for (auto& f : futures) reports.push_back(f.get());
  (void)blocker.get();

  const serving::scheduler_stats st = service.scheduler();
  const std::size_t total = distinct * dup;
  util::table t({"requests", "distinct", "executions", "coalesced", "rejected"});
  t.add_row({std::to_string(total), std::to_string(distinct),
             std::to_string(st.completed - 1),  // minus the blocker
             std::to_string(st.coalesced), std::to_string(st.rejected)});
  std::cout << t.str();

  bool ok = check(st.submitted == total + 1, "all submits counted");
  ok &= check(st.completed == distinct + 1,
              util::format("evaluator executions == distinct requests (%zu == %zu)",
                           st.completed - 1, distinct));
  ok &= check(st.coalesced == total - distinct,
              util::format("coalesced == duplicate count (%zu == %zu)", st.coalesced,
                           total - distinct));
  // Duplicates must see the identical report as their representative.
  for (std::size_t i = 0; i < distinct; ++i)
    for (std::size_t round = 1; round < dup; ++round) {
      const auto& a = reports[i];
      const auto& b = reports[round * distinct + i];
      if (a.front.size() != b.front.size() ||
          a.best().objective != b.best().objective) {
        ok = check(false, "coalesced duplicate diverged from its representative");
        round = dup;
        i = distinct;
      }
    }
  ok &= check(counters_reconcile(st), "counters reconcile");
  json.metric("dup_executions", static_cast<double>(st.completed - 1));
  json.metric("dup_coalesced", static_cast<double>(st.coalesced));
  json.metric("dup_ok", ok ? 1.0 : 0.0);
  std::cout << "\n";
  return ok;
}

/// Scenario (b): one adversarial session floods the queue; three polite
/// sessions submit a little work each. With a single dispatch worker the
/// completion ordinals are deterministic, so fairness is a hard assertion.
bool flood_fairness(const nn::network& net, const soc::platform& plat, const scale& s,
                    bench::json_reporter& json) {
  std::cout << "--- single-session flood (fairness) ---\n";
  const std::size_t flood_n = 12;
  const std::size_t polite_sessions = 3;
  const std::size_t polite_n = 3;  // requests per polite session

  serving::service_options opt;
  opt.engine.threads = s.threads;
  opt.workers = 1;  // completion order == dispatch order
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  // The flood goes in first — a FIFO dispatcher would finish every flood
  // request before the first polite one. Distinct reuse caps key distinct
  // sessions, i.e. distinct fairness lanes.
  std::vector<std::shared_future<serving::mapping_report>> flood;
  for (std::size_t i = 0; i < flood_n; ++i)
    flood.push_back(service.submit(make_request(net, 200 + i, s, 1.0)));
  std::vector<std::vector<std::shared_future<serving::mapping_report>>> polite(polite_sessions);
  for (std::size_t c = 0; c < polite_sessions; ++c)
    for (std::size_t i = 0; i < polite_n; ++i)
      polite[c].push_back(service.submit(make_request(net, 300 + i, s, 0.9 - 0.1 * c)));

  const std::size_t total = flood_n + polite_sessions * polite_n;
  std::vector<std::size_t> polite_last(polite_sessions, 0);
  for (std::size_t c = 0; c < polite_sessions; ++c)
    for (auto& f : polite[c]) {
      const serving::mapping_report rep = f.get();
      polite_last[c] = std::max(polite_last[c], rep.scheduler->completed);
    }
  std::size_t flood_last = 0;
  for (auto& f : flood) flood_last = std::max(flood_last, f.get().scheduler->completed);

  util::table t({"session", "requests", "last completion (of " + std::to_string(total) + ")"});
  t.add_row({"flood", std::to_string(flood_n), std::to_string(flood_last)});
  for (std::size_t c = 0; c < polite_sessions; ++c)
    t.add_row({"polite-" + std::to_string(c), std::to_string(polite_n),
               std::to_string(polite_last[c])});
  std::cout << t.str();

  // Round-robin bound: each polite session finishes its k-th request within
  // the k-th rotation (one flood + three polite dispatches per rotation),
  // plus the flood request already executing when the burst arrived. A small
  // slack absorbs submission-order jitter between the burst loops.
  const std::size_t rotation = 1 + polite_sessions;
  const std::size_t bound = 1 + polite_n * rotation + 2;
  bool ok = true;
  std::size_t worst = 0;
  std::size_t best = total;
  for (std::size_t c = 0; c < polite_sessions; ++c) {
    worst = std::max(worst, polite_last[c]);
    best = std::min(best, polite_last[c]);
  }
  ok &= check(worst <= bound,
              util::format("no polite session starves (last completion %zu <= %zu)", worst,
                           bound));
  ok &= check(flood_last == total, "the flood pays the queueing cost, not the polite sessions");
  const double ratio = best == 0 ? 0.0 : static_cast<double>(worst) / static_cast<double>(best);
  ok &= check(ratio <= 1.5, util::format("per-session completion ratio bounded (%.2f <= 1.5)",
                                         ratio));
  ok &= check(counters_reconcile(service.scheduler()), "counters reconcile");
  json.metric("flood_polite_worst_completion", static_cast<double>(worst));
  json.metric("flood_completion_ratio", ratio);
  json.metric("flood_ok", ok ? 1.0 : 0.0);
  std::cout << "\n";
  return ok;
}

/// Scenario (c): a bounded queue under the reject policy — overload is
/// turned away as typed admission_errors instead of piling up.
bool bounded_rejection(const nn::network& net, const soc::platform& plat, const scale& s,
                       bench::json_reporter& json) {
  std::cout << "--- bounded queue (reject policy) ---\n";
  serving::service_options opt;
  opt.engine.threads = s.threads;
  opt.workers = 2;
  opt.scheduler.max_queued = 2;
  opt.scheduler.policy = serving::admission_policy::reject;
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  const std::size_t burst = 10;
  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (std::size_t i = 0; i < burst; ++i)
    futures.push_back(service.submit(make_request(net, 400 + i, s)));

  std::size_t served = 0;
  std::size_t rejected = 0;
  bool typed = true;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++served;
    } catch (const serving::admission_error& e) {
      typed &= e.why() == serving::admission_error::reason::queue_full;
      ++rejected;
    }
  }
  const serving::scheduler_stats st = service.scheduler();
  util::table t({"burst", "served", "rejected"});
  t.add_row({std::to_string(burst), std::to_string(served), std::to_string(rejected)});
  std::cout << t.str();

  bool ok = check(rejected > 0, "overload was rejected, not queued unboundedly");
  ok &= check(typed, "rejections carry admission_error::reason::queue_full");
  ok &= check(served + rejected == burst, "every future resolved");
  ok &= check(st.rejected == rejected && st.completed == served, "stats match observations");
  ok &= check(counters_reconcile(st), "counters reconcile");
  json.metric("reject_burst_rejected", static_cast<double>(rejected));
  json.metric("reject_ok", ok ? 1.0 : 0.0);
  std::cout << "\n";
  return ok;
}

/// Scenario (d): cross-request batch fusion. Dispatch is paused, N distinct
/// same-session requests queue up, and a single worker with unbounded
/// max_fused must drain them as ONE fused dispatch group — the counters are
/// exact (fused == N-1, fused_batches == 1) and every report matches the
/// serial reference run bit-for-bit (summaries compared with the stamped
/// scheduler note stripped, since the counters legitimately differ).
bool fused_batching(const nn::network& net, const soc::platform& plat, const scale& s,
                    bench::json_reporter& json) {
  std::cout << "--- cross-request batch fusion ---\n";
  const std::size_t n = 4;

  // Serial reference: default scheduler (max_fused = 1), same requests.
  serving::service_options serial_opt;
  serial_opt.engine.threads = 1;
  serial_opt.workers = 1;
  serving::mapping_service serial{serial_opt};
  serial.register_network(net);
  serial.register_platform(plat);
  std::vector<std::string> reference;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    core::report_summary sum = serial.map(make_request(net, 500 + i, s)).summary();
    sum.scheduler.reset();
    reference.push_back(core::to_text(sum));
  }
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  serving::service_options opt;
  opt.engine.threads = 1;
  opt.workers = 1;
  opt.scheduler.max_fused = 0;  // unbounded
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  service.pause_scheduler();
  std::vector<std::shared_future<serving::mapping_report>> futures;
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(service.submit(make_request(net, 500 + i, s)));
  const auto t1 = std::chrono::steady_clock::now();
  service.resume_scheduler();

  bool identical = true;
  for (std::size_t i = 0; i < n; ++i) {
    core::report_summary sum = futures[i].get().summary();
    sum.scheduler.reset();
    identical &= core::to_text(sum) == reference[i];
  }
  const double fused_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  const serving::scheduler_stats st = service.scheduler();
  util::table t({"requests", "fused", "fused batches", "serial (s)", "fused (s)"});
  t.add_row({std::to_string(n), std::to_string(st.fused), std::to_string(st.fused_batches),
             util::format("%.2f", serial_s), util::format("%.2f", fused_s)});
  std::cout << t.str();

  bool ok = check(st.fused == n - 1,
                  util::format("followers counted exactly (%zu == %zu)", st.fused, n - 1));
  ok &= check(st.fused_batches == 1, "one fused dispatch group");
  ok &= check(identical, "fused reports bit-identical to serial dispatch");
  ok &= check(counters_reconcile(st), "counters reconcile (fused included)");
  json.metric("fused_followers", static_cast<double>(st.fused));
  json.metric("fused_batches", static_cast<double>(st.fused_batches));
  json.metric("fused_identical", identical ? 1.0 : 0.0);
  json.metric("fused_ok", ok ? 1.0 : 0.0);
  json.metric("fused_wall_s", fused_s);
  std::cout << "\n";
  return ok;
}

/// Nightly soak (MAPCQ_SOAK_REQUESTS > 0): a sustained duplicate-heavy,
/// multi-priority stream across several session lanes. The point is not a
/// new scheduling property but *accounting under volume*: every one of the
/// N futures must resolve with a report and the coalescing/fairness
/// counters must still reconcile exactly once drained.
bool soak(const nn::network& net, const soc::platform& plat, const scale& s, std::size_t n,
          bench::json_reporter& json) {
  std::cout << "--- soak: " << n << " submits ---\n";
  serving::service_options opt;
  opt.engine.threads = s.threads;
  opt.workers = 4;
  serving::mapping_service service{opt};
  service.register_network(net);
  service.register_platform(plat);

  // Tiny per-request GA: the soak stresses the scheduler and the session
  // registry, not the search; coalescing and the session caches absorb the
  // duplicate-heavy stream.
  scale tiny = s;
  tiny.generations = std::min<std::size_t>(s.generations, 2);
  tiny.population = std::min<std::size_t>(s.population, 8);

  const std::size_t sessions = 8;
  const std::size_t distinct = 24;  // distinct seeds per session lane
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::shared_future<serving::mapping_report>> futures;
  futures.reserve(n);
  serving::latency_watch watch;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lane = i % sessions;
    auto req = make_request(net, 1000 + (i / sessions) % distinct, tiny,
                            1.0 - 0.05 * static_cast<double>(lane));
    req.priority = static_cast<int>(i % 3);
    futures.push_back(service.submit(std::move(req)));
    watch.add(futures.back(), std::chrono::steady_clock::now());
  }
  // Sweep to completion first so every sojourn is stamped as its future
  // turns ready; the get() drain below then resolves instantly.
  const std::vector<double> latencies = watch.wait_all();
  std::size_t resolved = 0;
  std::size_t failed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++resolved;
    } catch (...) {
      ++failed;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const double p50 = util::percentile(latencies, 50.0);
  const double p95 = util::percentile(latencies, 95.0);
  const double p99 = util::percentile(latencies, 99.0);

  const serving::scheduler_stats st = service.scheduler();
  util::table t({"submits", "executions", "coalesced", "failed", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                 "wall (s)"});
  t.add_row({std::to_string(n), std::to_string(st.completed), std::to_string(st.coalesced),
             std::to_string(failed), bench::fmt(p50), bench::fmt(p95), bench::fmt(p99),
             util::format("%.2f", wall_s)});
  std::cout << t.str();

  bool ok = check(resolved == n && failed == 0, "every soak future resolved with a report");
  ok &= check(st.submitted == n, "all soak submits counted");
  ok &= check(counters_reconcile(st), "counters reconcile exactly after the soak");
  json.metric("soak_requests", static_cast<double>(n));
  json.metric("soak_executions", static_cast<double>(st.completed));
  json.metric("soak_coalesced", static_cast<double>(st.coalesced));
  json.metric("soak_p50_ms", p50);
  json.metric("soak_p95_ms", p95);
  json.metric("soak_p99_ms", p99);
  json.metric("soak_wall_s", wall_s);
  json.metric("soak_ok", ok ? 1.0 : 0.0);
  std::cout << "\n";
  return ok;
}

}  // namespace

int main() {
  const scale s;
  const nn::network net = nn::build_simple_cnn();
  const soc::platform plat = soc::agx_xavier();

  std::cout << "=== service throughput: scheduler under concurrent submit() streams ===\n";
  std::cout << util::format("GA scale: %zu generations x %zu population, %zu engine threads\n\n",
                            s.generations, s.population, s.threads);

  bench::json_reporter json{"service_throughput"};
  bool ok = duplicate_heavy(net, plat, s, json);
  ok &= flood_fairness(net, plat, s, json);
  ok &= bounded_rejection(net, plat, s, json);
  ok &= fused_batching(net, plat, s, json);
  if (const std::size_t soak_n = env_or("MAPCQ_SOAK_REQUESTS", 0); soak_n > 0)
    ok &= soak(net, plat, s, soak_n, json);

  std::cout << (ok ? "overall: OK\n" : "overall: FAILED\n");
  return ok ? 0 : 1;
}
