// Co-location contention sweep (the acceptance bench for the multi-DNN
// scenario axes): one searched mapping is re-evaluated under 0-, 2- and
// 4-resident contention, a DVFS-capped variant and thermally-throttled
// variants, with resident traffic derived from data/exit_simulator traffic
// mixes (an early-exit-heavy resident streams fewer bytes than a full-depth
// one). Deterministic pass/fail gates, all baselined at zero tolerance:
//
//   idle_identical      -- a request whose scenario is idle (even with
//                          absurd derate coefficients) produces a report
//                          bit-identical to the legacy request;
//   monotone_latency/   -- latency and energy degrade monotonically with
//   monotone_energy        resident count, strictly by 4 residents;
//   dvfs_ok             -- a group-wide DVFS cap never speeds a mapping up;
//   thermal_ok          -- an unsustainable budget rejects, a roomy one
//                          accepts, and resident power tightens it;
//   colocated_search_ok -- a search under a scenario that reserves a CU
//                          returns a non-empty all-feasible front that
//                          never maps work onto the reserved CU.
//
// Scale via MAPCQ_GENERATIONS / MAPCQ_POPULATION / MAPCQ_THREADS.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/serialization.h"
#include "data/exit_simulator.h"
#include "soc/contention.h"
#include "soc/thermal.h"

namespace {

using namespace mapcq;

std::size_t evaluator_runs(const serving::mapping_report& rep) {
  return rep.search_cache.misses + rep.validation_cache.misses;
}

/// Expected fraction of the pipeline a resident's samples traverse under an
/// exit mix: sum_i exit_frac[i] * (i+1)/M. Early-exit-heavy mixes keep less
/// steady traffic on the shared paths than full-depth ones.
double expected_depth(const data::exit_outcome& mix) {
  double depth = 0.0;
  const double stages = static_cast<double>(mix.stages());
  for (std::size_t i = 0; i < mix.stages(); ++i)
    depth += mix.exit_fractions[i] * (static_cast<double>(i + 1) / stages);
  return depth;
}

}  // namespace

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  bench::scale s = bench::scale::from_env();
  s.generations = std::max<std::size_t>(4, s.generations / 8);

  std::cout << "=== co-location: contention / DVFS / thermal scenario sweep ===\n";
  std::cout << util::format("GA scale: %zu generations x %zu population, %zu threads\n\n",
                            s.generations, s.population, s.threads);
  bench::json_reporter json{"colocation"};

  // --- 1. Idle-scenario identity: the zero-FP-ops guard, end to end -------
  serving::mapping_request legacy_req;
  legacy_req.network = tb.visformer.name;
  legacy_req.ga.generations = s.generations;
  legacy_req.ga.population = s.population;
  legacy_req.use_surrogate = false;

  serving::mapping_request idle_req = legacy_req;
  idle_req.eval.contention.interconnect_alpha = 1e6;  // inert while idle
  idle_req.eval.contention.dram_energy_beta = 1e6;

  serving::service_options sopt;
  sopt.engine.threads = s.threads;
  serving::mapping_service legacy_service{sopt};
  legacy_service.register_network(tb.visformer);
  legacy_service.register_platform(tb.xavier);
  serving::mapping_service idle_service{sopt};
  idle_service.register_network(tb.visformer);
  idle_service.register_platform(tb.xavier);

  const serving::mapping_report legacy = legacy_service.map(legacy_req);
  const serving::mapping_report idle = idle_service.map(idle_req);
  const bool idle_identical =
      core::to_text(legacy.summary()) == core::to_text(idle.summary()) &&
      serving::request_fingerprint(legacy_req) == serving::request_fingerprint(idle_req) &&
      !idle.scenario.has_value();
  std::cout << "idle-scenario report vs legacy: "
            << (idle_identical ? "bit-identical" : "DIVERGED (bug!)") << "\n";

  // --- 2. Resident loads from exit-simulator traffic mixes ----------------
  // The searched winner's own traffic defines the platform's "one more DNN"
  // unit load; two exit mixes split it into a full-depth resident and a
  // lighter early-exit-heavy resident.
  const core::evaluation winner = legacy.ours_energy();
  const double per_ms = winner.avg_latency_ms > 0.0 ? 1.0 / (winner.avg_latency_ms * 1e6) : 0.0;
  const double ic_gbps = winner.fmap_traffic_bytes * per_ms;  // inter-CU fmap movement
  // DRAM sees the fmaps plus the model weights re-streamed every inference --
  // the dominant shared-traffic term for a co-resident DNN.
  const double dram_gbps = (winner.fmap_traffic_bytes + tb.visformer.total_weight_bytes()) * per_ms;
  const double power_w =
      winner.avg_latency_ms > 0.0 ? winner.avg_energy_mj / winner.avg_latency_ms : 0.0;
  const data::exit_outcome full_mix = data::simulate_ideal(winner.stage_accuracy_pct);
  const data::exit_outcome early_mix =
      data::simulate_threshold(winner.stage_accuracy_pct, 10000, {0.05, -0.15, 99});
  const double full_depth = expected_depth(full_mix);
  const double early_depth = expected_depth(early_mix);
  std::cout << util::format(
      "resident template: %.3f GB/s interconnect, %.3f GB/s DRAM, %.2f W; exit-mix depth "
      "%.2f (full) vs %.2f (early-exit)\n\n",
      ic_gbps, dram_gbps, power_w, full_depth, early_depth);

  const auto resident = [&](const std::string& name, double depth) {
    soc::resident_load r;
    r.name = name;
    r.interconnect_gbps = ic_gbps * depth;
    r.dram_gbps = dram_gbps * depth;
    r.power_w = power_w * depth;
    return r;
  };

  // --- 3. Contention sweep: 0 / 2 / 4 residents ---------------------------
  util::table sweep({"residents", "latency (ms)", "energy (mJ)", "feasible"});
  std::vector<double> lat, energy;
  for (const std::size_t n : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    core::evaluator_options opt;
    for (std::size_t i = 0; i < n; ++i)
      opt.contention.residents.push_back(
          resident("dnn-" + std::to_string(i), i % 2 ? early_depth : full_depth));
    const core::evaluator eval{tb.visformer, tb.xavier, opt};
    const core::evaluation e = eval.evaluate(winner.config);
    lat.push_back(e.avg_latency_ms);
    energy.push_back(e.avg_energy_mj);
    sweep.add_row({std::to_string(n), bench::fmt(e.avg_latency_ms, 5),
                   bench::fmt(e.avg_energy_mj, 5), e.feasible ? "yes" : "no"});
  }
  std::cout << sweep.str();
  const bool monotone_latency = lat[0] <= lat[1] && lat[1] <= lat[2] && lat[2] > lat[0];
  const bool monotone_energy =
      energy[0] <= energy[1] && energy[1] <= energy[2] && energy[2] > energy[0];
  // Visformer on the calibrated Xavier is compute-bound, so honest resident
  // traffic yields a small (but strictly monotone) derate -- report it in %.
  std::cout << util::format(
      "degradation at 4 residents: +%.4f%% latency, +%.4f%% energy (%s)\n\n",
      100.0 * (lat[2] / lat[0] - 1.0), 100.0 * (energy[2] / energy[0] - 1.0),
      monotone_latency && monotone_energy ? "monotone" : "NOT MONOTONE");

  // --- 4. DVFS-capped variant ---------------------------------------------
  core::evaluator_options capped_opt;
  capped_opt.contention.residents.push_back(resident("dnn-0", full_depth));
  capped_opt.contention.residents.push_back(resident("dnn-1", early_depth));
  capped_opt.contention.dvfs_cap.assign(tb.xavier.size(), 0);
  const core::evaluation capped =
      core::evaluator{tb.visformer, tb.xavier, capped_opt}.evaluate(winner.config);
  const bool dvfs_ok = capped.avg_latency_ms >= lat[1];
  std::cout << util::format("DVFS-capped (theta floor, 2 residents): %.2f ms vs %.2f ms (%s)\n",
                            capped.avg_latency_ms, lat[1], dvfs_ok ? "ok" : "SPED UP (bug!)");

  // --- 5. Thermally-throttled variants ------------------------------------
  soc::thermal_model tight;
  tight.throttle_c = tight.ambient_c + 1e-3;
  core::evaluator_options tight_opt;
  tight_opt.contention.thermal = tight;
  const core::evaluation throttled =
      core::evaluator{tb.visformer, tb.xavier, tight_opt}.evaluate(winner.config);

  soc::thermal_model roomy;
  roomy.throttle_c = roomy.ambient_c + 1e4 * roomy.r_thermal_c_per_w;  // effectively unbounded
  core::evaluator_options roomy_opt;
  roomy_opt.contention.thermal = roomy;
  const core::evaluation sustained =
      core::evaluator{tb.visformer, tb.xavier, roomy_opt}.evaluate(winner.config);

  core::evaluator_options heater_opt = roomy_opt;
  soc::resident_load heater;
  heater.name = "heater";
  heater.power_w = roomy.max_sustained_power_w();  // eats the whole envelope
  heater_opt.contention.residents.push_back(heater);
  const core::evaluation crowded =
      core::evaluator{tb.visformer, tb.xavier, heater_opt}.evaluate(winner.config);

  const bool thermal_ok = !throttled.feasible && sustained.feasible && !crowded.feasible;
  std::cout << util::format(
      "thermal: tight budget %s, roomy budget %s, roomy+resident %s (%s)\n\n",
      throttled.feasible ? "ACCEPTED (bug!)" : "rejects",
      sustained.feasible ? "accepts" : "REJECTED (bug!)",
      crowded.feasible ? "ACCEPTED (bug!)" : "rejects", thermal_ok ? "ok" : "FAILED");

  // --- 6. Search under a co-location scenario -----------------------------
  // One resident reserves a CU and keeps traffic on the shared paths; the
  // session must search only the remaining units and still produce a
  // feasible front.
  serving::mapping_request colocated_req = legacy_req;
  soc::resident_load owner = resident("cohab", full_depth);
  const std::size_t reserved_cu = tb.xavier.size() - 1;
  owner.reserved_units = {reserved_cu};
  colocated_req.eval.contention.residents.push_back(owner);
  serving::mapping_service colocated_service{sopt};
  colocated_service.register_network(tb.visformer);
  colocated_service.register_platform(tb.xavier);
  const serving::mapping_report colocated = colocated_service.map(colocated_req);
  bool colocated_search_ok = !colocated.front.empty() && colocated.scenario.has_value();
  for (const core::evaluation& e : colocated.front) {
    colocated_search_ok = colocated_search_ok && e.feasible;
    for (const std::size_t cu : e.config.mapping)
      colocated_search_ok = colocated_search_ok && cu != reserved_cu;
  }
  std::cout << util::format(
      "co-located search (CU %zu reserved): %zu front entries, %zu evaluator runs, "
      "winner %.2f mJ vs %.2f mJ idle (%s)\n",
      reserved_cu, colocated.front.size(), evaluator_runs(colocated),
      colocated.ours_energy().avg_energy_mj, winner.avg_energy_mj,
      colocated_search_ok ? "ok" : "FAILED");

  // --- metrics + verdict ---------------------------------------------------
  json.metric("idle_identical", idle_identical ? 1.0 : 0.0);
  json.metric("monotone_latency", monotone_latency ? 1.0 : 0.0);
  json.metric("monotone_energy", monotone_energy ? 1.0 : 0.0);
  json.metric("dvfs_ok", dvfs_ok ? 1.0 : 0.0);
  json.metric("thermal_ok", thermal_ok ? 1.0 : 0.0);
  json.metric("colocated_search_ok", colocated_search_ok ? 1.0 : 0.0);
  json.metric("latency_factor_4residents", lat[0] > 0.0 ? lat[2] / lat[0] : 0.0);
  json.metric("energy_factor_4residents", energy[0] > 0.0 ? energy[2] / energy[0] : 0.0);
  json.metric("capped_latency_ms", capped.avg_latency_ms);
  json.metric("colocated_front", static_cast<double>(colocated.front.size()));

  const bool all_ok = idle_identical && monotone_latency && monotone_energy && dvfs_ok &&
                      thermal_ok && colocated_search_ok;
  std::cout << "\noverall: " << (all_ok ? "OK" : "FAILED") << "\n";
  return all_ok ? 0 : 1;
}
