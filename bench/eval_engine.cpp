// Evaluation-engine microbench: how much generation-loop work the memoizing
// engine saves. Runs the same GA twice at the same seed -- once through the
// memoizing engine, once with the engine in pass-through mode (every
// candidate hits the evaluator, the pre-engine behavior) -- and checks the
// two searches land on bit-identical best objectives. Also times raw
// repeated-population batches at several duplication ratios.
//
// Scale via MAPCQ_GENERATIONS / MAPCQ_POPULATION / MAPCQ_THREADS.

#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "core/evolutionary.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  bench::scale s = bench::scale::from_env();
  s.generations = std::max<std::size_t>(10, s.generations / 4);

  const core::search_space space{tb.visformer, tb.xavier};
  const core::evaluator eval{tb.visformer, tb.xavier, {}};

  core::ga_options ga;
  ga.generations = s.generations;
  ga.population = s.population;
  ga.threads = s.threads;

  std::cout << "=== evaluation engine: generation-loop speedup from memoization ===\n";
  std::cout << util::format("GA scale: %zu generations x %zu population, %zu threads\n\n",
                            s.generations, s.population, s.threads);

  core::engine_options memo_opt;
  memo_opt.threads = s.threads;
  core::engine_options bypass_opt = memo_opt;
  bypass_opt.memoize = false;

  auto t0 = std::chrono::steady_clock::now();
  core::evaluation_engine bypass{eval, bypass_opt};
  const auto res_bypass = core::evolve(space, bypass, ga);
  const double bypass_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  core::evaluation_engine memo{eval, memo_opt};
  const auto res_memo = core::evolve(space, memo, ga);
  const double memo_s = seconds_since(t0);

  util::table t({"engine", "wall (s)", "evaluator runs", "cache served", "best objective"});
  t.add_row({"pass-through", bench::fmt(bypass_s), std::to_string(res_bypass.cache.misses), "0",
             util::format("%.6g", res_bypass.best().objective)});
  t.add_row({"memoizing", bench::fmt(memo_s), std::to_string(res_memo.cache.misses),
             util::format("%zu (%.1f%%)", res_memo.cache.hits + res_memo.cache.dedup,
                          100.0 * res_memo.cache.hit_rate()),
             util::format("%.6g", res_memo.best().objective)});
  std::cout << t.str();

  const bool identical = res_memo.best().objective == res_bypass.best().objective &&
                         res_memo.archive.size() == res_bypass.archive.size();
  std::cout << util::format(
      "\nGA wall-clock speedup: %.2fx | evaluator-run reduction: %.2fx | results %s\n\n",
      bypass_s / memo_s,
      static_cast<double>(res_bypass.cache.misses) /
          static_cast<double>(std::max<std::size_t>(1, res_memo.cache.misses)),
      identical ? "bit-identical" : "DIVERGED (bug!)");

  bench::json_reporter json{"eval_engine"};
  json.metric("wall_s_passthrough", bypass_s);
  json.metric("wall_s_memoizing", memo_s);
  json.metric("evaluator_runs", static_cast<double>(res_memo.cache.misses));
  json.metric("cache_hit_rate", res_memo.cache.hit_rate());
  json.metric("bit_identical", identical ? 1.0 : 0.0);

  // Raw batch view: a population where a fraction of the candidates repeat
  // (the steady-state GA shape: elites + recreated offspring).
  std::cout << "--- repeated-population batches (population " << s.population << ") ---\n";
  util::table b({"duplicate share", "evaluator runs", "batch time cold (ms)", "warm (ms)"});
  util::rng gen{7};
  for (const double dup_share : {0.0, 0.25, 0.5, 0.75}) {
    std::vector<core::configuration> batch;
    batch.reserve(s.population);
    const auto distinct =
        std::max<std::size_t>(1, static_cast<std::size_t>((1.0 - dup_share) * s.population));
    for (std::size_t i = 0; i < distinct; ++i) batch.push_back(space.decode(space.random(gen)));
    for (std::size_t i = batch.size(); i < s.population; ++i) batch.push_back(batch[i % distinct]);

    core::evaluation_engine engine{eval, memo_opt};
    auto b0 = std::chrono::steady_clock::now();
    (void)engine.evaluate_batch(batch);
    const double cold_ms = 1e3 * seconds_since(b0);
    b0 = std::chrono::steady_clock::now();
    (void)engine.evaluate_batch(batch);  // steady state: everything cached
    const double warm_ms = 1e3 * seconds_since(b0);
    b.add_row({util::format("%.0f%%", 100.0 * dup_share), std::to_string(engine.stats().misses),
               bench::fmt(cold_ms), bench::fmt(warm_ms, 3)});
  }
  std::cout << b.str();
  return 0;
}
