// Evaluation-engine microbench: how much generation-loop work the memoizing
// engine saves. Runs the same GA twice at the same seed -- once through the
// memoizing engine, once with the engine in pass-through mode (every
// candidate hits the evaluator, the pre-engine behavior) -- and checks the
// two searches land on bit-identical best objectives. Also times raw
// repeated-population batches at several duplication ratios.
//
// Scale via MAPCQ_GENERATIONS / MAPCQ_POPULATION / MAPCQ_THREADS.

#include <chrono>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "core/evolutionary.h"
#include "core/serialization.h"
#include "perf/batch_characterizer.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  bench::scale s = bench::scale::from_env();
  s.generations = std::max<std::size_t>(10, s.generations / 4);

  const core::search_space space{tb.visformer, tb.xavier};
  const core::evaluator eval{tb.visformer, tb.xavier, {}};

  core::ga_options ga;
  ga.generations = s.generations;
  ga.population = s.population;
  ga.threads = s.threads;

  std::cout << "=== evaluation engine: generation-loop speedup from memoization ===\n";
  std::cout << util::format("GA scale: %zu generations x %zu population, %zu threads\n\n",
                            s.generations, s.population, s.threads);

  core::engine_options memo_opt;
  memo_opt.threads = s.threads;
  core::engine_options bypass_opt = memo_opt;
  bypass_opt.memoize = false;

  auto t0 = std::chrono::steady_clock::now();
  core::evaluation_engine bypass{eval, bypass_opt};
  const auto res_bypass = core::evolve(space, bypass, ga);
  const double bypass_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  core::evaluation_engine memo{eval, memo_opt};
  const auto res_memo = core::evolve(space, memo, ga);
  const double memo_s = seconds_since(t0);

  util::table t({"engine", "wall (s)", "evaluator runs", "cache served", "best objective"});
  t.add_row({"pass-through", bench::fmt(bypass_s), std::to_string(res_bypass.cache.misses), "0",
             util::format("%.6g", res_bypass.best().objective)});
  t.add_row({"memoizing", bench::fmt(memo_s), std::to_string(res_memo.cache.misses),
             util::format("%zu (%.1f%%)", res_memo.cache.hits + res_memo.cache.dedup,
                          100.0 * res_memo.cache.hit_rate()),
             util::format("%.6g", res_memo.best().objective)});
  std::cout << t.str();

  const bool identical = res_memo.best().objective == res_bypass.best().objective &&
                         res_memo.archive.size() == res_bypass.archive.size();
  std::cout << util::format(
      "\nGA wall-clock speedup: %.2fx | evaluator-run reduction: %.2fx | results %s\n\n",
      bypass_s / memo_s,
      static_cast<double>(res_bypass.cache.misses) /
          static_cast<double>(std::max<std::size_t>(1, res_memo.cache.misses)),
      identical ? "bit-identical" : "DIVERGED (bug!)");

  bench::json_reporter json{"eval_engine"};
  json.metric("wall_s_passthrough", bypass_s);
  json.metric("wall_s_memoizing", memo_s);
  json.metric("evaluator_runs", static_cast<double>(res_memo.cache.misses));
  json.metric("cache_hit_rate", res_memo.cache.hit_rate());
  json.metric("bit_identical", identical ? 1.0 : 0.0);

  // Raw batch view: a population where a fraction of the candidates repeat
  // (the steady-state GA shape: elites + recreated offspring).
  std::cout << "--- repeated-population batches (population " << s.population << ") ---\n";
  util::table b({"duplicate share", "evaluator runs", "batch time cold (ms)", "warm (ms)"});
  util::rng gen{7};
  for (const double dup_share : {0.0, 0.25, 0.5, 0.75}) {
    std::vector<core::configuration> batch;
    batch.reserve(s.population);
    const auto distinct =
        std::max<std::size_t>(1, static_cast<std::size_t>((1.0 - dup_share) * s.population));
    for (std::size_t i = 0; i < distinct; ++i) batch.push_back(space.decode(space.random(gen)));
    for (std::size_t i = batch.size(); i < s.population; ++i) batch.push_back(batch[i % distinct]);

    core::evaluation_engine engine{eval, memo_opt};
    auto b0 = std::chrono::steady_clock::now();
    (void)engine.evaluate_batch(batch);
    const double cold_ms = 1e3 * seconds_since(b0);
    b0 = std::chrono::steady_clock::now();
    (void)engine.evaluate_batch(batch);  // steady state: everything cached
    const double warm_ms = 1e3 * seconds_since(b0);
    b.add_row({util::format("%.0f%%", 100.0 * dup_share), std::to_string(engine.stats().misses),
               bench::fmt(cold_ms), bench::fmt(warm_ms, 3)});
  }
  std::cout << b.str();

  // SoA batch path vs the scalar per-configuration loop, on the raw
  // evaluator (no cache in the way): the before/after line of the
  // vectorized batch characterizer. Identity gates at zero tolerance in
  // bench/baseline.json; the speedup itself is informational (wall clock).
  std::cout << util::format("\n--- SoA batch evaluator vs scalar loop (simd %s) ---\n",
                            perf::simd_enabled() ? "on" : "off");
  const std::size_t n_soa = std::max<std::size_t>(256, 8 * s.population);
  std::vector<core::configuration> soa_configs;
  soa_configs.reserve(n_soa);
  util::rng soa_gen{41};
  for (std::size_t i = 0; i < n_soa; ++i)
    soa_configs.push_back(space.decode(space.random(soa_gen)));
  std::vector<const core::configuration*> soa_ptrs;
  soa_ptrs.reserve(n_soa);
  for (const core::configuration& c : soa_configs) soa_ptrs.push_back(&c);

  (void)eval.evaluate(soa_configs.front());  // warm up lazy init outside timers
  double scalar_s = 1e300;
  std::vector<core::evaluation> scalar_out;
  for (int rep = 0; rep < 3; ++rep) {  // best-of-3: shrug off scheduler noise
    t0 = std::chrono::steady_clock::now();
    std::vector<core::evaluation> run;
    run.reserve(n_soa);
    for (const core::configuration& c : soa_configs) run.push_back(eval.evaluate(c));
    scalar_s = std::min(scalar_s, seconds_since(t0));
    scalar_out = std::move(run);
  }

  double soa_s = 1e300;
  std::vector<core::evaluation> soa_out;
  for (int rep = 0; rep < 3; ++rep) {
    t0 = std::chrono::steady_clock::now();
    std::vector<core::evaluation> run = eval.evaluate_batch(soa_ptrs);
    soa_s = std::min(soa_s, seconds_since(t0));
    soa_out = std::move(run);
  }

  bool soa_identical = soa_out.size() == scalar_out.size();
  for (std::size_t i = 0; soa_identical && i < soa_out.size(); ++i) {
    std::ostringstream a, b2;
    core::write_evaluation(a, soa_out[i]);
    core::write_evaluation(b2, scalar_out[i]);
    soa_identical = a.str() == b2.str();
  }

  util::table soa_t({"path", "wall (ms)", "configs/s", "identical"});
  soa_t.add_row({"scalar loop", bench::fmt(1e3 * scalar_s),
                 bench::fmt(static_cast<double>(n_soa) / scalar_s), "-"});
  soa_t.add_row({"SoA batch", bench::fmt(1e3 * soa_s),
                 bench::fmt(static_cast<double>(n_soa) / soa_s),
                 soa_identical ? "yes" : "NO (bug!)"});
  std::cout << soa_t.str();
  std::cout << util::format("\nSoA batch speedup: %.2fx over %zu configurations\n",
                            scalar_s / soa_s, n_soa);

  json.metric("soa_identical", soa_identical ? 1.0 : 0.0);
  json.metric("soa_speedup", scalar_s / soa_s);
  json.metric("soa_configs_per_s", static_cast<double>(n_soa) / soa_s);
  return 0;
}
