// Reproduces Fig. 1: performance comparison between deployment options for
// Visformer on CIFAR-100 / AGX Xavier --
//   left:  energy & latency of GPU-only, DLA-only, static width-partitioned
//          mapping and the dynamic Map-Conquer mapping;
//   right: feature-map reuse of the dynamic mapping vs the static mapping
//          (paper: 40% less reuse at a <= 0.5% accuracy cost).

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  const bench::scale s = bench::scale::from_env();

  std::cout << "=== Fig. 1: mapping options for Visformer on AGX Xavier ===\n\n";

  const auto gpu = core::single_cu_baseline(tb.visformer, tb.xavier, 0);
  const auto dla = core::single_cu_baseline(tb.visformer, tb.xavier, 1);
  const auto stat = core::static_mapping_baseline(tb.visformer, tb.xavier);

  // Dynamic mapping: unconstrained search, then the paper's highlight rule
  // (<= 0.5% accuracy drop, best energy).
  const auto search = bench::run_search(tb.visformer, tb.xavier, 1.0, s);
  const auto dynamic =
      bench::pick_constrained(search.front, gpu.accuracy_pct, 0.5, 1e9, true)
          .value_or(search.ours_energy());

  util::table t({"deployment", "energy (mJ)", "latency (ms)", "top-1 (%)", "fmap reuse (%)"});
  t.add_row({"GPU-only", bench::fmt(gpu.energy_mj), bench::fmt(gpu.latency_ms),
             bench::fmt(gpu.accuracy_pct), "-"});
  t.add_row({"DLA-only", bench::fmt(dla.energy_mj), bench::fmt(dla.latency_ms),
             bench::fmt(dla.accuracy_pct), "-"});
  const auto pipe = core::pipeline_baseline(tb.visformer, tb.xavier);
  t.add_row({"Depth pipeline (AxoNN-style)", bench::fmt(pipe.energy_mj),
             bench::fmt(pipe.latency_ms), bench::fmt(pipe.accuracy_pct), "-"});
  t.add_row({"Static mapping", bench::fmt(stat.avg_energy_mj), bench::fmt(stat.avg_latency_ms),
             bench::fmt(stat.accuracy_pct), bench::fmt(stat.fmap_reuse_pct, 1)});
  t.add_row({"Map-Conquer (dynamic)", bench::fmt(dynamic.avg_energy_mj),
             bench::fmt(dynamic.avg_latency_ms), bench::fmt(dynamic.accuracy_pct),
             bench::fmt(dynamic.fmap_reuse_pct, 1)});
  std::cout << t.str() << "\n";

  std::cout << "paper reference: GPU 197.35 mJ / 15.01 ms; DLA 53.71 mJ / 69.22 ms;\n"
            << "  static ~11.1% energy gain vs GPU & ~42.6% speedup vs DLA;\n"
            << "  dynamic dominates DLA on both axes (44.4% speedup, 14.5% energy gain).\n\n";

  util::table claims({"claim (paper)", "paper", "ours", "holds"});
  const auto yes_no = [](bool b) { return std::string(b ? "yes" : "NO"); };
  const double stat_speedup = 100.0 * (1.0 - stat.avg_latency_ms / dla.latency_ms);
  const double stat_egain = 100.0 * (1.0 - stat.avg_energy_mj / gpu.energy_mj);
  const double dyn_speedup = 100.0 * (1.0 - dynamic.avg_latency_ms / dla.latency_ms);
  const double dyn_egain_vs_dla = 100.0 * (1.0 - dynamic.avg_energy_mj / dla.energy_mj);
  claims.add_row({"static speedup vs DLA-only", "42.6%", bench::fmt(stat_speedup, 1) + "%",
                  yes_no(stat_speedup > 0.0)});
  claims.add_row({"static energy gain vs GPU-only", "11.1%", bench::fmt(stat_egain, 1) + "%",
                  yes_no(stat_egain > 0.0)});
  claims.add_row({"dynamic speedup vs DLA-only", "44.4%", bench::fmt(dyn_speedup, 1) + "%",
                  yes_no(dyn_speedup > stat_speedup)});
  claims.add_row({"dynamic energy gain vs DLA-only", "14.5%",
                  bench::fmt(dyn_egain_vs_dla, 1) + "%", yes_no(dyn_egain_vs_dla > 0.0)});

  // Right subfigure: reuse reduction vs the static mapping.
  const double reuse_cut = 100.0 * (1.0 - dynamic.fmap_reuse_pct / stat.fmap_reuse_pct);
  const double acc_drop = gpu.accuracy_pct - dynamic.accuracy_pct;
  claims.add_row({"fmap reuse cut vs static", "40% less", bench::fmt(reuse_cut, 1) + "% less",
                  yes_no(reuse_cut >= 0.0)});
  claims.add_row({"accuracy cost of the cut", "0.5%", bench::fmt(acc_drop, 2) + "%",
                  yes_no(acc_drop <= 0.75)});
  std::cout << claims.str();
  return 0;
}
