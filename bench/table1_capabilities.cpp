// Reproduces Table I: qualitative capability matrix of related work vs
// Map-and-Conquer, and demonstrates -- by running this repository's code --
// that each claimed capability is actually implemented.

#include <iostream>

#include "bench_common.h"
#include "core/evolutionary.h"
#include "core/search_space.h"
#include "data/exit_simulator.h"
#include "perf/concurrent_executor.h"

int main() {
  using namespace mapcq;

  std::cout << "=== Table I: capability comparison ===\n\n";
  util::table t({"related work", "early exiting", "model parallelism", "collaborative exec",
                 "DVFS", "training free"});
  t.add_row({"AxoNN [4]", "", "", "x", "", "x"});
  t.add_row({"Jedi [14]", "", "x", "x", "", "x"});
  t.add_row({"DistrEdge [8]", "", "x", "x", "", "x"});
  t.add_row({"Kang et al. [15]", "", "x", "x", "x", "x"});
  t.add_row({"S2DNAS [9]", "x", "x", "", "", "x"});
  t.add_row({"HADAS [17]", "x", "", "", "x", ""});
  t.add_row({"Edgebert [18]", "x", "", "x", "x", ""});
  t.add_row({"Ours (Map-and-Conquer)", "x", "x", "x", "x", "x"});
  std::cout << t.str() << "\n";

  // Demonstrate each "Ours" capability with live code.
  const bench::testbed tb;
  util::table demo({"capability", "demonstrated by", "evidence"});

  {  // early exiting
    const std::vector<double> acc = {60.0, 75.0, 88.0};
    const auto exits = data::simulate_ideal(acc, 10000);
    demo.add_row({"early exiting", "data::simulate_ideal",
                  util::format("%.0f%% of samples exit before the last stage",
                               100.0 * (1.0 - exits.exit_fractions.back()))});
  }
  {  // model parallelism (width partitioning)
    const core::search_space space{tb.visformer, tb.xavier};
    demo.add_row({"model parallelism", "core::search_space",
                  util::format("%zu width-partitionable groups across %zu stages",
                               space.groups(), space.stages())});
  }
  {  // collaborative execution (+ the memoizing evaluation service)
    core::evaluator_options eopt;
    eopt.dynamic_exits = false;
    const core::evaluator stat_eval{tb.visformer, tb.xavier, eopt};
    core::evaluation_engine stat_engine{stat_eval};
    const auto stat = core::static_mapping_baseline(stat_engine);
    demo.add_row({"collaborative execution", "perf::simulate (eq. 8)",
                  util::format("3 CUs concurrently, %.1f KiB fmaps exchanged",
                               stat.fmap_traffic_bytes / 1024.0)});
    const auto again = core::static_mapping_baseline(stat_engine);  // cache hit
    const auto cache = stat_engine.stats();
    demo.add_row({"memoized evaluation", "core::evaluation_engine",
                  util::format("repeat query: %zu evaluator run, %zu cache hit (%s)",
                               cache.misses, cache.hits,
                               again.objective == stat.objective ? "bit-identical" : "DIVERGED")});
  }
  {  // DVFS
    const auto& gpu = tb.xavier.unit(0);
    demo.add_row({"DVFS", "soc::dvfs_table",
                  util::format("GPU %zu levels (%.0f..%.0f MHz), DLA %zu levels",
                               gpu.dvfs.levels(), gpu.dvfs.frequency_mhz(0),
                               gpu.dvfs.frequency_mhz(gpu.dvfs.max_level()),
                               tb.xavier.unit(1).dvfs.levels())});
  }
  {  // training free
    demo.add_row({"training free", "nn::channel_ranking + data::accuracy_model",
                  "pretrained importance profiles; no gradient steps anywhere"});
  }
  std::cout << demo.str();
  return 0;
}
