// Shard-restore acceptance bench (the service_group subsystem's gate): a
// group that is snapshotted, destroyed and rebuilt — and then resharded to
// a different shard count — must answer warm requests with ZERO evaluator
// runs and bit-identical mapping_reports. Anything else means the snapshot
// lost cache entries, the ring routed a session away from its state, or
// the restored GBT diverged from the one that served cold traffic.
//
// Scale via MAPCQ_GENERATIONS / MAPCQ_POPULATION / MAPCQ_THREADS.

#include <chrono>
#include <filesystem>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "serving/service_group.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::size_t evaluator_runs(const mapcq::serving::mapping_report& rep) {
  return rep.search_cache.misses + rep.validation_cache.misses;
}

bool identical_reports(const mapcq::serving::mapping_report& a,
                       const mapcq::serving::mapping_report& b) {
  if (a.front.size() != b.front.size()) return false;
  if (a.ours_latency_index != b.ours_latency_index) return false;
  if (a.ours_energy_index != b.ours_energy_index) return false;
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    const auto& x = a.front[i];
    const auto& y = b.front[i];
    if (!(x.config == y.config) || x.objective != y.objective ||
        x.avg_latency_ms != y.avg_latency_ms || x.avg_energy_mj != y.avg_energy_mj ||
        x.accuracy_pct != y.accuracy_pct || x.fmap_reuse_pct != y.fmap_reuse_pct)
      return false;
  }
  if (a.search.total_evaluations != b.search.total_evaluations) return false;
  return a.effective_config == b.effective_config;
}

}  // namespace

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  bench::scale s = bench::scale::from_env();
  s.generations = std::max<std::size_t>(10, s.generations / 4);

  const std::string dir = "/tmp/mapcq_bench_shard_restore";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  serving::group_options gopt;
  gopt.shards = 2;
  serving::service_options sopt;
  sopt.engine.threads = s.threads;
  sopt.workers = 1;
  sopt.snapshot.directory = dir;
  sopt.snapshot.spill_on_evict = true;

  // Three distinct sessions (ranking seed keys them apart), one of them
  // surrogate so the once-trained GBT has to survive the restarts too.
  std::vector<serving::mapping_request> reqs;
  for (std::uint64_t i = 0; i < 3; ++i) {
    serving::mapping_request req;
    req.network = tb.visformer.name;
    req.use_surrogate = i == 2;
    req.ga.generations = s.generations;
    req.ga.population = s.population;
    req.ranking_seed = i;
    reqs.push_back(req);
  }

  std::cout << "=== shard restore: snapshot -> kill -> rebuild -> reshard ===\n";
  std::cout << util::format("GA scale: %zu generations x %zu population, %zu threads\n\n",
                            s.generations, s.population, s.threads);

  // --- phase 1: cold serve on a 2-shard group, then snapshot + destroy ----
  std::vector<serving::mapping_report> cold;
  std::size_t cold_runs = 0, snapshots_written = 0;
  double cold_s = 0.0;
  {
    serving::service_group group{gopt, sopt};
    group.register_network(tb.visformer);
    group.register_platform(tb.xavier);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& req : reqs) cold.push_back(group.map(req));
    cold_s = seconds_since(t0);
    for (const auto& rep : cold) cold_runs += evaluator_runs(rep);
    snapshots_written = group.snapshot_all();
  }  // group destroyed: the simulated process kill

  // --- phase 2: rebuild the same topology, serve warm from snapshots ------
  serving::service_group group{gopt, sopt};
  group.register_network(tb.visformer);
  group.register_platform(tb.xavier);
  std::size_t restored_warm_runs = 0, restored_identical = 0;
  const auto t1 = std::chrono::steady_clock::now();
  std::vector<serving::mapping_report> warm;
  for (const auto& req : reqs) warm.push_back(group.map(req));
  const double restore_s = seconds_since(t1);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    restored_warm_runs += evaluator_runs(warm[i]);
    restored_identical += identical_reports(cold[i], warm[i]) ? 1 : 0;
  }
  const std::size_t sessions_restored = group.stats().sessions_restored;

  // --- phase 3: reshard to 3, warm again across the new ring --------------
  group.reshard(3);
  std::size_t reshard_warm_runs = 0, reshard_identical = 0;
  const auto t2 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto rep = group.map(reqs[i]);
    reshard_warm_runs += evaluator_runs(rep);
    reshard_identical += identical_reports(cold[i], rep) ? 1 : 0;
  }
  const double reshard_s = seconds_since(t2);

  util::table t({"phase", "shards", "wall (s)", "evaluator runs", "identical reports"});
  t.add_row({"cold", "2", bench::fmt(cold_s), std::to_string(cold_runs), "-"});
  t.add_row({"restored", "2", bench::fmt(restore_s), std::to_string(restored_warm_runs),
             std::to_string(restored_identical) + "/" + std::to_string(reqs.size())});
  t.add_row({"resharded", "3", bench::fmt(reshard_s), std::to_string(reshard_warm_runs),
             std::to_string(reshard_identical) + "/" + std::to_string(reqs.size())});
  std::cout << t.str();

  const bool ok = restored_warm_runs == 0 && reshard_warm_runs == 0 &&
                  restored_identical == reqs.size() && reshard_identical == reqs.size() &&
                  sessions_restored == reqs.size() && snapshots_written == reqs.size();
  std::cout << util::format(
      "\nsnapshots written: %zu | sessions restored: %zu | restore failures: %zu | %s\n",
      snapshots_written, sessions_restored, group.stats().restore_failures,
      ok ? "OK" : "FAILED");

  bench::json_reporter json{"shard_restore"};
  json.metric("cold_runs", static_cast<double>(cold_runs));
  json.metric("restored_warm_runs", static_cast<double>(restored_warm_runs));
  json.metric("restored_identical", restored_identical == reqs.size() ? 1.0 : 0.0);
  json.metric("reshard_warm_runs", static_cast<double>(reshard_warm_runs));
  json.metric("reshard_identical", reshard_identical == reqs.size() ? 1.0 : 0.0);
  json.metric("sessions_restored", static_cast<double>(sessions_restored));
  json.metric("cold_wall_s", cold_s);
  json.metric("restore_wall_s", restore_s);

  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
