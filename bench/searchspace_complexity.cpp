// Reproduces the §V-A search-space size estimate: one Visformer layer with
// 8 partitioning ratios, M = 3 stages and |theta| = 50 DVFS settings spans
// O(1.5e5) configurations (8^3 * 3! * 50); the full joint space is
// astronomically larger, which motivates the evolutionary search.

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/search_space.h"

int main() {
  using namespace mapcq;
  const bench::testbed tb;

  std::cout << "=== §V-A: search-space complexity ===\n\n";

  util::table t({"network", "groups", "stages", "ratio levels", "per-layer (paper rule)",
                 "log10(total space)"});
  for (const nn::network* net : {&tb.visformer, &tb.vgg19}) {
    const core::search_space space{*net, tb.xavier};
    t.add_row({net->name, std::to_string(space.groups()), std::to_string(space.stages()),
               std::to_string(space.ratio_levels()),
               util::format("%.3g", space.paper_per_layer_estimate(50.0)),
               bench::fmt(space.log10_total(), 1)});
  }
  std::cout << t.str() << "\n";

  const core::search_space vis{tb.visformer, tb.xavier};
  std::cout << util::format(
      "paper: O(1.5e5) = 8^3 * 3! * 50 per Visformer layer -> ours: %.4g\n",
      vis.paper_per_layer_estimate(50.0));
  std::cout << util::format(
      "true per-CU DVFS product on Xavier: %g configurations (paper collapses it to 50)\n",
      tb.xavier.dvfs_configurations());
  std::cout << util::format(
      "GA budget: 12,000 evaluations cover 10^%.1f of the joint space\n",
      std::log10(12000.0) - vis.log10_total());
  return 0;
}
