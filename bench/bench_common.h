#pragma once
// Shared setup for the reproduction benches: calibrated platform, paper
// baselines, search-scale control and common selection helpers.
//
// Scale: the paper runs 200 generations x 60 population (12k evaluations,
// §VI-A). That is the default; override with the environment variables
// MAPCQ_GENERATIONS / MAPCQ_POPULATION / MAPCQ_THREADS for quick runs.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/baselines.h"
#include "nn/models.h"
#include "perf/calibration.h"
#include "serving/mapping_service.h"
#include "util/strings.h"
#include "util/table.h"

namespace mapcq::bench {

struct scale {
  std::size_t generations = 200;
  std::size_t population = 60;
  std::size_t threads = 12;

  static scale from_env() {
    scale s;
    if (const char* g = std::getenv("MAPCQ_GENERATIONS"))
      s.generations = std::strtoul(g, nullptr, 10);
    if (const char* p = std::getenv("MAPCQ_POPULATION"))
      s.population = std::strtoul(p, nullptr, 10);
    if (const char* t = std::getenv("MAPCQ_THREADS")) s.threads = std::strtoul(t, nullptr, 10);
    return s;
  }
};

/// Calibrated Xavier + the two paper networks, built once per bench.
struct testbed {
  nn::network visformer = nn::build_visformer();
  nn::network vgg19 = nn::build_vgg19();
  soc::platform xavier;

  testbed() { xavier = perf::calibrated_xavier(visformer, vgg19).plat; }
};

/// One Map-and-Conquer search under a feature-map reuse cap (1.0 = none),
/// issued through the serving front-end. Each distinct reuse cap keys its
/// own session, so benches sweeping regimes get isolated caches.
inline serving::mapping_report run_search(const nn::network& net, const soc::platform& plat,
                                          double reuse_cap, const scale& s,
                                          std::uint64_t seed = 1) {
  serving::service_options sopt;
  sopt.engine.threads = s.threads;
  serving::mapping_service service{sopt};
  service.register_network(net);
  service.register_platform(plat);

  serving::mapping_request req;
  req.network = net.name;
  req.ga.generations = s.generations;
  req.ga.population = s.population;
  req.ga.seed = seed;
  req.eval.limits.fmap_reuse_cap = reuse_cap;
  return service.map(req);
}

/// Best energy among validated picks with accuracy within `acc_drop` of the
/// reference accuracy and latency below `latency_cap_ms` (paper Fig. 6
/// highlight rule: "highest latency-energy tradeoff while preserving less
/// than 0.5% drop in accuracy").
inline std::optional<core::evaluation> pick_constrained(
    const std::vector<core::evaluation>& candidates, double ref_accuracy, double acc_drop,
    double latency_cap_ms, bool minimize_energy) {
  std::optional<core::evaluation> best;
  for (const auto& e : candidates) {
    if (e.accuracy_pct < ref_accuracy - acc_drop) continue;
    if (e.avg_latency_ms > latency_cap_ms) continue;
    const double v = minimize_energy ? e.avg_energy_mj : e.avg_latency_ms;
    const double b = !best ? 1e300 : (minimize_energy ? best->avg_energy_mj : best->avg_latency_ms);
    if (v < b) best = e;
  }
  return best;
}

inline std::string fmt(double v, int d = 2) { return util::table::num(v, d); }

/// Machine-readable metric sink for the CI bench job. When the environment
/// variable MAPCQ_BENCH_JSON names a file, the destructor appends one
/// `{"bench": <name>, "metrics": {...}}` object as a single line (JSONL —
/// tools/compare_bench.py merges the lines into BENCH.json and diffs the
/// gated metrics against bench/baseline.json). No-op when unset, so
/// interactive runs never touch the filesystem.
class json_reporter {
 public:
  explicit json_reporter(std::string name) : name_(std::move(name)) {
    if (const char* p = std::getenv("MAPCQ_BENCH_JSON")) path_ = p;
  }

  void metric(std::string key, double value) { metrics_.emplace_back(std::move(key), value); }

  ~json_reporter() {
    if (path_.empty()) return;
    std::ofstream os{path_, std::ios::app};
    if (!os) return;
    os << "{\"bench\":\"" << name_ << "\",\"metrics\":{";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i) os << ',';
      char buf[64];
      // Non-finite values have no JSON literal; null keeps the line valid.
      if (std::isfinite(metrics_[i].second))
        std::snprintf(buf, sizeof buf, "%.17g", metrics_[i].second);
      else
        std::snprintf(buf, sizeof buf, "null");
      os << '"' << metrics_[i].first << "\":" << buf;
    }
    os << "}}\n";
  }

 private:
  std::string name_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace mapcq::bench
