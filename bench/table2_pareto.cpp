// Reproduces Table II: performance breakdown of the Pareto-optimal models
// (Ours-L latency-oriented, Ours-E energy-oriented) under the three
// feature-map reuse regimes, for Visformer (ViT) and VGG19 (CNN), against
// the GPU-only / DLA-only baselines. Also checks the §VI-D claims for
// VGG19 (up to 4.62x energy gain, 4.44x speedup, >80% early exits).

#include <algorithm>
#include <iostream>

#include "bench_common.h"

namespace {

using namespace mapcq;

struct paper_row {
  const char* strategy;
  const char* impl;
  double acc, energy, latency, reuse;  // -1 = not reported
};

void run_network(const nn::network& net, const soc::platform& plat, const bench::scale& s,
                 const char* title, const paper_row* paper, std::size_t paper_rows,
                 std::uint64_t seed_base) {
  std::cout << "--- " << title << " ---\n";

  const auto gpu = core::single_cu_baseline(net, plat, 0);
  const auto dla = core::single_cu_baseline(net, plat, 1);

  util::table t({"opt. strategy", "impl.", "top-1 (%)", "avg energy (mJ)", "avg lat (ms)",
                 "fmap reuse (%)"});
  t.add_section("measured (this reproduction)");
  t.add_row({"None", "GPU", bench::fmt(gpu.accuracy_pct), bench::fmt(gpu.energy_mj),
             bench::fmt(gpu.latency_ms), "-"});
  t.add_row({"None", "DLA", bench::fmt(dla.accuracy_pct), bench::fmt(dla.energy_mj),
             bench::fmt(dla.latency_ms), "-"});

  const struct {
    const char* name;
    double cap;
  } regimes[] = {{"No Fmap constr.", 1.0}, {"75% Fmap constr.", 0.75}, {"50% Fmap constr.", 0.5}};

  double best_energy = 1e300;
  double best_latency = 1e300;
  double max_early_exit = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    const auto res = bench::run_search(net, plat, regimes[r].cap, s, seed_base + r);
    const core::evaluation& ours_l = res.ours_latency();
    const core::evaluation& ours_e = res.ours_energy();
    t.add_row({regimes[r].name, "Ours-L", bench::fmt(ours_l.accuracy_pct),
               bench::fmt(ours_l.avg_energy_mj), bench::fmt(ours_l.avg_latency_ms),
               bench::fmt(ours_l.fmap_reuse_pct, 2)});
    t.add_row({regimes[r].name, "Ours-E", bench::fmt(ours_e.accuracy_pct),
               bench::fmt(ours_e.avg_energy_mj), bench::fmt(ours_e.avg_latency_ms),
               bench::fmt(ours_e.fmap_reuse_pct, 2)});
    best_energy = std::min(best_energy, ours_e.avg_energy_mj);
    best_latency = std::min(best_latency, ours_l.avg_latency_ms);
    const double early =
        100.0 * (1.0 - ours_e.exit_fractions.back());
    max_early_exit = std::max(max_early_exit, early);
  }

  t.add_section("paper (Table II)");
  for (std::size_t i = 0; i < paper_rows; ++i) {
    const paper_row& p = paper[i];
    t.add_row({p.strategy, p.impl, bench::fmt(p.acc), bench::fmt(p.energy),
               bench::fmt(p.latency), p.reuse < 0 ? "-" : bench::fmt(p.reuse, 2)});
  }
  std::cout << t.str();

  std::cout << util::format(
      "headline factors: %.2fx energy vs GPU-only, %.2fx latency vs DLA-only, "
      "%.0f%% of samples exit early (best regime)\n\n",
      gpu.energy_mj / best_energy, dla.latency_ms / best_latency, max_early_exit);
}

}  // namespace

int main() {
  const bench::testbed tb;
  const bench::scale s = bench::scale::from_env();
  std::cout << "=== Table II: Pareto-optimal model breakdown ===\n\n";

  static const paper_row vis_paper[] = {
      {"None", "GPU", 88.09, 197.35, 15.01, -1},
      {"None", "DLA", 88.09, 53.71, 69.22, -1},
      {"No Fmap constr.", "Ours-L", 86.12, 108.44, 25.58, 68.75},
      {"No Fmap constr.", "Ours-E", 87.58, 59.21, 30.40, 61.25},
      {"75% Fmap constr.", "Ours-L", 84.64, 102.67, 24.65, 65.00},
      {"75% Fmap constr.", "Ours-E", 87.67, 65.12, 29.46, 75.00},
      {"50% Fmap constr.", "Ours-L", 82.69, 116.00, 24.51, 50.00},
      {"50% Fmap constr.", "Ours-E", 84.16, 82.44, 32.70, 50.00},
  };
  run_network(tb.visformer, tb.xavier, s, "Visformer (ViT-based architecture)", vis_paper,
              std::size(vis_paper), 300);

  static const paper_row vgg_paper[] = {
      {"None", "GPU", 80.55, 630.11, 25.23, -1},
      {"None", "DLA", 80.55, 164.89, 114.41, -1},
      {"No Fmap constr.", "Ours-L", 84.81, 251.63, 25.67, 52.94},
      {"No Fmap constr.", "Ours-E", 84.63, 153.97, 34.02, 70.58},
      {"75% Fmap constr.", "Ours-L", 84.76, 247.34, 26.07, 64.70},
      {"75% Fmap constr.", "Ours-E", 82.64, 136.31, 37.22, 47.05},
      {"50% Fmap constr.", "Ours-L", 84.62, 250.80, 25.83, 50.00},
      {"50% Fmap constr.", "Ours-E", 82.53, 136.41, 37.24, 50.00},
  };
  run_network(tb.vgg19, tb.xavier, s, "VGG19 (CNN-based architecture)", vgg_paper,
              std::size(vgg_paper), 400);

  std::cout << "paper §VI-D (VGG19): up to 4.62x energy gain, 4.44x speedup, >80% of\n"
               "samples correctly classified in earlier stages.\n";
  return 0;
}
