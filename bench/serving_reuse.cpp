// Serving-reuse microbench (the serving front-end's acceptance check): a
// second map() of the same request against a warm session must perform at
// least 50% fewer evaluator runs than the first -- in practice ~100% fewer,
// since the GA at a fixed seed revisits exactly the cached candidates --
// while returning a bit-identical mapping_report. Also shows that sessions
// persist across surrogate phases: the GBT trains once per session.
//
// Scale via MAPCQ_GENERATIONS / MAPCQ_POPULATION / MAPCQ_THREADS.

#include <chrono>
#include <iostream>

#include "bench_common.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::size_t evaluator_runs(const mapcq::serving::mapping_report& rep) {
  return rep.search_cache.misses + rep.validation_cache.misses;
}

bool identical_reports(const mapcq::serving::mapping_report& a,
                       const mapcq::serving::mapping_report& b) {
  if (a.front.size() != b.front.size()) return false;
  if (a.ours_latency_index != b.ours_latency_index) return false;
  if (a.ours_energy_index != b.ours_energy_index) return false;
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    const auto& x = a.front[i];
    const auto& y = b.front[i];
    if (!(x.config == y.config) || x.objective != y.objective ||
        x.avg_latency_ms != y.avg_latency_ms || x.avg_energy_mj != y.avg_energy_mj ||
        x.accuracy_pct != y.accuracy_pct || x.fmap_reuse_pct != y.fmap_reuse_pct)
      return false;
  }
  if (a.search.total_evaluations != b.search.total_evaluations) return false;
  if (a.search.history.size() != b.search.history.size()) return false;
  for (std::size_t g = 0; g < a.search.history.size(); ++g)
    if (a.search.history[g].best_objective != b.search.history[g].best_objective) return false;
  return true;
}

}  // namespace

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  bench::scale s = bench::scale::from_env();
  s.generations = std::max<std::size_t>(10, s.generations / 4);

  serving::service_options sopt;
  sopt.engine.threads = s.threads;
  serving::mapping_service service{sopt};
  service.register_network(tb.visformer);
  service.register_platform(tb.xavier);

  std::cout << "=== serving reuse: warm-session map() vs cold ===\n";
  std::cout << util::format("GA scale: %zu generations x %zu population, %zu threads\n\n",
                            s.generations, s.population, s.threads);

  bool all_ok = true;
  bench::json_reporter json{"serving_reuse"};
  for (const bool use_surrogate : {false, true}) {
    serving::mapping_request req;
    req.network = tb.visformer.name;
    req.use_surrogate = use_surrogate;
    req.ga.generations = s.generations;
    req.ga.population = s.population;

    auto t0 = std::chrono::steady_clock::now();
    const serving::mapping_report cold = service.map(req);
    const double cold_s = seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    const serving::mapping_report warm = service.map(req);
    const double warm_s = seconds_since(t0);

    const std::size_t cold_runs = evaluator_runs(cold);
    const std::size_t warm_runs = evaluator_runs(warm);
    const bool identical = identical_reports(cold, warm);
    const bool enough_reuse = warm_runs * 2 <= cold_runs;
    all_ok = all_ok && identical && enough_reuse;

    std::cout << "--- " << (use_surrogate ? "surrogate search" : "analytic search") << " ---\n";
    util::table t({"request", "wall (s)", "evaluator runs", "validation hits", "GBT trained"});
    t.add_row({"cold", bench::fmt(cold_s), std::to_string(cold_runs),
               std::to_string(cold.validation_cache.hits),
               cold.trained_surrogate ? "yes" : "no"});
    t.add_row({"warm", bench::fmt(warm_s), std::to_string(warm_runs),
               std::to_string(warm.validation_cache.hits),
               warm.trained_surrogate ? "yes" : "no"});
    std::cout << t.str();
    std::cout << util::format(
        "evaluator-run reduction: %.1f%% (need >= 50%%) | reports %s\n\n",
        cold_runs == 0 ? 0.0 : 100.0 * (1.0 - static_cast<double>(warm_runs) / cold_runs),
        identical ? "bit-identical" : "DIVERGED (bug!)");

    const std::string prefix = use_surrogate ? "surrogate_" : "analytic_";
    json.metric(prefix + "cold_runs", static_cast<double>(cold_runs));
    json.metric(prefix + "warm_runs", static_cast<double>(warm_runs));
    json.metric(prefix + "cold_wall_s", cold_s);
    json.metric(prefix + "warm_wall_s", warm_s);
    json.metric(prefix + "warm_identical", identical ? 1.0 : 0.0);
  }

  std::cout << util::format("sessions: %zu | overall: %s\n", service.session_count(),
                            all_ok ? "OK" : "FAILED");
  return all_ok ? 0 : 1;
}
