// Reproduces Fig. 7: the most energy-oriented Pareto models from the three
// search regimes vs the DLA-only baseline --
//   left:  latency speedup (paper: up to 1.83x) and energy gain (up to
//          14.4%) over the DLA-only deployment;
//   right: the correlation between feature-map reuse and accuracy (paper:
//          ~60% reuse suffices for near-baseline accuracy; dynamic reuse is
//          ~40% below the static mapping's 100%).

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  const bench::scale s = bench::scale::from_env();

  const auto dla = core::single_cu_baseline(tb.visformer, tb.xavier, 1);
  std::cout << "=== Fig. 7: energy-oriented models vs DLA-only (Visformer) ===\n";
  std::cout << util::format("DLA-only baseline: %.2f mJ / %.2f ms / %.2f%%\n\n",
                            dla.energy_mj, dla.latency_ms, dla.accuracy_pct);

  struct regime {
    const char* name;
    double cap;
  };
  const regime regimes[] = {{"no constraint", 1.0}, {"<=75% reuse", 0.75}, {"<=50% reuse", 0.5}};

  util::table left({"search strategy", "energy (mJ)", "latency (ms)", "speedup vs DLA",
                    "energy gain vs DLA", "acc (%)"});
  std::vector<double> reuse_axis;
  std::vector<double> acc_axis;
  double dynamic_reuse_best = 0.0;

  for (std::size_t r = 0; r < 3; ++r) {
    const auto res = bench::run_search(tb.visformer, tb.xavier, regimes[r].cap, s, 200 + r);
    const core::evaluation& e = res.ours_energy();
    left.add_row({regimes[r].name, bench::fmt(e.avg_energy_mj), bench::fmt(e.avg_latency_ms),
                  bench::fmt(dla.latency_ms / e.avg_latency_ms) + "x",
                  bench::fmt(100.0 * (1.0 - e.avg_energy_mj / dla.energy_mj), 1) + "%",
                  bench::fmt(e.accuracy_pct)});
    if (r == 0) dynamic_reuse_best = e.fmap_reuse_pct;

    // Right subfigure data: reuse-vs-accuracy across the validated front.
    for (const auto& v : res.front) {
      reuse_axis.push_back(v.fmap_reuse_pct);
      acc_axis.push_back(v.accuracy_pct);
    }
  }
  std::cout << left.str() << "\n";
  std::cout << "paper: up to 1.83x speedup and up to 14.4% energy gain vs DLA-only.\n\n";

  // Right subfigure: reuse/accuracy correlation summary.
  std::cout << "--- reuse vs accuracy across all explored Pareto points ---\n";
  util::table right({"reuse band (%)", "points", "mean acc (%)", "max acc (%)"});
  for (int band = 0; band < 5; ++band) {
    const double lo = band * 20.0;
    const double hi = lo + 20.0;
    std::vector<double> accs;
    for (std::size_t i = 0; i < reuse_axis.size(); ++i)
      if (reuse_axis[i] >= lo && reuse_axis[i] < hi + (band == 4 ? 1e-9 : 0.0))
        accs.push_back(acc_axis[i]);
    if (accs.empty()) continue;
    right.add_row({util::format("%.0f-%.0f", lo, hi), std::to_string(accs.size()),
                   bench::fmt(util::mean(accs)), bench::fmt(util::max_of(accs))});
  }
  std::cout << right.str();
  std::cout << util::format(
      "\ncorrelation(reuse, accuracy) = %.2f (paper: positive -- cutting reuse costs accuracy)\n",
      util::pearson(reuse_axis, acc_axis));
  std::cout << util::format(
      "dynamic mapping reuse: %.1f%% vs static 100%% -> %.1f%% less (paper: ~40%% less)\n",
      dynamic_reuse_best, 100.0 - dynamic_reuse_best);
  return 0;
}
