// Island-scaling microbench (the island-model GA's acceptance check): run
// the same serving request with the population sharded across K islands,
// K in {1, 2, 4, 8}, over several paired GA seeds, and compare wall-clock,
// evaluator runs and search quality (hypervolume of the validated Pareto
// front over latency, energy, -accuracy; shared per-seed reference point).
//
// Per-seed hypervolume is a noisy estimator — single-seed ratios range
// roughly 90%..101% in either direction — so quality is compared on the
// seed-aggregated hypervolume (sum over the paired seeds), which is also
// what a serving deployment amortizes over.
//
// Pass criteria (at the default scale):
//   * K = 1 is the classic GA: a warm rerun of the same request returns a
//     bit-identical report (the PR-2 serving-reuse property), and an
//     explicit `island_options{1,...}` request matches the default request
//     exactly;
//   * K = 4 reaches the K = 1 aggregate hypervolume within 1%;
//   * the heterogeneous portfolio (K = 2: GA + latency-oriented SA behind
//     the surrogate pre-filter) reaches at least the K = 1 aggregate
//     hypervolume at strictly fewer analytic evaluator runs — hypervolume
//     per evaluator run beats the homogeneous GA;
//   * on a 4+-core runner, K = 4 finishes in less total wall-clock than
//     K = 1 (islands pipeline their rank/breed phases behind the other
//     islands' evaluations; on fewer cores the wall-clock criterion is
//     SKIPPED with a notice — it would only measure scheduler noise).
//
// Scale via MAPCQ_GENERATIONS / MAPCQ_POPULATION / MAPCQ_THREADS.

#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pareto.h"

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::vector<std::vector<double>> front_points(const mapcq::serving::mapping_report& rep) {
  std::vector<std::vector<double>> pts;
  pts.reserve(rep.front.size());
  for (const auto& e : rep.front)
    pts.push_back({e.avg_latency_ms, e.avg_energy_mj, -e.accuracy_pct});
  return pts;
}

bool identical_fronts(const mapcq::serving::mapping_report& a,
                      const mapcq::serving::mapping_report& b) {
  if (a.front.size() != b.front.size()) return false;
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    const auto& x = a.front[i];
    const auto& y = b.front[i];
    if (!(x.config == y.config) || x.objective != y.objective ||
        x.avg_latency_ms != y.avg_latency_ms || x.avg_energy_mj != y.avg_energy_mj ||
        x.accuracy_pct != y.accuracy_pct)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  bench::scale s = bench::scale::from_env();
  s.generations = std::max<std::size_t>(10, s.generations / 4);

  std::vector<std::size_t> island_counts;
  for (const std::size_t k : {1u, 2u, 4u, 8u})
    if (s.population / k >= 4) island_counts.push_back(k);
  const std::size_t n_seeds = std::size(kSeeds);

  std::cout << "=== island scaling: K islands over one async engine ===\n";
  std::cout << util::format(
      "GA scale: %zu generations x %zu population, %zu seeds, %zu engine threads, "
      "%u hardware threads\n\n",
      s.generations, s.population, n_seeds, s.threads, std::thread::hardware_concurrency());

  struct run {
    std::string label;
    std::size_t islands = 1;
    double wall_s = 0.0;  ///< summed over the seeds, cold sessions
    std::size_t evaluator_runs = 0;
    std::vector<std::vector<std::vector<double>>> fronts;  ///< per seed
    double hv_sum = 0.0;
    bool warm_identical = false;
  };
  std::vector<run> runs;

  serving::mapping_report k1_seed1;
  // One fresh service per variant: isolated sessions, cold caches, fair
  // wall-clock. The portfolio variant reuses the same measurement loop.
  const auto measure = [&](const std::string& label, std::size_t k,
                           const std::function<void(serving::mapping_request&)>& customize) {
    serving::service_options sopt;
    sopt.engine.threads = s.threads;
    serving::mapping_service service{sopt};
    service.register_network(tb.visformer);
    service.register_platform(tb.xavier);

    run r;
    r.label = label;
    r.islands = k;
    for (const std::uint64_t seed : kSeeds) {
      serving::mapping_request req;
      req.network = tb.visformer.name;
      req.use_surrogate = false;  // analytic: evaluator runs are the cost unit
      req.ga.generations = s.generations;
      req.ga.population = s.population;
      req.ga.seed = seed;
      req.ga.island.islands = k;
      if (customize) customize(req);

      const auto t0 = std::chrono::steady_clock::now();
      const serving::mapping_report cold = service.map(req);
      r.wall_s += seconds_since(t0);
      r.evaluator_runs += cold.search_cache.misses + cold.validation_cache.misses;
      r.fronts.push_back(front_points(cold));
      if (seed == kSeeds[0]) {
        // Warm rerun: the deterministic candidate stream replays from cache.
        r.warm_identical = identical_fronts(cold, service.map(req));
        if (label == "k1") k1_seed1 = cold;
      }
    }
    runs.push_back(std::move(r));
  };

  for (const std::size_t k : island_counts)
    measure("k" + std::to_string(k), k, nullptr);

  // Heterogeneous portfolio: a balanced GA island rides next to a
  // latency-oriented SA island, and the session GBT pre-filters offspring so
  // analytic runs are spent only on the promising half. The runs the filter
  // saves are reinvested as extra generations — the whole point of
  // hypervolume-per-evaluator-run: more search per analytic run, still
  // strictly under the homogeneous GA's budget.
  const bool portfolio_feasible = s.population / 2 >= 4;
  if (portfolio_feasible) {
    measure("portfolio", 2, [&](serving::mapping_request& req) {
      req.ga.generations = (9 * s.generations) / 5;
      req.ga.portfolio.islands = {
          core::island_assignment{core::island_algorithm::ga, core::island_orientation::balanced},
          core::island_assignment{core::island_algorithm::sa, core::island_orientation::latency}};
      req.ga.portfolio.prefilter.enabled = true;
      req.ga.portfolio.prefilter.quantile = 0.4;
      req.ga.portfolio.prefilter.warmup_generations = 2;
      // Small session GBT: the bench/training cost is per session (amortized
      // over every request), not per search, and is not an analytic-engine
      // cache miss.
      req.bench.samples = 3000;
      req.gbt.n_trees = 100;
    });
  } else {
    std::cout << "portfolio variant SKIPPED: population too small to shard over 2 islands\n";
  }

  // Per-seed shared reference point (slightly beyond the worst observed
  // value per axis across every K) so hypervolumes are comparable; quality
  // is then the sum of the per-seed hypervolumes.
  for (std::size_t si = 0; si < n_seeds; ++si) {
    std::vector<double> ref = {0.0, 0.0, 0.0};
    std::vector<double> lo = ref;
    bool first = true;
    for (const run& r : runs) {
      for (const auto& p : r.fronts[si]) {
        for (int a = 0; a < 3; ++a) {
          ref[a] = first ? p[a] : std::max(ref[a], p[a]);
          lo[a] = first ? p[a] : std::min(lo[a], p[a]);
        }
        first = false;
      }
    }
    for (int a = 0; a < 3; ++a) ref[a] += 0.05 * (ref[a] - lo[a]) + 1e-9;
    for (run& r : runs) r.hv_sum += core::hypervolume(r.fronts[si], ref);
  }

  const run& k1 = runs.front();
  util::table t({"variant", "wall (s)", "evaluator runs", "aggregate HV", "HV vs K=1",
                 "warm rerun"});
  for (const run& r : runs) {
    t.add_row({r.label, bench::fmt(r.wall_s), std::to_string(r.evaluator_runs),
               util::format("%.6g", r.hv_sum),
               util::format("%.2f%%", k1.hv_sum > 0 ? 100.0 * r.hv_sum / k1.hv_sum : 0.0),
               r.warm_identical ? "bit-identical" : "DIVERGED (bug!)"});
  }
  std::cout << t.str() << "\n";

  // --- pass criteria -------------------------------------------------------
  bool ok = true;
  for (const run& r : runs) ok = ok && r.warm_identical;

  // Explicit K=1 island options must be the very same search as a default
  // request (islands default to 1): bit-identical report.
  {
    serving::service_options sopt;
    sopt.engine.threads = s.threads;
    serving::mapping_service service{sopt};
    service.register_network(tb.visformer);
    service.register_platform(tb.xavier);
    serving::mapping_request req;
    req.network = tb.visformer.name;
    req.use_surrogate = false;
    req.ga.generations = s.generations;
    req.ga.population = s.population;
    req.ga.seed = kSeeds[0];
    const bool same = identical_fronts(k1_seed1, service.map(req));
    std::cout << "K=1 vs default request: " << (same ? "bit-identical" : "DIVERGED (bug!)")
              << "\n";
    ok = ok && same;
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const auto it4 = std::find_if(runs.begin(), runs.end(),
                                [](const run& r) { return r.label == "k4"; });
  if (it4 != runs.end()) {
    const bool hv_ok = it4->hv_sum >= 0.99 * k1.hv_sum;
    std::cout << util::format("K=4 aggregate hypervolume within 1%% of K=1: %s (%.2f%%)\n",
                              hv_ok ? "yes" : "NO", 100.0 * it4->hv_sum / k1.hv_sum);
    ok = ok && hv_ok;
    if (cores >= 4) {
      const bool faster = it4->wall_s < k1.wall_s;
      std::cout << util::format("K=4 wall-clock below K=1: %s (%.2fx)\n", faster ? "yes" : "NO",
                                k1.wall_s / it4->wall_s);
      ok = ok && faster;
    } else {
      std::cout << util::format(
          "K=4 wall-clock criterion SKIPPED: %u hardware threads (< 4) — the comparison would "
          "measure scheduler noise, not island pipelining\n",
          cores);
    }
  }

  // Portfolio gate: hypervolume per evaluator run must beat the homogeneous
  // GA — at least the K=1 aggregate hypervolume, at strictly fewer runs.
  bool portfolio_ok = true;
  const auto itp = std::find_if(runs.begin(), runs.end(),
                                [](const run& r) { return r.label == "portfolio"; });
  if (itp != runs.end()) {
    const bool hv_ok = itp->hv_sum >= k1.hv_sum;
    const bool cheaper = itp->evaluator_runs < k1.evaluator_runs;
    std::cout << util::format("portfolio aggregate hypervolume >= K=1: %s (%.2f%%)\n",
                              hv_ok ? "yes" : "NO", 100.0 * itp->hv_sum / k1.hv_sum);
    std::cout << util::format("portfolio evaluator runs strictly below K=1: %s (%zu vs %zu)\n",
                              cheaper ? "yes" : "NO", itp->evaluator_runs, k1.evaluator_runs);
    portfolio_ok = hv_ok && cheaper;
    ok = ok && portfolio_ok;
  }

  bench::json_reporter json{"island_scaling"};
  json.metric("cores", static_cast<double>(cores));
  for (const run& r : runs) {
    const std::string prefix = r.label + "_";
    json.metric(prefix + "evaluator_runs", static_cast<double>(r.evaluator_runs));
    json.metric(prefix + "wall_s", r.wall_s);
    json.metric(prefix + "hv_ratio", k1.hv_sum > 0 ? r.hv_sum / k1.hv_sum : 0.0);
  }
  if (itp != runs.end()) json.metric("portfolio_ok", portfolio_ok ? 1.0 : 0.0);
  json.metric("overall_ok", ok ? 1.0 : 0.0);

  std::cout << "\noverall: " << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
