// Trace-replay driver: re-runs a captured mapcq-trace-v1 request stream
// (serving/request_trace.h) against this build and reports latency
// percentiles plus exactly-reconciling scheduler counters — the
// "distribution shape" half of the CI bench gate (tools/compare_bench.py
// gates p99 with an explicit tolerance; the counter totals gate at zero
// tolerance because synchronous replay makes them a pure function of the
// trace).
//
// Environment:
//   MAPCQ_TRACE          path to a trace file (e.g. bench/traces/
//                        smoke.trace, captured by `search_and_ship
//                        --capture-trace`); unset = a built-in synthetic
//                        duplicate-heavy trace
//   MAPCQ_TRACE_REPEAT   replicate the trace N times back to back (arrival
//                        offsets shifted); duplicates coalesce, so distinct
//                        work stays constant while offered load scales —
//                        how the nightly turns the smoke trace into a
//                        1k-request replay. Default 1.
//   MAPCQ_TRACE_REQUESTS truncate to the first N records (0 = all)
//   MAPCQ_TRACE_SPEED    > 0 adds a second, paced replay at Nx captured
//                        speed (informational latencies); default off
//   MAPCQ_GENERATIONS / MAPCQ_POPULATION / MAPCQ_THREADS
//                        GA budget of each replayed (distinct) request
//
// Exits non-zero when the counters fail to reconcile.

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/serialization.h"
#include "nn/models.h"
#include "serving/request_trace.h"
#include "soc/platform.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace mapcq;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoul(v, nullptr, 10) : fallback;
}

bool check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  return ok;
}

/// Fallback traffic when no MAPCQ_TRACE is given: three session lanes, a
/// duplicate-heavy mix (each distinct fingerprint submitted three times),
/// arrivals 500us apart — enough structure to exercise lane mapping,
/// coalescing and pacing.
std::vector<core::trace_record> synthetic_trace() {
  std::vector<core::trace_record> trace;
  const std::size_t lanes = 3;
  const std::size_t distinct_per_lane = 2;
  const std::size_t dup = 3;
  std::uint64_t at = 0;
  for (std::size_t round = 0; round < dup; ++round) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      for (std::size_t d = 0; d < distinct_per_lane; ++d) {
        core::trace_record r;
        r.arrival_us = at;
        at += 500;
        r.lane = "lane-" + std::to_string(lane);
        r.fingerprint = "fp-" + std::to_string(lane) + "-" + std::to_string(d);
        trace.push_back(std::move(r));
      }
    }
  }
  return trace;
}

}  // namespace

int main() {
  const std::size_t generations = env_or("MAPCQ_GENERATIONS", 4);
  const std::size_t population = env_or("MAPCQ_POPULATION", 12);
  const std::size_t threads = env_or("MAPCQ_THREADS", 2);
  const std::size_t repeat = std::max<std::size_t>(1, env_or("MAPCQ_TRACE_REPEAT", 1));
  const std::size_t max_requests = env_or("MAPCQ_TRACE_REQUESTS", 0);
  const double speed = [] {
    const char* v = std::getenv("MAPCQ_TRACE_SPEED");
    return v ? std::strtod(v, nullptr) : 0.0;
  }();

  // --- the trace ------------------------------------------------------------
  std::vector<core::trace_record> trace;
  if (const char* path = std::getenv("MAPCQ_TRACE")) {
    trace = core::load_trace(path);
    std::cout << "trace: " << path << " (" << trace.size() << " records)\n";
  } else {
    trace = synthetic_trace();
    std::cout << "trace: built-in synthetic (" << trace.size() << " records)\n";
  }
  if (repeat > 1) {
    const std::size_t base_n = trace.size();
    const std::uint64_t span = trace.back().arrival_us + 1000;
    trace.reserve(base_n * repeat);
    for (std::size_t rep = 1; rep < repeat; ++rep)
      for (std::size_t i = 0; i < base_n; ++i) {
        core::trace_record r = trace[i];
        r.arrival_us += span * rep;
        trace.push_back(std::move(r));
      }
    std::cout << "repeated x" << repeat << " -> " << trace.size() << " records\n";
  }

  // --- the candidate build under test --------------------------------------
  // Two cheap networks so distinct captured lanes land on distinct
  // sessions; the analytic model keeps each distinct request fast.
  nn::network net_a = nn::build_simple_cnn();
  net_a.name = "replay-net-0";
  nn::network net_b = nn::build_simple_cnn();
  net_b.name = "replay-net-1";
  const soc::platform plat = soc::agx_xavier();

  serving::service_options opt;
  opt.engine.threads = threads;
  opt.workers = 4;
  serving::mapping_service service{opt};
  service.register_network(net_a);
  service.register_network(net_b);
  service.register_platform(plat);

  serving::mapping_request base;
  base.network = net_a.name;
  base.use_surrogate = false;
  base.ga.generations = generations;
  base.ga.population = population;

  std::cout << "=== trace replay: captured traffic vs this build ===\n";
  std::cout << util::format("GA scale per distinct request: %zu x %zu, %zu engine threads\n\n",
                            generations, population, threads);
  bench::json_reporter json{"trace_replay"};

  // --- synchronous replay: deterministic counter totals ---------------------
  std::cout << "--- synchronous replay (deterministic totals) ---\n";
  serving::replay_options sync_opt;
  sync_opt.synchronous = true;
  sync_opt.max_requests = max_requests;
  const serving::replay_result sync =
      serving::replay_trace(service, trace, base, {net_a.name, net_b.name}, sync_opt);

  util::table t({"requests", "distinct", "coalesced", "executions", "p50 (ms)", "p95 (ms)",
                 "p99 (ms)", "wall (ms)"});
  t.add_row({std::to_string(sync.requests), std::to_string(sync.distinct),
             std::to_string(sync.stats.coalesced), std::to_string(sync.stats.completed),
             bench::fmt(sync.p50_ms), bench::fmt(sync.p95_ms), bench::fmt(sync.p99_ms),
             bench::fmt(sync.wall_ms)});
  std::cout << t.str();

  const serving::scheduler_stats& st = sync.stats;
  bool ok = check(st.submitted == sync.requests, "all replayed submits counted");
  ok &= check(st.rejected == 0, "nothing rejected (unbounded replay queue)");
  ok &= check(st.admitted == sync.distinct,
              util::format("admitted == distinct pairs (%zu == %zu)", st.admitted, sync.distinct));
  ok &= check(st.coalesced == sync.requests - sync.distinct,
              util::format("coalesced == duplicates (%zu == %zu)", st.coalesced,
                           sync.requests - sync.distinct));
  ok &= check(st.completed + st.failed + st.expired == st.admitted,
              "every admitted request accounted for");
  ok &= check(st.failed == 0, "no execution failed");

  json.metric("requests", static_cast<double>(sync.requests));
  json.metric("distinct", static_cast<double>(sync.distinct));
  json.metric("coalesced", static_cast<double>(st.coalesced));
  json.metric("executions", static_cast<double>(st.completed));
  json.metric("reconcile_ok", ok ? 1.0 : 0.0);
  json.metric("p50_ms", sync.p50_ms);
  json.metric("p95_ms", sync.p95_ms);
  json.metric("p99_ms", sync.p99_ms);
  json.metric("max_ms", sync.max_ms);
  json.metric("wall_ms", sync.wall_ms);

  // --- optional paced replay: latency under captured arrival pacing ---------
  if (speed > 0.0) {
    std::cout << "\n--- paced replay at " << speed << "x captured speed ---\n";
    serving::replay_options paced_opt;
    paced_opt.speed = speed;
    paced_opt.max_requests = max_requests;
    const serving::replay_result paced =
        serving::replay_trace(service, trace, base, {net_a.name, net_b.name}, paced_opt);
    util::table p({"requests", "executions", "coalesced", "p50 (ms)", "p99 (ms)", "wall (ms)"});
    p.add_row({std::to_string(paced.requests), std::to_string(paced.stats.completed),
               std::to_string(paced.stats.coalesced), bench::fmt(paced.p50_ms),
               bench::fmt(paced.p99_ms), bench::fmt(paced.wall_ms)});
    std::cout << p.str();
    // Informational only: paced coalescing depends on machine speed (a
    // fast build finishes a request before its duplicate arrives — that is
    // the point of replaying at captured pacing).
    json.metric("paced_p50_ms", paced.p50_ms);
    json.metric("paced_p99_ms", paced.p99_ms);
    json.metric("paced_coalesced", static_cast<double>(paced.stats.coalesced));
    json.metric("paced_wall_ms", paced.wall_ms);
  }

  std::cout << (ok ? "\noverall: OK\n" : "\noverall: FAILED\n");
  return ok ? 0 : 1;
}
