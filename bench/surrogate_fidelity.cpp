// Surrogate fidelity harness (§V-E methodology): train the GBT predictor on
// the layer-wise benchmark set and report held-out RMSE / MAPE / R^2 for
// latency and energy, plus the top predictive features -- the paper uses
// XGBoost to the same end on TensorRT measurements.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "surrogate/dataset.h"
#include "surrogate/predictor.h"

int main() {
  using namespace mapcq;
  const bench::testbed tb;

  std::cout << "=== Surrogate fidelity (GBT hardware predictor) ===\n\n";

  surrogate::benchmark_options bopt;
  bopt.samples = 6000;
  const auto ds =
      surrogate::generate_benchmark({&tb.visformer, &tb.vgg19}, tb.xavier, bopt);
  const auto parts = surrogate::split(ds, 0.8, 42);

  util::table setup({"quantity", "value"});
  setup.add_row({"benchmark rows", std::to_string(ds.size())});
  setup.add_row({"train / test", util::format("%zu / %zu", parts.train.size(), parts.test.size())});
  setup.add_row({"measurement noise", util::format("%.1f%%", 100.0 * bopt.noise_stddev)});
  std::cout << setup.str() << "\n";

  for (const std::size_t trees : {30ul, 80ul, 160ul}) {
    surrogate::gbt_params params;
    params.n_trees = trees;
    const surrogate::hw_predictor pred{parts.train, params};
    const auto fid = pred.evaluate(parts.test);
    std::cout << util::format(
        "trees=%3zu | latency: RMSE %.4f ms, MAPE %5.2f%%, R2 %.4f | "
        "energy: RMSE %.4f mJ, MAPE %5.2f%%, R2 %.4f\n",
        trees, fid.latency_rmse, fid.latency_mape, fid.latency_r2, fid.energy_rmse,
        fid.energy_mape, fid.energy_r2);
  }

  // Feature importance of the full model.
  const surrogate::hw_predictor pred{parts.train};
  const auto imp = pred.latency_model().feature_importance(surrogate::feature_count);
  std::vector<std::size_t> order(imp.size());
  for (std::size_t i = 0; i < imp.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return imp[a] > imp[b]; });

  std::cout << "\ntop latency-model features (split-gain share):\n";
  util::table t({"feature", "importance"});
  for (std::size_t r = 0; r < 6; ++r)
    t.add_row({surrogate::feature_names()[order[r]], bench::fmt(imp[order[r]], 3)});
  std::cout << t.str();
  return 0;
}
