// Search-process analysis (paper §VI-B): convergence trace of the
// evolutionary search -- best/mean eq. 16 objective and feasible count per
// generation -- plus how the Pareto front's extremes evolve. The paper
// observes that "most of the explored configurations achieve a good
// trade-off between DLA energy efficiency and GPU latency speedup".
// Runs through the serving front-end with the analytic evaluator (no
// surrogate), mirroring the pre-serving engine-level setup.

#include <algorithm>
#include <filesystem>
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  bench::scale s = bench::scale::from_env();
  s.generations = std::max<std::size_t>(20, s.generations / 2);

  serving::service_options sopt;
  sopt.engine.threads = s.threads;
  serving::mapping_service service{sopt};
  service.register_network(tb.visformer);
  service.register_platform(tb.xavier);

  serving::mapping_request req;
  req.network = tb.visformer.name;
  req.use_surrogate = false;  // trace the analytic objective directly
  req.ga.generations = s.generations;
  req.ga.population = s.population;
  const serving::mapping_report rep = service.map(req);
  const core::ga_result& res = rep.search;

  std::cout << "=== §VI-B: search process analysis (Visformer, analytic evaluator) ===\n\n";
  util::table t({"generation", "best objective", "mean objective", "feasible", "cache hit"});
  const std::size_t step = std::max<std::size_t>(1, res.history.size() / 12);
  for (std::size_t g = 0; g < res.history.size(); g += step) {
    const auto& h = res.history[g];
    t.add_row({std::to_string(h.generation), util::format("%.3g", h.best_objective),
               util::format("%.3g", h.mean_objective),
               util::format("%zu/%zu", h.feasible, s.population),
               util::format("%zu+%zu", h.cache_hits, h.cache_dedup)});
  }
  std::cout << t.str() << "\n";

  std::filesystem::create_directories("bench_out");
  util::csv_writer csv{"bench_out/convergence.csv",
                       {"generation", "best_objective", "mean_objective", "feasible"}};
  for (const auto& h : res.history)
    csv.write_row(std::vector<double>{static_cast<double>(h.generation), h.best_objective,
                                      h.mean_objective, static_cast<double>(h.feasible)});

  const auto& first = res.history.front();
  const auto& last = res.history.back();
  std::cout << util::format(
      "objective improved %.1fx over %zu generations (%zu evaluations total)\n",
      first.best_objective / last.best_objective, res.history.size(), res.total_evaluations);
  std::cout << util::format(
      "evaluation engine: %zu evaluator runs for %zu candidates "
      "(%.1f%% served by cache: %zu hits + %zu in-batch dups)\n",
      res.cache.misses, res.cache.lookups(), 100.0 * res.cache.hit_rate(), res.cache.hits,
      res.cache.dedup);
  std::cout << util::format(
      "cross-phase continuity: %zu/%zu Pareto picks validated without a new evaluator run\n",
      rep.validation_cache.hits + rep.validation_cache.dedup, rep.validation_cache.lookups());

  // Trade-off coverage: how much of the front sits between the baselines.
  const auto gpu = core::single_cu_baseline(tb.visformer, tb.xavier, 0);
  const auto dla = core::single_cu_baseline(tb.visformer, tb.xavier, 1);
  std::size_t in_band = 0;
  for (const auto& e : rep.front) {
    if (e.avg_latency_ms < dla.latency_ms && e.avg_energy_mj < gpu.energy_mj) ++in_band;
  }
  std::cout << util::format(
      "%zu/%zu Pareto points beat DLA latency AND GPU energy simultaneously\n", in_band,
      rep.front.size());
  std::cout << "full trace: bench_out/convergence.csv\n";
  return 0;
}
