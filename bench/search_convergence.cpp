// Search-process analysis (paper §VI-B): convergence trace of the
// evolutionary search -- best/mean eq. 16 objective and feasible count per
// generation -- plus how the Pareto front's extremes evolve. The paper
// observes that "most of the explored configurations achieve a good
// trade-off between DLA energy efficiency and GPU latency speedup".

#include <algorithm>
#include <filesystem>
#include <iostream>

#include "bench_common.h"
#include "core/evolutionary.h"
#include "util/csv.h"

int main() {
  using namespace mapcq;
  const bench::testbed tb;
  bench::scale s = bench::scale::from_env();
  s.generations = std::max<std::size_t>(20, s.generations / 2);

  const core::search_space space{tb.visformer, tb.xavier};
  const core::evaluator eval{tb.visformer, tb.xavier, {}};

  core::ga_options ga;
  ga.generations = s.generations;
  ga.population = s.population;
  ga.threads = s.threads;
  core::engine_options eng_opt;
  eng_opt.threads = s.threads;
  core::evaluation_engine engine{eval, eng_opt};
  const auto res = core::evolve(space, engine, ga);

  std::cout << "=== §VI-B: search process analysis (Visformer, analytic evaluator) ===\n\n";
  util::table t({"generation", "best objective", "mean objective", "feasible", "cache hit"});
  const std::size_t step = std::max<std::size_t>(1, res.history.size() / 12);
  for (std::size_t g = 0; g < res.history.size(); g += step) {
    const auto& h = res.history[g];
    t.add_row({std::to_string(h.generation), util::format("%.3g", h.best_objective),
               util::format("%.3g", h.mean_objective),
               util::format("%zu/%zu", h.feasible, s.population),
               util::format("%zu+%zu", h.cache_hits, h.cache_dedup)});
  }
  std::cout << t.str() << "\n";

  std::filesystem::create_directories("bench_out");
  util::csv_writer csv{"bench_out/convergence.csv",
                       {"generation", "best_objective", "mean_objective", "feasible"}};
  for (const auto& h : res.history)
    csv.write_row(std::vector<double>{static_cast<double>(h.generation), h.best_objective,
                                      h.mean_objective, static_cast<double>(h.feasible)});

  const auto& first = res.history.front();
  const auto& last = res.history.back();
  std::cout << util::format(
      "objective improved %.1fx over %zu generations (%zu evaluations total)\n",
      first.best_objective / last.best_objective, res.history.size(), res.total_evaluations);
  std::cout << util::format(
      "evaluation engine: %zu evaluator runs for %zu candidates "
      "(%.1f%% served by cache: %zu hits + %zu in-batch dups)\n",
      res.cache.misses, res.cache.lookups(), 100.0 * res.cache.hit_rate(), res.cache.hits,
      res.cache.dedup);

  // Trade-off coverage: how much of the front sits between the baselines.
  const auto gpu = core::single_cu_baseline(tb.visformer, tb.xavier, 0);
  const auto dla = core::single_cu_baseline(tb.visformer, tb.xavier, 1);
  std::size_t in_band = 0;
  for (const std::size_t i : res.pareto) {
    const auto& e = res.archive[i];
    if (e.avg_latency_ms < dla.latency_ms && e.avg_energy_mj < gpu.energy_mj) ++in_band;
  }
  std::cout << util::format(
      "%zu/%zu Pareto points beat DLA latency AND GPU energy simultaneously\n", in_band,
      res.pareto.size());
  std::cout << "full trace: bench_out/convergence.csv\n";
  return 0;
}
