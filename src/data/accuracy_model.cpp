#include "data/accuracy_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mapcq::data {

double stage_accuracy_pct(const accuracy_params& params, double q) {
  if (params.base_pct < 0.0 || params.base_pct >= 100.0)
    throw std::invalid_argument("stage_accuracy_pct: base accuracy out of [0,100)");
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return 0.0;
  const double acc = (params.base_pct + params.bonus_pct * q) * std::pow(q, params.sensitivity);
  return std::clamp(acc, 0.0, 99.99);
}

std::vector<double> stage_accuracies_pct(const accuracy_params& params,
                                         std::span<const double> q_per_stage) {
  if (params.early_exit_discount < 0.0 || params.early_exit_discount >= 1.0)
    throw std::invalid_argument("stage_accuracies_pct: discount out of [0,1)");
  const std::size_t m = q_per_stage.size();
  std::vector<double> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double head_strength =
        m <= 1 ? 1.0
               : 1.0 - params.early_exit_discount *
                           (static_cast<double>(m - 1 - i) / static_cast<double>(m - 1));
    out.push_back(stage_accuracy_pct(params, q_per_stage[i]) * head_strength);
  }
  return out;
}

}  // namespace mapcq::data
