#include "data/exit_simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace mapcq::data {

namespace {
void check_acc(std::span<const double> acc) {
  if (acc.empty()) throw std::invalid_argument("exit_simulator: no stages");
  for (const double a : acc)
    if (a < 0.0 || a >= 100.0)
      throw std::invalid_argument("exit_simulator: accuracy out of [0,100)");
}
}  // namespace

exit_outcome simulate_ideal(std::span<const double> stage_acc_pct, std::size_t population) {
  check_acc(stage_acc_pct);
  if (population == 0) throw std::invalid_argument("simulate_ideal: empty population");

  const std::size_t m = stage_acc_pct.size();
  exit_outcome out;
  out.population = population;
  out.correct_counts.assign(m, 0);
  out.exit_fractions.assign(m, 0.0);

  // Nested correctness: the running max of stage accuracies gives the
  // cumulative fraction of samples correctly classified by stage i.
  double prev_cum = 0.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    cum = std::max(cum, stage_acc_pct[i] / 100.0);
    const double newly = std::max(0.0, cum - prev_cum);
    out.correct_counts[i] =
        static_cast<std::size_t>(std::llround(newly * static_cast<double>(population)));
    if (i + 1 < m) {
      out.exit_fractions[i] = newly;  // exit at first correct stage
    } else {
      out.exit_fractions[i] = 1.0 - prev_cum;  // remaining samples run everything
    }
    prev_cum = cum;
  }
  out.dynamic_accuracy_pct = cum * 100.0;
  return out;
}

exit_outcome simulate_threshold(std::span<const double> stage_acc_pct, std::size_t population,
                                const controller_params& params) {
  check_acc(stage_acc_pct);
  if (population == 0) throw std::invalid_argument("simulate_threshold: empty population");
  if (params.confidence_noise < 0.0)
    throw std::invalid_argument("simulate_threshold: negative noise");

  const std::size_t m = stage_acc_pct.size();
  exit_outcome out;
  out.population = population;
  out.correct_counts.assign(m, 0);
  out.exit_fractions.assign(m, 0.0);

  util::rng gen{params.seed};
  std::size_t correct_total = 0;

  for (std::size_t s = 0; s < population; ++s) {
    // Deterministic difficulty grid; noise only affects the controller.
    const double d = (static_cast<double>(s) + 0.5) / static_cast<double>(population);
    bool ever_correct = false;
    for (std::size_t i = 0; i < m; ++i) {
      const double a = stage_acc_pct[i] / 100.0;
      const bool correct = d <= a;
      const double margin = (a - d) + gen.normal(0.0, params.confidence_noise);
      const bool last = i + 1 == m;
      if (margin > params.threshold || last) {
        out.exit_fractions[i] += 1.0;
        if (correct) {
          ++correct_total;
          if (!ever_correct) ++out.correct_counts[i];
        }
        break;
      }
      if (correct && !ever_correct) {
        // The sample was correct here but the controller kept going; it
        // no longer counts as "first correct" later (paper's N_i).
        ever_correct = true;
      }
    }
  }
  for (double& f : out.exit_fractions) f /= static_cast<double>(population);
  out.dynamic_accuracy_pct = 100.0 * static_cast<double>(correct_total) /
                             static_cast<double>(population);
  return out;
}

}  // namespace mapcq::data
