#pragma once
// Closed-form stage-accuracy model (DESIGN.md §2). Replaces the paper's
// multi-exit fine-tuning runs: a stage that can see an importance-coverage
// share q of the original channels reaches
//
//     A(q) = (base + bonus * q) * q^sensitivity      [percent]
//
// * base         -- the pretrained full-width accuracy (paper Table II),
// * bonus        -- deep-supervision gain of multi-exit training; large for
//                   redundant CNNs (VGG19 rows in Table II beat the static
//                   baseline), near zero for ViTs,
// * sensitivity  -- how steeply accuracy decays when importance is lost
//                   (reuse constraints cut q; paper reports ~6 % drop at the
//                   50 % reuse cap for Visformer).

#include <span>
#include <vector>

#include "nn/graph.h"

namespace mapcq::data {

/// Architecture-level accuracy parameters.
struct accuracy_params {
  double base_pct = 0.0;
  double bonus_pct = 0.0;
  double sensitivity = 0.15;
  /// Early exit heads are weaker than the final one (shallow features,
  /// weak heads -- especially for ViT slices): stage i of M keeps a factor
  /// 1 - discount * (M-1-i)/(M-1) of its coverage-driven accuracy.
  double early_exit_discount = 0.15;

  /// Pulls the parameters recorded on the network description.
  [[nodiscard]] static accuracy_params from(const nn::network& net) {
    return {net.base_accuracy, net.multi_exit_bonus, net.accuracy_sensitivity,
            net.early_exit_discount};
  }
};

/// Accuracy (percent, in [0, 100)) of a stage whose exit sees importance
/// share `q` in [0, 1], before the exit-position discount.
[[nodiscard]] double stage_accuracy_pct(const accuracy_params& params, double q);

/// Applies the model to a vector of per-stage importance shares, including
/// the early-exit position discount (entry i of M).
[[nodiscard]] std::vector<double> stage_accuracies_pct(const accuracy_params& params,
                                                       std::span<const double> q_per_stage);

}  // namespace mapcq::data
