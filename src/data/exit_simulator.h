#pragma once
// Early-exit simulation over a synthetic validation population.
//
// Difficulty model (DESIGN.md §2): each sample s carries a scalar
// difficulty d_s; a stage with accuracy A classifies s correctly iff
// d_s <= A/100. Stage correct-sets are therefore nested, which makes the
// paper's N_i ("samples correctly classified at S_i given that every prior
// stage misclassifies them", eq. 16) well defined.
//
// Two controllers are provided:
//  * ideal      -- the paper's assumption (§III-B): the exit stage of each
//                  sample is known a priori; a sample exits at the first
//                  stage that classifies it correctly, or runs all stages.
//  * threshold  -- a realistic confidence controller (extension): the
//                  decision uses a noisy margin, so samples can exit early
//                  while wrong or continue while right.

#include <cstdint>
#include <span>
#include <vector>

namespace mapcq::data {

/// Outcome of pushing the population through the multi-exit network.
struct exit_outcome {
  std::vector<std::size_t> correct_counts;  ///< N_i of paper eq. 16
  std::vector<double> exit_fractions;       ///< fraction of samples exiting at stage i
  double dynamic_accuracy_pct = 0.0;        ///< overall top-1 of the dynamic model
  std::size_t population = 0;

  [[nodiscard]] std::size_t stages() const noexcept { return exit_fractions.size(); }
};

/// Ideal input mapping (paper's assumption).
/// `stage_acc_pct` must be non-empty with entries in [0, 100).
[[nodiscard]] exit_outcome simulate_ideal(std::span<const double> stage_acc_pct,
                                          std::size_t population = 10000);

/// Confidence-threshold controller.
struct controller_params {
  double confidence_noise = 0.05;  ///< stddev of the margin estimate
  double threshold = 0.0;          ///< exit when (A_i/100 - d) + noise > threshold
  std::uint64_t seed = 99;
};
[[nodiscard]] exit_outcome simulate_threshold(std::span<const double> stage_acc_pct,
                                              std::size_t population,
                                              const controller_params& params);

}  // namespace mapcq::data
