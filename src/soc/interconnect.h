#pragma once
// Inter-CU data movement model. All CUs of the MPSoC share one DRAM
// (paper Fig. 4): a feature map crossing stages is written by the producer
// CU and read by the consumer CU, so a transfer costs a fixed
// synchronization latency plus bytes / effective bandwidth. This is the
// u_{k->i} term of the latency recurrence (paper eq. 8).

namespace mapcq::soc {

/// Shared-memory interconnect between CUs.
struct interconnect {
  double bandwidth_gbps = 20.0;    ///< effective producer->consumer bandwidth
  double base_latency_ms = 0.06;   ///< per-transfer sync/flush overhead
  double energy_pj_per_byte = 25.0;///< DRAM round-trip energy (optional term)

  /// Transfer latency u (ms) for `bytes` of feature-map data between two
  /// different CUs. Zero-byte transfers still pay the sync latency.
  [[nodiscard]] double transfer_ms(double bytes) const noexcept {
    if (bytes < 0.0) bytes = 0.0;
    return base_latency_ms + bytes / (bandwidth_gbps * 1e6);  // GB/s = 1e6 B/ms
  }

  /// DRAM energy (mJ) for moving `bytes` (not counted in the paper's eq. 11;
  /// exposed for the extended energy accounting option).
  [[nodiscard]] double transfer_mj(double bytes) const noexcept {
    if (bytes < 0.0) bytes = 0.0;
    return bytes * energy_pj_per_byte * 1e-9;  // pJ -> mJ
  }
};

}  // namespace mapcq::soc
