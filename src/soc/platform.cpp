#include "soc/platform.h"

#include <stdexcept>

#include "soc/dvfs.h"

namespace mapcq::soc {

std::size_t platform::first_of(cu_kind kind) const {
  for (std::size_t i = 0; i < units.size(); ++i)
    if (units[i].kind == kind) return i;
  throw std::out_of_range("platform::first_of: no unit of requested kind");
}

double platform::dvfs_configurations() const noexcept {
  double n = 1.0;
  for (const auto& u : units) n *= static_cast<double>(u.dvfs.levels());
  return n;
}

void platform::validate() const {
  if (name.empty()) throw std::logic_error("platform: empty name");
  if (units.empty()) throw std::logic_error("platform: no compute units");
  if (shared_memory_bytes <= 0.0) throw std::logic_error("platform: no shared memory budget");
  for (const auto& u : units) u.validate();
}

namespace {

compute_unit make_xavier_gpu() {
  compute_unit u;
  u.name = "GPU";
  u.kind = cu_kind::gpu;
  // 512-core Volta, fp16: ~11 TFLOPS datasheet peak. Tiny CIFAR-scale
  // kernels sustain a small fraction of it (calibrated).
  u.peak_gflops = 11000.0;
  u.mem_bandwidth_gbps = 100.0;
  u.launch_overhead_ms = 0.012;
  u.efficiency_spatial = 0.012;
  u.efficiency_matmul = 0.018;
  u.occupancy_floor = 0.35;   // wide SIMT engine: narrow slices waste lanes
  u.occupancy_exponent = 0.8;
  u.static_power_w = 1.6;
  u.dynamic_power_w = 30.0;
  u.gated_idle_w = 0.12;
  u.activity_spatial = 0.78;
  u.activity_matmul = 0.42;
  u.dvfs = xavier_gpu_dvfs();
  return u;
}

compute_unit make_xavier_dla(const std::string& name) {
  compute_unit u;
  u.name = name;
  u.kind = cu_kind::dla;
  // NVDLA v1: ~2.8 TFLOPS fp16 per engine; excellent perf/W, weak at
  // non-convolutional ops (attention falls back / tiles poorly).
  u.peak_gflops = 2800.0;
  u.mem_bandwidth_gbps = 25.0;
  u.launch_overhead_ms = 0.05;
  u.efficiency_spatial = 0.010;
  u.efficiency_matmul = 0.004;
  u.occupancy_floor = 0.70;   // narrow fixed-function engine saturates early
  u.occupancy_exponent = 1.0;
  u.static_power_w = 0.22;
  u.dynamic_power_w = 1.60;
  u.gated_idle_w = 0.03;
  u.activity_spatial = 0.75;
  u.activity_matmul = 0.55;
  u.dvfs = xavier_dla_dvfs();
  return u;
}

compute_unit make_xavier_cpu() {
  compute_unit u;
  u.name = "CPU";
  u.kind = cu_kind::cpu;
  // 8-core Carmel; NEON fp16 ~ 100 GFLOPS practical ceiling.
  u.peak_gflops = 100.0;
  u.mem_bandwidth_gbps = 40.0;
  u.launch_overhead_ms = 0.002;
  u.efficiency_spatial = 0.30;
  u.efficiency_matmul = 0.35;
  u.occupancy_floor = 0.60;
  u.occupancy_exponent = 1.0;
  u.static_power_w = 1.0;
  u.dynamic_power_w = 14.0;
  u.gated_idle_w = 0.30;
  u.activity_spatial = 0.70;
  u.activity_matmul = 0.60;
  u.dvfs = xavier_cpu_dvfs();
  return u;
}

}  // namespace

platform agx_xavier() {
  platform p;
  p.name = "Jetson AGX Xavier";
  p.units = {make_xavier_gpu(), make_xavier_dla("DLA0"), make_xavier_dla("DLA1")};
  p.xfer = interconnect{};  // shared LPDDR4x defaults
  p.shared_memory_bytes = 32.0 * 1024 * 1024;
  p.validate();
  return p;
}

platform agx_xavier_with_cpu() {
  platform p = agx_xavier();
  p.name = "Jetson AGX Xavier (incl. CPU)";
  p.units.push_back(make_xavier_cpu());
  p.validate();
  return p;
}

}  // namespace mapcq::soc
