#pragma once
// Shared-memory budget (paper Fig. 4 and the size_Pi(F, I) < M constraint of
// eq. 15): intermediate features forwarded to later stages must be kept
// resident in shared DRAM for the duration of an inference.

#include <stdexcept>

namespace mapcq::soc {

/// Tracks the bytes of feature maps parked in shared memory for reuse.
class shared_memory {
 public:
  /// `capacity_bytes` is the budget reserved for inter-stage features.
  explicit shared_memory(double capacity_bytes) : capacity_(capacity_bytes) {
    if (capacity_bytes <= 0.0) throw std::invalid_argument("shared_memory: capacity must be > 0");
  }

  [[nodiscard]] double capacity_bytes() const noexcept { return capacity_; }
  [[nodiscard]] double used_bytes() const noexcept { return used_; }
  [[nodiscard]] double free_bytes() const noexcept { return capacity_ - used_; }

  /// True if `bytes` more would still fit.
  [[nodiscard]] bool fits(double bytes) const noexcept { return used_ + bytes <= capacity_; }

  /// Reserves `bytes`; throws std::runtime_error when over budget.
  void reserve(double bytes) {
    if (bytes < 0.0) throw std::invalid_argument("shared_memory: negative reservation");
    if (!fits(bytes)) throw std::runtime_error("shared_memory: over budget");
    used_ += bytes;
  }

  /// Releases `bytes` (clamped at zero).
  void release(double bytes) noexcept {
    used_ -= bytes;
    if (used_ < 0.0) used_ = 0.0;
  }

  /// Drops all reservations (end of an inference).
  void reset() noexcept { used_ = 0.0; }

 private:
  double capacity_;
  double used_ = 0.0;
};

}  // namespace mapcq::soc
