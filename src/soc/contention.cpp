#include "soc/contention.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

namespace mapcq::soc {

namespace {

void require_finite_nonneg(double v, const char* what) {
  if (!std::isfinite(v) || v < 0.0)
    throw std::invalid_argument(std::string("resident_load: ") + what +
                                " must be finite and non-negative");
}

}  // namespace

void resident_load::validate() const {
  if (name.empty()) throw std::invalid_argument("resident_load: empty name");
  require_finite_nonneg(interconnect_gbps, "interconnect_gbps");
  require_finite_nonneg(dram_gbps, "dram_gbps");
  require_finite_nonneg(power_w, "power_w");
  require_finite_nonneg(shared_memory_bytes, "shared_memory_bytes");
}

double contention_context::total_interconnect_gbps() const noexcept {
  double total = 0.0;
  for (const resident_load& r : residents) total += r.interconnect_gbps;
  return total;
}

double contention_context::total_dram_gbps() const noexcept {
  double total = 0.0;
  for (const resident_load& r : residents) total += r.dram_gbps;
  return total;
}

double contention_context::total_power_w() const noexcept {
  double total = 0.0;
  for (const resident_load& r : residents) total += r.power_w;
  return total;
}

double contention_context::total_shared_memory_bytes() const noexcept {
  double total = 0.0;
  for (const resident_load& r : residents) total += r.shared_memory_bytes;
  return total;
}

bool contention_context::unit_reserved(std::size_t unit) const noexcept {
  for (const resident_load& r : residents)
    for (const std::size_t u : r.reserved_units)
      if (u == unit) return true;
  return false;
}

std::vector<std::size_t> contention_context::reserved_units() const {
  std::set<std::size_t> units;
  for (const resident_load& r : residents)
    units.insert(r.reserved_units.begin(), r.reserved_units.end());
  return {units.begin(), units.end()};
}

void contention_context::validate() const {
  std::set<std::string> names;
  for (const resident_load& r : residents) {
    r.validate();
    if (!names.insert(r.name).second)
      throw std::invalid_argument("contention_context: duplicate resident '" + r.name + "'");
  }
  for (const double alpha : {interconnect_alpha, dram_alpha, dram_energy_beta})
    if (!std::isfinite(alpha) || alpha < 0.0)
      throw std::invalid_argument(
          "contention_context: derate coefficients must be finite and non-negative");
  if (thermal) thermal->validate();
}

void contention_context::validate(const platform& plat) const {
  validate();
  std::set<std::size_t> owned;
  for (const resident_load& r : residents) {
    for (const std::size_t u : r.reserved_units) {
      if (u >= plat.size())
        throw std::invalid_argument("contention_context: resident '" + r.name +
                                    "' reserves CU " + std::to_string(u) +
                                    " on a platform with " + std::to_string(plat.size()) +
                                    " CUs");
      if (!owned.insert(u).second)
        throw std::invalid_argument("contention_context: CU " + std::to_string(u) +
                                    " reserved twice");
    }
  }
  if (dvfs_cap.size() > plat.size())
    throw std::invalid_argument("contention_context: dvfs_cap longer than the platform");
  for (std::size_t u = 0; u < dvfs_cap.size(); ++u)
    if (dvfs_cap[u] >= plat.unit(u).dvfs.levels())
      throw std::invalid_argument("contention_context: dvfs_cap[" + std::to_string(u) +
                                  "] is not a level of CU " + std::to_string(u));
}

platform apply_contention(const platform& plat, const contention_context& ctx) {
  platform out = plat;
  if (ctx.residents.empty()) return out;  // idle: the copy must stay untouched
  // Both shared paths are normalized by the interconnect's effective
  // bandwidth — it is the DRAM channel every CU streams through (Fig. 4).
  const double ic_util = ctx.total_interconnect_gbps() / plat.xfer.bandwidth_gbps;
  const double dram_util = ctx.total_dram_gbps() / plat.xfer.bandwidth_gbps;
  const double ic_factor = 1.0 + ctx.interconnect_alpha * ic_util;
  const double dram_factor = 1.0 + ctx.dram_alpha * dram_util;
  out.xfer.bandwidth_gbps = plat.xfer.bandwidth_gbps / ic_factor;
  out.xfer.base_latency_ms = plat.xfer.base_latency_ms * ic_factor;
  out.xfer.energy_pj_per_byte =
      plat.xfer.energy_pj_per_byte * (1.0 + ctx.dram_energy_beta * dram_util);
  for (compute_unit& cu : out.units) cu.mem_bandwidth_gbps = cu.mem_bandwidth_gbps / dram_factor;
  return out;
}

std::string scenario_key(const contention_context& ctx) {
  if (ctx.idle()) return "idle";
  std::ostringstream os;
  os.precision(17);
  os << "a=" << ctx.interconnect_alpha << "," << ctx.dram_alpha << "," << ctx.dram_energy_beta;
  os << "|res=";
  for (const resident_load& r : ctx.residents) {
    os << r.name << ":" << r.interconnect_gbps << ":" << r.dram_gbps << ":" << r.power_w << ":"
       << r.shared_memory_bytes << ":[";
    for (const std::size_t u : r.reserved_units) os << u << ",";
    os << "];";
  }
  os << "|cap=";
  for (const std::size_t level : ctx.dvfs_cap) os << level << ",";
  os << "|thermal=";
  if (ctx.thermal)
    os << ctx.thermal->ambient_c << "," << ctx.thermal->r_thermal_c_per_w << ","
       << ctx.thermal->tau_s << "," << ctx.thermal->throttle_c;
  else
    os << "none";
  return os.str();
}

void resident_ledger::reserve(const resident_load& load) {
  load.validate();
  for (const resident_load& r : residents_)
    if (r.name == load.name)
      throw std::invalid_argument("resident_ledger: '" + load.name + "' already registered");
  for (const std::size_t u : load.reserved_units) {
    if (u >= owner_of_.size())
      throw std::invalid_argument("resident_ledger: CU " + std::to_string(u) + " out of range");
    if (!owner_of_[u].empty())
      throw std::invalid_argument("resident_ledger: CU " + std::to_string(u) +
                                  " already owned by '" + owner_of_[u] + "'");
  }
  // A resident may list a unit twice; collapse rather than self-collide.
  for (const std::size_t u : load.reserved_units) owner_of_[u] = load.name;
  residents_.push_back(load);
}

void resident_ledger::release(const std::string& name) {
  const auto it = std::find_if(residents_.begin(), residents_.end(),
                               [&](const resident_load& r) { return r.name == name; });
  if (it == residents_.end())
    throw std::invalid_argument("resident_ledger: '" + name + "' is not registered");
  for (std::string& owner : owner_of_)
    if (owner == name) owner.clear();
  residents_.erase(it);
}

bool resident_ledger::reserved(std::size_t unit) const noexcept {
  return unit < owner_of_.size() && !owner_of_[unit].empty();
}

const std::string* resident_ledger::owner(std::size_t unit) const noexcept {
  if (unit >= owner_of_.size() || owner_of_[unit].empty()) return nullptr;
  return &owner_of_[unit];
}

}  // namespace mapcq::soc
