#pragma once
// MPSoC platform description: the set of CUs available for stage mapping,
// the shared-memory interconnect and the feature-reuse memory budget.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "soc/compute_unit.h"
#include "soc/interconnect.h"

namespace mapcq::soc {

/// A heterogeneous MPSoC.
struct platform {
  std::string name;
  std::vector<compute_unit> units;
  interconnect xfer;
  double shared_memory_bytes = 32.0 * 1024 * 1024;  ///< budget for parked fmaps

  /// Number of CUs (the paper's M = |CU|).
  [[nodiscard]] std::size_t size() const noexcept { return units.size(); }

  [[nodiscard]] const compute_unit& unit(std::size_t idx) const {
    if (idx >= units.size()) throw std::out_of_range("platform::unit");
    return units[idx];
  }
  [[nodiscard]] compute_unit& unit(std::size_t idx) {
    if (idx >= units.size()) throw std::out_of_range("platform::unit");
    return units[idx];
  }

  /// Index of the first unit of the given kind; throws if absent.
  [[nodiscard]] std::size_t first_of(cu_kind kind) const;

  /// Total DVFS configuration count (product of per-unit level counts);
  /// the |theta| factor of the search-space size (paper §V-A).
  [[nodiscard]] double dvfs_configurations() const noexcept;

  /// Validates every unit and platform-level invariants.
  void validate() const;
};

/// NVIDIA Jetson AGX Xavier: one Volta GPU + two DLAs sharing LPDDR4x.
/// Parameter values are datasheet-plausible starting points; the
/// perf::calibration pass anchors them to the paper's measured baselines.
[[nodiscard]] platform agx_xavier();

/// Xavier including the Carmel CPU cluster as a fourth mappable CU
/// (extension experiments).
[[nodiscard]] platform agx_xavier_with_cpu();

}  // namespace mapcq::soc
