#pragma once
// Multi-DNN co-location model (extension beyond the paper): when several
// networks are resident on one MPSoC they share the interconnect, the DRAM
// channel and the thermal envelope. Each co-resident is summarized by the
// steady traffic it keeps on the shared paths plus the CUs it has reserved
// for itself; `apply_contention` derates a platform copy with an M/M/1-style
// queueing shape (latency and energy per access grow with the utilization the
// residents impose — the hop/DRAM-access cost model of NoC task mapping), and
// the evaluator layers DVFS caps and a thermal budget on top as scenario
// axes.
//
// Invariant relied on by the differential harnesses: an idle context (no
// residents, no DVFS cap, no thermal limit) introduces ZERO floating-point
// operations anywhere in the evaluation path — only branch-level guards — so
// evaluation under an idle context is bit-identical to the legacy path.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "soc/platform.h"
#include "soc/thermal.h"

namespace mapcq::soc {

/// Steady-state load one co-resident network keeps on the shared resources.
struct resident_load {
  std::string name;                 ///< ledger key; must be unique in a context
  double interconnect_gbps = 0.0;   ///< sustained producer->consumer traffic
  double dram_gbps = 0.0;           ///< sustained DRAM streaming traffic
  double power_w = 0.0;             ///< sustained package power draw
  double shared_memory_bytes = 0.0; ///< fmap budget parked by the resident
  std::vector<std::size_t> reserved_units;  ///< CUs owned outright

  /// Throws std::invalid_argument on negative/non-finite fields or an empty
  /// name. Unit indices are checked against a platform separately.
  void validate() const;
};

/// Everything the evaluator needs to score a mapping under co-location:
/// the co-resident set, per-CU DVFS caps, and an optional thermal budget
/// shared with the residents. Default-constructed contexts are idle.
struct contention_context {
  std::vector<resident_load> residents;
  /// Per-CU maximum DVFS level (a cap, not a setting); empty = uncapped.
  /// Shorter-than-platform vectors cap a prefix of the CUs.
  std::vector<std::size_t> dvfs_cap;
  /// When set, mappings whose sustained power (plus the residents' draw)
  /// would trip the throttle are rejected as unable to sustain steady state.
  std::optional<thermal_model> thermal;

  // Queueing-shape coefficients: a resource at utilization U costs
  // (1 + alpha * U) per access. Calibrated defaults are deliberately mild.
  double interconnect_alpha = 1.0;  ///< transfer latency/bandwidth derate
  double dram_alpha = 0.6;          ///< per-CU streaming bandwidth derate
  double dram_energy_beta = 0.35;   ///< DRAM energy-per-byte inflation

  /// True when the context changes nothing: evaluation is bit-identical to
  /// the legacy (pre-contention) path.
  [[nodiscard]] bool idle() const noexcept {
    return residents.empty() && dvfs_cap.empty() && !thermal;
  }

  [[nodiscard]] double total_interconnect_gbps() const noexcept;
  [[nodiscard]] double total_dram_gbps() const noexcept;
  [[nodiscard]] double total_power_w() const noexcept;
  [[nodiscard]] double total_shared_memory_bytes() const noexcept;

  /// True if any resident has reserved `unit`.
  [[nodiscard]] bool unit_reserved(std::size_t unit) const noexcept;

  /// Every unit reserved by any resident, ascending and deduplicated.
  /// Feeds core::search_space's banned-unit list so the optimizer never
  /// proposes mappings onto CUs owned by co-residents.
  [[nodiscard]] std::vector<std::size_t> reserved_units() const;

  /// Platform-free checks: every resident validates, names are unique, and
  /// the coefficients are finite and non-negative. Throws
  /// std::invalid_argument.
  void validate() const;

  /// Full checks against a platform: the above plus reserved-unit indices in
  /// range and not double-reserved, `dvfs_cap` no longer than the platform
  /// with each cap a valid level, and a physical thermal model.
  void validate(const platform& plat) const;
};

/// Returns a copy of `plat` derated by the residents' traffic: interconnect
/// bandwidth shrinks (and base latency grows) with interconnect utilization,
/// DRAM energy per byte and per-CU streaming bandwidth degrade with DRAM
/// utilization. With no residents the copy is untouched — no FP ops run.
/// Degradation is strictly monotone in every resident traffic term.
[[nodiscard]] platform apply_contention(const platform& plat, const contention_context& ctx);

/// Deterministic full-precision serialization of a context for session keys
/// and request fingerprints. Two contexts with equal keys evaluate mappings
/// bit-identically; an idle context yields "idle".
[[nodiscard]] std::string scenario_key(const contention_context& ctx);

/// Per-CU reservation accounting for a platform shared by several owners:
/// `reserve` claims a resident's units (all-or-nothing), `release` frees
/// them by name. Used by serving::placement_group to keep co-located
/// sessions' reservations disjoint.
class resident_ledger {
 public:
  /// Ledger over a platform with `unit_count` CUs.
  explicit resident_ledger(std::size_t unit_count) : owner_of_(unit_count) {}

  /// Claims `load.reserved_units` for `load.name`. Throws
  /// std::invalid_argument if the load is invalid, the name is already
  /// registered, a unit index is out of range, or a unit is already owned;
  /// on throw the ledger is unchanged.
  void reserve(const resident_load& load);

  /// Releases every unit owned by `name` and forgets the resident. Throws
  /// std::invalid_argument if `name` is not registered.
  void release(const std::string& name);

  /// True if any resident owns `unit` (false for out-of-range indices).
  [[nodiscard]] bool reserved(std::size_t unit) const noexcept;

  /// Owner name of `unit`, or nullptr when free or out of range.
  [[nodiscard]] const std::string* owner(std::size_t unit) const noexcept;

  /// Registered residents, in reservation order.
  [[nodiscard]] const std::vector<resident_load>& residents() const noexcept {
    return residents_;
  }

  [[nodiscard]] std::size_t unit_count() const noexcept { return owner_of_.size(); }

 private:
  std::vector<std::string> owner_of_;   ///< empty string = free
  std::vector<resident_load> residents_;
};

}  // namespace mapcq::soc
