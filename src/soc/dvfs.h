#pragma once
// DVFS frequency tables. The paper co-optimizes a per-CU DVFS setting
// (the theta parameter of eq. 10) alongside partitioning and mapping.

#include <cstddef>
#include <vector>

namespace mapcq::soc {

/// An ordered (ascending) table of supported clock frequencies for one CU.
class dvfs_table {
 public:
  dvfs_table() = default;

  /// Frequencies in MHz, strictly ascending and positive.
  explicit dvfs_table(std::vector<double> freqs_mhz);

  [[nodiscard]] std::size_t levels() const noexcept { return freqs_mhz_.size(); }

  /// Frequency (MHz) of a level; throws std::out_of_range on a bad level.
  [[nodiscard]] double frequency_mhz(std::size_t level) const;

  /// Index of the highest level.
  [[nodiscard]] std::size_t max_level() const;

  /// Scaling factor theta = f(level) / f(max) in (0, 1].
  [[nodiscard]] double scale(std::size_t level) const;

  /// Level whose frequency is closest to `mhz`.
  [[nodiscard]] std::size_t nearest_level(double mhz) const;

  [[nodiscard]] const std::vector<double>& frequencies() const noexcept { return freqs_mhz_; }

 private:
  std::vector<double> freqs_mhz_;
};

/// Real Jetson AGX Xavier frequency tables (MHz).
[[nodiscard]] dvfs_table xavier_gpu_dvfs();
[[nodiscard]] dvfs_table xavier_dla_dvfs();
[[nodiscard]] dvfs_table xavier_cpu_dvfs();

}  // namespace mapcq::soc
