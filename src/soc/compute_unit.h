#pragma once
// Compute-unit (CU) model. The paper's MPSoC (Jetson AGX Xavier) exposes a
// GPU, two DLAs and a CPU cluster that share one DRAM. Each CU here carries
// a throughput model (peak rate derated by operator family, occupancy and
// DVFS) and the linear power model of paper eq. 10:  P = alpha + beta * theta.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "soc/dvfs.h"

namespace mapcq::soc {

/// CU families with different throughput/power trade-offs.
enum class cu_kind { gpu, dla, cpu };

[[nodiscard]] const char* to_string(cu_kind kind) noexcept;

/// Operator families with distinct efficiency/activity on a CU. Spatial ops
/// (convolutions, pools, elementwise) behave differently from matmul-style
/// ops (attention, MLP, linear) -- e.g. the DLA has no native attention
/// support, which surfaces as a low matmul efficiency after calibration.
enum class op_class { spatial, matmul };

/// Maps a layer kind onto its operator class.
[[nodiscard]] op_class classify(nn::layer_kind kind) noexcept;

/// One processing unit of the MPSoC.
struct compute_unit {
  std::string name;
  cu_kind kind = cu_kind::gpu;

  // --- throughput model ---------------------------------------------------
  double peak_gflops = 0.0;        ///< fp16 peak at max DVFS level
  double mem_bandwidth_gbps = 0.0; ///< achievable streaming bandwidth
  double launch_overhead_ms = 0.0; ///< fixed per-layer dispatch cost

  /// Fraction of peak sustained per operator class (calibrated; see
  /// perf::calibration). Tiny CIFAR layers run far below datasheet peak.
  double efficiency_spatial = 0.05;
  double efficiency_matmul = 0.05;

  /// Occupancy model: a sublayer holding `width_frac` of a layer's width
  /// sustains efficiency * (floor + (1-floor) * width_frac^exponent).
  /// Wide CUs (GPU) waste capacity on narrow slices -> low floor.
  double occupancy_floor = 0.5;
  double occupancy_exponent = 1.0;

  // --- power model (paper eq. 10) ------------------------------------------
  double static_power_w = 0.0;  ///< alpha
  double dynamic_power_w = 0.0; ///< beta: dynamic power at theta = 1, activity = 1
  /// Power drawn while clock/power-gated (no work mapped or waiting);
  /// contributes the platform floor seen by board-level measurements.
  double gated_idle_w = 0.1;

  /// Switching-activity factor per operator class (calibrated): fraction of
  /// beta actually drawn while running that class of operator.
  double activity_spatial = 0.8;
  double activity_matmul = 0.5;

  dvfs_table dvfs;  ///< supported frequency levels

  // --- queries -------------------------------------------------------------

  /// DVFS scaling factor theta = f(level)/f(max), in (0, 1].
  [[nodiscard]] double theta(std::size_t level) const { return dvfs.scale(level); }

  /// Sustained GFLOPS for an operator of `kind` occupying `width_frac` of a
  /// layer's width at DVFS `level`.
  [[nodiscard]] double sustained_gflops(nn::layer_kind kind, double width_frac,
                                        std::size_t level) const;

  /// Occupancy derate for a fractional-width sublayer.
  [[nodiscard]] double occupancy(double width_frac) const noexcept;

  /// Power draw (W) while running an operator of `kind` at DVFS `level`
  /// (eq. 10 with the class activity folded into beta).
  [[nodiscard]] double power_w(nn::layer_kind kind, std::size_t level) const;

  /// Power draw while gated/idle (level-independent; gated engines drop to
  /// their rail floor).
  [[nodiscard]] double idle_power_w() const noexcept { return gated_idle_w; }

  /// Efficiency / activity accessors by class (used by the calibrator).
  [[nodiscard]] double efficiency(op_class c) const noexcept {
    return c == op_class::spatial ? efficiency_spatial : efficiency_matmul;
  }
  void set_efficiency(op_class c, double v) noexcept {
    (c == op_class::spatial ? efficiency_spatial : efficiency_matmul) = v;
  }
  [[nodiscard]] double activity(op_class c) const noexcept {
    return c == op_class::spatial ? activity_spatial : activity_matmul;
  }
  void set_activity(op_class c, double v) noexcept {
    (c == op_class::spatial ? activity_spatial : activity_matmul) = v;
  }

  /// Throws std::logic_error on inconsistent parameters.
  void validate() const;
};

}  // namespace mapcq::soc
