#pragma once
// First-order thermal model of the MPSoC package (extension beyond the
// paper): a junction-to-ambient thermal resistance and an RC time constant
// give the steady-state and transient die temperature under a sustained
// power draw. Mappings whose steady state crosses the throttle trip point
// cannot sustain their predicted performance, so the evaluator can reject
// them (an implicit constraint on real Jetsons, which throttle at ~87 C).

#include <cmath>
#include <stdexcept>

namespace mapcq::soc {

/// Lumped RC thermal model of the package.
struct thermal_model {
  double ambient_c = 35.0;          ///< enclosure temperature
  double r_thermal_c_per_w = 1.8;   ///< junction-to-ambient resistance
  double tau_s = 18.0;              ///< RC time constant
  double throttle_c = 87.0;         ///< DVFS throttle trip point

  /// Shared argument validation for every temperature query: power must be
  /// finite and non-negative. (`!(>= 0)` also rejects NaN.)
  static void check_power(double power_w) {
    if (!(power_w >= 0.0) || !std::isfinite(power_w))
      throw std::invalid_argument("thermal_model: negative or non-finite power");
  }

  /// Shared argument validation for elapsed time: finite and non-negative.
  static void check_time(double dt_s) {
    if (!(dt_s >= 0.0) || !std::isfinite(dt_s))
      throw std::invalid_argument("thermal_model: negative or non-finite time");
  }

  /// Steady-state junction temperature under a constant power draw.
  [[nodiscard]] double steady_state_c(double power_w) const {
    check_power(power_w);
    return ambient_c + r_thermal_c_per_w * power_w;
  }

  /// Temperature after `dt_s` seconds of constant power, starting at `t0_c`
  /// (first-order step response).
  [[nodiscard]] double temperature_after(double t0_c, double power_w, double dt_s) const;

  /// True if sustained operation at `power_w` would trip the throttle.
  [[nodiscard]] bool throttles(double power_w) const {
    return steady_state_c(power_w) > throttle_c;
  }

  /// Largest power the package can sustain without throttling.
  [[nodiscard]] double max_sustained_power_w() const {
    return (throttle_c - ambient_c) / r_thermal_c_per_w;
  }

  /// Seconds of operation at `power_w` (starting from ambient) before the
  /// throttle trips; +inf if it never does.
  [[nodiscard]] double seconds_to_throttle(double power_w) const;

  /// Throws std::logic_error on non-physical parameters.
  void validate() const;
};

}  // namespace mapcq::soc
