#include "soc/dvfs.h"

#include <cmath>
#include <stdexcept>

namespace mapcq::soc {

dvfs_table::dvfs_table(std::vector<double> freqs_mhz) : freqs_mhz_(std::move(freqs_mhz)) {
  if (freqs_mhz_.empty()) throw std::invalid_argument("dvfs_table: empty frequency list");
  double prev = 0.0;
  for (const double f : freqs_mhz_) {
    if (f <= prev) throw std::invalid_argument("dvfs_table: frequencies must ascend");
    prev = f;
  }
}

double dvfs_table::frequency_mhz(std::size_t level) const {
  if (level >= freqs_mhz_.size()) throw std::out_of_range("dvfs_table: bad level");
  return freqs_mhz_[level];
}

std::size_t dvfs_table::max_level() const {
  if (freqs_mhz_.empty()) throw std::logic_error("dvfs_table: empty table");
  return freqs_mhz_.size() - 1;
}

double dvfs_table::scale(std::size_t level) const {
  return frequency_mhz(level) / freqs_mhz_.back();
}

std::size_t dvfs_table::nearest_level(double mhz) const {
  if (freqs_mhz_.empty()) throw std::logic_error("dvfs_table: empty table");
  std::size_t best = 0;
  double best_d = std::abs(freqs_mhz_[0] - mhz);
  for (std::size_t i = 1; i < freqs_mhz_.size(); ++i) {
    const double d = std::abs(freqs_mhz_[i] - mhz);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

dvfs_table xavier_gpu_dvfs() {
  return dvfs_table{{114.75, 216.75, 318.75, 420.75, 522.75, 624.75, 675.0, 828.75, 905.25,
                     1032.75, 1198.5, 1236.75, 1338.75, 1377.0}};
}

dvfs_table xavier_dla_dvfs() {
  return dvfs_table{{115.2, 192.0, 307.2, 460.8, 499.2, 550.4, 614.4, 691.2, 748.8, 806.4, 896.0,
                     1100.8, 1305.6}};
}

dvfs_table xavier_cpu_dvfs() {
  return dvfs_table{{1190.4, 1344.0, 1497.6, 1651.2, 1804.8, 1958.4, 2112.0, 2265.6}};
}

}  // namespace mapcq::soc
