#include "soc/thermal.h"

#include <cmath>
#include <limits>

namespace mapcq::soc {

double thermal_model::temperature_after(double t0_c, double power_w, double dt_s) const {
  check_power(power_w);
  check_time(dt_s);
  if (!std::isfinite(t0_c))
    throw std::invalid_argument("thermal_model: non-finite start temperature");
  const double target = steady_state_c(power_w);
  return target + (t0_c - target) * std::exp(-dt_s / tau_s);
}

double thermal_model::seconds_to_throttle(double power_w) const {
  if (!throttles(power_w)) return std::numeric_limits<double>::infinity();
  const double target = steady_state_c(power_w);
  // Solve throttle = target + (ambient - target) e^{-t/tau}.
  const double ratio = (throttle_c - target) / (ambient_c - target);
  return -tau_s * std::log(ratio);
}

void thermal_model::validate() const {
  if (r_thermal_c_per_w <= 0.0) throw std::logic_error("thermal_model: non-positive resistance");
  if (tau_s <= 0.0) throw std::logic_error("thermal_model: non-positive time constant");
  if (throttle_c <= ambient_c) throw std::logic_error("thermal_model: throttle below ambient");
}

}  // namespace mapcq::soc
