#include "soc/compute_unit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mapcq::soc {

const char* to_string(cu_kind kind) noexcept {
  switch (kind) {
    case cu_kind::gpu: return "GPU";
    case cu_kind::dla: return "DLA";
    case cu_kind::cpu: return "CPU";
  }
  return "?";
}

op_class classify(nn::layer_kind kind) noexcept {
  switch (kind) {
    case nn::layer_kind::conv2d:
    case nn::layer_kind::depthwise_conv2d:
    case nn::layer_kind::patch_embed:
    case nn::layer_kind::pool:
    case nn::layer_kind::norm:
    case nn::layer_kind::activation:
    case nn::layer_kind::global_pool:
      return op_class::spatial;
    case nn::layer_kind::attention:
    case nn::layer_kind::mlp:
    case nn::layer_kind::linear:
    case nn::layer_kind::classifier:
      return op_class::matmul;
  }
  return op_class::spatial;
}

double compute_unit::occupancy(double width_frac) const noexcept {
  width_frac = std::clamp(width_frac, 0.0, 1.0);
  if (width_frac == 0.0) return 0.0;
  return occupancy_floor + (1.0 - occupancy_floor) * std::pow(width_frac, occupancy_exponent);
}

double compute_unit::sustained_gflops(nn::layer_kind kind, double width_frac,
                                      std::size_t level) const {
  const double eff = efficiency(classify(kind));
  return peak_gflops * eff * occupancy(width_frac) * theta(level);
}

double compute_unit::power_w(nn::layer_kind kind, std::size_t level) const {
  return static_power_w + dynamic_power_w * activity(classify(kind)) * theta(level);
}

void compute_unit::validate() const {
  if (name.empty()) throw std::logic_error("compute_unit: empty name");
  if (peak_gflops <= 0.0) throw std::logic_error("compute_unit: peak_gflops must be positive");
  if (mem_bandwidth_gbps <= 0.0)
    throw std::logic_error("compute_unit: mem_bandwidth_gbps must be positive");
  if (launch_overhead_ms < 0.0) throw std::logic_error("compute_unit: negative launch overhead");
  for (const double e : {efficiency_spatial, efficiency_matmul})
    if (e <= 0.0 || e > 1.0) throw std::logic_error("compute_unit: efficiency out of (0,1]");
  if (occupancy_floor < 0.0 || occupancy_floor > 1.0)
    throw std::logic_error("compute_unit: occupancy_floor out of [0,1]");
  if (occupancy_exponent <= 0.0) throw std::logic_error("compute_unit: bad occupancy exponent");
  if (static_power_w < 0.0 || dynamic_power_w < 0.0 || gated_idle_w < 0.0)
    throw std::logic_error("compute_unit: negative power");
  for (const double a : {activity_spatial, activity_matmul})
    if (a < 0.0 || a > 1.0) throw std::logic_error("compute_unit: activity out of [0,1]");
  if (dvfs.levels() == 0) throw std::logic_error("compute_unit: empty DVFS table");
}

}  // namespace mapcq::soc
