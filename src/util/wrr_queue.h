#pragma once
// Weighted round-robin multi-queue: FIFO sub-queues keyed by string, popped
// in a rotating key order so one hot key cannot starve the others. The
// fairness primitive under serving::request_scheduler (each key = one
// serving session); generic enough for any keyed work distribution.
//
// Semantics: `push(key, item)` appends to the key's FIFO lane; a lane new to
// the ring joins it at the position served *last* in the current rotation,
// so an arriving key waits at most one full round. `pop(eligible)` serves
// the lane at the cursor, up to `weight` consecutive items per visit
// (weighted round-robin in the classic sense), skipping lanes the caller's
// `eligible` predicate rejects (e.g. sessions at their in-flight cap).
//
// Ownership: the queue owns the queued items (moved in, moved out).
//
// Thread-safety: NONE — this is a locked-data-structure building block; the
// caller serializes access (the request_scheduler holds its own mutex
// across every call). Keeping the lock outside lets callers pair a pop with
// their own bookkeeping atomically.
//
// Blocking: no member blocks; `pop` returns std::nullopt when nothing is
// eligible rather than waiting.

#include <cstddef>
#include <deque>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace mapcq::util {

/// Weighted round-robin FIFO multi-queue (see file comment for semantics).
template <typename T>
class wrr_queue {
 public:
  /// `default_weight` is the per-visit budget of lanes without an explicit
  /// `set_weight` override (clamped to at least 1).
  explicit wrr_queue(std::size_t default_weight = 1)
      : default_weight_(default_weight == 0 ? 1 : default_weight) {}

  // The cursor is an iterator into ring_, which moving would invalidate;
  // hold wrr_queues in node-based containers (std::map) or by pointer.
  wrr_queue(const wrr_queue&) = delete;
  wrr_queue& operator=(const wrr_queue&) = delete;

  /// Sets `key`'s per-visit budget (clamped to at least 1). Applies from the
  /// lane's next cursor visit; items already queued are unaffected.
  void set_weight(const std::string& key, std::size_t weight) {
    if (weight == 0) weight = 1;
    weights_[key] = weight;
    const auto it = lanes_.find(key);
    if (it != lanes_.end() && it->second.credit > weight) it->second.credit = weight;
  }

  /// Appends `item` to `key`'s FIFO lane.
  void push(const std::string& key, T item) {
    auto [it, fresh] = lanes_.try_emplace(key);
    if (it->second.items.empty()) {
      // (Re-)joining lane: full credit, ring slot just before the cursor --
      // i.e. it is served after every lane already waiting this round.
      it->second.credit = weight_of(key);
      ring_.insert(cursor_, key);
    }
    it->second.items.push_back(std::move(item));
    ++total_;
  }

  /// Pops the next item in weighted round-robin order among the lanes for
  /// which `eligible(key)` returns true; std::nullopt when every queued lane
  /// is ineligible (or the queue is empty). O(lanes) worst case.
  template <typename Eligible>
  [[nodiscard]] std::optional<T> pop(Eligible&& eligible) {
    std::size_t skipped = 0;
    while (skipped < ring_.size()) {
      if (cursor_ == ring_.end()) {
        cursor_ = ring_.begin();
        if (cursor_ == ring_.end()) break;
      }
      const auto lane_it = lanes_.find(*cursor_);
      if (lane_it == lanes_.end() || lane_it->second.items.empty()) {
        // Defensive: serving erases drained lanes immediately, so this only
        // fires if a subclass of usage leaves an empty lane behind.
        if (lane_it != lanes_.end()) lanes_.erase(lane_it);
        cursor_ = ring_.erase(cursor_);
        continue;
      }
      if (!eligible(static_cast<const std::string&>(*cursor_))) {
        ++skipped;
        ++cursor_;
        continue;
      }
      lane& l = lane_it->second;
      T item = std::move(l.items.front());
      l.items.pop_front();
      --total_;
      if (l.items.empty()) {
        // Drop drained lanes entirely — long-lived queues see an unbounded
        // stream of distinct keys (session generations), and a leftover
        // empty lane per key would be a slow leak. push() recreates it.
        lanes_.erase(lane_it);
        cursor_ = ring_.erase(cursor_);
      } else if (--l.credit == 0) {
        l.credit = weight_of(*cursor_);
        ++cursor_;
      }
      return item;
    }
    return std::nullopt;
  }

  /// Pops in plain rotation order with every lane eligible.
  [[nodiscard]] std::optional<T> pop() {
    return pop([](const std::string&) { return true; });
  }

  /// Pops the oldest item of `key`'s lane directly, bypassing the cursor
  /// and the lane's per-visit credit — the cross-request fusion hook:
  /// followers of a fused dispatch ride the WRR grant their lead already
  /// won, so draining them must not charge the lane a second visit.
  /// Returns std::nullopt when the lane has nothing queued.
  [[nodiscard]] std::optional<T> pop_from(const std::string& key) {
    const auto lane_it = lanes_.find(key);
    if (lane_it == lanes_.end() || lane_it->second.items.empty()) return std::nullopt;
    lane& l = lane_it->second;
    T item = std::move(l.items.front());
    l.items.pop_front();
    --total_;
    if (l.items.empty()) {
      // Mirror pop(): a drained lane leaves the ring immediately. The key
      // appears in the ring exactly once (push only inserts it when the
      // lane (re)joins), and erasing the cursor's node must advance it.
      for (auto it = ring_.begin(); it != ring_.end(); ++it) {
        if (*it == key) {
          if (cursor_ == it)
            cursor_ = ring_.erase(it);
          else
            ring_.erase(it);
          break;
        }
      }
      lanes_.erase(lane_it);
    }
    return item;
  }

  /// Total queued items across all lanes.
  [[nodiscard]] std::size_t size() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  /// Queued items in `key`'s lane.
  [[nodiscard]] std::size_t lane_size(const std::string& key) const {
    const auto it = lanes_.find(key);
    return it == lanes_.end() ? 0 : it->second.items.size();
  }

  /// Applies `fn(key, item&)` to every queued item in unspecified order
  /// (e.g. failing all pending promises at shutdown), then clears the queue.
  template <typename Fn>
  void drain(Fn&& fn) {
    for (auto& [key, l] : lanes_)
      for (T& item : l.items) fn(static_cast<const std::string&>(key), item);
    lanes_.clear();
    ring_.clear();
    cursor_ = ring_.end();
    total_ = 0;
  }

 private:
  struct lane {
    std::deque<T> items;
    std::size_t credit = 1;  ///< pops left in the current cursor visit
  };

  [[nodiscard]] std::size_t weight_of(const std::string& key) const {
    const auto it = weights_.find(key);
    return it == weights_.end() ? default_weight_ : it->second;
  }

  std::size_t default_weight_;
  std::unordered_map<std::string, std::size_t> weights_;
  std::unordered_map<std::string, lane> lanes_;
  std::list<std::string> ring_;  ///< rotation order of lanes with items
  std::list<std::string>::iterator cursor_ = ring_.end();
  std::size_t total_ = 0;
};

}  // namespace mapcq::util
