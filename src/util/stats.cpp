#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mapcq::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of [0,100]");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

namespace {
void require_paired(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("paired metric: sizes must match and be nonzero");
}
}  // namespace

double rmse(std::span<const double> pred, std::span<const double> truth) {
  require_paired(pred, truth);
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(pred.size()));
}

double mape(std::span<const double> pred, std::span<const double> truth) {
  require_paired(pred, truth);
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (truth[i] == 0.0) throw std::invalid_argument("mape: zero truth entry");
    s += std::abs((pred[i] - truth[i]) / truth[i]);
  }
  return 100.0 * s / static_cast<double>(pred.size());
}

double r_squared(std::span<const double> pred, std::span<const double> truth) {
  require_paired(pred, truth);
  const double m = mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mae(std::span<const double> pred, std::span<const double> truth) {
  require_paired(pred, truth);
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) s += std::abs(pred[i] - truth[i]);
  return s / static_cast<double>(pred.size());
}

double kendall_tau(std::span<const double> pred, std::span<const double> truth) {
  require_paired(pred, truth);
  const std::size_t n = pred.size();
  if (n < 2) return 0.0;
  std::int64_t concordant = 0;
  std::int64_t discordant = 0;
  std::int64_t ties_pred = 0;   // tied in pred only
  std::int64_t ties_truth = 0;  // tied in truth only
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dp = pred[i] - pred[j];
      const double dt = truth[i] - truth[j];
      if (dp == 0.0 && dt == 0.0) continue;  // tied in both: dropped entirely
      if (dp == 0.0) {
        ++ties_pred;
      } else if (dt == 0.0) {
        ++ties_truth;
      } else if ((dp > 0.0) == (dt > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double np = static_cast<double>(concordant + discordant + ties_pred);
  const double nt = static_cast<double>(concordant + discordant + ties_truth);
  if (np == 0.0 || nt == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / std::sqrt(np * nt);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  require_paired(xs, ys);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void running_stats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

}  // namespace mapcq::util
