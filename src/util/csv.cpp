#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace mapcq::util {

csv_writer::csv_writer(const std::string& path, const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("csv_writer: cannot open " + path);
  if (header.empty()) throw std::invalid_argument("csv_writer: empty header");
  write_row(header);
  rows_ = 0;  // header does not count as a data row
}

std::string csv_writer::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void csv_writer::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) throw std::invalid_argument("csv_writer: row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void csv_writer::write_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (const double v : cells) {
    std::ostringstream os;
    os.precision(10);
    os << v;
    text.push_back(os.str());
  }
  write_row(text);
}

}  // namespace mapcq::util
