#pragma once
// String formatting helpers shared across examples and benches.

#include <string>
#include <vector>

namespace mapcq::util {

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements with the separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits on a single-character delimiter (keeps empty fields).
[[nodiscard]] std::vector<std::string> split(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string trim(const std::string& s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix);

/// Human-readable byte count, e.g. "1.50 MiB".
[[nodiscard]] std::string human_bytes(double bytes);

/// Human-readable operation count, e.g. "3.20 GFLOPs".
[[nodiscard]] std::string human_flops(double flops);

}  // namespace mapcq::util
