#pragma once
// ASCII table printer used by the benches to emit paper-style tables
// (Table I, Table II) and figure data series.

#include <string>
#include <vector>

namespace mapcq::util {

/// Column alignment inside a printed table.
enum class align { left, right };

/// Builds fixed-width ASCII tables with a header row, separators and
/// optional section rows spanning the full width.
class table {
 public:
  explicit table(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a section row rendered across the full table width.
  void add_section(std::string title);

  /// Formats a double with the given number of decimals.
  [[nodiscard]] static std::string num(double v, int decimals = 2);

  /// Renders the complete table.
  [[nodiscard]] std::string str() const;

  /// Sets alignment for one column (default: left for col 0, right otherwise).
  void set_align(std::size_t column, align a);

 private:
  struct row {
    bool is_section = false;
    std::string section_title;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<row> rows_;
  std::vector<align> aligns_;
};

}  // namespace mapcq::util
