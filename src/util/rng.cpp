#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mapcq::util {

namespace {

// splitmix64: expands one 64-bit seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double rng::uniform() noexcept {
  // 53 mantissa bits of a double.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

bool rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("rng::weighted_index: no positive weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land on the last entry
}

rng rng::split(std::uint64_t salt) noexcept {
  return rng{next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL)};
}

}  // namespace mapcq::util
