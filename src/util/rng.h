#pragma once
// Deterministic, seedable random number generation for every stochastic
// component of the framework (GA, synthetic datasets, measurement noise).
//
// A thin value-semantic wrapper over xoshiro256** so that (a) results are
// reproducible across standard libraries (std::mt19937 distributions are not
// portable), and (b) independent streams can be split off a parent stream.

#include <array>
#include <cstdint>
#include <vector>

namespace mapcq::util {

/// Deterministic 64-bit PRNG (xoshiro256**) with portable distributions.
class rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (portable across platforms).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Index in [0, weights.size()) drawn proportionally to the weights.
  /// Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream; deterministic in (parent state, salt).
  [[nodiscard]] rng split(std::uint64_t salt) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mapcq::util
