#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mapcq::util {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table: needs at least one column");
  aligns_.assign(headers_.size(), align::right);
  aligns_[0] = align::left;
}

void table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("table::add_row: cell count mismatch");
  rows_.push_back(row{.is_section = false, .section_title = {}, .cells = std::move(cells)});
}

void table::add_section(std::string title) {
  rows_.push_back(row{.is_section = true, .section_title = std::move(title), .cells = {}});
}

std::string table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

void table::set_align(std::size_t column, align a) {
  if (column >= aligns_.size()) throw std::out_of_range("table::set_align: bad column");
  aligns_[column] = a;
}

std::string table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    if (r.is_section) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());
  }

  std::size_t total = headers_.size() * 3 + 1;
  for (const auto w : widths) total += w;

  // Widen the last column if a section title would not fit.
  for (const auto& r : rows_) {
    if (!r.is_section) continue;
    const std::size_t needed = r.section_title.size() + 4;  // "| title |" padding
    if (needed > total) {
      widths.back() += needed - total;
      total = needed;
    }
  }

  const auto pad = [&](const std::string& s, std::size_t w, align a) {
    std::string out;
    if (a == align::left) {
      out = s + std::string(w - s.size(), ' ');
    } else {
      out = std::string(w - s.size(), ' ') + s;
    }
    return out;
  };

  const auto rule = [&] {
    std::string s = "+";
    for (const auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };

  std::ostringstream os;
  os << rule();
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << ' ' << pad(headers_[c], widths[c], align::left) << " |";
  os << "\n" << rule();

  for (const auto& r : rows_) {
    if (r.is_section) {
      std::string title = " " + r.section_title + " ";
      if (title.size() > total - 2) title.resize(total - 2);
      const std::size_t fill = total - 2 - title.size();
      os << "|" << std::string(fill / 2, '-') << title
         << std::string(fill - fill / 2, '-') << "|\n";
      continue;
    }
    os << "|";
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      os << ' ' << pad(r.cells[c], widths[c], aligns_[c]) << " |";
    os << "\n";
  }
  os << rule();
  return os.str();
}

}  // namespace mapcq::util
