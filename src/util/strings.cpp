#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace mapcq::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (const char ch : s) {
    if (ch == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string human_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return format("%.2f %s", bytes, units[u]);
}

std::string human_flops(double flops) {
  static const char* units[] = {"FLOPs", "KFLOPs", "MFLOPs", "GFLOPs", "TFLOPs"};
  int u = 0;
  while (flops >= 1000.0 && u < 4) {
    flops /= 1000.0;
    ++u;
  }
  return format("%.2f %s", flops, units[u]);
}

}  // namespace mapcq::util
