#pragma once
// Generic hash-combine helpers shared by every subsystem that needs a
// canonical content hash (memo keys, dedup sets). Deliberately header-only
// and dependency-free.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <type_traits>

namespace mapcq::util {

/// FNV-1a over bytes: a *stable* 64-bit string hash, identical across
/// processes, platforms and library versions — unlike std::hash, which only
/// promises intra-process consistency. Anything persisted or re-derived
/// after a restart (snapshot filenames, consistent-hash ring placement)
/// must hash through this, never std::hash.
inline std::uint64_t stable_hash64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Folds `value` into `seed` (64-bit variant of the boost::hash_combine
/// recipe with an extra splitmix-style pre-mix so low-entropy inputs --
/// small indices, level numbers -- still diffuse across the word).
inline void hash_combine(std::size_t& seed, std::size_t value) noexcept {
  value *= 0x9e3779b97f4a7c15ULL;
  value ^= value >> 32;
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Bit-pattern hash of a double. Collapses -0.0 onto +0.0 so values that
/// compare equal always hash equal (NaNs never compare equal, so their
/// payload bits may hash however they like).
inline std::size_t hash_double(double v) noexcept {
  if (v == 0.0) v = 0.0;
  return std::bit_cast<std::uint64_t>(v);
}

/// Folds one value of any hashable type into `seed`.
template <typename T>
void hash_combine_value(std::size_t& seed, const T& value) {
  if constexpr (std::is_same_v<T, double>) {
    hash_combine(seed, hash_double(value));
  } else if constexpr (std::is_same_v<T, bool>) {
    hash_combine(seed, value ? 0x5u : 0xAu);
  } else {
    hash_combine(seed, std::hash<T>{}(value));
  }
}

/// Folds a whole range into `seed`, length-prefixed so that e.g. the row
/// split [a,b|c] hashes differently from [a|b,c]. Works with
/// std::vector<bool> (the proxy reference is cast back to value_type).
template <typename Range>
void hash_combine_range(std::size_t& seed, const Range& range) {
  std::size_t n = 0;
  for (const auto& v : range) {
    hash_combine_value(seed, static_cast<typename Range::value_type>(v));
    ++n;
  }
  hash_combine(seed, n);
}

}  // namespace mapcq::util
