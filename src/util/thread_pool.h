#pragma once
// Fixed-size worker pool used to evaluate GA populations in parallel.
// Plays the role of the paper's 12-GPU evaluation cluster (§VI-A).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mapcq::util {

/// Pool construction knobs.
struct pool_options {
  std::size_t threads = 1;  ///< worker count (at least one)
  /// Pin worker i to CPU (i mod online-CPUs), best-effort, on Linux; a
  /// no-op elsewhere and on affinity errors. Long-lived evaluation pools
  /// (island engines) opt in so workers stop migrating between cores and
  /// keep their SoA scratch caches warm.
  bool pin_threads = false;
};

/// Simple task-queue thread pool. Tasks are `void()` callables; exceptions
/// escaping a task terminate (tasks are expected to capture their own error
/// channel). `wait_idle` blocks until the queue is drained and all workers
/// are idle, which is how a GA generation barrier is implemented.
///
/// Ownership: the pool owns its worker threads and the queued tasks; task
/// closures own (or must outlive-guard) whatever they capture — the pool
/// never inspects them.
///
/// Thread-safety: every public member may be called concurrently from any
/// thread, including from inside a task (except `wait_idle`, which would
/// deadlock if a worker waited on itself).
///
/// Blocking: `submit` never blocks beyond the queue mutex; `wait_idle` and
/// `parallel_for` block the caller; the destructor blocks until running
/// tasks finish (queued-but-unstarted tasks still run first — it drains,
/// it does not cancel).
class thread_pool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit thread_pool(std::size_t threads) : thread_pool(pool_options{threads, false}) {}
  /// Spawns `opt.threads` workers, optionally pinned (see pool_options).
  explicit thread_pool(pool_options opt);
  /// Drains the queue, then joins every worker (see class comment).
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Enqueues a task for asynchronous execution. Throws
  /// std::invalid_argument on an empty task and std::runtime_error when the
  /// pool is already stopping.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Do not call from a
  /// pool worker (self-deadlock).
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work-steals via an atomic index, so uneven iteration costs balance
  /// themselves. Blocks the caller; do not call from a pool worker.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace mapcq::util
