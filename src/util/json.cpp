#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mapcq::util::json {

namespace {

const char* kind_name(value::kind k) {
  switch (k) {
    case value::kind::null: return "null";
    case value::kind::boolean: return "boolean";
    case value::kind::number: return "number";
    case value::kind::string: return "string";
    case value::kind::array: return "array";
    case value::kind::object: return "object";
  }
  return "?";
}

[[noreturn]] void kind_mismatch(const char* want, value::kind got) {
  throw std::runtime_error(std::string("json: value is not a ") + want + " (it is a " +
                           kind_name(got) + ")");
}

}  // namespace

parse_error::parse_error(const std::string& message, std::size_t line, std::size_t column)
    : std::runtime_error("json parse error at line " + std::to_string(line) + ", column " +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

bool value::as_bool() const {
  if (kind_ != kind::boolean) kind_mismatch("boolean", kind_);
  return bool_;
}

double value::as_number() const {
  if (kind_ != kind::number) kind_mismatch("number", kind_);
  return num_;
}

const std::string& value::as_string() const {
  if (kind_ != kind::string) kind_mismatch("string", kind_);
  return str_;
}

const array& value::as_array() const {
  if (kind_ != kind::array) kind_mismatch("array", kind_);
  return arr_;
}

const object& value::as_object() const {
  if (kind_ != kind::object) kind_mismatch("object", kind_);
  return obj_;
}

array& value::as_array() {
  if (kind_ != kind::array) kind_mismatch("array", kind_);
  return arr_;
}

object& value::as_object() {
  if (kind_ != kind::object) kind_mismatch("object", kind_);
  return obj_;
}

const value* value::find(std::string_view key) const noexcept {
  if (kind_ != kind::object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

value& value::at_or_insert(std::string_view key) {
  if (kind_ == kind::null) kind_ = kind::object;
  if (kind_ != kind::object) kind_mismatch("object", kind_);
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(std::string(key), value{});
  return obj_.back().second;
}

void value::push_member(std::string key, value v) {
  if (kind_ == kind::null) kind_ = kind::object;
  if (kind_ != kind::object) kind_mismatch("object", kind_);
  obj_.emplace_back(std::move(key), std::move(v));
}

bool value::operator==(const value& other) const noexcept {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case kind::null: return true;
    case kind::boolean: return bool_ == other.bool_;
    case kind::number: return num_ == other.num_;
    case kind::string: return str_ == other.str_;
    case kind::array: return arr_ == other.arr_;
    case kind::object: return obj_ == other.obj_;
  }
  return false;
}

namespace {

/// Strict recursive-descent parser over the whole document.
class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  value run() {
    value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after the document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw parse_error(message, line, column);
  }

  [[nodiscard]] bool done() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    if (done()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (!done()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  value parse_value(int depth) {
    if (depth > 256) fail("nesting deeper than 256 levels");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return value{parse_string()};
      case 't':
        if (consume_literal("true")) return value{true};
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return value{false};
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return value{};
        fail("invalid literal");
      default: return parse_number();
    }
  }

  value parse_object(int depth) {
    expect('{');
    object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value{std::move(members)};
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      for (const auto& [k, v] : members)
        if (k == key) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return value{std::move(members)};
  }

  value parse_array(int depth) {
    expect('[');
    array elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value{std::move(elements)};
    }
    for (;;) {
      elements.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return value{std::move(elements)};
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (take() != '\\' || take() != 'u') {
              --pos_;
              fail("unpaired UTF-16 surrogate");
            }
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  value parse_number() {
    const std::size_t start = pos_;
    if (!done() && peek() == '-') ++pos_;
    if (done() || peek() < '0' || peek() > '9') fail("invalid number");
    while (!done() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (!done() && text_[pos_] == '.') {
      ++pos_;
      if (done() || peek() < '0' || peek() > '9') fail("digits must follow the decimal point");
      while (!done() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!done() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!done() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (done() || peek() < '0' || peek() > '9') fail("digits must follow the exponent");
      while (!done() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token{text_.substr(start, pos_ - start)};
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) fail("number out of double range");
    return value{v};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through raw
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double v) {
  if (!std::isfinite(v))
    throw std::runtime_error("json: cannot dump a non-finite number (no JSON literal)");
  char buf[32];
  constexpr double exact = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && v >= -exact && v <= exact) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    // Shortest representation that round-trips: 0.9 stays "0.9", not
    // "0.90000000000000002"; widen only for values that need the digits.
    for (int prec = 15; prec <= 17; ++prec) {
      std::snprintf(buf, sizeof buf, "%.*g", prec, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
  }
  out += buf;
}

void dump_value(std::string& out, const value& v, int indent, int depth) {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case value::kind::null: out += "null"; return;
    case value::kind::boolean: out += v.as_bool() ? "true" : "false"; return;
    case value::kind::number: dump_number(out, v.as_number()); return;
    case value::kind::string: dump_string(out, v.as_string()); return;
    case value::kind::array: {
      const array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        dump_value(out, a[i], indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      return;
    }
    case value::kind::object: {
      const object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        dump_string(out, o[i].first);
        out += indent > 0 ? ": " : ":";
        dump_value(out, o[i].second, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

value parse(std::string_view text) { return parser{text}.run(); }

std::string dump(const value& v, int indent) {
  std::string out;
  dump_value(out, v, indent, 0);
  return out;
}

}  // namespace mapcq::util::json
