#pragma once
// Minimal dependency-free JSON reader/writer — the substrate of the unified
// config API (serving::service_config) and of everything else that wants a
// machine-readable ops surface. Deliberately small: one `value` variant
// (null / bool / finite number / string / array / insertion-ordered object),
// a strict recursive-descent `parse` with line/column errors, and a `dump`
// whose output is deterministic (objects keep insertion order, numbers
// round-trip at full precision) so two equal configs always serialize to
// byte-identical text — the property the config bit-identity checks gate on.
//
// Not supported on purpose: comments, trailing commas, duplicate-key
// tolerance (last-wins would hide config typos; `parse` rejects them) and
// non-finite numbers (JSON has no literal for them; `dump` throws).

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mapcq::util::json {

class value;
/// Array payload of a `value`.
using array = std::vector<value>;
/// Object payload: insertion-ordered members (deterministic dumps, stable
/// diffs). Lookup is linear — config objects hold tens of keys, not
/// thousands.
using object = std::vector<std::pair<std::string, value>>;

/// Parse failure, with 1-based line/column of the offending character.
class parse_error : public std::runtime_error {
 public:
  parse_error(const std::string& message, std::size_t line, std::size_t column);
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// One JSON value. Cheap to copy for config-sized documents; accessors
/// throw std::runtime_error on kind mismatch (callers wanting typed config
/// errors translate — see serving::config_error).
class value {
 public:
  enum class kind { null, boolean, number, string, array, object };

  value() noexcept : kind_(kind::null) {}
  value(std::nullptr_t) noexcept : kind_(kind::null) {}  // NOLINT(google-explicit-constructor)
  value(bool b) noexcept : kind_(kind::boolean), bool_(b) {}  // NOLINT
  value(double v) : kind_(kind::number), num_(v) {}           // NOLINT
  value(int v) : kind_(kind::number), num_(v) {}              // NOLINT
  value(unsigned v) : kind_(kind::number), num_(v) {}         // NOLINT
  value(long v) : kind_(kind::number), num_(static_cast<double>(v)) {}                 // NOLINT
  value(unsigned long v) : kind_(kind::number), num_(static_cast<double>(v)) {}        // NOLINT
  value(long long v) : kind_(kind::number), num_(static_cast<double>(v)) {}            // NOLINT
  value(unsigned long long v) : kind_(kind::number), num_(static_cast<double>(v)) {}   // NOLINT
  value(const char* s) : kind_(kind::string), str_(s) {}       // NOLINT
  value(std::string s) : kind_(kind::string), str_(std::move(s)) {}  // NOLINT
  value(array a) : kind_(kind::array), arr_(std::move(a)) {}         // NOLINT
  value(object o) : kind_(kind::object), obj_(std::move(o)) {}       // NOLINT

  [[nodiscard]] kind type() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == kind::null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == kind::boolean; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == kind::number; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == kind::string; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == kind::array; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == kind::object; }

  /// Checked accessors; throw std::runtime_error naming the expected kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const array& as_array() const;
  [[nodiscard]] const object& as_object() const;
  [[nodiscard]] array& as_array();
  [[nodiscard]] object& as_object();

  /// Object member by key; null when absent or when this is not an object.
  [[nodiscard]] const value* find(std::string_view key) const noexcept;
  /// Object member for writing: inserts a null member when absent. Turns a
  /// null value into an empty object first; throws on other kinds.
  [[nodiscard]] value& at_or_insert(std::string_view key);

  /// Appends a member (building serializers). Does not check duplicates.
  void push_member(std::string key, value v);

  [[nodiscard]] bool operator==(const value& other) const noexcept;

 private:
  kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  array arr_;
  object obj_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing content
/// rejected). Throws parse_error with line/column on malformed input,
/// duplicate object keys, or nesting beyond 256 levels.
[[nodiscard]] value parse(std::string_view text);

/// Serializes. `indent` = 0 emits the compact one-line form; > 0
/// pretty-prints with that many spaces per level. Integral numbers inside
/// +/-2^53 print without a decimal point; other finite numbers round-trip
/// at %.17g. Throws std::runtime_error on non-finite numbers.
[[nodiscard]] std::string dump(const value& v, int indent = 0);

}  // namespace mapcq::util::json
