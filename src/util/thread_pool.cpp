#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace mapcq::util {

namespace {

/// Best-effort round-robin CPU affinity (Linux only; no-op elsewhere).
/// Failures are ignored: pinning is a locality hint, never a correctness
/// requirement, and restricted cpusets/containers may reject any mask.
void pin_worker(std::thread& worker, std::size_t index) {
#ifdef __linux__
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online <= 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(index % static_cast<std::size_t>(online), &set);
  (void)pthread_setaffinity_np(worker.native_handle(), sizeof(set), &set);
#else
  (void)worker;
  (void)index;
#endif
}

}  // namespace

thread_pool::thread_pool(pool_options opt) {
  if (opt.threads == 0) opt.threads = 1;
  workers_.reserve(opt.threads);
  for (std::size_t i = 0; i < opt.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
    if (opt.pin_threads) pin_worker(workers_.back(), i);
  }
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("thread_pool::submit: empty task");
  {
    const std::lock_guard lock(mutex_);
    if (stopping_) throw std::runtime_error("thread_pool::submit: pool is stopping");
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void thread_pool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t lanes = std::min(n, workers_.size());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([&next, n, &fn] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  wait_idle();
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace mapcq::util
