#pragma once
// Small statistics helpers shared by the surrogate metrics, the exit
// simulator and the benches.

#include <cstddef>
#include <span>
#include <vector>

namespace mapcq::util {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Population standard deviation; 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Throws on empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Minimum / maximum; throw on empty input.
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// Root-mean-squared error between prediction and truth (equal, nonzero sizes).
[[nodiscard]] double rmse(std::span<const double> pred, std::span<const double> truth);

/// Mean absolute percentage error in percent; truth entries must be nonzero.
[[nodiscard]] double mape(std::span<const double> pred, std::span<const double> truth);

/// Coefficient of determination R^2.
[[nodiscard]] double r_squared(std::span<const double> pred, std::span<const double> truth);

/// Mean absolute error (equal, nonzero sizes).
[[nodiscard]] double mae(std::span<const double> pred, std::span<const double> truth);

/// Kendall rank correlation coefficient (tau-b: ties contribute to neither
/// side and shrink the normalizer). In [-1, 1]; 1 means `pred` ranks every
/// pair exactly as `truth` does — the metric that matters for a surrogate
/// steering a selection-based search. Returns 0 when either side is all
/// ties. O(n^2); fine at holdout sizes.
[[nodiscard]] double kendall_tau(std::span<const double> pred, std::span<const double> truth);

/// Pearson correlation coefficient; 0 when either side has zero variance.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Online accumulator for mean/min/max without storing samples.
class running_stats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept {
    return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mapcq::util
