#pragma once
// Minimal CSV writer for dumping bench series (figure data) to files that
// plotting scripts can consume.

#include <fstream>
#include <string>
#include <vector>

namespace mapcq::util {

/// Streams rows of string/number cells into a CSV file. RAII: the file is
/// flushed and closed on destruction.
class csv_writer {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  csv_writer(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; must match the header width.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: converts doubles with full precision.
  void write_row(const std::vector<double>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace mapcq::util
