#include "serving/service_config.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

namespace mapcq::serving {

namespace {

using util::json::value;

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  throw config_error(path, message);
}

std::string join(const std::string& path, std::string_view key) {
  return path.empty() ? std::string(key) : path + "." + std::string(key);
}

/// Tracks which members of a JSON object a from_json body consumed, so
/// finish() can reject the leftovers (typo'd keys) by path.
class object_reader {
 public:
  object_reader(const value& v, std::string path) : path_(std::move(path)) {
    if (!v.is_object()) fail(path_.empty() ? "<config>" : path_, "expected a JSON object");
    obj_ = &v.as_object();
    consumed_.assign(obj_->size(), false);
  }

  [[nodiscard]] std::string member_path(std::string_view key) const { return join(path_, key); }

  /// The member named `key`, marked consumed; null when absent.
  const value* take(std::string_view key) {
    for (std::size_t i = 0; i < obj_->size(); ++i) {
      if ((*obj_)[i].first == key) {
        consumed_[i] = true;
        return &(*obj_)[i].second;
      }
    }
    return nullptr;
  }

  void get(std::string_view key, bool& out) {
    if (const value* v = take(key)) {
      if (!v->is_bool()) fail(member_path(key), "expected a boolean");
      out = v->as_bool();
    }
  }

  void get(std::string_view key, double& out) {
    if (const value* v = take(key)) {
      if (!v->is_number()) fail(member_path(key), "expected a number");
      out = v->as_number();
    }
  }

  void get(std::string_view key, std::string& out) {
    if (const value* v = take(key)) {
      if (!v->is_string()) fail(member_path(key), "expected a string");
      out = v->as_string();
    }
  }

  template <class UInt>
  void get_uint(std::string_view key, UInt& out) {
    if (const value* v = take(key)) {
      if (!v->is_number()) fail(member_path(key), "expected a non-negative integer");
      const double d = v->as_number();
      constexpr double exact = 9007199254740992.0;  // 2^53
      if (d < 0.0 || d != std::floor(d) || d > exact)
        fail(member_path(key), "expected a non-negative integer");
      out = static_cast<UInt>(d);
    }
  }

  void get_ms(std::string_view key, std::chrono::milliseconds& out) {
    std::uint64_t ms = static_cast<std::uint64_t>(out.count());
    get_uint(key, ms);
    out = std::chrono::milliseconds(ms);
  }

  template <class Enum, std::size_t N>
  void get_enum(std::string_view key, Enum& out, const std::pair<const char*, Enum> (&names)[N]) {
    if (const value* v = take(key)) {
      if (!v->is_string()) fail(member_path(key), "expected a string");
      for (const auto& [name, val] : names) {
        if (v->as_string() == name) {
          out = val;
          return;
        }
      }
      std::string expected;
      for (const auto& [name, val] : names) {
        if (!expected.empty()) expected += " | ";
        expected += '"';
        expected += name;
        expected += '"';
      }
      fail(member_path(key),
           "unknown value \"" + v->as_string() + "\" (expected " + expected + ")");
    }
  }

  /// Every key not consumed by a get above is a typo — reject by path.
  void finish() const {
    for (std::size_t i = 0; i < obj_->size(); ++i)
      if (!consumed_[i]) fail(member_path((*obj_)[i].first), "unknown key");
  }

 private:
  const util::json::object* obj_ = nullptr;
  std::string path_;
  std::vector<bool> consumed_;
};

constexpr std::pair<const char*, core::eviction_policy> eviction_names[] = {
    {"fifo", core::eviction_policy::fifo},
    {"lru", core::eviction_policy::lru},
};
constexpr std::pair<const char*, admission_policy> policy_names[] = {
    {"block", admission_policy::block},
    {"reject", admission_policy::reject},
};
constexpr std::pair<const char*, core::selection_mode> selection_names[] = {
    {"hybrid_nsga", core::selection_mode::hybrid_nsga},
    {"objective_only", core::selection_mode::objective_only},
};
constexpr std::pair<const char*, core::island_algorithm> algorithm_names[] = {
    {"ga", core::island_algorithm::ga},
    {"sa", core::island_algorithm::sa},
};
constexpr std::pair<const char*, core::island_orientation> orientation_names[] = {
    {"balanced", core::island_orientation::balanced},
    {"latency", core::island_orientation::latency},
    {"energy", core::island_orientation::energy},
};

template <class Enum, std::size_t N>
const char* enum_to_string(Enum e, const std::pair<const char*, Enum> (&names)[N]) {
  for (const auto& [name, val] : names)
    if (val == e) return name;
  return "?";
}

/// Shared by from_json(service_options) and from_json(service_config): the
/// latter reads the same members at the top level, plus a "ga" block.
void read_service_fields(object_reader& r, service_options& out) {
  r.get_uint("workers", out.workers);
  r.get_uint("max_sessions", out.max_sessions);
  r.get_ms("session_ttl_ms", out.session_ttl);
  if (const value* v = r.take("engine")) from_json(*v, out.engine, r.member_path("engine"));
  if (const value* v = r.take("scheduler"))
    from_json(*v, out.scheduler, r.member_path("scheduler"));
  if (const value* v = r.take("refresh")) from_json(*v, out.refresh, r.member_path("refresh"));
  if (const value* v = r.take("snapshot")) from_json(*v, out.snapshot, r.member_path("snapshot"));
}

/// Service fields in declaration order; service_config appends "ga".
void push_service_fields(value& obj, const service_options& opt) {
  obj.push_member("workers", opt.workers);
  obj.push_member("max_sessions", opt.max_sessions);
  obj.push_member("session_ttl_ms", static_cast<std::uint64_t>(opt.session_ttl.count()));
  obj.push_member("engine", to_json(opt.engine));
  obj.push_member("scheduler", to_json(opt.scheduler));
  obj.push_member("refresh", to_json(opt.refresh));
  obj.push_member("snapshot", to_json(opt.snapshot));
}

void check_fraction_open(double v, const std::string& path) {
  if (!(v > 0.0 && v < 1.0)) fail(path, "must be strictly between 0 and 1");
}

void check_probability(double v, const std::string& path) {
  if (!(v >= 0.0 && v <= 1.0)) fail(path, "must be between 0 and 1");
}

}  // namespace

config_error::config_error(std::string path, const std::string& message)
    : std::runtime_error("config error at " + (path.empty() ? std::string("<config>") : path) +
                         ": " + message),
      path_(std::move(path)) {}

// ---------------------------------------------------------------- engine --

value to_json(const core::engine_options& opt) {
  value obj{util::json::object{}};
  obj.push_member("shards", opt.shards);
  obj.push_member("capacity", opt.capacity);
  obj.push_member("threads", opt.threads);
  obj.push_member("memoize", opt.memoize);
  obj.push_member("soa_batch", opt.soa_batch);
  obj.push_member("pin_threads", opt.pin_threads);
  obj.push_member("eviction", enum_to_string(opt.eviction, eviction_names));
  return obj;
}

void from_json(const value& v, core::engine_options& out, const std::string& path) {
  object_reader r{v, path};
  r.get_uint("shards", out.shards);
  r.get_uint("capacity", out.capacity);
  r.get_uint("threads", out.threads);
  r.get("memoize", out.memoize);
  r.get("soa_batch", out.soa_batch);
  r.get("pin_threads", out.pin_threads);
  r.get_enum("eviction", out.eviction, eviction_names);
  r.finish();
  validate(out, path);
}

void validate(const core::engine_options& opt, const std::string& path) {
  if (opt.shards == 0) fail(join(path, "shards"), "must be at least 1");
}

// -------------------------------------------------------------------- ga --

value to_json(const core::ga_options& opt) {
  value obj{util::json::object{}};
  obj.push_member("generations", opt.generations);
  obj.push_member("population", opt.population);
  obj.push_member("elite_fraction", opt.elite_fraction);
  obj.push_member("crossover_prob", opt.crossover_prob);
  obj.push_member("ratio_mutation_prob", opt.ratio_mutation_prob);
  obj.push_member("forward_mutation_prob", opt.forward_mutation_prob);
  obj.push_member("mapping_swap_prob", opt.mapping_swap_prob);
  obj.push_member("dvfs_mutation_prob", opt.dvfs_mutation_prob);
  obj.push_member("accuracy_elites", opt.accuracy_elites);
  obj.push_member("selection", enum_to_string(opt.selection, selection_names));
  value island{util::json::object{}};
  island.push_member("islands", opt.island.islands);
  island.push_member("migration_interval", opt.island.migration_interval);
  island.push_member("migrants", opt.island.migrants);
  island.push_member("polish_fraction", opt.island.polish_fraction);
  obj.push_member("island", std::move(island));
  value portfolio{util::json::object{}};
  util::json::array assignments;
  for (const core::island_assignment& a : opt.portfolio.islands) {
    value slot{util::json::object{}};
    slot.push_member("algorithm", enum_to_string(a.algorithm, algorithm_names));
    slot.push_member("orientation", enum_to_string(a.orientation, orientation_names));
    assignments.push_back(std::move(slot));
  }
  portfolio.push_member("islands", value{std::move(assignments)});
  value sa{util::json::object{}};
  sa.push_member("initial_temperature", opt.portfolio.sa.initial_temperature);
  sa.push_member("cooling", opt.portfolio.sa.cooling);
  portfolio.push_member("sa", std::move(sa));
  value prefilter{util::json::object{}};
  prefilter.push_member("enabled", opt.portfolio.prefilter.enabled);
  prefilter.push_member("quantile", opt.portfolio.prefilter.quantile);
  prefilter.push_member("warmup_generations", opt.portfolio.prefilter.warmup_generations);
  portfolio.push_member("prefilter", std::move(prefilter));
  obj.push_member("portfolio", std::move(portfolio));
  obj.push_member("seed", opt.seed);
  obj.push_member("threads", opt.threads);
  return obj;
}

void from_json(const value& v, core::ga_options& out, const std::string& path) {
  object_reader r{v, path};
  r.get_uint("generations", out.generations);
  r.get_uint("population", out.population);
  r.get("elite_fraction", out.elite_fraction);
  r.get("crossover_prob", out.crossover_prob);
  r.get("ratio_mutation_prob", out.ratio_mutation_prob);
  r.get("forward_mutation_prob", out.forward_mutation_prob);
  r.get("mapping_swap_prob", out.mapping_swap_prob);
  r.get("dvfs_mutation_prob", out.dvfs_mutation_prob);
  r.get_uint("accuracy_elites", out.accuracy_elites);
  r.get_enum("selection", out.selection, selection_names);
  if (const value* isl = r.take("island")) {
    object_reader ri{*isl, r.member_path("island")};
    ri.get_uint("islands", out.island.islands);
    ri.get_uint("migration_interval", out.island.migration_interval);
    ri.get_uint("migrants", out.island.migrants);
    ri.get("polish_fraction", out.island.polish_fraction);
    ri.finish();
  }
  if (const value* pf = r.take("portfolio")) {
    object_reader rp{*pf, r.member_path("portfolio")};
    if (const value* isl = rp.take("islands")) {
      const std::string ipath = rp.member_path("islands");
      if (!isl->is_array()) fail(ipath, "expected an array of island assignments");
      out.portfolio.islands.clear();
      for (std::size_t i = 0; i < isl->as_array().size(); ++i) {
        const std::string spath = ipath + "[" + std::to_string(i) + "]";
        object_reader rs{isl->as_array()[i], spath};
        core::island_assignment slot;
        rs.get_enum("algorithm", slot.algorithm, algorithm_names);
        rs.get_enum("orientation", slot.orientation, orientation_names);
        rs.finish();
        out.portfolio.islands.push_back(slot);
      }
    }
    if (const value* sa = rp.take("sa")) {
      object_reader rs{*sa, rp.member_path("sa")};
      rs.get("initial_temperature", out.portfolio.sa.initial_temperature);
      rs.get("cooling", out.portfolio.sa.cooling);
      rs.finish();
    }
    if (const value* pre = rp.take("prefilter")) {
      object_reader rf{*pre, rp.member_path("prefilter")};
      rf.get("enabled", out.portfolio.prefilter.enabled);
      rf.get("quantile", out.portfolio.prefilter.quantile);
      rf.get_uint("warmup_generations", out.portfolio.prefilter.warmup_generations);
      rf.finish();
    }
    rp.finish();
  }
  r.get_uint("seed", out.seed);
  r.get_uint("threads", out.threads);
  r.finish();
  validate(out, path);
}

void validate(const core::ga_options& opt, const std::string& path) {
  if (opt.generations == 0) fail(join(path, "generations"), "must be at least 1");
  if (opt.population < 4) fail(join(path, "population"), "must be at least 4");
  check_fraction_open(opt.elite_fraction, join(path, "elite_fraction"));
  check_probability(opt.crossover_prob, join(path, "crossover_prob"));
  check_probability(opt.ratio_mutation_prob, join(path, "ratio_mutation_prob"));
  check_probability(opt.forward_mutation_prob, join(path, "forward_mutation_prob"));
  check_probability(opt.mapping_swap_prob, join(path, "mapping_swap_prob"));
  check_probability(opt.dvfs_mutation_prob, join(path, "dvfs_mutation_prob"));
  if (opt.island.islands > 0 && opt.island.islands * 4 > opt.population)
    fail(join(path, "island.islands"),
         "would leave an island under 4 members (islands * 4 must not exceed population)");
  check_probability(opt.island.polish_fraction, join(path, "island.polish_fraction"));
  const std::size_t islands = std::max<std::size_t>(1, opt.island.islands);
  if (opt.portfolio.islands.size() > islands)
    fail(join(path, "portfolio.islands"),
         "has more assignments (" + std::to_string(opt.portfolio.islands.size()) +
             ") than ga.island.islands (" + std::to_string(islands) + ")");
  if (!(opt.portfolio.sa.initial_temperature > 0.0))
    fail(join(path, "portfolio.sa.initial_temperature"), "must be greater than 0");
  if (!(opt.portfolio.sa.cooling > 0.0) || opt.portfolio.sa.cooling > 1.0)
    fail(join(path, "portfolio.sa.cooling"), "must be in (0, 1]");
  if (!(opt.portfolio.prefilter.quantile > 0.0) || opt.portfolio.prefilter.quantile > 1.0)
    fail(join(path, "portfolio.prefilter.quantile"), "must be in (0, 1]");
}

// ------------------------------------------------------------- scheduler --

value to_json(const scheduler_options& opt) {
  value obj{util::json::object{}};
  obj.push_member("max_queued", opt.max_queued);
  obj.push_member("max_inflight_per_session", opt.max_inflight_per_session);
  obj.push_member("max_fused", opt.max_fused);
  obj.push_member("policy", enum_to_string(opt.policy, policy_names));
  obj.push_member("coalesce", opt.coalesce);
  obj.push_member("default_weight", opt.default_weight);
  // weights live in an unordered_map: emit sorted so dumps stay
  // deterministic (equal configs => byte-identical text).
  std::vector<std::pair<std::string, std::size_t>> sorted{opt.weights.begin(), opt.weights.end()};
  std::sort(sorted.begin(), sorted.end());
  value weights{util::json::object{}};
  for (auto& [lane, w] : sorted) weights.push_member(lane, w);
  obj.push_member("weights", std::move(weights));
  return obj;
}

void from_json(const value& v, scheduler_options& out, const std::string& path) {
  object_reader r{v, path};
  r.get_uint("max_queued", out.max_queued);
  r.get_uint("max_inflight_per_session", out.max_inflight_per_session);
  r.get_uint("max_fused", out.max_fused);
  r.get_enum("policy", out.policy, policy_names);
  r.get("coalesce", out.coalesce);
  r.get_uint("default_weight", out.default_weight);
  if (const value* w = r.take("weights")) {
    const std::string wpath = r.member_path("weights");
    if (!w->is_object()) fail(wpath, "expected an object of session-key -> weight");
    out.weights.clear();
    for (const auto& [lane, weight] : w->as_object()) {
      const std::string lpath = join(wpath, lane);
      if (!weight.is_number() || weight.as_number() != std::floor(weight.as_number()) ||
          weight.as_number() < 0.0)
        fail(lpath, "expected a non-negative integer");
      out.weights[lane] = static_cast<std::size_t>(weight.as_number());
    }
  }
  r.finish();
  validate(out, path);
}

void validate(const scheduler_options& opt, const std::string& path) {
  if (opt.default_weight == 0) fail(join(path, "default_weight"), "must be at least 1");
  for (const auto& [lane, weight] : opt.weights)
    if (weight == 0) fail(join(path, "weights." + lane), "must be at least 1");
}

// --------------------------------------------------------------- refresh --

value to_json(const surrogate::refresh_options& opt) {
  value obj{util::json::object{}};
  obj.push_member("enabled", opt.enabled);
  obj.push_member("log_capacity", opt.log_capacity);
  obj.push_member("min_new_samples", opt.min_new_samples);
  obj.push_member("interval_ms", static_cast<std::uint64_t>(opt.interval.count()));
  obj.push_member("holdout_fraction", opt.holdout_fraction);
  obj.push_member("promotion_margin", opt.promotion_margin);
  obj.push_member("seed", opt.seed);
  obj.push_member("synchronous", opt.synchronous);
  return obj;
}

void from_json(const value& v, surrogate::refresh_options& out, const std::string& path) {
  object_reader r{v, path};
  r.get("enabled", out.enabled);
  r.get_uint("log_capacity", out.log_capacity);
  r.get_uint("min_new_samples", out.min_new_samples);
  r.get_ms("interval_ms", out.interval);
  r.get("holdout_fraction", out.holdout_fraction);
  r.get("promotion_margin", out.promotion_margin);
  r.get_uint("seed", out.seed);
  r.get("synchronous", out.synchronous);
  r.finish();
  validate(out, path);
}

void validate(const surrogate::refresh_options& opt, const std::string& path) {
  if (opt.log_capacity == 0) fail(join(path, "log_capacity"), "must be at least 1");
  if (opt.min_new_samples == 0) fail(join(path, "min_new_samples"), "must be at least 1");
  check_fraction_open(opt.holdout_fraction, join(path, "holdout_fraction"));
  if (opt.promotion_margin < 0.0) fail(join(path, "promotion_margin"), "must not be negative");
}

// -------------------------------------------------------------- snapshot --

value to_json(const snapshot_options& opt) {
  value obj{util::json::object{}};
  obj.push_member("directory", opt.directory);
  obj.push_member("spill_on_evict", opt.spill_on_evict);
  obj.push_member("restore_on_miss", opt.restore_on_miss);
  return obj;
}

void from_json(const value& v, snapshot_options& out, const std::string& path) {
  object_reader r{v, path};
  r.get("directory", out.directory);
  r.get("spill_on_evict", out.spill_on_evict);
  r.get("restore_on_miss", out.restore_on_miss);
  r.finish();
  validate(out, path);
}

void validate(const snapshot_options& opt, const std::string& path) {
  if (opt.spill_on_evict && opt.directory.empty())
    fail(join(path, "spill_on_evict"), "requires a snapshot directory (set \"directory\")");
}

// ----------------------------------------------------------------- group --

value to_json(const group_options& opt) {
  value obj{util::json::object{}};
  obj.push_member("shards", opt.shards);
  obj.push_member("virtual_nodes", opt.virtual_nodes);
  return obj;
}

void from_json(const value& v, group_options& out, const std::string& path) {
  object_reader r{v, path};
  r.get_uint("shards", out.shards);
  r.get_uint("virtual_nodes", out.virtual_nodes);
  r.finish();
  validate(out, path);
}

void validate(const group_options& opt, const std::string& path) {
  if (opt.shards == 0) fail(join(path, "shards"), "must be at least 1");
  if (opt.virtual_nodes == 0) fail(join(path, "virtual_nodes"), "must be at least 1");
}

// --------------------------------------------------------------- service --

value to_json(const service_options& opt) {
  value obj{util::json::object{}};
  push_service_fields(obj, opt);
  return obj;
}

void from_json(const value& v, service_options& out, const std::string& path) {
  object_reader r{v, path};
  read_service_fields(r, out);
  r.finish();
  validate(out, path);
}

void validate(const service_options& opt, const std::string& path) {
  if (opt.workers == 0) fail(join(path, "workers"), "must be at least 1");
  validate(opt.engine, join(path, "engine"));
  validate(opt.scheduler, join(path, "scheduler"));
  validate(opt.refresh, join(path, "refresh"));
  validate(opt.snapshot, join(path, "snapshot"));
}

// ----------------------------------------------------- co-location scenario --

value to_json(const soc::thermal_model& model) {
  value obj{util::json::object{}};
  obj.push_member("ambient_c", model.ambient_c);
  obj.push_member("r_thermal_c_per_w", model.r_thermal_c_per_w);
  obj.push_member("tau_s", model.tau_s);
  obj.push_member("throttle_c", model.throttle_c);
  return obj;
}

void from_json(const value& v, soc::thermal_model& out, const std::string& path) {
  object_reader r{v, path};
  r.get("ambient_c", out.ambient_c);
  r.get("r_thermal_c_per_w", out.r_thermal_c_per_w);
  r.get("tau_s", out.tau_s);
  r.get("throttle_c", out.throttle_c);
  r.finish();
  validate(out, path);
}

void validate(const soc::thermal_model& model, const std::string& path) {
  if (!(model.r_thermal_c_per_w > 0.0))
    fail(join(path, "r_thermal_c_per_w"), "must be greater than 0");
  if (!(model.tau_s > 0.0)) fail(join(path, "tau_s"), "must be greater than 0");
  if (!(model.throttle_c > model.ambient_c)) fail(join(path, "throttle_c"), "must exceed ambient_c");
}

value to_json(const soc::resident_load& load) {
  value obj{util::json::object{}};
  obj.push_member("name", load.name);
  obj.push_member("interconnect_gbps", load.interconnect_gbps);
  obj.push_member("dram_gbps", load.dram_gbps);
  obj.push_member("power_w", load.power_w);
  obj.push_member("shared_memory_bytes", load.shared_memory_bytes);
  util::json::array units;
  for (const std::size_t u : load.reserved_units) units.push_back(value{u});
  obj.push_member("reserved_units", value{std::move(units)});
  return obj;
}

void from_json(const value& v, soc::resident_load& out, const std::string& path) {
  object_reader r{v, path};
  r.get("name", out.name);
  r.get("interconnect_gbps", out.interconnect_gbps);
  r.get("dram_gbps", out.dram_gbps);
  r.get("power_w", out.power_w);
  r.get("shared_memory_bytes", out.shared_memory_bytes);
  if (const value* units = r.take("reserved_units")) {
    const std::string upath = r.member_path("reserved_units");
    if (!units->is_array()) fail(upath, "expected an array of CU indices");
    out.reserved_units.clear();
    for (std::size_t i = 0; i < units->as_array().size(); ++i) {
      const std::string epath = upath + "[" + std::to_string(i) + "]";
      const value& e = units->as_array()[i];
      if (!e.is_number() || e.as_number() < 0.0 || e.as_number() != std::floor(e.as_number()))
        fail(epath, "expected a non-negative integer");
      out.reserved_units.push_back(static_cast<std::size_t>(e.as_number()));
    }
  }
  r.finish();
  validate(out, path);
}

void validate(const soc::resident_load& load, const std::string& path) {
  if (load.name.empty()) fail(join(path, "name"), "must not be empty");
  const std::pair<const char*, double> fields[] = {
      {"interconnect_gbps", load.interconnect_gbps},
      {"dram_gbps", load.dram_gbps},
      {"power_w", load.power_w},
      {"shared_memory_bytes", load.shared_memory_bytes},
  };
  for (const auto& [key, val] : fields)
    if (!std::isfinite(val) || val < 0.0)
      fail(join(path, key), "must be finite and non-negative");
}

value to_json(const soc::contention_context& ctx) {
  value obj{util::json::object{}};
  util::json::array residents;
  for (const soc::resident_load& r : ctx.residents) residents.push_back(to_json(r));
  obj.push_member("residents", value{std::move(residents)});
  util::json::array cap;
  for (const std::size_t level : ctx.dvfs_cap) cap.push_back(value{level});
  obj.push_member("dvfs_cap", value{std::move(cap)});
  obj.push_member("thermal", ctx.thermal ? to_json(*ctx.thermal) : value{});
  obj.push_member("interconnect_alpha", ctx.interconnect_alpha);
  obj.push_member("dram_alpha", ctx.dram_alpha);
  obj.push_member("dram_energy_beta", ctx.dram_energy_beta);
  return obj;
}

void from_json(const value& v, soc::contention_context& out, const std::string& path) {
  object_reader r{v, path};
  if (const value* res = r.take("residents")) {
    const std::string rpath = r.member_path("residents");
    if (!res->is_array()) fail(rpath, "expected an array of resident loads");
    out.residents.clear();
    for (std::size_t i = 0; i < res->as_array().size(); ++i) {
      soc::resident_load load;
      from_json(res->as_array()[i], load, rpath + "[" + std::to_string(i) + "]");
      out.residents.push_back(std::move(load));
    }
  }
  if (const value* cap = r.take("dvfs_cap")) {
    const std::string cpath = r.member_path("dvfs_cap");
    if (!cap->is_array()) fail(cpath, "expected an array of DVFS levels");
    out.dvfs_cap.clear();
    for (std::size_t i = 0; i < cap->as_array().size(); ++i) {
      const std::string epath = cpath + "[" + std::to_string(i) + "]";
      const value& e = cap->as_array()[i];
      if (!e.is_number() || e.as_number() < 0.0 || e.as_number() != std::floor(e.as_number()))
        fail(epath, "expected a non-negative integer");
      out.dvfs_cap.push_back(static_cast<std::size_t>(e.as_number()));
    }
  }
  if (const value* thermal = r.take("thermal")) {
    if (thermal->is_null()) {
      out.thermal.reset();
    } else {
      soc::thermal_model model;
      from_json(*thermal, model, r.member_path("thermal"));
      out.thermal = model;
    }
  }
  r.get("interconnect_alpha", out.interconnect_alpha);
  r.get("dram_alpha", out.dram_alpha);
  r.get("dram_energy_beta", out.dram_energy_beta);
  r.finish();
  validate(out, path);
}

void validate(const soc::contention_context& ctx, const std::string& path) {
  std::vector<std::string> seen;
  for (std::size_t i = 0; i < ctx.residents.size(); ++i) {
    const std::string rpath = join(path, "residents") + "[" + std::to_string(i) + "]";
    validate(ctx.residents[i], rpath);
    if (std::find(seen.begin(), seen.end(), ctx.residents[i].name) != seen.end())
      fail(rpath + ".name", "duplicate resident name \"" + ctx.residents[i].name + "\"");
    seen.push_back(ctx.residents[i].name);
  }
  const std::pair<const char*, double> coeffs[] = {
      {"interconnect_alpha", ctx.interconnect_alpha},
      {"dram_alpha", ctx.dram_alpha},
      {"dram_energy_beta", ctx.dram_energy_beta},
  };
  for (const auto& [key, val] : coeffs)
    if (!std::isfinite(val) || val < 0.0)
      fail(join(path, key), "must be finite and non-negative");
  if (ctx.thermal) validate(*ctx.thermal, join(path, "thermal"));
}

value to_json(const service_config& cfg) {
  value obj{util::json::object{}};
  push_service_fields(obj, cfg.service);
  obj.push_member("group", to_json(cfg.group));
  obj.push_member("ga", to_json(cfg.ga));
  obj.push_member("scenario", to_json(cfg.scenario));
  return obj;
}

void from_json(const value& v, service_config& out, const std::string& path) {
  object_reader r{v, path};
  read_service_fields(r, out.service);
  if (const value* g = r.take("group")) from_json(*g, out.group, r.member_path("group"));
  if (const value* ga = r.take("ga")) from_json(*ga, out.ga, r.member_path("ga"));
  if (const value* scen = r.take("scenario"))
    from_json(*scen, out.scenario, r.member_path("scenario"));
  r.finish();
  validate(out, path);
}

void validate(const service_config& cfg, const std::string& path) {
  if (cfg.service.workers == 0) fail(join(path, "workers"), "must be at least 1");
  validate(cfg.service.engine, join(path, "engine"));
  validate(cfg.service.scheduler, join(path, "scheduler"));
  validate(cfg.service.refresh, join(path, "refresh"));
  validate(cfg.service.snapshot, join(path, "snapshot"));
  validate(cfg.group, join(path, "group"));
  validate(cfg.ga, join(path, "ga"));
  validate(cfg.scenario, join(path, "scenario"));
}

// ------------------------------------------------------------- top level --

service_config parse_config(std::string_view text) {
  value doc;
  try {
    doc = util::json::parse(text);
  } catch (const util::json::parse_error& e) {
    throw config_error("<json>", e.what());
  }
  service_config cfg;
  from_json(doc, cfg);
  return cfg;
}

service_config load_config(const std::string& file_path) {
  std::ifstream in{file_path};
  if (!in) throw std::runtime_error("load_config: cannot open " + file_path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse_config(buf.str());
}

std::string dump_config(const service_config& cfg, int indent) {
  std::string text = util::json::dump(to_json(cfg), indent);
  if (indent > 0) text += '\n';
  return text;
}

void save_config(const service_config& cfg, const std::string& file_path) {
  std::ofstream out{file_path};
  if (!out) throw std::runtime_error("save_config: cannot open " + file_path);
  out << dump_config(cfg);
  if (!out) throw std::runtime_error("save_config: write failed for " + file_path);
}

void apply_override(service_config& cfg, std::string_view assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos || eq == 0)
    fail("<override>", "expected dotted.key=value, got \"" + std::string(assignment) + "\"");
  const std::string_view key_path = assignment.substr(0, eq);
  const std::string_view value_text = assignment.substr(eq + 1);

  // Parse the right-hand side as a JSON scalar; bare words ("lru",
  // "reject") fall back to strings so enum values need no shell quoting.
  value rhs;
  try {
    rhs = util::json::parse(value_text);
  } catch (const util::json::parse_error&) {
    rhs = value{std::string(value_text)};
  }

  // Route the edit through the full JSON round-trip so unknown keys and
  // range checks produce the same config_error a file would.
  value doc = to_json(cfg);
  value* cursor = &doc;
  std::string walked;
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = key_path.find('.', start);
    const std::string_view segment =
        key_path.substr(start, dot == std::string_view::npos ? dot : dot - start);
    if (segment.empty()) fail(std::string(key_path), "empty key segment");
    if (!cursor->is_object() && !cursor->is_null())
      fail(walked, "is a scalar, not a config block");
    walked = join(walked, segment);
    cursor = &cursor->at_or_insert(segment);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  *cursor = std::move(rhs);

  service_config updated;
  from_json(doc, updated);
  cfg = std::move(updated);
}

}  // namespace mapcq::serving
