#pragma once
// One immutable serving session: the binding of (network, platform,
// evaluator options, ranking seed) to long-lived evaluator/engine state, so
// the memo cache persists across search, validation and repeated requests
// -- the cross-phase/cross-run reuse the one-shot optimizer facade threw
// away by rebuilding engines per phase.
//
// A session owns a *paired* engine set over one shared cache policy:
//   * the analytic engine serves validation and analytic searches, which is
//     exactly what turns search -> validation into cache hits when the
//     search already ran on the analytic model;
//   * the surrogate engine (lazily trained on first use) serves surrogate
//     searches, so repeated requests skip both GBT training and re-runs.
// Sessions are immutable once created: the key never changes and the first
// surrogate request locks the training knobs in.
//
// Ownership: a session copies nothing per-request — it shares the
// registered network/platform snapshots with the service (shared_ptr) and
// owns its evaluators, engines and trained predictor outright. Sessions are
// handed out as shared_ptr, so one evicted from the service registry (LRU
// cap or idle TTL) keeps serving whoever still holds it.
//
// Thread-safety: every member is safe to call concurrently. The engines do
// their own striped locking (and cross-thread in-flight dedup, so racing
// requests never evaluate a candidate twice); the lazy surrogate state is
// guarded by `surrogate_mu_` — concurrent first-callers block until the one
// training run finishes.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/search_space.h"
#include "nn/graph.h"
#include "serving/session_snapshot.h"
#include "soc/platform.h"
#include "surrogate/dataset.h"
#include "surrogate/gbt.h"
#include "surrogate/predictor.h"
#include "surrogate/refresh.h"

namespace mapcq::serving {

class mapping_session {
 public:
  /// `eval_opt.predictor` is ignored (forced null); the session installs its
  /// own predictor into the surrogate evaluator. `refresh_opt.enabled`
  /// turns on the online surrogate-refresh pipeline for this session (see
  /// surrogate::refresh_pipeline); disabled, the session behaves exactly
  /// as before the pipeline existed.
  mapping_session(std::string key, std::shared_ptr<const nn::network> net,
                  std::shared_ptr<const soc::platform> plat, core::evaluator_options eval_opt,
                  int ratio_levels, std::uint64_t ranking_seed, core::engine_options engine_opt,
                  surrogate::refresh_options refresh_opt = {});

  /// Quiesces the ground-truth tap and drains any in-flight refit before
  /// the engines and predictors tear down.
  ~mapping_session();

  mapping_session(const mapping_session&) = delete;
  mapping_session& operator=(const mapping_session&) = delete;

  [[nodiscard]] const std::string& key() const noexcept { return key_; }
  [[nodiscard]] const nn::network& net() const noexcept { return *net_; }
  [[nodiscard]] const soc::platform& plat() const noexcept { return *plat_; }
  [[nodiscard]] const core::search_space& space() const noexcept { return space_; }
  [[nodiscard]] std::uint64_t ranking_seed() const noexcept { return ranking_seed_; }

  /// The analytic ("hardware") engine. Never blocks; the reference stays
  /// valid for the session's lifetime.
  [[nodiscard]] core::evaluation_engine& analytic_engine() noexcept { return analytic_engine_; }

  /// The surrogate engine. The first caller blocks through benchmark
  /// generation and GBT training with `bench`/`gbt` (thread-safe;
  /// concurrent first-callers block on the one training run); later callers
  /// must pass the same knobs or get std::invalid_argument — sessions are
  /// immutable, fork one via the evaluator options or ranking seed instead.
  /// `trained_now` (optional out) reports whether this call trained it.
  [[nodiscard]] core::evaluation_engine& surrogate_engine(
      const surrogate::benchmark_options& bench, const surrogate::gbt_params& gbt,
      bool* trained_now = nullptr);

  [[nodiscard]] bool surrogate_trained() const;
  /// Held-out fidelity of the *initial* session GBT (the refresh pipeline
  /// reports promoted models through `refresh_stats`); nullopt until
  /// trained.
  [[nodiscard]] std::optional<surrogate::hw_predictor::fidelity> surrogate_fidelity() const;

  /// Refresh-pipeline counters; nullopt while no pipeline exists (refresh
  /// disabled, or the surrogate has not been trained yet).
  [[nodiscard]] std::optional<surrogate::refresh_stats> refresh_stats() const;
  /// Forces one refresh attempt now (deterministic driver for tests and
  /// benches); false when no pipeline exists or the log is empty, else
  /// whether a candidate was promoted.
  bool refresh_now();

  /// Whole-lifetime counters across every request served by this session.
  [[nodiscard]] core::engine_stats analytic_cache_stats() const noexcept {
    return analytic_engine_.stats();
  }
  [[nodiscard]] core::engine_stats surrogate_cache_stats() const;

  /// Captures the session's warm state — both memo caches' current-epoch
  /// entries, the fitted GBT ensembles (when trained) and the refresh
  /// reservoir (when enabled) — as a `session_snapshot` (see
  /// serving/session_snapshot.h). The predictor, its engine epoch and its
  /// cache entries are captured under one lock acquisition (the same mutex
  /// a refresh promotion takes), so a snapshot racing a promotion always
  /// sees a consistent (model, epoch, entries) triple. Non-const: the
  /// reservoir export drains any in-flight background refit first.
  ///
  /// Blocking: through an in-flight refit (refresh sessions) and through
  /// surrogate training if a first-caller holds the lock.
  [[nodiscard]] session_snapshot snapshot();

  /// Warm-starts this session from a snapshot taken by `snapshot()`:
  /// imports both caches, adopts the fitted ensembles without retraining
  /// (predictions bit-identical to the snapshotted model), and resumes the
  /// refresh reservoir. Only valid on a *fresh* session — same key, no
  /// surrogate trained, no traffic served; throws snapshot_error on a key
  /// mismatch and std::logic_error on a non-fresh session. The surrogate
  /// engine restarts at cache epoch 0 with the snapshot's epoch-N model as
  /// its base; refresh attempt/promotion counters restart with the
  /// pipeline (reservoir retention probabilities are preserved — see
  /// surrogate::training_log::restore).
  ///
  /// A snapshot whose refresh state is absent leaves a refresh-enabled
  /// session without a pipeline (it cannot be rebuilt without the original
  /// training slice); the session still serves, it just never refreshes.
  void restore(const session_snapshot& snap);

 private:
  /// Refresh promotion target: retires the current predictor/evaluator
  /// (kept alive for in-flight batches), binds a fresh surrogate evaluator
  /// to `next` and advances the surrogate engine's cache epoch.
  void promote(std::shared_ptr<const surrogate::hw_predictor> next);
  /// restore() body under surrogate_mu_; returns whether the caller must
  /// install the ground-truth tap (outside the lock — the tap's promotion
  /// path re-takes surrogate_mu_ while holding the engine's tap lock, so
  /// registering under surrogate_mu_ would invert the lock order).
  bool restore_locked(const session_snapshot& snap);
  /// Expands one analytically evaluated configuration into per-sublayer
  /// (features, latency, energy) ground-truth rows for the refresh log.
  [[nodiscard]] surrogate::dataset ground_truth_rows(const core::configuration& config) const;

  std::string key_;
  std::shared_ptr<const nn::network> net_;
  std::shared_ptr<const soc::platform> plat_;
  core::evaluator_options eval_opt_;  ///< predictor forced to nullptr
  std::uint64_t ranking_seed_;
  core::engine_options engine_opt_;
  surrogate::refresh_options refresh_opt_;
  core::search_space space_;
  core::evaluator analytic_eval_;
  core::evaluation_engine analytic_engine_;

  mutable std::mutex surrogate_mu_;  ///< guards the lazy surrogate members
  surrogate::benchmark_options bench_;
  surrogate::gbt_params gbt_;
  std::shared_ptr<const surrogate::hw_predictor> predictor_;
  std::optional<surrogate::hw_predictor::fidelity> fidelity_;
  // Retired predictor generations and their evaluators outlive promotion:
  // batches planned before an epoch swap finish on the old model. Declared
  // before the engine so they are destroyed after it drains. Memory grows
  // linearly with promotion count — acceptable because promotions are
  // gated on genuine held-out improvement (drift events, not a steady
  // drip); letting engine epoch_states share ownership so a generation
  // dies with its last in-flight batch is the queued refinement (ROADMAP).
  std::vector<std::shared_ptr<const surrogate::hw_predictor>> retired_predictors_;
  std::vector<std::unique_ptr<core::evaluator>> retired_evals_;
  std::unique_ptr<core::evaluator> surrogate_eval_;
  std::unique_ptr<core::evaluation_engine> surrogate_engine_;
  /// Declared last: destroyed first, draining any in-flight refit while
  /// the predictors/evaluators/engines above are still alive. Created at
  /// most once (first surrogate training), before the tap is installed,
  /// and never reassigned — so the tap may use it without surrogate_mu_.
  std::unique_ptr<surrogate::refresh_pipeline> refresh_;
};

}  // namespace mapcq::serving
