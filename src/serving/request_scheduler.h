#pragma once
// Service-level admission control and cross-request batching — the layer
// between `mapping_service::submit()` and the workers that actually run
// `map()` (ROADMAP: "service-level admission/batching for many concurrent
// submit() streams"). Run-time mapping systems treat mapping as a
// *scheduled, contended service*: under many concurrent clients the raw
// thread-pool hand-off of PR 2 had no backpressure, no fairness across
// sessions and re-ran duplicate requests side by side. The scheduler adds:
//
//   * a bounded admission queue (`scheduler_options::max_queued`) with
//     reject-or-block semantics (`admission_policy`), rejections surfaced
//     as a typed `admission_error` through the returned future;
//   * weighted round-robin fairness across session lanes
//     (`util::wrr_queue`), so one chatty client cannot starve others, plus
//     an optional per-session in-flight cap;
//   * request coalescing: a submit identical (same session lane + same
//     `request_fingerprint`) to a queued or in-flight request joins its
//     `shared_future` instead of enqueuing — the service-level extension of
//     the engine's in-flight dedup;
//   * priority lanes and queued-deadline expiry (`mapping_request::
//     {priority, deadline}`), dropped work counted in `scheduler_stats`;
//   * a `scheduler_stats` snapshot stamped into every report it produces.
//
// Ownership: the scheduler owns its worker threads and every queued
// request; the executor callback (and whatever it captures, e.g. the
// mapping_service) must outlive the scheduler. Results are shared: any
// number of copies of the returned `shared_future` stay valid after the
// scheduler is destroyed.
//
// Thread-safety: every public member may be called from any thread.
//
// Blocking: `submit` returns without waiting for execution, except under
// `admission_policy::block` with a full queue, where it blocks the caller
// until space frees (backpressure) or the scheduler shuts down. The
// destructor fails all still-queued requests with
// `admission_error::reason::shutdown`, then joins the workers — i.e. it
// blocks for at most the requests already executing.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serving/mapping_types.h"
#include "util/wrr_queue.h"

namespace mapcq::serving {

/// What `submit` does when the admission queue is at `max_queued`.
enum class admission_policy {
  block,  ///< backpressure: the submitting thread waits for queue space
  reject  ///< fail fast: the returned future throws admission_error
};

/// Typed admission failure, delivered through the request's future (never
/// thrown synchronously from submit, so callers handle one error channel).
class admission_error : public std::runtime_error {
 public:
  enum class reason {
    queue_full,        ///< rejected at admission under admission_policy::reject
    deadline_expired,  ///< spent longer queued than mapping_request::deadline
    shutdown           ///< scheduler destroyed while the request was queued
  };

  admission_error(reason r, const std::string& what) : std::runtime_error(what), reason_(r) {}
  [[nodiscard]] reason why() const noexcept { return reason_; }

 private:
  reason reason_;
};

/// Scheduler tuning knobs (service-wide; per-request knobs live on
/// mapping_request::{priority, deadline}).
struct scheduler_options {
  /// Max requests waiting for a worker; 0 = unbounded. Coalesced joins
  /// never count against the bound (they add no work).
  std::size_t max_queued = 0;
  /// Max requests of one session lane executing concurrently; 0 =
  /// unbounded. Requests over the cap stay queued (they are not rejected)
  /// while other sessions' work proceeds around them.
  std::size_t max_inflight_per_session = 0;
  admission_policy policy = admission_policy::block;
  /// Join identical queued/in-flight requests instead of re-running them.
  /// Disable to force every submit into its own execution (the engine's
  /// in-flight dedup still prevents duplicate *evaluator* work).
  bool coalesce = true;
  /// Per-visit dispatch budget of a session lane in the round-robin
  /// rotation (>= 1); `weights` overrides it per session key.
  std::size_t default_weight = 1;
  std::unordered_map<std::string, std::size_t> weights;
  /// Cross-request batch fusion: after a worker wins a pick, it drains up
  /// to `max_fused - 1` more *distinct* queued requests of the same session
  /// lane (and priority class) and dispatches the whole group at once
  /// through the fused executor, so the shared session's engine amortizes
  /// evaluation across requests. 1 disables fusion (the default — serial
  /// dispatch, exactly the pre-fusion behavior); 0 fuses without bound.
  /// Followers ride the lead's WRR grant (they consume no lane credits)
  /// and still respect `max_inflight_per_session`; expired followers are
  /// dropped individually while draining. Reports are bit-identical to
  /// serial dispatch (pure evaluations + seed-deterministic search; pinned
  /// by tests/test_batch_evaluator.cpp), only the stamped fused counters
  /// differ.
  std::size_t max_fused = 1;
};

/// The admission/fairness/coalescing layer (see file comment). Generic over
/// its executor so tests can drive it with a stub; `mapping_service` passes
/// a callback into `map()`.
class request_scheduler {
 public:
  using executor = std::function<mapping_report(const mapping_request&)>;
  /// Runs a fused dispatch group (scheduler_options::max_fused) in one
  /// call. Must return exactly one outcome per request, index-aligned; a
  /// throw (or a wrong-sized return) fails the whole group. Per-request
  /// failures should be isolated by returning them as `fused_outcome::
  /// error` instead.
  using fused_executor =
      std::function<std::vector<fused_outcome>(std::span<const mapping_request>)>;

  /// Spawns `workers` dispatch threads (at least one) that pull admitted
  /// requests in priority + weighted-round-robin order and run `run`.
  request_scheduler(scheduler_options opt, std::size_t workers, executor run);

  /// Same, with a fused executor for dispatch groups of size >= 2 (only
  /// reached when `opt.max_fused != 1`). Without one, fused groups fall
  /// back to running `run` per member back to back — still one dispatch,
  /// still counted in `fused`/`fused_batches`, with per-member error
  /// isolation.
  request_scheduler(scheduler_options opt, std::size_t workers, executor run,
                    fused_executor run_fused);

  /// Fails queued requests with admission_error(shutdown), wakes blocked
  /// submitters, and joins the workers (waits for executing requests only).
  ~request_scheduler();

  request_scheduler(const request_scheduler&) = delete;
  request_scheduler& operator=(const request_scheduler&) = delete;

  /// Admits one request (see class comment for the full protocol). `lane`
  /// groups requests for fairness and the per-session in-flight cap —
  /// `mapping_service` passes the session key the request resolves to.
  /// `fingerprint` is the coalescing identity (`request_fingerprint`); an
  /// empty fingerprint opts this request out of coalescing.
  [[nodiscard]] std::shared_future<mapping_report> submit(const std::string& lane,
                                                          const std::string& fingerprint,
                                                          mapping_request req);

  /// Stops dispatching new work; items already executing run to
  /// completion. Submissions are still admitted and coalesced while
  /// paused — which is what makes paused bulk submission deterministic:
  /// every duplicate joins its queued representative before any of them
  /// can start executing (see serving/request_trace.h, synchronous
  /// replay). Queued deadlines keep ticking while paused.
  void pause();
  /// Resumes dispatch after pause(). Idempotent.
  void resume();

  /// Counter/gauge snapshot (cheap: one lock, one map copy).
  [[nodiscard]] scheduler_stats stats() const;

  /// Blocks until nothing is queued or executing. Counters then reconcile
  /// exactly: admitted == completed + failed + expired.
  void wait_idle() const;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_.size(); }

 private:
  struct work_item {
    mapping_request req;
    std::string lane;
    std::string fingerprint;
    std::promise<mapping_report> promise;
    std::shared_future<mapping_report> future;
    /// Latest deadline of the original submit and every coalesced join;
    /// time_point::max() = none. Checked when a worker picks the item.
    std::chrono::steady_clock::time_point expiry;
  };
  using item_ptr = std::shared_ptr<work_item>;

  void worker_loop();
  /// Highest-priority eligible item in WRR order; null when none. Caller
  /// holds `mu_`.
  [[nodiscard]] item_ptr pick_next_locked();
  /// Drains up to `max_fused - 1` same-lane followers of `lead` from its
  /// priority queue (expiring stale ones on the way) and bumps the fused
  /// counters when the group ends up larger than one. Caller holds `mu_`.
  [[nodiscard]] std::vector<item_ptr> fuse_group_locked(item_ptr lead);
  /// Deadline-expires one dequeued item: counter, pending_ erase, typed
  /// exception on the promise. Caller holds `mu_`.
  void expire_item_locked(const item_ptr& item);
  [[nodiscard]] scheduler_stats stats_locked() const;

  scheduler_options opt_;
  executor run_;
  fused_executor run_fused_;  ///< may be null: fused groups then loop `run_`

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< workers wait for pickable items
  std::condition_variable cv_space_;  ///< blocked submitters wait for queue space
  mutable std::condition_variable cv_idle_;
  bool stopping_ = false;
  bool paused_ = false;  ///< workers idle (admission continues) until resume()

  /// Priority lanes, highest served first; each holds a WRR rotation over
  /// session lanes. Node-based on purpose: wrr_queue is not movable.
  std::map<int, util::wrr_queue<item_ptr>, std::greater<int>> queues_;
  std::size_t queued_count_ = 0;
  /// Coalescing index over queued *and* executing items, erased on
  /// completion/expiry. Keyed by lane + '\n' + fingerprint.
  std::unordered_map<std::string, item_ptr> pending_;
  std::unordered_map<std::string, std::size_t> inflight_per_lane_;
  std::size_t inflight_count_ = 0;

  scheduler_stats counters_;  ///< monotonic fields only; gauges derived

  std::vector<std::thread> workers_;
};

}  // namespace mapcq::serving
