#include "serving/mapping_service.h"

#include <algorithm>

#include "serving/request_trace.h"
#include "serving/service_config.h"
#include "serving/session_snapshot.h"
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace mapcq::serving {

namespace {

/// Ours-L / Ours-E selection (Table II): cheapest pick whose accuracy stays
/// within `slack` points of the best validated accuracy. The slack never
/// excludes everything: the max-accuracy entry always qualifies.
template <typename Metric>
std::size_t pick_within_slack(const std::vector<core::evaluation>& front, double slack,
                              Metric metric) {
  double best_acc = 0.0;
  for (const auto& e : front) best_acc = std::max(best_acc, e.accuracy_pct);
  std::size_t best = front.size();
  double best_v = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < front.size(); ++i) {
    const auto& e = front[i];
    if (e.accuracy_pct < best_acc - slack) continue;
    const double v = metric(e);
    if (v < best_v) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

/// Candidate pre-filter over the session's surrogate engine: predicted
/// evaluations are memoized like any surrogate search traffic, so filter
/// scoring warms the same cache a surrogate-backed search would use.
class surrogate_prefilter final : public core::candidate_prefilter {
 public:
  explicit surrogate_prefilter(core::evaluation_engine& engine) : engine_(engine) {}
  [[nodiscard]] std::vector<core::evaluation> score(
      const std::vector<core::configuration>& configs) override {
    return engine_.evaluate_batch(configs);
  }

 private:
  core::evaluation_engine& engine_;
};

}  // namespace

mapping_service::mapping_service(service_options opt) : opt_(opt) {
  if (opt_.engine.threads == 0)
    opt_.engine.threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (opt_.workers == 0) opt_.workers = 1;
}

void mapping_service::register_network(const nn::network& net) {
  if (net.name.empty())
    throw std::invalid_argument("mapping_service: cannot register a nameless network");
  const std::lock_guard<std::mutex> lock{mu_};
  networks_[net.name] = std::make_shared<const nn::network>(net);
  ++network_generations_[net.name];
}

void mapping_service::register_platform(const soc::platform& plat) {
  if (plat.name.empty())
    throw std::invalid_argument("mapping_service: cannot register a nameless platform");
  const std::lock_guard<std::mutex> lock{mu_};
  platforms_[plat.name] = std::make_shared<const soc::platform>(plat);
  ++platform_generations_[plat.name];
  if (default_platform_.empty()) default_platform_ = plat.name;
}

std::string mapping_service::session_key(const mapping_request& req,
                                         const std::string& platform_name,
                                         std::uint64_t network_generation,
                                         std::uint64_t platform_generation) const {
  // Every knob that changes what an evaluator computes takes part in the
  // key; GA and surrogate-training knobs do not (GA budgets are
  // per-request, the surrogate is locked in by the session's first trainer).
  // Registration generations ensure a re-registered network/platform stops
  // matching sessions built against the previous snapshot.
  std::ostringstream os;
  os.precision(17);
  const core::evaluator_options& e = req.eval;
  os << "net=" << req.network << "@" << network_generation << "|plat=" << platform_name << "@"
     << platform_generation << "|rank=" << std::hex << req.ranking_seed << std::dec
     << "|ratios=" << req.ratio_levels << "|pop=" << e.population
     << "|reorder=" << e.reorder << "|exits=" << e.dynamic_exits << "|idle=" << e.count_idle_power
     << "|contention=" << e.model.enable_contention << ":" << e.model.bandwidth_contention
     << "|lat=" << e.limits.latency_target_ms << "|en=" << e.limits.energy_target_mj
     << "|reuse=" << e.limits.fmap_reuse_cap;
  os << "|thermal=";
  if (e.thermal) {
    os << e.thermal->ambient_c << "," << e.thermal->r_thermal_c_per_w << "," << e.thermal->tau_s
       << "," << e.thermal->throttle_c;
  } else {
    os << "none";
  }
  // Co-location scenario: every field of the contention context changes the
  // evaluator, so it all keys. Appended only when non-idle, keeping idle
  // keys — and the snapshot filenames hashed from them — byte-identical to
  // pre-co-location deployments (warm restores keep working across the
  // upgrade).
  if (!e.contention.idle()) os << "|scen=" << soc::scenario_key(e.contention);
  return os.str();
}

void mapping_service::spill_session_locked(const std::shared_ptr<mapping_session>& session) {
  if (!opt_.snapshot.spill_on_evict || opt_.snapshot.directory.empty()) return;
  try {
    save_snapshot(opt_.snapshot.directory + "/" + snapshot_filename(session->key()),
                  session->snapshot());
    ++sessions_spilled_;
  } catch (...) {
    // Spilling is best-effort: the eviction itself must never fail on a
    // full disk or an unwritable directory.
    ++spill_failures_;
  }
}

void mapping_service::maybe_restore_locked(const std::string& key, mapping_session& session) {
  if (!opt_.snapshot.restore_on_miss || opt_.snapshot.directory.empty()) return;
  const std::string path = opt_.snapshot.directory + "/" + snapshot_filename(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return;
  try {
    session.restore(load_snapshot(path));
    ++sessions_restored_;
  } catch (...) {
    // A corrupt, truncated or key-mismatched snapshot (hash collision)
    // must never fail the request: the fresh session simply starts cold.
    ++restore_failures_;
  }
}

void mapping_service::prune_expired_locked(std::chrono::steady_clock::time_point now) {
  if (opt_.session_ttl.count() <= 0) return;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    // A session referenced outside the registry is serving a request right
    // now — it is not idle, whatever its stamp says (the stamp only
    // refreshes when a request resolves or completes). Skipping it keeps
    // the "a long search cannot expire its own session" guarantee against
    // concurrent pruners as well.
    const bool busy = it->second.session.use_count() > 1;
    if (!busy && now - it->second.last_used > opt_.session_ttl) {
      spill_session_locked(it->second.session);
      it = sessions_.erase(it);
      ++sessions_evicted_;
    } else {
      ++it;
    }
  }
}

void mapping_service::enforce_capacity_locked(const std::string& keep) {
  if (opt_.max_sessions == 0) return;
  while (sessions_.size() > opt_.max_sessions) {
    // LRU victim, preferring sessions no request currently holds; if every
    // other session is busy the cap still wins (holders keep theirs alive
    // via their shared_ptr, only the registry entry is dropped).
    auto victim = sessions_.end();
    bool victim_busy = true;
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->first == keep) continue;  // never evict the session being handed out
      const bool busy = it->second.session.use_count() > 1;
      const bool better = victim == sessions_.end() || (victim_busy && !busy) ||
                          (victim_busy == busy && it->second.last_used < victim->second.last_used);
      if (better) {
        victim = it;
        victim_busy = busy;
      }
    }
    if (victim == sessions_.end()) return;  // only `keep` remains
    spill_session_locked(victim->second.session);
    sessions_.erase(victim);
    ++sessions_evicted_;
  }
}

std::shared_ptr<mapping_session> mapping_service::session_for(const mapping_request& req) {
  if (req.eval.predictor != nullptr)
    throw std::invalid_argument(
        "mapping_service: request.eval.predictor must be null (sessions own their predictors)");
  const std::lock_guard<std::mutex> lock{mu_};
  const auto net_it = networks_.find(req.network);
  if (net_it == networks_.end())
    throw std::invalid_argument("mapping_service: unregistered network '" + req.network + "'");
  const std::string plat_name = req.platform.empty() ? default_platform_ : req.platform;
  const auto plat_it = platforms_.find(plat_name);
  if (plat_it == platforms_.end())
    throw std::invalid_argument("mapping_service: unregistered platform '" + plat_name + "'");

  const std::string key =
      session_key(req, plat_name, network_generations_.at(req.network),
                  platform_generations_.at(plat_name));
  const auto now = std::chrono::steady_clock::now();
  prune_expired_locked(now);
  const auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    it->second.last_used = now;
    return it->second.session;
  }
  auto session = std::make_shared<mapping_session>(key, net_it->second, plat_it->second, req.eval,
                                                   req.ratio_levels, req.ranking_seed, opt_.engine,
                                                   opt_.refresh);
  maybe_restore_locked(key, *session);
  sessions_.emplace(key, session_entry{session, now});
  enforce_capacity_locked(key);
  return session;
}

mapping_report mapping_service::map(const mapping_request& req) {
  const std::shared_ptr<mapping_session> session = session_for(req);

  mapping_report rep;
  rep.network = req.network;
  rep.platform = session->plat().name;
  rep.session_key = session->key();
  rep.orientation = req.orientation;
  // The exact config this report was produced under: the (normalized)
  // service options plus the request's GA knobs. Compact form — one line
  // inside the report, still parse_config-able.
  // Deliberately the default group: reports must stay bit-identical no
  // matter which shard topology served them.
  rep.effective_config = dump_config(service_config{opt_, {}, req.ga, req.eval.contention}, 0);

  // Stamp the co-location scenario the evaluator scored under (non-idle
  // contexts only: idle reports stay byte-identical to legacy ones).
  const soc::contention_context& scen = req.eval.contention;
  if (!scen.idle()) {
    core::scenario_note note;
    note.residents = scen.residents.size();
    for (const soc::resident_load& r : scen.residents) {
      note.reserved_units += r.reserved_units.size();
      note.resident_interconnect_gbps += r.interconnect_gbps;
      note.resident_dram_gbps += r.dram_gbps;
      note.resident_power_w += r.power_w;
    }
    const soc::platform& plat = session->plat();
    for (std::size_t u = 0; u < scen.dvfs_cap.size() && u < plat.size(); ++u)
      if (scen.dvfs_cap[u] < plat.unit(u).dvfs.max_level()) ++note.dvfs_capped_units;
    if (scen.thermal) {
      note.ambient_c = scen.thermal->ambient_c;
      note.throttle_c = scen.thermal->throttle_c;
    }
    rep.scenario = note;
  }

  // --- search, on the session engine matching the requested predictor -----
  core::evaluation_engine* search_engine = &session->analytic_engine();
  if (req.use_surrogate) {
    bool trained_now = false;
    search_engine = &session->surrogate_engine(req.bench, req.gbt, &trained_now);
    rep.trained_surrogate = trained_now;
    rep.surrogate_fidelity = session->surrogate_fidelity();
  }
  // Surrogate-guided pre-filtering gates an *analytic* search: scoring a
  // surrogate-backed search with the same surrogate would filter nothing.
  std::unique_ptr<surrogate_prefilter> prefilter;
  if (req.ga.portfolio.prefilter.enabled) {
    if (req.use_surrogate)
      throw std::invalid_argument(
          "mapping_service: ga.portfolio.prefilter requires an analytic search "
          "(set use_surrogate = false)");
    bool trained_now = false;
    prefilter = std::make_unique<surrogate_prefilter>(
        session->surrogate_engine(req.bench, req.gbt, &trained_now));
    rep.trained_surrogate = trained_now;
    rep.surrogate_fidelity = session->surrogate_fidelity();
  }
  rep.search = core::evolve(session->space(), *search_engine, req.ga, prefilter.get());
  rep.search_cache = rep.search.cache;

  // --- validate the Pareto picks on the analytic model --------------------
  // Always through the session's analytic engine: after an analytic search
  // these are pure cross-phase hits, and across requests each distinct pick
  // costs at most one analytic evaluation per session lifetime.
  core::evaluation_engine& validator = session->analytic_engine();
  const core::engine_stats validation_start = validator.stats();
  std::vector<core::configuration> picks;
  picks.reserve(rep.search.pareto.size());
  for (const std::size_t idx : rep.search.pareto) picks.push_back(rep.search.archive[idx].config);
  rep.front = validator.evaluate_batch(picks);
  rep.validation_cache = validator.stats() - validation_start;
  if (rep.front.empty()) throw std::runtime_error("mapping_service: empty Pareto set");
  // Snapshot after validation so the report sees any refresh the request's
  // own ground-truth traffic just triggered (nullopt unless the session
  // runs a pipeline).
  rep.refresh = session->refresh_stats();

  rep.ours_energy_index = pick_within_slack(
      rep.front, req.ours_e_accuracy_slack,
      [](const core::evaluation& e) { return e.avg_energy_mj; });
  rep.ours_latency_index = pick_within_slack(
      rep.front, req.ours_l_accuracy_slack,
      [](const core::evaluation& e) { return e.avg_latency_ms; });
  // A completed request counts as a use: a search longer than the TTL must
  // not expire the session it just warmed.
  touch_session(session->key());
  return rep;
}

std::vector<fused_outcome> mapping_service::map_fused(std::span<const mapping_request> reqs) {
  std::vector<fused_outcome> outcomes(reqs.size());
  if (reqs.empty()) return outcomes;
  const auto run_one = [this, reqs, &outcomes](std::size_t i) {
    try {
      outcomes[i].report = map(reqs[i]);
    } catch (...) {
      outcomes[i].error = std::current_exception();
    }
  };
  // Concurrent members share the session's engines, so the engine-level
  // in-flight dedup (not just the memo cache) amortizes work across the
  // group. One plain thread per extra member: fused groups are small
  // (scheduler_options::max_fused) and each member runs a full search, so
  // thread spawn cost is noise.
  std::vector<std::thread> others;
  others.reserve(reqs.size() - 1);
  for (std::size_t i = 1; i < reqs.size(); ++i) others.emplace_back(run_one, i);
  run_one(0);
  for (std::thread& t : others) t.join();
  return outcomes;
}

void mapping_service::touch_session(const std::string& key) {
  const std::lock_guard<std::mutex> lock{mu_};
  const auto it = sessions_.find(key);
  if (it != sessions_.end()) it->second.last_used = std::chrono::steady_clock::now();
}

std::string mapping_service::fairness_lane(const mapping_request& req) const {
  const std::lock_guard<std::mutex> lock{mu_};
  const std::string plat_name =
      req.platform.empty() && !default_platform_.empty() ? default_platform_ : req.platform;
  const auto ngen = network_generations_.find(req.network);
  const auto pgen = platform_generations_.find(plat_name);
  return session_key(req, plat_name, ngen == network_generations_.end() ? 0 : ngen->second,
                     pgen == platform_generations_.end() ? 0 : pgen->second);
}

request_scheduler& mapping_service::ensure_scheduler() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (!scheduler_)
    scheduler_ = std::make_unique<request_scheduler>(
        opt_.scheduler, opt_.workers, [this](const mapping_request& r) { return map(r); },
        [this](std::span<const mapping_request> rs) { return map_fused(rs); });
  return *scheduler_;
}

std::shared_future<mapping_report> mapping_service::submit(mapping_request req) {
  request_scheduler& sched = ensure_scheduler();
  // The fairness lane is the session key the request resolves to (computed
  // leniently so a doomed request still gets queued and fails in map(),
  // surfacing its error at future::get() like any other execution error).
  // Lane + fingerprint also form the coalescing identity: identical
  // requests share one execution while one is queued or in flight.
  const std::string lane = fairness_lane(req);
  const std::string fingerprint = request_fingerprint(req);
  // Tap before admission so the capture sees every submit, including ones
  // the scheduler will coalesce or reject — a replay must reproduce the
  // offered load, not the admitted subset.
  std::shared_ptr<trace_log> tap;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    tap = trace_;
  }
  if (tap) tap->record(lane, fingerprint, req.priority, req.deadline);
  return sched.submit(lane, fingerprint, std::move(req));
}

void mapping_service::capture_trace(std::shared_ptr<trace_log> log) {
  const std::lock_guard<std::mutex> lock{mu_};
  trace_ = std::move(log);
}

void mapping_service::pause_scheduler() { ensure_scheduler().pause(); }

void mapping_service::resume_scheduler() { ensure_scheduler().resume(); }

scheduler_stats mapping_service::scheduler() const {
  {
    const std::lock_guard<std::mutex> lock{mu_};
    if (!scheduler_) return {};
  }
  return scheduler_->stats();
}

std::size_t mapping_service::session_count() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return sessions_.size();
}

std::vector<std::string> mapping_service::session_keys() const {
  const std::lock_guard<std::mutex> lock{mu_};
  std::vector<std::string> keys;
  keys.reserve(sessions_.size());
  for (const auto& [key, entry] : sessions_) keys.push_back(key);
  return keys;
}

std::size_t mapping_service::sessions_evicted() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return sessions_evicted_;
}

std::size_t mapping_service::spill_sessions() {
  if (opt_.snapshot.directory.empty()) return 0;
  // Copy the live set out, then snapshot outside `mu_`: a snapshot drains
  // the session's refresh worker, and the registry must stay responsive to
  // concurrent traffic while that happens.
  std::vector<std::shared_ptr<mapping_session>> live;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    live.reserve(sessions_.size());
    for (const auto& [key, entry] : sessions_) live.push_back(entry.session);
  }
  std::size_t spilled = 0;
  std::size_t failed = 0;
  for (const auto& session : live) {
    try {
      save_snapshot(opt_.snapshot.directory + "/" + snapshot_filename(session->key()),
                    session->snapshot());
      ++spilled;
    } catch (...) {
      ++failed;
    }
  }
  const std::lock_guard<std::mutex> lock{mu_};
  sessions_spilled_ += spilled;
  spill_failures_ += failed;
  return spilled;
}

std::size_t mapping_service::sessions_spilled() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return sessions_spilled_;
}

std::size_t mapping_service::spill_failures() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return spill_failures_;
}

std::size_t mapping_service::sessions_restored() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return sessions_restored_;
}

std::size_t mapping_service::restore_failures() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return restore_failures_;
}

core::engine_stats mapping_service::engine_totals() const {
  const std::lock_guard<std::mutex> lock{mu_};
  core::engine_stats total;
  for (const auto& [key, entry] : sessions_) {
    for (const core::engine_stats s :
         {entry.session->analytic_cache_stats(), entry.session->surrogate_cache_stats()}) {
      total.hits += s.hits;
      total.misses += s.misses;
      total.dedup += s.dedup;
      total.inflight += s.inflight;
      total.evictions += s.evictions;
      total.invalidated += s.invalidated;
      total.cache_bytes += s.cache_bytes;
    }
  }
  return total;
}

}  // namespace mapcq::serving
