#include "serving/request_scheduler.h"

#include <utility>

namespace mapcq::serving {

namespace {

[[nodiscard]] std::string pending_key(const std::string& lane, const std::string& fingerprint) {
  // '\n' cannot appear in either part (session keys and fingerprints are
  // single-line), so the concatenation is injective.
  return lane + '\n' + fingerprint;
}

[[nodiscard]] std::shared_future<mapping_report> failed_future(admission_error::reason r,
                                                               const std::string& what) {
  std::promise<mapping_report> p;
  p.set_exception(std::make_exception_ptr(admission_error{r, what}));
  return p.get_future().share();
}

}  // namespace

request_scheduler::request_scheduler(scheduler_options opt, std::size_t workers, executor run)
    : request_scheduler(std::move(opt), workers, std::move(run), nullptr) {}

request_scheduler::request_scheduler(scheduler_options opt, std::size_t workers, executor run,
                                     fused_executor run_fused)
    : opt_(std::move(opt)), run_(std::move(run)), run_fused_(std::move(run_fused)) {
  if (!run_) throw std::invalid_argument("request_scheduler: null executor");
  if (opt_.default_weight == 0) opt_.default_weight = 1;
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) workers_.emplace_back([this] { worker_loop(); });
}

request_scheduler::~request_scheduler() {
  std::vector<item_ptr> orphans;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    stopping_ = true;
    for (auto& [priority, queue] : queues_)
      queue.drain([&](const std::string&, item_ptr& item) { orphans.push_back(std::move(item)); });
    queued_count_ = 0;
    // Executing items keep their pending_ entries; their workers erase them
    // on completion before exiting. Queued entries die with their items.
    for (const item_ptr& item : orphans)
      if (!item->fingerprint.empty()) pending_.erase(pending_key(item->lane, item->fingerprint));
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  cv_idle_.notify_all();
  for (const item_ptr& item : orphans)
    item->promise.set_exception(std::make_exception_ptr(admission_error{
        admission_error::reason::shutdown, "request_scheduler: shut down with request queued"}));
  for (std::thread& w : workers_) w.join();
}

std::shared_future<mapping_report> request_scheduler::submit(const std::string& lane,
                                                             const std::string& fingerprint,
                                                             mapping_request req) {
  const auto now = std::chrono::steady_clock::now();
  const auto expiry = req.deadline.count() > 0
                          ? now + req.deadline
                          : std::chrono::steady_clock::time_point::max();

  std::unique_lock<std::mutex> lock{mu_};
  // `submitted` is bumped together with the outcome counter, never before:
  // a caller blocked on backpressure is not yet counted, so any live
  // snapshot reconciles exactly (submitted == admitted+coalesced+rejected).
  for (;;) {
    if (stopping_) {
      ++counters_.submitted;
      ++counters_.rejected;
      return failed_future(admission_error::reason::shutdown,
                           "request_scheduler: submit after shutdown");
    }
    // Coalesce first — rechecked after every blocking wait, because the
    // identical request may have been admitted while we slept.
    if (opt_.coalesce && !fingerprint.empty()) {
      const auto it = pending_.find(pending_key(lane, fingerprint));
      if (it != pending_.end()) {
        ++counters_.submitted;
        ++counters_.coalesced;
        // Keep the shared run alive until the latest joiner's deadline.
        if (expiry > it->second->expiry) it->second->expiry = expiry;
        return it->second->future;
      }
    }
    if (opt_.max_queued == 0 || queued_count_ < opt_.max_queued) break;
    if (opt_.policy == admission_policy::reject) {
      ++counters_.submitted;
      ++counters_.rejected;
      return failed_future(admission_error::reason::queue_full,
                           "request_scheduler: admission queue full (" +
                               std::to_string(opt_.max_queued) + ")");
    }
    cv_space_.wait(lock);
  }

  auto item = std::make_shared<work_item>();
  item->req = std::move(req);
  item->lane = lane;
  item->fingerprint = fingerprint;
  item->future = item->promise.get_future().share();
  item->expiry = expiry;

  auto [queue_it, fresh] = queues_.try_emplace(item->req.priority, opt_.default_weight);
  if (fresh)
    for (const auto& [key, weight] : opt_.weights) queue_it->second.set_weight(key, weight);
  queue_it->second.push(lane, item);
  ++queued_count_;
  ++counters_.submitted;
  ++counters_.admitted;
  if (opt_.coalesce && !fingerprint.empty()) pending_[pending_key(lane, fingerprint)] = item;
  cv_work_.notify_one();
  return item->future;
}

request_scheduler::item_ptr request_scheduler::pick_next_locked() {
  const auto eligible = [this](const std::string& lane) {
    if (opt_.max_inflight_per_session == 0) return true;
    const auto it = inflight_per_lane_.find(lane);
    return it == inflight_per_lane_.end() || it->second < opt_.max_inflight_per_session;
  };
  for (auto it = queues_.begin(); it != queues_.end();) {
    std::optional<item_ptr> item = it->second.pop(eligible);
    if (item) return std::move(*item);
    // Drop drained priority queues: client-supplied priorities are an
    // unbounded key space, and an empty wrr_queue per int ever seen would
    // leak in a long-lived service. (empty() is false while ineligible
    // items wait, so those queues survive.)
    it = it->second.empty() ? queues_.erase(it) : ++it;
  }
  return nullptr;
}

void request_scheduler::expire_item_locked(const item_ptr& item) {
  // Drop-on-expired-deadline: the request waited past its budget, so
  // running it now would only waste evaluator time.
  ++counters_.expired;
  if (!item->fingerprint.empty()) pending_.erase(pending_key(item->lane, item->fingerprint));
  item->promise.set_exception(std::make_exception_ptr(
      admission_error{admission_error::reason::deadline_expired,
                      "request_scheduler: deadline expired after " +
                          std::to_string(item->req.deadline.count()) + "ms queued"}));
}

std::vector<request_scheduler::item_ptr> request_scheduler::fuse_group_locked(item_ptr lead) {
  std::vector<item_ptr> group;
  group.push_back(std::move(lead));
  if (opt_.max_fused == 1) return group;
  const auto queue_it = queues_.find(group.front()->req.priority);
  if (queue_it != queues_.end()) {
    const std::string& lane = group.front()->lane;
    while (opt_.max_fused == 0 || group.size() < opt_.max_fused) {
      // Followers must fit under the lane's in-flight cap together with the
      // rest of the group (the whole group goes in flight at once).
      if (opt_.max_inflight_per_session != 0) {
        const auto running_it = inflight_per_lane_.find(lane);
        const std::size_t running =
            running_it == inflight_per_lane_.end() ? 0 : running_it->second;
        if (running + group.size() >= opt_.max_inflight_per_session) break;
      }
      std::optional<item_ptr> follower = queue_it->second.pop_from(lane);
      if (!follower) break;
      --queued_count_;
      cv_space_.notify_one();  // the drain freed admission-queue space
      if (std::chrono::steady_clock::now() > (*follower)->expiry) {
        expire_item_locked(*follower);
        continue;
      }
      group.push_back(std::move(*follower));
    }
    if (queue_it->second.empty()) queues_.erase(queue_it);
  }
  if (group.size() > 1) {
    counters_.fused += group.size() - 1;
    ++counters_.fused_batches;
  }
  return group;
}

void request_scheduler::worker_loop() {
  std::unique_lock<std::mutex> lock{mu_};
  for (;;) {
    if (stopping_) return;
    item_ptr item = paused_ ? nullptr : pick_next_locked();
    if (!item) {
      cv_work_.wait(lock);
      continue;
    }
    --queued_count_;
    cv_space_.notify_one();  // the dequeue freed admission-queue space

    if (std::chrono::steady_clock::now() > item->expiry) {
      expire_item_locked(item);
      if (queued_count_ == 0 && inflight_count_ == 0) cv_idle_.notify_all();
      continue;
    }

    const std::vector<item_ptr> group = fuse_group_locked(std::move(item));
    inflight_count_ += group.size();
    inflight_per_lane_[group.front()->lane] += group.size();
    lock.unlock();

    std::vector<fused_outcome> outcomes(group.size());
    if (group.size() == 1 || !run_fused_) {
      // Serial dispatch: one run_ per member, per-member error isolation.
      // (A fused group without a fused executor still counted as fused —
      // the drain and single dispatch happened; only the execution loops.)
      for (std::size_t i = 0; i < group.size(); ++i) {
        try {
          outcomes[i].report = run_(group[i]->req);
        } catch (...) {
          outcomes[i].error = std::current_exception();
        }
      }
    } else {
      std::vector<mapping_request> reqs;
      reqs.reserve(group.size());
      for (const item_ptr& member : group) reqs.push_back(member->req);
      try {
        outcomes = run_fused_(reqs);
        if (outcomes.size() != group.size())
          throw std::runtime_error("request_scheduler: fused executor returned " +
                                   std::to_string(outcomes.size()) + " outcomes for " +
                                   std::to_string(group.size()) + " requests");
      } catch (...) {
        // Whole-call failure fails the whole group; per-request failures
        // should have been isolated via fused_outcome::error instead.
        outcomes.assign(group.size(), fused_outcome{});
        for (fused_outcome& o : outcomes) o.error = std::current_exception();
      }
    }

    lock.lock();
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (outcomes[i].error)
        ++counters_.failed;
      else
        ++counters_.completed;
    }
    inflight_count_ -= group.size();
    const auto lane_it = inflight_per_lane_.find(group.front()->lane);
    if (lane_it != inflight_per_lane_.end()) {
      lane_it->second -= group.size();
      if (lane_it->second == 0) inflight_per_lane_.erase(lane_it);
    }
    for (std::size_t i = 0; i < group.size(); ++i) {
      const item_ptr& member = group[i];
      if (!member->fingerprint.empty())
        pending_.erase(pending_key(member->lane, member->fingerprint));
      // Fulfill under the lock: whoever observes the future ready also
      // observes counters that already include this completion, and the
      // stamped snapshot counts the report it rides in.
      if (outcomes[i].error) {
        member->promise.set_exception(outcomes[i].error);
      } else {
        outcomes[i].report.scheduler = stats_locked();
        member->promise.set_value(std::move(outcomes[i].report));
      }
    }
    // A lane at its in-flight cap may have become dispatchable.
    if (opt_.max_inflight_per_session != 0) cv_work_.notify_all();
    if (queued_count_ == 0 && inflight_count_ == 0) cv_idle_.notify_all();
  }
}

void request_scheduler::pause() {
  const std::lock_guard<std::mutex> lock{mu_};
  paused_ = true;
}

void request_scheduler::resume() {
  {
    const std::lock_guard<std::mutex> lock{mu_};
    paused_ = false;
  }
  cv_work_.notify_all();
}

scheduler_stats request_scheduler::stats_locked() const {
  scheduler_stats s = counters_;
  s.queued = queued_count_;
  s.inflight = inflight_count_;
  s.inflight_per_session = inflight_per_lane_;
  return s;
}

scheduler_stats request_scheduler::stats() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return stats_locked();
}

void request_scheduler::wait_idle() const {
  std::unique_lock<std::mutex> lock{mu_};
  cv_idle_.wait(lock, [this] { return queued_count_ == 0 && inflight_count_ == 0; });
}

}  // namespace mapcq::serving
