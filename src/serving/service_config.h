#pragma once
// The unified, serializable configuration surface of the serving stack
// (ROADMAP: "config + replay refactor"). Every knob the system grew across
// the engine / GA / scheduler / refresh layers is code-only without this
// file; here each options struct gains `to_json` / `from_json` / `validate`
// bindings, composed into one top-level `service_config` so a
// `mapping_service` can be booted from a JSON file and every
// `mapping_report` can record the exact effective config that produced it.
//
// Contract of the bindings:
//   * to_json(x) emits every field, defaults included, in declaration
//     order — dump(to_json(x)) is deterministic, so equal configs always
//     serialize to byte-identical text (the bit-identity tests gate on it).
//   * from_json starts from the struct's defaults, overwrites the fields
//     present, rejects unknown keys, and range-checks via validate(). All
//     failures throw `config_error` naming the dotted key path
//     ("ga.elite_fraction"), never a bare json error.
//   * chrono fields serialize as integral milliseconds under a `_ms`
//     suffixed key; enums serialize as strings ("lru", "reject", ...).

#include <stdexcept>
#include <string>
#include <string_view>

#include "serving/mapping_service.h"
#include "serving/service_group.h"
#include "util/json.h"

namespace mapcq::serving {

/// Typed configuration failure: a dotted key path ("scheduler.policy")
/// plus what was wrong with it. Thrown by from_json / validate /
/// apply_override; parse_config wraps json::parse_error into one with the
/// pseudo-path "<json>".
class config_error : public std::runtime_error {
 public:
  config_error(std::string path, const std::string& message);
  /// Dotted path of the offending key, e.g. "ga.island.polish_fraction".
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// The complete boot configuration of a serving deployment: the service's
/// own knobs (engine / scheduler / refresh / snapshot blocks, worker
/// counts, session lifecycle), the shard topology a `service_group` boot
/// applies, plus the GA search budget requests will run with. The JSON
/// form is one object with the blocks at top level:
///   { "workers": .., "max_sessions": .., "session_ttl_ms": ..,
///     "engine": {..}, "scheduler": {..}, "refresh": {..},
///     "snapshot": {..}, "group": {..}, "ga": {..}, "scenario": {..} }
struct service_config {
  service_options service;  ///< engine/scheduler/refresh/snapshot + lifecycle
  /// Shard topology, consumed only by service_group boots (a plain
  /// mapping_service ignores it). Deployment metadata, not evaluation
  /// semantics: mapping_report::effective_config deliberately stamps the
  /// default group so reports stay bit-identical across reshards.
  group_options group;
  core::ga_options ga;      ///< search budget applied to each request
  /// Co-location scenario applied to each request's evaluator
  /// (`mapping_request::eval.contention`): co-resident loads, per-CU DVFS
  /// caps, thermal budget. Defaults to idle — evaluation identical to a
  /// contention-free deployment.
  soc::contention_context scenario;
};

/// @name Per-struct JSON bindings
/// to_json emits all fields in declaration order; from_json overwrites
/// `out` (starting from its current values) from the object in `v`,
/// rejecting unknown keys and out-of-range values with `config_error`s
/// rooted at `path`.
/// @{
[[nodiscard]] util::json::value to_json(const core::engine_options& opt);
[[nodiscard]] util::json::value to_json(const core::ga_options& opt);
[[nodiscard]] util::json::value to_json(const scheduler_options& opt);
[[nodiscard]] util::json::value to_json(const surrogate::refresh_options& opt);
[[nodiscard]] util::json::value to_json(const snapshot_options& opt);
[[nodiscard]] util::json::value to_json(const group_options& opt);
[[nodiscard]] util::json::value to_json(const service_options& opt);
[[nodiscard]] util::json::value to_json(const soc::thermal_model& model);
[[nodiscard]] util::json::value to_json(const soc::resident_load& load);
[[nodiscard]] util::json::value to_json(const soc::contention_context& ctx);
[[nodiscard]] util::json::value to_json(const service_config& cfg);

void from_json(const util::json::value& v, core::engine_options& out,
               const std::string& path = "engine");
void from_json(const util::json::value& v, core::ga_options& out, const std::string& path = "ga");
void from_json(const util::json::value& v, scheduler_options& out,
               const std::string& path = "scheduler");
void from_json(const util::json::value& v, surrogate::refresh_options& out,
               const std::string& path = "refresh");
void from_json(const util::json::value& v, snapshot_options& out,
               const std::string& path = "snapshot");
void from_json(const util::json::value& v, group_options& out,
               const std::string& path = "group");
void from_json(const util::json::value& v, service_options& out,
               const std::string& path = "service");
void from_json(const util::json::value& v, soc::thermal_model& out,
               const std::string& path = "thermal");
void from_json(const util::json::value& v, soc::resident_load& out,
               const std::string& path = "resident");
void from_json(const util::json::value& v, soc::contention_context& out,
               const std::string& path = "scenario");
void from_json(const util::json::value& v, service_config& out, const std::string& path = "");
/// @}

/// @name Range validation
/// Checks the semantic constraints the engines enforce at construction
/// (population >= 4, elite_fraction in (0,1), holdout_fraction in (0,1),
/// weights >= 1, ...), throwing `config_error` with the offending key path
/// rooted at `path`. from_json calls these; call them directly after
/// mutating a struct in code.
/// @{
void validate(const core::engine_options& opt, const std::string& path = "engine");
void validate(const core::ga_options& opt, const std::string& path = "ga");
void validate(const scheduler_options& opt, const std::string& path = "scheduler");
void validate(const surrogate::refresh_options& opt, const std::string& path = "refresh");
void validate(const snapshot_options& opt, const std::string& path = "snapshot");
void validate(const group_options& opt, const std::string& path = "group");
void validate(const service_options& opt, const std::string& path = "service");
void validate(const soc::thermal_model& model, const std::string& path = "thermal");
void validate(const soc::resident_load& load, const std::string& path = "resident");
void validate(const soc::contention_context& ctx, const std::string& path = "scenario");
void validate(const service_config& cfg, const std::string& path = "");
/// @}

/// Parses a service_config from JSON text. Starts from defaults (an empty
/// object "{}" is the default config), throws config_error on malformed
/// JSON, unknown keys or out-of-range values.
[[nodiscard]] service_config parse_config(std::string_view text);

/// Reads and parses a config file. Throws std::runtime_error when the file
/// cannot be read, config_error on content problems.
[[nodiscard]] service_config load_config(const std::string& file_path);

/// Serializes the effective config, defaults filled in. `indent` = 0 emits
/// the compact one-line form (the `mapping_report::effective_config`
/// stamp); 2 is the human-facing pretty form written by --dump-config.
[[nodiscard]] std::string dump_config(const service_config& cfg, int indent = 2);

/// Writes dump_config(cfg) to a file. Throws std::runtime_error on I/O
/// failure.
void save_config(const service_config& cfg, const std::string& file_path);

/// Applies one `--set` style override of the form "dotted.key=value"
/// (e.g. "ga.generations=8", "scheduler.policy=reject",
/// "engine.memoize=false"). The value text is parsed as a JSON scalar, with
/// a bare-word fallback to a string (so enum values need no quoting), and
/// routed through the exact from_json path — unknown keys and bad values
/// throw the same config_error a file would.
void apply_override(service_config& cfg, std::string_view assignment);

}  // namespace mapcq::serving
