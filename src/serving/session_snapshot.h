#pragma once
// Durable session snapshots (ROADMAP: "sharded serving with durable session
// snapshots and warm-start restore").
//
// A long-lived `mapping_session` accumulates state that is expensive to
// rebuild: the analytic memo cache (thousands of evaluator runs), the
// once-trained GBT predictor with its surrogate cache, and the refresh
// pipeline's ground-truth reservoir. Eviction and process restarts used to
// discard all of it; a snapshot captures the whole set in one versioned
// text document (mapcq-snapshot-v1) so a restored session serves warm
// traffic bit-identically — cached evaluations are replayed verbatim, the
// GBT is rebuilt from its fitted trees without retraining, and reservoir
// probabilities stay correct across the restart.
//
// The format follows the PR 6 serialization idiom: line-oriented key/value
// rows, length-prefixed vectors, embedded self-delimiting mapcq-eval-v1 and
// mapcq-config-v1 blocks, full 17-digit precision. Every parse failure —
// truncation, corruption, version skew — throws the typed `snapshot_error`,
// never UB: the spill/restore paths treat a bad snapshot as a cold start,
// not a crash.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "surrogate/dataset.h"
#include "surrogate/predictor.h"
#include "surrogate/trainer.h"

namespace mapcq::serving {

/// Typed snapshot failure: malformed or truncated snapshot text, a version
/// mismatch, or an I/O error in the file wrappers. Restore paths catch this
/// (and only this) to fall back to a cold session.
class snapshot_error : public std::runtime_error {
 public:
  explicit snapshot_error(const std::string& message);
};

/// Everything a `mapping_session` needs to resume warm after a restart:
/// plain value type, no thread-affinity, produced by
/// `mapping_session::snapshot()` and consumed by
/// `mapping_session::restore()`.
struct session_snapshot {
  /// The session key the state was captured under. Restore refuses a key
  /// mismatch — a snapshot must never warm-start a session built from
  /// different evaluator knobs.
  std::string session_key;

  /// Current-epoch entries of the analytic engine's memo cache, coldest
  /// first (import replays the eviction order).
  std::vector<core::evaluation> analytic_entries;

  /// The lazily trained surrogate half; absent when the session never
  /// trained one.
  struct surrogate_state {
    /// The training knobs locked in by the session's first surrogate
    /// request — restored so later requests pass the immutability check
    /// without retraining.
    surrogate::benchmark_options bench;
    surrogate::gbt_params gbt;
    /// Held-out fidelity of the initial session GBT (reported verbatim).
    surrogate::hw_predictor::fidelity fidelity;
    /// The serving predictor's two fitted ensembles at snapshot time (the
    /// epoch-N model when refresh promoted N times) — rebuilt via the
    /// restore constructors, bit-identical, never retrained.
    surrogate::fitted_ensemble latency;
    surrogate::fitted_ensemble energy;
    /// The surrogate engine's cache epoch at capture, equal to the refresh
    /// promotion count. Captured under the same lock as the ensembles and
    /// the entries below, so the triple is consistent; a restored engine
    /// restarts at epoch 0 with this model as its base.
    std::uint64_t predictor_epoch = 0;
    /// Current-epoch surrogate cache entries (predictions of exactly the
    /// serialized model; stale-epoch stragglers are excluded).
    std::vector<core::evaluation> entries;
  };
  std::optional<surrogate_state> surrogate;

  /// The refresh pipeline's reservoir; absent when the session ran without
  /// refresh (or never trained the surrogate that owns the pipeline).
  struct refresh_state {
    /// The original benchmark training slice candidates refit on.
    surrogate::dataset base_train;
    /// The reservoir's retained rows plus the total ever offered — what
    /// keeps Algorithm R's retention probabilities correct after restore.
    surrogate::dataset log_rows;
    std::size_t log_seen = 0;
  };
  std::optional<refresh_state> refresh;
};

/// Serializes a snapshot to the mapcq-snapshot-v1 text format.
[[nodiscard]] std::string to_text(const session_snapshot& snap);

/// Parses a snapshot back; exact round-trip of to_text. Throws
/// snapshot_error on any malformed input — bad header, truncation mid-
/// section, non-numeric fields, out-of-range tree children.
[[nodiscard]] session_snapshot snapshot_from_text(const std::string& text);

/// File convenience wrappers; both throw snapshot_error on I/O failure.
void save_snapshot(const std::string& path, const session_snapshot& snap);
[[nodiscard]] session_snapshot load_snapshot(const std::string& path);

/// The on-disk file name for a session's snapshot: a stable 64-bit content
/// hash of the session key in hex plus ".snapshot". Session keys contain
/// path-hostile characters ('/', '|'); the hash is filesystem-safe and
/// stable across processes (std::hash is not), so a restarted service finds
/// the files its predecessor wrote.
[[nodiscard]] std::string snapshot_filename(const std::string& session_key);

}  // namespace mapcq::serving
