#pragma once
// The multi-network serving front-end (ROADMAP: "multi-network serving
// front-end reusing one engine per (net, platform, options) tuple").
//
// A `mapping_service` owns registries of networks and platforms plus a
// registry of immutable `mapping_session`s keyed by (network, platform,
// evaluator options, ranking seed). Requests against the same tuple share
// one session and therefore one memo cache: the second `map()` of a request
// costs a fraction of the first, validation of an analytic search is pure
// cache hits, and the session surrogate trains exactly once. Requests for
// different tuples get isolated sessions and never contend on each other's
// cache shards.
//
// Under many distinct (network, options) tuples the registry is kept
// memory-bounded: `service_options::max_sessions` caps it with LRU
// eviction and `service_options::session_ttl` expires idle sessions.
// See docs/ARCHITECTURE.md for session-key and cache-lifetime semantics.
//
// Asynchronous traffic (`submit()`) flows through a `request_scheduler`:
// a bounded admission queue with weighted round-robin fairness across
// sessions, coalescing of identical requests, and priority/deadline lanes
// (`service_options::scheduler`; operator guide in docs/SERVING.md).

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "serving/mapping_types.h"
#include "serving/request_scheduler.h"
#include "serving/session.h"

namespace mapcq::serving {

class trace_log;  // serving/request_trace.h

/// Durable-snapshot knobs (see serving/session_snapshot.h and the
/// persistence section of docs/SERVING.md).
struct snapshot_options {
  /// Directory session snapshots are written to / restored from. Empty
  /// (the default) disables persistence entirely — no spill, no restore.
  /// Must already exist; the service never creates it.
  std::string directory;
  /// Evicted sessions (LRU cap, idle TTL) are snapshotted to `directory`
  /// before they are dropped, instead of discarding their warm caches and
  /// trained surrogate. Spilling is best-effort: a failed write counts in
  /// `spill_failures()` and the eviction proceeds.
  bool spill_on_evict = false;
  /// A cold session_for() miss checks `directory` for a snapshot of the
  /// session's key and warm-starts from it. Restoring is best-effort: a
  /// corrupt or mismatched snapshot counts in `restore_failures()` and the
  /// session starts cold.
  bool restore_on_miss = true;
};

/// Service tuning knobs.
struct service_options {
  service_options() {
    // Long-lived serving defaults: bounded LRU cache per engine (hot
    // configurations survive capacity pressure across requests) and
    // auto-sized batch workers.
    engine.capacity = std::size_t{1} << 16;
    engine.eviction = core::eviction_policy::lru;
    engine.threads = 0;  // 0 = one worker per hardware thread
  }

  core::engine_options engine;  ///< per-session engine tuning
  std::size_t workers = 2;      ///< scheduler dispatch threads serving submit()

  /// Online surrogate-refresh knobs, applied to every session (see
  /// surrogate::refresh_options and docs/SERVING.md). Default-off: with
  /// `refresh.enabled == false` the service is bit-identical to the
  /// pre-refresh behavior — no ground-truth tap, no background refits, no
  /// predictor swaps.
  surrogate::refresh_options refresh;

  /// Admission/fairness/coalescing knobs of the request scheduler that
  /// fronts `submit()` (see serving::request_scheduler and docs/SERVING.md).
  /// The defaults are permissive: unbounded queue, coalescing on, equal
  /// session weights — production deployments should bound `max_queued`.
  scheduler_options scheduler;

  /// Maximum live sessions; 0 = unbounded. When a new session would exceed
  /// the cap, the least-recently-used session is evicted (its caches and
  /// trained surrogate are dropped; requests in flight keep it alive via
  /// their shared_ptr and a later identical request rebuilds it cold).
  std::size_t max_sessions = 0;
  /// Idle time after which a session expires; zero = never. A session is
  /// "used" when a request resolves it and again when the request
  /// completes (so a search longer than the TTL cannot expire its own
  /// session). Expiry is lazy: checked whenever the registry is touched.
  std::chrono::milliseconds session_ttl{0};

  /// Durable session snapshots: spill-on-evict and warm-start restore
  /// (default-off via an empty directory; see snapshot_options).
  snapshot_options snapshot;
};

/// Thread-safe, long-lived serving front-end.
///
/// Ownership: the service copies registered networks/platforms (callers
/// may drop theirs) and owns every session it creates. `session_for` hands
/// out shared_ptrs, so an evicted or expired session stays valid for
/// whoever still holds it.
///
/// Thread-safety: every public member may be called concurrently. Requests
/// that share a session share its engines; thanks to the engine's
/// cross-thread in-flight dedup, racing requests never evaluate the same
/// candidate twice on one session.
class mapping_service {
 public:
  explicit mapping_service(service_options opt = {});

  mapping_service(const mapping_service&) = delete;
  mapping_service& operator=(const mapping_service&) = delete;

  /// Registers (or replaces) a network under `net.name`; the service keeps
  /// its own copy. Replacement takes effect for new requests -- the session
  /// key carries a per-name registration generation, so the next request
  /// builds a fresh session against the new snapshot while sessions already
  /// created keep serving the one they were built with. Throws
  /// std::invalid_argument on an empty name.
  void register_network(const nn::network& net);

  /// Registers (or replaces) a platform under `plat.name`, with the same
  /// generation semantics as register_network; the first registered
  /// platform becomes the default for requests with an empty `platform`
  /// field. Throws std::invalid_argument on an empty name.
  void register_platform(const soc::platform& plat);

  /// Serves one request synchronously: blocks the calling thread through
  /// surrogate training (first surrogate request of a session), the GA
  /// search (including `req.ga.island` sharded searches) and the analytic
  /// validation of the Pareto picks. Safe to call from any thread; racing
  /// calls on one session share its memo cache and in-flight runs.
  [[nodiscard]] mapping_report map(const mapping_request& req);

  /// Serves a fused dispatch group (see scheduler_options::max_fused): runs
  /// every request concurrently — they share one session and therefore one
  /// engine, whose cross-thread in-flight dedup amortizes evaluation across
  /// the group. Returns exactly one outcome per request, index-aligned;
  /// per-request failures are isolated into `fused_outcome::error`, never
  /// thrown. Each report is bit-identical to what a serial `map()` would
  /// produce (evaluations are pure and the search is seed-deterministic);
  /// only engine cache counters and the stamped scheduler note may differ.
  [[nodiscard]] std::vector<fused_outcome> map_fused(std::span<const mapping_request> reqs);

  /// Admits the request into the service scheduler and returns immediately
  /// (except under `admission_policy::block` with a full queue, where the
  /// caller is backpressured until space frees). The future resolves to the
  /// same report `map()` would produce, stamped with a `scheduler_stats`
  /// snapshot. A submit identical to a queued or in-flight one joins that
  /// request's shared_future instead of enqueuing ("coalescing"); requests
  /// are dispatched highest `req.priority` first, weighted-round-robin
  /// across sessions within a priority, and dropped if they out-wait
  /// `req.deadline` in the queue. Exceptions — unknown network, surrogate
  /// knob mismatch, typed `admission_error` rejections — surface at
  /// future::get().
  [[nodiscard]] std::shared_future<mapping_report> submit(mapping_request req);

  /// Counter/gauge snapshot of the request scheduler (all zero until the
  /// first submit() creates it). See scheduler_stats for the reconciliation
  /// invariants.
  [[nodiscard]] scheduler_stats scheduler() const;

  /// Installs a capture tap: every subsequent submit() appends one
  /// trace_record (arrival offset, priority, deadline, fairness lane,
  /// fingerprint) to `log` before admission — coalesced and rejected
  /// submits included, so a replay reproduces the traffic's full shape.
  /// Null removes the tap. See serving/request_trace.h.
  void capture_trace(std::shared_ptr<trace_log> log);

  /// Pauses/resumes the request scheduler's dispatch (creating it on first
  /// use). While paused, submit() still admits and coalesces — the
  /// deterministic-replay primitive (see request_scheduler::pause).
  void pause_scheduler();
  void resume_scheduler();

  /// The session that serves `req`, created on first use (and counted as a
  /// use for TTL/LRU purposes). Throws std::invalid_argument for an
  /// unregistered network/platform.
  [[nodiscard]] std::shared_ptr<mapping_session> session_for(const mapping_request& req);

  /// Live sessions currently in the registry (evicted/expired excluded).
  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::vector<std::string> session_keys() const;
  /// Sessions dropped so far by the LRU cap or the idle TTL.
  [[nodiscard]] std::size_t sessions_evicted() const;

  /// The session key `req` would resolve to, without validating or creating
  /// anything (unknown names key on generation 0) — the scheduler's
  /// fairness lane, computable even for requests that will fail in map().
  /// Also the consistent-hash routing key of serving::service_group.
  [[nodiscard]] std::string fairness_lane(const mapping_request& req) const;

  /// Snapshots every live session to `snapshot.directory` (existing files
  /// for the same keys are overwritten); the sessions stay in the registry
  /// and keep serving. This is the orderly-shutdown / pre-reshard drain
  /// primitive. Returns the number spilled; 0 when no directory is
  /// configured. Failed writes count in `spill_failures()` and are skipped.
  ///
  /// Blocking: snapshotting drains each refresh session's in-flight refit.
  std::size_t spill_sessions();

  /// @name Persistence counters (all monotonic)
  /// @{
  [[nodiscard]] std::size_t sessions_spilled() const;   ///< snapshots written
  [[nodiscard]] std::size_t spill_failures() const;     ///< snapshot writes that failed
  [[nodiscard]] std::size_t sessions_restored() const;  ///< cold misses warm-started from disk
  [[nodiscard]] std::size_t restore_failures() const;   ///< snapshots that failed to load
  /// @}

  /// Summed engine counters (analytic + surrogate) across every live
  /// session — the service-level cache dashboard; `cache_bytes` sums into
  /// the service's total memo-table footprint.
  [[nodiscard]] core::engine_stats engine_totals() const;

 private:
  struct session_entry {
    std::shared_ptr<mapping_session> session;
    std::chrono::steady_clock::time_point last_used;
  };

  [[nodiscard]] std::string session_key(const mapping_request& req,
                                        const std::string& platform_name,
                                        std::uint64_t network_generation,
                                        std::uint64_t platform_generation) const;
  /// Best-effort snapshot of an eviction victim (no-op unless
  /// spill_on_evict with a directory). Caller must hold `mu_`.
  void spill_session_locked(const std::shared_ptr<mapping_session>& session);
  /// Best-effort warm-start of a freshly created session from the snapshot
  /// directory. Caller must hold `mu_`.
  void maybe_restore_locked(const std::string& key, mapping_session& session);
  /// Lazily constructs the scheduler on first submit(). Caller must NOT
  /// hold `mu_`.
  [[nodiscard]] request_scheduler& ensure_scheduler();
  /// Drops idle sessions past the TTL. Caller must hold `mu_`.
  void prune_expired_locked(std::chrono::steady_clock::time_point now);
  /// Refreshes a session's last-used stamp (no-op if already evicted).
  void touch_session(const std::string& key);
  /// Enforces `max_sessions` by evicting LRU entries other than `keep`.
  /// Caller must hold `mu_`.
  void enforce_capacity_locked(const std::string& keep);

  service_options opt_;
  mutable std::mutex mu_;  ///< guards the three registries + pool creation
  std::unordered_map<std::string, std::shared_ptr<const nn::network>> networks_;
  std::unordered_map<std::string, std::shared_ptr<const soc::platform>> platforms_;
  /// Bumped on every (re-)registration; part of the session key so a
  /// replaced network/platform stops matching pre-replacement sessions.
  std::unordered_map<std::string, std::uint64_t> network_generations_;
  std::unordered_map<std::string, std::uint64_t> platform_generations_;
  std::string default_platform_;
  std::unordered_map<std::string, session_entry> sessions_;
  std::size_t sessions_evicted_ = 0;
  std::size_t sessions_spilled_ = 0;
  std::size_t spill_failures_ = 0;
  std::size_t sessions_restored_ = 0;
  std::size_t restore_failures_ = 0;
  /// Capture tap; null when no capture is active (the common case).
  std::shared_ptr<trace_log> trace_;
  /// Lazily created on first submit(). Declared last so it is destroyed
  /// first: its destructor joins the dispatch workers, which may be inside
  /// map() touching the registries above.
  std::unique_ptr<request_scheduler> scheduler_;
};

}  // namespace mapcq::serving
