#pragma once
// Serving-level co-location API: a `placement_group` binds several member
// workloads to one registered platform of a `mapping_service` and keeps
// their compute-unit reservations disjoint through a soc::resident_ledger.
// Each member declares the steady load it imposes on the shared paths (a
// soc::resident_load); when a member maps, every *other* member becomes a
// co-resident in its contention context, so the optimizer searches mappings
// under the contention-adjusted evaluator and the report carries the
// scenario it was scored under. Group-wide DVFS caps and a shared thermal
// budget apply to every member.
//
// A group with one member and no caps/thermal produces an idle context —
// mapping through it is bit-identical to mapping against the service
// directly.

#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "serving/mapping_service.h"
#include "soc/contention.h"

namespace mapcq::serving {

/// Thread-safe co-location group over one platform of a mapping_service.
///
/// Ownership: borrows the service (must outlive the group) and copies the
/// platform description for validation; the platform must also be
/// registered with the service under the same name before members map.
class placement_group {
 public:
  /// Binds the group to `service` and `plat`. `base` seeds the scenario
  /// every member maps under: its DVFS caps, thermal budget, derate
  /// coefficients and any *external* residents (workloads outside the
  /// group) are shared group-wide; per-member residents are layered on
  /// top. Throws std::invalid_argument when `base` does not validate
  /// against `plat`.
  placement_group(mapping_service& service, const soc::platform& plat,
                  soc::contention_context base = {});

  /// Adds a member workload and claims its reserved CUs in the group
  /// ledger. Throws std::invalid_argument on an invalid load, a duplicate
  /// member name (including a clash with a `base` resident), an
  /// out-of-range unit, or a unit already owned.
  void join(const soc::resident_load& member);

  /// Removes a member and frees its reservations. Throws
  /// std::invalid_argument for an unknown name.
  void leave(const std::string& member);

  /// The contention context `member` maps under: the base scenario plus
  /// every *other* member as a co-resident (never itself). Throws
  /// std::invalid_argument for an unknown member.
  [[nodiscard]] soc::contention_context scenario_for(const std::string& member) const;

  /// `req` rewritten for `member`: platform pinned to the group's,
  /// `eval.contention` set to scenario_for(member). The search then runs
  /// under the contention-adjusted evaluator.
  [[nodiscard]] mapping_request request_for(const std::string& member,
                                            mapping_request req) const;

  /// Maps/submits on behalf of a member (request_for + the service call).
  [[nodiscard]] mapping_report map(const std::string& member, const mapping_request& req);
  [[nodiscard]] std::shared_future<mapping_report> submit(const std::string& member,
                                                          mapping_request req);

  /// Current members, in join order.
  [[nodiscard]] std::vector<soc::resident_load> members() const;

  /// Owner of a CU: a member or base-resident name, or nullptr when free.
  /// The pointer is only valid until the next join/leave; copy it out.
  [[nodiscard]] bool unit_reserved(std::size_t unit) const;

  [[nodiscard]] const soc::platform& platform() const noexcept { return plat_; }

 private:
  mapping_service* service_;
  soc::platform plat_;
  soc::contention_context base_;
  mutable std::mutex mu_;             ///< guards ledger_
  soc::resident_ledger ledger_;       ///< base residents + members
  std::vector<std::string> member_names_;  ///< join order; base residents excluded
};

}  // namespace mapcq::serving
