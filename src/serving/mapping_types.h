#pragma once
// Structured request/report pair of the serving front-end -- the API the
// one-shot `core::optimizer` facade grew into. A `mapping_request` names a
// *registered* network/platform and carries the search knobs; the
// `mapping_report` returns the analytically validated Pareto front, the
// Table-II picks, the per-phase evaluation-cache deltas and the fidelity of
// the session surrogate that served the search.

#include <chrono>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/evolutionary.h"
#include "core/serialization.h"
#include "surrogate/dataset.h"
#include "surrogate/gbt.h"
#include "surrogate/predictor.h"
#include "surrogate/refresh.h"

namespace mapcq::serving {

/// Which pick `mapping_report::best()` returns.
enum class objective_orientation {
  balanced,  ///< minimum eq. 16 objective on the validated front
  latency,   ///< the Ours-L pick (Table II latency-oriented model)
  energy,    ///< the Ours-E pick (Table II energy-oriented model)
};

/// One mapping job against a `mapping_service`.
struct mapping_request {
  std::string network;   ///< name passed to `mapping_service::register_network`
  std::string platform;  ///< registered platform name; empty = service default

  /// Search budget/operators; per-request, never keyed. `ga.island`
  /// selects the island-model search (`{islands, migration_interval,
  /// migrants}`): the population is sharded across K islands that evolve
  /// concurrently against the session engine — K = 1 is the classic GA,
  /// bit-identical at equal seeds. Note `ga.threads` does not apply here:
  /// evaluation parallelism belongs to the session engine, fixed by
  /// `service_options::engine.threads` at service construction (the knob
  /// only drives the engine-less evolve() overload).
  core::ga_options ga;
  /// Evaluation knobs; together with (network, platform, ranking_seed,
  /// ratio_levels) these key the session. `eval.predictor` must stay null --
  /// sessions own their predictors -- and `eval.limits` carries the search
  /// constraints (paper eq. 15).
  core::evaluator_options eval;
  int ratio_levels = 8;  ///< paper §V-A: 8 channel partitioning ratios

  bool use_surrogate = true;  ///< search on the session GBT (paper flow)
  /// Surrogate training knobs. The first surrogate request of a session
  /// trains its predictor with these; later requests must match them.
  surrogate::benchmark_options bench;
  surrogate::gbt_params gbt;

  objective_orientation orientation = objective_orientation::balanced;
  /// Accuracy slack (points below the best validated accuracy) tolerated
  /// when picking the energy-/latency-oriented models.
  double ours_e_accuracy_slack = 0.75;
  double ours_l_accuracy_slack = 2.50;

  std::uint64_t ranking_seed = 0xC0FFEE;  ///< channel-ranking seed (keys the session)

  // --- scheduling-only knobs (submit() path; never keyed, never part of the
  // --- coalescing fingerprint, ignored by a direct map() call) -------------

  /// Dispatch lane: the scheduler always serves the highest non-empty
  /// priority before lower ones (fairness applies within a priority).
  int priority = 0;
  /// Time the request may spend *queued* before it is dropped with
  /// `admission_error::reason::deadline_expired`, measured from submit();
  /// zero = no deadline. Once dispatched a request always runs to
  /// completion. Coalescing keeps the shared run alive until the *latest*
  /// deadline of any joined request.
  std::chrono::milliseconds deadline{0};
};

/// Canonical identity of a request for service-level coalescing: a string
/// over every `mapping_request` field that can change the produced
/// `mapping_report` (network/platform names, GA knobs incl. islands and
/// seed, evaluator options, surrogate training knobs, orientation, slacks,
/// ranking seed). Scheduling-only knobs (`priority`, `deadline`) and
/// `ga.threads` (documented not to affect results) are excluded. Two
/// submits with equal fingerprints while one is queued or in flight share
/// one execution and one report.
///
/// Maintenance invariant: every new semantic `mapping_request` field must
/// be added here, or identical-looking requests with different behavior
/// would coalesce.
[[nodiscard]] std::string request_fingerprint(const mapping_request& req);

/// Snapshot of the service request scheduler's counters and gauges (see
/// serving::request_scheduler). Monotonic counters reconcile as
///   submitted == admitted + coalesced + rejected
///   admitted  == completed + failed + expired + queued + inflight
/// where `queued`/`inflight` are point-in-time gauges (both zero once the
/// scheduler is drained).
struct scheduler_stats {
  /// submit() calls whose admission has been decided. A caller currently
  /// blocked by backpressure is not counted yet — which is what keeps the
  /// reconciliation exact on *live* snapshots, not just after a drain.
  std::size_t submitted = 0;
  std::size_t admitted = 0;   ///< entered the queue as distinct work items
  std::size_t coalesced = 0;  ///< joined an identical queued/in-flight item
  std::size_t rejected = 0;   ///< turned away at admission (reject policy)
  std::size_t expired = 0;    ///< dropped from the queue past their deadline
  std::size_t completed = 0;  ///< executions that returned a report
  std::size_t failed = 0;     ///< executions that threw
  /// Distinct requests dispatched as *followers* of a fused batch — i.e.
  /// beyond each batch's lead pick (see scheduler_options::max_fused).
  /// A sub-classification of admitted work, not a new outcome: every fused
  /// request still lands in exactly one of completed/failed, so the
  /// admitted == completed + failed + expired + queued + inflight
  /// reconciliation holds unchanged. Invariant: fused_batches <= fused.
  std::size_t fused = 0;
  std::size_t fused_batches = 0;  ///< dispatch groups of size >= 2
  std::size_t queued = 0;         ///< gauge: items waiting for a worker
  std::size_t inflight = 0;   ///< gauge: items currently executing
  /// Gauge: executing items per session lane (key = the fairness lane,
  /// i.e. the session key the request resolves to).
  std::unordered_map<std::string, std::size_t> inflight_per_session;
};

/// What a request returns.
struct mapping_report {
  std::string network;
  std::string platform;
  std::string session_key;  ///< registry key of the session that served this

  /// Raw search output (archive, history, cache counters, island count).
  core::ga_result search;
  /// The search's Pareto picks re-evaluated on the analytic model
  /// ("hardware"), index-aligned with `search.pareto`.
  std::vector<core::evaluation> front;
  std::size_t ours_latency_index = 0;
  std::size_t ours_energy_index = 0;
  objective_orientation orientation = objective_orientation::balanced;

  /// Engine deltas per phase. `search_cache` equals `search.cache`; a warm
  /// session serves repeats from cache, so deltas shrink run over run.
  /// Validation runs on the session's analytic engine, so after an analytic
  /// search (`use_surrogate = false`) it is pure cross-phase hits.
  core::engine_stats search_cache;
  core::engine_stats validation_cache;

  /// Held-out fidelity of the session surrogate (set when use_surrogate).
  std::optional<surrogate::hw_predictor::fidelity> surrogate_fidelity;
  bool trained_surrogate = false;  ///< true when this request trained the session GBT

  /// Refresh-pipeline snapshot of the serving session, present only when
  /// the session runs with `service_options::refresh.enabled` and its
  /// surrogate has been trained (the pipeline exists from then on).
  std::optional<surrogate::refresh_stats> refresh;

  /// Scheduler snapshot taken when this report was produced, set on the
  /// submit() path only (a direct map() bypasses the scheduler and leaves
  /// it empty). Coalesced requests share their representative's snapshot.
  std::optional<scheduler_stats> scheduler;

  /// Co-location scenario the mapping was scored under, set only when the
  /// request carried a non-idle contention context (so idle reports — and
  /// their serialized text — stay byte-identical to pre-co-location ones).
  std::optional<core::scenario_note> scenario;

  /// The effective configuration that produced this report: the serving
  /// options of the service (post-normalization) plus the request's GA
  /// knobs, as one compact serving::service_config JSON document. Two
  /// reports from equally-configured deployments carry byte-identical
  /// stamps (the config bit-identity tests gate on this).
  std::string effective_config;

  [[nodiscard]] const core::evaluation& ours_latency() const {
    return front.at(ours_latency_index);
  }
  [[nodiscard]] const core::evaluation& ours_energy() const { return front.at(ours_energy_index); }
  /// The single pick selected by `orientation`.
  [[nodiscard]] const core::evaluation& best() const;

  /// Shippable summary (see core::serialization): the validated front with
  /// its headline scalars, entries labeled `front-<i>` plus `+ours-L` /
  /// `+ours-E` tags on the picks.
  [[nodiscard]] core::report_summary summary() const;
};

/// Outcome of one request inside a fused dispatch group (see
/// request_scheduler's fused_executor): exactly one of `report` (success)
/// or `error` (the exception the request's future should rethrow) is
/// meaningful — a set `error` wins.
struct fused_outcome {
  mapping_report report;
  std::exception_ptr error;
};

}  // namespace mapcq::serving
