#pragma once
// Structured request/report pair of the serving front-end -- the API the
// one-shot `core::optimizer` facade grew into. A `mapping_request` names a
// *registered* network/platform and carries the search knobs; the
// `mapping_report` returns the analytically validated Pareto front, the
// Table-II picks, the per-phase evaluation-cache deltas and the fidelity of
// the session surrogate that served the search.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/evolutionary.h"
#include "core/serialization.h"
#include "surrogate/dataset.h"
#include "surrogate/gbt.h"
#include "surrogate/predictor.h"

namespace mapcq::serving {

/// Which pick `mapping_report::best()` returns.
enum class objective_orientation {
  balanced,  ///< minimum eq. 16 objective on the validated front
  latency,   ///< the Ours-L pick (Table II latency-oriented model)
  energy,    ///< the Ours-E pick (Table II energy-oriented model)
};

/// One mapping job against a `mapping_service`.
struct mapping_request {
  std::string network;   ///< name passed to `mapping_service::register_network`
  std::string platform;  ///< registered platform name; empty = service default

  /// Search budget/operators; per-request, never keyed. `ga.island`
  /// selects the island-model search (`{islands, migration_interval,
  /// migrants}`): the population is sharded across K islands that evolve
  /// concurrently against the session engine — K = 1 is the classic GA,
  /// bit-identical at equal seeds. Note `ga.threads` does not apply here:
  /// evaluation parallelism belongs to the session engine, fixed by
  /// `service_options::engine.threads` at service construction (the knob
  /// only drives the engine-less evolve() overload).
  core::ga_options ga;
  /// Evaluation knobs; together with (network, platform, ranking_seed,
  /// ratio_levels) these key the session. `eval.predictor` must stay null --
  /// sessions own their predictors -- and `eval.limits` carries the search
  /// constraints (paper eq. 15).
  core::evaluator_options eval;
  int ratio_levels = 8;  ///< paper §V-A: 8 channel partitioning ratios

  bool use_surrogate = true;  ///< search on the session GBT (paper flow)
  /// Surrogate training knobs. The first surrogate request of a session
  /// trains its predictor with these; later requests must match them.
  surrogate::benchmark_options bench;
  surrogate::gbt_params gbt;

  objective_orientation orientation = objective_orientation::balanced;
  /// Accuracy slack (points below the best validated accuracy) tolerated
  /// when picking the energy-/latency-oriented models.
  double ours_e_accuracy_slack = 0.75;
  double ours_l_accuracy_slack = 2.50;

  std::uint64_t ranking_seed = 0xC0FFEE;  ///< channel-ranking seed (keys the session)
};

/// What a request returns.
struct mapping_report {
  std::string network;
  std::string platform;
  std::string session_key;  ///< registry key of the session that served this

  /// Raw search output (archive, history, cache counters, island count).
  core::ga_result search;
  /// The search's Pareto picks re-evaluated on the analytic model
  /// ("hardware"), index-aligned with `search.pareto`.
  std::vector<core::evaluation> front;
  std::size_t ours_latency_index = 0;
  std::size_t ours_energy_index = 0;
  objective_orientation orientation = objective_orientation::balanced;

  /// Engine deltas per phase. `search_cache` equals `search.cache`; a warm
  /// session serves repeats from cache, so deltas shrink run over run.
  /// Validation runs on the session's analytic engine, so after an analytic
  /// search (`use_surrogate = false`) it is pure cross-phase hits.
  core::engine_stats search_cache;
  core::engine_stats validation_cache;

  /// Held-out fidelity of the session surrogate (set when use_surrogate).
  std::optional<surrogate::hw_predictor::fidelity> surrogate_fidelity;
  bool trained_surrogate = false;  ///< true when this request trained the session GBT

  [[nodiscard]] const core::evaluation& ours_latency() const { return front.at(ours_latency_index); }
  [[nodiscard]] const core::evaluation& ours_energy() const { return front.at(ours_energy_index); }
  /// The single pick selected by `orientation`.
  [[nodiscard]] const core::evaluation& best() const;

  /// Shippable summary (see core::serialization): the validated front with
  /// its headline scalars, entries labeled `front-<i>` plus `+ours-L` /
  /// `+ours-E` tags on the picks.
  [[nodiscard]] core::report_summary summary() const;
};

}  // namespace mapcq::serving
