#include "serving/service_group.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/hashing.h"

namespace mapcq::serving {

service_group::service_group(group_options group, service_options service)
    : group_opt_(group), service_opt_(std::move(service)) {
  if (group_opt_.shards == 0)
    throw std::invalid_argument("service_group: shards must be at least 1");
  if (group_opt_.virtual_nodes == 0)
    throw std::invalid_argument("service_group: virtual_nodes must be at least 1");
  build_shards(group_opt_.shards);
}

void service_group::build_shards(std::size_t count) {
  shards_.clear();
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    shards_.push_back(std::make_unique<mapping_service>(service_opt_));
  // Replaying the full sequence (replacements included) reproduces every
  // registration generation, so session keys — and the snapshot filenames
  // derived from them — match across rebuilds.
  for (const auto& reg : registrations_) {
    for (const auto& shard : shards_) {
      if (const nn::network* net = std::get_if<nn::network>(&reg))
        shard->register_network(*net);
      else
        shard->register_platform(std::get<soc::platform>(reg));
    }
  }
  // The ring hashes "shard-<i>#<v>" labels, not shard object identities:
  // the same (count, virtual_nodes) always yields the same ring in any
  // process, which is what lets a restarted group route a session to the
  // shard holding its snapshot.
  ring_.clear();
  ring_.reserve(count * group_opt_.virtual_nodes);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t v = 0; v < group_opt_.virtual_nodes; ++v) {
      const std::string label = "shard-" + std::to_string(i) + "#" + std::to_string(v);
      ring_.push_back(ring_point{util::stable_hash64(label), i});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const ring_point& a, const ring_point& b) {
    return a.point < b.point || (a.point == b.point && a.shard < b.shard);
  });
}

std::size_t service_group::route(const std::string& lane) const {
  const std::uint64_t h = util::stable_hash64(lane);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const ring_point& p, std::uint64_t key) { return p.point < key; });
  return it == ring_.end() ? ring_.front().shard : it->shard;
}

void service_group::register_network(const nn::network& net) {
  const std::unique_lock<std::shared_mutex> lock{mu_};
  for (const auto& shard : shards_) shard->register_network(net);
  registrations_.emplace_back(net);
}

void service_group::register_platform(const soc::platform& plat) {
  const std::unique_lock<std::shared_mutex> lock{mu_};
  for (const auto& shard : shards_) shard->register_platform(plat);
  registrations_.emplace_back(plat);
}

mapping_report service_group::map(const mapping_request& req) {
  // The routed shard is resolved and the call issued under the reader
  // lock: a concurrent reshard() waits for in-flight requests instead of
  // destroying the shard under them.
  const std::shared_lock<std::shared_mutex> lock{mu_};
  return shards_[route(shards_.front()->fairness_lane(req))]->map(req);
}

std::shared_future<mapping_report> service_group::submit(mapping_request req) {
  const std::shared_lock<std::shared_mutex> lock{mu_};
  const std::size_t target = route(shards_.front()->fairness_lane(req));
  return shards_[target]->submit(std::move(req));
}

std::size_t service_group::shard_index_for(const mapping_request& req) {
  const std::shared_lock<std::shared_mutex> lock{mu_};
  return route(shards_.front()->fairness_lane(req));
}

std::size_t service_group::snapshot_all() {
  const std::shared_lock<std::shared_mutex> lock{mu_};
  std::size_t written = 0;
  for (const auto& shard : shards_) written += shard->spill_sessions();
  return written;
}

void service_group::carry_shard_counters(const mapping_service& svc) {
  carried_.sessions_evicted += svc.sessions_evicted();
  carried_.sessions_spilled += svc.sessions_spilled();
  carried_.spill_failures += svc.spill_failures();
  carried_.sessions_restored += svc.sessions_restored();
  carried_.restore_failures += svc.restore_failures();
  const scheduler_stats sched = svc.scheduler();
  carried_.scheduler.submitted += sched.submitted;
  carried_.scheduler.admitted += sched.admitted;
  carried_.scheduler.coalesced += sched.coalesced;
  carried_.scheduler.rejected += sched.rejected;
  carried_.scheduler.expired += sched.expired;
  carried_.scheduler.completed += sched.completed;
  carried_.scheduler.failed += sched.failed;
  // Gauges (queued/inflight, per-lane breakdowns, cache_bytes) die with the
  // shard: carrying them would report load on hardware that no longer
  // exists.
  const core::engine_stats eng = svc.engine_totals();
  carried_.engines.hits += eng.hits;
  carried_.engines.misses += eng.misses;
  carried_.engines.dedup += eng.dedup;
  carried_.engines.inflight += eng.inflight;
  carried_.engines.evictions += eng.evictions;
  carried_.engines.invalidated += eng.invalidated;
}

void service_group::reshard(std::size_t new_shards) {
  if (new_shards == 0) throw std::invalid_argument("service_group: shards must be at least 1");
  const std::unique_lock<std::shared_mutex> lock{mu_};
  if (service_opt_.snapshot.directory.empty())
    throw std::logic_error(
        "service_group: reshard requires a snapshot directory "
        "(service.snapshot.directory) — without one every warm session would be discarded");
  // Spill first (the warm state to migrate), then tear down — shard
  // destruction joins each scheduler's workers, so by the time the new
  // topology exists no old-shard request is still running.
  for (const auto& shard : shards_) {
    shard->spill_sessions();
    carry_shard_counters(*shard);
  }
  shards_.clear();
  build_shards(new_shards);
  ++carried_.reshards;
}

group_stats service_group::stats() const {
  const std::shared_lock<std::shared_mutex> lock{mu_};
  group_stats g = carried_;
  g.shards = shards_.size();
  for (const auto& shard : shards_) {
    g.sessions += shard->session_count();
    g.sessions_evicted += shard->sessions_evicted();
    g.sessions_spilled += shard->sessions_spilled();
    g.spill_failures += shard->spill_failures();
    g.sessions_restored += shard->sessions_restored();
    g.restore_failures += shard->restore_failures();
    const scheduler_stats sched = shard->scheduler();
    g.scheduler.submitted += sched.submitted;
    g.scheduler.admitted += sched.admitted;
    g.scheduler.coalesced += sched.coalesced;
    g.scheduler.rejected += sched.rejected;
    g.scheduler.expired += sched.expired;
    g.scheduler.completed += sched.completed;
    g.scheduler.failed += sched.failed;
    g.scheduler.queued += sched.queued;
    g.scheduler.inflight += sched.inflight;
    for (const auto& [lane, n] : sched.inflight_per_session)
      g.scheduler.inflight_per_session[lane] += n;
    const core::engine_stats eng = shard->engine_totals();
    g.engines.hits += eng.hits;
    g.engines.misses += eng.misses;
    g.engines.dedup += eng.dedup;
    g.engines.inflight += eng.inflight;
    g.engines.evictions += eng.evictions;
    g.engines.invalidated += eng.invalidated;
    g.engines.cache_bytes += eng.cache_bytes;
  }
  return g;
}

std::size_t service_group::shard_count() const {
  const std::shared_lock<std::shared_mutex> lock{mu_};
  return shards_.size();
}

mapping_service& service_group::shard(std::size_t index) {
  const std::shared_lock<std::shared_mutex> lock{mu_};
  return *shards_.at(index);
}

}  // namespace mapcq::serving
