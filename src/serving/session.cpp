#include "serving/session.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/dynamic_transform.h"
#include "perf/energy_model.h"
#include "perf/latency_model.h"
#include "surrogate/features.h"

namespace mapcq::serving {

namespace {

core::evaluator_options strip_predictor(core::evaluator_options opt) {
  opt.predictor = nullptr;
  return opt;
}

bool same_bench(const surrogate::benchmark_options& a, const surrogate::benchmark_options& b) {
  return a.samples == b.samples && a.noise_stddev == b.noise_stddev && a.seed == b.seed &&
         a.model.bandwidth_contention == b.model.bandwidth_contention &&
         a.model.enable_contention == b.model.enable_contention;
}

bool same_gbt(const surrogate::gbt_params& a, const surrogate::gbt_params& b) {
  return a.n_trees == b.n_trees && a.learning_rate == b.learning_rate &&
         a.subsample == b.subsample && a.seed == b.seed && a.log_target == b.log_target &&
         a.tree.max_depth == b.tree.max_depth &&
         a.tree.min_samples_leaf == b.tree.min_samples_leaf && a.tree.lambda == b.tree.lambda &&
         a.tree.min_gain == b.tree.min_gain;
}

}  // namespace

mapping_session::mapping_session(std::string key, std::shared_ptr<const nn::network> net,
                                 std::shared_ptr<const soc::platform> plat,
                                 core::evaluator_options eval_opt, int ratio_levels,
                                 std::uint64_t ranking_seed, core::engine_options engine_opt,
                                 surrogate::refresh_options refresh_opt)
    : key_(std::move(key)),
      net_(std::move(net)),
      plat_(std::move(plat)),
      eval_opt_(strip_predictor(std::move(eval_opt))),
      ranking_seed_(ranking_seed),
      engine_opt_(engine_opt),
      refresh_opt_(refresh_opt),
      // CUs reserved by co-residents leave the mapping permutation entirely:
      // the search proposes only mappings this session may actually run.
      space_(*net_, *plat_, ratio_levels, eval_opt_.contention.reserved_units()),
      analytic_eval_(*net_, *plat_, eval_opt_, ranking_seed_),
      analytic_engine_(analytic_eval_, engine_opt_) {}

mapping_session::~mapping_session() {
  // Quiesce the ground-truth tap before members destruct: the setter
  // blocks until in-flight tap invocations return, so after this line no
  // engine worker can call into the refresh pipeline (whose destructor —
  // refresh_ is declared last — then drains any pending refit while the
  // predictors and engines are all still alive).
  if (refresh_) analytic_engine_.set_ground_truth_tap(nullptr);
}

surrogate::dataset mapping_session::ground_truth_rows(const core::configuration& config) const {
  // Re-derive the plan the analytic evaluator just executed and label every
  // scheduled sublayer with the analytic models directly — no measurement
  // noise: these are the exact (features -> cost) pairs the surrogate
  // should have predicted for this candidate. The repeated transform
  // roughly doubles the cost of an analytic miss while refresh is enabled;
  // the alternative — carrying the stage_plan inside every `evaluation` —
  // would bloat each memo-cache entry for a default-off feature, so the
  // recompute is the deliberate trade (refresh is off by default).
  const core::dynamic_network dyn =
      core::transform(*net_, analytic_eval_.groups(), analytic_eval_.ranking(), config, *plat_,
                      eval_opt_.reorder);
  const perf::stage_plan& plan = dyn.plan;
  // Shared definition with the evaluator's surrogate query path, so logged
  // features line up with the ones the predictor is queried with.
  const std::size_t concurrency = plan.active_stages();
  surrogate::dataset rows;
  for (std::size_t i = 0; i < plan.stages(); ++i) {
    const soc::compute_unit& cu = plat_->unit(plan.cu_of_stage[i]);
    const std::size_t level = plan.dvfs_level[plan.cu_of_stage[i]];
    for (std::size_t j = 0; j < plan.groups(); ++j) {
      const auto& cost = plan.steps[i][j].cost;
      if (cost.empty()) continue;
      const auto feats = surrogate::featurize(cost, cu, level, concurrency);
      rows.add_row({feats.begin(), feats.end()},
                   perf::sublayer_latency_ms(cost, cu, level, concurrency, eval_opt_.model),
                   perf::sublayer_energy_mj(cost, cu, level, concurrency, eval_opt_.model));
    }
  }
  return rows;
}

void mapping_session::promote(std::shared_ptr<const surrogate::hw_predictor> next) {
  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  if (!surrogate_engine_) return;  // cannot happen: the pipeline requires a trained session
  // Keep the outgoing generation alive: batches planned before the epoch
  // swap still hold raw pointers into it (engine contract).
  retired_predictors_.push_back(std::move(predictor_));
  retired_evals_.push_back(std::move(surrogate_eval_));
  predictor_ = std::move(next);
  core::evaluator_options opt = eval_opt_;
  opt.predictor = predictor_.get();
  surrogate_eval_ = std::make_unique<core::evaluator>(*net_, *plat_, opt, ranking_seed_);
  surrogate_engine_->advance_epoch(*surrogate_eval_);
}

core::evaluation_engine& mapping_session::surrogate_engine(
    const surrogate::benchmark_options& bench, const surrogate::gbt_params& gbt,
    bool* trained_now) {
  bool install_tap = false;
  core::evaluation_engine* engine = nullptr;
  {
    const std::lock_guard<std::mutex> lock{surrogate_mu_};
    if (!predictor_) {
      // Train once per session (paper §V-E), then pin an evaluator/engine
      // pair to the fitted predictor so every later surrogate request reuses
      // both the model and the memo cache.
      const std::vector<const nn::network*> nets = {net_.get()};
      const surrogate::dataset data = surrogate::generate_benchmark(nets, *plat_, bench);
      surrogate::dataset_split parts = surrogate::split(data, 0.8, bench.seed ^ 0x5eed);
      predictor_ = std::make_shared<const surrogate::hw_predictor>(parts.train, gbt);
      fidelity_ = predictor_->evaluate(parts.test);
      bench_ = bench;
      gbt_ = gbt;
      core::evaluator_options opt = eval_opt_;
      opt.predictor = predictor_.get();
      surrogate_eval_ = std::make_unique<core::evaluator>(*net_, *plat_, opt, ranking_seed_);
      surrogate_engine_ = std::make_unique<core::evaluation_engine>(*surrogate_eval_, engine_opt_);
      if (refresh_opt_.enabled) {
        // The pipeline learns from the *analytic* engine's ground-truth
        // traffic (cache misses during analytic searches and validation).
        // Building it before installing the tap, inside this locked section,
        // is what lets the tap use `refresh_` without taking surrogate_mu_.
        refresh_ = std::make_unique<surrogate::refresh_pipeline>(
            refresh_opt_, gbt, std::move(parts.train), predictor_,
            [this](std::shared_ptr<const surrogate::hw_predictor> cand) {
              promote(std::move(cand));
            });
        install_tap = true;
      }
      if (trained_now) *trained_now = true;
    } else {
      if (!same_bench(bench_, bench) || !same_gbt(gbt_, gbt))
        throw std::invalid_argument(
            "mapping_session: surrogate knobs differ from the session's trained predictor "
            "(sessions are immutable; change the evaluator options or ranking seed to fork one)");
      if (trained_now) *trained_now = false;
    }
    engine = surrogate_engine_.get();
  }
  // The tap is installed only after surrogate_mu_ is released: a firing tap
  // holds the engine's tap lock while a synchronous refit's promotion
  // callback re-takes surrogate_mu_, so registering under surrogate_mu_
  // inverts that order (lock cycle -> potential deadlock under TSan).
  // Racing callers are safe — `refresh_` is already set, training is
  // serialized above, and analytic traffic in the gap merely goes
  // unobserved.
  if (install_tap)
    analytic_engine_.set_ground_truth_tap(
        [this](const core::configuration& config, const core::evaluation&) {
          refresh_->observe(ground_truth_rows(config));
        });
  return *engine;
}

bool mapping_session::surrogate_trained() const {
  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  return predictor_ != nullptr;
}

std::optional<surrogate::hw_predictor::fidelity> mapping_session::surrogate_fidelity() const {
  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  return fidelity_;
}

std::optional<surrogate::refresh_stats> mapping_session::refresh_stats() const {
  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  if (!refresh_) return std::nullopt;
  return refresh_->stats();
}

bool mapping_session::refresh_now() {
  surrogate::refresh_pipeline* pipeline = nullptr;
  {
    // Drop surrogate_mu_ before the attempt: a promotion re-takes it.
    const std::lock_guard<std::mutex> lock{surrogate_mu_};
    pipeline = refresh_.get();
  }
  return pipeline ? pipeline->refresh_now() : false;
}

core::engine_stats mapping_session::surrogate_cache_stats() const {
  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  return surrogate_engine_ ? surrogate_engine_->stats() : core::engine_stats{};
}

session_snapshot mapping_session::snapshot() {
  session_snapshot snap;
  snap.session_key = key_;
  snap.analytic_entries = analytic_engine_.export_cache();

  // Export the reservoir BEFORE taking surrogate_mu_: export_log drains the
  // background refit worker, and a refit's promotion callback re-takes
  // surrogate_mu_ — draining under the lock would deadlock. The reservoir
  // is its own consistent unit; the (predictor, epoch, entries) triple
  // below is captured atomically regardless.
  surrogate::refresh_pipeline* pipeline = nullptr;
  {
    const std::lock_guard<std::mutex> lock{surrogate_mu_};
    pipeline = refresh_.get();
  }
  std::optional<session_snapshot::refresh_state> reservoir;
  if (pipeline) {
    surrogate::refresh_pipeline::log_state st = pipeline->export_log();
    reservoir =
        session_snapshot::refresh_state{pipeline->base_training_set(), std::move(st.rows), st.seen};
  }

  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  if (predictor_) {
    session_snapshot::surrogate_state ss;
    ss.bench = bench_;
    ss.gbt = gbt_;
    ss.fidelity = *fidelity_;
    const surrogate::gbt_regressor& lat = predictor_->latency_model();
    ss.latency = surrogate::fitted_ensemble{lat.trees(), lat.base(), lat.train_rmse()};
    const surrogate::gbt_regressor& en = predictor_->energy_model();
    ss.energy = surrogate::fitted_ensemble{en.trees(), en.base(), en.train_rmse()};
    ss.predictor_epoch = surrogate_engine_->epoch();
    ss.entries = surrogate_engine_->export_cache();
    snap.surrogate = std::move(ss);
    snap.refresh = std::move(reservoir);
  }
  return snap;
}

void mapping_session::restore(const session_snapshot& snap) {
  if (snap.session_key != key_)
    throw snapshot_error("session key mismatch (snapshot is for '" + snap.session_key + "')");
  bool install_tap = false;
  {
    const std::lock_guard<std::mutex> lock{surrogate_mu_};
    install_tap = restore_locked(snap);
  }
  // Outside surrogate_mu_ for the same lock-ordering reason as in
  // surrogate_engine(): tap registration must not nest inside the mutex the
  // tap's promotion path takes.
  if (install_tap)
    analytic_engine_.set_ground_truth_tap(
        [this](const core::configuration& config, const core::evaluation&) {
          refresh_->observe(ground_truth_rows(config));
        });
}

bool mapping_session::restore_locked(const session_snapshot& snap) {
  if (predictor_ || analytic_engine_.stats().lookups() != 0 || analytic_engine_.size() != 0)
    throw std::logic_error("mapping_session::restore: session is not fresh");
  analytic_engine_.import_cache(snap.analytic_entries);
  if (!snap.surrogate) return false;

  const session_snapshot::surrogate_state& ss = *snap.surrogate;
  // Adopt the fitted ensembles directly — no benchmark generation, no
  // boosting loop; the restored predictor is bit-identical to the
  // snapshotted one, so imported cache entries and fresh predictions agree.
  predictor_ = std::make_shared<const surrogate::hw_predictor>(
      surrogate::gbt_regressor(ss.latency, ss.gbt.learning_rate, ss.gbt.log_target),
      surrogate::gbt_regressor(ss.energy, ss.gbt.learning_rate, ss.gbt.log_target));
  fidelity_ = ss.fidelity;
  bench_ = ss.bench;
  gbt_ = ss.gbt;
  core::evaluator_options opt = eval_opt_;
  opt.predictor = predictor_.get();
  surrogate_eval_ = std::make_unique<core::evaluator>(*net_, *plat_, opt, ranking_seed_);
  surrogate_engine_ = std::make_unique<core::evaluation_engine>(*surrogate_eval_, engine_opt_);
  surrogate_engine_->import_cache(ss.entries);

  if (refresh_opt_.enabled && snap.refresh) {
    // Same construction order as the training path: pipeline inside this
    // locked section (so the tap may use refresh_ lock-free), tap
    // registration deferred to the caller, outside surrogate_mu_.
    refresh_ = std::make_unique<surrogate::refresh_pipeline>(
        refresh_opt_, gbt_, snap.refresh->base_train, predictor_,
        [this](std::shared_ptr<const surrogate::hw_predictor> cand) { promote(std::move(cand)); });
    refresh_->restore_log({snap.refresh->log_rows, snap.refresh->log_seen});
    return true;
  }
  return false;
}

}  // namespace mapcq::serving
