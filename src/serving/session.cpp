#include "serving/session.h"

#include <stdexcept>
#include <utility>
#include <vector>

namespace mapcq::serving {

namespace {

core::evaluator_options strip_predictor(core::evaluator_options opt) {
  opt.predictor = nullptr;
  return opt;
}

bool same_bench(const surrogate::benchmark_options& a, const surrogate::benchmark_options& b) {
  return a.samples == b.samples && a.noise_stddev == b.noise_stddev && a.seed == b.seed &&
         a.model.bandwidth_contention == b.model.bandwidth_contention &&
         a.model.enable_contention == b.model.enable_contention;
}

bool same_gbt(const surrogate::gbt_params& a, const surrogate::gbt_params& b) {
  return a.n_trees == b.n_trees && a.learning_rate == b.learning_rate &&
         a.subsample == b.subsample && a.seed == b.seed && a.log_target == b.log_target &&
         a.tree.max_depth == b.tree.max_depth &&
         a.tree.min_samples_leaf == b.tree.min_samples_leaf && a.tree.lambda == b.tree.lambda &&
         a.tree.min_gain == b.tree.min_gain;
}

}  // namespace

mapping_session::mapping_session(std::string key, std::shared_ptr<const nn::network> net,
                                 std::shared_ptr<const soc::platform> plat,
                                 core::evaluator_options eval_opt, int ratio_levels,
                                 std::uint64_t ranking_seed, core::engine_options engine_opt)
    : key_(std::move(key)),
      net_(std::move(net)),
      plat_(std::move(plat)),
      eval_opt_(strip_predictor(std::move(eval_opt))),
      ranking_seed_(ranking_seed),
      engine_opt_(engine_opt),
      space_(*net_, *plat_, ratio_levels),
      analytic_eval_(*net_, *plat_, eval_opt_, ranking_seed_),
      analytic_engine_(analytic_eval_, engine_opt_) {}

core::evaluation_engine& mapping_session::surrogate_engine(
    const surrogate::benchmark_options& bench, const surrogate::gbt_params& gbt,
    bool* trained_now) {
  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  if (!predictor_) {
    // Train once per session (paper §V-E), then pin an evaluator/engine pair
    // to the fitted predictor so every later surrogate request reuses both
    // the model and the memo cache.
    const std::vector<const nn::network*> nets = {net_.get()};
    const surrogate::dataset data = surrogate::generate_benchmark(nets, *plat_, bench);
    const surrogate::dataset_split parts = surrogate::split(data, 0.8, bench.seed ^ 0x5eed);
    predictor_ = std::make_unique<surrogate::hw_predictor>(parts.train, gbt);
    fidelity_ = predictor_->evaluate(parts.test);
    bench_ = bench;
    gbt_ = gbt;
    core::evaluator_options opt = eval_opt_;
    opt.predictor = predictor_.get();
    surrogate_eval_ = std::make_unique<core::evaluator>(*net_, *plat_, opt, ranking_seed_);
    surrogate_engine_ = std::make_unique<core::evaluation_engine>(*surrogate_eval_, engine_opt_);
    if (trained_now) *trained_now = true;
    return *surrogate_engine_;
  }
  if (!same_bench(bench_, bench) || !same_gbt(gbt_, gbt))
    throw std::invalid_argument(
        "mapping_session: surrogate knobs differ from the session's trained predictor "
        "(sessions are immutable; change the evaluator options or ranking seed to fork one)");
  if (trained_now) *trained_now = false;
  return *surrogate_engine_;
}

bool mapping_session::surrogate_trained() const {
  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  return predictor_ != nullptr;
}

std::optional<surrogate::hw_predictor::fidelity> mapping_session::surrogate_fidelity() const {
  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  return fidelity_;
}

core::engine_stats mapping_session::surrogate_cache_stats() const {
  const std::lock_guard<std::mutex> lock{surrogate_mu_};
  return surrogate_engine_ ? surrogate_engine_->stats() : core::engine_stats{};
}

}  // namespace mapcq::serving
