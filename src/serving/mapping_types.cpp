#include "serving/mapping_types.h"

#include <sstream>
#include <stdexcept>

namespace mapcq::serving {

std::string request_fingerprint(const mapping_request& req) {
  // Everything that can change the produced report, spelled out field by
  // field (floats at full precision). `ga.threads` is excluded (results are
  // documented thread-count independent) as are priority/deadline.
  std::ostringstream os;
  os.precision(17);
  const core::ga_options& g = req.ga;
  const core::evaluator_options& e = req.eval;
  os << "net=" << req.network << "|plat=" << req.platform << "|rank=" << std::hex
     << req.ranking_seed << std::dec << "|ratios=" << req.ratio_levels;
  os << "|ga=" << g.generations << "," << g.population << "," << g.elite_fraction << ","
     << g.crossover_prob << "," << g.ratio_mutation_prob << "," << g.forward_mutation_prob << ","
     << g.mapping_swap_prob << "," << g.dvfs_mutation_prob << "," << g.accuracy_elites << ","
     << static_cast<int>(g.selection) << "," << g.seed;
  os << "|isl=" << g.island.islands << "," << g.island.migration_interval << ","
     << g.island.migrants << "," << g.island.polish_fraction;
  os << "|pfl=";
  for (const core::island_assignment& a : g.portfolio.islands)
    os << static_cast<int>(a.algorithm) << ":" << static_cast<int>(a.orientation) << ";";
  os << "|sa=" << g.portfolio.sa.initial_temperature << "," << g.portfolio.sa.cooling;
  os << "|pre=" << g.portfolio.prefilter.enabled << "," << g.portfolio.prefilter.quantile << ","
     << g.portfolio.prefilter.warmup_generations;
  // The predictor pointer must key too: a foreign-predictor request is
  // rejected by map(), and must not coalesce onto a valid request's report.
  os << "|pred=" << static_cast<const void*>(e.predictor);
  os << "|eval=" << e.population << "," << e.reorder << "," << e.dynamic_exits << ","
     << e.count_idle_power << "," << e.model.enable_contention << ","
     << e.model.bandwidth_contention << "," << e.limits.latency_target_ms << ","
     << e.limits.energy_target_mj << "," << e.limits.fmap_reuse_cap;
  os << "|thermal=";
  if (e.thermal) {
    os << e.thermal->ambient_c << "," << e.thermal->r_thermal_c_per_w << "," << e.thermal->tau_s
       << "," << e.thermal->throttle_c;
  } else {
    os << "none";
  }
  // Co-location scenario (only when non-idle, so legacy fingerprints — and
  // the traces capturing them — stay byte-identical for idle requests).
  if (!e.contention.idle()) os << "|scen=" << soc::scenario_key(e.contention);
  os << "|surr=" << req.use_surrogate;
  // The surrogate training knobs shape the report whenever a GBT is in the
  // loop: surrogate-backed search, or analytic search behind the pre-filter.
  if (req.use_surrogate || req.ga.portfolio.prefilter.enabled) {
    const surrogate::benchmark_options& b = req.bench;
    const surrogate::gbt_params& t = req.gbt;
    os << "|bench=" << b.samples << "," << b.noise_stddev << "," << b.seed << ","
       << b.model.enable_contention << "," << b.model.bandwidth_contention;
    os << "|gbt=" << t.n_trees << "," << t.learning_rate << "," << t.subsample << "," << t.seed
       << "," << t.log_target << "," << t.tree.max_depth << "," << t.tree.min_samples_leaf << ","
       << t.tree.lambda << "," << t.tree.min_gain;
  }
  os << "|orient=" << static_cast<int>(req.orientation) << "|slack=" << req.ours_e_accuracy_slack
     << "," << req.ours_l_accuracy_slack;
  return os.str();
}

const core::evaluation& mapping_report::best() const {
  switch (orientation) {
    case objective_orientation::latency:
      return ours_latency();
    case objective_orientation::energy:
      return ours_energy();
    case objective_orientation::balanced:
      break;
  }
  if (front.empty()) throw std::out_of_range("mapping_report::best: empty front");
  std::size_t best = 0;
  for (std::size_t i = 1; i < front.size(); ++i)
    if (front[i].objective < front[best].objective) best = i;
  return front[best];
}

core::report_summary mapping_report::summary() const {
  core::report_summary s;
  s.network = network;
  s.platform = platform;
  s.ours_latency_index = ours_latency_index;
  s.ours_energy_index = ours_energy_index;
  if (scheduler) {
    core::scheduler_note note;
    note.submitted = scheduler->submitted;
    note.admitted = scheduler->admitted;
    note.coalesced = scheduler->coalesced;
    note.rejected = scheduler->rejected;
    note.expired = scheduler->expired;
    note.completed = scheduler->completed;
    note.failed = scheduler->failed;
    note.fused = scheduler->fused;
    note.fused_batches = scheduler->fused_batches;
    s.scheduler = note;
  }
  if (refresh) {
    core::refresh_note note;
    note.observed = refresh->observed;
    note.logged = refresh->logged;
    note.attempts = refresh->attempts;
    note.promotions = refresh->promotions;
    note.rejections = refresh->rejections;
    note.epoch = refresh->epoch;
    note.last_candidate_tau = refresh->last_candidate_tau;
    note.last_incumbent_tau = refresh->last_incumbent_tau;
    s.refresh = note;
  }
  s.scenario = scenario;
  s.entries.reserve(front.size());
  for (std::size_t i = 0; i < front.size(); ++i) {
    const core::evaluation& e = front[i];
    core::summary_entry entry;
    entry.label = "front-" + std::to_string(i);
    if (i == ours_latency_index) entry.label += "+ours-L";
    if (i == ours_energy_index) entry.label += "+ours-E";
    entry.config = e.config;
    entry.feasible = e.feasible;
    entry.objective = e.objective;
    entry.avg_latency_ms = e.avg_latency_ms;
    entry.avg_energy_mj = e.avg_energy_mj;
    entry.accuracy_pct = e.accuracy_pct;
    entry.fmap_reuse_pct = e.fmap_reuse_pct;
    s.entries.push_back(std::move(entry));
  }
  return s;
}

}  // namespace mapcq::serving
