#include "serving/mapping_types.h"

#include <stdexcept>

namespace mapcq::serving {

const core::evaluation& mapping_report::best() const {
  switch (orientation) {
    case objective_orientation::latency:
      return ours_latency();
    case objective_orientation::energy:
      return ours_energy();
    case objective_orientation::balanced:
      break;
  }
  if (front.empty()) throw std::out_of_range("mapping_report::best: empty front");
  std::size_t best = 0;
  for (std::size_t i = 1; i < front.size(); ++i)
    if (front[i].objective < front[best].objective) best = i;
  return front[best];
}

core::report_summary mapping_report::summary() const {
  core::report_summary s;
  s.network = network;
  s.platform = platform;
  s.ours_latency_index = ours_latency_index;
  s.ours_energy_index = ours_energy_index;
  s.entries.reserve(front.size());
  for (std::size_t i = 0; i < front.size(); ++i) {
    const core::evaluation& e = front[i];
    core::summary_entry entry;
    entry.label = "front-" + std::to_string(i);
    if (i == ours_latency_index) entry.label += "+ours-L";
    if (i == ours_energy_index) entry.label += "+ours-E";
    entry.config = e.config;
    entry.feasible = e.feasible;
    entry.objective = e.objective;
    entry.avg_latency_ms = e.avg_latency_ms;
    entry.avg_energy_mj = e.avg_energy_mj;
    entry.accuracy_pct = e.accuracy_pct;
    entry.fmap_reuse_pct = e.fmap_reuse_pct;
    s.entries.push_back(std::move(entry));
  }
  return s;
}

}  // namespace mapcq::serving
