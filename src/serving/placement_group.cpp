#include "serving/placement_group.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mapcq::serving {

placement_group::placement_group(mapping_service& service, const soc::platform& plat,
                                 soc::contention_context base)
    : service_(&service), plat_(plat), base_(std::move(base)), ledger_(plat_.size()) {
  plat_.validate();
  base_.validate(plat_);
  // Base residents claim their units in the ledger so members cannot take
  // them; they are not members (leave() cannot remove them).
  for (const soc::resident_load& r : base_.residents) ledger_.reserve(r);
}

void placement_group::join(const soc::resident_load& member) {
  const std::lock_guard<std::mutex> lock{mu_};
  ledger_.reserve(member);  // validates; throws on clash, leaves state intact
  member_names_.push_back(member.name);
}

void placement_group::leave(const std::string& member) {
  const std::lock_guard<std::mutex> lock{mu_};
  const auto it = std::find(member_names_.begin(), member_names_.end(), member);
  if (it == member_names_.end())
    throw std::invalid_argument("placement_group: '" + member + "' is not a member");
  ledger_.release(member);
  member_names_.erase(it);
}

soc::contention_context placement_group::scenario_for(const std::string& member) const {
  const std::lock_guard<std::mutex> lock{mu_};
  if (std::find(member_names_.begin(), member_names_.end(), member) == member_names_.end())
    throw std::invalid_argument("placement_group: '" + member + "' is not a member");
  soc::contention_context ctx = base_;
  ctx.residents.clear();
  // Ledger order = base residents first, then members in join order; every
  // registered load except the member itself contends with it.
  for (const soc::resident_load& r : ledger_.residents())
    if (r.name != member) ctx.residents.push_back(r);
  return ctx;
}

mapping_request placement_group::request_for(const std::string& member,
                                             mapping_request req) const {
  req.platform = plat_.name;
  req.eval.contention = scenario_for(member);
  return req;
}

mapping_report placement_group::map(const std::string& member, const mapping_request& req) {
  return service_->map(request_for(member, req));
}

std::shared_future<mapping_report> placement_group::submit(const std::string& member,
                                                           mapping_request req) {
  return service_->submit(request_for(member, std::move(req)));
}

std::vector<soc::resident_load> placement_group::members() const {
  const std::lock_guard<std::mutex> lock{mu_};
  std::vector<soc::resident_load> out;
  for (const soc::resident_load& r : ledger_.residents())
    if (std::find(member_names_.begin(), member_names_.end(), r.name) != member_names_.end())
      out.push_back(r);
  return out;
}

bool placement_group::unit_reserved(std::size_t unit) const {
  const std::lock_guard<std::mutex> lock{mu_};
  return ledger_.reserved(unit);
}

}  // namespace mapcq::serving
