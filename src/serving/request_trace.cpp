#include "serving/request_trace.h"

#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/stats.h"

namespace mapcq::serving {

namespace {

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Monotonic-counter delta (gauges recomputed by the caller's snapshot).
scheduler_stats operator-(scheduler_stats after, const scheduler_stats& before) {
  after.submitted -= before.submitted;
  after.admitted -= before.admitted;
  after.coalesced -= before.coalesced;
  after.rejected -= before.rejected;
  after.expired -= before.expired;
  after.completed -= before.completed;
  after.failed -= before.failed;
  return after;
}

}  // namespace

void trace_log::record(const std::string& lane, const std::string& fingerprint, int priority,
                       std::chrono::milliseconds deadline) {
  const auto now = clock::now();
  const std::lock_guard<std::mutex> lock{mu_};
  if (!anchored_) {
    origin_ = now;
    anchored_ = true;
  }
  core::trace_record r;
  r.arrival_us =
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(now - origin_).count());
  r.priority = priority;
  r.deadline_ms = static_cast<std::uint64_t>(deadline.count() > 0 ? deadline.count() : 0);
  r.lane = lane;
  r.fingerprint = fingerprint;
  records_.push_back(std::move(r));
}

std::size_t trace_log::size() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return records_.size();
}

std::vector<core::trace_record> trace_log::snapshot() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return records_;
}

void latency_watch::add(std::shared_future<mapping_report> future, clock::time_point submitted) {
  entries_.push_back(entry{std::move(future), submitted});
}

void latency_watch::rebase(clock::time_point at) {
  for (entry& e : entries_)
    if (e.origin < at) e.origin = at;
}

std::vector<double> latency_watch::wait_all(std::chrono::microseconds poll) {
  std::vector<double> latencies(entries_.size(), -1.0);
  std::size_t remaining = entries_.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (latencies[i] >= 0.0) continue;
      // wait_for(0) is ready for values *and* exceptions (failed or
      // expired requests measure their sojourn too, without get()).
      if (entries_[i].future.wait_for(std::chrono::seconds{0}) == std::future_status::ready) {
        latencies[i] = ms_between(entries_[i].origin, clock::now());
        --remaining;
        progressed = true;
      }
    }
    if (remaining > 0 && !progressed) std::this_thread::sleep_for(poll);
  }
  return latencies;
}

replay_result replay_trace(mapping_service& service, const std::vector<core::trace_record>& trace,
                           const mapping_request& base, const std::vector<std::string>& networks,
                           const replay_options& opt) {
  if (trace.empty()) throw std::invalid_argument("replay_trace: empty trace");
  if (networks.empty()) throw std::invalid_argument("replay_trace: no networks to replay onto");

  const std::size_t count =
      opt.max_requests > 0 && opt.max_requests < trace.size() ? opt.max_requests : trace.size();

  // First-appearance numbering reconstructs the capture's identity
  // structure: lanes pick the target network, (lane, fingerprint) pairs
  // pick the seed — see the header's file comment.
  std::unordered_map<std::string, std::size_t> lane_slot;
  std::unordered_map<std::string, std::uint64_t> pair_slot;

  const scheduler_stats before = service.scheduler();
  if (opt.synchronous) service.pause_scheduler();

  latency_watch watch;
  const clock::time_point start = clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    const core::trace_record& r = trace[i];
    mapping_request req = base;
    const std::size_t lane_idx = lane_slot.emplace(r.lane, lane_slot.size()).first->second;
    req.network = networks[lane_idx % networks.size()];
    // '\n' appears in neither part, so the concatenation is injective
    // (mirrors the scheduler's own pending-key construction).
    const std::uint64_t pair_idx =
        pair_slot.emplace(r.lane + '\n' + r.fingerprint, pair_slot.size()).first->second;
    req.ga.seed = base.ga.seed + pair_idx;
    req.priority = r.priority;
    req.deadline = std::chrono::milliseconds{r.deadline_ms};
    if (!opt.synchronous && opt.speed > 0.0) {
      const auto offset = std::chrono::microseconds{
          static_cast<std::int64_t>(static_cast<double>(r.arrival_us) / opt.speed)};
      std::this_thread::sleep_until(start + offset);
    }
    watch.add(service.submit(std::move(req)), clock::now());
  }

  if (opt.synchronous) {
    // Everything is queued (duplicates already coalesced); latency is
    // meaningful only from the release.
    watch.rebase(clock::now());
    service.resume_scheduler();
  }

  std::vector<double> latencies = watch.wait_all();
  const clock::time_point end = clock::now();

  replay_result result;
  result.requests = count;
  result.distinct = pair_slot.size();
  result.stats = service.scheduler() - before;
  result.p50_ms = util::percentile(latencies, 50.0);
  result.p95_ms = util::percentile(latencies, 95.0);
  result.p99_ms = util::percentile(latencies, 99.0);
  result.max_ms = util::max_of(latencies);
  result.wall_ms = ms_between(start, end);
  return result;
}

}  // namespace mapcq::serving
