#include "serving/session_snapshot.h"

#include <fstream>
#include <sstream>
#include <type_traits>
#include <utility>

#include "core/serialization.h"
#include "util/hashing.h"

namespace mapcq::serving {

namespace {

constexpr const char* snapshot_tag = "mapcq-snapshot-v1";

std::string next_line(std::istream& is, const char* what) {
  std::string line;
  if (!std::getline(is, line)) throw snapshot_error(std::string("missing ") + what);
  return line;
}

template <class... Ts>
void write_row(std::ostream& os, const char* key, const Ts&... values) {
  os << key;
  ((os << ' ' << values), ...);
  os << '\n';
}

template <class T>
void parse_token(const std::string& token, T& out) {
  if constexpr (std::is_floating_point_v<T>)
    out = static_cast<T>(std::stod(token));
  else if constexpr (std::is_signed_v<T>)
    out = static_cast<T>(std::stoll(token));
  else
    out = static_cast<T>(std::stoull(token));
}

/// Reads the next line as a mandatory `key v1 v2 ...` row (token-wise
/// std::sto* parsing, so "inf"/"nan" scalars round-trip).
template <class... Ts>
void read_row(std::istream& is, const char* key, Ts&... values) {
  std::istringstream ls{next_line(is, key)};
  std::string k;
  if (!(ls >> k) || k != key) throw snapshot_error(std::string("expected ") + key);
  const auto next = [&](auto& out) {
    std::string token;
    if (!(ls >> token)) throw snapshot_error(std::string("short row for ") + key);
    try {
      parse_token(token, out);
    } catch (const std::exception&) {
      throw snapshot_error(std::string("bad value for ") + key);
    }
  };
  (next(values), ...);
}

/// Reads a `key value...` line and returns everything after "key " verbatim
/// (session keys contain spaces).
std::string read_tail(std::istream& is, const char* key) {
  const std::string line = next_line(is, key);
  const std::string prefix = std::string(key) + ' ';
  if (line.rfind(prefix, 0) != 0) {
    if (line == key) return "";
    throw snapshot_error(std::string("expected ") + key);
  }
  return line.substr(prefix.size());
}

std::size_t read_sized(std::istream& is, const char* key) {
  std::size_t v = 0;
  read_row(is, key, v);
  return v;
}

bool read_flag(std::istream& is, const char* key) {
  std::size_t v = 0;
  read_row(is, key, v);
  if (v > 1) throw snapshot_error(std::string("bad flag for ") + key);
  return v == 1;
}

// --- evaluation lists -------------------------------------------------------

void write_entries(std::ostream& os, const char* key,
                   const std::vector<core::evaluation>& entries) {
  write_row(os, key, entries.size());
  for (const core::evaluation& e : entries) core::write_evaluation(os, e);
}

std::vector<core::evaluation> read_entries(std::istream& is, const char* key) {
  const std::size_t n = read_sized(is, key);
  std::vector<core::evaluation> entries;
  entries.reserve(n);
  // read_evaluation throws std::runtime_error; snapshot_from_text's outer
  // catch retypes it, keeping every failure a snapshot_error.
  for (std::size_t i = 0; i < n; ++i) entries.push_back(core::read_evaluation(is));
  return entries;
}

// --- fitted ensembles -------------------------------------------------------

void write_ensemble(std::ostream& os, const char* name, const surrogate::fitted_ensemble& ens) {
  os << "ensemble " << name << ' ' << ens.trees.size() << ' ' << ens.base << ' ' << ens.train_rmse
     << '\n';
  for (const surrogate::regression_tree& tree : ens.trees) {
    write_row(os, "tree", tree.depth(), tree.node_count());
    for (const surrogate::regression_tree::node& nd : tree.nodes())
      write_row(os, "node", nd.leaf ? 1 : 0, nd.feature, nd.threshold, nd.value, nd.gain, nd.left,
                nd.right);
  }
}

surrogate::fitted_ensemble read_ensemble(std::istream& is, const char* name) {
  std::size_t tree_count = 0;
  surrogate::fitted_ensemble ens;
  {
    std::istringstream ls{next_line(is, "ensemble")};
    std::string k;
    std::string got;
    if (!(ls >> k >> got) || k != "ensemble" || got != name)
      throw snapshot_error(std::string("expected ensemble ") + name);
    if (!(ls >> tree_count >> ens.base >> ens.train_rmse))
      throw snapshot_error(std::string("short ensemble header for ") + name);
  }
  ens.trees.reserve(tree_count);
  for (std::size_t t = 0; t < tree_count; ++t) {
    int depth = 0;
    std::size_t node_count = 0;
    read_row(is, "tree", depth, node_count);
    std::vector<surrogate::regression_tree::node> nodes;
    nodes.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      surrogate::regression_tree::node nd;
      std::size_t leaf = 0;
      read_row(is, "node", leaf, nd.feature, nd.threshold, nd.value, nd.gain, nd.left, nd.right);
      nd.leaf = leaf != 0;
      nodes.push_back(nd);
    }
    // The restore constructor validates structure (non-empty, child indices
    // in range); its invalid_argument is retyped by the outer catch.
    ens.trees.emplace_back(std::move(nodes), depth);
  }
  return ens;
}

// --- datasets ---------------------------------------------------------------

void write_dataset(std::ostream& os, const char* name, const surrogate::dataset& ds) {
  os << "dataset " << name << ' ' << ds.size() << '\n';
  for (std::size_t i = 0; i < ds.size(); ++i) {
    os << "row " << ds.x[i].size();
    for (const double v : ds.x[i]) os << ' ' << v;
    os << ' ' << ds.latency_ms[i] << ' ' << ds.energy_mj[i] << '\n';
  }
}

surrogate::dataset read_dataset(std::istream& is, const char* name) {
  std::size_t rows = 0;
  {
    std::istringstream ls{next_line(is, "dataset")};
    std::string k;
    std::string got;
    if (!(ls >> k >> got >> rows) || k != "dataset" || got != name)
      throw snapshot_error(std::string("expected dataset ") + name);
  }
  surrogate::dataset ds;
  for (std::size_t i = 0; i < rows; ++i) {
    std::istringstream ls{next_line(is, "dataset row")};
    std::string k;
    std::size_t width = 0;
    if (!(ls >> k >> width) || k != "row") throw snapshot_error("expected dataset row");
    std::vector<double> x(width);
    double lat = 0.0;
    double en = 0.0;
    const auto next = [&](double& out) {
      std::string token;
      if (!(ls >> token)) throw snapshot_error("short dataset row");
      try {
        parse_token(token, out);
      } catch (const std::exception&) {
        throw snapshot_error("bad value in dataset row");
      }
    };
    for (double& v : x) next(v);
    next(lat);
    next(en);
    ds.add_row(std::move(x), lat, en);
  }
  return ds;
}

session_snapshot parse_snapshot(std::istream& is) {
  if (next_line(is, "header") != snapshot_tag) throw snapshot_error("bad header");
  session_snapshot snap;
  snap.session_key = read_tail(is, "session_key");
  snap.analytic_entries = read_entries(is, "analytic_entries");

  if (read_flag(is, "surrogate")) {
    session_snapshot::surrogate_state ss;
    std::size_t contention = 0;
    read_row(is, "bench", ss.bench.samples, ss.bench.noise_stddev, ss.bench.seed,
             ss.bench.model.bandwidth_contention, contention);
    ss.bench.model.enable_contention = contention != 0;
    std::size_t log_target = 0;
    read_row(is, "gbt", ss.gbt.n_trees, ss.gbt.learning_rate, ss.gbt.subsample, ss.gbt.seed,
             log_target, ss.gbt.tree.max_depth, ss.gbt.tree.min_samples_leaf, ss.gbt.tree.lambda,
             ss.gbt.tree.min_gain);
    ss.gbt.log_target = log_target != 0;
    read_row(is, "fidelity", ss.fidelity.latency_rmse, ss.fidelity.latency_mape,
             ss.fidelity.latency_r2, ss.fidelity.energy_rmse, ss.fidelity.energy_mape,
             ss.fidelity.energy_r2);
    read_row(is, "predictor_epoch", ss.predictor_epoch);
    ss.latency = read_ensemble(is, "latency");
    ss.energy = read_ensemble(is, "energy");
    ss.entries = read_entries(is, "surrogate_entries");
    snap.surrogate = std::move(ss);
  }

  if (read_flag(is, "refresh")) {
    session_snapshot::refresh_state rs;
    rs.base_train = read_dataset(is, "base_train");
    rs.log_rows = read_dataset(is, "log");
    read_row(is, "log_seen", rs.log_seen);
    snap.refresh = std::move(rs);
  }
  return snap;
}

}  // namespace

snapshot_error::snapshot_error(const std::string& message)
    : std::runtime_error("snapshot: " + message) {}

std::string to_text(const session_snapshot& snap) {
  std::ostringstream os;
  os.precision(17);
  os << snapshot_tag << '\n';
  os << "session_key " << snap.session_key << '\n';
  write_entries(os, "analytic_entries", snap.analytic_entries);

  write_row(os, "surrogate", snap.surrogate ? 1 : 0);
  if (snap.surrogate) {
    const session_snapshot::surrogate_state& ss = *snap.surrogate;
    write_row(os, "bench", ss.bench.samples, ss.bench.noise_stddev, ss.bench.seed,
              ss.bench.model.bandwidth_contention, ss.bench.model.enable_contention ? 1 : 0);
    write_row(os, "gbt", ss.gbt.n_trees, ss.gbt.learning_rate, ss.gbt.subsample, ss.gbt.seed,
              ss.gbt.log_target ? 1 : 0, ss.gbt.tree.max_depth, ss.gbt.tree.min_samples_leaf,
              ss.gbt.tree.lambda, ss.gbt.tree.min_gain);
    write_row(os, "fidelity", ss.fidelity.latency_rmse, ss.fidelity.latency_mape,
              ss.fidelity.latency_r2, ss.fidelity.energy_rmse, ss.fidelity.energy_mape,
              ss.fidelity.energy_r2);
    write_row(os, "predictor_epoch", ss.predictor_epoch);
    write_ensemble(os, "latency", ss.latency);
    write_ensemble(os, "energy", ss.energy);
    write_entries(os, "surrogate_entries", ss.entries);
  }

  write_row(os, "refresh", snap.refresh ? 1 : 0);
  if (snap.refresh) {
    const session_snapshot::refresh_state& rs = *snap.refresh;
    write_dataset(os, "base_train", rs.base_train);
    write_dataset(os, "log", rs.log_rows);
    write_row(os, "log_seen", rs.log_seen);
  }
  return os.str();
}

session_snapshot snapshot_from_text(const std::string& text) {
  std::istringstream is{text};
  try {
    return parse_snapshot(is);
  } catch (const snapshot_error&) {
    throw;
  } catch (const std::exception& e) {
    // Embedded-block parsers (mapcq-eval-v1, the tree restore constructors)
    // throw runtime_error/invalid_argument; a snapshot consumer sees one
    // typed failure mode regardless of which section was corrupt.
    throw snapshot_error(e.what());
  }
}

void save_snapshot(const std::string& path, const session_snapshot& snap) {
  std::ofstream out{path};
  if (!out) throw snapshot_error("cannot open " + path);
  out << to_text(snap);
  if (!out) throw snapshot_error("write failed for " + path);
}

session_snapshot load_snapshot(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw snapshot_error("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return snapshot_from_text(buf.str());
}

std::string snapshot_filename(const std::string& session_key) {
  std::ostringstream os;
  os << std::hex << util::stable_hash64(session_key) << ".snapshot";
  return os.str();
}

}  // namespace mapcq::serving
