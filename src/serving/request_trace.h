#pragma once
// Request trace capture and replay — the ops half of the config+replay
// surface (the other half is serving/service_config.h). A production
// deployment installs a `trace_log` tap on its `mapping_service`; every
// submit() appends one `core::trace_record` (arrival offset, priority,
// deadline, fairness lane, fingerprint) *before* admission, so the capture
// holds the offered load: duplicates the scheduler coalesced and requests
// it rejected included. The log serializes to the mapcq-trace-v1 text
// format (core/serialization.h) and `replay_trace` re-runs it against a
// candidate build at 1x/Nx speed, reporting p50/p95/p99 latency plus the
// scheduler-counter delta the replayed traffic produced.
//
// What a replay reproduces: the *shape* of the traffic, not its payloads.
// A fingerprint cannot be inverted into a full request, so the driver
// synthesizes each submit from a caller-provided base request — distinct
// captured lanes map onto the given registered network names (round-robin
// by first appearance) and every distinct (lane, fingerprint) pair gets a
// distinct `ga.seed` (base seed + first-appearance index). Two replayed
// submits therefore coalesce exactly when the captured pair did, which
// keeps the coalescing/counter totals of the capture: under
// `replay_options::synchronous` they are bit-identical, a pure function of
// the trace (the replay tests gate on this).

#include <chrono>
#include <cstddef>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "core/serialization.h"
#include "serving/mapping_service.h"

namespace mapcq::serving {

/// Append-only, thread-safe log of submit() arrivals. The first record
/// anchors t = 0; arrival offsets are measured from it, so a saved trace
/// always starts at offset zero regardless of when the capture began.
class trace_log {
 public:
  /// Appends one record stamped with the current arrival offset. Called by
  /// the `mapping_service` tap; safe from any thread.
  void record(const std::string& lane, const std::string& fingerprint, int priority,
              std::chrono::milliseconds deadline);

  /// Records captured so far.
  [[nodiscard]] std::size_t size() const;

  /// Copy of the records in capture order (serialize with
  /// core::to_text / core::save_trace).
  [[nodiscard]] std::vector<core::trace_record> snapshot() const;

 private:
  mutable std::mutex mu_;
  bool anchored_ = false;
  std::chrono::steady_clock::time_point origin_;
  std::vector<core::trace_record> records_;
};

/// Completion watcher for a batch of submitted futures: one polling sweep
/// (`wait_for(0)`) over the outstanding set instead of a thread per
/// request, recording each request's sojourn — submit (or release, see
/// rebase()) to observed-ready — with the poll interval as measurement
/// granularity. Not thread-safe; one driver owns it.
class latency_watch {
 public:
  /// Tracks one future, with its submit time as the latency origin.
  void add(std::shared_future<mapping_report> future,
           std::chrono::steady_clock::time_point submitted);

  /// Moves every origin forward to at least `at` — used by synchronous
  /// replay, where requests are queued while the scheduler is paused and
  /// latency is meaningful only from the resume.
  void rebase(std::chrono::steady_clock::time_point at);

  /// Blocks until every tracked future is ready (value or exception) and
  /// returns the latencies in milliseconds, unsorted, in add() order.
  [[nodiscard]] std::vector<double> wait_all(
      std::chrono::microseconds poll = std::chrono::microseconds{200});

 private:
  struct entry {
    std::shared_future<mapping_report> future;
    std::chrono::steady_clock::time_point origin;
  };
  std::vector<entry> entries_;
};

/// Replay knobs.
struct replay_options {
  /// Arrival-time divisor: 1 = captured pacing, 4 = four times faster,
  /// <= 0 = no pacing (submit as fast as possible).
  double speed = 1.0;
  /// Pause the scheduler, submit the whole trace, resume, then wait: the
  /// counter totals become a pure function of the trace (every duplicate
  /// coalesces against its queued representative) and latency is measured
  /// from the resume. Pacing is skipped (arrival offsets don't matter when
  /// nothing dispatches until the end).
  bool synchronous = false;
  /// Replay only the first N records; 0 = the whole trace.
  std::size_t max_requests = 0;
};

/// What a replay measured.
struct replay_result {
  std::size_t requests = 0;  ///< submits issued (after max_requests)
  std::size_t distinct = 0;  ///< distinct (lane, fingerprint) pairs among them
  /// Scheduler-counter delta over the replay (monotonic fields only;
  /// gauges are zero after the drain). Under synchronous replay the totals
  /// are a pure function of the trace: submitted == requests, admitted ==
  /// distinct, coalesced == requests - distinct, and completed + failed +
  /// expired == distinct.
  scheduler_stats stats;
  double p50_ms = 0.0;   ///< median request sojourn
  double p95_ms = 0.0;   ///< 95th-percentile sojourn
  double p99_ms = 0.0;   ///< 99th-percentile sojourn
  double max_ms = 0.0;   ///< slowest request
  double wall_ms = 0.0;  ///< first submit to last completion
};

/// Re-runs `trace` against `service`. Each record becomes a copy of `base`
/// with the captured priority/deadline, its lane mapped onto one of
/// `networks` (round-robin over distinct lanes in first-appearance order;
/// every name must be registered on the service) and `ga.seed` set to
/// `base.ga.seed + index` of its distinct (lane, fingerprint) pair — see
/// the file comment for why this preserves the capture's coalescing
/// structure. Blocks until every replayed request completed (failures and
/// expiries count in `stats`, their sojourn still measured). Throws
/// std::invalid_argument on an empty trace or empty `networks`.
[[nodiscard]] replay_result replay_trace(mapping_service& service,
                                         const std::vector<core::trace_record>& trace,
                                         const mapping_request& base,
                                         const std::vector<std::string>& networks,
                                         const replay_options& opt = {});

}  // namespace mapcq::serving
