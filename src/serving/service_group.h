#pragma once
// serving::service_group — sharded serving with consistent-hash routing
// (ROADMAP: "sharded serving with durable session snapshots,
// consistent-hash routing, and warm-start restore").
//
// One `mapping_service` serializes its registry behind a single mutex and
// shares one scheduler; a group runs K independent shards behind the same
// submit()/map() surface, routing every request by consistent hashing of
// its session key. Requests for one session always land on the same shard
// (its memo caches and trained surrogate stay together), while distinct
// sessions spread across shards and never contend on each other's registry
// lock or scheduler queue.
//
// The ring hashes each shard to `virtual_nodes` points via the same
// process-stable FNV-1a hash the snapshot filenames use, so routing is
// deterministic across restarts. Growing or shrinking the group
// (`reshard`) drains and snapshots every session to the shared snapshot
// directory, rebuilds the shards, and lets the first warm request on the
// new topology restore each session onto exactly the one shard the new
// ring routes it to — a reshard costs one snapshot round-trip per session
// instead of a cold rebuild.

#include <cstddef>
#include <future>
#include <memory>
#include <shared_mutex>
#include <string>
#include <variant>
#include <vector>

#include "serving/mapping_service.h"

namespace mapcq::serving {

/// Group topology knobs (JSON: the "group" block of service_config).
struct group_options {
  /// Independent mapping_service shards. 1 is a valid degenerate group
  /// (one shard behind the group surface).
  std::size_t shards = 2;
  /// Ring points per shard. More points smooth the key distribution at the
  /// cost of a larger ring; 32 keeps the per-shard load within a few
  /// percent of uniform for realistic session counts.
  std::size_t virtual_nodes = 32;
};

/// Aggregated counters across every live shard plus the generations
/// retired by reshard() (monotonic counters carry over; gauges — queue
/// depths, cache footprints — reset with the shards that owned them).
struct group_stats {
  std::size_t shards = 0;             ///< current shard count
  std::size_t reshards = 0;           ///< completed reshard() operations
  std::size_t sessions = 0;           ///< gauge: live sessions across shards
  std::size_t sessions_evicted = 0;
  std::size_t sessions_spilled = 0;
  std::size_t spill_failures = 0;
  std::size_t sessions_restored = 0;
  std::size_t restore_failures = 0;
  scheduler_stats scheduler;          ///< summed over shards
  core::engine_stats engines;         ///< summed over shards' live sessions
};

/// Sharded serving front-end: owns K `mapping_service`s and routes by
/// consistent hashing of the request's session key.
///
/// Ownership: owns its shards outright and keeps the full registration
/// sequence (networks/platforms, replacements included) so a reshard can
/// replay it verbatim onto fresh shards — replaying preserves registration
/// generations, which session keys (and therefore snapshot filenames)
/// embed.
///
/// Thread-safety: every public member may be called concurrently. map(),
/// submit() and the read accessors share a reader lock; registration and
/// reshard() take it exclusively (they mutate the shard set / all shards).
///
/// Blocking: reshard() and snapshot_all() drain refresh refits per session;
/// reshard() additionally joins every shard's scheduler workers. Call
/// reshard() quiesced (no concurrent submits) for exact warm-state capture
/// — requests completing between the spill and the teardown warm caches
/// the snapshot has already missed.
class service_group {
 public:
  /// Every shard is configured with a copy of `service`. Throws
  /// std::invalid_argument when `group.shards` or `group.virtual_nodes`
  /// is 0.
  service_group(group_options group, service_options service = {});

  service_group(const service_group&) = delete;
  service_group& operator=(const service_group&) = delete;

  /// Registers (or replaces) on EVERY shard, with mapping_service's
  /// generation semantics — all shards see identical registries, so any
  /// shard computes the same session key for a request.
  void register_network(const nn::network& net);
  void register_platform(const soc::platform& plat);

  /// Serves synchronously on the shard the ring routes `req`'s session key
  /// to (same contract as mapping_service::map).
  [[nodiscard]] mapping_report map(const mapping_request& req);

  /// Admits into the routed shard's scheduler (same contract as
  /// mapping_service::submit; fairness and coalescing are per-shard, which
  /// is exact because a session's requests always route to one shard).
  [[nodiscard]] std::shared_future<mapping_report> submit(mapping_request req);

  /// Snapshots every live session on every shard to the snapshot directory
  /// (the orderly-shutdown primitive). Returns the number written; 0 when
  /// no directory is configured.
  std::size_t snapshot_all();

  /// Re-partitions the group to `new_shards` shards: spills every session
  /// to the snapshot directory, tears the shards down (draining their
  /// schedulers), rebuilds them with the replayed registration sequence
  /// and a fresh ring. Sessions warm-start lazily: the first request for
  /// each session restores its snapshot onto exactly the one shard the new
  /// ring routes it to. Throws std::invalid_argument on 0 shards,
  /// std::logic_error when no snapshot directory is configured (resharding
  /// without persistence would silently discard every warm session).
  void reshard(std::size_t new_shards);

  /// Aggregated counters (see group_stats for carry-over semantics).
  [[nodiscard]] group_stats stats() const;

  [[nodiscard]] std::size_t shard_count() const;
  /// Direct shard access for tests and benches (index < shard_count()).
  /// The reference is invalidated by reshard().
  [[nodiscard]] mapping_service& shard(std::size_t index);
  /// The shard index `req` routes to (exposed for placement tests).
  [[nodiscard]] std::size_t shard_index_for(const mapping_request& req);

 private:
  struct ring_point {
    std::uint64_t point;
    std::size_t shard;
  };

  /// Rebuilds shards_ + ring_ for `count` shards and replays the
  /// registration log. Caller must hold `mu_` exclusively (or be the
  /// constructor).
  void build_shards(std::size_t count);
  /// First ring point clockwise of the lane's hash (ring is never empty).
  [[nodiscard]] std::size_t route(const std::string& lane) const;
  /// Folds one retiring shard's monotonic counters into carried_.
  void carry_shard_counters(const mapping_service& svc);

  group_options group_opt_;
  service_options service_opt_;

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<mapping_service>> shards_;
  std::vector<ring_point> ring_;  ///< sorted by point
  /// Full registration sequence, replacements included (see class comment).
  std::vector<std::variant<nn::network, soc::platform>> registrations_;
  /// Monotonic counters of generations retired by reshard().
  group_stats carried_;
};

}  // namespace mapcq::serving
