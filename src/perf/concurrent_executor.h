#pragma once
// Concurrent execution simulator implementing the paper's latency recurrence
// (eq. 8):
//
//   T^j_i = tau^j_i + max{ T^{j-1}_i,
//                          T^{j-1}_k + u^{j-1}_{k->i} | I_k = 1, 1 <= k < i }
//
// Each stage runs on its own CU; a sublayer starts once its own previous
// output and every reused feature map from earlier stages have landed in its
// local vicinity (Fig. 3: stalls appear as wait time). Stage latency is
// T^n_i (eq. 9), stage energy is the sum of eq. 11 terms (eq. 12).

#include <vector>

#include "perf/latency_model.h"
#include "perf/work.h"
#include "soc/platform.h"

namespace mapcq::perf {

/// Timing of one (stage, step) cell, for traces and tests.
struct step_timing {
  double start_ms = 0.0;  ///< when the sublayer began computing
  double end_ms = 0.0;    ///< completion time T^j_i
  double wait_ms = 0.0;   ///< stall waiting on own/foreign dependencies
  double busy_ms = 0.0;   ///< tau^j_i
};

/// Per-stage outcome.
struct stage_timing {
  double latency_ms = 0.0;   ///< T_Si = T^n_i (eq. 9)
  double energy_mj = 0.0;    ///< E_Si (eq. 12)
  double busy_ms = 0.0;      ///< total compute time
  double wait_ms = 0.0;      ///< total stall time
};

/// Full simulation result.
struct execution_result {
  std::vector<stage_timing> stages;
  std::vector<std::vector<step_timing>> timeline;  ///< [stage][step]
  double fmap_traffic_bytes = 0.0;   ///< inter-CU feature bytes moved
  double transfer_energy_mj = 0.0;   ///< DRAM energy of that traffic (extra term)

  /// Overall latency for the first `instantiated` stages = max T_Si
  /// (paper eq. 13). `instantiated` = 0 means all stages.
  [[nodiscard]] double latency_ms(std::size_t instantiated = 0) const;

  /// Overall energy for the first `instantiated` stages = sum E_Si
  /// (paper eq. 14). `instantiated` = 0 means all stages.
  [[nodiscard]] double energy_mj(std::size_t instantiated = 0) const;
};

/// Simulates the plan on the platform. Throws std::logic_error on an
/// invalid plan.
[[nodiscard]] execution_result simulate(const soc::platform& plat, const stage_plan& plan,
                                        const model_options& opt = {});

/// Pre-computed per-step costs (e.g. from the GBT surrogate); indexed
/// [stage][step], shapes must match the plan.
struct step_costs {
  std::vector<std::vector<double>> tau_ms;
  std::vector<std::vector<double>> energy_mj;
};

/// Runs the eq. 8 recurrence with externally supplied sublayer costs
/// (the surrogate path of the paper's Fig. 5 evaluation loop).
[[nodiscard]] execution_result simulate_costed(const soc::platform& plat,
                                               const stage_plan& plan,
                                               const step_costs& costs);

/// Sequential reference executor (ablation): stages run one after another
/// with no concurrency; same cost models, dependencies always satisfied.
[[nodiscard]] execution_result simulate_sequential(const soc::platform& plat,
                                                   const stage_plan& plan,
                                                   const model_options& opt = {});

}  // namespace mapcq::perf
