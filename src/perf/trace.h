#pragma once
// ASCII Gantt rendering of an execution result -- visualizes the concurrent
// schedule with compute vs. stall segments (paper Fig. 3).

#include <string>

#include "perf/concurrent_executor.h"

namespace mapcq::perf {

/// Renders one bar per stage ('#' compute, '.' stall) against a shared time
/// axis of `columns` characters.
[[nodiscard]] std::string render_gantt(const execution_result& result,
                                       const stage_plan& plan, const soc::platform& plat,
                                       std::size_t columns = 80);

}  // namespace mapcq::perf
