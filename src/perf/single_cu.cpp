#include "perf/single_cu.h"

#include "perf/energy_model.h"

namespace mapcq::perf {

single_cu_result single_cu_run(const nn::network& net, const soc::compute_unit& cu,
                               std::size_t level, const model_options& opt) {
  single_cu_result out;
  for (const auto& l : net.layers) {
    sublayer_cost cost;
    cost.kind = l.kind;
    cost.flops = l.flops();
    cost.weight_bytes = l.weight_bytes();
    cost.in_bytes = l.input_bytes();
    cost.out_bytes = l.output_bytes();
    cost.width_frac = 1.0;
    out.latency_ms += sublayer_latency_ms(cost, cu, level, 1, opt);
    out.energy_mj += sublayer_energy_mj(cost, cu, level, 1, opt);
  }
  return out;
}

}  // namespace mapcq::perf
