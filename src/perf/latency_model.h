#pragma once
// Per-sublayer latency model: a roofline over the CU's sustained compute
// rate and its memory bandwidth, plus a fixed kernel-launch overhead. This
// provides the tau^j_i terms of the paper's eq. 8 and stands in for the
// TensorRT layer-wise measurements of §V-E.

#include "perf/work.h"
#include "soc/compute_unit.h"

namespace mapcq::perf {

/// Options shared by the latency and energy models.
struct model_options {
  /// Derate memory bandwidth when `concurrent_stages` CUs contend for the
  /// shared DRAM: bw_eff = bw / (1 + contention * (stages - 1)).
  double bandwidth_contention = 0.10;
  bool enable_contention = true;
};

/// Latency (ms) of executing `cost` on `cu` at DVFS `level` with
/// `concurrent_stages` total active stages on the MPSoC. Empty sublayers
/// cost nothing.
[[nodiscard]] double sublayer_latency_ms(const sublayer_cost& cost, const soc::compute_unit& cu,
                                         std::size_t level, std::size_t concurrent_stages = 1,
                                         const model_options& opt = {});

}  // namespace mapcq::perf
