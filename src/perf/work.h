#pragma once
// Neutral work descriptors exchanged between the dynamic-NN transform
// (core) and the performance models (perf). A stage plan is the fully
// resolved execution schedule of one partitioned network on one platform:
// per stage and per partition group, the sublayer's compute/byte volumes
// and the inter-stage feature transfers mandated by the I matrix.

#include <cstddef>
#include <vector>

#include "nn/layer.h"

namespace mapcq::perf {

/// Cost view of one sublayer l^j_i (paper eq. 3): the slice of partition
/// group j executed by stage i.
struct sublayer_cost {
  nn::layer_kind kind = nn::layer_kind::conv2d;
  double flops = 0.0;         ///< arithmetic work of the slice
  double weight_bytes = 0.0;  ///< parameters the slice must stream
  double in_bytes = 0.0;      ///< locally available input activations
  double out_bytes = 0.0;     ///< produced activations
  double width_frac = 0.0;    ///< slice width / full layer width (occupancy)

  /// True when the stage holds no units of this group.
  [[nodiscard]] bool empty() const noexcept { return width_frac <= 0.0 && flops <= 0.0; }

  [[nodiscard]] double moved_bytes() const noexcept {
    return weight_bytes + in_bytes + out_bytes;
  }
};

/// One incoming feature-map transfer (the u_{k->i} term of eq. 8).
struct transfer_in {
  std::size_t from_stage = 0;  ///< producer stage index (< consumer's)
  double bytes = 0.0;          ///< forwarded fmap bytes (F^{j-1}_k . I^{j-1}_k)
};

/// One (stage, group) cell of the schedule.
struct stage_step {
  sublayer_cost cost;
  std::vector<transfer_in> incoming;  ///< deps on earlier stages' group j-1 output
};

/// Fully resolved schedule of a partitioned network.
struct stage_plan {
  /// steps[i][j]: stage i's work at partition group j. All stages have the
  /// same number of steps (possibly empty ones). The final step of each
  /// stage is its exit head.
  std::vector<std::vector<stage_step>> steps;

  /// cu_of_stage[i]: platform unit index executing stage i (paper eq. 7,
  /// all distinct).
  std::vector<std::size_t> cu_of_stage;

  /// dvfs_level[u]: DVFS level of platform unit u.
  std::vector<std::size_t> dvfs_level;

  [[nodiscard]] std::size_t stages() const noexcept { return steps.size(); }
  [[nodiscard]] std::size_t groups() const noexcept {
    return steps.empty() ? 0 : steps.front().size();
  }

  /// Total inter-stage feature traffic in bytes.
  [[nodiscard]] double fmap_traffic_bytes() const noexcept;

  /// Number of stages owning any work, floored at 1: the "concurrency"
  /// every consumer of per-sublayer costs must agree on (the executor, the
  /// surrogate's query features and the refresh pipeline's logged features
  /// all call this — one definition, so they can never diverge).
  [[nodiscard]] std::size_t active_stages() const noexcept;

  /// Throws std::logic_error on ragged steps, duplicate CUs or bad indices.
  void validate(std::size_t platform_units) const;
};

}  // namespace mapcq::perf
