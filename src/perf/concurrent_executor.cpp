#include "perf/concurrent_executor.h"

#include <algorithm>
#include <stdexcept>

#include "perf/energy_model.h"

namespace mapcq::perf {

double execution_result::latency_ms(std::size_t instantiated) const {
  if (instantiated == 0 || instantiated > stages.size()) instantiated = stages.size();
  double t = 0.0;
  for (std::size_t i = 0; i < instantiated; ++i) t = std::max(t, stages[i].latency_ms);
  return t;
}

double execution_result::energy_mj(std::size_t instantiated) const {
  if (instantiated == 0 || instantiated > stages.size()) instantiated = stages.size();
  double e = 0.0;
  for (std::size_t i = 0; i < instantiated; ++i) e += stages[i].energy_mj;
  return e;
}

namespace {

}  // namespace

namespace {

/// Shared eq. 8 recurrence; `tau_of` / `energy_of` supply per-step costs.
template <typename TauFn, typename EnergyFn>
execution_result run_recurrence(const soc::platform& plat, const stage_plan& plan,
                                TauFn&& tau_of, EnergyFn&& energy_of) {
  const std::size_t n_stages = plan.stages();
  const std::size_t n_groups = plan.groups();

  execution_result res;
  res.stages.assign(n_stages, {});
  res.timeline.assign(n_stages, std::vector<step_timing>(n_groups));

  // completion[i][j] = T^j_i. Column j-1 feeds column j, including
  // cross-stage edges, so iterate groups outermost.
  std::vector<std::vector<double>> completion(n_stages, std::vector<double>(n_groups, 0.0));

  for (std::size_t j = 0; j < n_groups; ++j) {
    for (std::size_t i = 0; i < n_stages; ++i) {
      const stage_step& step = plan.steps[i][j];

      const double own_prev = j == 0 ? 0.0 : completion[i][j - 1];
      double ready = own_prev;
      for (const auto& t : step.incoming) {
        const double src_done = j == 0 ? 0.0 : completion[t.from_stage][j - 1];
        const double u = plat.xfer.transfer_ms(t.bytes);
        ready = std::max(ready, src_done + u);
        res.fmap_traffic_bytes += t.bytes;
        res.transfer_energy_mj += plat.xfer.transfer_mj(t.bytes);
      }

      const double tau = tau_of(i, j);
      completion[i][j] = ready + tau;

      step_timing& tl = res.timeline[i][j];
      tl.start_ms = ready;
      tl.end_ms = completion[i][j];
      tl.busy_ms = tau;
      tl.wait_ms = std::max(0.0, ready - own_prev);

      res.stages[i].busy_ms += tau;
      res.stages[i].wait_ms += tl.wait_ms;
      res.stages[i].energy_mj += energy_of(i, j);
    }
  }

  for (std::size_t i = 0; i < n_stages; ++i)
    res.stages[i].latency_ms = n_groups == 0 ? 0.0 : completion[i][n_groups - 1];
  return res;
}

}  // namespace

execution_result simulate(const soc::platform& plat, const stage_plan& plan,
                          const model_options& opt) {
  plan.validate(plat.size());
  // Idle stages do not contend for DRAM; shared definition so surrogate
  // query/logged features always agree with the analytic models.
  const std::size_t concurrency = plan.active_stages();

  const auto cu_and_level = [&](std::size_t i) {
    const std::size_t cu_idx = plan.cu_of_stage[i];
    return std::pair<const soc::compute_unit&, std::size_t>(plat.unit(cu_idx),
                                                            plan.dvfs_level[cu_idx]);
  };
  return run_recurrence(
      plat, plan,
      [&](std::size_t i, std::size_t j) {
        const auto [cu, level] = cu_and_level(i);
        return sublayer_latency_ms(plan.steps[i][j].cost, cu, level, concurrency, opt);
      },
      [&](std::size_t i, std::size_t j) {
        const auto [cu, level] = cu_and_level(i);
        return sublayer_energy_mj(plan.steps[i][j].cost, cu, level, concurrency, opt);
      });
}

execution_result simulate_costed(const soc::platform& plat, const stage_plan& plan,
                                 const step_costs& costs) {
  plan.validate(plat.size());
  if (costs.tau_ms.size() != plan.stages() || costs.energy_mj.size() != plan.stages())
    throw std::logic_error("simulate_costed: cost grid shape mismatch");
  for (std::size_t i = 0; i < plan.stages(); ++i)
    if (costs.tau_ms[i].size() != plan.groups() || costs.energy_mj[i].size() != plan.groups())
      throw std::logic_error("simulate_costed: cost grid shape mismatch");

  return run_recurrence(
      plat, plan, [&](std::size_t i, std::size_t j) { return costs.tau_ms[i][j]; },
      [&](std::size_t i, std::size_t j) { return costs.energy_mj[i][j]; });
}

execution_result simulate_sequential(const soc::platform& plat, const stage_plan& plan,
                                     const model_options& opt) {
  plan.validate(plat.size());

  execution_result res;
  res.stages.assign(plan.stages(), {});
  res.timeline.assign(plan.stages(), std::vector<step_timing>(plan.groups()));

  double clock = 0.0;
  for (std::size_t i = 0; i < plan.stages(); ++i) {
    const soc::compute_unit& cu = plat.unit(plan.cu_of_stage[i]);
    const std::size_t level = plan.dvfs_level[plan.cu_of_stage[i]];
    const double stage_start = clock;
    for (std::size_t j = 0; j < plan.groups(); ++j) {
      const stage_step& step = plan.steps[i][j];
      for (const auto& t : step.incoming) {
        clock += plat.xfer.transfer_ms(t.bytes);
        res.fmap_traffic_bytes += t.bytes;
        res.transfer_energy_mj += plat.xfer.transfer_mj(t.bytes);
      }
      // One stage at a time -> no DRAM contention.
      const double tau = sublayer_latency_ms(step.cost, cu, level, 1, opt);
      res.timeline[i][j] = {clock, clock + tau, 0.0, tau};
      clock += tau;
      res.stages[i].busy_ms += tau;
      res.stages[i].energy_mj += sublayer_energy_mj(step.cost, cu, level, 1, opt);
    }
    // Sequential semantics: a stage's completion time includes every
    // predecessor stage (they ran first on the wall clock).
    res.stages[i].latency_ms = clock;
    res.stages[i].wait_ms = stage_start;
  }
  return res;
}

}  // namespace mapcq::perf
