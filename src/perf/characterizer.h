#pragma once
// Overall characterization (paper eqs. 13-14) and exit-weighted expectations
// over a validation population: a dynamic inference that terminates at stage
// M' pays max-latency over stages 1..M' (concurrency) and the summed energy
// of the instantiated stages.

#include <span>
#include <vector>

#include "perf/concurrent_executor.h"
#include "soc/contention.h"

namespace mapcq::perf {

/// Tolerance of the exit-fraction validation, shared by both of its checks:
/// a fraction may dip this far below zero and the sum may stray this far
/// from 1 before the profile rejects the vector. One named constant on
/// purpose — both slacks absorb the same accumulated rounding from the exit
/// simulator's population arithmetic, and they had silently diverged
/// (-1e-9 vs 1e-6) before being unified here.
inline constexpr double exit_fraction_tolerance = 1e-6;

/// Aggregated dynamic-inference costs of one mapping configuration.
struct dynamic_profile {
  std::vector<double> latency_upto;  ///< [m] = T for exit at stage m (eq. 13)
  std::vector<double> energy_upto;   ///< [m] = E for exit at stage m (eq. 14)

  [[nodiscard]] std::size_t stages() const noexcept { return latency_upto.size(); }

  /// Expected latency/energy given the fraction of inputs exiting at each
  /// stage (fractions must sum to ~1 and match the stage count).
  [[nodiscard]] double avg_latency_ms(std::span<const double> exit_fractions) const;
  [[nodiscard]] double avg_energy_mj(std::span<const double> exit_fractions) const;

  /// Worst case (all stages instantiated).
  [[nodiscard]] double worst_latency_ms() const;
  [[nodiscard]] double worst_energy_mj() const;
};

/// Folds an execution result into cumulative per-exit costs.
[[nodiscard]] dynamic_profile characterize(const execution_result& result);

/// Like characterize(), but adds the idle energy the MPSoC burns during the
/// inference window (what a board-level power measurement sees): a CU whose
/// stage finished idles at its gated power until the window closes; CUs
/// whose stages are not instantiated idle for the whole window.
///
/// Under co-location (`ctx` non-null with residents), CUs reserved by a
/// co-resident are excluded from the idle sweep — their power bills to the
/// resident, not to this mapping. A null or idle context runs the exact
/// legacy arithmetic (the guards are branch-only), keeping the idle path
/// bit-identical.
[[nodiscard]] dynamic_profile characterize_system(const execution_result& result,
                                                  const stage_plan& plan,
                                                  const soc::platform& plat,
                                                  const soc::contention_context* ctx = nullptr);

}  // namespace mapcq::perf
