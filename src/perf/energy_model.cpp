#include "perf/energy_model.h"

namespace mapcq::perf {

double sublayer_energy_mj(const sublayer_cost& cost, const soc::compute_unit& cu,
                          std::size_t level, std::size_t concurrent_stages,
                          const model_options& opt) {
  if (cost.empty()) return 0.0;
  const double tau = sublayer_latency_ms(cost, cu, level, concurrent_stages, opt);
  return tau * cu.power_w(cost.kind, level);
}

double energy_for_latency_mj(double latency_ms, nn::layer_kind kind, const soc::compute_unit& cu,
                             std::size_t level) {
  if (latency_ms <= 0.0) return 0.0;
  return latency_ms * cu.power_w(kind, level);
}

}  // namespace mapcq::perf
