#pragma once
// Baseline-anchored calibration (DESIGN.md §2, §5).
//
// The analytic CU model has four free scalars per CU: sustained-efficiency
// and switching-activity for each operator class (spatial / matmul). The
// calibrator solves for them so that full-network single-CU runs reproduce
// the paper's measured baselines (Table II):
//
//     Visformer  GPU 15.01 ms / 197.35 mJ     DLA 69.22 ms /  53.71 mJ
//     VGG19      GPU 25.23 ms / 630.11 mJ     DLA 114.41 ms / 164.89 mJ
//
// Latency is monotone-decreasing in each efficiency and energy is
// monotone-increasing in each activity, so alternating 1-D bisections
// converge quickly (VGG19 pins the spatial class, Visformer the matmul
// class). Everything downstream -- DVFS response, partitioned occupancy,
// concurrency, transfer stalls -- then follows the model's structure.

#include <span>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "perf/single_cu.h"
#include "soc/platform.h"

namespace mapcq::perf {

/// One measured anchor: the network's full run on one CU at max DVFS.
struct reference_point {
  const nn::network* net = nullptr;
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  /// Operator class this anchor should pin (the class dominating its mix).
  soc::op_class pins = soc::op_class::spatial;
};

/// Calibration tolerances/limits.
struct calibration_options {
  double tolerance = 1e-4;   ///< relative error target on each anchor
  int max_rounds = 60;       ///< alternating-solve rounds
  model_options model;       ///< latency/energy model options
  /// Constant extra power (W) drawn by the rest of the platform during the
  /// anchor run (gated-idle floor of the other CUs). Board-level anchor
  /// measurements include it, so the solve must too.
  double external_idle_w = 0.0;
};

/// Result of calibrating one CU.
struct calibration_report {
  std::string unit;
  std::vector<double> latency_error;  ///< relative error per anchor after solve
  std::vector<double> energy_error;
};

/// Calibrates `cu` in place against the anchors (run at the CU's max DVFS
/// level). Throws std::invalid_argument on empty/invalid anchors and
/// std::runtime_error if a target is unreachable within parameter bounds.
calibration_report calibrate_unit(soc::compute_unit& cu,
                                  std::span<const reference_point> anchors,
                                  const calibration_options& opt = {});

/// AGX Xavier calibrated against the paper's four baselines; both DLAs
/// receive the DLA anchors. Returns the platform plus per-unit reports.
struct calibrated_platform {
  soc::platform plat;
  std::vector<calibration_report> reports;
};
[[nodiscard]] calibrated_platform calibrated_xavier(const nn::network& visformer,
                                                    const nn::network& vgg19,
                                                    const calibration_options& opt = {});

}  // namespace mapcq::perf
