#include "perf/work.h"

#include <set>
#include <stdexcept>

namespace mapcq::perf {

double stage_plan::fmap_traffic_bytes() const noexcept {
  double total = 0.0;
  for (const auto& stage : steps)
    for (const auto& step : stage)
      for (const auto& t : step.incoming) total += t.bytes;
  return total;
}

std::size_t stage_plan::active_stages() const noexcept {
  std::size_t n = 0;
  for (const auto& stage : steps) {
    for (const auto& step : stage)
      if (!step.cost.empty()) {
        ++n;
        break;
      }
  }
  return n == 0 ? 1 : n;
}

void stage_plan::validate(std::size_t platform_units) const {
  if (steps.empty()) throw std::logic_error("stage_plan: no stages");
  const std::size_t n_groups = steps.front().size();
  if (n_groups == 0) throw std::logic_error("stage_plan: no steps");
  for (const auto& stage : steps)
    if (stage.size() != n_groups) throw std::logic_error("stage_plan: ragged step grid");

  if (cu_of_stage.size() != steps.size())
    throw std::logic_error("stage_plan: cu_of_stage size mismatch");
  std::set<std::size_t> seen;
  for (const std::size_t cu : cu_of_stage) {
    if (cu >= platform_units) throw std::logic_error("stage_plan: CU index out of range");
    if (!seen.insert(cu).second)
      throw std::logic_error("stage_plan: two stages mapped to one CU (violates eq. 7)");
  }
  if (dvfs_level.size() != platform_units)
    throw std::logic_error("stage_plan: dvfs_level must cover every platform unit");

  for (std::size_t i = 0; i < steps.size(); ++i)
    for (const auto& step : steps[i])
      for (const auto& t : step.incoming) {
        if (t.from_stage >= i)
          throw std::logic_error("stage_plan: transfer from a non-earlier stage");
        if (t.bytes < 0.0) throw std::logic_error("stage_plan: negative transfer");
      }
}

}  // namespace mapcq::perf
