#include "perf/latency_model.h"

#include <algorithm>

namespace mapcq::perf {

double sublayer_latency_ms(const sublayer_cost& cost, const soc::compute_unit& cu,
                           std::size_t level, std::size_t concurrent_stages,
                           const model_options& opt) {
  if (cost.empty()) return 0.0;

  const double gflops = cu.sustained_gflops(cost.kind, cost.width_frac, level);
  const double compute_ms = gflops > 0.0 ? cost.flops / (gflops * 1e6) : 0.0;

  double bw = cu.mem_bandwidth_gbps;
  if (opt.enable_contention && concurrent_stages > 1)
    bw /= 1.0 + opt.bandwidth_contention * static_cast<double>(concurrent_stages - 1);
  const double memory_ms = cost.moved_bytes() / (bw * 1e6);  // GB/s == 1e6 B/ms

  return cu.launch_overhead_ms + std::max(compute_ms, memory_ms);
}

}  // namespace mapcq::perf
