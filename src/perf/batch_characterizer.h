#pragma once
// Structure-of-arrays batch characterizer — the vectorized fast path of the
// per-sublayer analytic hot loop (ROADMAP "hot-path speed", attack 3).
//
// The scalar pipeline walks every (stage, group) cell of every plan through
// `sublayer_latency_ms` / `sublayer_energy_mj` one call at a time, chasing
// pointers into `stage_plan`'s vector-of-vectors. This class lays the cells
// of a whole evaluation batch out contiguously instead: one gather pass
// resolves the per-cell scalars (flops, roofline denominators, launch
// overhead, power), then a single flat loop computes every tau/energy pair
// — written so the auto-vectorizer can keep the divisions and max() in SIMD
// lanes (toggle: the MAPCQ_SIMD CMake option). The eq. 8 recurrence and the
// idle-power characterization then run per plan over the flat tau array.
//
// Bit-identity contract: the batch path performs the *same IEEE operations
// in the same order* as `simulate()` + `characterize[_system]()` — roofline
// denominators are formed from the same operands, the recurrence replicates
// `run_recurrence`'s iteration and accumulation order, and nothing is
// compiled under value-changing FP flags. `tests/test_batch_evaluator.cpp`
// pins this differentially at %.17g across seeded networks × platforms ×
// batch shapes; treat any divergence as a bug in this file.
//
// Ownership: the characterizer borrows the platform (must outlive it) and
// owns its arena scratch, which is bump-allocated per `run()` call and
// reused across calls (buffers grow monotonically, no per-cell allocation).
//
// Thread-safety: NONE — the arena is mutable state. One instance per
// thread; `core::evaluator::evaluate_batch` creates one per call.

#include <cstddef>
#include <span>
#include <vector>

#include "perf/characterizer.h"
#include "perf/concurrent_executor.h"
#include "perf/latency_model.h"
#include "perf/work.h"
#include "soc/platform.h"

namespace mapcq::perf {

/// Bump allocator for per-batch scratch: one backing vector per scalar
/// type, sized up front (a mid-batch grow would invalidate handed-out
/// spans, so `reset` pre-reserves the whole batch's footprint).
class batch_arena {
 public:
  /// Discards all outstanding spans and guarantees capacity for
  /// `doubles` / `flags` subsequent takes.
  void reset(std::size_t doubles, std::size_t flags);

  /// Hands out the next `n` doubles, zero-initialized.
  [[nodiscard]] std::span<double> take(std::size_t n);
  /// Hands out the next `n` flag bytes, zero-initialized.
  [[nodiscard]] std::span<unsigned char> take_flags(std::size_t n);

 private:
  std::vector<double> doubles_;
  std::vector<unsigned char> flags_;
  std::size_t doubles_used_ = 0;
  std::size_t flags_used_ = 0;
};

/// Per-plan output of a batch run: exactly what the scalar pipeline hands
/// `core::evaluator` (`simulate()` result plus its characterization).
struct batch_profile {
  execution_result exec;
  dynamic_profile profile;
};

/// SoA batched analytic characterizer (see file comment).
class batch_characterizer {
 public:
  /// Borrows `plat` (and `ctx` when given; both must outlive the
  /// characterizer); `opt` mirrors the scalar `model_options` knobs. Pass
  /// the co-location context the evaluator scored under (usually the same
  /// one that produced `plat` via `apply_contention`) so the idle-power
  /// sweep excludes resident-reserved CUs exactly as the scalar
  /// `characterize_system` does; null keeps the legacy path bit-identical.
  batch_characterizer(const soc::platform& plat, model_options opt,
                      const soc::contention_context* ctx = nullptr);

  /// Characterizes every plan of the batch. `out` must be sized like
  /// `plans`; `count_idle_power` selects `characterize_system` vs
  /// `characterize`, exactly as `evaluator_options::count_idle_power`
  /// does on the scalar path. Throws std::logic_error on an invalid plan
  /// (same validation as `simulate`).
  void run(std::span<const stage_plan* const> plans, bool count_idle_power,
           std::span<batch_profile> out);

 private:
  const soc::platform* plat_;
  model_options opt_;
  const soc::contention_context* ctx_ = nullptr;
  batch_arena arena_;
};

/// True when the library was compiled with the MAPCQ_SIMD toggle on
/// (vectorization pragmas active in the flat tau/energy loop).
[[nodiscard]] bool simd_enabled() noexcept;

}  // namespace mapcq::perf
