#pragma once
// Whole-network execution on a single CU (the paper's GPU-only / DLA-only
// baselines and the reference runs the calibrator anchors against).

#include "nn/graph.h"
#include "perf/latency_model.h"
#include "soc/compute_unit.h"

namespace mapcq::perf {

/// Latency/energy of one full, unpartitioned inference.
struct single_cu_result {
  double latency_ms = 0.0;
  double energy_mj = 0.0;
};

/// Runs every layer of `net` at full width on `cu` at DVFS `level`
/// (sequential, no partitioning, no early exits).
[[nodiscard]] single_cu_result single_cu_run(const nn::network& net, const soc::compute_unit& cu,
                                             std::size_t level, const model_options& opt = {});

}  // namespace mapcq::perf
