#include "perf/batch_characterizer.h"

#include <algorithm>
#include <stdexcept>

namespace mapcq::perf {

// Vectorization toggle (CMake option MAPCQ_SIMD). The pragmas only promise
// the compiler the flat loop's iterations are independent — every lane
// still runs the exact scalar IEEE op sequence, so enabling them cannot
// change a bit of output (no reductions, no reassociation, no fast-math).
#if defined(MAPCQ_SIMD) && defined(__clang__)
#define MAPCQ_VEC_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(MAPCQ_SIMD) && defined(__GNUC__)
#define MAPCQ_VEC_LOOP _Pragma("GCC ivdep")
#else
#define MAPCQ_VEC_LOOP
#endif

bool simd_enabled() noexcept {
#ifdef MAPCQ_SIMD
  return true;
#else
  return false;
#endif
}

void batch_arena::reset(std::size_t doubles, std::size_t flags) {
  doubles_.assign(doubles, 0.0);
  flags_.assign(flags, 0);
  doubles_used_ = 0;
  flags_used_ = 0;
}

std::span<double> batch_arena::take(std::size_t n) {
  if (doubles_used_ + n > doubles_.size())
    throw std::logic_error("batch_arena: take exceeds reset capacity");
  const std::span<double> s{doubles_.data() + doubles_used_, n};
  doubles_used_ += n;
  return s;
}

std::span<unsigned char> batch_arena::take_flags(std::size_t n) {
  if (flags_used_ + n > flags_.size())
    throw std::logic_error("batch_arena: take_flags exceeds reset capacity");
  const std::span<unsigned char> s{flags_.data() + flags_used_, n};
  flags_used_ += n;
  return s;
}

batch_characterizer::batch_characterizer(const soc::platform& plat, model_options opt,
                                         const soc::contention_context* ctx)
    : plat_(&plat), opt_(opt), ctx_(ctx) {}

void batch_characterizer::run(std::span<const stage_plan* const> plans, bool count_idle_power,
                              std::span<batch_profile> out) {
  if (out.size() != plans.size())
    throw std::logic_error("batch_characterizer: output size mismatch");

  // Pass 0: validate and size the arena before any span is handed out (a
  // later grow would invalidate earlier spans). Cells are laid out
  // plan-major, then stage-major, group-minor: cell(p, i, j) =
  // base_p + i * groups_p + j.
  std::size_t total = 0;
  std::size_t max_cells = 0;
  for (const stage_plan* plan : plans) {
    plan->validate(plat_->size());
    const std::size_t cells = plan->stages() * plan->groups();
    total += cells;
    max_cells = std::max(max_cells, cells);
  }
  arena_.reset(8 * total + max_cells, total);

  const std::span<double> flops = arena_.take(total);
  const std::span<double> rate_denom = arena_.take(total);  // gflops * 1e6
  const std::span<double> moved = arena_.take(total);
  const std::span<double> bw_denom = arena_.take(total);  // bw_eff * 1e6
  const std::span<double> launch = arena_.take(total);
  const std::span<double> power = arena_.take(total);
  const std::span<double> tau = arena_.take(total);
  const std::span<double> energy = arena_.take(total);
  const std::span<double> completion = arena_.take(max_cells);  // per-plan T^j_i
  const std::span<unsigned char> skip = arena_.take_flags(total);

  // Pass 1 (gather): resolve every cell's roofline inputs. The operand
  // order mirrors sublayer_latency_ms exactly — derate bandwidth first,
  // then scale by 1e6 — so the precomputed denominators are bit-equal to
  // the products the scalar path forms inline.
  std::size_t base = 0;
  for (const stage_plan* pp : plans) {
    const stage_plan& plan = *pp;
    const std::size_t n_stages = plan.stages();
    const std::size_t n_groups = plan.groups();
    const std::size_t concurrency = plan.active_stages();
    for (std::size_t i = 0; i < n_stages; ++i) {
      const soc::compute_unit& cu = plat_->unit(plan.cu_of_stage[i]);
      const std::size_t level = plan.dvfs_level[plan.cu_of_stage[i]];
      double bw = cu.mem_bandwidth_gbps;
      if (opt_.enable_contention && concurrency > 1)
        bw /= 1.0 + opt_.bandwidth_contention * static_cast<double>(concurrency - 1);
      const double stage_bw_denom = bw * 1e6;  // GB/s == 1e6 B/ms
      for (std::size_t j = 0; j < n_groups; ++j) {
        const std::size_t c = base + i * n_groups + j;
        const sublayer_cost& cost = plan.steps[i][j].cost;
        if (cost.empty()) {
          // The scalar model returns 0 before touching the CU; mask the
          // lane and keep its division benign.
          skip[c] = 1;
          bw_denom[c] = 1.0;
          continue;
        }
        flops[c] = cost.flops;
        rate_denom[c] = cu.sustained_gflops(cost.kind, cost.width_frac, level) * 1e6;
        moved[c] = cost.moved_bytes();
        bw_denom[c] = stage_bw_denom;
        launch[c] = cu.launch_overhead_ms;
        power[c] = cu.power_w(cost.kind, level);
      }
    }
    base += n_stages * n_groups;
  }

  // Pass 2 (SIMD): the whole batch's tau/energy in one flat loop.
  MAPCQ_VEC_LOOP
  for (std::size_t c = 0; c < total; ++c) {
    const double compute_ms = rate_denom[c] > 0.0 ? flops[c] / rate_denom[c] : 0.0;
    const double memory_ms = moved[c] / bw_denom[c];
    const double t = launch[c] + std::max(compute_ms, memory_ms);
    tau[c] = skip[c] ? 0.0 : t;
    energy[c] = skip[c] ? 0.0 : t * power[c];
  }

  // Pass 3 (per plan): the eq. 8 recurrence over the flat tau column, then
  // the profile. Iteration and accumulation order replicate run_recurrence
  // — groups outermost, fmap/transfer totals accumulated per incoming edge
  // in encounter order — so sums land bit-identically.
  base = 0;
  for (std::size_t p = 0; p < plans.size(); ++p) {
    const stage_plan& plan = *plans[p];
    const std::size_t n_stages = plan.stages();
    const std::size_t n_groups = plan.groups();

    execution_result& res = out[p].exec;
    res = execution_result{};
    res.stages.assign(n_stages, {});
    res.timeline.assign(n_stages, std::vector<step_timing>(n_groups));
    std::fill(completion.begin(),
              completion.begin() + static_cast<std::ptrdiff_t>(n_stages * n_groups), 0.0);

    for (std::size_t j = 0; j < n_groups; ++j) {
      for (std::size_t i = 0; i < n_stages; ++i) {
        const stage_step& step = plan.steps[i][j];
        const double own_prev = j == 0 ? 0.0 : completion[i * n_groups + (j - 1)];
        double ready = own_prev;
        for (const auto& t : step.incoming) {
          const double src_done = j == 0 ? 0.0 : completion[t.from_stage * n_groups + (j - 1)];
          const double u = plat_->xfer.transfer_ms(t.bytes);
          ready = std::max(ready, src_done + u);
          res.fmap_traffic_bytes += t.bytes;
          res.transfer_energy_mj += plat_->xfer.transfer_mj(t.bytes);
        }
        const std::size_t c = base + i * n_groups + j;
        completion[i * n_groups + j] = ready + tau[c];

        step_timing& tl = res.timeline[i][j];
        tl.start_ms = ready;
        tl.end_ms = completion[i * n_groups + j];
        tl.busy_ms = tau[c];
        tl.wait_ms = std::max(0.0, ready - own_prev);

        res.stages[i].busy_ms += tau[c];
        res.stages[i].wait_ms += tl.wait_ms;
        res.stages[i].energy_mj += energy[c];
      }
    }
    for (std::size_t i = 0; i < n_stages; ++i)
      res.stages[i].latency_ms = n_groups == 0 ? 0.0 : completion[i * n_groups + (n_groups - 1)];

    out[p].profile =
        count_idle_power ? characterize_system(res, plan, *plat_, ctx_) : characterize(res);
    base += n_stages * n_groups;
  }
}

}  // namespace mapcq::perf
