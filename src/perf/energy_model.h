#pragma once
// Per-sublayer energy model (paper eq. 11): e^j_i = tau^j_i * P_m, with the
// CU power from eq. 10 (P = alpha + beta * theta) scaled by the operator
// class's switching activity.

#include "perf/latency_model.h"
#include "perf/work.h"
#include "soc/compute_unit.h"

namespace mapcq::perf {

/// Energy (mJ) of executing `cost` on `cu` at DVFS `level` (ms * W = mJ).
[[nodiscard]] double sublayer_energy_mj(const sublayer_cost& cost, const soc::compute_unit& cu,
                                        std::size_t level, std::size_t concurrent_stages = 1,
                                        const model_options& opt = {});

/// Energy (mJ) for a known latency (used when the latency came from a
/// surrogate prediction rather than the analytic model).
[[nodiscard]] double energy_for_latency_mj(double latency_ms, nn::layer_kind kind,
                                           const soc::compute_unit& cu, std::size_t level);

}  // namespace mapcq::perf
