#include "perf/trace.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace mapcq::perf {

std::string render_gantt(const execution_result& result, const stage_plan& plan,
                         const soc::platform& plat, std::size_t columns) {
  if (columns < 10) columns = 10;
  double horizon = 0.0;
  for (const auto& s : result.stages) horizon = std::max(horizon, s.latency_ms);
  if (horizon <= 0.0) horizon = 1.0;
  const double ms_per_col = horizon / static_cast<double>(columns);

  std::ostringstream os;
  os << util::format("time axis: %zu cols, %.3f ms/col, horizon %.2f ms\n", columns, ms_per_col,
                     horizon);
  for (std::size_t i = 0; i < result.timeline.size(); ++i) {
    std::string bar(columns, ' ');
    for (const auto& step : result.timeline[i]) {
      const auto col_of = [&](double t) {
        return std::min(columns - 1, static_cast<std::size_t>(t / ms_per_col));
      };
      if (step.busy_ms <= 0.0 && step.wait_ms <= 0.0) continue;
      // stall segment
      for (std::size_t c = col_of(step.start_ms - step.wait_ms); c < col_of(step.start_ms); ++c)
        if (bar[c] == ' ') bar[c] = '.';
      // busy segment
      for (std::size_t c = col_of(step.start_ms); c <= col_of(std::max(step.start_ms,
                                                                       step.end_ms - 1e-12));
           ++c)
        bar[c] = '#';
    }
    const auto& cu = plat.unit(plan.cu_of_stage[i]);
    os << util::format("S%zu %-5s |%s| %7.2f ms (busy %.2f, stall %.2f)\n", i + 1,
                       cu.name.c_str(), bar.c_str(), result.stages[i].latency_ms,
                       result.stages[i].busy_ms, result.stages[i].wait_ms);
  }
  return os.str();
}

}  // namespace mapcq::perf
