#include "perf/calibration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mapcq::perf {

namespace {

constexpr double eff_lo = 1e-6;
constexpr double eff_hi = 1.0;
constexpr double act_lo = 0.01;
constexpr double act_hi = 1.0;

double run_latency(const soc::compute_unit& cu, const nn::network& net,
                   const model_options& model) {
  return single_cu_run(net, cu, cu.dvfs.max_level(), model).latency_ms;
}

double run_energy(const soc::compute_unit& cu, const nn::network& net,
                  const model_options& model, double external_idle_w) {
  const single_cu_result r = single_cu_run(net, cu, cu.dvfs.max_level(), model);
  return r.energy_mj + external_idle_w * r.latency_ms;
}

/// Bisection for the efficiency of `cls` matching the anchor's latency.
/// Latency decreases monotonically with efficiency.
void solve_efficiency(soc::compute_unit& cu, soc::op_class cls, const reference_point& ref,
                      const model_options& model) {
  double lo = eff_lo;
  double hi = eff_hi;
  // If even eff_hi is too slow the target is compute-unreachable; if eff_lo
  // is too fast it is overhead-bound below the target.
  cu.set_efficiency(cls, hi);
  if (run_latency(cu, *ref.net, model) > ref.latency_ms)
    throw std::runtime_error("calibration: latency target unreachable (too slow at max eff)");
  cu.set_efficiency(cls, lo);
  if (run_latency(cu, *ref.net, model) < ref.latency_ms)
    throw std::runtime_error("calibration: latency target unreachable (overhead-bound)");
  for (int it = 0; it < 100; ++it) {
    const double mid = std::sqrt(lo * hi);  // log-scale bisection
    cu.set_efficiency(cls, mid);
    if (run_latency(cu, *ref.net, model) > ref.latency_ms) {
      lo = mid;  // too slow -> need more efficiency
    } else {
      hi = mid;
    }
  }
  cu.set_efficiency(cls, std::sqrt(lo * hi));
}

/// Bisection for the activity of `cls` matching the anchor's energy.
/// Energy increases monotonically with activity. Scales dynamic_power_w up
/// if the target exceeds the reachable range.
void solve_activity(soc::compute_unit& cu, soc::op_class cls, const reference_point& ref,
                    const model_options& model, double external_idle_w) {
  cu.set_activity(cls, act_hi);
  if (run_energy(cu, *ref.net, model, external_idle_w) < ref.energy_mj) {
    // Even full activity draws too little power: raise beta and re-enter.
    cu.dynamic_power_w *= 1.5;
    solve_activity(cu, cls, ref, model, external_idle_w);
    return;
  }
  cu.set_activity(cls, act_lo);
  if (run_energy(cu, *ref.net, model, external_idle_w) > ref.energy_mj)
    throw std::runtime_error("calibration: energy target below static floor");
  double lo = act_lo;
  double hi = act_hi;
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    cu.set_activity(cls, mid);
    if (run_energy(cu, *ref.net, model, external_idle_w) > ref.energy_mj) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  cu.set_activity(cls, 0.5 * (lo + hi));
}

}  // namespace

calibration_report calibrate_unit(soc::compute_unit& cu,
                                  std::span<const reference_point> anchors,
                                  const calibration_options& opt) {
  if (anchors.empty()) throw std::invalid_argument("calibrate_unit: no anchors");
  for (const auto& a : anchors) {
    if (a.net == nullptr) throw std::invalid_argument("calibrate_unit: null network");
    if (a.latency_ms <= 0.0 || a.energy_mj <= 0.0)
      throw std::invalid_argument("calibrate_unit: non-positive target");
  }

  // Alternate the per-class solves; each anchor perturbs the other's class
  // slightly (every network mixes both classes), so iterate to joint
  // convergence.
  for (int round = 0; round < opt.max_rounds; ++round) {
    for (const auto& a : anchors) solve_efficiency(cu, a.pins, a, opt.model);
    double worst = 0.0;
    for (const auto& a : anchors) {
      const double err =
          std::abs(run_latency(cu, *a.net, opt.model) - a.latency_ms) / a.latency_ms;
      worst = std::max(worst, err);
    }
    if (worst < opt.tolerance) break;
  }
  for (int round = 0; round < opt.max_rounds; ++round) {
    for (const auto& a : anchors) solve_activity(cu, a.pins, a, opt.model, opt.external_idle_w);
    double worst = 0.0;
    for (const auto& a : anchors) {
      const double err =
          std::abs(run_energy(cu, *a.net, opt.model, opt.external_idle_w) - a.energy_mj) /
          a.energy_mj;
      worst = std::max(worst, err);
    }
    if (worst < opt.tolerance) break;
  }

  calibration_report rep;
  rep.unit = cu.name;
  for (const auto& a : anchors) {
    rep.latency_error.push_back(
        (run_latency(cu, *a.net, opt.model) - a.latency_ms) / a.latency_ms);
    rep.energy_error.push_back(
        (run_energy(cu, *a.net, opt.model, opt.external_idle_w) - a.energy_mj) / a.energy_mj);
  }
  cu.validate();
  return rep;
}

calibrated_platform calibrated_xavier(const nn::network& visformer, const nn::network& vgg19,
                                      const calibration_options& opt) {
  calibrated_platform out;
  out.plat = soc::agx_xavier();

  // Paper Table II baselines ("None" rows).
  const reference_point gpu_anchors[] = {
      {&vgg19, 25.23, 630.11, soc::op_class::spatial},
      {&visformer, 15.01, 197.35, soc::op_class::matmul},
  };
  const reference_point dla_anchors[] = {
      {&vgg19, 114.41, 164.89, soc::op_class::spatial},
      {&visformer, 69.22, 53.71, soc::op_class::matmul},
  };

  for (std::size_t idx = 0; idx < out.plat.units.size(); ++idx) {
    soc::compute_unit& unit = out.plat.units[idx];
    const auto span = unit.kind == soc::cu_kind::gpu
                          ? std::span<const reference_point>(gpu_anchors)
                          : std::span<const reference_point>(dla_anchors);
    calibration_options unit_opt = opt;
    for (std::size_t other = 0; other < out.plat.units.size(); ++other)
      if (other != idx) unit_opt.external_idle_w += out.plat.units[other].idle_power_w();
    out.reports.push_back(calibrate_unit(unit, span, unit_opt));
  }
  out.plat.validate();
  return out;
}

}  // namespace mapcq::perf
