#include "perf/characterizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace mapcq::perf {

namespace {
void check_fractions(std::span<const double> f, std::size_t stages) {
  if (f.size() != stages)
    throw std::invalid_argument("dynamic_profile: exit fraction count != stage count");
  double s = 0.0;
  for (const double x : f) {
    if (x < -exit_fraction_tolerance)
      throw std::invalid_argument("dynamic_profile: negative exit fraction");
    s += x;
  }
  if (std::abs(s - 1.0) > exit_fraction_tolerance)
    throw std::invalid_argument("dynamic_profile: exit fractions must sum to 1");
}
}  // namespace

double dynamic_profile::avg_latency_ms(std::span<const double> exit_fractions) const {
  check_fractions(exit_fractions, stages());
  double acc = 0.0;
  for (std::size_t m = 0; m < stages(); ++m) acc += exit_fractions[m] * latency_upto[m];
  return acc;
}

double dynamic_profile::avg_energy_mj(std::span<const double> exit_fractions) const {
  check_fractions(exit_fractions, stages());
  double acc = 0.0;
  for (std::size_t m = 0; m < stages(); ++m) acc += exit_fractions[m] * energy_upto[m];
  return acc;
}

double dynamic_profile::worst_latency_ms() const {
  if (latency_upto.empty()) throw std::logic_error("dynamic_profile: empty");
  return latency_upto.back();
}

double dynamic_profile::worst_energy_mj() const {
  if (energy_upto.empty()) throw std::logic_error("dynamic_profile: empty");
  return energy_upto.back();
}

dynamic_profile characterize(const execution_result& result) {
  dynamic_profile p;
  const std::size_t n = result.stages.size();
  p.latency_upto.resize(n);
  p.energy_upto.resize(n);
  for (std::size_t m = 1; m <= n; ++m) {
    p.latency_upto[m - 1] = result.latency_ms(m);
    p.energy_upto[m - 1] = result.energy_mj(m);
  }
  return p;
}

dynamic_profile characterize_system(const execution_result& result, const stage_plan& plan,
                                    const soc::platform& plat,
                                    const soc::contention_context* ctx) {
  dynamic_profile p = characterize(result);
  const std::size_t n = result.stages.size();
  if (plan.cu_of_stage.size() != n)
    throw std::invalid_argument("characterize_system: plan/result stage mismatch");
  // Resident-reserved CUs bill their power to the resident, not this
  // mapping. The guard is branch-only so a null/idle context performs the
  // exact legacy FP sequence.
  const bool exclude_reserved = ctx != nullptr && !ctx->residents.empty();

  for (std::size_t m = 1; m <= n; ++m) {
    const double window = p.latency_upto[m - 1];
    double idle_mj = 0.0;
    std::vector<bool> hosts_active(plat.size(), false);
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t u = plan.cu_of_stage[i];
      hosts_active[u] = true;
      // Gated once its stage's work is done.
      idle_mj += plat.unit(u).idle_power_w() * std::max(0.0, window - result.stages[i].busy_ms);
    }
    for (std::size_t u = 0; u < plat.size(); ++u) {
      if (exclude_reserved && ctx->unit_reserved(u)) continue;
      if (!hosts_active[u]) idle_mj += plat.unit(u).idle_power_w() * window;
    }
    p.energy_upto[m - 1] += idle_mj;
  }
  return p;
}

}  // namespace mapcq::perf
