#pragma once
// Tensor shape descriptors. The framework never materializes tensor data;
// it reasons about shapes, byte volumes and operation counts only.

#include <cstdint>
#include <string>

namespace mapcq::nn {

/// Bytes per element for the deployed precision. The paper deploys through
/// TensorRT with fp16 engines on both GPU and DLA.
inline constexpr double fp16_bytes = 2.0;

/// Feature-map shape in CHW layout (sequence data is modeled as C=embedding
/// dim, H=tokens, W=1 so one struct serves CNNs and ViTs).
struct tensor_shape {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;

  [[nodiscard]] std::int64_t elements() const noexcept { return channels * height * width; }

  /// Feature-map bytes at deployment precision, optionally for a channel
  /// fraction (partitioned stage views see only a slice of the channels).
  [[nodiscard]] double bytes(double channel_fraction = 1.0) const noexcept {
    return static_cast<double>(elements()) * channel_fraction * fp16_bytes;
  }

  [[nodiscard]] std::string str() const;

  friend bool operator==(const tensor_shape&, const tensor_shape&) = default;
};

}  // namespace mapcq::nn
