#include "nn/tensor.h"

#include "util/strings.h"

namespace mapcq::nn {

std::string tensor_shape::str() const {
  return util::format("%ldx%ldx%ld", static_cast<long>(channels), static_cast<long>(height),
                      static_cast<long>(width));
}

}  // namespace mapcq::nn
