#include "nn/channel_ranking.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace mapcq::nn {

importance_profile::importance_profile(std::int64_t width, double skew, std::uint64_t seed)
    : width_(width) {
  if (width <= 0) throw std::invalid_argument("importance_profile: width must be positive");
  if (skew < 0.0) throw std::invalid_argument("importance_profile: negative skew");

  util::rng gen{seed};
  std::vector<double> original(static_cast<std::size_t>(width));
  double total = 0.0;
  for (auto& s : original) {
    s = gen.lognormal(0.0, skew);
    total += s;
  }
  for (auto& s : original) s /= total;

  ranked_ = original;
  std::sort(ranked_.begin(), ranked_.end(), std::greater<>());

  const auto prefix_of = [](const std::vector<double>& v) {
    std::vector<double> p(v.size() + 1, 0.0);
    for (std::size_t i = 0; i < v.size(); ++i) p[i + 1] = p[i] + v[i];
    return p;
  };
  prefix_ranked_ = prefix_of(ranked_);
  prefix_original_ = prefix_of(original);
}

double importance_profile::prefix_share(const std::vector<double>& prefix,
                                        double fraction) noexcept {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const double units = fraction * static_cast<double>(prefix.size() - 1);
  const auto lo = static_cast<std::size_t>(units);
  const auto hi = std::min(lo + 1, prefix.size() - 1);
  const double frac = units - static_cast<double>(lo);
  return prefix[lo] + frac * (prefix[hi] - prefix[lo]);
}

double importance_profile::coverage_ranked(double fraction) const noexcept {
  return prefix_share(prefix_ranked_, fraction);
}

double importance_profile::coverage_unranked(double fraction) const noexcept {
  return prefix_share(prefix_original_, fraction);
}

double visible_importance(const importance_profile& prof, std::span<const double> stage_fracs,
                          const std::vector<bool>& forwarded, std::size_t stage, bool reordered) {
  if (stage >= stage_fracs.size())
    throw std::invalid_argument("visible_importance: stage out of range");
  if (forwarded.size() + 1 < stage_fracs.size())
    throw std::invalid_argument("visible_importance: forwarded flags too short");

  const auto cov = [&](double f) {
    return reordered ? prof.coverage_ranked(f) : prof.coverage_unranked(f);
  };

  double share = 0.0;
  double cum = 0.0;
  for (std::size_t k = 0; k <= stage; ++k) {
    const double lo = cum;
    cum = std::min(1.0, cum + std::max(0.0, stage_fracs[k]));
    const bool visible = k == stage || (k < forwarded.size() && forwarded[k]);
    if (visible) share += cov(cum) - cov(lo);
  }
  return std::clamp(share, 0.0, 1.0);
}

ranked_network::ranked_network(const network& net, const std::vector<std::int64_t>& group_widths,
                               std::uint64_t seed) {
  if (group_widths.empty())
    throw std::invalid_argument("ranked_network: no partition groups supplied");
  util::rng root{seed};
  profiles_.reserve(group_widths.size());
  for (std::size_t g = 0; g < group_widths.size(); ++g) {
    auto child = root.split(g + 1);
    profiles_.emplace_back(group_widths[g], net.redundancy, child.next_u64());
  }
}

const importance_profile& ranked_network::profile(std::size_t group) const {
  if (group >= profiles_.size()) throw std::out_of_range("ranked_network::profile");
  return profiles_[group];
}

}  // namespace mapcq::nn
