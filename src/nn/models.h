#pragma once
// Reference architectures used in the paper's evaluation (§VI-A), adapted to
// CIFAR-100 input (3x32x32):
//   * Visformer  -- ViT-based architecture [Chen et al., ICCV'21]
//   * VGG19      -- CNN-based architecture [Simonyan & Zisserman, ICLR'15]
// plus a small CNN used by examples and tests.
//
// The builders produce shape-validated sequential graphs. Accuracy-model
// parameters (base accuracy, redundancy, multi-exit bonus) are set from the
// paper's reported baselines -- see DESIGN.md §2 for the substitution story.

#include "nn/graph.h"

namespace mapcq::nn {

/// Visformer adapted to CIFAR-100: conv stem + conv stage + two attention
/// stages (width unit: attention heads in transformer stages, channels in
/// conv stages). ~0.6 GFLOPs.
[[nodiscard]] network build_visformer(std::int64_t classes = 100);

/// VGG19 with CIFAR-style head (512-512-classes). ~0.8 GFLOPs.
[[nodiscard]] network build_vgg19(std::int64_t classes = 100);

/// Small 6-conv CNN for quickstart examples and fast tests. ~40 MFLOPs.
[[nodiscard]] network build_simple_cnn(std::int64_t classes = 10);

/// MobileNet-style network for CIFAR: depthwise-separable blocks.
/// Exercises the depthwise cost model; ~50 MFLOPs.
[[nodiscard]] network build_mobilenet_cifar(std::int64_t classes = 100);

/// The 20-layer "plain" (skip-free) network of the ResNet paper, CIFAR
/// variant -- a deeper sequential CNN for generalization experiments.
[[nodiscard]] network build_plain20(std::int64_t classes = 100);

}  // namespace mapcq::nn
