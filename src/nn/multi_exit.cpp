#include "nn/multi_exit.h"

namespace mapcq::nn {

exit_head make_exit_head(const tensor_shape& features, std::int64_t classes) {
  exit_head head;
  head.pool = make_global_pool("exit.pool", features);
  head.fc = make_classifier("exit.fc", features.channels, classes);
  return head;
}

}  // namespace mapcq::nn
