#pragma once
// Typed layer descriptors (paper eq. 1-2). A layer L_j owns a set of width
// units C^j_1..C^j_W -- output channels for convolutions / linear layers,
// attention heads for ViT attention blocks. Width partitioning (paper eq. 3)
// assigns contiguous fractions of those units to inference stages, so every
// cost quantity here is parameterized by
//   in_frac  -- fraction of the layer's *input* features visible to a stage
//   out_frac -- fraction of the layer's *output* width computed by a stage.

#include <cstdint>
#include <string>

#include "nn/tensor.h"

namespace mapcq::nn {

/// Operator families with distinct cost models and CU affinities.
enum class layer_kind {
  conv2d,       ///< dense 2-D convolution
  depthwise_conv2d,  ///< per-channel convolution (MobileNet-style)
  linear,       ///< fully-connected / projection
  attention,    ///< multi-head self-attention (width unit = head)
  mlp,          ///< transformer MLP block (fused fc-gelu-fc)
  norm,         ///< layer/batch normalization
  activation,   ///< ReLU / GELU (standalone)
  pool,         ///< spatial max/avg pooling
  patch_embed,  ///< strided-conv patch embedding / downsampling
  global_pool,  ///< global average pooling before a classifier
  classifier    ///< final (or exit) linear head to class logits
};

/// Readable kind name, e.g. "conv2d".
[[nodiscard]] const char* to_string(layer_kind kind) noexcept;

/// One computational layer of a static network.
///
/// Invariants: positive dims for the fields used by its kind; `width()` > 0
/// for partitionable kinds. Construct through the factory functions below,
/// which validate and derive output geometry.
struct layer {
  std::string name;
  layer_kind kind = layer_kind::conv2d;

  tensor_shape input;  ///< input feature-map shape (C,H,W); ViT: (D,T,1)

  std::int64_t out_channels = 0;  ///< conv/linear/patch_embed output channels
  std::int64_t kernel = 1;        ///< conv kernel size (square)
  std::int64_t stride = 1;        ///< conv/pool stride
  std::int64_t padding = 0;       ///< conv padding

  std::int64_t heads = 0;      ///< attention heads (width unit for attention)
  std::int64_t head_dim = 0;   ///< per-head dimension
  std::int64_t mlp_hidden = 0; ///< hidden width for mlp kind

  std::int64_t classes = 0;  ///< classifier output classes

  /// True if this layer's width can be split across stages. Non-partitionable
  /// layers (global_pool, classifier) are replicated per stage instead.
  bool partitionable = true;

  // --- geometry ----------------------------------------------------------

  /// Output feature-map shape for the full (unpartitioned) layer.
  [[nodiscard]] tensor_shape output() const noexcept;

  /// Number of width units (channels or heads) available for partitioning.
  [[nodiscard]] std::int64_t width() const noexcept;

  // --- cost model --------------------------------------------------------

  /// Multiply-accumulate-based FLOP count (2 FLOPs per MAC) when `in_frac`
  /// of the input features are visible and `out_frac` of the width units are
  /// computed. Fractions in [0,1]; full layer = flops(1,1).
  [[nodiscard]] double flops(double in_frac = 1.0, double out_frac = 1.0) const noexcept;

  /// Weight parameter count under the same fractional view.
  [[nodiscard]] double params(double in_frac = 1.0, double out_frac = 1.0) const noexcept;

  /// Weight bytes at deployment precision.
  [[nodiscard]] double weight_bytes(double in_frac = 1.0, double out_frac = 1.0) const noexcept;

  /// Input / output activation bytes for the fractional view.
  [[nodiscard]] double input_bytes(double in_frac = 1.0) const noexcept;
  [[nodiscard]] double output_bytes(double out_frac = 1.0) const noexcept;

  /// Arithmetic intensity (FLOPs per byte moved) of the fractional view;
  /// used by the roofline latency model.
  [[nodiscard]] double arithmetic_intensity(double in_frac = 1.0,
                                            double out_frac = 1.0) const noexcept;
};

// --- factories (validate and derive geometry) ----------------------------

[[nodiscard]] layer make_conv2d(std::string name, tensor_shape input, std::int64_t out_channels,
                                std::int64_t kernel, std::int64_t stride, std::int64_t padding);
/// Depthwise convolution: one filter per channel (out channels = in channels).
[[nodiscard]] layer make_depthwise_conv2d(std::string name, tensor_shape input,
                                          std::int64_t kernel, std::int64_t stride,
                                          std::int64_t padding);
[[nodiscard]] layer make_linear(std::string name, std::int64_t in_features,
                                std::int64_t out_features);
/// Attention over a CHW feature map: embed dim = channels, tokens = H*W.
[[nodiscard]] layer make_attention(std::string name, tensor_shape input, std::int64_t heads);
/// Transformer MLP block over a CHW feature map (tokens = H*W).
[[nodiscard]] layer make_mlp(std::string name, tensor_shape input, std::int64_t hidden);
[[nodiscard]] layer make_norm(std::string name, tensor_shape input);
[[nodiscard]] layer make_activation(std::string name, tensor_shape input);
[[nodiscard]] layer make_pool(std::string name, tensor_shape input, std::int64_t kernel,
                              std::int64_t stride);
[[nodiscard]] layer make_patch_embed(std::string name, tensor_shape input,
                                     std::int64_t out_channels, std::int64_t patch);
[[nodiscard]] layer make_global_pool(std::string name, tensor_shape input);
[[nodiscard]] layer make_classifier(std::string name, std::int64_t in_features,
                                    std::int64_t classes);

}  // namespace mapcq::nn
