#pragma once
// Early-exit heads. After the static->dynamic transformation every stage is
// "augmented with an exit at its tail (e.g., a classifier layer)" (paper
// §III-A). An exit head is a global pool + linear classifier over the
// features the stage can see.

#include <cstdint>

#include "nn/layer.h"

namespace mapcq::nn {

/// Exit head of one inference stage.
struct exit_head {
  layer pool;        ///< global average pool over the visible features
  layer fc;          ///< linear head to class logits

  [[nodiscard]] double flops() const noexcept { return pool.flops() + fc.flops(); }
  [[nodiscard]] double params() const noexcept { return pool.params() + fc.params(); }
  [[nodiscard]] double weight_bytes() const noexcept {
    return pool.weight_bytes() + fc.weight_bytes();
  }
};

/// Builds an exit head over `features` (the stage's visible slice of the
/// final feature map) into `classes` logits. Throws on non-positive dims.
[[nodiscard]] exit_head make_exit_head(const tensor_shape& features, std::int64_t classes);

}  // namespace mapcq::nn
