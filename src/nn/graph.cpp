#include "nn/graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace mapcq::nn {

void network::validate() const {
  if (layers.empty()) throw std::logic_error("network '" + name + "': no layers");
  if (classes <= 0) throw std::logic_error("network '" + name + "': classes must be positive");
  if (layers.front().input != input)
    throw std::logic_error("network '" + name + "': first layer input mismatch");
  for (std::size_t j = 1; j < layers.size(); ++j) {
    if (layers[j].input != layers[j - 1].output())
      throw std::logic_error(util::format(
          "network '%s': shape break between '%s' (out %s) and '%s' (in %s)", name.c_str(),
          layers[j - 1].name.c_str(), layers[j - 1].output().str().c_str(),
          layers[j].name.c_str(), layers[j].input.str().c_str()));
  }
  const layer& last = layers.back();
  if (last.kind != layer_kind::classifier || last.classes != classes)
    throw std::logic_error("network '" + name + "': must end in a classifier over `classes`");
}

double network::total_flops() const noexcept {
  double s = 0.0;
  for (const auto& l : layers) s += l.flops();
  return s;
}

double network::total_params() const noexcept {
  double s = 0.0;
  for (const auto& l : layers) s += l.params();
  return s;
}

double network::total_weight_bytes() const noexcept {
  double s = 0.0;
  for (const auto& l : layers) s += l.weight_bytes();
  return s;
}

double network::peak_activation_bytes() const noexcept {
  double peak = input.bytes();
  for (const auto& l : layers) peak = std::max(peak, l.output_bytes());
  return peak;
}

std::vector<std::size_t> network::partitionable_layers() const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < layers.size(); ++j)
    if (layers[j].partitionable) out.push_back(j);
  return out;
}

std::int64_t network::feature_dim() const {
  if (layers.empty()) throw std::logic_error("network::feature_dim: empty network");
  return layers.back().input.channels;
}

}  // namespace mapcq::nn
