#pragma once
// FLOPs / parameter / byte breakdown reporting for a network -- used by
// examples and by the search-space bench to show workload composition.

#include <string>
#include <vector>

#include "nn/graph.h"

namespace mapcq::nn {

/// Per-layer cost summary.
struct layer_cost {
  std::string name;
  layer_kind kind;
  double flops = 0.0;
  double params = 0.0;
  double activation_bytes = 0.0;  // output fmap bytes
  double share = 0.0;             // flops share of the whole network
};

/// Computes the per-layer breakdown (shares sum to ~1).
[[nodiscard]] std::vector<layer_cost> analyze(const network& net);

/// Renders the breakdown as an ASCII table (top `max_rows` layers by FLOPs,
/// or all if 0).
[[nodiscard]] std::string cost_table(const network& net, std::size_t max_rows = 0);

}  // namespace mapcq::nn
