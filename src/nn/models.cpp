#include "nn/models.h"

#include "util/strings.h"

namespace mapcq::nn {

namespace {

/// Appends `l` and returns its output shape for chaining.
tensor_shape push(network& net, layer l) {
  net.layers.push_back(std::move(l));
  return net.layers.back().output();
}

}  // namespace

network build_visformer(std::int64_t classes) {
  network net;
  net.name = "visformer_cifar";
  net.input = {3, 32, 32};
  net.classes = classes;
  // Paper Table II: Visformer 88.09 % on CIFAR-100. ViTs have moderate
  // channel redundancy and gain little from deep supervision.
  net.base_accuracy = 88.09;
  net.redundancy = 0.9;
  net.multi_exit_bonus = 0.4;
  net.accuracy_sensitivity = 0.30;
  net.early_exit_discount = 0.28;

  tensor_shape s = net.input;

  // Stem: 3x3 conv to 32 channels (keeps 32x32 resolution).
  s = push(net, make_conv2d("stem.conv", s, 32, 3, 1, 1));
  s = push(net, make_norm("stem.norm", s));
  s = push(net, make_activation("stem.act", s));

  // Patch embedding 1: 32 -> 96 channels at 16x16.
  s = push(net, make_patch_embed("embed1", s, 96, 2));

  // Stage 1: two convolutional blocks (Visformer keeps convs early).
  for (int b = 0; b < 2; ++b) {
    const auto tag = util::format("stage1.b%d", b);
    s = push(net, make_norm(tag + ".norm", s));
    s = push(net, make_conv2d(tag + ".conv", s, 96, 3, 1, 1));
    s = push(net, make_activation(tag + ".act", s));
  }

  // Patch embedding 2: 96 -> 192 at 8x8 (64 tokens).
  s = push(net, make_patch_embed("embed2", s, 192, 2));

  // Stage 2: four attention blocks, 6 heads each.
  for (int b = 0; b < 4; ++b) {
    const auto tag = util::format("stage2.b%d", b);
    s = push(net, make_norm(tag + ".norm1", s));
    s = push(net, make_attention(tag + ".attn", s, 6));
    s = push(net, make_norm(tag + ".norm2", s));
    s = push(net, make_mlp(tag + ".mlp", s, 4 * 192));
  }

  // Patch embedding 3: 192 -> 384 at 4x4 (16 tokens).
  s = push(net, make_patch_embed("embed3", s, 384, 2));

  // Stage 3: four attention blocks, 12 heads each.
  for (int b = 0; b < 4; ++b) {
    const auto tag = util::format("stage3.b%d", b);
    s = push(net, make_norm(tag + ".norm1", s));
    s = push(net, make_attention(tag + ".attn", s, 12));
    s = push(net, make_norm(tag + ".norm2", s));
    s = push(net, make_mlp(tag + ".mlp", s, 4 * 384));
  }

  s = push(net, make_global_pool("head.pool", s));
  push(net, make_classifier("head.fc", s.channels, classes));

  net.validate();
  return net;
}

network build_vgg19(std::int64_t classes) {
  network net;
  net.name = "vgg19_cifar";
  net.input = {3, 32, 32};
  net.classes = classes;
  // Paper Table II: VGG19 80.55 % on CIFAR-100. Heavily over-parameterized
  // -> high redundancy; multi-exit fine-tuning lifts it by ~4 points
  // (paper: Ours rows reach 84.8 with VGG19).
  net.base_accuracy = 80.55;
  net.redundancy = 1.8;
  net.multi_exit_bonus = 4.9;
  net.accuracy_sensitivity = 0.05;
  net.early_exit_discount = 0.10;

  tensor_shape s = net.input;
  int idx = 0;
  const auto conv_block = [&](std::int64_t out_ch) {
    const auto tag = util::format("conv%d", idx++);
    s = push(net, make_conv2d(tag, s, out_ch, 3, 1, 1));
    s = push(net, make_norm(tag + ".bn", s));
    s = push(net, make_activation(tag + ".relu", s));
  };
  const auto pool = [&](const char* nm) { s = push(net, make_pool(nm, s, 2, 2)); };

  // Configuration E: 64x2, 128x2, 256x4, 512x4, 512x4 with 5 pools.
  conv_block(64);
  conv_block(64);
  pool("pool1");
  conv_block(128);
  conv_block(128);
  pool("pool2");
  for (int i = 0; i < 4; ++i) conv_block(256);
  pool("pool3");
  for (int i = 0; i < 4; ++i) conv_block(512);
  pool("pool4");
  for (int i = 0; i < 4; ++i) conv_block(512);
  pool("pool5");

  // CIFAR-style head: flatten 512x1x1 then two hidden FC layers.
  s = push(net, make_linear("fc1", s.channels, 512));
  s = push(net, make_activation("fc1.relu", s));
  s = push(net, make_linear("fc2", s.channels, 512));
  s = push(net, make_activation("fc2.relu", s));
  push(net, make_classifier("fc3", s.channels, classes));

  net.validate();
  return net;
}

network build_mobilenet_cifar(std::int64_t classes) {
  network net;
  net.name = "mobilenet_cifar";
  net.input = {3, 32, 32};
  net.classes = classes;
  net.base_accuracy = 74.5;   // typical MobileNetV1-0.5x-ish CIFAR-100 accuracy
  net.redundancy = 1.0;       // lean network: little channel redundancy
  net.multi_exit_bonus = 1.2;
  net.accuracy_sensitivity = 0.35;
  net.early_exit_discount = 0.22;

  tensor_shape s = net.input;
  s = push(net, make_conv2d("stem", s, 32, 3, 1, 1));
  s = push(net, make_norm("stem.bn", s));
  s = push(net, make_activation("stem.relu", s));

  int idx = 0;
  const auto separable = [&](std::int64_t out_ch, std::int64_t stride) {
    const auto tag = util::format("sep%d", idx++);
    s = push(net, make_depthwise_conv2d(tag + ".dw", s, 3, stride, 1));
    s = push(net, make_norm(tag + ".dw.bn", s));
    s = push(net, make_activation(tag + ".dw.relu", s));
    s = push(net, make_conv2d(tag + ".pw", s, out_ch, 1, 1, 0));
    s = push(net, make_norm(tag + ".pw.bn", s));
    s = push(net, make_activation(tag + ".pw.relu", s));
  };
  separable(64, 1);
  separable(128, 2);
  separable(128, 1);
  separable(256, 2);
  separable(256, 1);
  separable(512, 2);
  separable(512, 1);

  s = push(net, make_global_pool("gpool", s));
  push(net, make_classifier("fc", s.channels, classes));
  net.validate();
  return net;
}

network build_plain20(std::int64_t classes) {
  network net;
  net.name = "plain20_cifar";
  net.input = {3, 32, 32};
  net.classes = classes;
  net.base_accuracy = 67.5;   // plain (skip-free) nets degrade vs ResNet-20
  net.redundancy = 1.3;
  net.multi_exit_bonus = 2.0;
  net.accuracy_sensitivity = 0.18;
  net.early_exit_discount = 0.18;

  tensor_shape s = net.input;
  int idx = 0;
  const auto conv_bn_relu = [&](std::int64_t out_ch, std::int64_t stride) {
    const auto tag = util::format("conv%d", idx++);
    s = push(net, make_conv2d(tag, s, out_ch, 3, stride, 1));
    s = push(net, make_norm(tag + ".bn", s));
    s = push(net, make_activation(tag + ".relu", s));
  };
  conv_bn_relu(16, 1);
  for (int i = 0; i < 6; ++i) conv_bn_relu(16, 1);
  conv_bn_relu(32, 2);
  for (int i = 0; i < 5; ++i) conv_bn_relu(32, 1);
  conv_bn_relu(64, 2);
  for (int i = 0; i < 5; ++i) conv_bn_relu(64, 1);

  s = push(net, make_global_pool("gpool", s));
  push(net, make_classifier("fc", s.channels, classes));
  net.validate();
  return net;
}

network build_simple_cnn(std::int64_t classes) {
  network net;
  net.name = "simple_cnn";
  net.input = {3, 32, 32};
  net.classes = classes;
  net.base_accuracy = 91.0;
  net.redundancy = 1.2;
  net.multi_exit_bonus = 1.0;

  tensor_shape s = net.input;
  s = push(net, make_conv2d("conv1", s, 32, 3, 1, 1));
  s = push(net, make_activation("act1", s));
  s = push(net, make_conv2d("conv2", s, 32, 3, 1, 1));
  s = push(net, make_activation("act2", s));
  s = push(net, make_pool("pool1", s, 2, 2));
  s = push(net, make_conv2d("conv3", s, 64, 3, 1, 1));
  s = push(net, make_activation("act3", s));
  s = push(net, make_conv2d("conv4", s, 64, 3, 1, 1));
  s = push(net, make_activation("act4", s));
  s = push(net, make_pool("pool2", s, 2, 2));
  s = push(net, make_conv2d("conv5", s, 128, 3, 1, 1));
  s = push(net, make_activation("act5", s));
  s = push(net, make_conv2d("conv6", s, 128, 3, 1, 1));
  s = push(net, make_activation("act6", s));
  s = push(net, make_global_pool("gpool", s));
  push(net, make_classifier("fc", s.channels, classes));

  net.validate();
  return net;
}

}  // namespace mapcq::nn
