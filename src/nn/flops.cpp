#include "nn/flops.h"

#include <algorithm>

#include "util/strings.h"
#include "util/table.h"

namespace mapcq::nn {

std::vector<layer_cost> analyze(const network& net) {
  std::vector<layer_cost> out;
  out.reserve(net.layers.size());
  const double total = net.total_flops();
  for (const auto& l : net.layers) {
    layer_cost c;
    c.name = l.name;
    c.kind = l.kind;
    c.flops = l.flops();
    c.params = l.params();
    c.activation_bytes = l.output_bytes();
    c.share = total > 0.0 ? c.flops / total : 0.0;
    out.push_back(c);
  }
  return out;
}

std::string cost_table(const network& net, std::size_t max_rows) {
  auto costs = analyze(net);
  if (max_rows != 0 && costs.size() > max_rows) {
    std::stable_sort(costs.begin(), costs.end(),
                     [](const layer_cost& a, const layer_cost& b) { return a.flops > b.flops; });
    costs.resize(max_rows);
  }
  util::table t({"layer", "kind", "flops", "params", "act bytes", "share"});
  for (const auto& c : costs) {
    t.add_row({c.name, to_string(c.kind), util::human_flops(c.flops),
               util::format("%.0f", c.params), util::human_bytes(c.activation_bytes),
               util::format("%.1f%%", 100.0 * c.share)});
  }
  return t.str();
}

}  // namespace mapcq::nn
