#include "nn/layer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mapcq::nn {

const char* to_string(layer_kind kind) noexcept {
  switch (kind) {
    case layer_kind::conv2d: return "conv2d";
    case layer_kind::depthwise_conv2d: return "dwconv2d";
    case layer_kind::linear: return "linear";
    case layer_kind::attention: return "attention";
    case layer_kind::mlp: return "mlp";
    case layer_kind::norm: return "norm";
    case layer_kind::activation: return "activation";
    case layer_kind::pool: return "pool";
    case layer_kind::patch_embed: return "patch_embed";
    case layer_kind::global_pool: return "global_pool";
    case layer_kind::classifier: return "classifier";
  }
  return "unknown";
}

tensor_shape layer::output() const noexcept {
  switch (kind) {
    case layer_kind::conv2d:
    case layer_kind::depthwise_conv2d: {
      const std::int64_t h = (input.height + 2 * padding - kernel) / stride + 1;
      const std::int64_t w = (input.width + 2 * padding - kernel) / stride + 1;
      return {out_channels, h, w};
    }
    case layer_kind::patch_embed: {
      const std::int64_t h = input.height / kernel;
      const std::int64_t w = input.width / kernel;
      return {out_channels, h, w};
    }
    case layer_kind::linear:
      return {out_channels, 1, 1};
    case layer_kind::attention:
    case layer_kind::mlp:
    case layer_kind::norm:
    case layer_kind::activation:
      return input;
    case layer_kind::pool: {
      const std::int64_t h = input.height / stride;
      const std::int64_t w = input.width / stride;
      return {input.channels, h, w};
    }
    case layer_kind::global_pool:
      return {input.channels, 1, 1};
    case layer_kind::classifier:
      return {classes, 1, 1};
  }
  return input;
}

std::int64_t layer::width() const noexcept {
  switch (kind) {
    case layer_kind::conv2d:
    case layer_kind::depthwise_conv2d:
    case layer_kind::patch_embed:
    case layer_kind::linear:
      return out_channels;
    case layer_kind::attention:
      return heads;
    case layer_kind::mlp:
      return mlp_hidden;
    case layer_kind::norm:
    case layer_kind::activation:
    case layer_kind::pool:
    case layer_kind::global_pool:
      return input.channels;
    case layer_kind::classifier:
      return classes;
  }
  return 0;
}

double layer::flops(double in_frac, double out_frac) const noexcept {
  in_frac = std::clamp(in_frac, 0.0, 1.0);
  out_frac = std::clamp(out_frac, 0.0, 1.0);
  const auto out = output();
  const double spatial = static_cast<double>(out.height) * static_cast<double>(out.width);
  switch (kind) {
    case layer_kind::conv2d:
    case layer_kind::patch_embed: {
      const double cin = static_cast<double>(input.channels) * in_frac;
      const double cout = static_cast<double>(out_channels) * out_frac;
      return 2.0 * cin * cout * static_cast<double>(kernel) * static_cast<double>(kernel) * spatial;
    }
    case layer_kind::depthwise_conv2d: {
      // Channel i consumes only channel i: cost follows the slice width and
      // is capped by the available input channels.
      const double ch = static_cast<double>(out_channels) * std::min(in_frac, out_frac);
      return 2.0 * ch * static_cast<double>(kernel) * static_cast<double>(kernel) * spatial;
    }
    case layer_kind::linear:
      return 2.0 * static_cast<double>(input.channels) * in_frac *
             static_cast<double>(out_channels) * out_frac;
    case layer_kind::attention: {
      // Q/K/V projections + attention matmuls + output projection for a
      // subset of heads. D = embed dim, T = tokens (= H*W), dh = head dim.
      const double d = static_cast<double>(input.channels);
      const double t = static_cast<double>(input.height) * static_cast<double>(input.width);
      const double dh = static_cast<double>(head_dim);
      const double h = static_cast<double>(heads) * out_frac;
      const double qkv = 3.0 * 2.0 * (d * in_frac) * (h * dh) * t;
      const double scores = 2.0 * t * t * dh * h;      // Q K^T
      const double context = 2.0 * t * t * dh * h;     // softmax(.) V
      const double proj = 2.0 * (h * dh) * d * t;      // concat -> D
      return qkv + scores + context + proj;
    }
    case layer_kind::mlp: {
      const double d = static_cast<double>(input.channels);
      const double t = static_cast<double>(input.height) * static_cast<double>(input.width);
      const double hidden = static_cast<double>(mlp_hidden) * out_frac;
      return 2.0 * (d * in_frac) * hidden * t + 2.0 * hidden * d * t;
    }
    case layer_kind::norm:
    case layer_kind::activation:
      // elementwise: ~4 ops per element (norm), 1 (act); keep 4 for both to
      // stay conservative -- these are latency-negligible either way.
      return 4.0 * static_cast<double>(input.elements()) * out_frac;
    case layer_kind::pool:
      return static_cast<double>(out.elements()) * out_frac *
             static_cast<double>(kernel) * static_cast<double>(kernel);
    case layer_kind::global_pool:
      return static_cast<double>(input.elements()) * out_frac;
    case layer_kind::classifier:
      return 2.0 * static_cast<double>(input.channels) * in_frac * static_cast<double>(classes);
  }
  return 0.0;
}

double layer::params(double in_frac, double out_frac) const noexcept {
  in_frac = std::clamp(in_frac, 0.0, 1.0);
  out_frac = std::clamp(out_frac, 0.0, 1.0);
  switch (kind) {
    case layer_kind::conv2d:
    case layer_kind::patch_embed:
      return static_cast<double>(input.channels) * in_frac * static_cast<double>(out_channels) *
                 out_frac * static_cast<double>(kernel) * static_cast<double>(kernel) +
             static_cast<double>(out_channels) * out_frac;  // bias
    case layer_kind::depthwise_conv2d:
      return static_cast<double>(out_channels) * out_frac *
                 (static_cast<double>(kernel) * static_cast<double>(kernel) + 1.0);
    case layer_kind::linear:
      return (static_cast<double>(input.channels) * in_frac + 1.0) *
             static_cast<double>(out_channels) * out_frac;
    case layer_kind::attention: {
      const double d = static_cast<double>(input.channels);
      const double dh = static_cast<double>(head_dim);
      const double h = static_cast<double>(heads) * out_frac;
      return 3.0 * (d * in_frac) * (h * dh) + (h * dh) * d;  // qkv + out proj
    }
    case layer_kind::mlp: {
      const double d = static_cast<double>(input.channels);
      const double hidden = static_cast<double>(mlp_hidden) * out_frac;
      return (d * in_frac + 1.0) * hidden + (hidden + 1.0) * d;
    }
    case layer_kind::norm:
      return 2.0 * static_cast<double>(input.channels) * out_frac;  // scale + shift
    case layer_kind::activation:
    case layer_kind::pool:
    case layer_kind::global_pool:
      return 0.0;
    case layer_kind::classifier:
      return (static_cast<double>(input.channels) * in_frac + 1.0) * static_cast<double>(classes);
  }
  return 0.0;
}

double layer::weight_bytes(double in_frac, double out_frac) const noexcept {
  return params(in_frac, out_frac) * fp16_bytes;
}

double layer::input_bytes(double in_frac) const noexcept { return input.bytes(in_frac); }

double layer::output_bytes(double out_frac) const noexcept { return output().bytes(out_frac); }

double layer::arithmetic_intensity(double in_frac, double out_frac) const noexcept {
  const double moved =
      input_bytes(in_frac) + output_bytes(out_frac) + weight_bytes(in_frac, out_frac);
  if (moved <= 0.0) return 0.0;
  return flops(in_frac, out_frac) / moved;
}

namespace {

void require_positive(std::int64_t v, const char* what) {
  if (v <= 0) throw std::invalid_argument(std::string("layer: non-positive ") + what);
}

void require_shape(const tensor_shape& s) {
  require_positive(s.channels, "channels");
  require_positive(s.height, "height");
  require_positive(s.width, "width");
}

}  // namespace

layer make_conv2d(std::string name, tensor_shape input, std::int64_t out_channels,
                  std::int64_t kernel, std::int64_t stride, std::int64_t padding) {
  require_shape(input);
  require_positive(out_channels, "out_channels");
  require_positive(kernel, "kernel");
  require_positive(stride, "stride");
  if (padding < 0) throw std::invalid_argument("layer: negative padding");
  if (input.height + 2 * padding < kernel)
    throw std::invalid_argument("layer: kernel larger than padded input");
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::conv2d;
  l.input = input;
  l.out_channels = out_channels;
  l.kernel = kernel;
  l.stride = stride;
  l.padding = padding;
  return l;
}

layer make_depthwise_conv2d(std::string name, tensor_shape input, std::int64_t kernel,
                            std::int64_t stride, std::int64_t padding) {
  require_shape(input);
  require_positive(kernel, "kernel");
  require_positive(stride, "stride");
  if (padding < 0) throw std::invalid_argument("layer: negative padding");
  if (input.height + 2 * padding < kernel)
    throw std::invalid_argument("layer: kernel larger than padded input");
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::depthwise_conv2d;
  l.input = input;
  l.out_channels = input.channels;
  l.kernel = kernel;
  l.stride = stride;
  l.padding = padding;
  return l;
}

layer make_linear(std::string name, std::int64_t in_features, std::int64_t out_features) {
  require_positive(in_features, "in_features");
  require_positive(out_features, "out_features");
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::linear;
  l.input = {in_features, 1, 1};
  l.out_channels = out_features;
  return l;
}

layer make_attention(std::string name, tensor_shape input, std::int64_t heads) {
  require_shape(input);
  require_positive(heads, "heads");
  if (input.channels % heads != 0)
    throw std::invalid_argument("layer: embed_dim must be divisible by heads");
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::attention;
  l.input = input;
  l.heads = heads;
  l.head_dim = input.channels / heads;
  return l;
}

layer make_mlp(std::string name, tensor_shape input, std::int64_t hidden) {
  require_shape(input);
  require_positive(hidden, "mlp_hidden");
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::mlp;
  l.input = input;
  l.mlp_hidden = hidden;
  return l;
}

layer make_norm(std::string name, tensor_shape input) {
  require_shape(input);
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::norm;
  l.input = input;
  return l;
}

layer make_activation(std::string name, tensor_shape input) {
  require_shape(input);
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::activation;
  l.input = input;
  return l;
}

layer make_pool(std::string name, tensor_shape input, std::int64_t kernel, std::int64_t stride) {
  require_shape(input);
  require_positive(kernel, "kernel");
  require_positive(stride, "stride");
  if (input.height < kernel) throw std::invalid_argument("layer: pool kernel larger than input");
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::pool;
  l.input = input;
  l.kernel = kernel;
  l.stride = stride;
  return l;
}

layer make_patch_embed(std::string name, tensor_shape input, std::int64_t out_channels,
                       std::int64_t patch) {
  require_shape(input);
  require_positive(out_channels, "out_channels");
  require_positive(patch, "patch");
  if (input.height % patch != 0 || input.width % patch != 0)
    throw std::invalid_argument("layer: input not divisible by patch size");
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::patch_embed;
  l.input = input;
  l.out_channels = out_channels;
  l.kernel = patch;
  l.stride = patch;
  return l;
}

layer make_global_pool(std::string name, tensor_shape input) {
  require_shape(input);
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::global_pool;
  l.input = input;
  l.partitionable = false;
  return l;
}

layer make_classifier(std::string name, std::int64_t in_features, std::int64_t classes) {
  require_positive(in_features, "in_features");
  require_positive(classes, "classes");
  layer l;
  l.name = std::move(name);
  l.kind = layer_kind::classifier;
  l.input = {in_features, 1, 1};
  l.classes = classes;
  l.partitionable = false;
  return l;
}

}  // namespace mapcq::nn
