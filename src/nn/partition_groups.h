#pragma once
// Partition groups: the unit of the P / I matrices (paper eq. 4).
//
// The paper assigns one split ratio per layer. In a real graph, elementwise
// layers (norm, activation, pool) must inherit the split of the
// width-defining layer that produced their input -- splitting them
// independently would be meaningless. A *partition group* is therefore a
// width-defining layer (conv / patch_embed / linear / attention / mlp)
// together with the run of dependent elementwise layers that follows it.
// The search space has one ratio vector and one indicator bit-row per group.

#include <cstddef>
#include <vector>

#include "nn/graph.h"

namespace mapcq::nn {

/// One unit of width partitioning.
struct partition_group {
  std::size_t lead = 0;                ///< index of the width-defining layer
  std::vector<std::size_t> members;    ///< lead + trailing elementwise layers
  std::int64_t width = 0;              ///< width units of the lead layer

  /// Feature-map bytes produced by the group (= lead layer's output) for a
  /// fractional view; this is what crosses CUs when a later stage reuses it.
  [[nodiscard]] double output_bytes(const network& net, double fraction) const;
};

/// Splits the network into partition groups. Leading elementwise layers
/// (before any width-defining layer) join the first group; trailing
/// non-partitionable layers (global_pool / classifier) are excluded --
/// they are replicated per stage as exit heads instead.
[[nodiscard]] std::vector<partition_group> make_partition_groups(const network& net);

}  // namespace mapcq::nn
