#pragma once
// Channel importance ranking (paper §V-D).
//
// The paper ranks each layer's channels by importance (Taylor-expansion
// criterion of Molchanov et al. [19]) and assigns the most important
// channels to the earliest inference stages. Without trained weights we
// synthesize per-channel importance scores from a seeded log-normal
// distribution whose spread is the architecture's `redundancy` parameter:
// redundant networks (VGG19) have a few dominant channels and a long tail,
// so the top fraction of ranked channels covers most of the total
// importance -- exactly the concavity the paper's early exits exploit.

#include <cstdint>
#include <span>
#include <vector>

#include "nn/graph.h"

namespace mapcq::nn {

/// Importance scores of one layer's width units.
class importance_profile {
 public:
  /// Builds a profile of `width` synthetic scores ~ LogNormal(0, skew),
  /// deterministic in (seed, width, skew).
  importance_profile(std::int64_t width, double skew, std::uint64_t seed);

  /// Share of total importance captured by the first `fraction` of units
  /// when units are sorted by descending importance (channel reordering ON).
  /// Concave in `fraction`; coverage(0)=0, coverage(1)=1. Fractional unit
  /// counts are linearly interpolated.
  [[nodiscard]] double coverage_ranked(double fraction) const noexcept;

  /// Same share in the original (unranked) channel order -- approximately
  /// linear. Used by the reordering ablation.
  [[nodiscard]] double coverage_unranked(double fraction) const noexcept;

  [[nodiscard]] std::int64_t width() const noexcept { return width_; }

  /// Descending scores (normalized to sum 1).
  [[nodiscard]] const std::vector<double>& ranked_scores() const noexcept { return ranked_; }

 private:
  static double prefix_share(const std::vector<double>& prefix, double fraction) noexcept;

  std::int64_t width_;
  std::vector<double> ranked_;          // descending, sum = 1
  std::vector<double> prefix_ranked_;   // prefix sums of ranked_
  std::vector<double> prefix_original_; // prefix sums in generation order
};

/// Importance share of one group visible to `stage` under a partitioning.
///
/// Channel reordering places stage 1's slice on the most important units:
/// stage k owns the ranked interval [cum_{k-1}, cum_k) where cum_k is the
/// prefix sum of `stage_fracs`. Stage `stage` sees its own slice plus every
/// predecessor slice whose indicator bit is set (`forwarded[k]`, k < stage).
/// With reordering disabled the unranked (≈linear) coverage curve is used.
///
/// Returns the summed importance share of the visible slices, in [0, 1].
[[nodiscard]] double visible_importance(const importance_profile& prof,
                                        std::span<const double> stage_fracs,
                                        const std::vector<bool>& forwarded, std::size_t stage,
                                        bool reordered = true);

/// Per-group importance profiles for a whole network. Group g's profile has
/// that group's width; seeds derive deterministically from a root seed, so
/// two builds of the same network agree.
class ranked_network {
 public:
  /// Builds profiles for the given group widths using the network's
  /// redundancy as the skew.
  ranked_network(const network& net, const std::vector<std::int64_t>& group_widths,
                 std::uint64_t seed = 0xC0FFEE);

  [[nodiscard]] const importance_profile& profile(std::size_t group) const;
  [[nodiscard]] std::size_t groups() const noexcept { return profiles_.size(); }

 private:
  std::vector<importance_profile> profiles_;
};

}  // namespace mapcq::nn
