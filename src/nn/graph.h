#pragma once
// Sequential network container (paper eq. 1: NN = L_n o ... o L_1) plus
// architecture-level properties consumed by the synthetic accuracy model.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace mapcq::nn {

/// A static, sequential neural network. Layers are stored in execution
/// order; layer j+1 consumes layer j's output. `validate()` enforces shape
/// chaining so builders cannot silently produce inconsistent graphs.
struct network {
  std::string name;
  tensor_shape input;       ///< model input (e.g. 3x32x32 for CIFAR-100)
  std::int64_t classes = 0; ///< classification classes

  std::vector<layer> layers;

  // --- accuracy-model parameters (see DESIGN.md §2) -----------------------
  // These replace the trained checkpoints the paper evaluates: they drive
  // the closed-form stage-accuracy model in data::accuracy_model.
  double base_accuracy = 0.0;    ///< full-width top-1 accuracy (percent)
  double redundancy = 1.0;       ///< channel-importance skew; higher = more redundant
  double multi_exit_bonus = 0.0; ///< max deep-supervision gain (accuracy points)
  double accuracy_sensitivity = 0.15;  ///< exponent of accuracy vs importance coverage
  /// Relative accuracy handicap of the earliest exit head vs the final one
  /// (early heads see shallower features and train weakly; ViT slices
  /// especially so). Interpolated linearly across stages.
  double early_exit_discount = 0.15;

  /// Throws std::logic_error if consecutive shapes do not chain or the last
  /// layer is not a classifier with `classes` outputs.
  void validate() const;

  /// Total FLOPs / parameters / weight bytes of the full network.
  [[nodiscard]] double total_flops() const noexcept;
  [[nodiscard]] double total_params() const noexcept;
  [[nodiscard]] double total_weight_bytes() const noexcept;

  /// Largest intermediate feature map in bytes (memory high-water mark).
  [[nodiscard]] double peak_activation_bytes() const noexcept;

  /// Indices of layers whose width can be partitioned across stages.
  [[nodiscard]] std::vector<std::size_t> partitionable_layers() const;

  /// Number of layers.
  [[nodiscard]] std::size_t depth() const noexcept { return layers.size(); }

  /// Feature dimension (channels) entering the classifier.
  [[nodiscard]] std::int64_t feature_dim() const;
};

}  // namespace mapcq::nn
