#include "nn/partition_groups.h"

#include <algorithm>
#include <stdexcept>

namespace mapcq::nn {

namespace {

bool is_width_defining(layer_kind kind) noexcept {
  switch (kind) {
    case layer_kind::conv2d:
    case layer_kind::depthwise_conv2d:
    case layer_kind::patch_embed:
    case layer_kind::linear:
    case layer_kind::attention:
    case layer_kind::mlp:
      return true;
    default:
      return false;
  }
}

bool is_elementwise(layer_kind kind) noexcept {
  switch (kind) {
    case layer_kind::norm:
    case layer_kind::activation:
    case layer_kind::pool:
      return true;
    default:
      return false;
  }
}

}  // namespace

double partition_group::output_bytes(const network& net, double fraction) const {
  if (members.empty()) throw std::logic_error("partition_group: empty group");
  // The group's visible output is the last member's output (pools shrink the
  // spatial dims, so use the shape after the full run of members).
  return net.layers[members.back()].output_bytes(fraction);
}

std::vector<partition_group> make_partition_groups(const network& net) {
  std::vector<partition_group> groups;
  std::vector<std::size_t> prefix;  // elementwise layers before the first lead
  partition_group pending;
  bool have_lead = false;

  for (std::size_t j = 0; j < net.layers.size(); ++j) {
    const layer& l = net.layers[j];
    if (!l.partitionable) break;  // global_pool / classifier tail

    if (is_width_defining(l.kind)) {
      if (have_lead) groups.push_back(pending);
      pending = partition_group{};
      pending.lead = j;
      pending.members = {j};
      pending.width = l.width();
      if (!have_lead && !prefix.empty()) {
        // Fold any pre-lead elementwise layers into the first group.
        pending.members.insert(pending.members.end(), prefix.begin(), prefix.end());
        prefix.clear();
      }
      have_lead = true;
    } else if (is_elementwise(l.kind)) {
      if (have_lead) {
        pending.members.push_back(j);
      } else {
        prefix.push_back(j);
      }
    } else {
      throw std::logic_error("make_partition_groups: unexpected layer kind in body");
    }
  }
  if (have_lead) groups.push_back(pending);
  if (groups.empty()) throw std::logic_error("make_partition_groups: no partitionable groups");

  for (auto& g : groups) {
    std::sort(g.members.begin(), g.members.end());
    if (g.width <= 0) throw std::logic_error("make_partition_groups: zero-width group");
  }
  return groups;
}

}  // namespace mapcq::nn
