#include "core/optimizer.h"

#include <limits>
#include <stdexcept>

namespace mapcq::core {

optimizer::optimizer(const nn::network& net, const soc::platform& plat, optimizer_options opt)
    : net_(&net), plat_(&plat), opt_(std::move(opt)), space_(net, plat, opt_.ratio_levels) {}

optimize_result optimizer::run() {
  optimize_result out;

  // --- surrogate training (paper §V-E) -------------------------------------
  evaluator_options search_eval_opt = opt_.eval;
  if (opt_.use_surrogate) {
    const std::vector<const nn::network*> nets = {net_};
    const surrogate::dataset bench = surrogate::generate_benchmark(nets, *plat_, opt_.bench);
    const surrogate::dataset_split parts = surrogate::split(bench, 0.8, opt_.bench.seed ^ 0x5eed);
    predictor_ = std::make_unique<surrogate::hw_predictor>(parts.train, opt_.gbt);
    out.surrogate_fidelity = predictor_->evaluate(parts.test);
    search_eval_opt.predictor = predictor_.get();
  }

  // --- evolutionary search ---------------------------------------------------
  engine_options engine_opt;
  engine_opt.threads = opt_.ga.threads;
  engine_opt.capacity = std::max<std::size_t>(4096, 8 * opt_.ga.population);
  const evaluator search_eval{*net_, *plat_, search_eval_opt, opt_.ranking_seed};
  evaluation_engine search_engine{search_eval, engine_opt};
  out.search = evolve(space_, search_engine, opt_.ga);

  // --- validate Pareto picks on the analytic model ---------------------------
  // The archive holds the same configuration many times (elites survive
  // generations), so validation also runs through a memoizing engine: each
  // distinct Pareto configuration costs one analytic evaluation.
  evaluator_options validate_opt = opt_.eval;
  validate_opt.predictor = nullptr;
  const evaluator validate_eval{*net_, *plat_, validate_opt, opt_.ranking_seed};
  evaluation_engine validate_engine{validate_eval, engine_opt};
  std::vector<configuration> pareto_configs;
  pareto_configs.reserve(out.search.pareto.size());
  for (const std::size_t idx : out.search.pareto)
    pareto_configs.push_back(out.search.archive[idx].config);
  out.validated = validate_engine.evaluate_batch(pareto_configs);
  if (out.validated.empty()) throw std::runtime_error("optimizer: empty Pareto set");

  // --- Ours-L / Ours-E selection (Table II) ----------------------------------
  double best_acc = 0.0;
  for (const auto& e : out.validated) best_acc = std::max(best_acc, e.accuracy_pct);

  const auto pick = [&](double slack, auto metric) {
    std::size_t best = out.validated.size();
    double best_v = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < out.validated.size(); ++i) {
      const auto& e = out.validated[i];
      if (e.accuracy_pct < best_acc - slack) continue;
      const double v = metric(e);
      if (v < best_v) {
        best_v = v;
        best = i;
      }
    }
    // Slack never excludes everything: the max-accuracy entry qualifies.
    return best;
  };
  out.ours_energy_index = pick(opt_.ours_e_accuracy_slack,
                               [](const evaluation& e) { return e.avg_energy_mj; });
  out.ours_latency_index = pick(opt_.ours_l_accuracy_slack,
                                [](const evaluation& e) { return e.avg_latency_ms; });
  return out;
}

}  // namespace mapcq::core
