#include "core/optimizer.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "serving/mapping_service.h"

namespace mapcq::core {

namespace {

/// Ours-L / Ours-E selection over an already-validated front (Table II);
/// kept here only for the legacy foreign-predictor path -- the service does
/// its own selection.
std::size_t pick_within_slack(const std::vector<evaluation>& validated, double slack,
                              double best_acc, double (*metric)(const evaluation&)) {
  std::size_t best = validated.size();
  double best_v = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < validated.size(); ++i) {
    const evaluation& e = validated[i];
    if (e.accuracy_pct < best_acc - slack) continue;
    const double v = metric(e);
    if (v < best_v) {
      best_v = v;
      best = i;
    }
  }
  // Slack never excludes everything: the max-accuracy entry qualifies.
  return best;
}

}  // namespace

optimizer::optimizer(const nn::network& net, const soc::platform& plat, optimizer_options opt)
    : net_(&net),
      plat_(&plat),
      opt_(std::move(opt)),
      space_(net, plat, opt_.ratio_levels, opt_.eval.contention.reserved_units()) {
  // Seed-equivalent engine sizing: the pre-serving facade built FIFO engines
  // with ga.threads workers and a few populations' worth of capacity.
  serving::service_options sopt;
  sopt.engine.threads = std::max<std::size_t>(1, opt_.ga.threads);
  sopt.engine.capacity = std::max<std::size_t>(4096, 8 * opt_.ga.population);
  sopt.engine.eviction = eviction_policy::fifo;
  service_ = std::make_shared<serving::mapping_service>(sopt);

  // The service registry requires names; the legacy facade accepted
  // anonymous networks/platforms, so invent placeholders where needed.
  if (net_->name.empty()) {
    nn::network named = *net_;
    named.name = "<anonymous>";
    network_name_ = named.name;
    service_->register_network(named);
  } else {
    network_name_ = net_->name;
    service_->register_network(*net_);
  }
  if (plat_->name.empty()) {
    soc::platform named = *plat_;
    named.name = "<anonymous>";
    platform_name_ = named.name;
    service_->register_platform(named);
  } else {
    platform_name_ = plat_->name;
    service_->register_platform(*plat_);
  }
}

optimize_result optimizer::run() {
  if (opt_.eval.predictor != nullptr) {
    // The one sanctioned caller of the deprecated path: run() itself keeps
    // the pre-PR-2 contract alive for legacy callers without letting the
    // deprecation warning fire on this internal dispatch.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    return run_with_foreign_predictor();
#pragma GCC diagnostic pop
  }

  serving::mapping_request req;
  req.network = network_name_;
  req.platform = platform_name_;
  req.ga = opt_.ga;
  req.eval = opt_.eval;
  req.ratio_levels = opt_.ratio_levels;
  req.use_surrogate = opt_.use_surrogate;
  req.bench = opt_.bench;
  req.gbt = opt_.gbt;
  req.ours_e_accuracy_slack = opt_.ours_e_accuracy_slack;
  req.ours_l_accuracy_slack = opt_.ours_l_accuracy_slack;
  req.ranking_seed = opt_.ranking_seed;

  serving::mapping_report report = service_->map(req);

  optimize_result out;
  out.search = std::move(report.search);
  out.validated = std::move(report.front);
  out.ours_latency_index = report.ours_latency_index;
  out.ours_energy_index = report.ours_energy_index;
  out.validation_cache = report.validation_cache;
  out.surrogate_fidelity = report.surrogate_fidelity;
  return out;
}

optimize_result optimizer::run_with_foreign_predictor() {
  // Pre-serving behavior, preserved verbatim: fresh engines per phase,
  // search on the caller's predictor (or a newly trained surrogate when
  // use_surrogate overrides it), validation on the analytic model.
  optimize_result out;

  evaluator_options search_eval_opt = opt_.eval;
  std::unique_ptr<surrogate::hw_predictor> trained;
  if (opt_.use_surrogate) {
    const std::vector<const nn::network*> nets = {net_};
    const surrogate::dataset bench = surrogate::generate_benchmark(nets, *plat_, opt_.bench);
    const surrogate::dataset_split parts = surrogate::split(bench, 0.8, opt_.bench.seed ^ 0x5eed);
    trained = std::make_unique<surrogate::hw_predictor>(parts.train, opt_.gbt);
    out.surrogate_fidelity = trained->evaluate(parts.test);
    search_eval_opt.predictor = trained.get();
  }

  engine_options engine_opt;
  engine_opt.threads = opt_.ga.threads;
  engine_opt.capacity = std::max<std::size_t>(4096, 8 * opt_.ga.population);
  const evaluator search_eval{*net_, *plat_, search_eval_opt, opt_.ranking_seed};
  evaluation_engine search_engine{search_eval, engine_opt};
  out.search = evolve(space_, search_engine, opt_.ga);

  evaluator_options validate_opt = opt_.eval;
  validate_opt.predictor = nullptr;
  const evaluator validate_eval{*net_, *plat_, validate_opt, opt_.ranking_seed};
  evaluation_engine validate_engine{validate_eval, engine_opt};
  std::vector<configuration> pareto_configs;
  pareto_configs.reserve(out.search.pareto.size());
  for (const std::size_t idx : out.search.pareto)
    pareto_configs.push_back(out.search.archive[idx].config);
  out.validated = validate_engine.evaluate_batch(pareto_configs);
  out.validation_cache = validate_engine.stats();
  if (out.validated.empty()) throw std::runtime_error("optimizer: empty Pareto set");

  double best_acc = 0.0;
  for (const auto& e : out.validated) best_acc = std::max(best_acc, e.accuracy_pct);
  out.ours_energy_index =
      pick_within_slack(out.validated, opt_.ours_e_accuracy_slack, best_acc,
                        [](const evaluation& e) { return e.avg_energy_mj; });
  out.ours_latency_index =
      pick_within_slack(out.validated, opt_.ours_l_accuracy_slack, best_acc,
                        [](const evaluation& e) { return e.avg_latency_ms; });
  return out;
}

}  // namespace mapcq::core
