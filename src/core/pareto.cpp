#include "core/pareto.h"

#include <stdexcept>

namespace mapcq::core {

bool dominates(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("dominates: size mismatch");
  bool strictly = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strictly = true;
  }
  return strictly;
}

std::vector<std::size_t> pareto_front(const std::vector<std::vector<double>>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      if (dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace mapcq::core
