#include "core/pareto.h"

#include <algorithm>
#include <stdexcept>

namespace mapcq::core {

namespace {

// Recursive slicing: sort the surviving points by the last coordinate, then
// integrate slabs — between consecutive distinct last-coordinate values the
// dominated cross-section is the (d-1)-dimensional hypervolume of the
// points already passed, projected onto the remaining axes.
double hv_recursive(std::vector<std::vector<double>> pts, const std::vector<double>& ref) {
  const std::size_t d = ref.size();
  if (pts.empty()) return 0.0;
  if (d == 1) {
    double best = ref[0];
    for (const auto& p : pts) best = std::min(best, p[0]);
    return ref[0] - best;
  }
  std::sort(pts.begin(), pts.end(), [d](const std::vector<double>& a,
                                        const std::vector<double>& b) {
    return a[d - 1] < b[d - 1];
  });
  const std::vector<double> sub_ref(ref.begin(), ref.end() - 1);
  std::vector<std::vector<double>> passed;
  passed.reserve(pts.size());
  double total = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    passed.emplace_back(pts[i].begin(), pts[i].end() - 1);
    // Extend the slab to the next distinct last-coordinate (or the ref).
    if (i + 1 < pts.size() && pts[i + 1][d - 1] == pts[i][d - 1]) continue;
    const double hi = i + 1 < pts.size() ? pts[i + 1][d - 1] : ref[d - 1];
    if (hi > pts[i][d - 1]) total += hv_recursive(passed, sub_ref) * (hi - pts[i][d - 1]);
  }
  return total;
}

}  // namespace

bool dominates(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("dominates: size mismatch");
  bool strictly = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strictly = true;
  }
  return strictly;
}

std::vector<std::size_t> pareto_front(const std::vector<std::vector<double>>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      if (dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

double hypervolume(const std::vector<std::vector<double>>& points,
                   const std::vector<double>& ref) {
  if (ref.empty()) throw std::invalid_argument("hypervolume: empty reference point");
  std::vector<std::vector<double>> contributing;
  contributing.reserve(points.size());
  for (const auto& p : points) {
    if (p.size() != ref.size()) throw std::invalid_argument("hypervolume: size mismatch");
    bool inside = true;
    for (std::size_t k = 0; k < ref.size() && inside; ++k) inside = p[k] < ref[k];
    if (inside) contributing.push_back(p);
  }
  return hv_recursive(std::move(contributing), ref);
}

}  // namespace mapcq::core
