#include "core/objective.h"

#include <limits>
#include <stdexcept>

namespace mapcq::core {

double objective_value(const objective_inputs& in) {
  if (in.exits == nullptr) throw std::invalid_argument("objective_value: null exits");
  const std::size_t m = in.stage_latency_ms.size();
  if (m == 0 || in.cumulative_energy_mj.size() != m || in.stage_accuracy_pct.size() != m ||
      in.exits->correct_counts.size() != m)
    throw std::invalid_argument("objective_value: span size mismatch");
  if (in.base_accuracy_pct <= 0.0)
    throw std::invalid_argument("objective_value: non-positive base accuracy");

  const double acc_sm = in.stage_accuracy_pct.back();
  if (acc_sm <= 0.0) return std::numeric_limits<double>::infinity();

  const double pop = static_cast<double>(in.exits->population);
  double t_term = 0.0;
  double e_term = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double n_i = static_cast<double>(in.exits->correct_counts[i]) / pop;
    t_term += in.stage_latency_ms[i] * n_i;
    e_term += in.cumulative_energy_mj[i] * n_i;
  }
  // Degenerate configuration that classifies nothing correctly anywhere.
  if (t_term <= 0.0 || e_term <= 0.0) return std::numeric_limits<double>::infinity();

  return (in.base_accuracy_pct / acc_sm) * t_term * e_term;
}

}  // namespace mapcq::core
