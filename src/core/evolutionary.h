#pragma once
// Evolutionary search engine (paper §V-C, Fig. 5): per generation, evaluate
// the population in parallel, drop constraint violators, rank the rest by
// the eq. 16 objective, keep an elite set, and refill via crossover +
// mutation of tournament-selected parents. Every feasible evaluation is
// archived; the Pareto set over (avg latency, avg energy, -accuracy) is
// extracted at the end.
//
// The population can be split into K *islands* (island_options) that evolve
// independently against one shared `evaluation_engine` through its async
// batch API, with ring-topology elite migration every few generations and a
// deterministic merge into the final archive/front. K = 1 is exactly the
// classic single-population GA — same RNG stream, same candidate order,
// bit-identical results. See docs/ARCHITECTURE.md for the data flow.

#include <cstdint>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/search_space.h"

namespace mapcq::core {

/// Parent/elite ranking scheme.
///
/// The paper ranks candidates by the scalar objective P (eq. 16) and
/// extracts a Pareto set from all generated populations at the end. Taken
/// literally, eq. 16 rewards shrinking stage costs far more than it
/// penalizes accuracy loss, so a pure-P population abandons the
/// high-accuracy region that the paper's reported Pareto fronts (Fig. 6)
/// clearly cover. Since §IV explicitly leaves P "generic and tunable", the
/// default ranking is a hybrid: non-dominated front index over
/// (avg latency, avg energy, -accuracy) first, eq. 16 within a front.
/// `objective_only` is the literal paper ranking, kept for the ablation
/// bench.
enum class selection_mode { hybrid_nsga, objective_only };

/// Island-model knobs (Risso et al. 2024 show partitioned search with
/// periodic exchange matches monolithic search at a fraction of the
/// wall-clock). The total `ga_options::population` is split evenly across
/// the islands; each island evolves on its own deterministic RNG stream and
/// submits its generations through `evaluate_batch_async`, so one island's
/// ranking/breeding overlaps the others' evaluations on the engine pool.
///
/// The non-island defaults below (migration every 2 generations, 2
/// migrants, 70% merged tail) were tuned on the Visformer/Xavier testbed at
/// 50 generations x 60 population: across paired seeds they hold the
/// merged-front hypervolume at parity with the classic single-population
/// GA (see bench/island_scaling), which shorter merged tails or rarer
/// migration do not.
struct island_options {
  /// Number of islands. 1 (or 0) = classic single-population GA, bit-
  /// identical to the pre-island implementation at equal seeds. Each island
  /// needs at least 4 members: `islands > population / 4` is rejected.
  std::size_t islands = 1;
  /// Every `migration_interval` generations the islands exchange elites
  /// around a ring (island i sends to island i+1 mod K). Clamped to >= 1.
  std::size_t migration_interval = 2;
  /// Ranked elites each island emits per migration; they overwrite the
  /// receiver's worst offspring slots. Clamped to the island size - 1.
  std::size_t migrants = 2;
  /// Fraction of the generation budget spent *after* the islands are merged
  /// back into one population (the "conquer" tail): the union of all island
  /// populations evolves monolithically, letting NSGA crowding refine the
  /// combined front. Islands explore, the merged phase exploits — without
  /// it, K islands of P/K members each converge to narrower fronts and the
  /// merged hypervolume trails the classic GA. 0 disables; ignored at K=1.
  double polish_fraction = 0.70;
};

/// GA hyper-parameters. Paper defaults: 200 generations x 60 population
/// (12k evaluations); benches shrink these via CLI for quick runs.
struct ga_options {
  std::size_t generations = 200;
  std::size_t population = 60;  ///< total across all islands
  double elite_fraction = 0.25;
  double crossover_prob = 0.9;
  double ratio_mutation_prob = 0.20;    ///< per partition group
  double forward_mutation_prob = 0.15;  ///< per partition group
  double mapping_swap_prob = 0.30;      ///< per offspring
  double dvfs_mutation_prob = 0.30;     ///< per compute unit
  /// Extra elites kept for the highest dynamic accuracy (keeps the
  /// high-accuracy corner of the Pareto front alive even though eq. 16
  /// only weakly rewards accuracy).
  std::size_t accuracy_elites = 2;
  selection_mode selection = selection_mode::hybrid_nsga;
  island_options island;  ///< sharded-population search (1 island = off)
  std::uint64_t seed = 1;
  std::size_t threads = 12;  ///< evaluation workers (paper: 12-GPU cluster)
};

/// Convergence trace entry; with K islands each entry aggregates the K
/// sub-populations of that generation (best = min over islands, mean =
/// feasibility-weighted mean over islands).
struct generation_stats {
  std::size_t generation = 0;
  double best_objective = 0.0;
  double mean_objective = 0.0;
  std::size_t feasible = 0;
  std::size_t cache_hits = 0;       ///< population members served from the memo cache
  std::size_t cache_misses = 0;     ///< distinct evaluator runs this generation
  std::size_t cache_dedup = 0;      ///< in-generation duplicate candidates collapsed
  std::size_t cache_inflight = 0;   ///< candidates joined from a concurrent in-flight run
  std::size_t cache_evictions = 0;  ///< entries dropped under capacity pressure
};

/// Search output.
struct ga_result {
  std::vector<evaluation> archive;       ///< all feasible evaluations
  std::vector<std::size_t> pareto;       ///< archive indices on the Pareto front
  std::size_t best_index = 0;            ///< archive index of the min-objective entry
  std::vector<generation_stats> history;
  std::size_t islands = 1;  ///< island count the search actually ran with
  /// Candidates *considered* (population x generations); the evaluator only
  /// actually ran `cache.misses` times.
  std::size_t total_evaluations = 0;
  /// Evaluation-engine counters accumulated over this run (deltas, so a
  /// shared engine can serve several searches).
  engine_stats cache;

  [[nodiscard]] const evaluation& best() const { return archive.at(best_index); }
};

/// Runs the GA with every population evaluation routed through `engine`
/// (elites and duplicate offspring become cache hits). Throws
/// std::runtime_error if no feasible configuration is ever found and
/// std::invalid_argument for unusable options (population < 4, islands that
/// would leave an island under 4 members, elite_fraction outside (0,1)).
///
/// Blocking: runs the whole search on the calling thread (the coordinator);
/// only candidate evaluation is offloaded to the engine's pool. With K > 1
/// the coordinator pipelines islands, so the pool stays busy while
/// individual islands rank and breed.
///
/// Determinism: results depend only on (space, options); racing searches on
/// a shared engine stay deterministic because evaluation is pure. Cache
/// counters (per generation and `ga_result::cache`) are deltas of the
/// engine's global stats, so when several searches share one engine
/// concurrently they include the other searches' traffic; with K > 1
/// islands, per-generation eviction counts are attributed to the
/// generation whose processing window observed them.
[[nodiscard]] ga_result evolve(const search_space& space, evaluation_engine& engine,
                               const ga_options& opt = {});

/// Convenience overload: wraps `eval` in a fresh memoizing engine sized by
/// `opt.threads` and runs the GA on it.
[[nodiscard]] ga_result evolve(const search_space& space, const evaluator& eval,
                               const ga_options& opt = {});

}  // namespace mapcq::core
