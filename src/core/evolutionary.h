#pragma once
// Evolutionary search engine (paper §V-C, Fig. 5): per generation, evaluate
// the population in parallel, drop constraint violators, rank the rest by
// the eq. 16 objective, keep an elite set, and refill via crossover +
// mutation of tournament-selected parents. Every feasible evaluation is
// archived; the Pareto set over (avg latency, avg energy, -accuracy) is
// extracted at the end.
//
// The population can be split into K *islands* (island_options) that evolve
// independently against one shared `evaluation_engine` through its async
// batch API, with ring-topology elite migration every few generations and a
// deterministic merge into the final archive/front. K = 1 is exactly the
// classic single-population GA — same RNG stream, same candidate order,
// bit-identical results. See docs/ARCHITECTURE.md for the data flow.

#include <cstdint>
#include <vector>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/search_space.h"

namespace mapcq::core {

/// Parent/elite ranking scheme.
///
/// The paper ranks candidates by the scalar objective P (eq. 16) and
/// extracts a Pareto set from all generated populations at the end. Taken
/// literally, eq. 16 rewards shrinking stage costs far more than it
/// penalizes accuracy loss, so a pure-P population abandons the
/// high-accuracy region that the paper's reported Pareto fronts (Fig. 6)
/// clearly cover. Since §IV explicitly leaves P "generic and tunable", the
/// default ranking is a hybrid: non-dominated front index over
/// (avg latency, avg energy, -accuracy) first, eq. 16 within a front.
/// `objective_only` is the literal paper ranking, kept for the ablation
/// bench.
enum class selection_mode { hybrid_nsga, objective_only };

/// Island-model knobs (Risso et al. 2024 show partitioned search with
/// periodic exchange matches monolithic search at a fraction of the
/// wall-clock). The total `ga_options::population` is split evenly across
/// the islands; each island evolves on its own deterministic RNG stream and
/// submits its generations through `evaluate_batch_async`, so one island's
/// ranking/breeding overlaps the others' evaluations on the engine pool.
///
/// The non-island defaults below (migration every 2 generations, 2
/// migrants, 70% merged tail) were tuned on the Visformer/Xavier testbed at
/// 50 generations x 60 population: across paired seeds they hold the
/// merged-front hypervolume at parity with the classic single-population
/// GA (see bench/island_scaling), which shorter merged tails or rarer
/// migration do not.
struct island_options {
  /// Number of islands. 1 (or 0) = classic single-population GA, bit-
  /// identical to the pre-island implementation at equal seeds. Each island
  /// needs at least 4 members: `islands > population / 4` is rejected.
  std::size_t islands = 1;
  /// Every `migration_interval` generations the islands exchange elites
  /// around a ring (island i sends to island i+1 mod K). Clamped to >= 1.
  std::size_t migration_interval = 2;
  /// Ranked elites each island emits per migration; they overwrite the
  /// receiver's worst offspring slots. Clamped to the island size - 1.
  std::size_t migrants = 2;
  /// Fraction of the generation budget spent *after* the islands are merged
  /// back into one population (the "conquer" tail): the union of all island
  /// populations evolves monolithically, letting NSGA crowding refine the
  /// combined front. Islands explore, the merged phase exploits — without
  /// it, K islands of P/K members each converge to narrower fronts and the
  /// merged hypervolume trails the classic GA. 0 disables; ignored at K=1.
  double polish_fraction = 0.70;
};

/// Per-island search algorithm. `ga` is the elitist NSGA-hybrid GA the
/// framework has always run; `sa` is a population of simulated-annealing
/// chains (one per population slot) doing mutation-neighborhood moves with
/// Pareto-aware Metropolis acceptance under a frozen geometric temperature
/// schedule. See docs/ARCHITECTURE.md ("Search strategies").
enum class island_algorithm { ga, sa };

/// Objective orientation of an island. `balanced` ranks (and accepts) on the
/// session's `selection_mode`; `latency`/`energy` rank feasible candidates
/// by that single axis so the island camps one end of the Pareto front while
/// the others cover the rest — the portfolio's division of labor.
enum class island_orientation { balanced, latency, energy };

/// One island's portfolio slot: which algorithm it runs and which way it
/// leans. The default slot is the classic GA, so an empty portfolio is
/// bit-identical to the homogeneous island GA.
struct island_assignment {
  island_algorithm algorithm = island_algorithm::ga;
  island_orientation orientation = island_orientation::balanced;
};

/// Simulated-annealing schedule, frozen at submit time: generation g runs at
/// temperature `initial_temperature * cooling^g`, so equal seeds replay the
/// exact accept/reject sequence (run-over-run determinism).
struct sa_options {
  /// Starting temperature on the *relative* worsening scale: a move that
  /// worsens the chain's scalar by 100% is accepted with probability
  /// exp(-1/T) at T = initial_temperature. Must be > 0.
  double initial_temperature = 1.0;
  /// Geometric per-generation cooling factor in (0, 1]; 1 disables cooling.
  double cooling = 0.85;
};

/// Surrogate-guided candidate pre-filtering: score each proposed generation
/// with a cheap predictor (the session GBT in serving) and spend analytic
/// evaluator runs only on the promising quantile. Skipped candidates keep
/// their predicted evaluation for breeding/acceptance but never enter the
/// archive or the history's best/mean/feasible stats — the result's quality
/// claims stay grounded in the analytic model.
struct prefilter_options {
  bool enabled = false;
  /// Fraction of each proposed batch that advances to the analytic
  /// evaluator, ranked by predicted (feasible, objective). In (0, 1];
  /// at least one candidate always advances.
  double quantile = 0.5;
  /// Generations evaluated in full before filtering starts, so the archive
  /// (and in serving, the surrogate's training signal) seeds from ground
  /// truth. 0 filters from the first generation.
  std::size_t warmup_generations = 2;
};

/// Search-portfolio knobs: per-island algorithm/orientation assignments plus
/// the shared SA schedule and pre-filter policy. All defaults keep the
/// homogeneous GA behavior bit-identical.
struct portfolio_options {
  /// Slot i configures island i; islands beyond the list run the default
  /// (GA, balanced). More entries than islands is rejected. Empty = the
  /// homogeneous island GA, bit-identical to pre-portfolio builds.
  std::vector<island_assignment> islands;
  sa_options sa;            ///< schedule shared by every SA island
  prefilter_options prefilter;  ///< surrogate-guided evaluation gating
};

/// GA hyper-parameters. Paper defaults: 200 generations x 60 population
/// (12k evaluations); benches shrink these via CLI for quick runs.
struct ga_options {
  std::size_t generations = 200;
  std::size_t population = 60;  ///< total across all islands
  double elite_fraction = 0.25;
  double crossover_prob = 0.9;
  double ratio_mutation_prob = 0.20;    ///< per partition group
  double forward_mutation_prob = 0.15;  ///< per partition group
  double mapping_swap_prob = 0.30;      ///< per offspring
  double dvfs_mutation_prob = 0.30;     ///< per compute unit
  /// Extra elites kept for the highest dynamic accuracy (keeps the
  /// high-accuracy corner of the Pareto front alive even though eq. 16
  /// only weakly rewards accuracy).
  std::size_t accuracy_elites = 2;
  selection_mode selection = selection_mode::hybrid_nsga;
  island_options island;        ///< sharded-population search (1 island = off)
  portfolio_options portfolio;  ///< per-island algorithms + pre-filtering
  std::uint64_t seed = 1;
  std::size_t threads = 12;  ///< evaluation workers (paper: 12-GPU cluster)
};

/// Convergence trace entry; with K islands each entry aggregates the K
/// sub-populations of that generation (best = min over islands, mean =
/// feasibility-weighted mean over islands).
struct generation_stats {
  std::size_t generation = 0;
  double best_objective = 0.0;
  double mean_objective = 0.0;
  std::size_t feasible = 0;
  std::size_t cache_hits = 0;       ///< population members served from the memo cache
  std::size_t cache_misses = 0;     ///< distinct evaluator runs this generation
  std::size_t cache_dedup = 0;      ///< in-generation duplicate candidates collapsed
  std::size_t cache_inflight = 0;   ///< candidates joined from a concurrent in-flight run
  std::size_t cache_evictions = 0;  ///< entries dropped under capacity pressure
  /// Candidates that passed the surrogate pre-filter and were evaluated
  /// analytically this generation. 0 when filtering was off (all candidates
  /// count as regular cache traffic instead).
  std::size_t prefiltered = 0;
  /// Candidates the pre-filter skipped: bred/accepted from their predicted
  /// evaluation, never run on the analytic evaluator, never archived.
  std::size_t prefilter_skipped = 0;
};

/// Search output.
struct ga_result {
  std::vector<evaluation> archive;       ///< all feasible evaluations
  std::vector<std::size_t> pareto;       ///< archive indices on the Pareto front
  std::size_t best_index = 0;            ///< archive index of the min-objective entry
  std::vector<generation_stats> history;
  std::size_t islands = 1;  ///< island count the search actually ran with
  /// Candidates *considered* (population x generations); the evaluator only
  /// actually ran `cache.misses` times.
  std::size_t total_evaluations = 0;
  /// Totals of the per-generation pre-filter counters: candidates evaluated
  /// analytically after filtering, and candidates skipped on the surrogate's
  /// word. Both 0 when `portfolio.prefilter.enabled` was off.
  std::size_t prefiltered = 0;
  std::size_t prefilter_skipped = 0;
  /// Evaluation-engine counters accumulated over this run (deltas, so a
  /// shared engine can serve several searches).
  engine_stats cache;

  [[nodiscard]] const evaluation& best() const { return archive.at(best_index); }
};

/// Cheap candidate scorer for `portfolio_options::prefilter`: predicts an
/// evaluation per configuration without touching the analytic evaluator.
/// In serving this wraps the session's surrogate engine (GBT-corrected
/// predictor); tests can plug in anything deterministic. `score` is called
/// from the single coordinator thread, one batch per island generation, and
/// must return exactly one evaluation per input configuration (checked).
class candidate_prefilter {
 public:
  virtual ~candidate_prefilter() = default;
  [[nodiscard]] virtual std::vector<evaluation> score(
      const std::vector<configuration>& configs) = 0;
};

/// Runs the GA with every population evaluation routed through `engine`
/// (elites and duplicate offspring become cache hits). Throws
/// std::runtime_error if no feasible configuration is ever found and
/// std::invalid_argument for unusable options (population < 4, islands that
/// would leave an island under 4 members, elite_fraction outside (0,1),
/// malformed portfolio knobs, or a pre-filter enabled without a scorer).
///
/// Blocking: runs the whole search on the calling thread (the coordinator);
/// only candidate evaluation is offloaded to the engine's pool. With K > 1
/// the coordinator pipelines islands, so the pool stays busy while
/// individual islands rank and breed.
///
/// Determinism: results depend only on (space, options); racing searches on
/// a shared engine stay deterministic because evaluation is pure. Cache
/// counters (per generation and `ga_result::cache`) are deltas of the
/// engine's global stats, so when several searches share one engine
/// concurrently they include the other searches' traffic; with K > 1
/// islands, per-generation eviction counts are attributed to the
/// generation whose processing window observed them.
///
/// `prefilter` gates candidate evaluation when
/// `opt.portfolio.prefilter.enabled` (see prefilter_options); it is ignored
/// when filtering is off and required (non-null) when it is on.
[[nodiscard]] ga_result evolve(const search_space& space, evaluation_engine& engine,
                               const ga_options& opt = {},
                               candidate_prefilter* prefilter = nullptr);

/// Convenience overload: wraps `eval` in a fresh memoizing engine sized by
/// `opt.threads` and runs the GA on it.
[[nodiscard]] ga_result evolve(const search_space& space, const evaluator& eval,
                               const ga_options& opt = {},
                               candidate_prefilter* prefilter = nullptr);

}  // namespace mapcq::core
