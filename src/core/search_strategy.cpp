#include "core/search_strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "core/pareto.h"
#include "util/rng.h"

namespace mapcq::core {

namespace {

void mutate(genome& g, const search_space& space, const ga_options& opt, util::rng& gen) {
  const std::size_t stages = space.stages();
  for (std::size_t grp = 0; grp < g.ratio_levels.size(); ++grp) {
    if (gen.bernoulli(opt.ratio_mutation_prob)) {
      const auto s = static_cast<std::size_t>(
          gen.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
      const int delta = gen.bernoulli(0.5) ? 1 : -1;
      const int lo = s == 0 ? 1 : 0;
      g.ratio_levels[grp][s] =
          std::clamp(g.ratio_levels[grp][s] + delta, lo, space.ratio_levels() - 1);
    }
    if (stages > 1 && gen.bernoulli(opt.forward_mutation_prob)) {
      const auto s = static_cast<std::size_t>(
          gen.uniform_int(0, static_cast<std::int64_t>(stages) - 2));
      g.forward[grp][s] = !g.forward[grp][s];
    }
  }
  if (gen.bernoulli(opt.mapping_swap_prob) && stages > 1) {
    const auto a = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
    const auto b = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
    std::swap(g.mapping[a], g.mapping[b]);
  }
  for (std::size_t u = 0; u < g.dvfs.size(); ++u) {
    if (!gen.bernoulli(opt.dvfs_mutation_prob)) continue;
    const auto levels = static_cast<std::int64_t>(space.plat().unit(u).dvfs.levels());
    const std::int64_t delta = gen.bernoulli(0.5) ? 1 : -1;
    const std::int64_t next =
        std::clamp<std::int64_t>(static_cast<std::int64_t>(g.dvfs[u]) + delta, 0, levels - 1);
    g.dvfs[u] = static_cast<std::size_t>(next);
  }
}

genome crossover(const genome& a, const genome& b, util::rng& gen) {
  genome child = a;
  for (std::size_t grp = 0; grp < child.ratio_levels.size(); ++grp) {
    if (gen.bernoulli(0.5)) {
      child.ratio_levels[grp] = b.ratio_levels[grp];
      child.forward[grp] = b.forward[grp];
    }
  }
  if (gen.bernoulli(0.5)) child.mapping = b.mapping;  // permutations swap atomically
  for (std::size_t u = 0; u < child.dvfs.size(); ++u)
    if (gen.bernoulli(0.5)) child.dvfs[u] = b.dvfs[u];
  return child;
}

/// Tournament of two among the ranked (ascending objective) survivors.
const genome& tournament(const std::vector<genome>& pool, util::rng& gen) {
  const auto n = static_cast<std::int64_t>(pool.size());
  const auto a = static_cast<std::size_t>(gen.uniform_int(0, n - 1));
  const auto b = static_cast<std::size_t>(gen.uniform_int(0, n - 1));
  return pool[std::min(a, b)];  // pool is sorted best-first
}

/// Non-dominated front index per candidate over (latency, energy, -acc);
/// infeasible candidates get a sentinel beyond every front.
std::vector<std::size_t> front_indices(const std::vector<evaluation>& evals) {
  constexpr std::size_t unranked = static_cast<std::size_t>(-1);
  std::vector<std::size_t> front(evals.size(), unranked);
  std::vector<std::vector<double>> pts(evals.size());
  for (std::size_t i = 0; i < evals.size(); ++i)
    pts[i] = {evals[i].avg_latency_ms, evals[i].avg_energy_mj, -evals[i].accuracy_pct};

  std::size_t assigned = 0;
  std::size_t total_feasible = 0;
  for (const auto& e : evals)
    if (e.feasible) ++total_feasible;

  // Peel fronts: at each level, collect every unassigned candidate not
  // dominated by another unassigned candidate, then assign the whole set.
  for (std::size_t level = 0; assigned < total_feasible; ++level) {
    std::vector<std::size_t> peel;
    for (std::size_t i = 0; i < evals.size(); ++i) {
      if (!evals[i].feasible || front[i] != unranked) continue;
      bool dominated = false;
      for (std::size_t j = 0; j < evals.size() && !dominated; ++j) {
        if (i == j || !evals[j].feasible || front[j] != unranked) continue;
        if (dominates(pts[j], pts[i])) dominated = true;
      }
      if (!dominated) peel.push_back(i);
    }
    for (const std::size_t i : peel) front[i] = level;
    assigned += peel.size();
  }
  for (std::size_t i = 0; i < evals.size(); ++i)
    if (front[i] == unranked) front[i] = evals.size() + 1;  // infeasible sentinel
  return front;
}

/// NSGA-II crowding distance over (latency, energy, -accuracy), computed
/// within each front. Boundary candidates get +inf so the front's extreme
/// corners (cheapest, most accurate) always survive.
std::vector<double> crowding_distances(const std::vector<evaluation>& evals,
                                       const std::vector<std::size_t>& fronts) {
  std::vector<double> dist(evals.size(), 0.0);
  const auto metric = [&](std::size_t i, int axis) {
    switch (axis) {
      case 0: return evals[i].avg_latency_ms;
      case 1: return evals[i].avg_energy_mj;
      default: return -evals[i].accuracy_pct;
    }
  };

  std::map<std::size_t, std::vector<std::size_t>> by_front;
  for (std::size_t i = 0; i < evals.size(); ++i)
    if (evals[i].feasible) by_front[fronts[i]].push_back(i);

  for (auto& [level, members] : by_front) {
    if (members.size() <= 2) {
      for (const std::size_t i : members) dist[i] = std::numeric_limits<double>::infinity();
      continue;
    }
    for (int axis = 0; axis < 3; ++axis) {
      std::sort(members.begin(), members.end(),
                [&](std::size_t a, std::size_t b) { return metric(a, axis) < metric(b, axis); });
      const double lo = metric(members.front(), axis);
      const double hi = metric(members.back(), axis);
      dist[members.front()] = std::numeric_limits<double>::infinity();
      dist[members.back()] = std::numeric_limits<double>::infinity();
      if (hi <= lo) continue;
      for (std::size_t r = 1; r + 1 < members.size(); ++r)
        dist[members[r]] +=
            (metric(members[r + 1], axis) - metric(members[r - 1], axis)) / (hi - lo);
    }
  }
  return dist;
}

/// Single-axis scalarization for oriented ranking and SA acceptance.
/// Infeasible candidates score +inf on every orientation.
double scalar_of(const evaluation& e, island_orientation orientation) {
  if (!e.feasible) return std::numeric_limits<double>::infinity();
  switch (orientation) {
    case island_orientation::latency: return e.avg_latency_ms;
    case island_orientation::energy: return e.avg_energy_mj;
    default: return e.objective;
  }
}

/// The island-0 initialization the classic GA has always used: static-seed
/// anchor, mapping rotations on island 0 only, random fill from the
/// island's decorrelated stream. Shared by every strategy so portfolio
/// choice never perturbs initialization (or the RNG draw sequence).
std::vector<genome> initial_population(const search_space& space, std::size_t island,
                                       std::size_t island_size, util::rng& gen) {
  std::vector<genome> population;
  population.reserve(island_size);
  population.push_back(space.static_seed());
  if (island == 0) {
    for (std::size_t r = 1; r < space.stages() && population.size() + 1 < island_size; ++r) {
      genome rotated = population.back();
      std::rotate(rotated.mapping.begin(), rotated.mapping.begin() + 1, rotated.mapping.end());
      population.push_back(std::move(rotated));
    }
  }
  while (population.size() < island_size) population.push_back(space.random(gen));
  return population;
}

/// The classic elitist GA island: rank -> elites (+accuracy elites) ->
/// tournament crossover/mutation refill, with the multi-island survivor cap
/// lifted for single-population phases (K = 1 runs and the merged polish
/// tail) to stay bit-identical to the pre-portfolio implementation.
class ga_strategy final : public search_strategy {
 public:
  ga_strategy(const search_space& space, const ga_options& opt, std::size_t island,
              std::size_t island_size, std::size_t total_islands)
      : space_(space), opt_(opt), capped_(total_islands > 1), gen_(island_seed(opt.seed, island)) {
    population_ = initial_population(space, island, island_size, gen_);
  }

  /// Merged polish-tail variant: explicit population, uncapped survivors.
  ga_strategy(const search_space& space, const ga_options& opt, std::vector<genome> population,
              std::uint64_t seed)
      : space_(space), opt_(opt), capped_(false), gen_(seed), population_(std::move(population)) {}

  [[nodiscard]] const std::vector<genome>& population() const override { return population_; }
  [[nodiscard]] const std::vector<genome>& outbox() const override { return outbox_; }

  void observe(const std::vector<evaluation>& evals, const std::vector<std::size_t>& order,
               bool capture_outbox) override {
    const std::size_t island_pop = population_.size();
    const std::size_t n_elite = std::max<std::size_t>(
        2, static_cast<std::size_t>(opt_.elite_fraction * static_cast<double>(island_pop)));
    std::vector<genome> survivors;
    survivors.reserve(n_elite + opt_.accuracy_elites);
    for (std::size_t r = 0; r < n_elite && r < order.size(); ++r) {
      if (!evals[order[r]].feasible) break;  // never breed from violators
      survivors.push_back(population_[order[r]]);
    }
    if (opt_.accuracy_elites > 0 && !survivors.empty()) {
      // Also protect the most accurate feasible candidates of the
      // generation (see ga_options::accuracy_elites).
      std::vector<std::size_t> by_acc = order;
      std::sort(by_acc.begin(), by_acc.end(), [&](std::size_t a, std::size_t b) {
        if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
        return evals[a].accuracy_pct > evals[b].accuracy_pct;
      });
      for (std::size_t r = 0; r < opt_.accuracy_elites && r < by_acc.size(); ++r) {
        if (!evals[by_acc[r]].feasible) break;
        survivors.push_back(population_[by_acc[r]]);
      }
    }
    // Small islands must keep breeding: survivors never fill more than half
    // the sub-population (accuracy elites, appended last, are trimmed
    // first). The single-population phases — K = 1 runs and the merged
    // polish tail — keep the exact classic behavior, preserving
    // bit-identity with the pre-island implementation.
    if (capped_) {
      const std::size_t cap = std::max<std::size_t>(2, island_pop / 2);
      if (survivors.size() > cap) survivors.resize(cap);
    }

    outbox_.clear();
    if (capture_outbox) {
      const std::size_t want =
          std::min(opt_.island.migrants, island_pop > 1 ? island_pop - 1 : std::size_t{0});
      for (std::size_t r = 0; r < order.size() && outbox_.size() < want; ++r) {
        if (!evals[order[r]].feasible) break;
        outbox_.push_back(population_[order[r]]);
      }
    }

    if (survivors.empty()) {
      // No feasible candidate yet: reseed the whole island.
      for (genome& p : population_) p = space_.random(gen_);
      return;
    }

    std::vector<genome> next;
    next.reserve(island_pop);
    for (const genome& sv : survivors) next.push_back(sv);
    while (next.size() < island_pop) {
      genome child =
          gen_.bernoulli(opt_.crossover_prob)
              ? crossover(tournament(survivors, gen_), tournament(survivors, gen_), gen_)
              : tournament(survivors, gen_);
      mutate(child, space_, opt_, gen_);
      next.push_back(std::move(child));
    }
    population_ = std::move(next);
  }

  void immigrate(const std::vector<genome>& incoming) override {
    // Incoming elites replace the worst offspring slots (the tail; elites
    // sit at the front of a bred population).
    const std::size_t cap = population_.size() > 1 ? population_.size() - 1 : std::size_t{0};
    const std::size_t n = std::min(incoming.size(), cap);
    for (std::size_t j = 0; j < n; ++j) population_[population_.size() - 1 - j] = incoming[j];
  }

  [[nodiscard]] std::vector<genome> take_population() override { return std::move(population_); }

  void absorb(std::vector<genome> merged) override {
    population_.insert(population_.end(), std::make_move_iterator(merged.begin()),
                       std::make_move_iterator(merged.end()));
    capped_ = false;  // single-population phase: classic uncapped survivors
  }

 private:
  const search_space& space_;
  const ga_options opt_;
  bool capped_;
  util::rng gen_;
  std::vector<genome> population_;
  std::vector<genome> outbox_;
};

/// Simulated annealing as a population of independent Metropolis chains,
/// one per population slot. Every generation each chain proposes one
/// mutation-neighborhood move; acceptance is Pareto-aware (a dominating or
/// scalar-improving move is always taken, feasibility always beats
/// infeasibility) with Metropolis acceptance of worsening moves on the
/// relative scalar scale, under the frozen geometric schedule in
/// `sa_options`. Duplicate proposals (no-op mutations) are free engine
/// cache hits, so SA islands naturally spend fewer analytic runs per
/// generation than a breeding GA island.
class sa_strategy final : public search_strategy {
 public:
  sa_strategy(const search_space& space, const ga_options& opt, std::size_t island,
              std::size_t island_size, island_orientation orientation)
      : space_(space), opt_(opt), orientation_(orientation), gen_(island_seed(opt.seed, island)) {
    std::vector<genome> initial = initial_population(space, island, island_size, gen_);
    chains_.reserve(initial.size());
    proposals_.reserve(initial.size());
    for (genome& g : initial) {
      chains_.push_back(chain{g, evaluation{}, false});
      proposals_.push_back(std::move(g));  // generation 0 evaluates the initial state
    }
  }

  [[nodiscard]] const std::vector<genome>& population() const override { return proposals_; }
  [[nodiscard]] const std::vector<genome>& outbox() const override { return outbox_; }

  void observe(const std::vector<evaluation>& evals, const std::vector<std::size_t>& /*order*/,
               bool capture_outbox) override {
    const double temperature =
        opt_.portfolio.sa.initial_temperature *
        std::pow(opt_.portfolio.sa.cooling, static_cast<double>(step_));
    ++step_;
    for (std::size_t i = 0; i < chains_.size(); ++i) {
      if (accepts(chains_[i], evals[i], temperature)) {
        chains_[i].current = proposals_[i];
        chains_[i].eval = evals[i];
        chains_[i].has_eval = true;
      }
    }

    // Rank the chain *states* (not the proposals) for migration and for
    // picking immigration victims; unevaluated chains rank last.
    std::vector<evaluation> states(chains_.size());
    for (std::size_t i = 0; i < chains_.size(); ++i) {
      states[i] = chains_[i].eval;
      if (!chains_[i].has_eval) states[i].feasible = false;
    }
    last_order_ = rank_candidates(states, opt_, orientation_);

    outbox_.clear();
    if (capture_outbox) {
      const std::size_t want =
          std::min(opt_.island.migrants, chains_.size() > 1 ? chains_.size() - 1 : std::size_t{0});
      for (std::size_t r = 0; r < last_order_.size() && outbox_.size() < want; ++r) {
        const std::size_t s = last_order_[r];
        if (!chains_[s].has_eval || !chains_[s].eval.feasible) break;
        outbox_.push_back(chains_[s].current);
      }
    }

    for (std::size_t i = 0; i < chains_.size(); ++i) {
      proposals_[i] = chains_[i].current;
      mutate(proposals_[i], space_, opt_, gen_);
    }
  }

  void immigrate(const std::vector<genome>& incoming) override {
    // Immigrants restart the worst-ranked chains; the chain's next proposal
    // is the immigrant itself, which is then accepted unconditionally
    // (has_eval is cleared), so migration can only refresh a stale chain.
    const std::size_t n = std::min(incoming.size(),
                                   chains_.size() > 1 ? chains_.size() - 1 : std::size_t{0});
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t s = last_order_.size() == chains_.size()
                                ? last_order_[last_order_.size() - 1 - j]
                                : chains_.size() - 1 - j;
      chains_[s].current = incoming[j];
      chains_[s].has_eval = false;
      proposals_[s] = incoming[j];
    }
  }

  [[nodiscard]] std::vector<genome> take_population() override {
    std::vector<genome> out;
    out.reserve(chains_.size());
    for (chain& c : chains_) out.push_back(std::move(c.current));
    chains_.clear();
    proposals_.clear();
    return out;
  }

  void absorb(std::vector<genome> merged) override {
    for (genome& g : merged) {
      proposals_.push_back(g);
      chains_.push_back(chain{std::move(g), evaluation{}, false});
    }
  }

 private:
  struct chain {
    genome current;
    evaluation eval;
    bool has_eval = false;
  };

  [[nodiscard]] bool accepts(const chain& c, const evaluation& cand, double temperature) {
    if (!c.has_eval) return true;  // fresh or immigrant chain: adopt the state
    if (cand.feasible != c.eval.feasible) return cand.feasible;
    if (!cand.feasible) return true;  // both infeasible: random-walk toward feasibility
    const std::vector<double> cand_pt{cand.avg_latency_ms, cand.avg_energy_mj,
                                      -cand.accuracy_pct};
    const std::vector<double> cur_pt{c.eval.avg_latency_ms, c.eval.avg_energy_mj,
                                     -c.eval.accuracy_pct};
    const double next = scalar_of(cand, orientation_);
    const double cur = scalar_of(c.eval, orientation_);
    if (next <= cur || dominates(cand_pt, cur_pt)) return true;
    // Metropolis on the relative worsening, so acceptance is scale-free
    // across orientations (latency in ms vs energy in mJ vs objective).
    const double delta = (next - cur) / std::max(std::abs(cur), 1e-12);
    return gen_.bernoulli(std::exp(-delta / std::max(temperature, 1e-12)));
  }

  const search_space& space_;
  const ga_options opt_;
  island_orientation orientation_;
  util::rng gen_;
  std::size_t step_ = 0;  ///< completed generations (cooling exponent)
  std::vector<chain> chains_;
  std::vector<genome> proposals_;
  std::vector<std::size_t> last_order_;  ///< chain ranking after the last observe
  std::vector<genome> outbox_;
};

}  // namespace

std::vector<std::size_t> rank_candidates(const std::vector<evaluation>& evals,
                                         const ga_options& opt, island_orientation orientation) {
  std::vector<std::size_t> order(evals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (orientation != island_orientation::balanced) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
      const double sa = scalar_of(evals[a], orientation);
      const double sb = scalar_of(evals[b], orientation);
      if (sa != sb) return sa < sb;
      return evals[a].objective < evals[b].objective;
    });
  } else if (opt.selection == selection_mode::hybrid_nsga) {
    const std::vector<std::size_t> fronts = front_indices(evals);
    const std::vector<double> crowd = crowding_distances(evals, fronts);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
      if (fronts[a] != fronts[b]) return fronts[a] < fronts[b];
      if (crowd[a] != crowd[b]) return crowd[a] > crowd[b];
      return evals[a].objective < evals[b].objective;
    });
  } else {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
      return evals[a].objective < evals[b].objective;
    });
  }
  return order;
}

std::uint64_t island_seed(std::uint64_t seed, std::size_t island) {
  if (island == 0) return seed;
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(island);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

island_assignment island_plan(const ga_options& opt, std::size_t island) {
  if (island < opt.portfolio.islands.size()) return opt.portfolio.islands[island];
  return island_assignment{};
}

std::unique_ptr<search_strategy> make_island_strategy(const search_space& space,
                                                      const ga_options& opt, std::size_t island,
                                                      std::size_t island_size,
                                                      std::size_t total_islands) {
  const island_assignment plan = island_plan(opt, island);
  if (plan.algorithm == island_algorithm::sa)
    return std::make_unique<sa_strategy>(space, opt, island, island_size, plan.orientation);
  return std::make_unique<ga_strategy>(space, opt, island, island_size, total_islands);
}

std::unique_ptr<search_strategy> make_polish_strategy(const search_space& space,
                                                      const ga_options& opt,
                                                      std::vector<genome> population,
                                                      std::uint64_t seed) {
  return std::make_unique<ga_strategy>(space, opt, std::move(population), seed);
}

}  // namespace mapcq::core
