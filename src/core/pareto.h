#pragma once
// Pareto-front extraction over minimization objectives (paper §V-C: "a
// Pareto set is calculated from all the generated populations from which
// the ideal dynamic mapping strategy is extracted").
//
// All three functions are pure (no shared state, no allocation visible to
// the caller beyond the returned vectors): safe to call concurrently from
// any thread, and they never block.

#include <cstddef>
#include <span>
#include <vector>

namespace mapcq::core {

/// Returns true if `a` dominates `b`: a <= b in every component and a < b
/// in at least one (all objectives minimized). `a` and `b` must have equal
/// width; the spans are borrowed for the duration of the call only.
[[nodiscard]] bool dominates(std::span<const double> a, std::span<const double> b);

/// Indices of the non-dominated rows of `points` (each row = one candidate's
/// objective vector; all rows must have equal, nonzero width). O(n^2)
/// pairwise dominance — intended for the archive-sized inputs the GA
/// produces, not for millions of points.
[[nodiscard]] std::vector<std::size_t> pareto_front(
    const std::vector<std::vector<double>>& points);

/// Exact hypervolume (Lebesgue measure) of the region dominated by `points`
/// and bounded by the reference point `ref`, all objectives minimized.
///
/// Points not strictly better than `ref` in every component contribute
/// nothing. Computed by recursive slicing along the last axis: exact in any
/// dimension, O(n^d)-ish — intended for the small fronts the GA produces
/// (used by `bench/island_scaling` to compare search quality across island
/// counts; dimensions beyond ~6 or fronts beyond a few hundred points will
/// be slow). Deterministic: equal inputs give bit-equal results, which is
/// what lets benches assert hypervolume ratios across island counts.
///
/// Throws std::invalid_argument on ragged rows or a width mismatch with
/// `ref`; an empty `points` has hypervolume 0.
[[nodiscard]] double hypervolume(const std::vector<std::vector<double>>& points,
                                 const std::vector<double>& ref);

}  // namespace mapcq::core
