#pragma once
// Pareto-front extraction over minimization objectives (paper §V-C: "a
// Pareto set is calculated from all the generated populations from which
// the ideal dynamic mapping strategy is extracted").

#include <cstddef>
#include <span>
#include <vector>

namespace mapcq::core {

/// Returns true if `a` dominates `b`: a <= b in every component and a < b
/// in at least one (all objectives minimized).
[[nodiscard]] bool dominates(std::span<const double> a, std::span<const double> b);

/// Indices of the non-dominated rows of `points` (each row = one candidate's
/// objective vector; all rows must have equal, nonzero width).
[[nodiscard]] std::vector<std::size_t> pareto_front(
    const std::vector<std::vector<double>>& points);

}  // namespace mapcq::core
