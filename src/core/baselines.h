#pragma once
// Deployment baselines the paper compares against (Fig. 1, Table II "None"
// rows): whole-network single-CU mappings, and the hand-made static width
// partition that runs all stages with every feature forwarded and a single
// exit (the "Static Mapping" bar of Fig. 1).

#include <string>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "nn/graph.h"
#include "perf/single_cu.h"
#include "soc/platform.h"

namespace mapcq::core {

/// Outcome of one baseline deployment.
struct baseline_result {
  std::string name;
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  double accuracy_pct = 0.0;
  double fmap_reuse_pct = 0.0;  ///< 0 for single-CU; 100 for static partition
};

/// Full network on a single CU at its max DVFS level.
[[nodiscard]] baseline_result single_cu_baseline(const nn::network& net,
                                                 const soc::platform& plat,
                                                 std::size_t unit_index,
                                                 const perf::model_options& opt = {});

/// Equal width split across all CUs, every indicator bit set, identity
/// mapping, max DVFS everywhere -- evaluated as a single-exit (static)
/// deployment on the concurrent executor.
[[nodiscard]] configuration make_static_configuration(const nn::network& net,
                                                      const soc::platform& plat);

/// Evaluates the static configuration (single exit, all features exchanged).
[[nodiscard]] evaluation static_mapping_baseline(const nn::network& net,
                                                 const soc::platform& plat,
                                                 const perf::model_options& opt = {});

/// Same baseline served through a caller-owned memoizing engine: repeated
/// quotes of the static row cost one evaluator run total. The engine's
/// wrapped evaluator defines the network/platform/options (build it with
/// `dynamic_exits = false` to match the 3-argument overload).
[[nodiscard]] evaluation static_mapping_baseline(evaluation_engine& engine);

/// Depth-wise pipeline baseline (AxoNN [4] / Jedi [14] style): the network
/// is cut into |CU| contiguous *depth* segments balanced by FLOPs, each
/// mapped to one CU. A single inference traverses the segments in sequence
/// (latency adds up); batched inference overlaps segments, so throughput is
/// set by the slowest segment.
struct pipeline_result {
  std::string name;
  double latency_ms = 0.0;        ///< single-input end-to-end latency
  double energy_mj = 0.0;         ///< per-inference energy
  double throughput_ips = 0.0;    ///< steady-state pipelined inferences/s
  double accuracy_pct = 0.0;
  std::vector<std::size_t> cut_points;  ///< first layer index of each segment
};
[[nodiscard]] pipeline_result pipeline_baseline(const nn::network& net,
                                                const soc::platform& plat,
                                                const perf::model_options& opt = {});

}  // namespace mapcq::core
