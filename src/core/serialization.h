#pragma once
// Persistence for mapping configurations: a deployment tool wants to search
// once and ship the winning Pi = (P, I, M, theta) to the runtime. The format
// is a simple line-oriented text file (key = value, matrix rows as
// whitespace-separated values) -- trivially diffable and versioned.

#include <iosfwd>
#include <string>

#include "core/configuration.h"

namespace mapcq::core {

/// Serializes a configuration to the text format.
[[nodiscard]] std::string to_text(const configuration& config);

/// Parses a configuration back. Throws std::runtime_error on malformed
/// input (missing sections, ragged matrices, non-numeric fields).
[[nodiscard]] configuration configuration_from_text(const std::string& text);

/// File convenience wrappers. save throws std::runtime_error on I/O failure.
void save_configuration(const std::string& path, const configuration& config);
[[nodiscard]] configuration load_configuration(const std::string& path);

}  // namespace mapcq::core
