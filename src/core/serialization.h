#pragma once
// Persistence for mapping artifacts: a deployment tool wants to search once
// and ship the winners to the runtime. Two text formats, both line-oriented
// (key = value, matrix rows as whitespace-separated values) -- trivially
// diffable and versioned:
//   * mapcq-config-v1: one Pi = (P, I, M, theta) configuration
//   * mapcq-report-v1: a serving::mapping_report summary -- the validated
//     Pareto front's configurations with their headline evaluation scalars
//     and the Ours-L / Ours-E pick indices.
//   * mapcq-trace-v1: a captured stream of serving submit()s (arrival
//     offsets, priorities, deadlines, lanes, fingerprints) for offline
//     replay (see serving/request_trace.h).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/evaluator.h"

namespace mapcq::core {

/// Serializes a configuration to the text format.
[[nodiscard]] std::string to_text(const configuration& config);

/// Parses a configuration back. Throws std::runtime_error on malformed
/// input (missing sections, ragged matrices, non-numeric fields).
[[nodiscard]] configuration configuration_from_text(const std::string& text);

/// File convenience wrappers. save throws std::runtime_error on I/O failure.
void save_configuration(const std::string& path, const configuration& config);
[[nodiscard]] configuration load_configuration(const std::string& path);

/// One shipped pick: a configuration plus the evaluation scalars a runtime
/// needs to select among the front without re-running the evaluator.
struct summary_entry {
  std::string label;  ///< e.g. "front-3+ours-E"; free-form, may contain spaces
  configuration config;
  bool feasible = true;
  double objective = 0.0;
  double avg_latency_ms = 0.0;
  double avg_energy_mj = 0.0;
  double accuracy_pct = 0.0;
  double fmap_reuse_pct = 0.0;
};

/// Service-level scheduler counters captured with a shipped report (the
/// plain-counter mirror of serving::scheduler_stats, kept here so core
/// serialization does not depend on the serving layer). Present only for
/// reports produced by a scheduled submit(); see
/// serving::mapping_report::scheduler.
struct scheduler_note {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Cross-request fusion counters (format extension): requests dispatched
  /// as followers of a fused batch, and batches of size >= 2. Reports
  /// written before the extension carry the 7-field row; the parser
  /// accepts both arities and leaves these at 0 for legacy rows.
  std::uint64_t fused = 0;
  std::uint64_t fused_batches = 0;
};

/// Surrogate-refresh pipeline counters captured with a shipped report (the
/// plain-counter mirror of surrogate::refresh_stats, kept here so core
/// serialization does not depend on the surrogate pipeline). Present only
/// for sessions running with refresh enabled; see
/// serving::mapping_report::refresh.
struct refresh_note {
  std::uint64_t observed = 0;
  std::uint64_t logged = 0;
  std::uint64_t attempts = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rejections = 0;
  std::uint64_t epoch = 0;
  double last_candidate_tau = 0.0;
  double last_incumbent_tau = 0.0;
};

/// Co-location scenario captured with a shipped report (the plain-scalar
/// mirror of the soc::contention_context the mapping was scored under, kept
/// here so core serialization does not depend on the serving layer).
/// Present only for reports produced under a non-idle context; see
/// serving::mapping_report::scenario.
struct scenario_note {
  std::uint64_t residents = 0;          ///< co-resident count
  std::uint64_t reserved_units = 0;     ///< CUs owned by residents
  std::uint64_t dvfs_capped_units = 0;  ///< CUs capped below their max level
  double resident_interconnect_gbps = 0.0;
  double resident_dram_gbps = 0.0;
  double resident_power_w = 0.0;
  double ambient_c = 0.0;   ///< 0 when the scenario has no thermal limit
  double throttle_c = 0.0;  ///< 0 when the scenario has no thermal limit
};

/// Shippable summary of a serving::mapping_report (see
/// serving::mapping_report::summary()).
struct report_summary {
  std::string network;
  std::string platform;
  std::size_t ours_latency_index = 0;
  std::size_t ours_energy_index = 0;
  /// Scheduler counters at report time; absent for direct map() reports
  /// (and for artifacts written before the scheduler existed — the text
  /// format keeps the line optional for exactly that back-compat).
  std::optional<scheduler_note> scheduler;
  /// Refresh-pipeline counters at report time; absent unless the serving
  /// session runs with surrogate refresh enabled (same optional-line
  /// back-compat as `scheduler`).
  std::optional<refresh_note> refresh;
  /// Co-location scenario the report was produced under; absent for idle
  /// contexts (and for every artifact written before co-location existed —
  /// the line is optional for exactly that back-compat).
  std::optional<scenario_note> scenario;
  std::vector<summary_entry> entries;
};

/// Serializes a report summary (scalars at full precision, configurations
/// embedded in the mapcq-config-v1 format).
[[nodiscard]] std::string to_text(const report_summary& summary);

/// Parses a report summary back; exact round-trip of to_text. Throws
/// std::runtime_error on malformed input (bad header, short sections,
/// pick indices out of range).
[[nodiscard]] report_summary report_summary_from_text(const std::string& text);

/// File convenience wrappers. save throws std::runtime_error on I/O failure.
void save_report_summary(const std::string& path, const report_summary& summary);
[[nodiscard]] report_summary load_report_summary(const std::string& path);

/// One captured serving submit() in a mapcq-trace-v1 stream: when it
/// arrived (relative to the capture start), its scheduling knobs, and the
/// identity pair the scheduler coalesces on. Enough to replay the *shape*
/// of the traffic — duplicates, session lanes, priorities, pacing —
/// without persisting full request payloads (see serving/request_trace.h
/// for capture and replay).
struct trace_record {
  std::uint64_t arrival_us = 0;   ///< microseconds since the first capture
  int priority = 0;               ///< mapping_request::priority
  std::uint64_t deadline_ms = 0;  ///< mapping_request::deadline; 0 = none
  std::string lane;               ///< fairness lane (the session key)
  std::string fingerprint;        ///< request_fingerprint of the submit
};

/// Serializes a trace (records in capture order).
[[nodiscard]] std::string to_text(const std::vector<trace_record>& trace);

/// Parses a trace back; exact round-trip of to_text. Throws
/// std::runtime_error on malformed input.
[[nodiscard]] std::vector<trace_record> trace_from_text(const std::string& text);

/// File convenience wrappers. save throws std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::vector<trace_record>& trace);
[[nodiscard]] std::vector<trace_record> load_trace(const std::string& path);

/// Serializes one full `evaluation` record (mapcq-eval-v1): every scalar at
/// full precision, the per-stage vectors, and the configuration embedded in
/// the mapcq-config-v1 format. This is the cache-entry unit of session
/// snapshots (serving/session_snapshot.h) — a restored record must serve
/// bit-identically, so nothing is summarized away. The block is
/// self-delimiting (vector rows carry their length) and embeddable in
/// larger documents.
void write_evaluation(std::ostream& os, const evaluation& e);

/// Parses one mapcq-eval-v1 block; exact round-trip of `write_evaluation`.
/// Throws std::runtime_error on malformed input (bad header, short rows,
/// non-numeric fields).
[[nodiscard]] evaluation read_evaluation(std::istream& is);

}  // namespace mapcq::core
