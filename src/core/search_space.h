#pragma once
// Search space X of mapping parameters (paper §V-A): per-group discrete
// width-ratio levels, per-group indicator bits, the stage->CU permutation
// and per-CU DVFS levels. Also exposes the combinatorial size estimate the
// paper quotes (O(1.5e5) per Visformer layer = 8^3 * 3! * 50).

#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "nn/partition_groups.h"
#include "soc/platform.h"
#include "util/rng.h"

namespace mapcq::core {

/// Discrete genome: integer ratio levels (0..levels-1) that normalize into
/// the partition fractions of a `configuration`.
struct genome {
  std::vector<std::vector<int>> ratio_levels;  ///< [group][stage]
  std::vector<std::vector<bool>> forward;      ///< [group][stage]
  std::vector<std::size_t> mapping;            ///< [stage] -> CU
  std::vector<std::size_t> dvfs;               ///< [unit] -> level
};

/// Bounds and factories for genomes.
class search_space {
 public:
  /// `ratio_levels` = number of per-stage width choices (paper: 8).
  /// `banned_units` removes platform CUs from the mapping permutation
  /// (co-location: CUs reserved by co-resident networks are not searchable),
  /// shrinking the stage count to the usable units. Throws
  /// std::invalid_argument when a banned index is out of range or fewer
  /// than two usable units remain. An empty ban list reproduces the classic
  /// space bit-identically (same genomes from the same rng).
  search_space(const nn::network& net, const soc::platform& plat, int ratio_levels = 8,
               const std::vector<std::size_t>& banned_units = {});

  [[nodiscard]] std::size_t groups() const noexcept { return group_widths_.size(); }
  [[nodiscard]] std::size_t stages() const noexcept { return stages_; }
  /// Platform unit indices the mapping permutation may use, ascending.
  [[nodiscard]] const std::vector<std::size_t>& allowed_units() const noexcept {
    return allowed_units_;
  }
  [[nodiscard]] int ratio_levels() const noexcept { return ratio_levels_; }
  [[nodiscard]] const soc::platform& plat() const noexcept { return *plat_; }
  [[nodiscard]] const std::vector<std::int64_t>& group_widths() const noexcept {
    return group_widths_;
  }

  /// Uniformly random genome (stage 1 always owns a nonzero level).
  [[nodiscard]] genome random(util::rng& gen) const;

  /// The static-mapping seed: equal split, every feature forwarded,
  /// identity mapping, max DVFS. Decodes to the paper's Fig. 1 "static"
  /// deployment and anchors the high-accuracy corner of the first
  /// generation.
  [[nodiscard]] genome static_seed() const;

  /// Normalizes a genome into fractions/flags; clamps out-of-range values.
  [[nodiscard]] configuration decode(const genome& g) const;

  /// Structural check of a genome against the space bounds.
  [[nodiscard]] bool in_bounds(const genome& g) const noexcept;

  /// log10 of the per-group configuration count: ratio^M * 2^(M-1).
  [[nodiscard]] double log10_per_group() const;

  /// log10 of the full space size:
  /// (ratio^M * 2^(M-1))^G * M-permutations * DVFS combos.
  [[nodiscard]] double log10_total() const;

  /// The paper's per-layer estimate ignores the indicator bits:
  /// ratio^M * M! * dvfs_combos (§V-A quotes 8^3 * 3! * 50 ~ 1.5e5 with
  /// |theta| = 50).
  [[nodiscard]] double paper_per_layer_estimate(double dvfs_combos) const;

 private:
  const soc::platform* plat_;
  std::vector<std::int64_t> group_widths_;
  std::vector<std::size_t> allowed_units_;  ///< ascending; mapping values
  std::vector<bool> allowed_mask_;          ///< [unit] -> usable
  std::size_t stages_;
  int ratio_levels_;
};

}  // namespace mapcq::core
