#pragma once
// The paper's performance objective (eq. 16):
//
//   P = (Acc_base / Acc_SM) * (sum_i T_Si * N_i) * (sum_i E_S1:i * N_i)
//
// Acc_SM is the accuracy of the dynamic model's LAST stage; N_i counts the
// validation samples first classified correctly at stage i; T_Si is the
// stage latency (eq. 9) and E_S1:i the energy of instantiating stages 1..i.
// Lower is better. Counts are normalized by the population size so the
// objective's magnitude is population-independent.

#include <span>

#include "data/exit_simulator.h"

namespace mapcq::core {

/// Inputs to the objective.
struct objective_inputs {
  double base_accuracy_pct = 0.0;              ///< Acc_base of the pretrained model
  std::span<const double> stage_latency_ms;    ///< T_Si
  std::span<const double> cumulative_energy_mj;///< E_S1:i
  std::span<const double> stage_accuracy_pct;  ///< A_i (last entry = Acc_SM)
  const data::exit_outcome* exits = nullptr;   ///< provides N_i
};

/// Evaluates eq. 16; throws std::invalid_argument on inconsistent spans and
/// returns +inf when the last stage has zero accuracy (broken model).
[[nodiscard]] double objective_value(const objective_inputs& in);

}  // namespace mapcq::core
