#include "core/evaluation_engine.h"

#include <algorithm>
#include <utility>

namespace mapcq::core {

namespace {

// A capacity bound is a maximum: never spread it over more shards than
// entries, or the per-shard floor of 1 would let the table exceed it.
std::size_t shard_count(const engine_options& opt) {
  std::size_t n = std::max<std::size_t>(1, opt.shards);
  if (opt.capacity > 0) n = std::min(n, opt.capacity);
  return n;
}

}  // namespace

evaluation_engine::evaluation_engine(const evaluator& eval, engine_options opt)
    : eval_(&eval), opt_(opt), shard_capacity_(0), shards_(shard_count(opt)) {
  if (opt_.capacity > 0) shard_capacity_ = opt_.capacity / shards_.size();
  if (opt_.threads > 1) pool_ = std::make_unique<util::thread_pool>(opt_.threads);
}

bool evaluation_engine::lookup(std::size_t key, const configuration& config, evaluation& out) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock{s.mu};
  const auto it = s.map.find(key);
  if (it == s.map.end()) return false;
  for (const entry_list::iterator entry : it->second) {
    if (entry->second.config == config) {
      if (opt_.eviction == eviction_policy::lru)
        s.order.splice(s.order.end(), s.order, entry);  // refresh: now hottest
      out = entry->second;
      return true;
    }
  }
  return false;
}

void evaluation_engine::insert(std::size_t key, const evaluation& result) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock{s.mu};
  auto& bucket = s.map[key];
  // A concurrent batch may have raced us to the same configuration; keep
  // the first copy so the bucket stays in step with the eviction list.
  for (const entry_list::iterator entry : bucket)
    if (entry->second.config == result.config) return;
  s.order.emplace_back(key, result);
  bucket.push_back(std::prev(s.order.end()));

  while (shard_capacity_ > 0 && s.order.size() > shard_capacity_) {
    const entry_list::iterator victim = s.order.begin();
    const auto vit = s.map.find(victim->first);
    auto& ventries = vit->second;
    for (auto e = ventries.begin(); e != ventries.end(); ++e) {
      if (*e == victim) {
        ventries.erase(e);
        break;
      }
    }
    if (ventries.empty()) s.map.erase(vit);
    s.order.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

evaluation evaluation_engine::evaluate(const configuration& config) {
  if (!opt_.memoize) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return eval_->evaluate(config);
  }
  const std::size_t key = config.hash();
  evaluation cached;
  if (lookup(key, config, cached)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  evaluation fresh = eval_->evaluate(config);
  misses_.fetch_add(1, std::memory_order_relaxed);
  insert(key, fresh);
  return fresh;
}

std::vector<evaluation> evaluation_engine::evaluate_batch(
    std::span<const configuration> configs) {
  const std::size_t n = configs.size();
  std::vector<evaluation> out(n);

  if (!opt_.memoize) {
    misses_.fetch_add(n, std::memory_order_relaxed);
    if (pool_ && n > 1) {
      pool_->parallel_for(n, [&](std::size_t i) { out[i] = eval_->evaluate(configs[i]); });
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = eval_->evaluate(configs[i]);
    }
    return out;
  }

  // Probe the cache and group the misses: one representative index per
  // distinct configuration, duplicates recorded against it.
  struct pending {
    std::size_t rep;
    std::vector<std::size_t> dups;
  };
  std::vector<std::size_t> keys(n);
  std::unordered_map<std::size_t, std::vector<pending>> missing;
  std::vector<std::size_t> reps;
  std::size_t hits = 0;
  std::size_t dups = 0;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = configs[i].hash();
    if (lookup(keys[i], configs[i], out[i])) {
      ++hits;
      continue;
    }
    auto& groups = missing[keys[i]];
    bool merged = false;
    for (pending& p : groups) {
      if (configs[p.rep] == configs[i]) {
        p.dups.push_back(i);
        merged = true;
        ++dups;
        break;
      }
    }
    if (!merged) {
      groups.push_back({i, {}});
      reps.push_back(i);
    }
  }
  hits_.fetch_add(hits, std::memory_order_relaxed);
  dedup_.fetch_add(dups, std::memory_order_relaxed);
  misses_.fetch_add(reps.size(), std::memory_order_relaxed);

  if (pool_ && reps.size() > 1) {
    pool_->parallel_for(reps.size(),
                        [&](std::size_t j) { out[reps[j]] = eval_->evaluate(configs[reps[j]]); });
  } else {
    for (const std::size_t i : reps) out[i] = eval_->evaluate(configs[i]);
  }

  for (const auto& [key, groups] : missing) {
    for (const pending& p : groups) {
      insert(key, out[p.rep]);
      for (const std::size_t d : p.dups) out[d] = out[p.rep];
    }
  }
  return out;
}

engine_stats evaluation_engine::stats() const noexcept {
  engine_stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.dedup = dedup_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t evaluation_engine::size() const {
  std::size_t total = 0;
  for (const shard& s : shards_) {
    const std::lock_guard<std::mutex> lock{s.mu};
    total += s.order.size();
  }
  return total;
}

void evaluation_engine::clear() {
  for (shard& s : shards_) {
    const std::lock_guard<std::mutex> lock{s.mu};
    s.map.clear();
    s.order.clear();
  }
}

}  // namespace mapcq::core
